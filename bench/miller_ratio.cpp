//===- miller_ratio.cpp - Experiment E5 ----------------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Regenerates the paper's section-6 sanity check against Miller [Mil88]:
// "the ratio of unambiguous references to ambiguous references, measured
// statically, is from 1:1 to 3:1". We report the static ratio per
// benchmark under the era compilation model and its mean.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace urcm;
using namespace urcm::bench;

namespace {

double ratioFor(const std::string &Name) {
  const SchemeComparison &C =
      comparison(Name, figure5Compile(), paperCache());
  double Unambiguous = static_cast<double>(
      C.StaticStats.UnambiguousRefs + C.StaticStats.SpillRefs);
  double Ambiguous =
      static_cast<double>(C.StaticStats.AmbiguousRefs);
  return Ambiguous == 0.0 ? 0.0 : Unambiguous / Ambiguous;
}

void rowFor(benchmark::State &State, const std::string &Name) {
  for (auto _ : State)
    benchmark::DoNotOptimize(ratioFor(Name));
  State.counters["unambiguous_to_ambiguous"] = ratioFor(Name);
}

void summary() {
  std::printf("\nMiller-style static unambiguous:ambiguous ratio "
              "(paper cites 1:1 to 3:1)\n");
  double Sum = 0;
  for (const std::string &Name : workloadNames()) {
    double R = ratioFor(Name);
    std::printf("%-8s %6.2f : 1\n", Name.c_str(), R);
    Sum += R;
  }
  std::printf("%-8s %6.2f : 1\n", "mean", Sum / workloadNames().size());
}

} // namespace

int main(int argc, char **argv) {
  for (const std::string &Name : workloadNames())
    benchmark::RegisterBenchmark(("Miller/" + Name).c_str(),
                                 [Name](benchmark::State &State) {
                                   rowFor(State, Name);
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  summary();
  return 0;
}
