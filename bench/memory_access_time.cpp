//===- memory_access_time.cpp - Experiment E15 (§4.4 speedup claim) ------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Section 4.4: "reserving a control bit to obtain speedups of total
// memory access time by factors of 2 or more is virtually always
// worthwhile." The factor-of-2 claim is about the *full* unified model —
// registers absorb the hot unambiguous values, the bypass bit and dead
// bit handle the rest — against a conventional everything-through-cache
// system. Three systems on the same programs:
//
//   baseline   era-style code (scalars in memory), no hints;
//   hints-only era-style code + ReuseAware bypass + dead tags
//              (cache-side unified management alone);
//   unified    register-allocated code + bypass + dead tags
//              (the paper's complete registers+cache model).
//
// Memory-access time: through-cache ref = 1 cycle, every bus word = M
// cycles (register hits are free). Speedups are vs the baseline.
//
// Interesting negative result kept visible in the numbers: applying the
// *blind* all-unambiguous bypass to era code makes access time WORSE
// (every bypassed hot scalar pays the full memory latency); the paper's
// claim only materializes once registers participate.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <cmath>

using namespace urcm;
using namespace urcm::bench;

namespace {

struct SystemPoint {
  const char *Label;
  bool Era;
  bool Promote;
  UnifiedOptions Scheme;
};

const std::vector<SystemPoint> &systems() {
  static const std::vector<SystemPoint> S = {
      {"baseline", true, false, UnifiedOptions::conventional()},
      {"hints_only", true, false, UnifiedOptions::reuseAware()},
      {"blind_bypass", true, false, UnifiedOptions::unified()},
      // The complete model: register allocation + loop promotion of
      // unaliased scalars (section 4.2 rule [1]), ReuseAware bypass for
      // what stays in memory, dead tags everywhere.
      {"unified", false, true, UnifiedOptions::reuseAware()},
  };
  return S;
}

const SimResult &measure(const std::string &Name,
                         const SystemPoint &Point, uint32_t Lines) {
  SimConfig Sim;
  Sim.Cache = paperCache();
  Sim.Cache.NumLines = Lines;
  CompileOptions Options;
  Options.IRGen.ScalarLocalsInMemory = Point.Era;
  Options.Scheme = Point.Scheme;
  Options.PromoteLoopScalars = Point.Promote;
  return singleRun(Name, Options, Sim);
}

uint64_t cyclesFor(const std::string &Name, const SystemPoint &Point,
                   uint32_t MemoryCycles, uint32_t Lines) {
  LatencyModel Model;
  Model.MemoryCycles = MemoryCycles;
  return memoryAccessCycles(measure(Name, Point, Lines).Cache, Model);
}

double speedup(const std::string &Name, const SystemPoint &Point,
               uint32_t MemoryCycles, uint32_t Lines) {
  uint64_t Base = cyclesFor(Name, systems()[0], MemoryCycles, Lines);
  uint64_t Sys = cyclesFor(Name, Point, MemoryCycles, Lines);
  return Sys == 0 ? 0.0
                  : static_cast<double>(Base) / static_cast<double>(Sys);
}

void rowFor(benchmark::State &State, const std::string &Name,
            const SystemPoint &Point) {
  for (auto _ : State)
    benchmark::DoNotOptimize(speedup(Name, Point, 10, 128));
  State.counters["speedup_mem10_128l"] = speedup(Name, Point, 10, 128);
  State.counters["speedup_mem10_512l"] = speedup(Name, Point, 10, 512);
  State.counters["cycles_mem10_128l"] =
      static_cast<double>(cyclesFor(Name, Point, 10, 128));
}

void summary() {
  for (uint32_t Lines : {128u, 512u}) {
    std::printf("\nMemory-access-time speedup vs era baseline "
                "(mem word = 10 cycles, %u-line cache)\n",
                Lines);
    std::printf("%-8s", "bench");
    for (const SystemPoint &P : systems())
      std::printf(" %13s", P.Label);
    std::printf("\n");
    std::vector<double> Product(systems().size(), 1.0);
    for (const std::string &Name : workloadNames()) {
      std::printf("%-8s", Name.c_str());
      for (size_t S = 0; S != systems().size(); ++S) {
        double V = speedup(Name, systems()[S], 10, Lines);
        Product[S] *= V;
        std::printf(" %12.2fx", V);
      }
      std::printf("\n");
    }
    std::printf("%-8s", "geomean");
    for (size_t S = 0; S != systems().size(); ++S)
      std::printf(" %12.2fx",
                  std::pow(Product[S], 1.0 / workloadNames().size()));
    std::printf("\n");
  }
  std::printf("(paper section 4.4: the full unified model is worth "
              "\"factors of 2 or more\"; the claim holds once the\n"
              " ambiguous working set fits — blind bypass alone "
              "*hurts* time, registers are what deliver it)\n");
}

} // namespace

int main(int argc, char **argv) {
  for (const std::string &Name : workloadNames())
    for (const SystemPoint &Point : systems())
      benchmark::RegisterBenchmark(
          (std::string("MemTime/") + Name + "/" + Point.Label).c_str(),
          [Name, Point](benchmark::State &State) {
            rowFor(State, Name, Point);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  summary();
  return 0;
}
