//===- line_size_sweep.cpp - Experiment E9 -------------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Validates the paper's section-1 assumption (citing [ChD89] [Lee87])
// that "small line size (e.g. one) is always preferred for data cache":
// sweeping the line size under the conventional scheme, bus traffic in
// words should be minimized at (or near) one-word lines for these
// word-granular workloads, even though hit *rates* rise with longer
// lines.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace urcm;
using namespace urcm::bench;

namespace {

const std::vector<uint32_t> &lineSizes() {
  static const std::vector<uint32_t> Sizes = {1, 2, 4, 8, 16};
  return Sizes;
}

const SimResult &measure(const std::string &Name, uint32_t LineWords) {
  SimConfig Sim;
  Sim.Cache = paperCache();
  Sim.Cache.LineWords = LineWords;
  // Hold capacity constant in *words*: fewer lines when lines are wider.
  Sim.Cache.NumLines = std::max(2u, 128u / LineWords);
  CompileOptions Options = figure5Compile();
  Options.Scheme = UnifiedOptions::conventional();
  return singleRun(Name, Options, Sim,
                   "lines/" + std::to_string(LineWords) + "/" + Name);
}

void rowFor(benchmark::State &State, const std::string &Name,
            uint32_t LineWords) {
  for (auto _ : State) {
    const SimResult &R = measure(Name, LineWords);
    benchmark::DoNotOptimize(&R);
  }
  const SimResult &R = measure(Name, LineWords);
  State.counters["line_words"] = LineWords;
  State.counters["bus_traffic_words"] =
      static_cast<double>(R.Cache.busTraffic());
  State.counters["miss_pct"] = 100.0 - R.Cache.hitRate() * 100.0;
}

void summary() {
  std::printf("\nLine-size sweep, conventional scheme, constant 128-word "
              "capacity (bus words)\n");
  std::printf("%-8s", "bench");
  for (uint32_t L : lineSizes())
    std::printf(" %12u", L);
  std::printf("\n");
  for (const std::string &Name : workloadNames()) {
    std::printf("%-8s", Name.c_str());
    for (uint32_t L : lineSizes())
      std::printf(" %12llu", static_cast<unsigned long long>(
                                 measure(Name, L).Cache.busTraffic()));
    std::printf("\n");
  }
  std::printf("(paper section 1: one-word lines preferred for data "
              "cache)\n");
}

} // namespace

int main(int argc, char **argv) {
  for (const std::string &Name : workloadNames())
    for (uint32_t L : lineSizes())
      benchmark::RegisterBenchmark(
          ("LineSize/" + Name + "/" + std::to_string(L)).c_str(),
          [Name, L](benchmark::State &State) { rowFor(State, Name, L); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  summary();
  return 0;
}
