//===- line_size_sweep.cpp - Experiment E9 -------------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Validates the paper's section-1 assumption (citing [ChD89] [Lee87])
// that "small line size (e.g. one) is always preferred for data cache":
// sweeping the line size under the conventional scheme, bus traffic in
// words should be minimized at (or near) one-word lines for these
// word-granular workloads, even though hit *rates* rise with longer
// lines.
//
// Each benchmark is simulated once with tracing; every line geometry
// replays from that trace (the reference stream does not depend on the
// cache geometry).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace urcm;
using namespace urcm::bench;

namespace {

const std::vector<uint32_t> &lineSizes() {
  static const std::vector<uint32_t> Sizes = {1, 2, 4, 8, 16};
  return Sizes;
}

CompileOptions conventionalOptions() {
  CompileOptions Options = figure5Compile();
  Options.Scheme = UnifiedOptions::conventional();
  return Options;
}

std::vector<SweepPoint> grid() {
  std::vector<SweepPoint> G;
  for (uint32_t LineWords : lineSizes()) {
    CacheConfig Cache = paperCache();
    Cache.LineWords = LineWords;
    // Hold capacity constant in *words*: fewer lines when lines are
    // wider.
    Cache.NumLines = std::max(2u, 128u / LineWords);
    G.push_back({Cache, TracePolicy::LRU, /*IgnoreHints=*/false});
  }
  return G;
}

size_t lineIndex(uint32_t LineWords) {
  for (size_t I = 0; I != lineSizes().size(); ++I)
    if (lineSizes()[I] == LineWords)
      return I;
  return 0;
}

const CacheStats &measure(const std::string &Name, uint32_t LineWords) {
  return singleSweepStats(Name, conventionalOptions(),
                          lineIndex(LineWords));
}

void rowFor(benchmark::State &State, const std::string &Name,
            uint32_t LineWords) {
  for (auto _ : State) {
    const CacheStats &S = measure(Name, LineWords);
    benchmark::DoNotOptimize(&S);
  }
  const CacheStats &S = measure(Name, LineWords);
  State.counters["line_words"] = LineWords;
  State.counters["bus_traffic_words"] =
      static_cast<double>(S.busTraffic());
  State.counters["miss_pct"] = 100.0 - S.hitRate() * 100.0;
}

void summary() {
  std::printf("\nLine-size sweep, conventional scheme, constant 128-word "
              "capacity (bus words)\n");
  std::printf("%-8s", "bench");
  for (uint32_t L : lineSizes())
    std::printf(" %12u", L);
  std::printf("\n");
  for (const std::string &Name : workloadNames()) {
    std::printf("%-8s", Name.c_str());
    for (uint32_t L : lineSizes())
      std::printf(" %12llu", static_cast<unsigned long long>(
                                 measure(Name, L).busTraffic()));
    std::printf("\n");
  }
  std::printf("(paper section 1: one-word lines preferred for data "
              "cache)\n");
}

} // namespace

int main(int argc, char **argv) {
  for (const std::string &Name : workloadNames())
    scheduleSingleSweep(Name, conventionalOptions(), grid(),
                        /*BaseIndex=*/0);
  engine().run();
  for (const std::string &Name : workloadNames())
    for (uint32_t L : lineSizes())
      benchmark::RegisterBenchmark(
          ("LineSize/" + Name + "/" + std::to_string(L)).c_str(),
          [Name, L](benchmark::State &State) { rowFor(State, Name, L); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  summary();
  return 0;
}
