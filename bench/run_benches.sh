#!/usr/bin/env bash
# Runs the paper-exhibit bench binaries and merges their google-benchmark
# JSON output, plus each binary's end-to-end wall time, into one
# BENCH_sweep.json so the performance trajectory of the experiment
# harness can be tracked across PRs. The wall times are the numbers that
# matter for the sweep engine: each binary precomputes its whole
# experiment grid (traced base simulations + replays) in main() before
# the benchmark rows run, so the per-row timings are near zero and the
# binary's wall time is the true cost of the exhibit.
#
# Usage: bench/run_benches.sh [build-dir] [out-json] [bench-name...]
#   build-dir   CMake build tree containing bench/ binaries (default: build)
#   out-json    merged output path (default: BENCH_sweep.json)
#   bench-name  subset to run (default: every exhibit); the CTest smoke
#               test passes a single fast exhibit here.
set -euo pipefail

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_sweep.json}

# Wall times from an unoptimized build are not a perf trajectory: refuse
# debug trees (override with URCM_BENCH_ALLOW_DEBUG=1 for local
# spelunking — the stamped build_type still exposes it downstream).
BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[A-Z]*=//p' \
  "$BUILD_DIR/CMakeCache.txt" 2>/dev/null || true)
case "$BUILD_TYPE" in
  Release|RelWithDebInfo) ;;
  *)
    if [ "${URCM_BENCH_ALLOW_DEBUG:-0}" = 1 ]; then
      echo "run_benches: WARNING: benchmarking a '$BUILD_TYPE' build;" \
           "timings are not comparable to the committed trajectory" >&2
    else
      echo "run_benches: refusing to benchmark build tree '$BUILD_DIR'" \
           "with CMAKE_BUILD_TYPE='$BUILD_TYPE' (need Release or" \
           "RelWithDebInfo; configure with 'cmake --preset default' or" \
           "set URCM_BENCH_ALLOW_DEBUG=1 to override)" >&2
      exit 1
    fi
    ;;
esac

if [ "$#" -gt 2 ]; then
  shift 2
  BENCHES=("$@")
else
  BENCHES=(
    fig5_traffic_reduction
    static_dynamic_ambiguity
    miller_ratio
    deadtag_ablation
    scheme_decomposition
    replacement_policies
    line_size_sweep
    cache_size_sweep
    hint_encoding
    icache_effect
    software_vs_hardware_dse
    cache_occupancy
    memory_access_time
    reuse_threshold_sweep
    sharded_replay
    trace_store
  )
fi

JSON_DIR=$(mktemp -d)
trap 'rm -rf "$JSON_DIR"' EXIT

for B in "${BENCHES[@]}"; do
  BIN="$BUILD_DIR/bench/$B"
  if [ ! -x "$BIN" ]; then
    echo "run_benches: missing bench binary $BIN (build the repo first)" >&2
    exit 1
  fi
  START=$(date +%s.%N)
  # Rows register with Iterations(1) — results are deterministic tables,
  # not throughput — so one iteration is always enough. Newer
  # google-benchmark accepts the explicit "1x"; older versions print a
  # flag-type warning and ignore it, which is equally fine.
  "$BIN" --benchmark_min_time=1x \
         --benchmark_out="$JSON_DIR/$B.json" \
         --benchmark_out_format=json
  END=$(date +%s.%N)
  echo "$B $(echo "$END $START" | awk '{printf "%.3f", $1 - $2}')" \
    >> "$JSON_DIR/walltimes.txt"
done

# Merge: google-benchmark JSON shape (context + concatenated benchmark
# rows; row names are globally unique exhibit labels) plus a wall-time
# map for the trajectory comparison and the provenance stamp ("which
# build type produced these numbers" — asserted by check.sh --bench).
python3 - "$JSON_DIR" "$OUT" "$BUILD_TYPE" <<'PY'
import json, pathlib, sys

json_dir, out = pathlib.Path(sys.argv[1]), pathlib.Path(sys.argv[2])
walltimes = {}
for line in (json_dir / "walltimes.txt").read_text().splitlines():
    name, seconds = line.split()
    walltimes[name] = float(seconds)

merged = {"context": None, "build_type": sys.argv[3],
          "benchmarks": [], "wall_time_s": walltimes,
          "total_wall_time_s": round(sum(walltimes.values()), 3)}
for name in walltimes:
    data = json.loads((json_dir / f"{name}.json").read_text())
    if merged["context"] is None:
        merged["context"] = data.get("context")
    merged["benchmarks"].extend(data.get("benchmarks", []))

out.write_text(json.dumps(merged, indent=2) + "\n")
print(f"wrote {out}: {len(merged['benchmarks'])} rows, "
      f"{merged['total_wall_time_s']}s total")
PY
