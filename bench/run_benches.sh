#!/usr/bin/env bash
# Runs the paper-exhibit bench binaries and merges their google-benchmark
# JSON output, plus each binary's end-to-end wall time, into one
# BENCH_sweep.json so the performance trajectory of the experiment
# harness can be tracked across PRs. The wall times are the numbers that
# matter for the sweep engine: each binary precomputes its whole
# experiment grid (traced base simulations + replays) in main() before
# the benchmark rows run, so the per-row timings are near zero and the
# binary's wall time is the true cost of the exhibit.
#
# Usage: bench/run_benches.sh [build-dir] [out-json] [bench-name...]
#   build-dir   CMake build tree containing bench/ binaries (default: build)
#   out-json    merged output path (default: BENCH_sweep.json)
#   bench-name  subset to run (default: every exhibit); the CTest smoke
#               test passes a single fast exhibit here.
set -euo pipefail

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_sweep.json}

# Wall times from an unoptimized build are not a perf trajectory: refuse
# debug trees (override with URCM_BENCH_ALLOW_DEBUG=1 for local
# spelunking — the stamped build_type still exposes it downstream).
BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[A-Z]*=//p' \
  "$BUILD_DIR/CMakeCache.txt" 2>/dev/null || true)
case "$BUILD_TYPE" in
  Release|RelWithDebInfo) ;;
  *)
    if [ "${URCM_BENCH_ALLOW_DEBUG:-0}" = 1 ]; then
      echo "run_benches: WARNING: benchmarking a '$BUILD_TYPE' build;" \
           "timings are not comparable to the committed trajectory" >&2
    else
      echo "run_benches: refusing to benchmark build tree '$BUILD_DIR'" \
           "with CMAKE_BUILD_TYPE='$BUILD_TYPE' (need Release or" \
           "RelWithDebInfo; configure with 'cmake --preset default' or" \
           "set URCM_BENCH_ALLOW_DEBUG=1 to override)" >&2
      exit 1
    fi
    ;;
esac

if [ "$#" -gt 2 ]; then
  shift 2
  BENCHES=("$@")
else
  BENCHES=(
    fig5_traffic_reduction
    static_dynamic_ambiguity
    miller_ratio
    deadtag_ablation
    scheme_decomposition
    replacement_policies
    policy_sweep
    line_size_sweep
    cache_size_sweep
    hint_encoding
    icache_effect
    software_vs_hardware_dse
    cache_occupancy
    memory_access_time
    reuse_threshold_sweep
    sharded_replay
    trace_store
    trace_gen
  )
fi

JSON_DIR=$(mktemp -d)
trap 'rm -rf "$JSON_DIR"' EXIT

for B in "${BENCHES[@]}"; do
  BIN="$BUILD_DIR/bench/$B"
  if [ ! -x "$BIN" ]; then
    echo "run_benches: missing bench binary $BIN (build the repo first)" >&2
    exit 1
  fi
  START=$(date +%s.%N)
  # Rows register with Iterations(1) — results are deterministic tables,
  # not throughput — so one iteration is always enough. Newer
  # google-benchmark accepts the explicit "1x"; older versions print a
  # flag-type warning and ignore it, which is equally fine.
  "$BIN" --benchmark_min_time=1x \
         --benchmark_out="$JSON_DIR/$B.json" \
         --benchmark_out_format=json
  END=$(date +%s.%N)
  echo "$B $(echo "$END $START" | awk '{printf "%.3f", $1 - $2}')" \
    >> "$JSON_DIR/walltimes.txt"
done

# Host provenance for the stamp: wall times are only comparable across
# runs on the same core count, compiler output, and telemetry build
# flavor, so record all three next to the numbers they qualify.
GIT_SHA=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
# -dirty means the *source* differs from HEAD. Untracked files never
# count (diff-against-HEAD semantics), stale stat info must not count
# (refresh first), and neither do the bench outputs this very script
# rewrites — without the excludes every run self-stamps dirty.
if [ "$GIT_SHA" != unknown ]; then
  git update-index -q --refresh 2>/dev/null || true
  if ! git diff --quiet HEAD -- \
      ':(top)' ':(top,exclude)BENCH_*.json' \
      ':(top,exclude)bench/history' 2>/dev/null; then
    GIT_SHA="$GIT_SHA-dirty"
  fi
fi
# URCM_TELEMETRY_DISABLED compiles the counters out entirely (see
# urcm/support/Telemetry.h); a tree built that way produces slightly
# different wall times than the default always-compiled-in build.
if grep -qs "URCM_TELEMETRY_DISABLED" "$BUILD_DIR/CMakeCache.txt"; then
  TELEMETRY=disabled
else
  TELEMETRY=enabled
fi

# Merge: google-benchmark JSON shape (context + concatenated benchmark
# rows; row names are globally unique exhibit labels) plus a wall-time
# map for the trajectory comparison and the provenance stamp ("which
# build type produced these numbers" — asserted by check.sh --bench).
# Each run also appends one line to bench/history/<out>.jsonl so the
# wall-time trajectory across commits survives the single-snapshot
# committed JSON being overwritten.
URCM_BENCH_DIR="$(cd "$(dirname "$0")" && pwd)" \
python3 - "$JSON_DIR" "$OUT" "$BUILD_TYPE" "$GIT_SHA" "$TELEMETRY" <<'PY'
import datetime, json, os, pathlib, sys

json_dir, out = pathlib.Path(sys.argv[1]), pathlib.Path(sys.argv[2])
build_type, git_sha, telemetry = sys.argv[3], sys.argv[4], sys.argv[5]
walltimes = {}
for line in (json_dir / "walltimes.txt").read_text().splitlines():
    name, seconds = line.split()
    walltimes[name] = float(seconds)

provenance = {
    "git_sha": git_sha,
    "nproc": os.cpu_count() or 1,
    "telemetry": telemetry,
}
merged = {"context": None, "build_type": build_type,
          "provenance": provenance,
          "benchmarks": [], "wall_time_s": walltimes,
          "total_wall_time_s": round(sum(walltimes.values()), 3)}
for name in walltimes:
    data = json.loads((json_dir / f"{name}.json").read_text())
    if merged["context"] is None:
        merged["context"] = data.get("context")
    merged["benchmarks"].extend(data.get("benchmarks", []))

out.write_text(json.dumps(merged, indent=2) + "\n")

# Anchor on the script's repo layout: bench/history/ next to this
# runner, regardless of the caller's working directory.
history_dir = pathlib.Path(os.environ["URCM_BENCH_DIR"]) / "history"
history_dir.mkdir(parents=True, exist_ok=True)
entry = dict(provenance)
entry.update({
    "timestamp": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    "build_type": build_type,
    "wall_time_s": walltimes,
    "total_wall_time_s": merged["total_wall_time_s"],
})
history_file = history_dir / (out.stem + ".jsonl")
with history_file.open("a") as handle:
    handle.write(json.dumps(entry, sort_keys=True) + "\n")

print(f"wrote {out}: {len(merged['benchmarks'])} rows, "
      f"{merged['total_wall_time_s']}s total "
      f"(history -> {history_file})")
PY
