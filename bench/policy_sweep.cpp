//===- policy_sweep.cpp - Unified cache-model policy grid ----------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// The unified cache-model layer (urcm/sim/CacheModel.h) answers every
// replacement policy from one recorded trace. This exhibit extends the
// paper's E8 grid (LRU/FIFO/Random/MIN) with the modern policies the
// model added — tree-PLRU, SRRIP and the liveness-guided bypass
// predictor — for both schemes, so the dead-line/bypass machinery can
// be compared against hardware-only reuse prediction on equal footing:
// the predictor rows are what a hint-free binary achieves in hardware,
// the unified rows are what the compiler's liveness hints achieve.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "urcm/sim/CacheModel.h"

using namespace urcm;
using namespace urcm::bench;

namespace {

const std::vector<CachePolicy> &policies() {
  static const std::vector<CachePolicy> P = {
      CachePolicy::LRU,      CachePolicy::FIFO,
      CachePolicy::Random,   CachePolicy::TreePLRU,
      CachePolicy::SRRIP,    CachePolicy::LivenessBypass,
      CachePolicy::MIN};
  return P;
}

std::vector<SweepPoint> grid() {
  std::vector<SweepPoint> G;
  for (CachePolicy P : policies()) {
    SweepPoint Pt;
    Pt.Config = paperCache();
    Pt.Config.Policy = P;
    Pt.Policy = P;
    G.push_back(Pt);
  }
  return G;
}

size_t policyIndex(CachePolicy Policy) {
  for (size_t I = 0; I != policies().size(); ++I)
    if (policies()[I] == Policy)
      return I;
  return 0;
}

CacheStats replayed(const std::string &Name, bool Unified,
                    CachePolicy Policy) {
  size_t I = policyIndex(Policy);
  return Unified
             ? pairUnifiedStats(Name, figure5Compile(), I)
             : pairConventionalStats(Name, figure5Compile(),
                                     policies().size(), I);
}

void rowFor(benchmark::State &State, const std::string &Name,
            bool Unified, CachePolicy Policy) {
  for (auto _ : State)
    benchmark::DoNotOptimize(replayed(Name, Unified, Policy));
  CacheStats S = replayed(Name, Unified, Policy);
  State.counters["misses"] = static_cast<double>(S.misses());
  State.counters["bus_words"] = static_cast<double>(S.busTraffic());
  State.counters["bypassed"] =
      static_cast<double>(S.BypassReads + S.BypassWrites);
  State.counters["dead_frees"] = static_cast<double>(S.DeadFrees);
}

void summary() {
  std::printf("\nPolicy grid x schemes (bus words; one trace replayed "
              "through the unified cache model, 128-line 2-way)\n");
  std::printf("%-8s %10s |", "bench", "scheme");
  for (CachePolicy P : policies())
    std::printf(" %10s", cachePolicyName(P));
  std::printf("\n");
  for (const std::string &Name : workloadNames()) {
    for (bool Unified : {false, true}) {
      std::printf("%-8s %10s |", Name.c_str(),
                  Unified ? "unified" : "conv");
      for (CachePolicy P : policies())
        std::printf(" %10llu",
                    static_cast<unsigned long long>(
                        replayed(Name, Unified, P).busTraffic()));
      std::printf("\n");
    }
  }
  std::printf("(compare policies within a row: conv/LivenessBypass is "
              "the hardware predictor on a hint-free stream, MIN the "
              "floor; unified rows count their bypassed words, which "
              "skip the cache entirely)\n");
}

} // namespace

int main(int argc, char **argv) {
  for (const std::string &Name : workloadNames())
    schedulePairSweep(Name, figure5Compile(), grid(), /*BaseIndex=*/0);
  engine().run();
  for (const std::string &Name : workloadNames())
    for (bool Unified : {false, true})
      for (CachePolicy Policy : policies()) {
        std::string Label = "PolicySweep/" + Name + "/" +
                            (Unified ? "unified/" : "conv/") +
                            cachePolicyName(Policy);
        benchmark::RegisterBenchmark(
            Label.c_str(),
            [Name, Unified, Policy](benchmark::State &State) {
              rowFor(State, Name, Unified, Policy);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  summary();
  return 0;
}
