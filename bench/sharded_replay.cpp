//===- sharded_replay.cpp - Intra-trace parallel replay exhibit ----------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Measures the set-sharded replay engine (urcm/sim/ShardedReplay.h) on
// the single-experiment case the sweep engine's across-experiment
// parallelism cannot touch: ONE workload's trace replayed over a
// realistic point grid, sequentially versus sharded across an explicit
// 4-thread pool. Counter equality with the sequential replay is
// asserted before any timing is reported (the merge invariant — a fast
// wrong replay would be worse than useless as an exhibit).
//
// Rows carry the measured replay times, the speedup, and the thread
// count: on single-core machines the sharded rows time-slice one core
// and the speedup hovers near (or below) 1x by construction; read
// speedup_vs_seq together with the threads counter.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "urcm/sim/ShardedReplay.h"

#include <chrono>

using namespace urcm;
using namespace urcm::bench;

namespace {

/// Threads the sharded rows may use (workers + the parallelFor caller).
constexpr uint32_t BenchThreads = 4;

const std::vector<uint32_t> &shardCounts() {
  static const std::vector<uint32_t> Counts = {2, 4, 8};
  return Counts;
}

/// A realistic set-shardable grid: the paper geometry and its
/// neighbours, both hint views, plus FIFO and a wider-line point — the
/// shape fig5-style sweeps replay per workload.
std::vector<SweepPoint> grid() {
  std::vector<SweepPoint> G;
  for (uint32_t Lines : {32u, 64u, 128u, 256u, 512u}) {
    CacheConfig C = paperCache();
    C.NumLines = Lines;
    G.push_back({C, TracePolicy::LRU, /*IgnoreHints=*/false});
    G.push_back({C, TracePolicy::LRU, /*IgnoreHints=*/true});
  }
  CacheConfig FourWay = paperCache();
  FourWay.Assoc = 4;
  G.push_back({FourWay, TracePolicy::LRU, false});
  CacheConfig Fifo = paperCache();
  Fifo.Policy = ReplacementPolicy::FIFO;
  G.push_back({Fifo, TracePolicy::FIFO, false});
  CacheConfig Wide = paperCache();
  Wide.LineWords = 4;
  Wide.NumLines = 32;
  G.push_back({Wide, TracePolicy::LRU, false});
  return G;
}

struct Measurement {
  double SequentialMs = 0;
  std::map<uint32_t, double> ShardedMs; // keyed by shard count
  uint64_t TraceEvents = 0;
};

double bestOfThreeMs(const std::function<void()> &Fn) {
  double Best = 1e300;
  for (int Rep = 0; Rep != 3; ++Rep) {
    auto T0 = std::chrono::steady_clock::now();
    Fn();
    auto T1 = std::chrono::steady_clock::now();
    Best = std::min(
        Best, std::chrono::duration<double, std::milli>(T1 - T0).count());
  }
  return Best;
}

Measurement &measurement(const std::string &Name) {
  static std::map<std::string, Measurement> Cache;
  static std::mutex M;
  std::lock_guard<std::mutex> Lock(M);
  auto It = Cache.find(Name);
  if (It != Cache.end())
    return It->second;

  const Workload &W = workloadOrDie(Name);
  SimConfig Sim;
  Sim.Cache = paperCache();
  Sim.RecordTrace = true;
  DiagnosticEngine Diags;
  SimResult R = compileAndRun(W.Source, figure5Compile(), Sim, Diags);
  if (!R.ok()) {
    std::fprintf(stderr, "%s: %s\n", Name.c_str(), R.Error.c_str());
    std::abort();
  }

  const std::vector<SweepPoint> Grid = grid();
  Measurement Out;
  Out.TraceEvents = R.Trace.size();
  std::vector<CacheStats> Sequential;
  Out.SequentialMs = bestOfThreeMs(
      [&] { Sequential = replaySweepPoints(R.Trace, Grid); });

  ThreadPool Pool(BenchThreads - 1); // Workers; parallelFor adds the caller.
  for (uint32_t Shards : shardCounts()) {
    std::vector<CacheStats> Sharded;
    Out.ShardedMs[Shards] = bestOfThreeMs([&] {
      Sharded = replaySweepPointsSharded(R.Trace, Grid, Shards, &Pool);
    });
    // The merge invariant, checked on the numbers this exhibit reports.
    for (size_t I = 0; I != Grid.size(); ++I)
      if (!(Sharded[I] == Sequential[I])) {
        std::fprintf(stderr,
                     "%s: sharded replay diverged at point %zu "
                     "(shards=%u)\n",
                     Name.c_str(), I, Shards);
        std::abort();
      }
  }
  return Cache.emplace(Name, std::move(Out)).first->second;
}

void rowFor(benchmark::State &State, const std::string &Name,
            uint32_t Shards) {
  for (auto _ : State) {
    Measurement &M = measurement(Name);
    benchmark::DoNotOptimize(&M);
  }
  Measurement &M = measurement(Name);
  double Ms = Shards == 1 ? M.SequentialMs : M.ShardedMs.at(Shards);
  State.counters["shards"] = Shards;
  State.counters["threads"] = Shards == 1 ? 1 : BenchThreads;
  State.counters["trace_events"] = static_cast<double>(M.TraceEvents);
  State.counters["replay_ms"] = Ms;
  State.counters["speedup_vs_seq"] = M.SequentialMs / Ms;
}

void summary() {
  std::printf("\nSingle-experiment replay: sequential vs set-sharded "
              "(%u threads, %zu-point grid, best of 3)\n",
              BenchThreads, grid().size());
  std::printf("%-8s %10s %8s", "bench", "events", "seq-ms");
  for (uint32_t S : shardCounts())
    std::printf(" %11s", ("x" + std::to_string(S) + "-speedup").c_str());
  std::printf("\n");
  for (const std::string &Name : workloadNames()) {
    Measurement &M = measurement(Name);
    std::printf("%-8s %10llu %8.2f",
                Name.c_str(),
                static_cast<unsigned long long>(M.TraceEvents),
                M.SequentialMs);
    for (uint32_t S : shardCounts())
      std::printf(" %11.2f", M.SequentialMs / M.ShardedMs.at(S));
    std::printf("\n");
  }
  std::printf("(counters verified bit-identical to sequential replay "
              "before timing)\n");
}

} // namespace

int main(int argc, char **argv) {
  for (const std::string &Name : workloadNames()) {
    std::vector<uint32_t> Rows = {1};
    Rows.insert(Rows.end(), shardCounts().begin(), shardCounts().end());
    for (uint32_t Shards : Rows)
      benchmark::RegisterBenchmark(
          ("ShardedReplay/" + Name + "/" + std::to_string(Shards))
              .c_str(),
          [Name, Shards](benchmark::State &State) {
            rowFor(State, Name, Shards);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  summary();
  return 0;
}
