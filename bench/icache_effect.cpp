//===- icache_effect.cpp - Experiment E12 (paper sections 2.2/6) ---------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// The paper stresses that, unlike registers, the cache also serves
// instructions ("there is no benefit in placing an instruction in a
// register"), and section 6 notes the static unambiguous:ambiguous
// ratios "do not count instruction references. Hence, the load placed on
// each type of memory is considerable." This experiment measures the
// instruction-fetch stream alongside the data stream: fetches per data
// reference, and I-cache hit rates across line sizes (instructions, being
// sequential, *do* profit from longer lines — the opposite of the
// 1-word-line preference for data).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace urcm;
using namespace urcm::bench;

namespace {

const SimResult &measured(const std::string &Name, uint32_t ILineWords) {
  SimConfig Sim;
  Sim.Cache = paperCache();
  Sim.ModelICache = true;
  Sim.ICache.LineWords = ILineWords;
  Sim.ICache.NumLines = std::max(2u, 64u / ILineWords);
  Sim.ICache.Assoc = 2;
  return singleRun(Name, figure5Compile(), Sim);
}

void rowFor(benchmark::State &State, const std::string &Name,
            uint32_t ILineWords) {
  for (auto _ : State) {
    const SimResult &R = measured(Name, ILineWords);
    benchmark::DoNotOptimize(&R);
  }
  const SimResult &R = measured(Name, ILineWords);
  State.counters["iline_words"] = ILineWords;
  State.counters["ifetches_per_dataref"] =
      static_cast<double>(R.InstructionFetches) /
      static_cast<double>(R.Refs.total());
  State.counters["icache_hit_pct"] = R.ICache.hitRate() * 100.0;
}

void summary() {
  std::printf("\nInstruction stream vs data stream (64-word I-cache)\n");
  std::printf("%-8s %18s |  I-cache hit %% by line words\n", "bench",
              "ifetch/dataref");
  std::printf("%-8s %18s |", "", "");
  for (uint32_t L : {1u, 4u, 8u, 16u})
    std::printf(" %8u", L);
  std::printf("\n");
  for (const std::string &Name : workloadNames()) {
    const SimResult &R = measured(Name, 4);
    std::printf("%-8s %18.2f |", Name.c_str(),
                static_cast<double>(R.InstructionFetches) /
                    static_cast<double>(R.Refs.total()));
    for (uint32_t L : {1u, 4u, 8u, 16u})
      std::printf(" %7.1f%%",
                  measured(Name, L).ICache.hitRate() * 100.0);
    std::printf("\n");
  }
  std::printf("(instructions reward long lines; data prefers 1-word "
              "lines — see line_size_sweep)\n");
}

} // namespace

int main(int argc, char **argv) {
  for (const std::string &Name : workloadNames())
    for (uint32_t L : {1u, 4u, 8u, 16u})
      benchmark::RegisterBenchmark(
          ("ICache/" + Name + "/" + std::to_string(L)).c_str(),
          [Name, L](benchmark::State &State) { rowFor(State, Name, L); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  summary();
  return 0;
}
