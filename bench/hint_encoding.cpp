//===- hint_encoding.cpp - Experiment E11 (paper section 4.4) ------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Section 4.4 discusses four ways to transmit the per-reference bypass
// bit to the cache control logic:
//
//   (a) a bit embedded in each instruction      -> zero dynamic overhead;
//   (b) one explicit cache-control instruction
//       per reference                           -> +1 instruction per ref;
//   (c) a mode-switch control instruction that
//       flips the bypass/cache decision for
//       subsequent references ("bypasses may
//       come in clumps")                        -> +1 per bit transition;
//   (d) stealing an address bit                 -> zero dynamic overhead,
//                                                  half the address space.
//
// We measure the dynamic cost drivers on real executions: total data
// references (cost of (b)) and bypass-bit transitions between
// consecutive references (cost of (c)). The paper's "clumps" intuition
// holds if transitions << references.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace urcm;
using namespace urcm::bench;

namespace {

const SimResult &measured(const std::string &Name) {
  SimConfig Sim;
  Sim.Cache = paperCache();
  return singleRun(Name, figure5Compile(), Sim);
}

void rowFor(benchmark::State &State, const std::string &Name) {
  for (auto _ : State) {
    const SimResult &R = measured(Name);
    benchmark::DoNotOptimize(&R);
  }
  const SimResult &R = measured(Name);
  double Refs = static_cast<double>(R.Refs.total());
  State.counters["refs"] = Refs;
  State.counters["transitions"] =
      static_cast<double>(R.BypassTransitions);
  State.counters["per_ref_overhead_pct"] =
      100.0 * Refs / static_cast<double>(R.Steps);
  State.counters["mode_switch_overhead_pct"] =
      100.0 * static_cast<double>(R.BypassTransitions) /
      static_cast<double>(R.Steps);
}

void summary() {
  std::printf("\nHint-encoding overhead (extra instructions as %% of "
              "executed instructions)\n");
  std::printf("%-8s %14s %14s %14s %14s\n", "bench", "(a) instr bit",
              "(b) per-ref", "(c) mode-switch", "(d) addr bit");
  for (const std::string &Name : workloadNames()) {
    const SimResult &R = measured(Name);
    double Steps = static_cast<double>(R.Steps);
    std::printf("%-8s %13.1f%% %13.1f%% %13.1f%% %13.1f%%\n",
                Name.c_str(), 0.0,
                100.0 * static_cast<double>(R.Refs.total()) / Steps,
                100.0 * static_cast<double>(R.BypassTransitions) / Steps,
                0.0);
  }
  std::printf("(paper: the embedded bit (a) or address bit (d) is "
              "preferred; (c) works when bypasses clump)\n");
}

} // namespace

int main(int argc, char **argv) {
  for (const std::string &Name : workloadNames())
    benchmark::RegisterBenchmark(("HintEncoding/" + Name).c_str(),
                                 [Name](benchmark::State &State) {
                                   rowFor(State, Name);
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  summary();
  return 0;
}
