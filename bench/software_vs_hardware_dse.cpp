//===- software_vs_hardware_dse.cpp - Experiment E13 ---------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// The paper's dead-value insight can be exploited in two places: the
// *hardware* (the dead bit frees the line and drops the write-back — the
// paper's proposal) or the *compiler* (classic dead-store elimination
// removes the store entirely). This experiment pits them against each
// other and stacks them:
//
//   conventional | software DSE only | hardware dead-tag only | both
//
// DSE removes only what static analysis proves dead along *all* paths
// before codegen; the dead bit additionally catches values that die at
// run time (per-activation spill slots, last reads). Expectation: the
// combination wins; hardware tagging covers strictly more dynamic cases,
// while DSE also removes the CPU-side reference itself.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace urcm;
using namespace urcm::bench;

namespace {

struct Variant {
  const char *Label;
  bool SoftwareDSE;
  bool HardwareDeadTag;
};

const std::vector<Variant> &variants() {
  static const std::vector<Variant> V = {
      {"conventional", false, false},
      {"software_dse", true, false},
      {"hardware_tag", false, true},
      {"both", true, true},
  };
  return V;
}

const SimResult &measure(const std::string &Name, const Variant &V) {
  SimConfig Sim;
  Sim.Cache = paperCache();
  CompileOptions Options = figure5Compile();
  Options.Scheme =
      V.HardwareDeadTag ? UnifiedOptions::deadTagOnly()
                        : UnifiedOptions::conventional();
  Options.RunCleanup = V.SoftwareDSE;
  Options.Transforms.CopyPropagation = false;
  Options.Transforms.DeadCodeElimination = false;
  Options.Transforms.DeadStoreElimination = V.SoftwareDSE;
  return singleRun(Name, Options, Sim);
}

void rowFor(benchmark::State &State, const std::string &Name,
            const Variant &V) {
  for (auto _ : State) {
    const SimResult &R = measure(Name, V);
    benchmark::DoNotOptimize(&R);
  }
  const SimResult &R = measure(Name, V);
  State.counters["data_refs"] = static_cast<double>(R.Refs.total());
  State.counters["writeback_words"] =
      static_cast<double>(R.Cache.WriteBackWords);
  State.counters["bus_traffic"] =
      static_cast<double>(R.Cache.busTraffic());
}

void summary() {
  std::printf("\nSoftware DSE vs hardware dead-tagging "
              "(bus-traffic words, era compiler)\n");
  std::printf("%-8s", "bench");
  for (const Variant &V : variants())
    std::printf(" %14s", V.Label);
  std::printf("\n");
  for (const std::string &Name : workloadNames()) {
    std::printf("%-8s", Name.c_str());
    for (const Variant &V : variants())
      std::printf(" %14llu", static_cast<unsigned long long>(
                                 measure(Name, V).Cache.busTraffic()));
    std::printf("\n");
  }
  std::printf("(hardware tagging catches dynamically dead values that "
              "static DSE cannot prove)\n");
}

} // namespace

int main(int argc, char **argv) {
  // Precompute every (benchmark, variant) point across the thread pool;
  // the rows below are then memoized lookups.
  std::vector<std::function<void()>> Cells;
  for (const std::string &Name : workloadNames())
    for (const Variant &V : variants())
      Cells.push_back([Name, V] { measure(Name, V); });
  pool().parallelFor(Cells.size(), [&](size_t I) { Cells[I](); });
  for (const std::string &Name : workloadNames())
    for (const Variant &V : variants())
      benchmark::RegisterBenchmark(
          (std::string("DSE/") + Name + "/" + V.Label).c_str(),
          [Name, V](benchmark::State &State) { rowFor(State, Name, V); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  summary();
  return 0;
}
