//===- cache_size_sweep.cpp - Experiment E10 -----------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// The section-6 thought experiment: "a machine with 1000000 registers"
// cannot absorb ambiguous references, and "a machine with 1000000 words
// of cache but no registers" cannot avoid worst-case cache behavior. We
// sweep the cache size under both compilation models (era-style
// memory-resident scalars vs aggressive register allocation) and show
// that the unified scheme's cache-traffic reduction persists across
// sizes, while register allocation shrinks the pool of bypassable
// references.
//
// Each (benchmark, compilation model) pair is simulated once with
// tracing; every cache size and both schemes replay from that trace
// (see BenchCommon.h's pair-sweep helpers).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace urcm;
using namespace urcm::bench;

namespace {

const std::vector<uint32_t> &cacheSizes() {
  static const std::vector<uint32_t> Sizes = {16, 64, 256, 1024};
  return Sizes;
}

CompileOptions optionsFor(bool Era) {
  CompileOptions Options = figure5Compile();
  Options.IRGen.ScalarLocalsInMemory = Era;
  return Options;
}

std::vector<SweepPoint> grid() {
  std::vector<SweepPoint> G;
  for (uint32_t Lines : cacheSizes()) {
    CacheConfig Cache = paperCache();
    Cache.NumLines = Lines;
    G.push_back({Cache, TracePolicy::LRU, /*IgnoreHints=*/false});
  }
  return G;
}

size_t sizeIndex(uint32_t Lines) {
  for (size_t I = 0; I != cacheSizes().size(); ++I)
    if (cacheSizes()[I] == Lines)
      return I;
  return 0;
}

SchemeComparison measure(const std::string &Name, uint32_t Lines,
                         bool Era) {
  return pairComparison(Name, optionsFor(Era), cacheSizes().size(),
                        sizeIndex(Lines));
}

void rowFor(benchmark::State &State, const std::string &Name,
            uint32_t Lines, bool Era) {
  for (auto _ : State) {
    SchemeComparison C = measure(Name, Lines, Era);
    benchmark::DoNotOptimize(&C);
  }
  SchemeComparison C = measure(Name, Lines, Era);
  State.counters["cache_lines"] = Lines;
  State.counters["reduction_pct"] = C.cacheTrafficReductionPercent();
  State.counters["conv_hit_pct"] = C.Conventional.Cache.hitRate() * 100.0;
}

void summary() {
  for (bool Era : {true, false}) {
    std::printf("\nCache-size sweep (%s): cache-traffic reduction %%\n",
                Era ? "era compiler" : "allocating compiler");
    std::printf("%-8s", "bench");
    for (uint32_t L : cacheSizes())
      std::printf(" %9u", L);
    std::printf("\n");
    for (const std::string &Name : workloadNames()) {
      std::printf("%-8s", Name.c_str());
      for (uint32_t L : cacheSizes())
        std::printf(" %8.1f%%",
                    measure(Name, L, Era).cacheTrafficReductionPercent());
      std::printf("\n");
    }
  }
  std::printf("(reduction persists across sizes in era code; register "
              "allocation absorbs it)\n");
}

} // namespace

int main(int argc, char **argv) {
  // The largest geometry is the cheapest to simulate live, so it hosts
  // the traced base run; the other sizes are pure replay.
  for (const std::string &Name : workloadNames())
    for (bool Era : {true, false})
      schedulePairSweep(Name, optionsFor(Era), grid(),
                        /*BaseIndex=*/cacheSizes().size() - 1);
  engine().run();
  for (const std::string &Name : workloadNames())
    for (uint32_t Lines : cacheSizes())
      for (bool Era : {true, false}) {
        std::string Label = "CacheSize/" + Name + "/" +
                            std::to_string(Lines) +
                            (Era ? "/era" : "/alloc");
        benchmark::RegisterBenchmark(
            Label.c_str(), [Name, Lines, Era](benchmark::State &State) {
              rowFor(State, Name, Lines, Era);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  summary();
  return 0;
}
