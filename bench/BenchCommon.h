//===- BenchCommon.h - Shared benchmark-harness helpers ---------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the experiment binaries in bench/. Each binary
/// regenerates one exhibit of the paper (see DESIGN.md's experiment
/// index) as google-benchmark rows whose counters carry the reproduced
/// numbers; a human-readable recap is printed at exit.
///
/// Simulations are memoized: google-benchmark may invoke a row several
/// times, but each (program, scheme, cache) point is simulated once.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_BENCH_BENCHCOMMON_H
#define URCM_BENCH_BENCHCOMMON_H

#include "urcm/driver/Driver.h"
#include "urcm/workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

namespace urcm {
namespace bench {

/// The paper's simulated data cache: modest 1989-scale geometry with
/// one-word lines (section 1) and LRU replacement.
inline CacheConfig paperCache() {
  CacheConfig C;
  C.NumLines = 128;
  C.Assoc = 2;
  C.LineWords = 1;
  C.Policy = ReplacementPolicy::LRU;
  return C;
}

/// The Figure-5 compilation configuration: era-style code (scalar locals
/// in memory, like the MIPS binaries the paper measured) with the blind
/// all-unambiguous bypass the paper proposes.
inline CompileOptions figure5Compile() {
  CompileOptions Options;
  Options.IRGen.ScalarLocalsInMemory = true;
  Options.Scheme = UnifiedOptions::unified();
  return Options;
}

/// Memoized two-scheme comparison.
inline const SchemeComparison &comparison(const std::string &WorkloadName,
                                          const CompileOptions &Options,
                                          const CacheConfig &Cache,
                                          const std::string &Key) {
  static std::map<std::string, SchemeComparison> Cached;
  auto It = Cached.find(Key);
  if (It != Cached.end())
    return It->second;
  const Workload *W = findWorkload(WorkloadName);
  if (!W) {
    std::fprintf(stderr, "unknown workload %s\n", WorkloadName.c_str());
    std::abort();
  }
  SchemeComparison C = compareSchemes(W->Source, Options, Cache);
  if (!C.ok()) {
    std::fprintf(stderr, "%s: %s\n", WorkloadName.c_str(),
                 C.Error.c_str());
    std::abort();
  }
  return Cached.emplace(Key, std::move(C)).first->second;
}

/// Memoized single-scheme run.
inline const SimResult &singleRun(const std::string &WorkloadName,
                                  const CompileOptions &Options,
                                  const SimConfig &Sim,
                                  const std::string &Key) {
  static std::map<std::string, SimResult> Cached;
  auto It = Cached.find(Key);
  if (It != Cached.end())
    return It->second;
  const Workload *W = findWorkload(WorkloadName);
  DiagnosticEngine Diags;
  SimResult R = compileAndRun(W->Source, Options, Sim, Diags);
  if (!R.ok()) {
    std::fprintf(stderr, "%s: %s\n", WorkloadName.c_str(),
                 R.Error.c_str());
    std::abort();
  }
  return Cached.emplace(Key, std::move(R)).first->second;
}

/// The six benchmark names in the paper's order.
inline const std::vector<std::string> &workloadNames() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> N;
    for (const Workload &W : paperWorkloads())
      N.push_back(W.Name);
    return N;
  }();
  return Names;
}

} // namespace bench
} // namespace urcm

#endif // URCM_BENCH_BENCHCOMMON_H
