//===- BenchCommon.h - Shared benchmark-harness helpers ---------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the experiment binaries in bench/. Each binary
/// regenerates one exhibit of the paper (see DESIGN.md's experiment
/// index) as google-benchmark rows whose counters carry the reproduced
/// numbers; a human-readable recap is printed at exit.
///
/// Simulations are memoized and keyed on the *contents* of the
/// compile/cache/simulator configuration (not caller-chosen strings),
/// so two call sites asking for the same point can never race or
/// duplicate work; the caches are mutex-guarded and safe to use from
/// ThreadPool tasks.
///
/// Sweep-style exhibits (many cache geometries/policies for one
/// compiled program) go through the SweepEngine: the program is
/// simulated once with tracing and every sweep point is replayed from
/// the trace (see urcm/sim/SweepEngine.h). The scheme-pair helpers
/// additionally serve the *conventional* scheme from the unified run's
/// trace with the hint bits stripped — sound because the two
/// compilations share one instruction stream, which schedulePairSweep
/// verifies instruction by instruction at compile time.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_BENCH_BENCHCOMMON_H
#define URCM_BENCH_BENCHCOMMON_H

#include "urcm/driver/Driver.h"
#include "urcm/sim/SweepEngine.h"
#include "urcm/support/ThreadPool.h"
#include "urcm/workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <future>
#include <map>
#include <mutex>
#include <string>

namespace urcm {
namespace bench {

/// The paper's simulated data cache: modest 1989-scale geometry with
/// one-word lines (section 1) and LRU replacement.
inline CacheConfig paperCache() {
  CacheConfig C;
  C.NumLines = 128;
  C.Assoc = 2;
  C.LineWords = 1;
  C.Policy = ReplacementPolicy::LRU;
  return C;
}

/// The Figure-5 compilation configuration: era-style code (scalar locals
/// in memory, like the MIPS binaries the paper measured) with the blind
/// all-unambiguous bypass the paper proposes.
inline CompileOptions figure5Compile() {
  CompileOptions Options;
  Options.IRGen.ScalarLocalsInMemory = true;
  Options.Scheme = UnifiedOptions::unified();
  return Options;
}

/// The six benchmark names in the paper's order.
inline const std::vector<std::string> &workloadNames() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> N;
    for (const Workload &W : paperWorkloads())
      N.push_back(W.Name);
    return N;
  }();
  return Names;
}

/// The process-wide thread pool for experiment-level parallelism.
inline ThreadPool &pool() { return ThreadPool::global(); }

/// The process-wide sweep engine (compile-once/replay-many).
inline SweepEngine &engine() { return SweepEngine::global(); }

//===----------------------------------------------------------------------===//
// Configuration fingerprints (memoization keys).
//===----------------------------------------------------------------------===//

/// Every CacheConfig field, including the Random-policy seed.
inline std::string fingerprint(const CacheConfig &C) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "c%u.%u.%u.%d.%d.%llu", C.NumLines,
                C.Assoc, C.LineWords, static_cast<int>(C.Policy),
                static_cast<int>(C.Write),
                static_cast<unsigned long long>(C.Seed));
  return Buf;
}

/// Every SimConfig field that can affect the result (the trace reserve
/// hint is a pure allocation hint and is deliberately excluded).
inline std::string fingerprint(const SimConfig &S) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "|s%llu.%d.%d.%d|",
                static_cast<unsigned long long>(S.MaxSteps),
                S.Paranoid ? 1 : 0, S.RecordTrace ? 1 : 0,
                S.ModelICache ? 1 : 0);
  return fingerprint(S.Cache) + Buf + fingerprint(S.ICache);
}

/// Every CompileOptions field.
inline std::string fingerprint(const CompileOptions &O) {
  char Buf[160];
  std::snprintf(
      Buf, sizeof(Buf), "o%d.%d.%d%d%d%d.%u.%d.%u.%d.%u.%d%d.%d.%g.%d.%llu.%llu",
      O.IRGen.ScalarLocalsInMemory ? 1 : 0, O.RunCleanup ? 1 : 0,
      O.Transforms.CopyPropagation ? 1 : 0,
      O.Transforms.ValueNumbering ? 1 : 0,
      O.Transforms.DeadCodeElimination ? 1 : 0,
      O.Transforms.DeadStoreElimination ? 1 : 0, O.Transforms.MaxRounds,
      O.PromoteLoopScalars ? 1 : 0, O.RegAlloc.NumColors,
      static_cast<int>(O.RegAlloc.Policy), O.RegAlloc.MaxIterations,
      O.Scheme.EnableBypass ? 1 : 0, O.Scheme.EnableDeadTag ? 1 : 0,
      static_cast<int>(O.Scheme.Policy), O.Scheme.ReuseThreshold,
      O.VerifyIR ? 1 : 0, static_cast<unsigned long long>(O.GlobalBase),
      static_cast<unsigned long long>(O.StackTop));
  return Buf;
}

//===----------------------------------------------------------------------===//
// Thread-safe memoization.
//===----------------------------------------------------------------------===//

/// Returns the cached value for \p Key, computing it with \p Compute
/// outside the lock if absent. Concurrent callers with the same key
/// block on one computation instead of duplicating it.
template <typename T, typename Fn>
const T &memoized(std::map<std::string, std::shared_future<T>> &Cache,
                  std::mutex &M, const std::string &Key, Fn &&Compute) {
  std::promise<T> Mine;
  std::shared_future<T> F;
  bool Owner = false;
  {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Cache.find(Key);
    if (It == Cache.end()) {
      F = Mine.get_future().share();
      Cache.emplace(Key, F);
      Owner = true;
    } else {
      F = It->second;
    }
  }
  if (Owner)
    Mine.set_value(Compute());
  return F.get();
}

inline const Workload &workloadOrDie(const std::string &Name) {
  const Workload *W = findWorkload(Name);
  if (!W) {
    std::fprintf(stderr, "unknown workload %s\n", Name.c_str());
    std::abort();
  }
  return *W;
}

/// Memoized two-scheme comparison (keyed on configuration contents).
inline const SchemeComparison &comparison(const std::string &WorkloadName,
                                          const CompileOptions &Options,
                                          const CacheConfig &Cache) {
  static std::map<std::string, std::shared_future<SchemeComparison>> Cached;
  static std::mutex M;
  std::string Key =
      WorkloadName + "|" + fingerprint(Options) + "|" + fingerprint(Cache);
  return memoized(Cached, M, Key, [&] {
    SchemeComparison C =
        compareSchemes(workloadOrDie(WorkloadName).Source, Options, Cache);
    if (!C.ok()) {
      std::fprintf(stderr, "%s: %s\n", WorkloadName.c_str(),
                   C.Error.c_str());
      std::abort();
    }
    return C;
  });
}

/// Memoized single-scheme run (keyed on configuration contents).
inline const SimResult &singleRun(const std::string &WorkloadName,
                                  const CompileOptions &Options,
                                  const SimConfig &Sim) {
  static std::map<std::string, std::shared_future<SimResult>> Cached;
  static std::mutex M;
  std::string Key =
      WorkloadName + "|" + fingerprint(Options) + "|" + fingerprint(Sim);
  return memoized(Cached, M, Key, [&] {
    DiagnosticEngine Diags;
    SimResult R = compileAndRun(workloadOrDie(WorkloadName).Source, Options,
                                Sim, Diags);
    if (!R.ok()) {
      std::fprintf(stderr, "%s: %s\n", WorkloadName.c_str(),
                   R.Error.c_str());
      std::abort();
    }
    return R;
  });
}

//===----------------------------------------------------------------------===//
// Scheme-pair sweeps (compile once, serve both schemes from one trace).
//===----------------------------------------------------------------------===//

// The stream-equality precondition for hint-stripped replay lives in
// the codegen library: sameStreamModuloHints (urcm/codegen/MachineIR.h).

inline std::string pairSweepKey(const std::string &Name,
                                const CompileOptions &Options) {
  return "pair|" + Name + "|" + fingerprint(Options);
}

/// Schedules one compile-once experiment on the sweep engine that
/// serves BOTH schemes of (\p Name, \p Options) at every (geometry,
/// policy) point of \p Grid:
///
///  * the program is compiled with hints enabled, verified against the
///    hint-disabled compilation (identical instruction stream modulo
///    hint bits — abort if not, rather than report stats that mean
///    something else), and simulated ONCE with tracing at
///    Grid[BaseIndex]'s geometry;
///  * unified-scheme stats replay the trace as recorded, conventional
///    stats replay it with the hints stripped.
///
/// Run engine().run() after scheduling, then read the points with
/// pairUnifiedStats()/pairConventionalStats()/pairComparison().
inline void schedulePairSweep(const std::string &Name,
                              const CompileOptions &Options,
                              const std::vector<SweepPoint> &Grid,
                              size_t BaseIndex) {
  std::vector<SweepPoint> Points;
  Points.reserve(Grid.size() * 2);
  for (const SweepPoint &P : Grid) {
    SweepPoint Hinted = P;
    Hinted.IgnoreHints = false;
    Points.push_back(Hinted);
  }
  for (const SweepPoint &P : Grid) {
    SweepPoint Stripped = P;
    Stripped.IgnoreHints = true;
    Points.push_back(Stripped);
  }
  SimConfig Base;
  Base.Cache = Grid[BaseIndex].Config;
  engine().schedule(
      pairSweepKey(Name, Options), Name, Base, std::move(Points),
      [Name, Options](const SimConfig &Sim) {
        const Workload &W = workloadOrDie(Name);
        CompileOptions Unified = Options;
        Unified.Scheme.EnableBypass = true;
        Unified.Scheme.EnableDeadTag = true;
        CompileOptions Conventional = Options;
        Conventional.Scheme.EnableBypass = false;
        Conventional.Scheme.EnableDeadTag = false;
        DiagnosticEngine DiagsUni, DiagsConv;
        CompileResult U = compileProgram(W.Source, Unified, DiagsUni);
        CompileResult C = compileProgram(W.Source, Conventional, DiagsConv);
        if (!U.Ok || !C.Ok) {
          std::fprintf(stderr, "%s: compilation failed\n%s%s\n",
                       Name.c_str(), DiagsUni.str().c_str(),
                       DiagsConv.str().c_str());
          std::abort();
        }
        if (!sameStreamModuloHints(U.Program, C.Program)) {
          std::fprintf(stderr,
                       "%s: scheme instruction streams diverge; "
                       "hint-stripped replay would be unsound\n",
                       Name.c_str());
          std::abort();
        }
        Simulator S(Sim);
        SimResult R = S.run(U.Program);
        if (!R.ok()) {
          std::fprintf(stderr, "%s: %s\n", Name.c_str(), R.Error.c_str());
          std::abort();
        }
        if (R.CoherenceViolations != 0) {
          std::fprintf(stderr, "%s: coherence violations detected\n",
                       Name.c_str());
          std::abort();
        }
        return R;
      });
}

/// Unified-scheme counters of grid point \p Index.
inline const CacheStats &pairUnifiedStats(const std::string &Name,
                                          const CompileOptions &Options,
                                          size_t Index) {
  return engine().point(pairSweepKey(Name, Options), Index);
}

/// Conventional-scheme counters of grid point \p Index (\p GridSize is
/// the grid's full size; stripped points follow the hinted ones).
inline const CacheStats &pairConventionalStats(const std::string &Name,
                                               const CompileOptions &Options,
                                               size_t GridSize,
                                               size_t Index) {
  return engine().point(pairSweepKey(Name, Options), GridSize + Index);
}

/// Assembles the SchemeComparison view of grid point \p Index from a
/// pair sweep, mirroring compareSchemes: the per-scheme SimResults are
/// the shared base run with the scheme's replayed cache counters and
/// (for the conventional side) the hint-dependent reference counters
/// zeroed, exactly as a hint-free run of the same stream reports them.
/// StaticStats is not populated (no sweep exhibit consumes it).
inline SchemeComparison pairComparison(const std::string &Name,
                                       const CompileOptions &Options,
                                       size_t GridSize, size_t Index) {
  const SimResult &Base = engine().base(pairSweepKey(Name, Options));
  SchemeComparison C;
  C.Unified = Base;
  C.Unified.Cache = pairUnifiedStats(Name, Options, Index);
  C.Conventional = Base;
  C.Conventional.Cache =
      pairConventionalStats(Name, Options, GridSize, Index);
  C.Conventional.Refs.Bypassed = 0;
  C.Conventional.Refs.LastRefTagged = 0;
  C.Conventional.BypassTransitions = 0;
  return C;
}

//===----------------------------------------------------------------------===//
// Single-scheme sweeps.
//===----------------------------------------------------------------------===//

inline std::string singleSweepKey(const std::string &Name,
                                  const CompileOptions &Options) {
  return "single|" + Name + "|" + fingerprint(Options);
}

/// Schedules a compile-once sweep of (\p Name, \p Options) over \p Grid
/// with the hints as compiled; the traced base run uses
/// Grid[BaseIndex]'s geometry. Read points with singleSweepStats()
/// after engine().run().
inline void scheduleSingleSweep(const std::string &Name,
                                const CompileOptions &Options,
                                std::vector<SweepPoint> Grid,
                                size_t BaseIndex) {
  SimConfig Base;
  Base.Cache = Grid[BaseIndex].Config;
  engine().schedule(singleSweepKey(Name, Options), Name, Base,
                    std::move(Grid), [Name, Options](const SimConfig &Sim) {
                      DiagnosticEngine Diags;
                      SimResult R =
                          compileAndRun(workloadOrDie(Name).Source, Options,
                                        Sim, Diags);
                      if (!R.ok()) {
                        std::fprintf(stderr, "%s: %s\n", Name.c_str(),
                                     R.Error.c_str());
                        std::abort();
                      }
                      return R;
                    });
}

inline const CacheStats &singleSweepStats(const std::string &Name,
                                          const CompileOptions &Options,
                                          size_t Index) {
  return engine().point(singleSweepKey(Name, Options), Index);
}

/// The base run of a single-scheme sweep.
inline const SimResult &singleSweepBase(const std::string &Name,
                                        const CompileOptions &Options) {
  return engine().base(singleSweepKey(Name, Options));
}

} // namespace bench
} // namespace urcm

#endif // URCM_BENCH_BENCHCOMMON_H
