//===- static_dynamic_ambiguity.cpp - Experiments E2 + E3 ----------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Regenerates the paper's section-5 measurements:
//   E2  "Statically, about 70 to 80 percent of the load/stored data
//        references might be marked as unambiguous and should be
//        bypassed the cache."
//   E3  "Runtime measurement showed that about 45 to 75 percent of the
//        loaded/stored data references are unambiguous."
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace urcm;
using namespace urcm::bench;

namespace {

const SchemeComparison &measured(const std::string &Name) {
  return comparison(Name, figure5Compile(), paperCache());
}

void rowFor(benchmark::State &State, const std::string &Name) {
  for (auto _ : State) {
    const SchemeComparison &C = measured(Name);
    benchmark::DoNotOptimize(&C);
  }
  const SchemeComparison &C = measured(Name);
  State.counters["static_unambiguous_pct"] =
      C.StaticStats.unambiguousFraction() * 100.0;
  State.counters["dynamic_unambiguous_pct"] =
      C.Unified.Refs.unambiguousFraction() * 100.0;
  State.counters["static_refs"] =
      static_cast<double>(C.StaticStats.totalRefs());
  State.counters["dynamic_refs"] =
      static_cast<double>(C.Unified.Refs.total());
  State.counters["dynamic_bypassed_pct"] =
      100.0 * static_cast<double>(C.Unified.Refs.Bypassed) /
      static_cast<double>(C.Unified.Refs.total());
}

void summary() {
  std::printf("\nStatic/dynamic unambiguous data references "
              "(paper section 5)\n");
  std::printf("%-8s %12s %12s   paper: static 70-80%%, dynamic "
              "45-75%%\n",
              "bench", "static", "dynamic");
  for (const std::string &Name : workloadNames()) {
    const SchemeComparison &C = measured(Name);
    std::printf("%-8s %11.1f%% %11.1f%%\n", Name.c_str(),
                C.StaticStats.unambiguousFraction() * 100.0,
                C.Unified.Refs.unambiguousFraction() * 100.0);
  }
}

} // namespace

int main(int argc, char **argv) {
  for (const std::string &Name : workloadNames())
    benchmark::RegisterBenchmark(("Ambiguity/" + Name).c_str(),
                                 [Name](benchmark::State &State) {
                                   rowFor(State, Name);
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  summary();
  return 0;
}
