//===- replacement_policies.cpp - Experiment E8 --------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Section 3.2 claims the dead-line freeing composes with LRU, FIFO,
// Random *and Belady's MIN*. We record one data-reference trace per
// benchmark and replay it against all four policies for both schemes
// (the conventional cells replay with the hint bits stripped; the
// instruction stream is scheme-independent, which the pair sweep
// verifies), reporting miss counts. MIN needs future knowledge, hence
// the trace-driven replay.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "urcm/sim/TraceSim.h"

using namespace urcm;
using namespace urcm::bench;

namespace {

const std::vector<TracePolicy> &policies() {
  static const std::vector<TracePolicy> P = {
      TracePolicy::LRU, TracePolicy::FIFO, TracePolicy::Random,
      TracePolicy::MIN};
  return P;
}

std::vector<SweepPoint> grid() {
  std::vector<SweepPoint> G;
  for (TracePolicy P : policies())
    G.push_back({paperCache(), P, /*IgnoreHints=*/false});
  return G;
}

size_t policyIndex(TracePolicy Policy) {
  for (size_t I = 0; I != policies().size(); ++I)
    if (policies()[I] == Policy)
      return I;
  return 0;
}

CacheStats replayed(const std::string &Name, bool Unified,
                    TracePolicy Policy) {
  size_t I = policyIndex(Policy);
  return Unified
             ? pairUnifiedStats(Name, figure5Compile(), I)
             : pairConventionalStats(Name, figure5Compile(),
                                     policies().size(), I);
}

void rowFor(benchmark::State &State, const std::string &Name,
            bool Unified, TracePolicy Policy) {
  for (auto _ : State)
    benchmark::DoNotOptimize(replayed(Name, Unified, Policy));
  CacheStats S = replayed(Name, Unified, Policy);
  State.counters["misses"] = static_cast<double>(S.misses());
  State.counters["hit_pct"] = S.hitRate() * 100.0;
  State.counters["writeback_words"] =
      static_cast<double>(S.WriteBackWords);
  State.counters["dead_frees"] = static_cast<double>(S.DeadFrees);
}

void summary() {
  std::printf("\nReplacement policies x schemes (misses; trace replay, "
              "128-line 2-way)\n");
  std::printf("%-8s %10s |", "bench", "scheme");
  for (TracePolicy P : policies())
    std::printf(" %10s", tracePolicyName(P));
  std::printf("\n");
  for (const std::string &Name : workloadNames()) {
    for (bool Unified : {false, true}) {
      std::printf("%-8s %10s |", Name.c_str(),
                  Unified ? "unified" : "conv");
      for (TracePolicy P : policies())
        std::printf(" %10llu",
                    static_cast<unsigned long long>(
                        replayed(Name, Unified, P).misses()));
      std::printf("\n");
    }
  }
  std::printf("(MIN is the optimality floor per scheme; unified rows "
              "have fewer through-cache refs)\n");
}

} // namespace

int main(int argc, char **argv) {
  for (const std::string &Name : workloadNames())
    schedulePairSweep(Name, figure5Compile(), grid(), /*BaseIndex=*/0);
  engine().run();
  for (const std::string &Name : workloadNames())
    for (bool Unified : {false, true})
      for (TracePolicy Policy : policies()) {
        std::string Label = "Policies/" + Name + "/" +
                            (Unified ? "unified/" : "conv/") +
                            tracePolicyName(Policy);
        benchmark::RegisterBenchmark(
            Label.c_str(),
            [Name, Unified, Policy](benchmark::State &State) {
              rowFor(State, Name, Unified, Policy);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  summary();
  return 0;
}
