//===- reuse_threshold_sweep.cpp - Experiment E16 ------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Sensitivity analysis for the ReuseAware bypass policy (our
// implementation of section 4.2's "cache will only be used when it may
// improve performance"): sweeping the reuse threshold trades the
// Figure-5 cache-traffic reduction against bus traffic. A location
// bypasses when its reuse weight is *below* the threshold, so threshold
// 0 keeps everything cached (dead-tag only) and a huge threshold
// degenerates to the paper's blind all-unambiguous bypass.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace urcm;
using namespace urcm::bench;

namespace {

const std::vector<double> &thresholds() {
  static const std::vector<double> T = {0, 5, 50, 500, 5e4, 1e12};
  return T;
}

const SimResult &measure(const std::string &Name, double Threshold) {
  SimConfig Sim;
  Sim.Cache = paperCache();
  CompileOptions Options = figure5Compile();
  Options.Scheme = UnifiedOptions::reuseAware();
  Options.Scheme.ReuseThreshold = Threshold;
  return singleRun(Name, Options, Sim);
}

const SimResult &baseline(const std::string &Name) {
  SimConfig Sim;
  Sim.Cache = paperCache();
  CompileOptions Options = figure5Compile();
  Options.Scheme = UnifiedOptions::conventional();
  return singleRun(Name, Options, Sim);
}

void rowFor(benchmark::State &State, const std::string &Name,
            double Threshold) {
  for (auto _ : State) {
    const SimResult &R = measure(Name, Threshold);
    benchmark::DoNotOptimize(&R);
  }
  const SimResult &R = measure(Name, Threshold);
  const SimResult &B = baseline(Name);
  State.counters["cache_red_pct"] =
      100.0 *
      (static_cast<double>(B.Cache.cacheTraffic()) -
       static_cast<double>(R.Cache.cacheTraffic())) /
      static_cast<double>(B.Cache.cacheTraffic());
  State.counters["bus_ratio"] =
      static_cast<double>(R.Cache.busTraffic()) /
      std::max<double>(1.0, static_cast<double>(B.Cache.busTraffic()));
}

void summary() {
  std::printf("\nReuse-threshold sweep: cache-traffic reduction %% "
              "(top) and bus-traffic ratio vs conventional (bottom)\n");
  std::printf("%-8s", "bench");
  for (double T : thresholds())
    std::printf(" %10.0g", T);
  std::printf("\n");
  for (const std::string &Name : workloadNames()) {
    const SimResult &B = baseline(Name);
    std::printf("%-8s", Name.c_str());
    for (double T : thresholds()) {
      const SimResult &R = measure(Name, T);
      std::printf(" %9.1f%%",
                  100.0 *
                      (static_cast<double>(B.Cache.cacheTraffic()) -
                       static_cast<double>(R.Cache.cacheTraffic())) /
                      static_cast<double>(B.Cache.cacheTraffic()));
    }
    std::printf("\n%-8s", "");
    for (double T : thresholds()) {
      const SimResult &R = measure(Name, T);
      std::printf(" %9.2fx",
                  static_cast<double>(R.Cache.busTraffic()) /
                      std::max<double>(
                          1.0, static_cast<double>(B.Cache.busTraffic())));
    }
    std::printf("\n");
  }
  std::printf("(threshold 0 = dead-tag only; 1e12 = paper's blind "
              "bypass: max cache reduction, max bus cost)\n");
}

} // namespace

int main(int argc, char **argv) {
  // Precompute every (benchmark, threshold) point across the thread
  // pool; the rows below are then memoized lookups.
  std::vector<std::function<void()>> Cells;
  for (const std::string &Name : workloadNames()) {
    Cells.push_back([Name] { baseline(Name); });
    for (double T : thresholds())
      Cells.push_back([Name, T] { measure(Name, T); });
  }
  pool().parallelFor(Cells.size(), [&](size_t I) { Cells[I](); });
  for (const std::string &Name : workloadNames())
    for (double T : thresholds())
      benchmark::RegisterBenchmark(
          ("ReuseThreshold/" + Name + "/" + std::to_string(T)).c_str(),
          [Name, T](benchmark::State &State) { rowFor(State, Name, T); })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  summary();
  return 0;
}
