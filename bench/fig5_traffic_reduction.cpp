//===- fig5_traffic_reduction.cpp - Experiments E1 + E4 ------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Regenerates **Figure 5**: "Percent of Data Cache Reference Traffic
// Reduction" for the six DARPA MIPS benchmarks, plus the paper's prose
// claim that overall data-cache memory traffic falls by about 60 % (E4).
//
// Configuration: era-style compilation (scalar locals in memory, like
// the MIPS code the paper measured), one-word lines, LRU, 128-line
// 2-way data cache. The unified scheme differs from the conventional one
// only in the hint bits; the instruction stream is identical.
//
// Paper target shape: every benchmark improves; reductions sit in the
// 45-75 % band; the mean is near 60 %.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace urcm;
using namespace urcm::bench;

namespace {

const SchemeComparison &fig5(const std::string &Name) {
  return comparison(Name, figure5Compile(), paperCache());
}

void rowFor(benchmark::State &State, const std::string &Name) {
  for (auto _ : State) {
    const SchemeComparison &C = fig5(Name);
    benchmark::DoNotOptimize(&C);
  }
  const SchemeComparison &C = fig5(Name);
  State.counters["conv_cache_traffic"] =
      static_cast<double>(C.Conventional.Cache.cacheTraffic());
  State.counters["uni_cache_traffic"] =
      static_cast<double>(C.Unified.Cache.cacheTraffic());
  State.counters["reduction_pct"] = C.cacheTrafficReductionPercent();
  State.counters["dyn_unambiguous_pct"] = C.dynamicUnambiguousPercent();
  State.counters["conv_hit_pct"] = C.Conventional.Cache.hitRate() * 100.0;
  State.counters["uni_hit_pct"] = C.Unified.Cache.hitRate() * 100.0;
}

void summary() {
  std::printf("\nFigure 5: Percent of Data Cache Reference Traffic "
              "Reduction\n");
  std::printf("(era compiler, 128-line 2-way LRU cache, 1-word lines)\n");
  std::printf("%-8s %16s %16s %12s\n", "bench", "conv traffic",
              "unified traffic", "reduction");
  double Sum = 0;
  for (const std::string &Name : workloadNames()) {
    const SchemeComparison &C = fig5(Name);
    std::printf("%-8s %16llu %16llu %11.1f%%\n", Name.c_str(),
                static_cast<unsigned long long>(
                    C.Conventional.Cache.cacheTraffic()),
                static_cast<unsigned long long>(
                    C.Unified.Cache.cacheTraffic()),
                C.cacheTrafficReductionPercent());
    Sum += C.cacheTrafficReductionPercent();
  }
  std::printf("%-8s %16s %16s %11.1f%%   (paper: ~60%%)\n", "mean", "",
              "", Sum / workloadNames().size());
}

} // namespace

int main(int argc, char **argv) {
  for (const std::string &Name : workloadNames())
    benchmark::RegisterBenchmark(("Fig5/" + Name).c_str(),
                                 [Name](benchmark::State &State) {
                                   rowFor(State, Name);
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  summary();
  return 0;
}
