//===- cache_occupancy.cpp - Experiment E14 (the paper's motivation) -----------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Quantifies the claim the whole paper is built on (section 1: "Cache
// space is wasted to hold inaccessible copies of values"; section 3.2:
// "approximately 1/r of the cache cells will be wasted"): at sampled
// instants during execution, what fraction of resident cache lines is
// *dead* — never read again before being overwritten or the program
// ending?
//
// We measure conventional vs unified on the same geometry. The unified
// scheme's bypasses keep single-use values out and its dead tags free
// lines at their last use, so dead residency should collapse.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "urcm/sim/Occupancy.h"

using namespace urcm;
using namespace urcm::bench;

namespace {

const SimResult &tracedRun(const std::string &Name, bool Unified) {
  SimConfig Sim;
  Sim.Cache = paperCache();
  Sim.RecordTrace = true;
  CompileOptions Options = figure5Compile();
  Options.Scheme = Unified ? UnifiedOptions::unified()
                           : UnifiedOptions::conventional();
  return singleRun(Name, Options, Sim);
}

OccupancyStats occupancy(const std::string &Name, bool Unified) {
  static std::map<std::string, OccupancyStats> Cached;
  std::string Key = Name + (Unified ? "/u" : "/c");
  auto It = Cached.find(Key);
  if (It != Cached.end())
    return It->second;
  const SimResult &R = tracedRun(Name, Unified);
  OccupancyStats S = analyzeDeadOccupancy(R.Trace, paperCache());
  Cached.emplace(Key, S);
  return S;
}

void rowFor(benchmark::State &State, const std::string &Name,
            bool Unified) {
  for (auto _ : State)
    benchmark::DoNotOptimize(occupancy(Name, Unified));
  OccupancyStats S = occupancy(Name, Unified);
  State.counters["dead_fraction_pct"] = S.deadFraction() * 100.0;
  State.counters["occupancy_pct"] =
      S.meanOccupancy(paperCache().NumLines) * 100.0;
}

void summary() {
  std::printf("\nDead cache occupancy: %% of resident lines holding "
              "never-read-again data\n");
  std::printf("%-8s %14s %14s   (paper section 3.2: ~1/r of cells "
              "wasted)\n",
              "bench", "conventional", "unified");
  for (const std::string &Name : workloadNames())
    std::printf("%-8s %13.1f%% %13.1f%%\n", Name.c_str(),
                occupancy(Name, false).deadFraction() * 100.0,
                occupancy(Name, true).deadFraction() * 100.0);
}

} // namespace

int main(int argc, char **argv) {
  for (const std::string &Name : workloadNames())
    for (bool Unified : {false, true})
      benchmark::RegisterBenchmark(
          ("Occupancy/" + Name + (Unified ? "/unified" : "/conv"))
              .c_str(),
          [Name, Unified](benchmark::State &State) {
            rowFor(State, Name, Unified);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  summary();
  return 0;
}
