//===- deadtag_ablation.cpp - Experiment E6 ------------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Regenerates the section-3.2 argument: last-reference (dead) tagging
// frees cache lines early ("approximately 1/r of the cache cells are
// wasted" under plain LRU) and drops the write-backs of dead dirty
// lines. We compare the conventional scheme against dead-tag-only: same
// instruction stream, no bypassing, only the dead bit differs.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace urcm;
using namespace urcm::bench;

namespace {

struct DeadTagPoint {
  const SimResult *Conventional;
  const SimResult *DeadTag;
};

DeadTagPoint measure(const std::string &Name) {
  SimConfig Sim;
  Sim.Cache = paperCache();

  CompileOptions Conv = figure5Compile();
  Conv.Scheme = UnifiedOptions::conventional();
  CompileOptions Dead = figure5Compile();
  Dead.Scheme = UnifiedOptions::deadTagOnly();

  DeadTagPoint P;
  P.Conventional = &singleRun(Name, Conv, Sim);
  P.DeadTag = &singleRun(Name, Dead, Sim);
  return P;
}

void rowFor(benchmark::State &State, const std::string &Name) {
  for (auto _ : State) {
    DeadTagPoint P = measure(Name);
    benchmark::DoNotOptimize(&P);
  }
  DeadTagPoint P = measure(Name);
  State.counters["conv_writeback_words"] =
      static_cast<double>(P.Conventional->Cache.WriteBackWords);
  State.counters["dead_writeback_words"] =
      static_cast<double>(P.DeadTag->Cache.WriteBackWords);
  State.counters["writebacks_avoided"] =
      static_cast<double>(P.DeadTag->Cache.DeadWriteBacksAvoided);
  State.counters["lines_freed"] =
      static_cast<double>(P.DeadTag->Cache.DeadFrees);
  State.counters["conv_bus_traffic"] =
      static_cast<double>(P.Conventional->Cache.busTraffic());
  State.counters["dead_bus_traffic"] =
      static_cast<double>(P.DeadTag->Cache.busTraffic());
}

void summary() {
  std::printf("\nDead-tagging ablation (conventional vs dead-tag-only, "
              "paper section 3.2)\n");
  std::printf("%-8s %14s %14s %12s %12s\n", "bench", "conv wb(words)",
              "dead wb(words)", "wb avoided", "lines freed");
  for (const std::string &Name : workloadNames()) {
    DeadTagPoint P = measure(Name);
    std::printf("%-8s %14llu %14llu %12llu %12llu\n", Name.c_str(),
                static_cast<unsigned long long>(
                    P.Conventional->Cache.WriteBackWords),
                static_cast<unsigned long long>(
                    P.DeadTag->Cache.WriteBackWords),
                static_cast<unsigned long long>(
                    P.DeadTag->Cache.DeadWriteBacksAvoided),
                static_cast<unsigned long long>(
                    P.DeadTag->Cache.DeadFrees));
  }
}

} // namespace

int main(int argc, char **argv) {
  for (const std::string &Name : workloadNames())
    benchmark::RegisterBenchmark(("DeadTag/" + Name).c_str(),
                                 [Name](benchmark::State &State) {
                                   rowFor(State, Name);
                                 })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  summary();
  return 0;
}
