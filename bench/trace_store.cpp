//===- trace_store.cpp - Persistent trace store exhibit ------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Measures the persistent compressed trace store (urcm/sim/TraceStore.h)
// on the record-once/replay-everywhere cycle it exists for: each paper
// workload runs one fig5-shaped sweep COLD (live simulation, trace teed
// into the store) and then WARM (trace decoded from the store, the
// Simulator never invoked). Three invariants are asserted on the
// reported numbers before any timing is trusted:
//
//  * warm counters are bit-identical to cold at every sweep point;
//  * the encoded file is at most 1/3 of the raw 8-byte-per-event trace
//    (the ISSUE.md compression floor, checked per workload);
//  * a warm run leaves the producer uninvoked (sim.store.hits ≥ 1 is
//    asserted indirectly — the timing itself would be meaningless
//    otherwise, since warm would just be a second cold).
//
// Rows carry trace_events, encoded vs raw bytes, the compress ratio,
// and cold/warm wall times with the warm speedup. Warm time is best of
// three (decode+replay only); cold is a single run (a second cold run
// would be served warm).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "urcm/sim/TraceStore.h"

#include <atomic>
#include <chrono>
#include <filesystem>

using namespace urcm;
using namespace urcm::bench;

namespace {

/// The fig5-shaped grid every workload sweeps: paper geometry and its
/// size neighbours, hinted and hint-stripped. All points are streaming
/// eligible, so warm replay overlaps decode with consumption.
std::vector<SweepPoint> grid() {
  std::vector<SweepPoint> G;
  for (uint32_t Lines : {32u, 64u, 128u, 256u, 512u}) {
    CacheConfig C = paperCache();
    C.NumLines = Lines;
    G.push_back({C, TracePolicy::LRU, /*IgnoreHints=*/false});
    G.push_back({C, TracePolicy::LRU, /*IgnoreHints=*/true});
  }
  return G;
}

struct Measurement {
  uint64_t TraceEvents = 0;
  uint64_t EncodedBytes = 0;
  double ColdMs = 0;
  double WarmMs = 0;
};

double onceMs(const std::function<void()> &Fn) {
  auto T0 = std::chrono::steady_clock::now();
  Fn();
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(T1 - T0).count();
}

Measurement &measurement(const std::string &Name) {
  static std::map<std::string, Measurement> Cache;
  static std::mutex M;
  std::lock_guard<std::mutex> Lock(M);
  auto It = Cache.find(Name);
  if (It != Cache.end())
    return It->second;

  const Workload &W = workloadOrDie(Name);
  DiagnosticEngine Diags;
  CompileResult R = compileProgram(W.Source, figure5Compile(), Diags);
  if (!R.Ok) {
    std::fprintf(stderr, "%s: compilation failed\n%s", Name.c_str(),
                 Diags.str().c_str());
    std::abort();
  }
  auto Prog = std::make_shared<MachineProgram>(std::move(R.Program));
  auto Producer = [Prog, Name](const SimConfig &Config) {
    Simulator S(Config);
    SimResult Res = S.run(*Prog);
    if (!Res.ok()) {
      std::fprintf(stderr, "%s: %s\n", Name.c_str(), Res.Error.c_str());
      std::abort();
    }
    return Res;
  };

  SimConfig Base;
  Base.Cache = paperCache();
  const uint64_t Hash = traceContentHash(*Prog, Base);
  const std::vector<SweepPoint> Grid = grid();
  const std::filesystem::path Dir =
      std::filesystem::temp_directory_path() /
      ("urcm_bench_store." + std::to_string(::getpid()));
  std::filesystem::create_directories(Dir);

  Measurement Out;
  DiagnosticEngine StoreDiags;
  SweepEngine Cold;
  Cold.setTraceStore(Dir.string(), &StoreDiags);
  Cold.schedule(Name, Name, Base, Grid, Producer, Hash);
  Out.ColdMs = onceMs([&] { Cold.run(); });

  const std::string Path = traceStorePath(Dir.string(), Hash);
  Out.EncodedBytes = std::filesystem::file_size(Path);
  {
    DiagnosticEngine D;
    TraceStoreReader Reader;
    if (Reader.open(Path, Hash, D) != TraceStoreReader::OpenStatus::Ok) {
      std::fprintf(stderr, "%s: cold run left no readable store file\n%s",
                   Name.c_str(), D.str().c_str());
      std::abort();
    }
    Out.TraceEvents = Reader.eventCount();
  }
  // The ISSUE.md compression floor: encoded ≤ 1/3 of raw 8 B/event.
  if (Out.EncodedBytes * 3 > Out.TraceEvents * 8) {
    std::fprintf(stderr, "%s: encoded %llu B exceeds 1/3 of raw %llu B\n",
                 Name.c_str(),
                 static_cast<unsigned long long>(Out.EncodedBytes),
                 static_cast<unsigned long long>(Out.TraceEvents * 8));
    std::abort();
  }

  Out.WarmMs = 1e300;
  for (int Rep = 0; Rep != 3; ++Rep) {
    SweepEngine Warm;
    Warm.setTraceStore(Dir.string(), &StoreDiags);
    Warm.schedule(Name, Name, Base, Grid, Producer, Hash);
    Out.WarmMs = std::min(Out.WarmMs, onceMs([&] { Warm.run(); }));
    // The exhibit's correctness invariant: warm == cold, bit for bit.
    for (size_t I = 0; I != Grid.size(); ++I)
      if (!(Warm.point(Name, I) == Cold.point(Name, I))) {
        std::fprintf(stderr,
                     "%s: warm replay diverged from cold at point %zu\n",
                     Name.c_str(), I);
        std::abort();
      }
  }
  if (StoreDiags.hasErrors()) {
    std::fprintf(stderr, "%s: store diagnostics:\n%s", Name.c_str(),
                 StoreDiags.str().c_str());
    std::abort();
  }
  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
  return Cache.emplace(Name, std::move(Out)).first->second;
}

void rowFor(benchmark::State &State, const std::string &Name) {
  for (auto _ : State) {
    Measurement &M = measurement(Name);
    benchmark::DoNotOptimize(&M);
  }
  Measurement &M = measurement(Name);
  const double Raw = static_cast<double>(M.TraceEvents) * 8.0;
  State.counters["trace_events"] = static_cast<double>(M.TraceEvents);
  State.counters["raw_bytes"] = Raw;
  State.counters["encoded_bytes"] = static_cast<double>(M.EncodedBytes);
  State.counters["compress_ratio"] =
      Raw == 0 ? 0 : static_cast<double>(M.EncodedBytes) / Raw;
  State.counters["cold_ms"] = M.ColdMs;
  State.counters["warm_ms"] = M.WarmMs;
  State.counters["speedup_warm_vs_cold"] = M.ColdMs / M.WarmMs;
}

void summary() {
  std::printf("\nPersistent trace store: record once (cold), replay "
              "everywhere (warm, best of 3; %zu-point grid)\n",
              grid().size());
  std::printf("%-8s %10s %9s %9s %7s %8s %8s %8s\n", "bench", "events",
              "raw-KB", "enc-KB", "ratio", "cold-ms", "warm-ms", "speedup");
  for (const std::string &Name : workloadNames()) {
    Measurement &M = measurement(Name);
    std::printf("%-8s %10llu %9.0f %9.0f %6.1f%% %8.1f %8.1f %7.2fx\n",
                Name.c_str(),
                static_cast<unsigned long long>(M.TraceEvents),
                static_cast<double>(M.TraceEvents) * 8.0 / 1024.0,
                static_cast<double>(M.EncodedBytes) / 1024.0,
                100.0 * static_cast<double>(M.EncodedBytes) /
                    (static_cast<double>(M.TraceEvents) * 8.0),
                M.ColdMs, M.WarmMs, M.ColdMs / M.WarmMs);
  }
  std::printf("(warm counters verified bit-identical to cold at every "
              "point; encoded size asserted <= 1/3 of raw)\n");
}

} // namespace

int main(int argc, char **argv) {
  for (const std::string &Name : workloadNames())
    benchmark::RegisterBenchmark(
        ("TraceStore/" + Name).c_str(),
        [Name](benchmark::State &State) { rowFor(State, Name); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  summary();
  return 0;
}
