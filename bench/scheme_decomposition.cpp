//===- scheme_decomposition.cpp - Experiment E7 --------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Decomposes the unified scheme's win into its two mechanisms (bypass
// bit, dead bit) and adds the ReuseAware refinement the paper sketches
// in section 4.2 ("cache will only be used when it may improve
// performance"). Five schemes on identical code:
//
//   conventional | bypass-only | deadtag-only | unified | reuse-aware
//
// reporting both the paper's cache-traffic metric and bus traffic — the
// latter shows why blind bypass of hot values needs the reuse heuristic.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace urcm;
using namespace urcm::bench;

namespace {

struct SchemePoint {
  const char *Label;
  UnifiedOptions Scheme;
};

const std::vector<SchemePoint> &schemes() {
  static const std::vector<SchemePoint> S = {
      {"conventional", UnifiedOptions::conventional()},
      {"bypass_only", UnifiedOptions::bypassOnly()},
      {"deadtag_only", UnifiedOptions::deadTagOnly()},
      {"unified", UnifiedOptions::unified()},
      {"reuse_aware", UnifiedOptions::reuseAware()},
  };
  return S;
}

const SimResult &measure(const std::string &Name,
                         const SchemePoint &Point) {
  SimConfig Sim;
  Sim.Cache = paperCache();
  CompileOptions Options = figure5Compile();
  Options.Scheme = Point.Scheme;
  return singleRun(Name, Options, Sim);
}

void rowFor(benchmark::State &State, const std::string &Name,
            const SchemePoint &Point) {
  for (auto _ : State) {
    const SimResult &R = measure(Name, Point);
    benchmark::DoNotOptimize(&R);
  }
  const SimResult &R = measure(Name, Point);
  State.counters["cache_traffic"] =
      static_cast<double>(R.Cache.cacheTraffic());
  State.counters["bus_traffic"] =
      static_cast<double>(R.Cache.busTraffic());
  State.counters["hit_pct"] = R.Cache.hitRate() * 100.0;
  State.counters["writeback_words"] =
      static_cast<double>(R.Cache.WriteBackWords);
}

void summary() {
  std::printf("\nScheme decomposition (era compiler; cache traffic / bus "
              "traffic in words)\n%-8s", "bench");
  for (const SchemePoint &P : schemes())
    std::printf(" %22s", P.Label);
  std::printf("\n");
  for (const std::string &Name : workloadNames()) {
    std::printf("%-8s", Name.c_str());
    for (const SchemePoint &P : schemes()) {
      const SimResult &R = measure(Name, P);
      std::printf(" %11llu/%-10llu",
                  static_cast<unsigned long long>(R.Cache.cacheTraffic()),
                  static_cast<unsigned long long>(R.Cache.busTraffic()));
    }
    std::printf("\n");
  }
}

} // namespace

int main(int argc, char **argv) {
  for (const std::string &Name : workloadNames())
    for (const SchemePoint &Point : schemes())
      benchmark::RegisterBenchmark(
          ("Decomp/" + Name + "/" + Point.Label).c_str(),
          [Name, Point](benchmark::State &State) {
            rowFor(State, Name, Point);
          })
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  summary();
  return 0;
}
