//===- trace_gen.cpp - Cold trace-generation exhibit ---------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Measures what superinstruction fusion (fusePredecoded,
// urcm/sim/Predecode.h) buys on the cold path the store cannot serve:
// generating the data-reference trace of the six paper workloads by
// functional simulation, streamed through a sink exactly as a cold
// sweep does. Each workload is predecoded once, executed unfused (the
// --no-fuse baseline: same binary, fusion pass simply not run) and
// fused, interleaved and best-of-N per mode so the two timings see the
// same machine state.
//
// Two invariants are asserted before any timing is trusted:
//
//  * the fused run's SimResult and its streamed TraceEvent sequence
//    (FNV-1a over the raw 8-byte events, order-sensitive) are
//    bit-identical to the unfused run's — fusion that changed the
//    trace would be measuring a different experiment;
//  * the fusion pass actually rewrote heads (static fused count > 0),
//    otherwise "fused" timings would silently be a second baseline.
//
// Rows carry trace_events, the static fusion counts, per-mode ms and
// speedup_vs_nofuse; the recap prints the geometric-mean speedup
// against the ISSUE target (>= 1.3x cold six-workload trace
// generation). Context for reading it (DESIGN.md par. 17): fusion
// eliminates ~35% of dispatches, but on this run-boundary-hoisted
// computed-goto interpreter with the cursor-staged trace recorder the
// per-dispatch cost is small, so the honest expectation on a 1-core
// host is parity-to-small-gain, not the headline ratio — the recorder
// rewrite that came out of this work is where the cold path's absolute
// time dropped (both modes benefit equally).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "urcm/sim/Predecode.h"

#include <cmath>
#include <cstring>
#include <ctime>

using namespace urcm;
using namespace urcm::bench;

namespace {

/// Order-sensitive FNV-1a over the packed events; recycles the
/// producer's buffers like any real streaming consumer.
class HashSink final : public TraceSink {
public:
  std::vector<TraceEvent> chunk(std::vector<TraceEvent> Chunk) override {
    for (const TraceEvent &E : Chunk) {
      uint64_t Word;
      std::memcpy(&Word, &E, sizeof(Word));
      Hash = (Hash ^ Word) * 1099511628211ull;
    }
    Events += Chunk.size();
    Chunk.clear();
    return Chunk;
  }

  uint64_t Hash = 1469598103934665603ull;
  uint64_t Events = 0;
};

struct ModeRun {
  SimResult Result;
  uint64_t TraceHash = 0;
  uint64_t TraceEvents = 0;
};

struct Measurement {
  uint64_t TraceEvents = 0;
  uint32_t FuseCandidates = 0;
  uint32_t FuseFused = 0;
  double FusedMs = 0;
  double UnfusedMs = 0;
};

/// Process CPU time, not wall time: the 1-core CI container time-slices
/// against other processes and wall-clock A/Bs at the few-percent level
/// drown in that noise; CPU time of the same binary is stable enough to
/// compare interleaved repetitions.
double onceMs(const std::function<void()> &Fn) {
  timespec T0, T1;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &T0);
  Fn();
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &T1);
  return (static_cast<double>(T1.tv_sec - T0.tv_sec) * 1e3) +
         (static_cast<double>(T1.tv_nsec - T0.tv_nsec) * 1e-6);
}

void expectIdentical(const std::string &Name, const ModeRun &Fused,
                     const ModeRun &Unfused) {
  const SimResult &A = Fused.Result, &B = Unfused.Result;
  const bool Same =
      A.Halted == B.Halted && A.Error == B.Error && A.Steps == B.Steps &&
      A.Output == B.Output && A.Cache == B.Cache &&
      A.Refs.Unambiguous == B.Refs.Unambiguous &&
      A.Refs.Ambiguous == B.Refs.Ambiguous && A.Refs.Spill == B.Refs.Spill &&
      A.Refs.Unknown == B.Refs.Unknown &&
      A.Refs.Bypassed == B.Refs.Bypassed &&
      A.Refs.LastRefTagged == B.Refs.LastRefTagged &&
      A.InstructionFetches == B.InstructionFetches &&
      A.BypassTransitions == B.BypassTransitions &&
      A.CoherenceViolations == B.CoherenceViolations &&
      Fused.TraceHash == Unfused.TraceHash &&
      Fused.TraceEvents == Unfused.TraceEvents;
  if (!Same) {
    std::fprintf(stderr,
                 "%s: fused run diverged from unfused baseline; timings "
                 "would compare different experiments\n",
                 Name.c_str());
    std::abort();
  }
}

Measurement &measurement(const std::string &Name) {
  static std::map<std::string, Measurement> Cache;
  static std::mutex M;
  std::lock_guard<std::mutex> Lock(M);
  auto It = Cache.find(Name);
  if (It != Cache.end())
    return It->second;

  const Workload &W = workloadOrDie(Name);
  DiagnosticEngine Diags;
  CompileResult R = compileProgram(W.Source, figure5Compile(), Diags);
  if (!R.Ok) {
    std::fprintf(stderr, "%s: compilation failed\n%s", Name.c_str(),
                 Diags.str().c_str());
    std::abort();
  }

  PredecodedProgram Unfused = predecode(R.Program);
  PredecodedProgram Fused = predecode(R.Program);
  const FusionStats Stats = fusePredecoded(Fused);
  if (Stats.Fused == 0) {
    std::fprintf(stderr, "%s: fusion rewrote nothing; the 'fused' mode "
                 "would be a second baseline\n",
                 Name.c_str());
    std::abort();
  }

  auto coldRun = [&](const PredecodedProgram &PP) {
    ModeRun Run;
    HashSink Sink;
    SimConfig Sim;
    Sim.Cache = paperCache();
    Sim.Sink = &Sink;
    Simulator S(Sim);
    Run.Result = S.run(PP);
    if (!Run.Result.ok()) {
      std::fprintf(stderr, "%s: %s\n", Name.c_str(),
                   Run.Result.Error.c_str());
      std::abort();
    }
    Run.TraceHash = Sink.Hash;
    Run.TraceEvents = Sink.Events;
    return Run;
  };

  // Correctness before timing: the two modes must be the same
  // experiment, bit for bit, down to the streamed event sequence.
  ModeRun FusedRun = coldRun(Fused);
  ModeRun UnfusedRun = coldRun(Unfused);
  expectIdentical(Name, FusedRun, UnfusedRun);

  Measurement Out;
  Out.TraceEvents = FusedRun.TraceEvents;
  Out.FuseCandidates = Stats.Candidates;
  Out.FuseFused = Stats.Fused;
  // Interleaved best-of-5 so both modes sample the same machine state.
  Out.FusedMs = 1e300;
  Out.UnfusedMs = 1e300;
  for (int Rep = 0; Rep != 5; ++Rep) {
    Out.UnfusedMs =
        std::min(Out.UnfusedMs, onceMs([&] { coldRun(Unfused); }));
    Out.FusedMs = std::min(Out.FusedMs, onceMs([&] { coldRun(Fused); }));
  }
  return Cache.emplace(Name, std::move(Out)).first->second;
}

void rowFor(benchmark::State &State, const std::string &Name) {
  for (auto _ : State) {
    Measurement &M = measurement(Name);
    benchmark::DoNotOptimize(&M);
  }
  Measurement &M = measurement(Name);
  State.counters["trace_events"] = static_cast<double>(M.TraceEvents);
  State.counters["fuse_candidates"] = static_cast<double>(M.FuseCandidates);
  State.counters["fuse_fused"] = static_cast<double>(M.FuseFused);
  State.counters["fused_ms"] = M.FusedMs;
  State.counters["unfused_ms"] = M.UnfusedMs;
  State.counters["speedup_vs_nofuse"] = M.UnfusedMs / M.FusedMs;
}

void summary() {
  std::printf("\nCold trace generation: streamed functional simulation, "
              "fused vs unfused predecode (best of 5 CPU-time, "
              "interleaved)\n");
  std::printf("%-8s %10s %7s %7s %10s %10s %8s\n", "bench", "events",
              "cands", "fused", "nofuse-ms", "fused-ms", "speedup");
  double LogSum = 0;
  size_t N = 0;
  for (const std::string &Name : workloadNames()) {
    Measurement &M = measurement(Name);
    const double Speedup = M.UnfusedMs / M.FusedMs;
    LogSum += std::log(Speedup);
    ++N;
    std::printf("%-8s %10llu %7u %7u %10.1f %10.1f %7.2fx\n", Name.c_str(),
                static_cast<unsigned long long>(M.TraceEvents),
                M.FuseCandidates, M.FuseFused, M.UnfusedMs, M.FusedMs,
                Speedup);
  }
  std::printf("geomean speedup: %.2fx (ISSUE target: >= 1.30x; fused "
              "results + streamed traces verified bit-identical to the "
              "unfused baseline)\n",
              N ? std::exp(LogSum / static_cast<double>(N)) : 0.0);
}

} // namespace

int main(int argc, char **argv) {
  for (const std::string &Name : workloadNames())
    benchmark::RegisterBenchmark(
        ("TraceGen/" + Name).c_str(),
        [Name](benchmark::State &State) { rowFor(State, Name); })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  summary();
  return 0;
}
