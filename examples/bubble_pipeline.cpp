//===- bubble_pipeline.cpp - Walk the full compiler pipeline -------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Drives every stage of the pipeline on a reduced Bubble benchmark and
// dumps the intermediate artifacts: AST, IR, webs, alias classification,
// allocation statistics, annotated URCM-RISC assembly, and finally the
// two-scheme simulation. Useful as a tour of the public API.
//
// Build & run:  ./build/examples/bubble_pipeline
//
//===----------------------------------------------------------------------===//

#include "urcm/analysis/AliasAnalysis.h"
#include "urcm/analysis/CFG.h"
#include "urcm/analysis/ReachingDefs.h"
#include "urcm/analysis/Webs.h"
#include "urcm/driver/Driver.h"
#include "urcm/ir/Verifier.h"
#include "urcm/lang/Sema.h"

#include <cstdio>

using namespace urcm;

static const char *SmallBubble = R"mc(
int a[24];
int n;

void init() {
  int i;
  int seed = 99;
  for (i = 0; i < n; i = i + 1) {
    seed = (seed * 1103515245 + 12345) % 100000;
    a[i] = seed % 1000;
  }
}

void bubble() {
  int i;
  int j;
  int t;
  for (i = 0; i < n - 1; i = i + 1) {
    for (j = 0; j < n - 1 - i; j = j + 1) {
      if (a[j] > a[j + 1]) {
        t = a[j];
        a[j] = a[j + 1];
        a[j + 1] = t;
      }
    }
  }
}

void main() {
  n = 24;
  init();
  bubble();
  print(a[0]);
  print(a[23]);
}
)mc";

int main() {
  DiagnosticEngine Diags;

  std::printf("=== 1. Parse + Sema ===\n");
  auto TU = parseAndAnalyze(SmallBubble, Diags);
  if (!TU) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  std::printf("%s\n", printAST(*TU).c_str());

  std::printf("=== 2. IR (before allocation) ===\n");
  IRGenOptions IROptions;
  IROptions.ScalarLocalsInMemory = true; // Era mode, like Figure 5.
  auto IR = generateIR(*TU, Diags, IROptions);
  if (!IR || !verifyModule(*IR, Diags)) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  const IRFunction *Bubble = IR->findFunction("bubble");
  std::printf("%s\n", printIR(*IR, *Bubble).c_str());

  std::printf("=== 3. Webs of bubble() (paper Definition 2) ===\n");
  {
    CFGInfo CFG(*Bubble);
    ReachingDefs RD(*Bubble, CFG);
    WebAnalysis WA(*Bubble, CFG, RD);
    std::printf("%zu webs over %u virtual registers\n",
                WA.webs().size(), Bubble->numRegs());
    for (size_t W = 0; W != WA.webs().size() && W < 8; ++W)
      std::printf("  web %zu: r%u, %zu defs, %zu uses%s\n", W,
                  WA.webs()[W].Register, WA.webs()[W].DefIds.size(),
                  WA.webs()[W].Uses.size(),
                  WA.webs()[W].IncludesParam ? " (parameter)" : "");
  }

  std::printf("\n=== 4. Register allocation + unified management ===\n");
  RegAllocOptions RAOptions;
  RegAllocStats RAStats = allocateRegisters(*IR, RAOptions);
  std::printf("webs=%u spilled=%u colors=%u iterations=%u\n",
              RAStats.NumWebs, RAStats.NumSpilledWebs,
              RAStats.NumColorsUsed, RAStats.Iterations);
  ClassificationStats Classified =
      applyUnifiedManagement(*IR, UnifiedOptions::unified());
  std::printf("%s\n", Classified.str().c_str());

  std::printf("\n=== 5. Alias classification of bubble() ===\n");
  {
    ModuleEscapeInfo ME(*IR);
    AliasInfo AA(*IR, *Bubble, ME);
    unsigned Index = 0;
    for (const auto &B : Bubble->blocks())
      for (const Instruction &I : B->insts())
        if (I.isMemAccess() && Index++ < 10)
          std::printf("  %-34s -> %s\n",
                      printInst(*IR, *Bubble, I).c_str(),
                      AA.isUnambiguous(I) ? "unambiguous (bypass)"
                                          : "ambiguous (cache)");
  }

  std::printf("\n=== 6. Annotated URCM-RISC assembly (excerpt) ===\n");
  CodeGenOptions CGOptions;
  MachineProgram Program = generateMachineCode(*IR, CGOptions);
  std::string Asm = Program.str();
  std::printf("%.2200s...\n", Asm.c_str());

  std::printf("\n=== 7. Two-scheme simulation ===\n");
  CompileOptions Full;
  Full.IRGen.ScalarLocalsInMemory = true;
  CacheConfig Cache;
  Cache.NumLines = 64;
  Cache.Assoc = 2;
  SchemeComparison Cmp = compareSchemes(SmallBubble, Full, Cache);
  if (!Cmp.ok()) {
    std::fprintf(stderr, "error: %s\n", Cmp.Error.c_str());
    return 1;
  }
  std::printf("output: ");
  for (int64_t V : Cmp.Unified.Output)
    std::printf("%lld ", static_cast<long long>(V));
  std::printf("\ncache traffic: %llu -> %llu words (%.1f%% reduction)\n",
              static_cast<unsigned long long>(
                  Cmp.Conventional.Cache.cacheTraffic()),
              static_cast<unsigned long long>(
                  Cmp.Unified.Cache.cacheTraffic()),
              Cmp.cacheTrafficReductionPercent());
  std::printf("dynamic unambiguous refs: %.1f%%\n",
              Cmp.dynamicUnambiguousPercent());
  return 0;
}
