//===- quickstart.cpp - Smallest end-to-end URCM example ----------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Compiles a small MC program under the conventional and unified schemes,
// runs both on the same simulated data cache, and prints the traffic
// comparison — the paper's headline effect in one page of output.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "urcm/driver/Driver.h"
#include "urcm/workloads/Workloads.h"

#include <cstdio>

using namespace urcm;

static const char *DemoProgram = R"mc(
int data[64];
int total;

int sum(int *v, int n) {
  int i;
  int s = 0;
  for (i = 0; i < n; i = i + 1) {
    s = s + v[i];
  }
  return s;
}

void main() {
  int i;
  for (i = 0; i < 64; i = i + 1) {
    data[i] = i * 3 + 1;
  }
  total = sum(&data[0], 64);
  print(total);
}
)mc";

int main() {
  CompileOptions Options;
  CacheConfig Cache;
  Cache.NumLines = 64;
  Cache.Assoc = 2;
  Cache.LineWords = 1;
  Cache.Policy = ReplacementPolicy::LRU;

  SchemeComparison Cmp = compareSchemes(DemoProgram, Options, Cache);
  if (!Cmp.ok()) {
    std::fprintf(stderr, "error: %s\n", Cmp.Error.c_str());
    return 1;
  }

  std::printf("URCM quickstart: unified registers/cache management\n");
  std::printf("---------------------------------------------------\n");
  std::printf("program output: %lld (expected 6112)\n",
              static_cast<long long>(Cmp.Unified.Output.at(0)));
  std::printf("\nstatic classification: %s\n",
              Cmp.StaticStats.str().c_str());
  std::printf("\n%-16s %14s %14s\n", "", "conventional", "unified");
  std::printf("%-16s %14llu %14llu\n", "data refs",
              static_cast<unsigned long long>(Cmp.Conventional.Refs.total()),
              static_cast<unsigned long long>(Cmp.Unified.Refs.total()));
  std::printf("%-16s %14llu %14llu\n", "cache traffic",
              static_cast<unsigned long long>(
                  Cmp.Conventional.Cache.cacheTraffic()),
              static_cast<unsigned long long>(
                  Cmp.Unified.Cache.cacheTraffic()));
  std::printf("%-16s %14llu %14llu\n", "bus traffic",
              static_cast<unsigned long long>(
                  Cmp.Conventional.Cache.busTraffic()),
              static_cast<unsigned long long>(
                  Cmp.Unified.Cache.busTraffic()));
  std::printf("%-16s %13.2f%% %13.2f%%\n", "cache hit rate",
              Cmp.Conventional.Cache.hitRate() * 100.0,
              Cmp.Unified.Cache.hitRate() * 100.0);
  std::printf("\ncache traffic reduction: %.1f%%\n",
              Cmp.cacheTrafficReductionPercent());
  std::printf("dynamic unambiguous refs: %.1f%%\n",
              Cmp.dynamicUnambiguousPercent());
  return 0;
}
