//===- cache_explorer.cpp - Cache geometry/policy exploration ------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Records one data-reference trace from the Sieve benchmark and replays
// it across cache geometries and replacement policies (including
// Belady's MIN), under the conventional and unified schemes. Shows how
// the unified hints interact with hardware policy choices.
//
// Build & run:  ./build/examples/cache_explorer
//
//===----------------------------------------------------------------------===//

#include "urcm/driver/Driver.h"
#include "urcm/sim/TraceSim.h"
#include "urcm/workloads/Workloads.h"

#include <cstdio>

using namespace urcm;

namespace {

std::vector<TraceEvent> record(bool Unified) {
  const Workload *W = findWorkload("Sieve");
  CompileOptions Options;
  Options.IRGen.ScalarLocalsInMemory = true;
  Options.Scheme = Unified ? UnifiedOptions::unified()
                           : UnifiedOptions::conventional();
  SimConfig Sim;
  Sim.RecordTrace = true;
  DiagnosticEngine Diags;
  SimResult R = compileAndRun(W->Source, Options, Sim, Diags);
  if (!R.ok()) {
    std::fprintf(stderr, "error: %s\n", R.Error.c_str());
    std::exit(1);
  }
  return std::move(R.Trace);
}

} // namespace

int main() {
  std::printf("URCM cache explorer — Sieve reference trace\n");
  std::vector<TraceEvent> Conv = record(/*Unified=*/false);
  std::vector<TraceEvent> Uni = record(/*Unified=*/true);
  std::printf("trace: %zu data references\n\n", Conv.size());

  const TracePolicy Policies[] = {TracePolicy::LRU, TracePolicy::FIFO,
                                  TracePolicy::Random, TracePolicy::MIN};

  std::printf("--- geometry sweep (LRU): misses conv/unified ---\n");
  std::printf("%10s %6s %14s %14s\n", "lines", "assoc", "conventional",
              "unified");
  for (uint32_t Lines : {16u, 32u, 64u, 128u, 256u, 512u}) {
    for (uint32_t Assoc : {1u, 2u, 4u}) {
      if (Assoc > Lines)
        continue;
      CacheConfig C;
      C.NumLines = Lines;
      C.Assoc = Assoc;
      CacheStats SConv = replayTrace(Conv, C, TracePolicy::LRU);
      CacheStats SUni = replayTrace(Uni, C, TracePolicy::LRU);
      std::printf("%10u %6u %14llu %14llu\n", Lines, Assoc,
                  static_cast<unsigned long long>(SConv.misses()),
                  static_cast<unsigned long long>(SUni.misses()));
    }
  }

  std::printf("\n--- policy sweep (128 lines, 2-way) ---\n");
  std::printf("%8s %16s %16s %16s\n", "policy", "conv misses",
              "unified misses", "unified wb words");
  CacheConfig C;
  C.NumLines = 128;
  C.Assoc = 2;
  for (TracePolicy P : Policies) {
    CacheStats SConv = replayTrace(Conv, C, P);
    CacheStats SUni = replayTrace(Uni, C, P);
    std::printf("%8s %16llu %16llu %16llu\n", cachePolicyName(P),
                static_cast<unsigned long long>(SConv.misses()),
                static_cast<unsigned long long>(SUni.misses()),
                static_cast<unsigned long long>(SUni.WriteBackWords));
  }

  std::printf("\n--- the paper's headline, on this trace ---\n");
  CacheStats SConv = replayTrace(Conv, C, TracePolicy::LRU);
  CacheStats SUni = replayTrace(Uni, C, TracePolicy::LRU);
  double Reduction =
      100.0 *
      (static_cast<double>(SConv.cacheTraffic()) -
       static_cast<double>(SUni.cacheTraffic())) /
      static_cast<double>(SConv.cacheTraffic());
  std::printf("data-cache traffic: %llu -> %llu words (%.1f%% reduction)\n",
              static_cast<unsigned long long>(SConv.cacheTraffic()),
              static_cast<unsigned long long>(SUni.cacheTraffic()),
              Reduction);
  return 0;
}
