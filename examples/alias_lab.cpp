//===- alias_lab.cpp - Alias classification playground -------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Demonstrates the paper's five-way alias taxonomy (section 4.1.1.2) and
// the alias-set closure on a handful of MC snippets, including the
// compile-time-unsolvable case of the paper's Figure 2.
//
// Build & run:  ./build/examples/alias_lab
//
//===----------------------------------------------------------------------===//

#include "urcm/analysis/AliasAnalysis.h"
#include "urcm/irgen/IRGen.h"

#include <cstdio>

using namespace urcm;

namespace {

void analyzeSnippet(const char *Title, const char *Source,
                    const char *FuncName = "main") {
  std::printf("=== %s ===\n", Title);
  DiagnosticEngine Diags;
  CompiledModule Module = compileToIR(Source, Diags);
  if (!Module) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return;
  }
  const IRFunction *F = Module.IR->findFunction(FuncName);
  ModuleEscapeInfo ME(*Module.IR);
  AliasInfo AA(*Module.IR, *F, ME);

  // Enumerate memory references.
  std::vector<const Instruction *> Refs;
  for (const auto &B : F->blocks())
    for (const Instruction &I : B->insts())
      if (I.isMemAccess())
        Refs.push_back(&I);

  for (size_t I = 0; I != Refs.size(); ++I)
    std::printf("  ref %zu: %-30s %s, alias set %d\n", I,
                printInst(*Module.IR, *F, *Refs[I]).c_str(),
                AA.isUnambiguous(*Refs[I]) ? "unambiguous" : "ambiguous",
                AA.aliasSetId(*Refs[I]));

  std::printf("  pairwise:\n");
  for (size_t A = 0; A != Refs.size(); ++A)
    for (size_t B = A + 1; B != Refs.size(); ++B)
      std::printf("    ref %zu vs ref %zu: %s\n", A, B,
                  aliasKindName(AA.alias(*Refs[A], *Refs[B])));
  std::printf("\n");
}

} // namespace

int main() {
  analyzeSnippet("Distinct scalars: mutually exclusive",
                 "int g; int h;\n"
                 "void main() { g = 1; h = 2; print(g + h); }");

  analyzeSnippet("Constant indices: provably distinct elements",
                 "int a[8];\n"
                 "void main() { a[1] = 1; a[2] = 2; print(a[1]); }");

  analyzeSnippet(
      "Paper Figure 2: a[i+j] = a[i] + a[j] (unsolvable at compile time)",
      "int a[16];\n"
      "int f(int i, int j) { a[i + j] = a[i] + a[j]; return 0; }\n"
      "void main() { print(f(1, 2)); }",
      "f");

  analyzeSnippet("Pointer publication: the scalar loses bypass rights",
                 "int g;\n"
                 "void take(int *p) { *p = 9; }\n"
                 "void main() { take(&g); g = 1; print(g); }");

  analyzeSnippet("Alias-set closure: one pointer fuses two arrays",
                 "int a[4]; int b[4]; int c[4];\n"
                 "void main() {\n"
                 "  int *p;\n"
                 "  int k = 0;\n"
                 "  if (k) { p = &a[0]; } else { p = &b[0]; }\n"
                 "  *p = 1;\n"
                 "  c[0] = 2;\n"
                 "  print(c[0]);\n"
                 "}");
  return 0;
}
