file(REMOVE_RECURSE
  "CMakeFiles/urcmc.dir/urcmc.cpp.o"
  "CMakeFiles/urcmc.dir/urcmc.cpp.o.d"
  "urcmc"
  "urcmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
