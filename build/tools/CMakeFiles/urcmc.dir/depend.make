# Empty dependencies file for urcmc.
# This may be replaced when dependencies are built.
