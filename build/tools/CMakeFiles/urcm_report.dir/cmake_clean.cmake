file(REMOVE_RECURSE
  "CMakeFiles/urcm_report.dir/urcm_report.cpp.o"
  "CMakeFiles/urcm_report.dir/urcm_report.cpp.o.d"
  "urcm_report"
  "urcm_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcm_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
