# Empty dependencies file for urcm_report.
# This may be replaced when dependencies are built.
