file(REMOVE_RECURSE
  "CMakeFiles/memory_access_time.dir/memory_access_time.cpp.o"
  "CMakeFiles/memory_access_time.dir/memory_access_time.cpp.o.d"
  "memory_access_time"
  "memory_access_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_access_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
