# Empty dependencies file for memory_access_time.
# This may be replaced when dependencies are built.
