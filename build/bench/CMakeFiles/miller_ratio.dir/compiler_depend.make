# Empty compiler generated dependencies file for miller_ratio.
# This may be replaced when dependencies are built.
