file(REMOVE_RECURSE
  "CMakeFiles/miller_ratio.dir/miller_ratio.cpp.o"
  "CMakeFiles/miller_ratio.dir/miller_ratio.cpp.o.d"
  "miller_ratio"
  "miller_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miller_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
