file(REMOVE_RECURSE
  "CMakeFiles/software_vs_hardware_dse.dir/software_vs_hardware_dse.cpp.o"
  "CMakeFiles/software_vs_hardware_dse.dir/software_vs_hardware_dse.cpp.o.d"
  "software_vs_hardware_dse"
  "software_vs_hardware_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/software_vs_hardware_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
