# Empty dependencies file for software_vs_hardware_dse.
# This may be replaced when dependencies are built.
