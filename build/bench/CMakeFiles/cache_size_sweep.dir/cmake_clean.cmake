file(REMOVE_RECURSE
  "CMakeFiles/cache_size_sweep.dir/cache_size_sweep.cpp.o"
  "CMakeFiles/cache_size_sweep.dir/cache_size_sweep.cpp.o.d"
  "cache_size_sweep"
  "cache_size_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_size_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
