# Empty dependencies file for cache_size_sweep.
# This may be replaced when dependencies are built.
