file(REMOVE_RECURSE
  "CMakeFiles/replacement_policies.dir/replacement_policies.cpp.o"
  "CMakeFiles/replacement_policies.dir/replacement_policies.cpp.o.d"
  "replacement_policies"
  "replacement_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replacement_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
