# Empty dependencies file for replacement_policies.
# This may be replaced when dependencies are built.
