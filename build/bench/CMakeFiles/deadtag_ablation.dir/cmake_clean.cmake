file(REMOVE_RECURSE
  "CMakeFiles/deadtag_ablation.dir/deadtag_ablation.cpp.o"
  "CMakeFiles/deadtag_ablation.dir/deadtag_ablation.cpp.o.d"
  "deadtag_ablation"
  "deadtag_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadtag_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
