# Empty compiler generated dependencies file for deadtag_ablation.
# This may be replaced when dependencies are built.
