# Empty dependencies file for line_size_sweep.
# This may be replaced when dependencies are built.
