file(REMOVE_RECURSE
  "CMakeFiles/line_size_sweep.dir/line_size_sweep.cpp.o"
  "CMakeFiles/line_size_sweep.dir/line_size_sweep.cpp.o.d"
  "line_size_sweep"
  "line_size_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/line_size_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
