# Empty dependencies file for hint_encoding.
# This may be replaced when dependencies are built.
