file(REMOVE_RECURSE
  "CMakeFiles/hint_encoding.dir/hint_encoding.cpp.o"
  "CMakeFiles/hint_encoding.dir/hint_encoding.cpp.o.d"
  "hint_encoding"
  "hint_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hint_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
