file(REMOVE_RECURSE
  "CMakeFiles/scheme_decomposition.dir/scheme_decomposition.cpp.o"
  "CMakeFiles/scheme_decomposition.dir/scheme_decomposition.cpp.o.d"
  "scheme_decomposition"
  "scheme_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
