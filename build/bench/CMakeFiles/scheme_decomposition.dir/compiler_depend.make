# Empty compiler generated dependencies file for scheme_decomposition.
# This may be replaced when dependencies are built.
