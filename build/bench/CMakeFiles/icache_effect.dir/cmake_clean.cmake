file(REMOVE_RECURSE
  "CMakeFiles/icache_effect.dir/icache_effect.cpp.o"
  "CMakeFiles/icache_effect.dir/icache_effect.cpp.o.d"
  "icache_effect"
  "icache_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icache_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
