# Empty compiler generated dependencies file for icache_effect.
# This may be replaced when dependencies are built.
