# Empty dependencies file for static_dynamic_ambiguity.
# This may be replaced when dependencies are built.
