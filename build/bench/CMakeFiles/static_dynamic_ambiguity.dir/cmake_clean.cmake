file(REMOVE_RECURSE
  "CMakeFiles/static_dynamic_ambiguity.dir/static_dynamic_ambiguity.cpp.o"
  "CMakeFiles/static_dynamic_ambiguity.dir/static_dynamic_ambiguity.cpp.o.d"
  "static_dynamic_ambiguity"
  "static_dynamic_ambiguity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_dynamic_ambiguity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
