# Empty dependencies file for reuse_threshold_sweep.
# This may be replaced when dependencies are built.
