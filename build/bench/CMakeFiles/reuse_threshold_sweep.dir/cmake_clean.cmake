file(REMOVE_RECURSE
  "CMakeFiles/reuse_threshold_sweep.dir/reuse_threshold_sweep.cpp.o"
  "CMakeFiles/reuse_threshold_sweep.dir/reuse_threshold_sweep.cpp.o.d"
  "reuse_threshold_sweep"
  "reuse_threshold_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reuse_threshold_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
