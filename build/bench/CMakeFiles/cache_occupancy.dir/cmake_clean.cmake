file(REMOVE_RECURSE
  "CMakeFiles/cache_occupancy.dir/cache_occupancy.cpp.o"
  "CMakeFiles/cache_occupancy.dir/cache_occupancy.cpp.o.d"
  "cache_occupancy"
  "cache_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
