# Empty dependencies file for cache_occupancy.
# This may be replaced when dependencies are built.
