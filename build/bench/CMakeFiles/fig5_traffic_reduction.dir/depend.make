# Empty dependencies file for fig5_traffic_reduction.
# This may be replaced when dependencies are built.
