file(REMOVE_RECURSE
  "CMakeFiles/fig5_traffic_reduction.dir/fig5_traffic_reduction.cpp.o"
  "CMakeFiles/fig5_traffic_reduction.dir/fig5_traffic_reduction.cpp.o.d"
  "fig5_traffic_reduction"
  "fig5_traffic_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_traffic_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
