# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
if(CTEST_CONFIGURATION_TYPE MATCHES "^([Bb][Ee][Nn][Cc][Hh])$")
  add_test(bench_smoke "/root/repo/bench/run_benches.sh" "/root/repo/build" "/root/repo/build/BENCH_smoke.json" "line_size_sweep")
  set_tests_properties(bench_smoke PROPERTIES  LABELS "bench" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
endif()
