# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;8;urcm_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bubble_pipeline "/root/repo/build/examples/bubble_pipeline")
set_tests_properties(example_bubble_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;9;urcm_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cache_explorer "/root/repo/build/examples/cache_explorer")
set_tests_properties(example_cache_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;10;urcm_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_alias_lab "/root/repo/build/examples/alias_lab")
set_tests_properties(example_alias_lab PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;11;urcm_add_example;/root/repo/examples/CMakeLists.txt;0;")
