file(REMOVE_RECURSE
  "CMakeFiles/alias_lab.dir/alias_lab.cpp.o"
  "CMakeFiles/alias_lab.dir/alias_lab.cpp.o.d"
  "alias_lab"
  "alias_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alias_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
