# Empty compiler generated dependencies file for alias_lab.
# This may be replaced when dependencies are built.
