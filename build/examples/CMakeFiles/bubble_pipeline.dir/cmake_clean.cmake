file(REMOVE_RECURSE
  "CMakeFiles/bubble_pipeline.dir/bubble_pipeline.cpp.o"
  "CMakeFiles/bubble_pipeline.dir/bubble_pipeline.cpp.o.d"
  "bubble_pipeline"
  "bubble_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bubble_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
