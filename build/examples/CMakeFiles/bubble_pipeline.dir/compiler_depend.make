# Empty compiler generated dependencies file for bubble_pipeline.
# This may be replaced when dependencies are built.
