file(REMOVE_RECURSE
  "CMakeFiles/urcm_core.dir/UnifiedManagement.cpp.o"
  "CMakeFiles/urcm_core.dir/UnifiedManagement.cpp.o.d"
  "liburcm_core.a"
  "liburcm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
