# Empty compiler generated dependencies file for urcm_core.
# This may be replaced when dependencies are built.
