file(REMOVE_RECURSE
  "liburcm_core.a"
)
