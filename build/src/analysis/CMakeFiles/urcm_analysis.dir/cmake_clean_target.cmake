file(REMOVE_RECURSE
  "liburcm_analysis.a"
)
