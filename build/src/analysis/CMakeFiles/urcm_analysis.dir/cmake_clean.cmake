file(REMOVE_RECURSE
  "CMakeFiles/urcm_analysis.dir/AliasAnalysis.cpp.o"
  "CMakeFiles/urcm_analysis.dir/AliasAnalysis.cpp.o.d"
  "CMakeFiles/urcm_analysis.dir/CFG.cpp.o"
  "CMakeFiles/urcm_analysis.dir/CFG.cpp.o.d"
  "CMakeFiles/urcm_analysis.dir/CallFrequency.cpp.o"
  "CMakeFiles/urcm_analysis.dir/CallFrequency.cpp.o.d"
  "CMakeFiles/urcm_analysis.dir/Dominators.cpp.o"
  "CMakeFiles/urcm_analysis.dir/Dominators.cpp.o.d"
  "CMakeFiles/urcm_analysis.dir/Liveness.cpp.o"
  "CMakeFiles/urcm_analysis.dir/Liveness.cpp.o.d"
  "CMakeFiles/urcm_analysis.dir/Loops.cpp.o"
  "CMakeFiles/urcm_analysis.dir/Loops.cpp.o.d"
  "CMakeFiles/urcm_analysis.dir/MemoryLiveness.cpp.o"
  "CMakeFiles/urcm_analysis.dir/MemoryLiveness.cpp.o.d"
  "CMakeFiles/urcm_analysis.dir/ReachingDefs.cpp.o"
  "CMakeFiles/urcm_analysis.dir/ReachingDefs.cpp.o.d"
  "CMakeFiles/urcm_analysis.dir/Webs.cpp.o"
  "CMakeFiles/urcm_analysis.dir/Webs.cpp.o.d"
  "liburcm_analysis.a"
  "liburcm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
