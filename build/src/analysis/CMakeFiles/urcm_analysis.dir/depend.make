# Empty dependencies file for urcm_analysis.
# This may be replaced when dependencies are built.
