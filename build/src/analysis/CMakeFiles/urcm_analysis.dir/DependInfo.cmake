
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/AliasAnalysis.cpp" "src/analysis/CMakeFiles/urcm_analysis.dir/AliasAnalysis.cpp.o" "gcc" "src/analysis/CMakeFiles/urcm_analysis.dir/AliasAnalysis.cpp.o.d"
  "/root/repo/src/analysis/CFG.cpp" "src/analysis/CMakeFiles/urcm_analysis.dir/CFG.cpp.o" "gcc" "src/analysis/CMakeFiles/urcm_analysis.dir/CFG.cpp.o.d"
  "/root/repo/src/analysis/CallFrequency.cpp" "src/analysis/CMakeFiles/urcm_analysis.dir/CallFrequency.cpp.o" "gcc" "src/analysis/CMakeFiles/urcm_analysis.dir/CallFrequency.cpp.o.d"
  "/root/repo/src/analysis/Dominators.cpp" "src/analysis/CMakeFiles/urcm_analysis.dir/Dominators.cpp.o" "gcc" "src/analysis/CMakeFiles/urcm_analysis.dir/Dominators.cpp.o.d"
  "/root/repo/src/analysis/Liveness.cpp" "src/analysis/CMakeFiles/urcm_analysis.dir/Liveness.cpp.o" "gcc" "src/analysis/CMakeFiles/urcm_analysis.dir/Liveness.cpp.o.d"
  "/root/repo/src/analysis/Loops.cpp" "src/analysis/CMakeFiles/urcm_analysis.dir/Loops.cpp.o" "gcc" "src/analysis/CMakeFiles/urcm_analysis.dir/Loops.cpp.o.d"
  "/root/repo/src/analysis/MemoryLiveness.cpp" "src/analysis/CMakeFiles/urcm_analysis.dir/MemoryLiveness.cpp.o" "gcc" "src/analysis/CMakeFiles/urcm_analysis.dir/MemoryLiveness.cpp.o.d"
  "/root/repo/src/analysis/ReachingDefs.cpp" "src/analysis/CMakeFiles/urcm_analysis.dir/ReachingDefs.cpp.o" "gcc" "src/analysis/CMakeFiles/urcm_analysis.dir/ReachingDefs.cpp.o.d"
  "/root/repo/src/analysis/Webs.cpp" "src/analysis/CMakeFiles/urcm_analysis.dir/Webs.cpp.o" "gcc" "src/analysis/CMakeFiles/urcm_analysis.dir/Webs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/urcm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/urcm_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/urcm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
