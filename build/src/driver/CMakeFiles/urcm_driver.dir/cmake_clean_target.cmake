file(REMOVE_RECURSE
  "liburcm_driver.a"
)
