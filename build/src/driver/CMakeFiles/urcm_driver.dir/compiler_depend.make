# Empty compiler generated dependencies file for urcm_driver.
# This may be replaced when dependencies are built.
