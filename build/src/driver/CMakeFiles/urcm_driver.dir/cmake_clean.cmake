file(REMOVE_RECURSE
  "CMakeFiles/urcm_driver.dir/Driver.cpp.o"
  "CMakeFiles/urcm_driver.dir/Driver.cpp.o.d"
  "liburcm_driver.a"
  "liburcm_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcm_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
