# Empty compiler generated dependencies file for urcm_ir.
# This may be replaced when dependencies are built.
