file(REMOVE_RECURSE
  "liburcm_ir.a"
)
