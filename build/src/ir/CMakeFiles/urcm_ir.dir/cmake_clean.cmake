file(REMOVE_RECURSE
  "CMakeFiles/urcm_ir.dir/IR.cpp.o"
  "CMakeFiles/urcm_ir.dir/IR.cpp.o.d"
  "CMakeFiles/urcm_ir.dir/IRParser.cpp.o"
  "CMakeFiles/urcm_ir.dir/IRParser.cpp.o.d"
  "CMakeFiles/urcm_ir.dir/IRPrinter.cpp.o"
  "CMakeFiles/urcm_ir.dir/IRPrinter.cpp.o.d"
  "CMakeFiles/urcm_ir.dir/Interpreter.cpp.o"
  "CMakeFiles/urcm_ir.dir/Interpreter.cpp.o.d"
  "CMakeFiles/urcm_ir.dir/Verifier.cpp.o"
  "CMakeFiles/urcm_ir.dir/Verifier.cpp.o.d"
  "liburcm_ir.a"
  "liburcm_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcm_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
