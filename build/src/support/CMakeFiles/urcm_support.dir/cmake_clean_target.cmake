file(REMOVE_RECURSE
  "liburcm_support.a"
)
