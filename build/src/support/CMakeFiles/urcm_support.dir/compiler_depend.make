# Empty compiler generated dependencies file for urcm_support.
# This may be replaced when dependencies are built.
