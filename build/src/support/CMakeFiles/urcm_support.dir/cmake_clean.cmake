file(REMOVE_RECURSE
  "CMakeFiles/urcm_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/urcm_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/urcm_support.dir/StringUtils.cpp.o"
  "CMakeFiles/urcm_support.dir/StringUtils.cpp.o.d"
  "liburcm_support.a"
  "liburcm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
