# Empty compiler generated dependencies file for urcm_irgen.
# This may be replaced when dependencies are built.
