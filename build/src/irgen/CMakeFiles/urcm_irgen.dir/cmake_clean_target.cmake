file(REMOVE_RECURSE
  "liburcm_irgen.a"
)
