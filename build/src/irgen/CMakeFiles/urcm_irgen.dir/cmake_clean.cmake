file(REMOVE_RECURSE
  "CMakeFiles/urcm_irgen.dir/IRGen.cpp.o"
  "CMakeFiles/urcm_irgen.dir/IRGen.cpp.o.d"
  "liburcm_irgen.a"
  "liburcm_irgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcm_irgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
