# Empty dependencies file for urcm_regalloc.
# This may be replaced when dependencies are built.
