file(REMOVE_RECURSE
  "CMakeFiles/urcm_regalloc.dir/RegAlloc.cpp.o"
  "CMakeFiles/urcm_regalloc.dir/RegAlloc.cpp.o.d"
  "liburcm_regalloc.a"
  "liburcm_regalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcm_regalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
