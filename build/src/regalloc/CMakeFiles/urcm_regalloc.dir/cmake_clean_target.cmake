file(REMOVE_RECURSE
  "liburcm_regalloc.a"
)
