
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regalloc/RegAlloc.cpp" "src/regalloc/CMakeFiles/urcm_regalloc.dir/RegAlloc.cpp.o" "gcc" "src/regalloc/CMakeFiles/urcm_regalloc.dir/RegAlloc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/urcm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/urcm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/urcm_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/urcm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
