file(REMOVE_RECURSE
  "liburcm_lang.a"
)
