file(REMOVE_RECURSE
  "CMakeFiles/urcm_lang.dir/AST.cpp.o"
  "CMakeFiles/urcm_lang.dir/AST.cpp.o.d"
  "CMakeFiles/urcm_lang.dir/Lexer.cpp.o"
  "CMakeFiles/urcm_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/urcm_lang.dir/Parser.cpp.o"
  "CMakeFiles/urcm_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/urcm_lang.dir/Sema.cpp.o"
  "CMakeFiles/urcm_lang.dir/Sema.cpp.o.d"
  "liburcm_lang.a"
  "liburcm_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcm_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
