# Empty dependencies file for urcm_lang.
# This may be replaced when dependencies are built.
