file(REMOVE_RECURSE
  "liburcm_sim.a"
)
