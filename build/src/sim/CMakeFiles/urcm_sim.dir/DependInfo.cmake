
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/Cache.cpp" "src/sim/CMakeFiles/urcm_sim.dir/Cache.cpp.o" "gcc" "src/sim/CMakeFiles/urcm_sim.dir/Cache.cpp.o.d"
  "/root/repo/src/sim/Occupancy.cpp" "src/sim/CMakeFiles/urcm_sim.dir/Occupancy.cpp.o" "gcc" "src/sim/CMakeFiles/urcm_sim.dir/Occupancy.cpp.o.d"
  "/root/repo/src/sim/Simulator.cpp" "src/sim/CMakeFiles/urcm_sim.dir/Simulator.cpp.o" "gcc" "src/sim/CMakeFiles/urcm_sim.dir/Simulator.cpp.o.d"
  "/root/repo/src/sim/SweepEngine.cpp" "src/sim/CMakeFiles/urcm_sim.dir/SweepEngine.cpp.o" "gcc" "src/sim/CMakeFiles/urcm_sim.dir/SweepEngine.cpp.o.d"
  "/root/repo/src/sim/TraceSim.cpp" "src/sim/CMakeFiles/urcm_sim.dir/TraceSim.cpp.o" "gcc" "src/sim/CMakeFiles/urcm_sim.dir/TraceSim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codegen/CMakeFiles/urcm_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/urcm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/urcm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/urcm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/urcm_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/urcm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
