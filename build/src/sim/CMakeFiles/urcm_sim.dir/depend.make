# Empty dependencies file for urcm_sim.
# This may be replaced when dependencies are built.
