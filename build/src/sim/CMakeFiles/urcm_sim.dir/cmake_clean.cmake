file(REMOVE_RECURSE
  "CMakeFiles/urcm_sim.dir/Cache.cpp.o"
  "CMakeFiles/urcm_sim.dir/Cache.cpp.o.d"
  "CMakeFiles/urcm_sim.dir/Occupancy.cpp.o"
  "CMakeFiles/urcm_sim.dir/Occupancy.cpp.o.d"
  "CMakeFiles/urcm_sim.dir/Simulator.cpp.o"
  "CMakeFiles/urcm_sim.dir/Simulator.cpp.o.d"
  "CMakeFiles/urcm_sim.dir/SweepEngine.cpp.o"
  "CMakeFiles/urcm_sim.dir/SweepEngine.cpp.o.d"
  "CMakeFiles/urcm_sim.dir/TraceSim.cpp.o"
  "CMakeFiles/urcm_sim.dir/TraceSim.cpp.o.d"
  "liburcm_sim.a"
  "liburcm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
