file(REMOVE_RECURSE
  "CMakeFiles/urcm_transforms.dir/LoopPromotion.cpp.o"
  "CMakeFiles/urcm_transforms.dir/LoopPromotion.cpp.o.d"
  "CMakeFiles/urcm_transforms.dir/Transforms.cpp.o"
  "CMakeFiles/urcm_transforms.dir/Transforms.cpp.o.d"
  "CMakeFiles/urcm_transforms.dir/ValueNumbering.cpp.o"
  "CMakeFiles/urcm_transforms.dir/ValueNumbering.cpp.o.d"
  "liburcm_transforms.a"
  "liburcm_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcm_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
