# Empty dependencies file for urcm_transforms.
# This may be replaced when dependencies are built.
