file(REMOVE_RECURSE
  "liburcm_transforms.a"
)
