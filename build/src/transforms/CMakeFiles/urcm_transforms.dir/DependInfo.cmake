
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transforms/LoopPromotion.cpp" "src/transforms/CMakeFiles/urcm_transforms.dir/LoopPromotion.cpp.o" "gcc" "src/transforms/CMakeFiles/urcm_transforms.dir/LoopPromotion.cpp.o.d"
  "/root/repo/src/transforms/Transforms.cpp" "src/transforms/CMakeFiles/urcm_transforms.dir/Transforms.cpp.o" "gcc" "src/transforms/CMakeFiles/urcm_transforms.dir/Transforms.cpp.o.d"
  "/root/repo/src/transforms/ValueNumbering.cpp" "src/transforms/CMakeFiles/urcm_transforms.dir/ValueNumbering.cpp.o" "gcc" "src/transforms/CMakeFiles/urcm_transforms.dir/ValueNumbering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/urcm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/urcm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/urcm_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/urcm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
