# Empty compiler generated dependencies file for urcm_workloads.
# This may be replaced when dependencies are built.
