file(REMOVE_RECURSE
  "liburcm_workloads.a"
)
