file(REMOVE_RECURSE
  "CMakeFiles/urcm_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/urcm_workloads.dir/Workloads.cpp.o.d"
  "liburcm_workloads.a"
  "liburcm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
