file(REMOVE_RECURSE
  "liburcm_codegen.a"
)
