file(REMOVE_RECURSE
  "CMakeFiles/urcm_codegen.dir/CodeGen.cpp.o"
  "CMakeFiles/urcm_codegen.dir/CodeGen.cpp.o.d"
  "CMakeFiles/urcm_codegen.dir/MachinePrinter.cpp.o"
  "CMakeFiles/urcm_codegen.dir/MachinePrinter.cpp.o.d"
  "liburcm_codegen.a"
  "liburcm_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urcm_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
