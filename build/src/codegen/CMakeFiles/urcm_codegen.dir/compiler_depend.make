# Empty compiler generated dependencies file for urcm_codegen.
# This may be replaced when dependencies are built.
