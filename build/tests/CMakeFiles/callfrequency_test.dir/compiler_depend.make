# Empty compiler generated dependencies file for callfrequency_test.
# This may be replaced when dependencies are built.
