file(REMOVE_RECURSE
  "CMakeFiles/callfrequency_test.dir/callfrequency_test.cpp.o"
  "CMakeFiles/callfrequency_test.dir/callfrequency_test.cpp.o.d"
  "callfrequency_test"
  "callfrequency_test.pdb"
  "callfrequency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/callfrequency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
