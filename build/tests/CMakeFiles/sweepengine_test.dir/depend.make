# Empty dependencies file for sweepengine_test.
# This may be replaced when dependencies are built.
