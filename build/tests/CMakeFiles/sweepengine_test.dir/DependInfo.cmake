
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sweepengine_test.cpp" "tests/CMakeFiles/sweepengine_test.dir/sweepengine_test.cpp.o" "gcc" "tests/CMakeFiles/sweepengine_test.dir/sweepengine_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/urcm_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/urcm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/irgen/CMakeFiles/urcm_irgen.dir/DependInfo.cmake"
  "/root/repo/build/src/regalloc/CMakeFiles/urcm_regalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/urcm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/urcm_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/urcm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/transforms/CMakeFiles/urcm_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/urcm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/urcm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/urcm_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/urcm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
