file(REMOVE_RECURSE
  "CMakeFiles/sweepengine_test.dir/sweepengine_test.cpp.o"
  "CMakeFiles/sweepengine_test.dir/sweepengine_test.cpp.o.d"
  "sweepengine_test"
  "sweepengine_test.pdb"
  "sweepengine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweepengine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
