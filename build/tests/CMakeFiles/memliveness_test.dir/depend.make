# Empty dependencies file for memliveness_test.
# This may be replaced when dependencies are built.
