file(REMOVE_RECURSE
  "CMakeFiles/memliveness_test.dir/memliveness_test.cpp.o"
  "CMakeFiles/memliveness_test.dir/memliveness_test.cpp.o.d"
  "memliveness_test"
  "memliveness_test.pdb"
  "memliveness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memliveness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
