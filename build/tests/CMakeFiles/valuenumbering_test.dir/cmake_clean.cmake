file(REMOVE_RECURSE
  "CMakeFiles/valuenumbering_test.dir/valuenumbering_test.cpp.o"
  "CMakeFiles/valuenumbering_test.dir/valuenumbering_test.cpp.o.d"
  "valuenumbering_test"
  "valuenumbering_test.pdb"
  "valuenumbering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/valuenumbering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
