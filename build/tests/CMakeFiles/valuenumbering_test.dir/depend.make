# Empty dependencies file for valuenumbering_test.
# This may be replaced when dependencies are built.
