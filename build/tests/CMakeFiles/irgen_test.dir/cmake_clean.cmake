file(REMOVE_RECURSE
  "CMakeFiles/irgen_test.dir/irgen_test.cpp.o"
  "CMakeFiles/irgen_test.dir/irgen_test.cpp.o.d"
  "irgen_test"
  "irgen_test.pdb"
  "irgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
