# Empty compiler generated dependencies file for icache_test.
# This may be replaced when dependencies are built.
