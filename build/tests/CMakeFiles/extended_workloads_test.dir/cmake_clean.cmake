file(REMOVE_RECURSE
  "CMakeFiles/extended_workloads_test.dir/extended_workloads_test.cpp.o"
  "CMakeFiles/extended_workloads_test.dir/extended_workloads_test.cpp.o.d"
  "extended_workloads_test"
  "extended_workloads_test.pdb"
  "extended_workloads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_workloads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
