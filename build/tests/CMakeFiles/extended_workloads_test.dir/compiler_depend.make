# Empty compiler generated dependencies file for extended_workloads_test.
# This may be replaced when dependencies are built.
