file(REMOVE_RECURSE
  "CMakeFiles/tracesim_test.dir/tracesim_test.cpp.o"
  "CMakeFiles/tracesim_test.dir/tracesim_test.cpp.o.d"
  "tracesim_test"
  "tracesim_test.pdb"
  "tracesim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracesim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
