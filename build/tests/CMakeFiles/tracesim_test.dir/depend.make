# Empty dependencies file for tracesim_test.
# This may be replaced when dependencies are built.
