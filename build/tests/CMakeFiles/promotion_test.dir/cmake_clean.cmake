file(REMOVE_RECURSE
  "CMakeFiles/promotion_test.dir/promotion_test.cpp.o"
  "CMakeFiles/promotion_test.dir/promotion_test.cpp.o.d"
  "promotion_test"
  "promotion_test.pdb"
  "promotion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/promotion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
