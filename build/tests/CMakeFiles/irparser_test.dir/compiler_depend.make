# Empty compiler generated dependencies file for irparser_test.
# This may be replaced when dependencies are built.
