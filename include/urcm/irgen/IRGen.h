//===- urcm/irgen/IRGen.h - AST to IR lowering ------------------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a semantically checked MC translation unit to URCM IR.
///
/// Storage policy (the IR-level half of the paper's classification):
///  * scalar locals/params whose address is never taken live in virtual
///    registers — they are the register-candidate *webs*;
///  * address-taken scalars, local arrays and register spills live in
///    frame slots;
///  * globals live in module memory and are accessed by Load/Store.
///
/// Uninitialized scalar locals are zero-initialized (a semantic refinement
/// of C's undefined value that keeps the IR verifier's definite-assignment
/// check meaningful).
///
//===----------------------------------------------------------------------===//

#ifndef URCM_IRGEN_IRGEN_H
#define URCM_IRGEN_IRGEN_H

#include "urcm/ir/IR.h"
#include "urcm/lang/AST.h"
#include "urcm/support/Diagnostics.h"

#include <memory>

namespace urcm {

/// IR generation knobs.
struct IRGenOptions {
  /// Era-compiler mode: keep *every* scalar local and parameter in a
  /// frame slot (memory), like a late-1980s compiler without aggressive
  /// global register allocation. This is the configuration the paper's
  /// Figure 5 measures: most data references name unambiguous scalars in
  /// memory, which the unified scheme then bypasses. Expression
  /// temporaries stay in registers either way.
  bool ScalarLocalsInMemory = false;
};

/// Lowers \p TU to an IR module. \p TU must have passed Sema. Returns null
/// and reports diagnostics on internal failure.
std::unique_ptr<IRModule> generateIR(const TranslationUnit &TU,
                                     DiagnosticEngine &Diags,
                                     const IRGenOptions &Options = {});

/// Result of compiling MC source to IR. The AST is kept alive because the
/// IR's Origin pointers reference its declarations.
struct CompiledModule {
  std::unique_ptr<TranslationUnit> TU;
  std::unique_ptr<IRModule> IR;

  explicit operator bool() const { return TU && IR; }
};

/// Convenience: parse + analyze + lower. Returns an empty result on any
/// error (diagnostics describe what failed).
CompiledModule compileToIR(const std::string &Source,
                           DiagnosticEngine &Diags,
                           const IRGenOptions &Options = {});

} // namespace urcm

#endif // URCM_IRGEN_IRGEN_H
