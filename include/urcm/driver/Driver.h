//===- urcm/driver/Driver.h - End-to-end compiler driver --------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-call pipelines used by tests, examples and the benchmark harness:
///
///   MC source -> AST -> IR -> verify -> register allocation -> unified
///   management pass -> URCM-RISC code -> simulation.
///
/// The driver also provides the scheme-comparison entry point that
/// regenerates Figure 5: it compiles one program under the conventional
/// and unified schemes, runs both on identical cache geometry, checks
/// that the program output matches, and reports the traffic reduction.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_DRIVER_DRIVER_H
#define URCM_DRIVER_DRIVER_H

#include "urcm/codegen/CodeGen.h"
#include "urcm/core/UnifiedManagement.h"
#include "urcm/irgen/IRGen.h"
#include "urcm/regalloc/RegAlloc.h"
#include "urcm/sim/Simulator.h"
#include "urcm/transforms/LoopPromotion.h"
#include "urcm/transforms/Transforms.h"

#include <string>

namespace urcm {

/// Pipeline configuration.
struct CompileOptions {
  IRGenOptions IRGen;
  /// Run the IR cleanup pipeline (copy propagation / DCE / optional DSE)
  /// before register allocation. Off by default: the Figure-5 baseline
  /// models an era compiler without these passes; turn on for the
  /// compiler-vs-hardware dead-value ablation.
  bool RunCleanup = false;
  TransformOptions Transforms;
  /// Promote unaliased scalars to registers across call-free loops (the
  /// paper's section-4.2 rule [1]) before cleanup and allocation.
  bool PromoteLoopScalars = false;
  RegAllocOptions RegAlloc;
  UnifiedOptions Scheme = UnifiedOptions::unified();
  /// Pipeline text (urcm/pass/Pipeline.h syntax). When empty, the
  /// boolean options above resolve to the default pipeline:
  /// [promote,][cleanup,]regalloc,unified,codegen.
  std::string Passes;
  /// Verify the input IR, then re-verify after every pass that did not
  /// preserve all analyses (pass-manager instrumentation).
  bool VerifyIR = true;
  /// Print the IR to stderr after every pass.
  bool PrintAfterAll = false;
  uint64_t GlobalBase = 0x1000;
  uint64_t StackTop = 0x100000;
};

/// Everything the pipeline produces.
struct CompileResult {
  CompiledModule Module;
  TransformStats Transforms;
  LoopPromotionStats Promotion;
  RegAllocStats RegAlloc;
  ClassificationStats Static;
  MachineProgram Program;
  bool Ok = false;
};

/// Compiles \p Source with \p Options. Diagnostics explain failures.
CompileResult compileProgram(const std::string &Source,
                             const CompileOptions &Options,
                             DiagnosticEngine &Diags);

/// Compiles and simulates in one step.
SimResult compileAndRun(const std::string &Source,
                        const CompileOptions &Options,
                        const SimConfig &Sim, DiagnosticEngine &Diags);

/// Figure-5 style two-scheme comparison of one program.
struct SchemeComparison {
  std::string Error; ///< Empty on success.
  ClassificationStats StaticStats;
  SimResult Conventional;
  SimResult Unified;

  bool ok() const { return Error.empty(); }

  /// Percent reduction in data-cache reference traffic (the Figure 5
  /// metric).
  double cacheTrafficReductionPercent() const;
  /// Percent reduction in memory/bus traffic.
  double busTrafficReductionPercent() const;
  /// Dynamic unambiguous reference fraction under the unified scheme.
  double dynamicUnambiguousPercent() const;
};

/// Runs \p Source under both schemes on cache geometry \p Cache and
/// compares. Output mismatch or coherence violations are reported as
/// errors.
SchemeComparison compareSchemes(const std::string &Source,
                                const CompileOptions &BaseOptions,
                                const CacheConfig &Cache);

} // namespace urcm

#endif // URCM_DRIVER_DRIVER_H
