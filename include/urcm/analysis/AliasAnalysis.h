//===- urcm/analysis/AliasAnalysis.h - Alias sets (paper §4.1.1) -*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Alias classification and alias-set construction, implementing section
/// 4.1.1 of the paper:
///
///  * every memory reference is resolved to an *abstract object* — a
///    global, a frame slot, or External (memory owned by callers);
///  * a flow-insensitive points-to/escape analysis bounds what each
///    pointer-valued register may reference;
///  * alias sets are the transitive closure of the pairwise
///    ambiguous-alias relation over objects (paper: "closure of the
///    ambiguous alias relation"), with the Uniqueness and Completeness
///    properties of section 4.1.1.2;
///  * a pairwise query returns the paper's five alias kinds (true /
///    intersection / sometimes / ambiguous / mutually-exclusive).
///
/// References to scalar objects whose address never escapes are
/// *unambiguous*; the unified-management pass (src/core) bypasses the
/// cache for them. Everything reached through a pointer, and every array
/// element, is *ambiguous* and stays cache-managed.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_ANALYSIS_ALIASANALYSIS_H
#define URCM_ANALYSIS_ALIASANALYSIS_H

#include "urcm/ir/IR.h"

#include <vector>

namespace urcm {

/// The five compile-time alias relationships of paper section 4.1.1.2.
enum class AliasKind {
  /// Always the same storage.
  True,
  /// Known partial overlap (e.g. whole array vs one element).
  Intersection,
  /// Same object, overlap depends on runtime values (a[i] vs a[j]).
  Sometimes,
  /// Relationship unknown to the compiler.
  Ambiguous,
  /// Provably disjoint.
  MutuallyExclusive,
};

const char *aliasKindName(AliasKind Kind);

/// Module-level escape facts shared by all per-function analyses: which
/// globals have their address taken anywhere in the module.
class ModuleEscapeInfo {
public:
  explicit ModuleEscapeInfo(const IRModule &M);

  bool globalEscapes(uint32_t GlobalId) const {
    return EscapedGlobals[GlobalId];
  }
  const std::vector<bool> &escapedGlobals() const { return EscapedGlobals; }

private:
  std::vector<bool> EscapedGlobals;
};

/// Per-function alias information.
class AliasInfo {
public:
  AliasInfo(const IRModule &M, const IRFunction &F,
            const ModuleEscapeInfo &ModuleEscape);

  /// Object id numbering: 0 = External, then globals, then frame slots.
  uint32_t externalObject() const { return 0; }
  uint32_t objectForGlobal(uint32_t GlobalId) const { return 1 + GlobalId; }
  uint32_t objectForFrame(uint32_t SlotId) const {
    return 1 + NumGlobals + SlotId;
  }
  uint32_t numObjects() const { return 1 + NumGlobals + NumFrameSlots; }

  /// True if the address of the object may be held in a pointer (so
  /// references to it can be reached under another name).
  bool objectEscapes(uint32_t Object) const { return Escaped[Object]; }

  /// Alias-set id of an object (representative of its closure component).
  uint32_t aliasSetOfObject(uint32_t Object) const {
    return AliasSetOfObject[Object];
  }

  /// Objects register \p R may point at (empty if R never holds an
  /// address the analysis saw).
  const std::vector<uint32_t> &pointsTo(Reg R) const {
    return PointsToList[R];
  }

  /// A normalized view of one memory reference.
  struct RefDesc {
    /// Abstract objects possibly referenced. Contains externalObject()
    /// when the target is unknown.
    std::vector<uint32_t> Objects;
    /// Word offset into the object, when statically known.
    int64_t Offset = 0;
    bool OffsetKnown = false;
    /// True when the reference names one whole scalar object directly.
    bool DirectScalar = false;
  };

  /// Describes the memory reference made by Load/Store instruction \p I.
  RefDesc describe(const Instruction &I) const;

  /// True if \p I provably references a single non-escaping scalar object:
  /// the paper's *unambiguous* reference.
  bool isUnambiguous(const Instruction &I) const;

  /// Alias-set id for reference \p I (the closure component of its
  /// possible targets; singleton sets for unambiguous references).
  int32_t aliasSetId(const Instruction &I) const;

  /// The paper's five-way pairwise classification of two references.
  AliasKind alias(const RefDesc &A, const RefDesc &B) const;
  AliasKind alias(const Instruction &A, const Instruction &B) const;

private:
  void seedAndPropagate(const IRModule &M, const IRFunction &F,
                        const ModuleEscapeInfo &ModuleEscape);
  void buildAliasSets(const IRFunction &F);

  uint32_t NumGlobals = 0;
  uint32_t NumFrameSlots = 0;
  /// Per-object: size in words (External has size 0 = unknown).
  std::vector<uint32_t> ObjectSize;
  /// Per-object: escapes into pointer-reachable memory.
  std::vector<bool> Escaped;
  /// Per-register points-to sets (sorted object ids).
  std::vector<std::vector<uint32_t>> PointsToList;
  std::vector<uint32_t> AliasSetOfObject;
  const IRFunction *F = nullptr;
};

} // namespace urcm

#endif // URCM_ANALYSIS_ALIASANALYSIS_H
