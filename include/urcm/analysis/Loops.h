//===- urcm/analysis/Loops.h - Natural loop nesting -------------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection from back edges. The per-block loop depth feeds
/// the Freiburghouse usage-count allocator and the coloring allocator's
/// spill heuristic (references are weighted 10^depth).
///
//===----------------------------------------------------------------------===//

#ifndef URCM_ANALYSIS_LOOPS_H
#define URCM_ANALYSIS_LOOPS_H

#include "urcm/analysis/Dominators.h"

namespace urcm {

/// One natural loop: header plus member blocks.
struct LoopInfoEntry {
  uint32_t Header;
  std::vector<uint32_t> Blocks;
};

/// Loop nesting info for one function.
class LoopInfo {
public:
  LoopInfo(const IRFunction &F, const CFGInfo &CFG,
           const DominatorTree &DT);

  /// Nesting depth of \p Block (0 = not in any loop).
  uint32_t depth(uint32_t Block) const { return Depth[Block]; }

  const std::vector<LoopInfoEntry> &loops() const { return Loops; }

  /// Reference weight for spill heuristics: 10^min(depth, 6).
  double refWeight(uint32_t Block) const;

private:
  std::vector<uint32_t> Depth;
  std::vector<LoopInfoEntry> Loops;
};

} // namespace urcm

#endif // URCM_ANALYSIS_LOOPS_H
