//===- urcm/analysis/ReachingDefs.h - Reaching definitions ------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reaching-definitions dataflow over virtual registers, producing the
/// D-U and U-D chains the paper's name-splitting rule (Definition 2 in
/// section 4.1.1.1) is phrased in.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_ANALYSIS_REACHINGDEFS_H
#define URCM_ANALYSIS_REACHINGDEFS_H

#include "urcm/analysis/CFG.h"

namespace urcm {

/// One definition site: an instruction defining a register, or a
/// function-parameter pseudo-def at entry (Index == ~0u).
struct DefSite {
  Reg Register = NoReg;
  uint32_t Block = 0;
  /// Instruction index within Block, or ~0u for a parameter pseudo-def.
  uint32_t Index = 0;

  bool isParam() const { return Index == ~0u; }
};

/// Reaching definitions for one function.
class ReachingDefs {
public:
  ReachingDefs(const IRFunction &F, const CFGInfo &CFG);

  const std::vector<DefSite> &defs() const { return Defs; }

  /// Definition ids of \p R reaching the *start* of instruction
  /// (\p Block, \p Index). Linear scan within the block.
  std::vector<uint32_t> reachingDefsAt(const IRFunction &F, uint32_t Block,
                                       uint32_t Index, Reg R) const;

  /// Definition ids reaching block entry.
  const std::vector<bool> &reachIn(uint32_t Block) const {
    return In[Block];
  }

  /// All def ids for register \p R.
  const std::vector<uint32_t> &defsOf(Reg R) const { return DefsOfReg[R]; }

private:
  std::vector<DefSite> Defs;
  std::vector<std::vector<uint32_t>> DefsOfReg;
  std::vector<std::vector<bool>> In;
};

} // namespace urcm

#endif // URCM_ANALYSIS_REACHINGDEFS_H
