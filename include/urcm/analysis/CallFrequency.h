//===- urcm/analysis/CallFrequency.h - Static call frequency ----*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A static estimate of how often each function executes, in the style of
/// classic profile-free frequency estimation: main runs once, a call site
/// at loop depth d multiplies by 10^d, and recursion saturates toward the
/// cap through fixed-point iteration. Used by the ReuseAware bypass
/// policy so that a location referenced from a hot callee (e.g. a counter
/// bumped inside a recursive helper) is recognized as reused even though
/// its enclosing function body is straight-line.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_ANALYSIS_CALLFREQUENCY_H
#define URCM_ANALYSIS_CALLFREQUENCY_H

#include "urcm/ir/IR.h"

#include <vector>

namespace urcm {

/// Module-wide execution-frequency estimates.
class CallFrequencyEstimate {
public:
  explicit CallFrequencyEstimate(const IRModule &M);

  /// Estimated activations of function \p FuncId (>= 0; capped).
  double frequency(uint32_t FuncId) const { return Freq[FuncId]; }

  /// Saturation cap for recursive cycles.
  static constexpr double Cap = 1e9;

private:
  std::vector<double> Freq;
};

} // namespace urcm

#endif // URCM_ANALYSIS_CALLFREQUENCY_H
