//===- urcm/analysis/CFG.h - Control-flow graph utilities -------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Predecessor lists, reverse postorder and reachability for IR functions.
/// All analyses in this library are snapshots: they must be recomputed
/// after the function is mutated.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_ANALYSIS_CFG_H
#define URCM_ANALYSIS_CFG_H

#include "urcm/ir/IR.h"

#include <vector>

namespace urcm {

/// Identifies one instruction by position. Invalidated by mutation.
struct InstRef {
  uint32_t Block = 0;
  uint32_t Index = 0;

  bool operator==(const InstRef &RHS) const {
    return Block == RHS.Block && Index == RHS.Index;
  }
  bool operator<(const InstRef &RHS) const {
    return Block != RHS.Block ? Block < RHS.Block : Index < RHS.Index;
  }
};

/// Predecessors/successors and orderings of a function's CFG.
class CFGInfo {
public:
  explicit CFGInfo(const IRFunction &F);

  const std::vector<uint32_t> &preds(uint32_t Block) const {
    return Preds[Block];
  }
  const std::vector<uint32_t> &succs(uint32_t Block) const {
    return Succs[Block];
  }

  /// Blocks in reverse postorder from entry (unreachable blocks excluded).
  const std::vector<uint32_t> &rpo() const { return RPO; }

  /// Position of \p Block in the RPO sequence; UINT32_MAX if unreachable.
  uint32_t rpoIndex(uint32_t Block) const { return RPOIndex[Block]; }

  bool isReachable(uint32_t Block) const {
    return RPOIndex[Block] != ~0u;
  }

private:
  std::vector<std::vector<uint32_t>> Preds;
  std::vector<std::vector<uint32_t>> Succs;
  std::vector<uint32_t> RPO;
  std::vector<uint32_t> RPOIndex;
};

} // namespace urcm

#endif // URCM_ANALYSIS_CFG_H
