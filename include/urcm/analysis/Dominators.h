//===- urcm/analysis/Dominators.h - Dominator tree --------------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immediate dominators computed with the Cooper–Harvey–Kennedy iterative
/// algorithm. Used by natural-loop detection.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_ANALYSIS_DOMINATORS_H
#define URCM_ANALYSIS_DOMINATORS_H

#include "urcm/analysis/CFG.h"

namespace urcm {

/// Dominator information for one function.
class DominatorTree {
public:
  DominatorTree(const IRFunction &F, const CFGInfo &CFG);

  /// Immediate dominator of \p Block (entry's idom is itself);
  /// UINT32_MAX for unreachable blocks.
  uint32_t idom(uint32_t Block) const { return IDom[Block]; }

  /// True if \p A dominates \p B (reflexive). Unreachable blocks dominate
  /// nothing and are dominated by nothing.
  bool dominates(uint32_t A, uint32_t B) const;

private:
  const CFGInfo &CFG;
  std::vector<uint32_t> IDom;
};

} // namespace urcm

#endif // URCM_ANALYSIS_DOMINATORS_H
