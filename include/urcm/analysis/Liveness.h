//===- urcm/analysis/Liveness.h - Register liveness -------------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic backward liveness over virtual registers (paper Definition 1,
/// section 3.1: the live range of a value). Drives interference-graph
/// construction and the last-reference (dead) tagging of spill reloads.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_ANALYSIS_LIVENESS_H
#define URCM_ANALYSIS_LIVENESS_H

#include "urcm/analysis/CFG.h"

namespace urcm {

/// Per-block live-in/live-out sets for all virtual registers.
class Liveness {
public:
  Liveness(const IRFunction &F, const CFGInfo &CFG);

  bool isLiveIn(uint32_t Block, Reg R) const { return LiveIn[Block][R]; }
  bool isLiveOut(uint32_t Block, Reg R) const { return LiveOut[Block][R]; }

  const std::vector<bool> &liveIn(uint32_t Block) const {
    return LiveIn[Block];
  }
  const std::vector<bool> &liveOut(uint32_t Block) const {
    return LiveOut[Block];
  }

  /// Walks \p Block backwards, invoking \p Visit(Index, LiveAfter) for
  /// each instruction, where LiveAfter is the set of registers live
  /// immediately *after* the instruction executes.
  template <typename Callback>
  void scanBlockBackward(const IRFunction &F, uint32_t Block,
                         Callback Visit) const {
    std::vector<bool> Live = LiveOut[Block];
    const auto &Insts = F.block(Block)->insts();
    std::vector<Reg> Uses;
    for (uint32_t I = static_cast<uint32_t>(Insts.size()); I-- > 0;) {
      const Instruction &Inst = Insts[I];
      Visit(I, Live);
      if (Inst.Dst != NoReg)
        Live[Inst.Dst] = false;
      Uses.clear();
      Inst.appendUses(Uses);
      for (Reg R : Uses)
        Live[R] = true;
    }
  }

private:
  std::vector<std::vector<bool>> LiveIn;
  std::vector<std::vector<bool>> LiveOut;
};

} // namespace urcm

#endif // URCM_ANALYSIS_LIVENESS_H
