//===- urcm/analysis/MemoryLiveness.h - Location liveness -------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward liveness of *memory locations* (scalar, non-escaping globals
/// and frame slots — including spill slots). This is the analysis behind
/// the paper's last-reference tagging (section 3.1): a load whose location
/// is dead afterwards is the value's final use, so the cache line holding
/// it may be freed and a dirty copy dropped without write-back.
///
/// Conservatism:
///  * calls are treated as reading every global (other functions name
///    globals directly);
///  * escaped or array locations are untracked (never tagged);
///  * at function exit globals are live (they outlive the activation),
///    frame slots are dead.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_ANALYSIS_MEMORYLIVENESS_H
#define URCM_ANALYSIS_MEMORYLIVENESS_H

#include "urcm/analysis/AliasAnalysis.h"
#include "urcm/analysis/CFG.h"

namespace urcm {

/// Last-reference facts for the memory instructions of one function.
class MemoryLiveness {
public:
  MemoryLiveness(const IRModule &M, const IRFunction &F, const CFGInfo &CFG,
                 const AliasInfo &AA);

  struct RefFlags {
    /// The instruction references a tracked (scalar, private) location.
    bool Tracked = false;
    /// Load: the location is dead after this read (final use).
    bool LastRef = false;
    /// Store: the stored value is never read (dead store).
    bool DeadStore = false;
  };

  /// Flags for the instruction at (\p Block, \p Index); all-false for
  /// non-memory instructions and untracked locations.
  RefFlags flags(uint32_t Block, uint32_t Index) const;

  /// Number of locations this analysis tracks.
  uint32_t numTracked() const { return NumTracked; }

private:
  std::vector<std::vector<RefFlags>> Flags; // [block][index]
  uint32_t NumTracked = 0;
};

} // namespace urcm

#endif // URCM_ANALYSIS_MEMORYLIVENESS_H
