//===- urcm/analysis/Webs.h - Value webs (paper Definition 2) ---*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Webs implement the paper's user-name splitting rule (section 4.1.1.1,
/// Definition 2): the U-D chains of a register are merged whenever they
/// share a definition; each resulting equivalence class — a *web* — is an
/// independent value and a separate register-allocation candidate. A
/// variable reused for several unrelated values therefore yields several
/// webs, exactly the paper's "user names are mapped into multiple
/// aliased-object names".
///
//===----------------------------------------------------------------------===//

#ifndef URCM_ANALYSIS_WEBS_H
#define URCM_ANALYSIS_WEBS_H

#include "urcm/analysis/ReachingDefs.h"

namespace urcm {

/// One use site of a register.
struct UseSite {
  Reg Register = NoReg;
  uint32_t Block = 0;
  uint32_t Index = 0;
};

/// One web: a maximal set of defs and uses of a single virtual register
/// connected through D-U chains.
struct Web {
  Reg Register = NoReg;
  std::vector<uint32_t> DefIds;  // Indexes into ReachingDefs::defs().
  std::vector<UseSite> Uses;
  /// True if one of the defs is the function-parameter pseudo-def.
  bool IncludesParam = false;
};

/// Computes the webs of a function.
class WebAnalysis {
public:
  WebAnalysis(const IRFunction &F, const CFGInfo &CFG,
              const ReachingDefs &RD);

  const std::vector<Web> &webs() const { return Webs; }

  /// Web id owning definition \p DefId.
  uint32_t webOfDef(uint32_t DefId) const { return WebOfDef[DefId]; }

private:
  std::vector<Web> Webs;
  std::vector<uint32_t> WebOfDef;
};

} // namespace urcm

#endif // URCM_ANALYSIS_WEBS_H
