//===- urcm/codegen/MachineIR.h - URCM-RISC machine code --------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The URCM-RISC target: a MIPS-like load/store machine with word-grain
/// addressing. Every Ld/St carries the paper's two compiler-to-hardware
/// hint bits (cache bypass, last reference) in its MemRefInfo — the
/// "embed a bit in each instruction" implementation the paper recommends
/// in section 4.4.
///
/// Register model: general registers x0..x63 (the allocator uses a
/// configurable prefix), plus dedicated SP (stack pointer), RA (return
/// address), RV (return value) and two codegen scratch registers.
///
/// Calling convention (classic callee-save-everything, section-4.2
/// friendly: all register save/restore traffic is spill-class and goes to
/// the cache with dead tagging):
///  * arguments are stored by the caller into its outgoing-argument area
///    at [SP+0..]; the callee reads them at [SP + FrameSize + i];
///  * the callee saves every general register it writes (plus RA if it
///    makes calls) in its prologue and restores them in its epilogue;
///  * the return value travels in RV.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_CODEGEN_MACHINEIR_H
#define URCM_CODEGEN_MACHINEIR_H

#include "urcm/ir/IR.h" // For MemRefInfo / RefClass.

#include <cstdint>
#include <string>
#include <vector>

namespace urcm {

/// Machine register numbers.
namespace mreg {
inline constexpr uint32_t MaxGPR = 64;
inline constexpr uint32_t SP = 64;   ///< Stack pointer.
inline constexpr uint32_t RA = 65;   ///< Return address.
inline constexpr uint32_t RV = 66;   ///< Return value.
inline constexpr uint32_t TMP0 = 67; ///< Codegen scratch.
inline constexpr uint32_t TMP1 = 68; ///< Codegen scratch.
inline constexpr uint32_t NumRegs = 69;
inline constexpr uint32_t None = ~0u;
} // namespace mreg

/// URCM-RISC opcodes.
enum class MOpcode : uint8_t {
  // ALU: Rd <- Rs1 op (UseImm ? Imm : Rs2).
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Slt,
  Sle,
  Sgt,
  Sge,
  Seq,
  Sne,
  // Unary: Rd <- op Rs1.
  Neg,
  Not,
  Mov,
  // Rd <- Imm.
  Li,
  // Memory: EA = (Rs1 == None ? 0 : R[Rs1]) + Imm.
  Ld, // Rd <- mem[EA].
  St, // mem[EA] <- R[Rs2].
  // Control: Target is an absolute code index after linking.
  Jmp,
  Bnz, // Branch to Target if R[Rs1] != 0.
  Call,
  Ret, // Jump to R[RA].
  // Environment.
  Print, // Emit R[Rs1] to the program output stream.
  Halt,
};

const char *mopcodeName(MOpcode Op);

/// One machine instruction.
struct MInst {
  MOpcode Op;
  uint32_t Rd = mreg::None;
  uint32_t Rs1 = mreg::None;
  uint32_t Rs2 = mreg::None;
  int64_t Imm = 0;
  bool UseImm = false;
  uint32_t Target = 0;
  /// Hint bits + classification for Ld/St.
  MemRefInfo MemInfo;
  /// On Ret only: the function's code is dead after this return (the
  /// paper's section-3.1 "live range of an instruction", applied to
  /// once-executed functions). Target/Imm then carry the code range
  /// [Target, Target+Imm) for the I-cache to reclaim.
  bool CodeDeadHint = false;

  bool isMemAccess() const {
    return Op == MOpcode::Ld || Op == MOpcode::St;
  }

  /// True for instructions that end a straight-line run: everything
  /// whose successor is not simply PC+1 (including Bnz, whose
  /// fall-through still leaves the current run, and Halt). The
  /// predecoded execution engine hoists step-limit and PC-bounds checks
  /// to run boundaries, so run membership must be conservative.
  bool isTerminator() const {
    switch (Op) {
    case MOpcode::Jmp:
    case MOpcode::Bnz:
    case MOpcode::Call:
    case MOpcode::Ret:
    case MOpcode::Halt:
      return true;
    default:
      return false;
    }
  }
};

/// Predecode metadata: RunLen[i] = number of instructions in the
/// straight-line run starting at i — the distance to (and including)
/// the next terminator, or to the end of \p Code when none follows.
/// Defined for *every* index because Ret can land execution mid-run.
std::vector<uint32_t> computeRunLengths(const std::vector<MInst> &Code);

/// Per-function metadata in the linked program.
struct MachineFunction {
  std::string Name;
  uint32_t EntryIndex = 0;
  uint32_t CodeSize = 0;
  uint32_t FrameSizeWords = 0;
  uint32_t NumSavedRegs = 0;
  bool IsLeaf = true;
};

/// A linked URCM-RISC program plus its static data layout.
struct MachineProgram {
  std::vector<MInst> Code;
  std::vector<MachineFunction> Functions;
  /// Index of the startup stub (sets SP, calls main, halts).
  uint32_t EntryIndex = 0;
  /// Data layout (word addresses).
  struct GlobalLayout {
    std::string Name;
    uint32_t Address = 0;
    uint32_t SizeWords = 1;
  };
  std::vector<GlobalLayout> Globals;
  uint64_t GlobalBase = 0x1000;
  uint64_t StackTop = 0x100000;
  /// Number of general registers the allocator was given.
  uint32_t NumAllocatableRegs = 0;

  /// Static memory-reference table: entry r describes the Ld/St that
  /// codegen assigned RefId r (MemRefInfo::RefId). Ids are dense over
  /// the memory-referencing instructions of the linked stream, in code
  /// order, and independent of the hint bits — a hinted and a stripped
  /// compilation of the same source number their references
  /// identically. Form/classification/hint bits live on
  /// Code[CodeIndex].MemInfo; Loc is invalid for compiler-synthesized
  /// references (prologue/epilogue save-restore, spill traffic).
  struct StaticRef {
    uint32_t CodeIndex = 0;
    SourceLoc Loc;
  };
  std::vector<StaticRef> RefTable;

  /// The function containing code index \p Index, or null.
  const MachineFunction *functionAt(uint32_t Index) const;

  /// Renders the program as readable assembly.
  std::string str() const;
};

/// True if \p A and \p B are the same instruction stream once the hint
/// bits are ignored: the per-reference bypass/last-reference bits, and
/// the code-dead bit on Ret with its dead-region payload in Imm/Target
/// (Ret's control flow uses the return-address register; the payload
/// only feeds the I-cache reclaim hint).
///
/// This is the soundness precondition for serving the conventional
/// scheme from a unified-scheme trace with the hints stripped (see
/// urcm/sim/SweepEngine.h's SweepPoint::IgnoreHints): when it holds,
/// the two compilations execute the same references in the same order,
/// so a hint-free replay of one *is* a run of the other.
bool sameStreamModuloHints(const MachineProgram &A,
                           const MachineProgram &B);

} // namespace urcm

#endif // URCM_CODEGEN_MACHINEIR_H
