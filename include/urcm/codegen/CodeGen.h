//===- urcm/codegen/CodeGen.h - IR to URCM-RISC lowering --------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers register-allocated IR to a linked URCM-RISC program: frame
/// layout, calling convention, branch/label resolution, and propagation
/// of the unified-management hint bits onto machine loads/stores. The
/// save/restore and argument-passing traffic the lowering itself
/// introduces is tagged spill-class, with dead tags when the scheme
/// enables them (paper section 4.2).
///
//===----------------------------------------------------------------------===//

#ifndef URCM_CODEGEN_CODEGEN_H
#define URCM_CODEGEN_CODEGEN_H

#include "urcm/codegen/MachineIR.h"
#include "urcm/core/UnifiedManagement.h"
#include "urcm/ir/IR.h"

namespace urcm {

/// Codegen knobs.
struct CodeGenOptions {
  /// Hint emission for codegen-introduced references (must match the
  /// scheme the unified pass ran with).
  UnifiedOptions Hints = UnifiedOptions::unified();
  uint64_t GlobalBase = 0x1000;
  uint64_t StackTop = 0x100000;
};

/// Lowers \p M (already register-allocated; every register < 64) into a
/// runnable machine program. The module must contain a zero-argument
/// `main`.
MachineProgram generateMachineCode(const IRModule &M,
                                   const CodeGenOptions &Options);

} // namespace urcm

#endif // URCM_CODEGEN_CODEGEN_H
