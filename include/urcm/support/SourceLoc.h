//===- urcm/support/SourceLoc.h - Source positions --------------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line/column source locations for the MC frontend and diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SUPPORT_SOURCELOC_H
#define URCM_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace urcm {

/// A position in an MC source buffer. Line and column are 1-based; a
/// default-constructed location is invalid (line 0).
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &RHS) const {
    return Line == RHS.Line && Col == RHS.Col;
  }
  bool operator!=(const SourceLoc &RHS) const { return !(*this == RHS); }

  /// Renders the location as "line:col" (or "<unknown>" if invalid).
  std::string str() const;
};

} // namespace urcm

#endif // URCM_SUPPORT_SOURCELOC_H
