//===- urcm/support/Casting.h - LLVM-style isa/cast helpers -----*- C++ -*-===//
//
// Part of the URCM project: reproduction of Chi & Dietz, "Unified Management
// of Registers and Cache Using Liveness and Cache Bypass" (PLDI 1989).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal reimplementation of the LLVM `isa<>`, `cast<>` and `dyn_cast<>`
/// templates on top of a static `classof(const Base *)` predicate. URCM
/// class hierarchies (AST nodes, IR instructions, machine operands) opt in
/// by providing a kind enum and a `classof`.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SUPPORT_CASTING_H
#define URCM_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace urcm {

/// Returns true if \p Val is an instance of \p To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast, const overload.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<To>() argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast, const overload.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast, but tolerates a null argument (propagates null).
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace urcm

#endif // URCM_SUPPORT_CASTING_H
