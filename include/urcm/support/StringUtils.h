//===- urcm/support/StringUtils.h - Small string helpers --------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string plus a few predicates shared by
/// printers across the project.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SUPPORT_STRINGUTILS_H
#define URCM_SUPPORT_STRINGUTILS_H

#include <string>
#include <vector>

namespace urcm {

/// printf-style formatting that returns a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Returns true if \p S starts with \p Prefix.
bool startsWith(const std::string &S, const std::string &Prefix);

} // namespace urcm

#endif // URCM_SUPPORT_STRINGUTILS_H
