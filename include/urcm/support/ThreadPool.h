//===- urcm/support/ThreadPool.h - Minimal worker pool ----------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool used by the sweep engine to run
/// independent experiment points concurrently. Design constraints:
///
///  * deterministic results: parallelFor writes each result through its
///    own index, so outcomes never depend on scheduling order;
///  * the calling thread participates in parallelFor (a pool of size N
///    brings N+1 workers to bear, and a pool on a single-core machine
///    degrades gracefully to near-serial execution);
///  * exceptions from tasks are captured and rethrown on the caller.
///
/// parallelFor may be called from inside a pool task (the sharded
/// replay engine fans out per-shard work from within an experiment
/// task). Nesting cannot deadlock: the caller drains its own index
/// space, so it only ever waits on indexes that some thread is
/// *actively* executing, never on queued-but-unclaimed work; when every
/// worker is busy the nested loop simply degrades to serial execution
/// on the calling thread. Idle workers that pick up a nested job's
/// helper tasks late find the index space exhausted and return.
///
/// Small work items can be batched with the grain-size parameter: a
/// grain of G hands out indexes G at a time, so dispatch overhead (one
/// atomic fetch_add plus one mutex round-trip per batch) amortizes over
/// G body calls. The shared cursor is padded to the destructive-
/// interference stride so concurrent claimers do not drag the job's
/// cold fields (limit, body pointer) into their ping-ponging line.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SUPPORT_THREADPOOL_H
#define URCM_SUPPORT_THREADPOOL_H

#include "urcm/support/CacheAlign.h"
#include "urcm/support/Telemetry.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace urcm {

class ThreadPool {
public:
  /// \p ThreadCount 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(unsigned ThreadCount = 0) {
    if (ThreadCount == 0) {
      ThreadCount = std::thread::hardware_concurrency();
      if (ThreadCount == 0)
        ThreadCount = 1;
    }
    Workers.reserve(ThreadCount);
    for (unsigned I = 0; I != ThreadCount; ++I)
      Workers.emplace_back([this, I] {
        if (telemetry::enabled())
          telemetry::setThreadName("pool-" + std::to_string(I));
        workerLoop();
      });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Stopping = true;
    }
    WakeWorkers.notify_all();
    for (std::thread &T : Workers)
      T.join();
  }

  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Runs Body(0), ..., Body(N-1), possibly concurrently, and returns
  /// once every call has finished. The first exception thrown by any
  /// call is rethrown here (remaining indexes still run to completion).
  /// \p Grain batches indexes: each claim hands a thread up to Grain
  /// consecutive indexes, so bodies much cheaper than a dispatch should
  /// pass a grain that makes a batch worth one atomic claim.
  void parallelFor(size_t N, const std::function<void(size_t)> &Body,
                   size_t Grain = 1) {
    if (Grain == 0)
      Grain = 1;
    if (N == 0)
      return;
    if (N <= Grain) { // One batch; skip the queue round-trip.
      std::exception_ptr First;
      for (size_t I = 0; I != N; ++I) {
        try {
          Body(I);
        } catch (...) {
          if (!First)
            First = std::current_exception();
        }
      }
      if (First)
        std::rethrow_exception(First);
      return;
    }

    auto Job = std::make_shared<ParallelJob>();
    Job->Limit = N;
    Job->Grain = Grain;
    Job->Body = &Body;

    const size_t Batches = (N + Grain - 1) / Grain;
    size_t Helpers = std::min<size_t>(Workers.size(), Batches - 1);
    {
      std::lock_guard<std::mutex> Lock(M);
      for (size_t I = 0; I != Helpers; ++I)
        Tasks.push([Job] { Job->drain(); });
    }
    WakeWorkers.notify_all();

    // The caller works too; drain() returns when the index space is
    // exhausted (other workers may still be finishing their last batch).
    Job->drain();
    std::unique_lock<std::mutex> Lock(Job->DoneM);
    Job->DoneCV.wait(Lock, [&] { return Job->Done == N; });
    if (Job->Error)
      std::rethrow_exception(Job->Error);
  }

  /// The process-wide pool (sized to the hardware), created on first use.
  static ThreadPool &global() {
    static ThreadPool Pool;
    return Pool;
  }

private:
  struct ParallelJob {
    /// The claim cursor every participating thread hammers; keep it off
    /// the line holding the read-only job fields below.
    alignas(DestructiveInterferenceSize) std::atomic<size_t> Next{0};
    alignas(DestructiveInterferenceSize) size_t Limit = 0;
    size_t Grain = 1;
    const std::function<void(size_t)> *Body = nullptr;
    std::mutex DoneM;
    std::condition_variable DoneCV;
    size_t Done = 0;
    std::exception_ptr Error;

    void drain() {
      for (;;) {
        const size_t Begin = Next.fetch_add(Grain, std::memory_order_relaxed);
        if (Begin >= Limit)
          return;
        const size_t End = std::min(Begin + Grain, Limit);
        std::exception_ptr E;
        for (size_t I = Begin; I != End; ++I) {
          try {
            (*Body)(I);
          } catch (...) {
            if (!E)
              E = std::current_exception();
          }
        }
        {
          std::lock_guard<std::mutex> Lock(DoneM);
          if (E && !Error)
            Error = E;
          Done += End - Begin;
          if (Done == Limit)
            DoneCV.notify_all();
        }
      }
    }
  };

  void workerLoop() {
    for (;;) {
      std::function<void()> Task;
      {
        std::unique_lock<std::mutex> Lock(M);
        WakeWorkers.wait(Lock, [&] { return Stopping || !Tasks.empty(); });
        if (Tasks.empty())
          return; // Stopping, queue drained.
        Task = std::move(Tasks.front());
        Tasks.pop();
      }
      Task();
    }
  }

  std::mutex M;
  std::condition_variable WakeWorkers;
  std::queue<std::function<void()>> Tasks;
  bool Stopping = false;
  std::vector<std::thread> Workers;
};

} // namespace urcm

#endif // URCM_SUPPORT_THREADPOOL_H
