//===- urcm/support/CacheAlign.h - False-sharing constants ------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The destructive-interference stride used to pad data shared across
/// threads (SPSC queue indices, pool job counters, per-shard replay
/// counters). Two objects closer than this stride can ping-pong a cache
/// line between cores even when each thread touches only its own object.
///
/// The value mirrors std::hardware_destructive_interference_size where
/// the library provides it. GCC warns on every *use* of the std constant
/// (its value is ABI-affecting and varies between compiler versions);
/// capturing it once here, with the warning suppressed locally, keeps
/// the rest of the tree clean while staying honest about the source.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SUPPORT_CACHEALIGN_H
#define URCM_SUPPORT_CACHEALIGN_H

#include <cstddef>
#include <new>

namespace urcm {

#if defined(__cpp_lib_hardware_interference_size)
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winterference-size"
#endif
inline constexpr std::size_t DestructiveInterferenceSize =
    std::hardware_destructive_interference_size;
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#else
inline constexpr std::size_t DestructiveInterferenceSize = 64;
#endif

} // namespace urcm

#endif // URCM_SUPPORT_CACHEALIGN_H
