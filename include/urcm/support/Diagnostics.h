//===- urcm/support/Diagnostics.h - Diagnostic engine -----------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine used by the MC frontend and the IR verifier.
/// Diagnostics are collected (not thrown); library code never calls exit.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SUPPORT_DIAGNOSTICS_H
#define URCM_SUPPORT_DIAGNOSTICS_H

#include "urcm/support/SourceLoc.h"

#include <string>
#include <vector>

namespace urcm {

/// Severity of a reported diagnostic.
enum class DiagSeverity { Note, Warning, Error };

/// One reported diagnostic: severity, optional location and message.
struct Diagnostic {
  DiagSeverity Severity;
  SourceLoc Loc;
  std::string Message;

  /// Renders as "line:col: error: message" in the LLVM style (lower-case
  /// first letter, no trailing period).
  std::string str() const;
};

/// Collects diagnostics produced while processing one source buffer or
/// module. Callers inspect hasErrors() after each phase.
class DiagnosticEngine {
public:
  void report(DiagSeverity Severity, SourceLoc Loc, std::string Message);

  void error(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Error, Loc, std::move(Message));
  }
  void warning(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Warning, Loc, std::move(Message));
  }
  void note(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Note, Loc, std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every diagnostic, one per line.
  std::string str() const;

  void clear();

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace urcm

#endif // URCM_SUPPORT_DIAGNOSTICS_H
