//===- IntOps.h - Wrapping arithmetic for simulated machines ---*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// The simulated machine (and the IR interpreter that serves as its
// oracle) defines integer arithmetic as two's-complement wraparound.
// Host-side signed overflow is undefined behavior, so every simulated
// ALU op routes through these helpers: compute in uint64_t (defined
// modulo 2^64) and convert back, which C++20 guarantees is the
// two's-complement value.
//
//===----------------------------------------------------------------------===//

#ifndef URCM_SUPPORT_INTOPS_H
#define URCM_SUPPORT_INTOPS_H

#include <cstdint>

namespace urcm {

inline int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}

inline int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}

inline int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}

/// INT64_MIN / -1 overflows (and traps on x86); the simulated machine
/// defines it to wrap to INT64_MIN, matching A * (1/B) mod 2^64.
/// Callers reject B == 0 before calling (that stays a simulated fault).
inline int64_t wrapDiv(int64_t A, int64_t B) {
  if (B == -1)
    return wrapSub(0, A);
  return A / B;
}

/// Remainder companion of wrapDiv: INT64_MIN % -1 is defined as 0.
inline int64_t wrapRem(int64_t A, int64_t B) {
  if (B == -1)
    return 0;
  return A % B;
}

/// Logical-left shift with wraparound (shift count already masked by
/// the caller). Signed << is value-preserving-modulo-2^64 in C++20,
/// but shifting *into* the sign bit still trips UBSan's shift check on
/// some toolchains; the unsigned detour is unambiguous.
inline int64_t wrapShl(int64_t A, unsigned N) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) << N);
}

} // namespace urcm

#endif // URCM_SUPPORT_INTOPS_H
