//===- urcm/support/Telemetry.h - Counters, timers, traces ------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide telemetry: named counters and histograms (LLVM
/// `Statistic`-style), RAII phase timers, classification remarks, and
/// two exporters — a stable JSON snapshot and Chrome trace-event JSON
/// (loadable in chrome://tracing / Perfetto).
///
/// Cost model. Telemetry is off by default and every recording call
/// starts with one relaxed load of a global flag — a predictable
/// untaken branch, so instrumented code paths pay nothing measurable
/// when disabled (the benches assert this stays within noise). When
/// enabled, counters and histograms write to *thread-local* cells with
/// relaxed atomics — no locks, no cross-thread cache-line sharing on
/// the hot path; exporters aggregate across threads. Phase spans take a
/// per-thread mutex, which only an exporter ever contends.
///
/// Remarks follow the branch-on-null-sink contract: emission sites do
///
///   if (telemetry::RemarkSink *S = telemetry::classifySink())
///     S->remark(...);
///
/// and classifySink() is null unless telemetry is enabled *and* a sink
/// was installed, so a disabled build never constructs a remark.
///
/// Defining URCM_TELEMETRY_DISABLED at compile time turns the flag load
/// into `false` and compiles every recording body out entirely.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SUPPORT_TELEMETRY_H
#define URCM_SUPPORT_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace urcm {
namespace telemetry {

namespace detail {

#ifndef URCM_TELEMETRY_DISABLED
extern std::atomic<bool> EnabledFlag;
inline bool enabledFast() {
  return EnabledFlag.load(std::memory_order_relaxed);
}
#else
inline bool enabledFast() { return false; }
#endif

uint64_t nowNs();
void counterAdd(uint32_t Id, uint64_t N);
void histRecord(uint32_t Id, uint64_t Value);
void endPhase(const char *Name, std::string Detail, uint64_t StartNs);
uint32_t registerCounter(const char *Name, const char *Desc);
uint32_t registerHistogram(const char *Name, const char *Desc);

} // namespace detail

/// Master switch. Recording calls are no-ops while disabled. Flip it
/// before spawning worker threads when possible; the flag itself is
/// safe to toggle at any time.
bool enabled();
void setEnabled(bool On);

/// Nanoseconds since process telemetry start (steady clock). Exposed so
/// instrumentation can aggregate interval time into counters without a
/// span per interval.
uint64_t nowNanos();

/// A named monotonic counter. Instances must have static storage
/// duration (registration is permanent); use the URCM_STAT macro.
class Counter {
public:
  Counter(const char *Name, const char *Desc)
      : Name(Name), Desc(Desc), Id(detail::registerCounter(Name, Desc)) {}
  Counter(const Counter &) = delete;
  Counter &operator=(const Counter &) = delete;

  void add(uint64_t N = 1) {
    if (detail::enabledFast())
      detail::counterAdd(Id, N);
  }
  /// Aggregated value across all threads, live and exited.
  uint64_t value() const;
  const char *name() const { return Name; }
  const char *desc() const { return Desc; }

private:
  const char *Name;
  const char *Desc;
  uint32_t Id;
};

/// A named log-linear histogram (4 sub-buckets per power of two, so
/// percentile estimates carry at most 25% relative error). Instances
/// must have static storage duration; use the URCM_HISTOGRAM macro.
class Histogram {
public:
  Histogram(const char *Name, const char *Desc)
      : Name(Name), Desc(Desc), Id(detail::registerHistogram(Name, Desc)) {}
  Histogram(const Histogram &) = delete;
  Histogram &operator=(const Histogram &) = delete;

  void record(uint64_t Value) {
    if (detail::enabledFast())
      detail::histRecord(Id, Value);
  }
  uint64_t count() const;
  uint64_t max() const;
  uint64_t sum() const;
  /// Upper bound of the bucket holding the \p P-th percentile
  /// (0 < P <= 100) of all recorded values; 0 when empty.
  uint64_t percentile(double P) const;
  const char *name() const { return Name; }

private:
  const char *Name;
  const char *Desc;
  uint32_t Id;
};

/// RAII phase span: construction stamps the start, destruction records
/// a {name, detail, start, duration} span on the current thread. Spans
/// feed both the Chrome trace export and the aggregated per-phase
/// totals in the JSON snapshot. Records nothing while disabled.
class ScopedPhase {
public:
  explicit ScopedPhase(const char *Name) : Name(Name) {
    if (detail::enabledFast())
      Start = detail::nowNs();
  }
  ScopedPhase(const char *Name, std::string DetailStr) : Name(Name) {
    if (detail::enabledFast()) {
      Detail = std::move(DetailStr);
      Start = detail::nowNs();
    }
  }
  ScopedPhase(const ScopedPhase &) = delete;
  ScopedPhase &operator=(const ScopedPhase &) = delete;
  ~ScopedPhase() {
    if (Start)
      detail::endPhase(Name, std::move(Detail), Start);
  }

private:
  const char *Name;
  std::string Detail;
  uint64_t Start = 0; // 0 = telemetry was disabled at construction.
};

/// Names the calling thread in trace exports ("pool-3",
/// "trace-producer", ...). Cheap; safe to call with telemetry disabled.
void setThreadName(std::string Name);

/// Aggregated totals for one span name (JSON snapshot form).
struct PhaseTotals {
  std::string Name;
  uint64_t Count = 0;
  uint64_t TotalNs = 0;
  uint64_t MaxNs = 0;
};
std::vector<PhaseTotals> phaseTotals();

//===----------------------------------------------------------------------===//
// Classification remarks (-Rurcm-classify)
//===----------------------------------------------------------------------===//

/// One per-memory-reference decision record from the unified management
/// pass: where the reference goes and why. The `const char *` fields
/// point at string literals (the remark taxonomy is closed; see
/// DESIGN.md section 11).
struct ClassifyRemark {
  std::string Function;
  uint32_t Line = 0; ///< 0 = unknown source location.
  uint32_t Col = 0;
  /// Paper reference form: Am_LOAD, AmSp_STORE, UmAm_LOAD, UmAm_STORE.
  const char *Form = "";
  /// Alias-set verdict: unambiguous | ambiguous | spill | spill-reload.
  const char *Verdict = "";
  /// Why the bypass bit is what it is: unambiguous | ambiguous-alias |
  /// spill | reuse-hot | hints-disabled.
  const char *Reason = "";
  /// Why the last-reference bit is set: last-read | dead-store; empty
  /// when the bit is clear.
  const char *DeadReason = "";
  bool Bypass = false;
  bool LastRef = false;
  int32_t AliasSet = -1; ///< Alias-set id, or -1 when none applies.

  /// The stable one-line text form (golden-tested):
  ///   line:col: urcm-classify: FORM func=... class=... bypass=B
  ///   lastref=L alias-set=N reason=R [dead=D]
  std::string str() const;
};

/// Consumer of classification remarks.
class RemarkSink {
public:
  virtual ~RemarkSink();
  virtual void remark(const ClassifyRemark &R) = 0;
};

/// The installed sink, or null when telemetry is disabled or no sink is
/// installed. Emission sites must branch on the returned pointer.
RemarkSink *classifySink();
/// Installs \p Sink (not owned; null uninstalls).
void setClassifySink(RemarkSink *Sink);

/// Installs the built-in collecting sink: remarks accumulate for the
/// JSON snapshot / collectedRemarks(), and are echoed line-by-line to
/// \p Echo when non-null.
void enableClassifyCapture(std::FILE *Echo = nullptr);
std::vector<ClassifyRemark> collectedRemarks();

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

/// Stable JSON snapshot of all registered counters, histograms,
/// aggregated phase totals, and collected remarks (sorted by name;
/// schema in docs/telemetry_schema.json).
std::string snapshotJSON();

/// Chrome trace-event JSON ({"traceEvents":[...]}): one complete ("X")
/// event per recorded span plus process/thread-name metadata.
std::string chromeTraceJSON();

/// Human-readable counter/histogram/phase listing (urcmc --telemetry).
/// Histograms print p50/p90/p99 (log-linear estimates, <= 25% relative
/// error) next to the raw bucket dump.
std::string summaryText();

/// Background time-series sampler (urcmc/urcm_report --metrics-out).
/// A dedicated thread appends one JSON object per line (JSONL) to the
/// given file every IntervalMs milliseconds:
///
///   {"t_ms": ..., "events": ..., "events_per_s": ...,
///    "rss_kb": ..., "rss_hwm_kb": ..., "counters": {...}}
///
/// where `events` is the cumulative work metric (data references
/// simulated plus trace events streamed), `events_per_s` its rate over
/// the last interval, the RSS fields come from /proc/self/status
/// (0 off Linux), and `counters` holds every registered counter with a
/// nonzero aggregate. stop() (or destruction) joins the thread and
/// appends one final sample, so even sub-interval runs produce a
/// complete trajectory. Construction never fails the host tool: if the
/// file cannot be opened the sampler is inert.
class MetricsSampler {
public:
  explicit MetricsSampler(const std::string &Path,
                          uint32_t IntervalMs = 200);
  ~MetricsSampler();
  MetricsSampler(const MetricsSampler &) = delete;
  MetricsSampler &operator=(const MetricsSampler &) = delete;

  /// True when the output file was opened and the thread is running.
  bool active() const { return P != nullptr; }

  /// Stops the thread, writes the final sample and closes the file.
  /// Idempotent.
  void stop();

private:
  struct Impl;
  Impl *P = nullptr;
};

/// Zeroes every counter and histogram and drops all spans and remarks.
/// Registration (names) is permanent. Intended for tests and tools; do
/// not race it against recording threads.
void reset();

} // namespace telemetry
} // namespace urcm

//===----------------------------------------------------------------------===//
// Registration macros (LLVM Statistic style). The variables are
// function-local or namespace-scope statics; both expand to nothing
// that survives the optimizer when URCM_TELEMETRY_DISABLED is defined.
//===----------------------------------------------------------------------===//

#ifndef URCM_TELEMETRY_DISABLED
#define URCM_STAT(Var, Name, Desc)                                           \
  static ::urcm::telemetry::Counter Var(Name, Desc)
#define URCM_HISTOGRAM(Var, Name, Desc)                                      \
  static ::urcm::telemetry::Histogram Var(Name, Desc)
#else
namespace urcm::telemetry::detail {
struct NullCounter {
  void add(uint64_t = 1) const {}
  uint64_t value() const { return 0; }
};
struct NullHistogram {
  void record(uint64_t) const {}
};
} // namespace urcm::telemetry::detail
#define URCM_STAT(Var, Name, Desc)                                           \
  static constexpr ::urcm::telemetry::detail::NullCounter Var {}
#define URCM_HISTOGRAM(Var, Name, Desc)                                      \
  static constexpr ::urcm::telemetry::detail::NullHistogram Var {}
#endif

#endif // URCM_SUPPORT_TELEMETRY_H
