//===- urcm/support/RNG.h - Deterministic random numbers --------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic SplitMix64 generator. Used for the Random cache
/// replacement policy and for workload data so every experiment is exactly
/// reproducible across runs and platforms.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SUPPORT_RNG_H
#define URCM_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace urcm {

/// SplitMix64: tiny, fast, full-period 64-bit generator.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow(0) is meaningless");
    return next() % Bound;
  }

private:
  uint64_t State;
};

} // namespace urcm

#endif // URCM_SUPPORT_RNG_H
