//===- urcm/support/SPSCQueue.h - Bounded SPSC handoff queue ----*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded single-producer/single-consumer queue used to hand trace
/// chunks from the simulating thread to a replaying thread. Chunks are
/// hundreds of kilobytes, so handoffs are rare relative to the work they
/// carry; a mutex + condvar ring is the right tool (a lock-free ring
/// would save nanoseconds per *chunk* while complicating shutdown and
/// backpressure). The bounded capacity is the backpressure mechanism:
/// a producer that outruns the consumer blocks instead of buffering the
/// whole trace, which is what keeps streaming memory O(capacity).
///
/// The queue counts its blocking waits (pushWaits/popWaits): a high
/// pushWaits says the consumer is the bottleneck, a high popWaits says
/// the producer is. Telemetry reads these per stream, not per handoff.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SUPPORT_SPSCQUEUE_H
#define URCM_SUPPORT_SPSCQUEUE_H

#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

namespace urcm {

template <typename T> class SPSCQueue {
public:
  /// \p Capacity bounds the number of in-flight items (>= 1).
  explicit SPSCQueue(size_t Capacity) : Capacity(Capacity) {
    assert(Capacity > 0 && "a zero-capacity queue cannot make progress");
  }

  /// Enqueues \p Value, blocking while the queue is full.
  void push(T Value) {
    std::unique_lock<std::mutex> Lock(M);
    if (Items.size() >= Capacity)
      ++PushWaits;
    NotFull.wait(Lock, [&] { return Items.size() < Capacity; });
    assert(!Closed && "push after close");
    Items.push_back(std::move(Value));
    NotEmpty.notify_one();
  }

  /// Enqueues \p Value if space is available without blocking.
  bool tryPush(T Value) {
    std::lock_guard<std::mutex> Lock(M);
    if (Items.size() >= Capacity)
      return false;
    assert(!Closed && "push after close");
    Items.push_back(std::move(Value));
    NotEmpty.notify_one();
    return true;
  }

  /// Dequeues into \p Out, blocking while the queue is empty. Returns
  /// false once the queue is closed *and* drained.
  bool pop(T &Out) {
    std::unique_lock<std::mutex> Lock(M);
    if (Items.empty() && !Closed)
      ++PopWaits;
    NotEmpty.wait(Lock, [&] { return !Items.empty() || Closed; });
    if (Items.empty())
      return false;
    Out = std::move(Items.front());
    Items.pop_front();
    NotFull.notify_one();
    return true;
  }

  /// Dequeues into \p Out if an item is ready; never blocks and never
  /// consults the closed flag (pure opportunistic grab).
  bool tryPop(T &Out) {
    std::lock_guard<std::mutex> Lock(M);
    if (Items.empty())
      return false;
    Out = std::move(Items.front());
    Items.pop_front();
    NotFull.notify_one();
    return true;
  }

  /// Producer-side end-of-stream: wakes a blocked consumer; pop()
  /// returns false once the remaining items drain.
  void close() {
    std::lock_guard<std::mutex> Lock(M);
    Closed = true;
    NotEmpty.notify_all();
  }

  /// Times push() found the queue full and had to block.
  uint64_t pushWaits() const {
    std::lock_guard<std::mutex> Lock(M);
    return PushWaits;
  }

  /// Times pop() found the queue empty (and not closed) and had to block.
  uint64_t popWaits() const {
    std::lock_guard<std::mutex> Lock(M);
    return PopWaits;
  }

  /// Current occupancy; instantaneous, for telemetry sampling only.
  size_t size() const {
    std::lock_guard<std::mutex> Lock(M);
    return Items.size();
  }

private:
  const size_t Capacity;
  mutable std::mutex M;
  std::condition_variable NotFull;
  std::condition_variable NotEmpty;
  std::deque<T> Items;
  bool Closed = false;
  uint64_t PushWaits = 0;
  uint64_t PopWaits = 0;
};

} // namespace urcm

#endif // URCM_SUPPORT_SPSCQUEUE_H
