//===- urcm/support/SPSCQueue.h - Bounded SPSC handoff queue ----*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded single-producer/single-consumer queue used to hand trace
/// chunks from the simulating thread to a replaying thread. The fast
/// path is a classic SPSC ring over two monotonic indices: the producer
/// owns Tail, the consumer owns Head, and each side reads the other's
/// index without taking a lock. The indices (and the slot array) are
/// padded to the destructive-interference stride so a producer bumping
/// Tail never invalidates the cache line the consumer spins on — under
/// the old mutex design both sides serialized on one line per handoff,
/// which showed up as pushWaits/popWaits stalls even when neither side
/// was actually ahead.
///
/// Blocking is the slow path only: a side that finds no room (or no
/// item) raises its Waiting flag and sleeps on a condvar; the opposite
/// side checks the flag after publishing and notifies under the mutex.
/// The flag handshake uses seq_cst on both sides (store-then-load on
/// each, Dekker-style) so a publish and a sleep cannot miss each other.
/// The bounded capacity remains the backpressure mechanism: a producer
/// that outruns the consumer blocks instead of buffering the whole
/// trace, which is what keeps streaming memory O(capacity).
///
/// The queue counts its blocking waits (pushWaits/popWaits): a high
/// pushWaits says the consumer is the bottleneck, a high popWaits says
/// the producer is. Telemetry reads these per stream, not per handoff.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SUPPORT_SPSCQUEUE_H
#define URCM_SUPPORT_SPSCQUEUE_H

#include "urcm/support/CacheAlign.h"

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

namespace urcm {

template <typename T> class SPSCQueue {
public:
  /// \p Capacity bounds the number of in-flight items (>= 1).
  explicit SPSCQueue(size_t Capacity)
      : Capacity(Capacity), Slots(Capacity) {
    assert(Capacity > 0 && "a zero-capacity queue cannot make progress");
  }

  /// Enqueues \p Value, blocking while the queue is full.
  void push(T Value) {
    const uint64_t T0 = Tail.load(std::memory_order_relaxed);
    if (T0 - Head.load(std::memory_order_seq_cst) >= Capacity) {
      std::unique_lock<std::mutex> Lock(M);
      PushWaits.fetch_add(1, std::memory_order_relaxed);
      ProducerWaiting.store(true, std::memory_order_seq_cst);
      NotFull.wait(Lock, [&] {
        return T0 - Head.load(std::memory_order_seq_cst) < Capacity;
      });
      ProducerWaiting.store(false, std::memory_order_relaxed);
    }
    assert(!Closed.load(std::memory_order_relaxed) && "push after close");
    Slots[T0 % Capacity] = std::move(Value);
    Tail.store(T0 + 1, std::memory_order_seq_cst);
    if (ConsumerWaiting.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> Lock(M);
      NotEmpty.notify_one();
    }
  }

  /// Enqueues \p Value if space is available without blocking.
  bool tryPush(T Value) {
    const uint64_t T0 = Tail.load(std::memory_order_relaxed);
    if (T0 - Head.load(std::memory_order_seq_cst) >= Capacity)
      return false;
    assert(!Closed.load(std::memory_order_relaxed) && "push after close");
    Slots[T0 % Capacity] = std::move(Value);
    Tail.store(T0 + 1, std::memory_order_seq_cst);
    if (ConsumerWaiting.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> Lock(M);
      NotEmpty.notify_one();
    }
    return true;
  }

  /// Dequeues into \p Out, blocking while the queue is empty. Returns
  /// false once the queue is closed *and* drained.
  bool pop(T &Out) {
    const uint64_t H = Head.load(std::memory_order_relaxed);
    if (H == Tail.load(std::memory_order_seq_cst) &&
        !Closed.load(std::memory_order_seq_cst)) {
      std::unique_lock<std::mutex> Lock(M);
      PopWaits.fetch_add(1, std::memory_order_relaxed);
      ConsumerWaiting.store(true, std::memory_order_seq_cst);
      NotEmpty.wait(Lock, [&] {
        return H != Tail.load(std::memory_order_seq_cst) ||
               Closed.load(std::memory_order_seq_cst);
      });
      ConsumerWaiting.store(false, std::memory_order_relaxed);
    }
    if (H == Tail.load(std::memory_order_seq_cst))
      return false; // Closed and drained.
    Out = std::move(Slots[H % Capacity]);
    Head.store(H + 1, std::memory_order_seq_cst);
    if (ProducerWaiting.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> Lock(M);
      NotFull.notify_one();
    }
    return true;
  }

  /// Dequeues into \p Out if an item is ready; never blocks and never
  /// consults the closed flag (pure opportunistic grab).
  bool tryPop(T &Out) {
    const uint64_t H = Head.load(std::memory_order_relaxed);
    if (H == Tail.load(std::memory_order_seq_cst))
      return false;
    Out = std::move(Slots[H % Capacity]);
    Head.store(H + 1, std::memory_order_seq_cst);
    if (ProducerWaiting.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> Lock(M);
      NotFull.notify_one();
    }
    return true;
  }

  /// Producer-side end-of-stream: wakes a blocked consumer; pop()
  /// returns false once the remaining items drain. The flag is flipped
  /// under the mutex so a consumer between its empty check and its
  /// sleep cannot miss the close.
  void close() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Closed.store(true, std::memory_order_seq_cst);
    }
    NotEmpty.notify_all();
  }

  /// Times push() found the queue full and had to block.
  uint64_t pushWaits() const {
    return PushWaits.load(std::memory_order_relaxed);
  }

  /// Times pop() found the queue empty (and not closed) and had to block.
  uint64_t popWaits() const {
    return PopWaits.load(std::memory_order_relaxed);
  }

  /// Current occupancy; instantaneous, for telemetry sampling only.
  size_t size() const {
    const uint64_t T0 = Tail.load(std::memory_order_seq_cst);
    const uint64_t H = Head.load(std::memory_order_seq_cst);
    return T0 >= H ? static_cast<size_t>(T0 - H) : 0;
  }

private:
  const size_t Capacity;
  std::vector<T> Slots;
  /// Producer-owned index of the next slot to fill; monotonic, slot =
  /// Tail % Capacity. Its own line: the consumer re-reads it on every
  /// pop, and it must not share a line with Head (or Slots' bookkeeping).
  alignas(DestructiveInterferenceSize) std::atomic<uint64_t> Tail{0};
  /// Consumer-owned index of the next slot to drain; same reasoning.
  alignas(DestructiveInterferenceSize) std::atomic<uint64_t> Head{0};
  /// Slow-path state; only touched around actual blocking, so sharing a
  /// line among these is fine.
  alignas(DestructiveInterferenceSize) mutable std::mutex M;
  std::condition_variable NotFull;
  std::condition_variable NotEmpty;
  std::atomic<bool> ProducerWaiting{false};
  std::atomic<bool> ConsumerWaiting{false};
  std::atomic<bool> Closed{false};
  std::atomic<uint64_t> PushWaits{0};
  std::atomic<uint64_t> PopWaits{0};
};

} // namespace urcm

#endif // URCM_SUPPORT_SPSCQUEUE_H
