//===- urcm/lang/Parser.h - MC recursive-descent parser ---------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MC. Names are resolved during parsing via a
/// scope stack (declaration before use, C-style); type checking is done by
/// Sema afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_LANG_PARSER_H
#define URCM_LANG_PARSER_H

#include "urcm/lang/AST.h"
#include "urcm/lang/Lexer.h"

#include <memory>
#include <unordered_map>

namespace urcm {

/// Parses one MC translation unit. On error, diagnostics are reported to
/// the engine and a (possibly partial) AST is still returned; callers must
/// check Diags.hasErrors().
class Parser {
public:
  Parser(std::string Source, DiagnosticEngine &Diags);

  /// Parses the whole buffer.
  std::unique_ptr<TranslationUnit> parse();

private:
  // Token plumbing.
  void consume();
  bool expect(TokenKind Kind, const char *Context);
  bool accept(TokenKind Kind);

  // Scopes.
  void pushScope();
  void popScope();
  VarDecl *lookupVar(const std::string &Name) const;
  bool declareVar(VarDecl *Decl);

  // Grammar productions.
  void parseTopLevel();
  void parseFunctionRest(Type ReturnTy, std::string Name, SourceLoc Loc);
  Type parseTypePrefix(bool AllowVoid);
  std::unique_ptr<BlockStmt> parseBlock();
  std::unique_ptr<Stmt> parseStmt();
  std::unique_ptr<Stmt> parseDeclStmt();
  std::unique_ptr<Stmt> parseSimpleStmt();
  std::unique_ptr<Stmt> parseIf();
  std::unique_ptr<Stmt> parseWhile();
  std::unique_ptr<Stmt> parseDoWhile();
  std::unique_ptr<Stmt> parseFor();

  std::unique_ptr<Expr> parseExpr();
  std::unique_ptr<Expr> parseBinaryRHS(int MinPrec,
                                       std::unique_ptr<Expr> LHS);
  std::unique_ptr<Expr> parseUnary();
  std::unique_ptr<Expr> parsePostfix();
  std::unique_ptr<Expr> parsePrimary();

  std::unique_ptr<TranslationUnit> TU;
  Lexer Lex;
  DiagnosticEngine &Diags;
  Token Tok;
  FunctionDecl *CurFunction = nullptr;
  std::vector<std::unordered_map<std::string, VarDecl *>> Scopes;
};

/// Convenience: lex+parse \p Source.
std::unique_ptr<TranslationUnit> parseMC(const std::string &Source,
                                         DiagnosticEngine &Diags);

} // namespace urcm

#endif // URCM_LANG_PARSER_H
