//===- urcm/lang/Token.h - MC token definitions -----------------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for MC, the mini-C language the six paper benchmarks are
/// written in.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_LANG_TOKEN_H
#define URCM_LANG_TOKEN_H

#include "urcm/support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace urcm {

/// Lexical token kinds of MC.
enum class TokenKind {
  Eof,
  Identifier,
  IntLiteral,

  // Keywords.
  KwInt,
  KwVoid,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  KwDo,

  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,

  // Operators.
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Bang,
  Assign,
  Less,
  LessEqual,
  Greater,
  GreaterEqual,
  EqualEqual,
  BangEqual,
  AmpAmp,
  PipePipe,
  LessLess,
  GreaterGreater,
};

/// Returns a human-readable spelling for \p Kind (for diagnostics).
const char *tokenKindName(TokenKind Kind);

/// One lexed MC token.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  /// Identifier spelling; only set for Identifier tokens.
  std::string Text;
  /// Literal value; only set for IntLiteral tokens.
  int64_t IntValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace urcm

#endif // URCM_LANG_TOKEN_H
