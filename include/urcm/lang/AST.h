//===- urcm/lang/AST.h - MC abstract syntax trees ---------------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node definitions for MC. The hierarchy uses LLVM-style kind enums
/// and `classof` so that `isa<>/cast<>/dyn_cast<>` from
/// urcm/support/Casting.h apply. Nodes are owned top-down via unique_ptr;
/// cross references (e.g. VarRefExpr -> VarDecl) are non-owning.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_LANG_AST_H
#define URCM_LANG_AST_H

#include "urcm/support/Casting.h"
#include "urcm/support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace urcm {

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

/// MC types. The only base type is a machine word ("int"); pointers point
/// at int, and arrays are 1-D arrays of int. This matches the paper's
/// word-oriented machine model (cache line size of one word).
class Type {
public:
  enum class Kind { Void, Int, Pointer, Array };

  static Type voidTy() { return Type(Kind::Void, 0); }
  static Type intTy() { return Type(Kind::Int, 0); }
  static Type pointerTy() { return Type(Kind::Pointer, 0); }
  static Type arrayTy(uint32_t NumElements) {
    return Type(Kind::Array, NumElements);
  }

  Type() : TheKind(Kind::Int), NumElements(0) {}

  Kind kind() const { return TheKind; }
  bool isVoid() const { return TheKind == Kind::Void; }
  bool isInt() const { return TheKind == Kind::Int; }
  bool isPointer() const { return TheKind == Kind::Pointer; }
  bool isArray() const { return TheKind == Kind::Array; }
  /// True for types usable as an r-value word (int or pointer).
  bool isScalar() const { return isInt() || isPointer(); }

  /// Array element count; only valid for arrays.
  uint32_t arraySize() const { return NumElements; }

  /// Size of an object of this type, in machine words.
  uint32_t sizeInWords() const { return isArray() ? NumElements : 1; }

  bool operator==(const Type &RHS) const {
    return TheKind == RHS.TheKind && NumElements == RHS.NumElements;
  }
  bool operator!=(const Type &RHS) const { return !(*this == RHS); }

  std::string str() const;

private:
  Type(Kind K, uint32_t N) : TheKind(K), NumElements(N) {}

  Kind TheKind;
  uint32_t NumElements;
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

class Expr;
class Stmt;
class BlockStmt;

/// Storage class of a variable, used later by ambiguity classification.
enum class StorageKind { Global, Local, Param };

/// A declared variable (global, local or parameter).
class VarDecl {
public:
  VarDecl(std::string Name, Type Ty, StorageKind Storage, SourceLoc Loc)
      : Name(std::move(Name)), Ty(Ty), Storage(Storage), Loc(Loc) {}

  const std::string &name() const { return Name; }
  Type type() const { return Ty; }
  StorageKind storage() const { return Storage; }
  SourceLoc loc() const { return Loc; }

  bool isGlobal() const { return Storage == StorageKind::Global; }
  bool isParam() const { return Storage == StorageKind::Param; }

  /// True once Sema has seen `&var` anywhere; such variables may be
  /// ambiguously aliased through pointers (paper section 2.1.3).
  bool isAddressTaken() const { return AddressTaken; }
  void setAddressTaken() { AddressTaken = true; }

  /// Optional initializer (locals only; globals are zero-initialized).
  Expr *init() const { return Init.get(); }
  void setInit(std::unique_ptr<Expr> E) { Init = std::move(E); }

private:
  std::string Name;
  Type Ty;
  StorageKind Storage;
  SourceLoc Loc;
  bool AddressTaken = false;
  std::unique_ptr<Expr> Init;
};

/// A function definition.
class FunctionDecl {
public:
  FunctionDecl(std::string Name, Type ReturnTy, SourceLoc Loc)
      : Name(std::move(Name)), ReturnTy(ReturnTy), Loc(Loc) {}

  const std::string &name() const { return Name; }
  Type returnType() const { return ReturnTy; }
  SourceLoc loc() const { return Loc; }

  const std::vector<std::unique_ptr<VarDecl>> &params() const {
    return Params;
  }
  VarDecl *addParam(std::string PName, Type Ty, SourceLoc PLoc) {
    Params.push_back(std::make_unique<VarDecl>(std::move(PName), Ty,
                                               StorageKind::Param, PLoc));
    return Params.back().get();
  }

  BlockStmt *body() const { return Body.get(); }
  void setBody(std::unique_ptr<BlockStmt> B) { Body = std::move(B); }

private:
  std::string Name;
  Type ReturnTy;
  SourceLoc Loc;
  std::vector<std::unique_ptr<VarDecl>> Params;
  std::unique_ptr<BlockStmt> Body;
};

/// A whole MC translation unit: globals plus function definitions.
class TranslationUnit {
public:
  const std::vector<std::unique_ptr<VarDecl>> &globals() const {
    return Globals;
  }
  const std::vector<std::unique_ptr<FunctionDecl>> &functions() const {
    return Functions;
  }

  VarDecl *addGlobal(std::string Name, Type Ty, SourceLoc Loc) {
    Globals.push_back(std::make_unique<VarDecl>(std::move(Name), Ty,
                                                StorageKind::Global, Loc));
    return Globals.back().get();
  }
  FunctionDecl *addFunction(std::string Name, Type ReturnTy, SourceLoc Loc) {
    Functions.push_back(
        std::make_unique<FunctionDecl>(std::move(Name), ReturnTy, Loc));
    return Functions.back().get();
  }

  /// Finds a function by name; returns null if absent.
  FunctionDecl *findFunction(const std::string &Name) const;

private:
  std::vector<std::unique_ptr<VarDecl>> Globals;
  std::vector<std::unique_ptr<FunctionDecl>> Functions;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class of all MC expressions.
class Expr {
public:
  enum class Kind {
    IntLiteral,
    VarRef,
    Unary,
    Binary,
    Index,
    Call,
  };

  virtual ~Expr() = default;

  Kind kind() const { return TheKind; }
  SourceLoc loc() const { return Loc; }

  /// The type computed by Sema; Int until Sema runs.
  Type type() const { return Ty; }
  void setType(Type T) { Ty = T; }

protected:
  Expr(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
  Type Ty = Type::intTy();
};

/// An integer literal.
class IntLiteralExpr : public Expr {
public:
  IntLiteralExpr(int64_t Value, SourceLoc Loc)
      : Expr(Kind::IntLiteral, Loc), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::IntLiteral; }

private:
  int64_t Value;
};

/// A reference to a declared variable.
class VarRefExpr : public Expr {
public:
  VarRefExpr(VarDecl *Decl, SourceLoc Loc)
      : Expr(Kind::VarRef, Loc), Decl(Decl) {}

  VarDecl *decl() const { return Decl; }

  static bool classof(const Expr *E) { return E->kind() == Kind::VarRef; }

private:
  VarDecl *Decl;
};

/// Unary operators.
enum class UnaryOp { Neg, LogicalNot, BitNot, Deref, AddrOf };

/// A unary expression.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, std::unique_ptr<Expr> Operand, SourceLoc Loc)
      : Expr(Kind::Unary, Loc), Op(Op), Operand(std::move(Operand)) {}

  UnaryOp op() const { return Op; }
  Expr *operand() const { return Operand.get(); }

  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

private:
  UnaryOp Op;
  std::unique_ptr<Expr> Operand;
};

/// Binary operators. LogicalAnd/LogicalOr short-circuit (lowered to control
/// flow in IRGen).
enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  LogicalAnd,
  LogicalOr,
};

/// A binary expression.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, std::unique_ptr<Expr> LHS,
             std::unique_ptr<Expr> RHS, SourceLoc Loc)
      : Expr(Kind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  BinaryOp op() const { return Op; }
  Expr *lhs() const { return LHS.get(); }
  Expr *rhs() const { return RHS.get(); }

  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinaryOp Op;
  std::unique_ptr<Expr> LHS, RHS;
};

/// An array/pointer subscript `base[index]`.
class IndexExpr : public Expr {
public:
  IndexExpr(std::unique_ptr<Expr> Base, std::unique_ptr<Expr> Index,
            SourceLoc Loc)
      : Expr(Kind::Index, Loc), Base(std::move(Base)),
        Index(std::move(Index)) {}

  Expr *base() const { return Base.get(); }
  Expr *index() const { return Index.get(); }

  static bool classof(const Expr *E) { return E->kind() == Kind::Index; }

private:
  std::unique_ptr<Expr> Base, Index;
};

/// Builtin functions recognised by name. `print` appends its argument to
/// the simulator output stream (used to validate benchmark results).
enum class BuiltinKind { None, Print };

/// A function call, either to a user function or a builtin.
class CallExpr : public Expr {
public:
  CallExpr(FunctionDecl *Callee, BuiltinKind Builtin,
           std::vector<std::unique_ptr<Expr>> Args, SourceLoc Loc)
      : Expr(Kind::Call, Loc), Callee(Callee), Builtin(Builtin),
        Args(std::move(Args)) {}

  /// Null for builtin calls.
  FunctionDecl *callee() const { return Callee; }
  BuiltinKind builtin() const { return Builtin; }
  bool isBuiltin() const { return Builtin != BuiltinKind::None; }
  const std::vector<std::unique_ptr<Expr>> &args() const { return Args; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Call; }

private:
  FunctionDecl *Callee;
  BuiltinKind Builtin;
  std::vector<std::unique_ptr<Expr>> Args;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Base class of all MC statements.
class Stmt {
public:
  enum class Kind {
    Block,
    Decl,
    Expr,
    Assign,
    If,
    While,
    DoWhile,
    For,
    Return,
    Break,
    Continue,
  };

  virtual ~Stmt() = default;

  Kind kind() const { return TheKind; }
  SourceLoc loc() const { return Loc; }

protected:
  Stmt(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
};

/// A `{ ... }` statement list.
class BlockStmt : public Stmt {
public:
  explicit BlockStmt(SourceLoc Loc) : Stmt(Kind::Block, Loc) {}

  const std::vector<std::unique_ptr<Stmt>> &stmts() const { return Stmts; }
  void addStmt(std::unique_ptr<Stmt> S) { Stmts.push_back(std::move(S)); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Block; }

private:
  std::vector<std::unique_ptr<Stmt>> Stmts;
};

/// A local variable declaration statement. The VarDecl is owned here.
class DeclStmt : public Stmt {
public:
  DeclStmt(std::unique_ptr<VarDecl> Decl, SourceLoc Loc)
      : Stmt(Kind::Decl, Loc), Decl(std::move(Decl)) {}

  VarDecl *decl() const { return Decl.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Decl; }

private:
  std::unique_ptr<VarDecl> Decl;
};

/// An expression evaluated for its side effects (a call).
class ExprStmt : public Stmt {
public:
  ExprStmt(std::unique_ptr<Expr> E, SourceLoc Loc)
      : Stmt(Kind::Expr, Loc), E(std::move(E)) {}

  Expr *expr() const { return E.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Expr; }

private:
  std::unique_ptr<Expr> E;
};

/// An assignment `lhs = rhs;` where lhs is an l-value expression.
class AssignStmt : public Stmt {
public:
  AssignStmt(std::unique_ptr<Expr> LHS, std::unique_ptr<Expr> RHS,
             SourceLoc Loc)
      : Stmt(Kind::Assign, Loc), LHS(std::move(LHS)), RHS(std::move(RHS)) {}

  Expr *lhs() const { return LHS.get(); }
  Expr *rhs() const { return RHS.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assign; }

private:
  std::unique_ptr<Expr> LHS, RHS;
};

/// An if/else statement (else body may be null).
class IfStmt : public Stmt {
public:
  IfStmt(std::unique_ptr<Expr> Cond, std::unique_ptr<Stmt> Then,
         std::unique_ptr<Stmt> Else, SourceLoc Loc)
      : Stmt(Kind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  Expr *cond() const { return Cond.get(); }
  Stmt *thenStmt() const { return Then.get(); }
  Stmt *elseStmt() const { return Else.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

private:
  std::unique_ptr<Expr> Cond;
  std::unique_ptr<Stmt> Then, Else;
};

/// A while loop.
class WhileStmt : public Stmt {
public:
  WhileStmt(std::unique_ptr<Expr> Cond, std::unique_ptr<Stmt> Body,
            SourceLoc Loc)
      : Stmt(Kind::While, Loc), Cond(std::move(Cond)), Body(std::move(Body)) {
  }

  Expr *cond() const { return Cond.get(); }
  Stmt *body() const { return Body.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }

private:
  std::unique_ptr<Expr> Cond;
  std::unique_ptr<Stmt> Body;
};

/// A do/while loop.
class DoWhileStmt : public Stmt {
public:
  DoWhileStmt(std::unique_ptr<Stmt> Body, std::unique_ptr<Expr> Cond,
              SourceLoc Loc)
      : Stmt(Kind::DoWhile, Loc), Body(std::move(Body)),
        Cond(std::move(Cond)) {}

  Stmt *body() const { return Body.get(); }
  Expr *cond() const { return Cond.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::DoWhile; }

private:
  std::unique_ptr<Stmt> Body;
  std::unique_ptr<Expr> Cond;
};

/// A for loop. Init and Step are statements (assignments or expression
/// statements) and may be null, as may Cond.
class ForStmt : public Stmt {
public:
  ForStmt(std::unique_ptr<Stmt> Init, std::unique_ptr<Expr> Cond,
          std::unique_ptr<Stmt> Step, std::unique_ptr<Stmt> Body,
          SourceLoc Loc)
      : Stmt(Kind::For, Loc), Init(std::move(Init)), Cond(std::move(Cond)),
        Step(std::move(Step)), Body(std::move(Body)) {}

  Stmt *init() const { return Init.get(); }
  Expr *cond() const { return Cond.get(); }
  Stmt *step() const { return Step.get(); }
  Stmt *body() const { return Body.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::For; }

private:
  std::unique_ptr<Stmt> Init;
  std::unique_ptr<Expr> Cond;
  std::unique_ptr<Stmt> Step, Body;
};

/// A return statement (value may be null in void functions).
class ReturnStmt : public Stmt {
public:
  ReturnStmt(std::unique_ptr<Expr> Value, SourceLoc Loc)
      : Stmt(Kind::Return, Loc), Value(std::move(Value)) {}

  Expr *value() const { return Value.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Return; }

private:
  std::unique_ptr<Expr> Value;
};

/// A break statement.
class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(Kind::Break, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Break; }
};

/// A continue statement.
class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(Kind::Continue, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == Kind::Continue; }
};

/// Renders the AST of \p TU as indented pseudo-source (tests, examples).
std::string printAST(const TranslationUnit &TU);

} // namespace urcm

#endif // URCM_LANG_AST_H
