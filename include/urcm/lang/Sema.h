//===- urcm/lang/Sema.h - MC semantic analysis ------------------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for MC: type checking, l-value validation,
/// break/continue placement, call signature checking, and address-taken
/// marking (the frontend half of the paper's ambiguity classification).
///
//===----------------------------------------------------------------------===//

#ifndef URCM_LANG_SEMA_H
#define URCM_LANG_SEMA_H

#include "urcm/lang/AST.h"
#include "urcm/support/Diagnostics.h"

namespace urcm {

/// Runs semantic analysis over \p TU, annotating expression types and
/// VarDecl address-taken flags in place. Returns true on success (no
/// errors reported).
bool analyze(TranslationUnit &TU, DiagnosticEngine &Diags);

/// Convenience: parse + analyze. Returns null if either phase errored.
std::unique_ptr<TranslationUnit> parseAndAnalyze(const std::string &Source,
                                                 DiagnosticEngine &Diags);

} // namespace urcm

#endif // URCM_LANG_SEMA_H
