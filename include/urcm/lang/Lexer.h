//===- urcm/lang/Lexer.h - MC lexer -----------------------------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for MC. Supports `//` and `/* */` comments, decimal
/// and hexadecimal integer literals, and the operator set in Token.h.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_LANG_LEXER_H
#define URCM_LANG_LEXER_H

#include "urcm/lang/Token.h"
#include "urcm/support/Diagnostics.h"

#include <string>
#include <vector>

namespace urcm {

/// Converts an MC source buffer into a token stream, one token per call.
class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Lexes and returns the next token; returns Eof forever at end of input.
  Token next();

private:
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipTrivia();
  Token makeToken(TokenKind Kind, SourceLoc Loc) const;
  Token lexIdentifierOrKeyword(SourceLoc Loc);
  Token lexNumber(SourceLoc Loc);
  SourceLoc currentLoc() const { return SourceLoc(Line, Col); }

  std::string Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

/// Lexes the whole buffer (convenience used by tests).
std::vector<Token> lexAll(const std::string &Source,
                          DiagnosticEngine &Diags);

} // namespace urcm

#endif // URCM_LANG_LEXER_H
