//===- urcm/pass/Pipeline.h - Textual pipeline descriptions -----*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pipeline text syntax: comma-separated pass names, e.g.
///
///   promote,cleanup,regalloc,unified,codegen
///
/// Known names: verify, promote, cleanup, copyprop, lvn, dce, dse,
/// regalloc, unified, codegen. `urcmc --passes=...` feeds user text
/// here; `urcmc --print-pipeline` prints the canonical text the current
/// flags resolve to (PassManager::str() round-trips).
///
//===----------------------------------------------------------------------===//

#ifndef URCM_PASS_PIPELINE_H
#define URCM_PASS_PIPELINE_H

#include "urcm/pass/Pass.h"

#include <string>

namespace urcm {

/// Appends the passes named in \p Text to \p PM. On failure returns
/// false and sets \p Error to the offending name.
bool parsePassPipeline(PassManager &PM, const std::string &Text,
                       std::string &Error);

/// The text the driver's boolean options resolve to: the Figure-5
/// baseline is "regalloc,unified,codegen"; --promote and --cleanup
/// prepend their passes.
std::string defaultPipelineText(bool Promote, bool Cleanup);

} // namespace urcm

#endif // URCM_PASS_PIPELINE_H
