//===- urcm/pass/Analyses.h - Analysis registrations ------------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The project's analyses registered behind AnalysisManager keys. Each
/// wrapper names the underlying result type and builds it from the
/// context; nested Ctx.get<> queries double as dependency edges, so the
/// manager knows e.g. that dropping the CFG must also drop the dominator
/// tree that holds a reference into it.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_PASS_ANALYSES_H
#define URCM_PASS_ANALYSES_H

#include "urcm/analysis/AliasAnalysis.h"
#include "urcm/analysis/CFG.h"
#include "urcm/analysis/CallFrequency.h"
#include "urcm/analysis/Dominators.h"
#include "urcm/analysis/Liveness.h"
#include "urcm/analysis/Loops.h"
#include "urcm/analysis/MemoryLiveness.h"
#include "urcm/analysis/ReachingDefs.h"
#include "urcm/analysis/Webs.h"
#include "urcm/pass/AnalysisManager.h"

#include <memory>

namespace urcm {

/// Control-flow graph of one function.
struct CFGAnalysis {
  using Result = CFGInfo;
  static inline AnalysisKey Key{"cfg"};
  static std::unique_ptr<Result> run(AnalysisContext &Ctx) {
    return std::make_unique<CFGInfo>(Ctx.function());
  }
};

/// Dominator tree; holds a reference to the cached CFG, which the
/// dependency edge keeps alive exactly as long as this result.
struct DominatorTreeAnalysis {
  using Result = DominatorTree;
  static inline AnalysisKey Key{"domtree"};
  static std::unique_ptr<Result> run(AnalysisContext &Ctx) {
    const CFGInfo &CFG = Ctx.get<CFGAnalysis>();
    return std::make_unique<DominatorTree>(Ctx.function(), CFG);
  }
};

/// Natural loops + loop-depth reference weights.
struct LoopAnalysis {
  using Result = LoopInfo;
  static inline AnalysisKey Key{"loops"};
  static std::unique_ptr<Result> run(AnalysisContext &Ctx) {
    const CFGInfo &CFG = Ctx.get<CFGAnalysis>();
    const DominatorTree &DT = Ctx.get<DominatorTreeAnalysis>();
    return std::make_unique<LoopInfo>(Ctx.function(), CFG, DT);
  }
};

/// Per-register liveness.
struct LivenessAnalysis {
  using Result = Liveness;
  static inline AnalysisKey Key{"liveness"};
  static std::unique_ptr<Result> run(AnalysisContext &Ctx) {
    const CFGInfo &CFG = Ctx.get<CFGAnalysis>();
    return std::make_unique<Liveness>(Ctx.function(), CFG);
  }
};

/// Reaching definitions (the def-use substrate for webs).
struct ReachingDefsAnalysis {
  using Result = ReachingDefs;
  static inline AnalysisKey Key{"reaching-defs"};
  static std::unique_ptr<Result> run(AnalysisContext &Ctx) {
    const CFGInfo &CFG = Ctx.get<CFGAnalysis>();
    return std::make_unique<ReachingDefs>(Ctx.function(), CFG);
  }
};

/// Du-chain webs (paper Definition 1's register-side names).
struct WebsAnalysis {
  using Result = WebAnalysis;
  static inline AnalysisKey Key{"webs"};
  static std::unique_ptr<Result> run(AnalysisContext &Ctx) {
    const CFGInfo &CFG = Ctx.get<CFGAnalysis>();
    const ReachingDefs &RD = Ctx.get<ReachingDefsAnalysis>();
    return std::make_unique<WebAnalysis>(Ctx.function(), CFG, RD);
  }
};

/// Module-level escape facts shared by every function's alias query.
struct ModuleEscapeAnalysis {
  using Result = ModuleEscapeInfo;
  static inline AnalysisKey Key{"module-escape"};
  static std::unique_ptr<Result> run(AnalysisContext &Ctx) {
    return std::make_unique<ModuleEscapeInfo>(Ctx.module());
  }
};

/// Alias partitioning (paper Defs. 1-2: unambiguous vs ambiguous names).
struct AliasAnalysisInfo {
  using Result = AliasInfo;
  static inline AnalysisKey Key{"alias"};
  static std::unique_ptr<Result> run(AnalysisContext &Ctx) {
    const ModuleEscapeInfo &ME = Ctx.getModule<ModuleEscapeAnalysis>();
    return std::make_unique<AliasInfo>(Ctx.module(), Ctx.function(), ME);
  }
};

/// Last-reference / dead-store flags over tracked locations.
struct MemoryLivenessAnalysis {
  using Result = MemoryLiveness;
  static inline AnalysisKey Key{"memory-liveness"};
  static std::unique_ptr<Result> run(AnalysisContext &Ctx) {
    const CFGInfo &CFG = Ctx.get<CFGAnalysis>();
    const AliasInfo &AA = Ctx.get<AliasAnalysisInfo>();
    return std::make_unique<MemoryLiveness>(Ctx.module(), Ctx.function(),
                                            CFG, AA);
  }
};

/// Static call-frequency estimate over the whole module.
struct CallFrequencyAnalysis {
  using Result = CallFrequencyEstimate;
  static inline AnalysisKey Key{"call-frequency"};
  static std::unique_ptr<Result> run(AnalysisContext &Ctx) {
    return std::make_unique<CallFrequencyEstimate>(Ctx.module());
  }
};

} // namespace urcm

#endif // URCM_PASS_ANALYSES_H
