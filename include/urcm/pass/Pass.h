//===- urcm/pass/Pass.h - Pass and PassManager ------------------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transform half of the pass-manager layer. A Pass runs over the
/// module with an AnalysisManager for cached analyses and a
/// PipelineState carrying options in and statistics/artifacts out; it
/// returns the PreservedAnalyses contract the manager uses for
/// invalidation.
///
/// PassManager instrumentation replaces the driver's old hand-rolled
/// verify interleavings: with VerifyEach on, the input module is
/// verified once up front and again after every pass that did not
/// preserve all analyses — exactly the points the old if-ladder checked.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_PASS_PASS_H
#define URCM_PASS_PASS_H

#include "urcm/pass/AnalysisManager.h"

#include <memory>
#include <string>
#include <vector>

namespace urcm {

class DiagnosticEngine;
class IRModule;
struct PipelineState;

/// One pipeline step.
class Pass {
public:
  virtual ~Pass() = default;

  /// Pipeline-text name ("regalloc", "cleanup", ...).
  virtual const char *name() const = 0;
  /// Telemetry span name ("pass.regalloc", ...). String literal: spans
  /// keep the pointer.
  virtual const char *phaseName() const = 0;

  /// Runs over \p M. Reads options from and writes results into
  /// \p State; may set State.Failed to abort the pipeline.
  virtual PreservedAnalyses run(IRModule &M, AnalysisManager &AM,
                                PipelineState &State) = 0;
};

/// Runs a pass sequence with telemetry spans, verification and
/// IR-printing instrumentation, and analysis invalidation between steps.
class PassManager {
public:
  struct Instrumentation {
    /// Verify the input module, then re-verify after every pass that
    /// did not return PreservedAnalyses::all(). Requires Diags.
    bool VerifyEach = false;
    /// Print the IR to stderr after every pass.
    bool PrintAfterAll = false;
    DiagnosticEngine *Diags = nullptr;
  };

  void add(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }
  void setInstrumentation(const Instrumentation &I) { Instr = I; }

  bool empty() const { return Passes.empty(); }
  size_t size() const { return Passes.size(); }

  /// The canonical pipeline text: pass names joined with commas. Feeding
  /// this back through parsePassPipeline rebuilds the same pipeline.
  std::string str() const;

  /// Runs every pass in order. Returns false if verification failed or a
  /// pass set State.Failed; diagnostics explain why.
  bool run(IRModule &M, AnalysisManager &AM, PipelineState &State);

private:
  std::vector<std::unique_ptr<Pass>> Passes;
  Instrumentation Instr;
};

} // namespace urcm

#endif // URCM_PASS_PASS_H
