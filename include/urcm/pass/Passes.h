//===- urcm/pass/Passes.h - Concrete pipeline passes ------------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PipelineState plus factories for every registered pass. The state is
/// the one bag a pipeline reads its options from and writes its results
/// into; the driver populates it from CompileOptions and harvests it
/// into CompileResult.
///
/// PreservedAnalyses contracts (see DESIGN.md section 12):
///   verify    all        (read-only)
///   promote   none/all   (none when it promoted: CFG edges change)
///   cleanup   cfg+domtree+loops / all (rewrites insts, never edges)
///   copyprop, lvn, dce, dse — same contract as cleanup, single-shot
///   regalloc  cfg+domtree+loops      (renames registers, adds spills)
///   unified   all        (only sets MemInfo hint bits)
///   codegen   all        (reads the module, emits the program)
///
//===----------------------------------------------------------------------===//

#ifndef URCM_PASS_PASSES_H
#define URCM_PASS_PASSES_H

#include "urcm/codegen/CodeGen.h"
#include "urcm/core/UnifiedManagement.h"
#include "urcm/pass/Pass.h"
#include "urcm/regalloc/RegAlloc.h"
#include "urcm/transforms/LoopPromotion.h"
#include "urcm/transforms/Transforms.h"

#include <memory>

namespace urcm {

/// Options in, statistics and artifacts out.
struct PipelineState {
  // Inputs (populated by the driver from CompileOptions).
  TransformOptions Transforms;
  RegAllocOptions RegAlloc;
  UnifiedOptions Scheme = UnifiedOptions::unified();
  CodeGenOptions CodeGen;
  DiagnosticEngine *Diags = nullptr;

  // Outputs.
  LoopPromotionStats Promotion;
  TransformStats Cleanup;
  RegAllocStats Alloc;
  ClassificationStats Static;
  MachineProgram Program;
  bool CodeGenRan = false;

  /// Set by a pass to abort the pipeline (diagnostics explain why).
  bool Failed = false;
};

std::unique_ptr<Pass> createVerifyPass();
std::unique_ptr<Pass> createPromotePass();
std::unique_ptr<Pass> createCleanupPass();
std::unique_ptr<Pass> createCopyPropPass();
std::unique_ptr<Pass> createValueNumberingPass();
std::unique_ptr<Pass> createDCEPass();
std::unique_ptr<Pass> createDSEPass();
std::unique_ptr<Pass> createRegAllocPass();
std::unique_ptr<Pass> createUnifiedManagementPass();
std::unique_ptr<Pass> createCodeGenPass();

} // namespace urcm

#endif // URCM_PASS_PASSES_H
