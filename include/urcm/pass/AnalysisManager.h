//===- urcm/pass/AnalysisManager.h - Cached analysis results ----*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lazy, cached, invalidation-aware analysis results — the analysis half
/// of the pass-manager layer (see urcm/pass/Pass.h for the transform
/// half, and DESIGN.md section 12 for the architecture).
///
/// Each analysis registers behind a typed key (a `static inline
/// AnalysisKey` member of its wrapper in urcm/pass/Analyses.h). Results
/// are computed on first query, cached per (function, key) — or per
/// (module, key) for module-level analyses — and returned by const
/// reference on subsequent queries. Transforms report what they kept
/// intact through a `PreservedAnalyses` set; everything else is dropped.
///
/// Dependency tracking: while an analysis runs, any nested query it makes
/// through its `AnalysisContext` is recorded as a dependency edge.
/// Invalidation then propagates transitively, so a result that holds a
/// reference into another cached result (e.g. `DominatorTree` keeps a
/// `const CFGInfo &`) can never outlive what it points at. This makes
/// over-invalidation the only failure mode — and since every analysis
/// here is deterministic, over-invalidation costs time, never
/// correctness.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_PASS_ANALYSISMANAGER_H
#define URCM_PASS_ANALYSISMANAGER_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace urcm {

class IRFunction;
class IRModule;
class AnalysisManager;

/// Identity tag for one analysis type. Every analysis wrapper exposes a
/// `static inline AnalysisKey Key`; the key's address is the identity,
/// the name is for diagnostics and pipeline text.
struct AnalysisKey {
  const char *Name;
};

/// The set of analyses a transform left intact. Transforms return this
/// from run(); the manager drops everything not in the set (plus
/// anything depending on a dropped result).
class PreservedAnalyses {
public:
  /// The transform changed nothing the cache could see.
  static PreservedAnalyses all() {
    PreservedAnalyses PA;
    PA.All = true;
    return PA;
  }
  /// The transform may have changed anything: drop every cached result.
  static PreservedAnalyses none() { return PreservedAnalyses(); }

  /// Marks analysis \p A as still valid.
  template <typename A> PreservedAnalyses &preserve() {
    Kept.push_back(&A::Key);
    return *this;
  }

  bool areAllPreserved() const { return All; }
  bool isPreserved(const AnalysisKey *Key) const {
    if (All)
      return true;
    for (const AnalysisKey *K : Kept)
      if (K == Key)
        return true;
    return false;
  }

private:
  bool All = false;
  std::vector<const AnalysisKey *> Kept;
};

namespace pass_detail {

/// Telemetry taps (pass.analysis.{hits,misses,invalidations}); defined
/// in src/pass/AnalysisManager.cpp so header-only template code does not
/// need the telemetry machinery.
void countHit();
void countMiss();
void countInvalidations(uint64_t N);

struct ResultHolderBase {
  virtual ~ResultHolderBase() = default;
};

template <typename T> struct ResultHolder final : ResultHolderBase {
  explicit ResultHolder(std::unique_ptr<T> V) : Value(std::move(V)) {}
  std::unique_ptr<T> Value;
};

} // namespace pass_detail

/// Handed to an analysis' run(): scopes nested queries to the right
/// function and records them as dependency edges.
class AnalysisContext {
public:
  const IRModule &module() const { return M; }
  const IRFunction &function() const {
    assert(F && "module-level analysis asked for a function");
    return *F;
  }

  /// Nested per-function query (same function this analysis runs on).
  template <typename A> const typename A::Result &get();
  /// Nested module-level query.
  template <typename A> const typename A::Result &getModule();

private:
  friend class AnalysisManager;
  AnalysisContext(AnalysisManager &AM, const IRModule &M,
                  const IRFunction *F)
      : AM(AM), M(M), F(F) {}

  AnalysisManager &AM;
  const IRModule &M;
  const IRFunction *F;
};

/// Caches analysis results for one module and its functions.
class AnalysisManager {
public:
  explicit AnalysisManager(const IRModule &M) : M(M) {}
  AnalysisManager(const AnalysisManager &) = delete;
  AnalysisManager &operator=(const AnalysisManager &) = delete;

  /// Returns \p A's cached result for \p F, computing it on a miss. The
  /// reference stays valid until the entry is invalidated.
  template <typename A> const typename A::Result &get(const IRFunction &F) {
    return getImpl<A>(&F);
  }

  /// Module-level analyses (ModuleEscapeInfo, CallFrequencyEstimate).
  template <typename A> const typename A::Result &getModule() {
    return getImpl<A>(nullptr);
  }

  /// Drops every cached result not named in \p PA, plus — transitively —
  /// every result that depended on a dropped one.
  void invalidate(const PreservedAnalyses &PA) {
    invalidateImpl(nullptr, PA);
  }

  /// A transform mutated \p F: drops \p F's unpreserved results, every
  /// unpreserved module-level result (the module contains \p F), and all
  /// transitive dependents — including other functions' results that
  /// leaned on a dropped module-level analysis.
  void invalidate(const IRFunction &F, const PreservedAnalyses &PA) {
    invalidateImpl(&F, PA);
  }

  /// Drops everything.
  void clear() {
    Stats.Invalidations += Cache.size();
    pass_detail::countInvalidations(Cache.size());
    Cache.clear();
  }

  /// Cache-behavior counters, mirrored into telemetry as
  /// pass.analysis.{hits,misses,invalidations}.
  struct CacheStats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Invalidations = 0;
  };
  const CacheStats &stats() const { return Stats; }

  const IRModule &module() const { return M; }

private:
  friend class AnalysisContext;

  /// A cache slot: nullptr function means module-level.
  struct EntryId {
    const IRFunction *F;
    const AnalysisKey *Key;
    bool operator==(const EntryId &RHS) const {
      return F == RHS.F && Key == RHS.Key;
    }
  };
  struct EntryIdHash {
    size_t operator()(const EntryId &Id) const {
      return std::hash<const void *>()(Id.F) * 31 ^
             std::hash<const void *>()(Id.Key);
    }
  };
  struct Entry {
    std::unique_ptr<pass_detail::ResultHolderBase> Holder;
    /// Entries this result queried while being computed.
    std::vector<EntryId> Deps;
  };

  template <typename A>
  const typename A::Result &getImpl(const IRFunction *F) {
    EntryId Id{F, &A::Key};
    recordDependency(Id);
    // unordered_map references are stable across the inserts a nested
    // A::run may perform, so holding Entry& through the recursion is
    // safe.
    Entry &E = Cache[Id];
    if (!E.Holder) {
      ++Stats.Misses;
      pass_detail::countMiss();
      InFlight.push_back(Id);
      AnalysisContext Ctx(*this, M, F);
      auto Value = A::run(Ctx);
      InFlight.pop_back();
      E.Holder = std::make_unique<
          pass_detail::ResultHolder<typename A::Result>>(std::move(Value));
    } else {
      ++Stats.Hits;
      pass_detail::countHit();
    }
    return *static_cast<pass_detail::ResultHolder<typename A::Result> &>(
                *E.Holder)
                .Value;
  }

  void recordDependency(const EntryId &Id) {
    if (InFlight.empty())
      return;
    Cache[InFlight.back()].Deps.push_back(Id);
  }

  void invalidateImpl(const IRFunction *F, const PreservedAnalyses &PA);

  const IRModule &M;
  std::unordered_map<EntryId, Entry, EntryIdHash> Cache;
  std::vector<EntryId> InFlight;
  CacheStats Stats;
};

template <typename A> const typename A::Result &AnalysisContext::get() {
  assert(F && "per-function query from a module-level analysis");
  return AM.get<A>(*F);
}

template <typename A> const typename A::Result &AnalysisContext::getModule() {
  return AM.getModule<A>();
}

} // namespace urcm

#endif // URCM_PASS_ANALYSISMANAGER_H
