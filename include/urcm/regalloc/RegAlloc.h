//===- urcm/regalloc/RegAlloc.h - Register allocation -----------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register allocation over webs. Two classic policies (paper section
/// 2.1.2):
///
///  * Chaitin–Briggs graph coloring with optimistic simplification and
///    spill-everywhere spill code [ChA81] [Cha82];
///  * Freiburghouse usage counts [Fre74]: the most-referenced webs
///    (weighted 10^loop-depth) get registers, the rest live in memory.
///
/// Spill code follows the unified model (paper section 4.2): spill stores
/// are tagged RefClass::Spill (they go to cache — AmSp_STORE), reloads are
/// tagged RefClass::SpillReload (the cached copy dies once reloaded).
/// The final last-reference bit assignment is done later by the unified
/// management pass using memory liveness.
///
/// After allocation every virtual register number is < NumColors and can
/// be used directly as a machine register number by the code generator.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_REGALLOC_REGALLOC_H
#define URCM_REGALLOC_REGALLOC_H

#include "urcm/ir/IR.h"

#include <cstdint>

namespace urcm {

class AnalysisManager;

/// Which allocation algorithm to run.
enum class RegAllocPolicy { ChaitinBriggs, UsageCount };

/// Allocation knobs.
struct RegAllocOptions {
  /// Number of allocatable machine registers (colors).
  uint32_t NumColors = 24;
  RegAllocPolicy Policy = RegAllocPolicy::ChaitinBriggs;
  /// Safety valve for the build-color-spill loop.
  uint32_t MaxIterations = 16;
};

/// Per-function allocation statistics.
struct RegAllocStats {
  uint32_t NumWebs = 0;
  uint32_t NumSpilledWebs = 0;
  uint32_t NumSpillSlots = 0;
  uint32_t NumColorsUsed = 0;
  uint32_t Iterations = 0;
};

/// Allocates registers for \p F in place. Returns statistics. Asserts
/// that allocation converged (it always does: spill temps have minimal
/// live ranges, so the graph eventually colors). Liveness, reaching
/// defs, webs and loop weights come from \p AM; each mutation round
/// invalidates them while preserving block structure (CFG, dominators,
/// loops), which allocation never changes.
RegAllocStats allocateRegisters(IRModule &M, IRFunction &F,
                                const RegAllocOptions &Options,
                                AnalysisManager &AM);

/// Runs allocation over every function in \p M; returns summed stats.
RegAllocStats allocateRegisters(IRModule &M, const RegAllocOptions &Options,
                                AnalysisManager &AM);

/// Standalone forms that run over a private analysis cache.
RegAllocStats allocateRegisters(IRModule &M, IRFunction &F,
                                const RegAllocOptions &Options);
RegAllocStats allocateRegisters(IRModule &M, const RegAllocOptions &Options);

} // namespace urcm

#endif // URCM_REGALLOC_REGALLOC_H
