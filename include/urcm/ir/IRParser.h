//===- urcm/ir/IRParser.h - Textual IR parser -------------------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual IR produced by printIR back into an IRModule —
/// the inverse of the printer, enabling round-trip property tests and
/// hand-written IR test cases. The grammar is exactly the printer's
/// output format:
///
///   global @name : N words
///   func name(params=P, regs=R, returns=int|void[, paramregs=[rA rB]])
///     frame %slot : N words [(spill)]
///   .block:
///     r1 = add r0, 5
///     store r1, @g+2 !um !bypass
///     condbr r1, .then0, .else1
///
//===----------------------------------------------------------------------===//

#ifndef URCM_IR_IRPARSER_H
#define URCM_IR_IRPARSER_H

#include "urcm/ir/IR.h"
#include "urcm/support/Diagnostics.h"

#include <memory>
#include <string>

namespace urcm {

/// Parses \p Text into a module. Returns null and reports diagnostics on
/// malformed input. The result is structurally identical to the module
/// the text was printed from (printIR(parseIR(T)) == T).
std::unique_ptr<IRModule> parseIR(const std::string &Text,
                                  DiagnosticEngine &Diags);

} // namespace urcm

#endif // URCM_IR_IRPARSER_H
