//===- urcm/ir/IR.h - URCM three-address IR ---------------------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The URCM mid-level IR: a register-machine three-address code over an
/// unbounded set of virtual registers, with explicit Load/Store memory
/// instructions. This non-SSA form mirrors the compilers of the paper's
/// era: register candidates are *webs* built from D-U chains (paper
/// section 4.1.1.1), not SSA values.
///
/// Memory instructions carry a MemRefInfo annotation slot that the unified
/// register/cache management pass (src/core) fills in: the reference class
/// (ambiguous / unambiguous / spill), the cache-bypass bit and the
/// last-reference (dead) bit described in sections 3–4 of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_IR_IR_H
#define URCM_IR_IR_H

#include "urcm/support/SourceLoc.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace urcm {

class VarDecl;
class FunctionDecl;

//===----------------------------------------------------------------------===//
// Registers
//===----------------------------------------------------------------------===//

/// A virtual register number. Functions allocate these densely from 0.
using Reg = uint32_t;

/// Sentinel for "no register" (e.g. instructions with no destination).
inline constexpr Reg NoReg = ~0u;

//===----------------------------------------------------------------------===//
// Module-level objects
//===----------------------------------------------------------------------===//

/// A global variable (scalar or array) in the IR module. Globals live in
/// main memory; their addresses are link-time constants.
struct IRGlobal {
  std::string Name;
  uint32_t SizeWords = 1;
  /// Frontend origin, if lowered from MC (may be null for synthetic IR).
  const VarDecl *Origin = nullptr;
  /// Assigned by the memory layouter before simulation.
  uint32_t BaseAddress = 0;
};

/// Why a frame slot exists; spill slots are created by the register
/// allocator and, per the unified model, their stores go *to cache*.
enum class FrameSlotKind { LocalVar, Spill };

/// A stack-frame slot (local array, address-taken scalar, or spill).
struct IRFrameSlot {
  std::string Name;
  uint32_t SizeWords = 1;
  FrameSlotKind Kind = FrameSlotKind::LocalVar;
  const VarDecl *Origin = nullptr;
  /// Word offset within the frame; assigned by frame lowering.
  uint32_t Offset = 0;
};

//===----------------------------------------------------------------------===//
// Operands
//===----------------------------------------------------------------------===//

/// One instruction operand. Global/Frame operands carry a constant word
/// offset so that `a[3]` needs no explicit address arithmetic; Reg
/// operands used as addresses may also carry an offset (reg+imm
/// addressing, as on MIPS).
class Operand {
public:
  enum class Kind : uint8_t { None, Reg, Imm, Global, Frame, Block, Func };

  Operand() : TheKind(Kind::None) {}

  static Operand reg(Reg R, int32_t Offset = 0) {
    Operand Op(Kind::Reg);
    Op.RegNo = R;
    Op.Offset = Offset;
    return Op;
  }
  static Operand imm(int64_t Value) {
    Operand Op(Kind::Imm);
    Op.ImmValue = Value;
    return Op;
  }
  static Operand global(uint32_t GlobalId, int32_t Offset = 0) {
    Operand Op(Kind::Global);
    Op.Id = GlobalId;
    Op.Offset = Offset;
    return Op;
  }
  static Operand frame(uint32_t SlotId, int32_t Offset = 0) {
    Operand Op(Kind::Frame);
    Op.Id = SlotId;
    Op.Offset = Offset;
    return Op;
  }
  static Operand block(uint32_t BlockId) {
    Operand Op(Kind::Block);
    Op.Id = BlockId;
    return Op;
  }
  static Operand func(uint32_t FuncId) {
    Operand Op(Kind::Func);
    Op.Id = FuncId;
    return Op;
  }

  Kind kind() const { return TheKind; }
  bool isReg() const { return TheKind == Kind::Reg; }
  bool isImm() const { return TheKind == Kind::Imm; }
  bool isGlobal() const { return TheKind == Kind::Global; }
  bool isFrame() const { return TheKind == Kind::Frame; }
  bool isBlock() const { return TheKind == Kind::Block; }
  bool isFunc() const { return TheKind == Kind::Func; }
  bool isNone() const { return TheKind == Kind::None; }

  Reg getReg() const {
    assert(isReg() && "not a register operand");
    return RegNo;
  }
  int64_t getImm() const {
    assert(isImm() && "not an immediate operand");
    return ImmValue;
  }
  uint32_t getId() const {
    assert((isGlobal() || isFrame() || isBlock() || isFunc()) &&
           "operand has no id");
    return Id;
  }
  int32_t getOffset() const {
    assert((isReg() || isGlobal() || isFrame()) && "operand has no offset");
    return Offset;
  }

  bool operator==(const Operand &RHS) const {
    if (TheKind != RHS.TheKind)
      return false;
    switch (TheKind) {
    case Kind::None:
      return true;
    case Kind::Reg:
      return RegNo == RHS.RegNo && Offset == RHS.Offset;
    case Kind::Imm:
      return ImmValue == RHS.ImmValue;
    case Kind::Global:
    case Kind::Frame:
      return Id == RHS.Id && Offset == RHS.Offset;
    case Kind::Block:
    case Kind::Func:
      return Id == RHS.Id;
    }
    return false;
  }

private:
  explicit Operand(Kind K) : TheKind(K) {}

  Kind TheKind;
  Reg RegNo = NoReg;
  int64_t ImmValue = 0;
  uint32_t Id = 0;
  int32_t Offset = 0;
};

//===----------------------------------------------------------------------===//
// Memory reference annotations (the paper's compiler-to-hardware channel)
//===----------------------------------------------------------------------===//

/// Classification of a Load/Store computed by the unified management pass.
enum class RefClass : uint8_t {
  /// Not yet classified (conventional scheme leaves everything Unknown).
  Unknown,
  /// Possibly aliased value: must go through the cache (Am_LOAD /
  /// AmSp_STORE in the paper).
  Ambiguous,
  /// Provably unaliased value: bypasses the cache (UmAm_LOAD /
  /// UmAm_STORE).
  Unambiguous,
  /// Register spill store: goes *to cache* (AmSp_STORE), per paper
  /// section 4.2 rule [2].
  Spill,
  /// Reload of a spilled value: cached copy dies on reload (paper
  /// section 4.2 rule [3]).
  SpillReload,
};

/// Per-memory-reference annotation: the single bypass bit plus the
/// last-reference bit the paper proposes the compiler transmit to the
/// cache (sections 3.1, 3.2, 4.4).
struct MemRefInfo {
  /// Sentinel RefId: not a numbered static reference (synthetic events,
  /// references past the numbering capacity).
  static constexpr uint16_t NoRefId = 0xFFFF;

  RefClass Class = RefClass::Unknown;
  /// 1 = bypass the cache, 0 = go through the cache.
  bool Bypass = false;
  /// This is the last use of the value: the cache line (if any) holding
  /// it becomes empty and a dirty copy need not be written back.
  bool LastRef = false;
  /// Stable dense per-program id of the static memory reference this
  /// annotation belongs to, assigned by codegen over the linked
  /// instruction stream (urcm/codegen/MachineIR.h RefTable). Feeds the
  /// per-reference attribution profiler; NoRefId when unnumbered.
  uint16_t RefId = NoRefId;
  /// Alias-set id this reference belongs to, or -1. Sets index the
  /// program's abstract objects, so the count is far below the int16
  /// range; the narrow type keeps MemRefInfo at 8 bytes — it rides in
  /// every predecoded PInst, and widening it measurably slows the
  /// interpreter (more instruction-stream cache footprint).
  int16_t AliasSetId = -1;
};

static_assert(sizeof(MemRefInfo) == 8,
              "MemRefInfo rides in every predecoded PInst; growing it "
              "degrades interpreter locality (see AliasSetId comment)");

//===----------------------------------------------------------------------===//
// Instructions
//===----------------------------------------------------------------------===//

/// IR opcodes.
enum class Opcode : uint8_t {
  // Arithmetic / logic (Dst, two operands).
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  // Comparisons producing 0/1 (Dst, two operands).
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  CmpEq,
  CmpNe,
  // Unary (Dst, one operand).
  Neg,
  Not,
  // Data movement.
  Mov,   // Dst <- Op0 (Reg/Imm, or Global/Frame meaning "address of").
  Load,  // Dst <- mem[Op0] (Op0 is an address operand).
  Store, // mem[Op1] <- Op0 (Op0 value, Op1 address operand).
  // Calls and I/O.
  Call,  // Dst (optional) <- call Op0=Func, Op1.. args.
  Print, // builtin print(Op0).
  // Terminators.
  Br,     // Op0 = Block.
  CondBr, // Op0 = cond reg, Op1 = true Block, Op2 = false Block.
  Ret,    // Op0 = optional value.
};

/// Returns the mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// Returns true if \p Op ends a basic block.
bool isTerminator(Opcode Op);

/// One three-address instruction.
struct Instruction {
  Opcode Op;
  /// Destination register, or NoReg.
  Reg Dst = NoReg;
  std::vector<Operand> Ops;
  /// Valid for Load/Store only.
  MemRefInfo MemInfo;
  SourceLoc Loc;

  Instruction(Opcode Op, Reg Dst, std::vector<Operand> Ops,
              SourceLoc Loc = SourceLoc())
      : Op(Op), Dst(Dst), Ops(std::move(Ops)), Loc(Loc) {}

  bool isLoad() const { return Op == Opcode::Load; }
  bool isStore() const { return Op == Opcode::Store; }
  bool isMemAccess() const { return isLoad() || isStore(); }
  bool isCall() const { return Op == Opcode::Call; }
  bool isTerm() const { return isTerminator(Op); }

  /// The address operand of a Load/Store.
  const Operand &addressOperand() const {
    assert(isMemAccess() && "not a memory access");
    return isLoad() ? Ops[0] : Ops[1];
  }
  Operand &addressOperand() {
    assert(isMemAccess() && "not a memory access");
    return isLoad() ? Ops[0] : Ops[1];
  }

  /// Appends the registers this instruction reads to \p Uses.
  void appendUses(std::vector<Reg> &Uses) const;
  /// Returns the register this instruction defines, or NoReg.
  Reg def() const { return Dst; }
};

//===----------------------------------------------------------------------===//
// Basic blocks, functions, module
//===----------------------------------------------------------------------===//

/// A straight-line sequence of instructions ending in one terminator.
class BasicBlock {
public:
  BasicBlock(uint32_t Id, std::string Name) : Id(Id), Name(std::move(Name)) {}

  uint32_t id() const { return Id; }
  const std::string &name() const { return Name; }

  std::vector<Instruction> &insts() { return Insts; }
  const std::vector<Instruction> &insts() const { return Insts; }

  bool empty() const { return Insts.empty(); }
  Instruction &back() {
    assert(!Insts.empty() && "block is empty");
    return Insts.back();
  }
  const Instruction &back() const {
    assert(!Insts.empty() && "block is empty");
    return Insts.back();
  }

  /// True once a terminator has been appended.
  bool isTerminated() const { return !Insts.empty() && back().isTerm(); }

  /// Successor block ids, read off the terminator.
  std::vector<uint32_t> successors() const;

private:
  uint32_t Id;
  std::string Name;
  std::vector<Instruction> Insts;
};

/// An IR function: blocks, frame slots and a virtual register counter.
class IRFunction {
public:
  IRFunction(uint32_t Id, std::string Name, bool ReturnsValue,
             uint32_t NumParams)
      : Id(Id), Name(std::move(Name)), ReturnsValue(ReturnsValue),
        NumParams(NumParams) {
    ParamRegs.resize(NumParams);
    for (uint32_t P = 0; P != NumParams; ++P)
      ParamRegs[P] = P;
  }

  uint32_t id() const { return Id; }
  const std::string &name() const { return Name; }
  bool returnsValue() const { return ReturnsValue; }
  /// Parameters arrive in virtual registers 0..NumParams-1.
  uint32_t numParams() const { return NumParams; }

  /// Register that receives parameter \p P on entry. Identity until the
  /// register allocator renames webs.
  Reg paramReg(uint32_t P) const {
    assert(P < ParamRegs.size() && "param index out of range");
    return ParamRegs[P];
  }
  void setParamReg(uint32_t P, Reg R) {
    assert(P < ParamRegs.size() && "param index out of range");
    ParamRegs[P] = R;
  }

  /// Frontend origin (may be null for synthetic IR).
  const FunctionDecl *origin() const { return Origin; }
  void setOrigin(const FunctionDecl *D) { Origin = D; }

  Reg newReg() { return NextReg++; }
  uint32_t numRegs() const { return NextReg; }
  /// Only the register allocator may lower the counter (after renaming).
  void setNumRegs(uint32_t N) { NextReg = N; }

  BasicBlock *addBlock(std::string BlockName) {
    uint32_t BlockId = static_cast<uint32_t>(Blocks.size());
    Blocks.push_back(std::make_unique<BasicBlock>(BlockId,
                                                  std::move(BlockName)));
    return Blocks.back().get();
  }
  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }
  BasicBlock *block(uint32_t BlockId) const {
    assert(BlockId < Blocks.size() && "block id out of range");
    return Blocks[BlockId].get();
  }
  uint32_t numBlocks() const { return static_cast<uint32_t>(Blocks.size()); }
  BasicBlock *entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }

  uint32_t addFrameSlot(IRFrameSlot Slot) {
    FrameSlots.push_back(std::move(Slot));
    return static_cast<uint32_t>(FrameSlots.size() - 1);
  }
  std::vector<IRFrameSlot> &frameSlots() { return FrameSlots; }
  const std::vector<IRFrameSlot> &frameSlots() const { return FrameSlots; }

private:
  uint32_t Id;
  std::string Name;
  bool ReturnsValue;
  uint32_t NumParams;
  const FunctionDecl *Origin = nullptr;
  Reg NextReg = 0;
  std::vector<Reg> ParamRegs;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  std::vector<IRFrameSlot> FrameSlots;
};

/// A whole IR module.
class IRModule {
public:
  uint32_t addGlobal(IRGlobal G) {
    Globals.push_back(std::move(G));
    return static_cast<uint32_t>(Globals.size() - 1);
  }
  std::vector<IRGlobal> &globals() { return Globals; }
  const std::vector<IRGlobal> &globals() const { return Globals; }

  IRFunction *addFunction(std::string Name, bool ReturnsValue,
                          uint32_t NumParams) {
    uint32_t FuncId = static_cast<uint32_t>(Functions.size());
    Functions.push_back(std::make_unique<IRFunction>(
        FuncId, std::move(Name), ReturnsValue, NumParams));
    return Functions.back().get();
  }
  const std::vector<std::unique_ptr<IRFunction>> &functions() const {
    return Functions;
  }
  IRFunction *function(uint32_t FuncId) const {
    assert(FuncId < Functions.size() && "function id out of range");
    return Functions[FuncId].get();
  }
  IRFunction *findFunction(const std::string &Name) const {
    for (const auto &F : Functions)
      if (F->name() == Name)
        return F.get();
    return nullptr;
  }

private:
  std::vector<IRGlobal> Globals;
  std::vector<std::unique_ptr<IRFunction>> Functions;
};

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

/// Renders \p M as readable IR assembly (used by tests and examples).
std::string printIR(const IRModule &M);
/// Renders one function.
std::string printIR(const IRModule &M, const IRFunction &F);
/// Renders one instruction (no trailing newline).
std::string printInst(const IRModule &M, const IRFunction &F,
                      const Instruction &I);

} // namespace urcm

#endif // URCM_IR_IR_H
