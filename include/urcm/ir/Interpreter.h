//===- urcm/ir/Interpreter.h - Direct IR execution --------------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reference interpreter that executes URCM IR directly, with a flat
/// word-addressed memory mirroring the code generator's layout (globals
/// at GlobalBase, stack growing down from StackTop). It runs both
/// pre-allocation IR (unbounded virtual registers) and post-allocation
/// IR, which makes it the differential-testing oracle for the register
/// allocator, the code generator and the machine simulator: all three
/// must produce the same program output.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_IR_INTERPRETER_H
#define URCM_IR_INTERPRETER_H

#include "urcm/ir/IR.h"

#include <cstdint>
#include <string>
#include <vector>

namespace urcm {

/// Interpreter limits and layout.
struct InterpConfig {
  uint64_t GlobalBase = 0x1000;
  uint64_t StackTop = 0x100000;
  uint64_t MaxSteps = 2000000000ull;
};

/// Result of interpreting a module's main().
struct InterpResult {
  bool Finished = false;
  std::string Error; ///< Empty on success.
  uint64_t Steps = 0;
  std::vector<int64_t> Output;

  bool ok() const { return Finished && Error.empty(); }
};

/// Interprets \p M starting at main(). \p M must contain a zero-argument
/// main.
InterpResult interpretModule(const IRModule &M,
                             const InterpConfig &Config = InterpConfig());

} // namespace urcm

#endif // URCM_IR_INTERPRETER_H
