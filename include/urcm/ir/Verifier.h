//===- urcm/ir/Verifier.h - IR structural verifier --------------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness checks for the URCM IR. Run after IRGen,
/// after spill insertion, and after the unified-management pass in debug
/// pipelines.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_IR_VERIFIER_H
#define URCM_IR_VERIFIER_H

#include "urcm/ir/IR.h"
#include "urcm/support/Diagnostics.h"

namespace urcm {

/// Verifies \p M; reports problems to \p Diags. Returns true if clean.
///
/// Checks performed:
///  * every block ends with exactly one terminator, and terminators appear
///    only at block ends;
///  * operand counts and kinds match each opcode's shape;
///  * register numbers are below the function's register counter;
///  * block/global/frame/function operand ids are in range;
///  * every register use is dominated by some definition along every path
///    from entry (a dataflow "definitely assigned" check);
///  * Load/Store address operands are Reg, Global or Frame.
bool verifyModule(const IRModule &M, DiagnosticEngine &Diags);

/// Verifies a single function.
bool verifyFunction(const IRModule &M, const IRFunction &F,
                    DiagnosticEngine &Diags);

} // namespace urcm

#endif // URCM_IR_VERIFIER_H
