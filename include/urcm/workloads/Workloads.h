//===- urcm/workloads/Workloads.h - Paper benchmarks ------------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The six benchmarks of the paper's Figure 5 (the DARPA MIPS package /
/// Stanford suite), rewritten in MC:
///
///   Bubble  - bubble sort of 500 LCG-random elements
///   Intmm   - 40x40 integer matrix multiplication
///   Puzzle  - Forest Baskett's 3-D puzzle, size 511
///   Queen   - the 8-queens problem (all solutions)
///   Sieve   - primes in [0, 8190]
///   Towers  - towers of Hanoi, 18 disks, explicit peg arrays
///
/// Each workload is deterministic; where the correct answer is known in
/// closed form it is recorded in ExpectedOutput (empty = validated by
/// cross-scheme output equality instead).
///
//===----------------------------------------------------------------------===//

#ifndef URCM_WORKLOADS_WORKLOADS_H
#define URCM_WORKLOADS_WORKLOADS_H

#include <cstdint>
#include <string>
#include <vector>

namespace urcm {

/// One benchmark program.
struct Workload {
  std::string Name;
  std::string Description;
  std::string Source;
  /// Known-correct print output; empty when validated by cross-scheme
  /// equality only.
  std::vector<int64_t> ExpectedOutput;
};

/// The six Figure-5 benchmarks, in the paper's order.
const std::vector<Workload> &paperWorkloads();

/// Additional Stanford-suite programs beyond the paper's six (Quick,
/// Perm): used to check that the reproduction's conclusions are not an
/// artifact of the original benchmark selection.
const std::vector<Workload> &extendedWorkloads();

/// Finds a workload by name in either set; returns null if absent.
const Workload *findWorkload(const std::string &Name);

} // namespace urcm

#endif // URCM_WORKLOADS_WORKLOADS_H
