//===- urcm/core/UnifiedManagement.h - The paper's core pass ----*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unified registers/cache management pass — the paper's primary
/// contribution (section 4). Running over register-allocated IR, it:
///
///  1. classifies every Load/Store as *unambiguous*, *ambiguous* or
///     *spill* traffic using alias analysis (section 4.1);
///  2. sets the cache-bypass bit: unambiguous references bypass
///     (UmAm_LOAD / UmAm_STORE), ambiguous references and spills go
///     through the cache (Am_LOAD / AmSp_STORE) — section 4.3;
///  3. sets the last-reference (dead) bit from memory liveness so the
///     hardware can free lines and drop dead dirty copies — section 3.1.
///
/// The pass is parameterized so the benchmark harness can run the
/// conventional scheme (no hints), bypass-only, dead-tag-only, or the
/// full unified scheme.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_CORE_UNIFIEDMANAGEMENT_H
#define URCM_CORE_UNIFIEDMANAGEMENT_H

#include "urcm/ir/IR.h"

#include <string>

namespace urcm {

class AnalysisManager;

/// How aggressively unambiguous references bypass the cache.
enum class BypassPolicy {
  /// Bypass every unambiguous reference — the paper's Figure-5 claim
  /// ("70 to 80 percent ... should be bypassed the cache").
  AllUnambiguous,
  /// Section 4.2's refinement: "cache will only be used when it may
  /// improve performance". A location whose loop-weighted reuse exceeds
  /// a threshold stays cache-managed (it would hit nearly always);
  /// cold unambiguous locations bypass. This is the selective-bypass
  /// criterion of [ChD89].
  ReuseAware,
};

/// Which compiler-to-cache hints to emit.
struct UnifiedOptions {
  /// Emit the per-reference cache-bypass bit for unambiguous values.
  bool EnableBypass = true;
  /// Emit the last-reference (dead) bit.
  bool EnableDeadTag = true;
  BypassPolicy Policy = BypassPolicy::AllUnambiguous;
  /// ReuseAware: locations with loop-weighted reference weight at or
  /// above this stay cached.
  double ReuseThreshold = 10.0;

  static UnifiedOptions conventional() { return {false, false}; }
  static UnifiedOptions bypassOnly() { return {true, false}; }
  static UnifiedOptions deadTagOnly() { return {false, true}; }
  static UnifiedOptions unified() { return {true, true}; }
  static UnifiedOptions reuseAware() {
    UnifiedOptions Options = unified();
    Options.Policy = BypassPolicy::ReuseAware;
    return Options;
  }
};

/// Static classification counts over a module (paper section 5's static
/// measurement).
struct ClassificationStats {
  uint64_t UnambiguousRefs = 0;
  uint64_t AmbiguousRefs = 0;
  uint64_t SpillRefs = 0; // Spill + SpillReload.
  uint64_t BypassRefs = 0;
  uint64_t LastRefTags = 0;
  uint64_t DeadStoreTags = 0;

  uint64_t totalRefs() const {
    return UnambiguousRefs + AmbiguousRefs + SpillRefs;
  }
  /// Fraction of data references statically marked unambiguous (the
  /// paper reports 70-80%). Spills count as unambiguous names.
  double unambiguousFraction() const {
    uint64_t Total = totalRefs();
    return Total == 0
               ? 0.0
               : static_cast<double>(UnambiguousRefs + SpillRefs) / Total;
  }

  std::string str() const;
};

/// Runs the unified-management pass over \p M in place: classifies every
/// memory reference and sets the bypass / last-reference bits according
/// to \p Options. Returns the static classification statistics. Alias,
/// memory-liveness, loop and call-frequency facts come from \p AM; the
/// pass itself only writes hint bits no analysis reads, so it preserves
/// every cached result.
ClassificationStats applyUnifiedManagement(IRModule &M,
                                           const UnifiedOptions &Options,
                                           AnalysisManager &AM);

/// Standalone form over a private analysis cache.
ClassificationStats applyUnifiedManagement(IRModule &M,
                                           const UnifiedOptions &Options);

} // namespace urcm

#endif // URCM_CORE_UNIFIEDMANAGEMENT_H
