//===- urcm/sim/Predecode.h - Execution-ready machine code ------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The predecoded fast path of the functional simulator. A one-shot
/// pass over a linked MachineProgram resolves every MInst into a dense,
/// execution-ready PInst:
///
///  * immediate-vs-register ALU variants are flattened into distinct
///    predecoded opcodes (the per-instruction `UseImm ?` select
///    disappears);
///  * a missing load/store base register (mreg::None) is rewritten to a
///    constant-zero register slot appended to the register file, so the
///    effective-address path is branch-free;
///  * Ret splits into Ret / RetDead so the code-dead-hint test leaves
///    the hot return path;
///  * straight-line run lengths (computeRunLengths) let the executor
///    hoist the step-limit and PC-bounds checks out of the
///    per-instruction loop: they run once per run, not once per
///    instruction.
///
/// The executor itself lives in Simulator.cpp (threaded computed-goto
/// dispatch where the compiler supports it, a switch loop otherwise)
/// and produces bit-identical SimResults to the legacy switch
/// interpreter; tests/simulator_test.cpp and tests/fuzz_test.cpp assert
/// the equivalence differentially.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SIM_PREDECODE_H
#define URCM_SIM_PREDECODE_H

#include "urcm/codegen/MachineIR.h"

namespace urcm {

/// The predecoded opcode set: one entry per executable form. Kept as an
/// X-macro so the enum, the handler table of the threaded dispatcher
/// and the switch fallback can never drift apart.
#define URCM_PREDECODED_OPS(X)                                               \
  X(AddRR) X(AddRI) X(SubRR) X(SubRI) X(MulRR) X(MulRI) X(DivRR) X(DivRI)    \
  X(RemRR) X(RemRI) X(AndRR) X(AndRI) X(OrRR) X(OrRI) X(XorRR) X(XorRI)      \
  X(ShlRR) X(ShlRI) X(ShrRR) X(ShrRI) X(SltRR) X(SltRI) X(SleRR) X(SleRI)    \
  X(SgtRR) X(SgtRI) X(SgeRR) X(SgeRI) X(SeqRR) X(SeqRI) X(SneRR) X(SneRI)    \
  X(Neg) X(Not) X(Mov) X(Li) X(Ld) X(St)                                     \
  X(Jmp) X(Bnz) X(Call) X(Ret) X(RetDead) X(Print) X(Halt)

enum class POp : uint8_t {
#define URCM_POP_ENUM(Name) Name,
  URCM_PREDECODED_OPS(URCM_POP_ENUM)
#undef URCM_POP_ENUM
};

namespace preg {
/// The constant-zero register slot (one past the architectural file);
/// predecode rewrites absent base registers to it.
inline constexpr uint32_t Zero = mreg::NumRegs;
inline constexpr uint32_t NumSlots = mreg::NumRegs + 1;
} // namespace preg

/// One execution-ready instruction. Slot meaning per opcode family:
///  * binary RR: A=dest, B=lhs, C=rhs; binary RI: A=dest, B=lhs, Imm;
///  * Neg/Not/Mov: A=dest, B=src; Li: A=dest, Imm;
///  * Ld: A=dest, B=base (preg::Zero when absent), Imm=offset;
///  * St: B=base, C=value, Imm=offset;
///  * Bnz: B=condition, Target; Print: B=source;
///  * Jmp/Call: Target; RetDead: [Target, Target+Imm) is the dead code
///    range.
struct PInst {
  POp Op;
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  uint32_t Target = 0;
  int64_t Imm = 0;
  /// Hint bits + classification (Ld/St only).
  MemRefInfo Mem;
};

/// A MachineProgram resolved for execution: PInsts parallel to the
/// original code (index-for-index, so dynamic Ret targets resolve
/// without translation) plus the straight-line run lengths and the
/// program facts the executor needs (a PredecodedProgram can be run
/// without the MachineProgram it came from).
struct PredecodedProgram {
  std::vector<PInst> Insts;
  std::vector<uint32_t> RunLen;
  uint32_t EntryIndex = 0;
  uint64_t StackTop = 0;

  uint64_t codeSize() const { return Insts.size(); }
};

/// Builds the execution-ready form of \p Prog. Cost is linear in the
/// code size — negligible against any simulation that runs more than a
/// handful of steps.
PredecodedProgram predecode(const MachineProgram &Prog);

} // namespace urcm

#endif // URCM_SIM_PREDECODE_H
