//===- urcm/sim/Predecode.h - Execution-ready machine code ------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The predecoded fast path of the functional simulator. A one-shot
/// pass over a linked MachineProgram resolves every MInst into a dense,
/// execution-ready PInst:
///
///  * immediate-vs-register ALU variants are flattened into distinct
///    predecoded opcodes (the per-instruction `UseImm ?` select
///    disappears);
///  * a missing load/store base register (mreg::None) is rewritten to a
///    constant-zero register slot appended to the register file, so the
///    effective-address path is branch-free;
///  * Ret splits into Ret / RetDead so the code-dead-hint test leaves
///    the hot return path;
///  * straight-line run lengths (computeRunLengths) let the executor
///    hoist the step-limit and PC-bounds checks out of the
///    per-instruction loop: they run once per run, not once per
///    instruction.
///
/// The executor itself lives in Simulator.cpp (threaded computed-goto
/// dispatch where the compiler supports it, a switch loop otherwise)
/// and produces bit-identical SimResults to the legacy switch
/// interpreter; tests/simulator_test.cpp and tests/fuzz_test.cpp assert
/// the equivalence differentially.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SIM_PREDECODE_H
#define URCM_SIM_PREDECODE_H

#include "urcm/codegen/MachineIR.h"

namespace urcm {

/// The predecoded opcode set: one entry per executable form. Kept as an
/// X-macro so the enum, the handler table of the threaded dispatcher
/// and the switch fallback can never drift apart.
#define URCM_PREDECODED_OPS(X)                                               \
  X(AddRR) X(AddRI) X(SubRR) X(SubRI) X(MulRR) X(MulRI) X(DivRR) X(DivRI)    \
  X(RemRR) X(RemRI) X(AndRR) X(AndRI) X(OrRR) X(OrRI) X(XorRR) X(XorRI)      \
  X(ShlRR) X(ShlRI) X(ShrRR) X(ShrRI) X(SltRR) X(SltRI) X(SleRR) X(SleRI)    \
  X(SgtRR) X(SgtRI) X(SgeRR) X(SgeRI) X(SeqRR) X(SeqRI) X(SneRR) X(SneRI)    \
  X(Neg) X(Not) X(Mov) X(Li) X(Ld) X(St)                                     \
  X(Jmp) X(Bnz) X(Call) X(Ret) X(RetDead) X(Print) X(Halt)

/// The fused superinstruction set: the dominant adjacent pairs/triples
/// of the six paper workloads (measured dynamically), each executed by
/// one handler that retires every member with a single dispatch.
/// `X2(Name, M0, M1)` / `X3(Name, M0, M1, M2)` list the member POps, so
/// the enum, the fusion matcher in Predecode.cpp and the generated
/// handlers in Simulator.cpp are all driven by this one table. Member
/// constraints baked into the list (asserted by the matcher, relied on
/// by the executor):
///  * the head member is never a terminator, so `RunLen[head] >= size`
///    always holds and a fused group never straddles a run boundary;
///  * only the last member may be a terminator (Bnz/Jmp/Ret/Call);
///  * Div/Rem (mid-group abort with a half-retired quotient would need
///    bespoke unwind), Print, Halt and RetDead are never members.
///
/// The shipped set is curated empirically, not maximal: the matcher and
/// handler generation accept any pattern obeying the constraints above
/// (address-calc+load, load+ALU and similar pairs were prototyped by
/// extending these tables alone), but patterns that inline an extra
/// load/store body per handler grew the dispatch functions enough to
/// measurably pessimize the six-workload trace-generation path, so only
/// the groups that paid for their code size remain: compare/increment +
/// branch (dominant loop back-edges, tiny handler bodies) and the
/// all-memory runs below.
///
/// Memory-free tails: handlers are generated mechanically by composing
/// the per-member URCM_MEXEC bodies.
#define URCM_FUSED_OPS_GENERIC(X2, X3)                                       \
  X2(SltRRBnz, SltRR, Bnz) X2(SltRIBnz, SltRI, Bnz)                          \
  X2(SleRRBnz, SleRR, Bnz) X2(SleRIBnz, SleRI, Bnz)                          \
  X2(SgtRRBnz, SgtRR, Bnz) X2(SgtRIBnz, SgtRI, Bnz)                          \
  X2(SgeRRBnz, SgeRR, Bnz) X2(SgeRIBnz, SgeRI, Bnz)                          \
  X2(SeqRRBnz, SeqRR, Bnz) X2(SeqRIBnz, SeqRI, Bnz)                          \
  X2(SneRRBnz, SneRR, Bnz) X2(SneRIBnz, SneRI, Bnz)                          \
  X2(AddIBnz, AddRI, Bnz) X2(SubIBnz, SubRI, Bnz)                            \
  X2(AddIRet, AddRI, Ret)

/// Groups whose members are all memory references: their handlers are
/// hand-written in Simulator.cpp around the batched RefRecorder group
/// counts (one trace-buffer capacity check and one combined counter
/// update per group instead of one per member) — the per-event
/// bookkeeping amortization that only a superinstruction, knowing the
/// whole group statically, can perform.
#define URCM_FUSED_OPS_MEM(X2, X3)                                           \
  X2(LdLd, Ld, Ld) X2(LdSt, Ld, St) X2(StLd, St, Ld) X2(StSt, St, St)        \
  X3(LdLdLd, Ld, Ld, Ld) X3(StStSt, St, St, St)

#define URCM_FUSED_OPS(X2, X3)                                               \
  URCM_FUSED_OPS_GENERIC(X2, X3) URCM_FUSED_OPS_MEM(X2, X3)

enum class POp : uint8_t {
#define URCM_POP_ENUM(Name) Name,
  URCM_PREDECODED_OPS(URCM_POP_ENUM)
#undef URCM_POP_ENUM
#define URCM_POP_FUSED2(Name, M0, M1) Fuse##Name,
#define URCM_POP_FUSED3(Name, M0, M1, M2) Fuse##Name,
  URCM_FUSED_OPS(URCM_POP_FUSED2, URCM_POP_FUSED3)
#undef URCM_POP_FUSED2
#undef URCM_POP_FUSED3
};

namespace preg {
/// The constant-zero register slot (one past the architectural file);
/// predecode rewrites absent base registers to it.
inline constexpr uint32_t Zero = mreg::NumRegs;
inline constexpr uint32_t NumSlots = mreg::NumRegs + 1;
} // namespace preg

/// One execution-ready instruction. Slot meaning per opcode family:
///  * binary RR: A=dest, B=lhs, C=rhs; binary RI: A=dest, B=lhs, Imm;
///  * Neg/Not/Mov: A=dest, B=src; Li: A=dest, Imm;
///  * Ld: A=dest, B=base (preg::Zero when absent), Imm=offset;
///  * St: B=base, C=value, Imm=offset;
///  * Bnz: B=condition, Target; Print: B=source;
///  * Jmp/Call: Target; RetDead: [Target, Target+Imm) is the dead code
///    range.
struct PInst {
  POp Op;
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  uint32_t Target = 0;
  int64_t Imm = 0;
  /// Hint bits + classification (Ld/St only).
  MemRefInfo Mem;
};

/// A MachineProgram resolved for execution: PInsts parallel to the
/// original code (index-for-index, so dynamic Ret targets resolve
/// without translation) plus the straight-line run lengths and the
/// program facts the executor needs (a PredecodedProgram can be run
/// without the MachineProgram it came from).
struct PredecodedProgram {
  std::vector<PInst> Insts;
  std::vector<uint32_t> RunLen;
  uint32_t EntryIndex = 0;
  uint64_t StackTop = 0;

  /// The pre-fusion instruction stream, index-parallel to Insts and
  /// differing only in rewritten head Op bytes; empty until
  /// fusePredecoded rewrites at least one head. The executor switches a
  /// step-limit-truncated run to this array (one base-pointer swap), so
  /// a fused group can never retire past MaxSteps.
  std::vector<PInst> Unfused;

  bool fused() const { return !Unfused.empty(); }
  uint64_t codeSize() const { return Insts.size(); }
};

/// Builds the execution-ready form of \p Prog. Cost is linear in the
/// code size — negligible against any simulation that runs more than a
/// handful of steps.
PredecodedProgram predecode(const MachineProgram &Prog);

/// Static outcome of the fusion peephole (also mirrored into the
/// sim.fuse.{candidates,fused} telemetry counters).
struct FusionStats {
  uint32_t Candidates = 0; ///< adjacent windows whose opcodes matched
  uint32_t Fused = 0;      ///< heads rewritten to a superinstruction
};

/// Superinstruction fusion: rewrites the Op byte of every eligible
/// pattern head in \p PP.Insts to the fused opcode (tails keep their
/// full original PInst, so fused handlers read member operands in
/// place and any control transfer landing mid-group executes the tail
/// unfused — overlapping matches are therefore safe and taken).
/// Trace-transparent by construction: fused handlers replay the exact
/// member semantics, so TraceEvent streams, SimResults and
/// traceContentHash are unchanged. No-op (returns zero stats) when the
/// program is already fused or when URCM_NO_FUSE is set to anything
/// but "0" in the environment — the global escape hatch that works on
/// any binary; SimConfig::Fusion is the per-run one.
FusionStats fusePredecoded(PredecodedProgram &PP);

} // namespace urcm

#endif // URCM_SIM_PREDECODE_H
