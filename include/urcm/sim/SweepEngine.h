//===- urcm/sim/SweepEngine.h - Compile-once/replay-many sweeps -*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sweep engine that powers the paper-reproduction experiment grids
/// (cache-size sweep E10, replacement policies E8, line-size sweep E9,
/// the urcm_report tool). A sweep evaluates one workload at many cache
/// geometries/policies; the recorded data-reference trace of a program
/// is independent of cache geometry (the cache is an observer — control
/// flow never consults it), so the engine runs the expensive functional
/// Simulator exactly once per compiled program and serves every sweep
/// point from cheap stats-only replay. Three layers:
///
///  1. compile-once/replay-many: SweepEngine memoizes one traced base
///     run per experiment key and frees each trace as soon as its sweep
///     points are served (traces run to hundreds of MB);
///  2. single-pass multi-configuration replay: replayTraceMulti walks
///     the trace once and advances every requested configuration in
///     lock-step; sweepLRUStackDistance is a Mattson-style stack-
///     distance pass that produces exact LRU counters for *every*
///     fully-associative size in one walk, extended with hole-based
///     bookkeeping so the paper's bypass and last-reference (dead-tag)
///     hints remain exact (a freed line leaves a "hole" at its stack
///     depth, which encodes precisely the set of capacities that
///     gained a free slot);
///  3. a thread pool (urcm/support/ThreadPool.h) runs independent
///     experiments concurrently.
///
/// Replay counters are bit-identical to the live DataCache's (asserted
/// by tests/sweepengine_test.cpp), so exhibits that moved from
/// re-simulation to replay print unchanged numbers.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SIM_SWEEPENGINE_H
#define URCM_SIM_SWEEPENGINE_H

#include "urcm/sim/RefAttribution.h"
#include "urcm/sim/TraceSim.h"
#include "urcm/support/ThreadPool.h"

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace urcm {

class DiagnosticEngine;

/// One sweep point: a cache geometry plus the replacement policy to
/// replay it under — any CachePolicy, including the replay-only MIN
/// and LivenessBypass (urcm/sim/CachePolicy.h).
///
/// IgnoreHints replays the point with every bypass/last-reference hint
/// bit cleared — the conventional scheme's view of the same reference
/// stream. The unified-management pass only flips hint bits on an
/// otherwise identical instruction stream (see fig5_traffic_reduction),
/// so a hint-stripped replay of a unified-scheme trace equals a run of
/// the conventionally-compiled program: one traced simulation serves
/// both schemes.
struct SweepPoint {
  CacheConfig Config;
  CachePolicy Policy = CachePolicy::LRU;
  bool IgnoreHints = false;
  /// Non-zero requests per-static-reference attribution
  /// (urcm/sim/RefAttribution.h) for this point; the value is the
  /// program's static reference count (MachineProgram::RefTable.size()),
  /// which sizes the table. Attribution pins the point to the
  /// per-event replay kernels — the stack-distance fast path answers
  /// many capacities from shared positional state and cannot attribute
  /// — and disables the engine's base-counter reuse, so it costs replay
  /// time; zero (the default) keeps every fast path.
  uint32_t AttributionRefs = 0;

  bool wantsAttribution() const { return AttributionRefs != 0; }
};

/// Walks \p Trace once and replays every point in lock-step. Counters
/// are identical to calling replayTrace per point (each point's state is
/// independent); the single pass touches the big trace once instead of
/// Points.size() times. MIN points sharing a line size share one
/// next-use precomputation.
std::vector<CacheStats>
replayTraceMulti(const std::vector<TraceEvent> &Trace,
                 const std::vector<SweepPoint> &Points);

/// True if \p Point can be served by the stack-distance fast path:
/// fully-associative LRU, write-back, one-word lines (the paper's
/// preferred line size).
bool stackDistanceEligible(const SweepPoint &Point);

/// Exact one-pass Mattson sweep: returns, for each entry of
/// \p NumLines, the counters of a fully-associative LRU write-back
/// cache with that many one-word lines — byte-identical to
/// replayTrace on the same geometry. Bypass and last-reference hints
/// are honoured exactly via hole-based stack bookkeeping; with
/// \p IgnoreHints they are stripped instead (every event is a plain
/// through-cache access).
std::vector<CacheStats>
sweepLRUStackDistance(const std::vector<TraceEvent> &Trace,
                      const std::vector<uint32_t> &NumLines,
                      bool IgnoreHints = false);

/// Replays \p Points from \p Trace, dispatching to the stack-distance
/// fast path when every point is eligible and to the lock-step
/// multi-replay otherwise. Results are identical either way.
std::vector<CacheStats>
replaySweepPoints(const std::vector<TraceEvent> &Trace,
                  const std::vector<SweepPoint> &Points);

/// Chunk-driven replay of a set of sweep points: the streaming form of
/// replaySweepPoints, advanced one trace chunk at a time so replay can
/// start before generation finishes (see urcm/sim/TraceStream.h).
/// Feeding the whole trace as one chunk is exactly the batch call — the
/// batch entry points are wrappers over this class, so the two modes
/// cannot diverge. Internally dispatches to the same kernels: the
/// hole-extended Mattson stack-distance sweep when every point is
/// eligible (unless \p AllowStackFastPath is false, which pins the
/// lock-step kernels — that is replayTraceMulti's contract), else the
/// specialized two-way-LRU kernel plus the generic lock-step replayer.
class SweepPointStream {
public:
  /// True when every point replays in one forward pass. Belady MIN
  /// points do not: their next-use precomputation reads the whole trace
  /// backwards, so they require batch mode (\p FullTrace).
  static bool streamable(const std::vector<SweepPoint> &Points);

  /// \p FullTrace must be non-null when any point uses TracePolicy::MIN
  /// and is ignored otherwise.
  explicit SweepPointStream(std::vector<SweepPoint> Points,
                            const std::vector<TraceEvent> *FullTrace =
                                nullptr,
                            bool AllowStackFastPath = true);
  SweepPointStream(const SweepPointStream &) = delete;
  SweepPointStream &operator=(const SweepPointStream &) = delete;
  ~SweepPointStream();

  /// Pre-sizes internal structures for an expected total event count (a
  /// pure allocation hint the batch wrappers use; streaming callers,
  /// who do not know the trace length, simply grow on demand).
  void reserve(uint64_t ExpectedEvents);

  /// Advances every point over the next \p Count trace events.
  void feed(const TraceEvent *Events, size_t Count);

  /// End of trace: final flush accounting. Call exactly once; counters
  /// are returned in the order of the constructor's Points.
  std::vector<CacheStats> finish();

  /// Moves out the attribution table of the point at \p PointIndex
  /// (empty unless that point set SweepPoint::AttributionRefs). Call
  /// after finish(), at most once per point.
  RefAttribution takeAttribution(size_t PointIndex);

private:
  struct Impl;
  std::unique_ptr<Impl> P;
};

/// Memoizing, parallel front-end: each *experiment* is one traced
/// functional run (the producer closure compiles and simulates — the
/// engine itself is compiler-agnostic) plus the sweep points replayed
/// from its trace. Experiments are keyed by caller-chosen strings
/// (callers key on config *contents*); scheduling the same key twice is
/// idempotent. run() executes pending experiments across the thread
/// pool and frees each trace once its points are served.
class SweepEngine {
public:
  /// Runs the functional simulator for this experiment's program under
  /// \p Config (the engine sets RecordTrace and the trace reserve hint
  /// before calling). Must be thread-safe across distinct experiments.
  using Producer = std::function<SimResult(const SimConfig &)>;

  /// \p Pool null uses ThreadPool::global().
  explicit SweepEngine(ThreadPool *Pool = nullptr)
      : Pool(Pool ? Pool : &ThreadPool::global()) {}

  /// The process-wide engine over the global pool.
  static SweepEngine &global();

  /// Schedules one experiment. \p HintGroup names a family of runs with
  /// similar trace lengths (e.g. the workload name): the first run in a
  /// group sizes later runs' trace reservations. Re-scheduling an
  /// existing \p Key is a no-op (the points must match).
  ///
  /// \p ContentHash is the experiment's traceContentHash
  /// (urcm/sim/TraceStore.h) — the fingerprint of the compiled program
  /// plus simulation inputs that keys its trace in the persistent
  /// store. Zero (the default) opts this experiment out of the store
  /// even when a store directory is configured (callers that cannot
  /// hash — e.g. the producer compiles lazily — simply never touch it).
  void schedule(const std::string &Key, const std::string &HintGroup,
                const SimConfig &Base, std::vector<SweepPoint> Points,
                Producer Run, uint64_t ContentHash = 0);

  /// Runs every pending experiment (parallel across experiments) and
  /// returns when all are done. Base runs that fail (as reported by
  /// SimResult::ok) are kept with their error; point stats for a failed
  /// base are empty.
  void run();

  /// Intra-experiment sharding for trace replay (urcm/sim/
  /// ShardedReplay.h): 1 — the default — replays each experiment
  /// sequentially (the differential oracle the sharded path is tested
  /// against); 0 means "auto" (the pool width, so a lone experiment
  /// still saturates the machine); N > 1 shards each experiment's
  /// replay N ways. Counters are bit-identical in every mode. Set
  /// before run(); shard units fan out through nested parallelFor, so
  /// shards and experiments share the same pool.
  void setShards(uint32_t Request) { Shards = Request; }
  uint32_t shards() const { return Shards; }

  /// Enables the persistent trace store (urcm/sim/TraceStore.h) under
  /// \p Dir — empty disables (the default). With a store configured,
  /// every experiment scheduled with a non-zero content hash first
  /// consults `<Dir>/<hash>.urctrc`: on a hit the whole experiment is
  /// served by decoding the stored trace into the replay pipeline (the
  /// Simulator is never invoked — the base result comes from the stored
  /// summary); on a miss the live run tees its trace into the store for
  /// the next process. Store problems (unwritable dir, corrupt or stale
  /// files) are reported to \p Diags (when non-null; rejected files
  /// surface as errors, see TraceStoreReader) and the experiment falls
  /// back to live simulation — the store can slow an experiment down,
  /// never fail it. Set before run(); \p Diags must outlive run().
  void setTraceStore(std::string Dir, DiagnosticEngine *Diags = nullptr) {
    StoreDir = std::move(Dir);
    StoreDiags = Diags;
  }
  const std::string &traceStoreDir() const { return StoreDir; }

  bool done(const std::string &Key) const;

  /// The base functional run (trace dropped). Valid after run().
  const SimResult &base(const std::string &Key) const;

  /// The replayed counters of point \p Index. When a point's geometry
  /// and policy equal the base run's cache configuration, the base
  /// run's own counters are returned (replay is bit-identical, so this
  /// is pure reuse). Valid after run().
  const CacheStats &point(const std::string &Key, size_t Index) const;

  /// The per-reference attribution of point \p Index, which must have
  /// been scheduled with SweepPoint::AttributionRefs non-zero.
  /// Bit-identical across shard counts and store modes (the attribution
  /// counterpart of the CacheStats merge invariant). Valid after run().
  const RefAttribution &attribution(const std::string &Key,
                                    size_t Index) const;

private:
  struct Experiment {
    std::string HintGroup;
    SimConfig Base;
    std::vector<SweepPoint> Points;
    Producer Run;
    uint64_t ContentHash = 0;
    SimResult Result;
    std::vector<CacheStats> Stats;
    /// Parallel to Points; non-empty rows only where AttributionRefs.
    std::vector<RefAttribution> Attrib;
    bool Done = false;
  };

  const Experiment &finished(const std::string &Key) const;

  /// Serves \p E entirely from the trace store. True on success; false
  /// (missing/rejected file, decode failure) means run the live path.
  /// \p ReplayedAttrib receives attribution tables parallel to \p Rest
  /// (empty rows for points that did not request attribution).
  bool serveFromStore(Experiment &E, const std::vector<SweepPoint> &Rest,
                      uint32_t EffShards, uint64_t &TraceEvents,
                      std::vector<CacheStats> &Replayed,
                      std::vector<RefAttribution> &ReplayedAttrib);

  /// Forwards diagnostics collected during store I/O to the configured
  /// sink under the engine lock (experiments run in parallel).
  void forwardStoreDiags(const DiagnosticEngine &Local);

  ThreadPool *Pool;
  uint32_t Shards = 1;
  std::string StoreDir;
  DiagnosticEngine *StoreDiags = nullptr;
  mutable std::mutex M;
  std::map<std::string, Experiment> Experiments;
  /// Largest trace length seen per hint group (reserve hint source).
  std::map<std::string, uint64_t> Hints;
};

} // namespace urcm

#endif // URCM_SIM_SWEEPENGINE_H
