//===- urcm/sim/ShardedReplay.h - Set-sharded parallel replay ---*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Intra-trace parallel cache replay. The sweep engine's sequential
/// kernels (urcm/sim/SweepEngine.h) parallelize only *across*
/// experiments, so a lone experiment is core-count-blind. This engine
/// splits one trace into independent work units and runs them on the
/// ThreadPool:
///
///  * **Set shards.** Set-associative state is strictly per-set: an
///    access to set s reads and writes set s alone (lookup, victim
///    choice, recency ticks). Partitioning the trace by set index
///    therefore yields subsequences whose replays never interact, and
///    every CacheStats counter is additive over that partition — the
///    merged totals equal the sequential replay bit for bit (the merge
///    invariant, asserted by tests/shardedreplay_test.cpp). A shard
///    owns the sets of one residue class mod N. The demultiplexed
///    partition depends only on the (line-words, set-count) geometry,
///    so it is computed once per geometry and reused by every
///    configuration sharing it — associativity, write policy and hint
///    view do not change which set an address maps to.
///
///  * **Capacity shards.** The fully-associative stack-distance sweep
///    has one set and cannot set-shard; its per-capacity results are
///    independent instead, so the size list splits across units, each
///    walking the full trace.
///
///  * **Sequential leftovers.** Random replacement consumes one global
///    RNG sequence ordered by the full-trace interleaving of misses,
///    and Belady MIN indexes next-use knowledge by global trace
///    position; neither survives subsequencing, so such points replay
///    sequentially as one more unit on the pool.
///
/// Feeding is demultiplex-only (cheap, overlaps trace generation when
/// driven by the streaming pipeline); all replay happens in finish(),
/// fanned out with ThreadPool::parallelFor. Each unit's counters live
/// in a cache-line-padded slot, so concurrent units never share a
/// line. Telemetry: sim.shard.* (shards, units, imbalance, demux-ns,
/// replay-ns).
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SIM_SHARDEDREPLAY_H
#define URCM_SIM_SHARDEDREPLAY_H

#include "urcm/sim/SweepEngine.h"
#include "urcm/support/ThreadPool.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace urcm {

/// Resolves a shard-count request: 0 ("auto") becomes the pool's worker
/// count plus one (the parallelFor caller works too), anything else is
/// taken as given. Always >= 1.
uint32_t resolveShardCount(uint32_t Requested, const ThreadPool &Pool);

/// The sharded counterpart of SweepPointStream: feed() demultiplexes
/// trace chunks into per-shard buffers (one partition per distinct
/// (line-words, set-count) geometry among the points), finish() replays
/// all shards in parallel on the pool and merges per-shard counters
/// into exact sequential totals. Results are bit-identical to
/// SweepPointStream over the same events, in the same point order.
///
/// MIN points require the materialized trace (\p FullTrace non-null,
/// fed exactly once as one chunk — the batch wrapper's calling
/// convention); without it the stream is streaming-safe for the same
/// point set SweepPointStream::streamable accepts. Points that cannot
/// shard replay sequentially inside finish() as one unit, so any point
/// set is accepted.
class ShardedSweepStream {
public:
  /// \p Shards is a resolved count (>= 1); \p Pool null uses the global
  /// pool. \p FullTrace, when non-null, is the complete trace the
  /// caller will feed (enables MIN and skips the internal raw copy).
  ShardedSweepStream(std::vector<SweepPoint> Points, uint32_t Shards,
                     ThreadPool *Pool = nullptr,
                     const std::vector<TraceEvent> *FullTrace = nullptr);
  ShardedSweepStream(const ShardedSweepStream &) = delete;
  ShardedSweepStream &operator=(const ShardedSweepStream &) = delete;
  ~ShardedSweepStream();

  /// Pre-sizes the per-shard buffers for an expected total event count
  /// (a pure allocation hint).
  void reserve(uint64_t ExpectedEvents);

  /// Demultiplexes the next \p Count trace events into the per-shard
  /// partitions. No replay work happens here.
  void feed(const TraceEvent *Events, size_t Count);

  /// Replays every shard on the pool, merges, and returns counters in
  /// the order of the constructor's Points. Call exactly once.
  std::vector<CacheStats> finish();

  /// Moves out the merged attribution table of point \p PointIndex
  /// (per-shard tables summed with RefAttribution::operator+=, which
  /// reproduces the sequential run bit for bit). Only meaningful after
  /// finish(), for points with SweepPoint::AttributionRefs set; other
  /// points yield an empty table.
  RefAttribution takeAttribution(size_t PointIndex);

private:
  struct Impl;
  std::unique_ptr<Impl> P;
};

/// Batch form: replays \p Points from \p Trace with \p Shards-way
/// sharding (resolved; pass resolveShardCount's result or an explicit
/// count). Bit-identical to replaySweepPoints.
std::vector<CacheStats>
replaySweepPointsSharded(const std::vector<TraceEvent> &Trace,
                         const std::vector<SweepPoint> &Points,
                         uint32_t Shards, ThreadPool *Pool = nullptr);

} // namespace urcm

#endif // URCM_SIM_SHARDEDREPLAY_H
