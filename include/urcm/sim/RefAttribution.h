//===- urcm/sim/RefAttribution.h - Per-reference attribution ----*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-static-reference cache attribution: a table of counters indexed
/// by RefId (urcm/codegen/MachineIR.h RefTable) that ties every hit,
/// miss, bypass and suppressed dead write-back back to the Ld/St that
/// caused it. The live caches (urcm/sim/Cache.h) and every replay
/// kernel accumulate into one of these when attribution is requested;
/// like CacheStats, every counter is additive over a set partition of
/// the trace, so per-shard tables merge with operator+= into totals
/// bit-identical to a sequential replay (the same merge invariant
/// tests/shardedreplay_test.cpp asserts for CacheStats).
///
/// Accounting rules (mirrored by every accumulator — the bit-identity
/// tests compare all of them):
///  * Hits / Misses: through-cache accesses only, at the same decision
///    points that bump ReadHits/WriteHits vs the miss paths (a
///    write-through store miss is a miss; bypassed accesses are
///    neither).
///  * Bypasses: one count per access with an effective bypass hint
///    (covers BypassReads, BypassWrites and BypassHitMigrations).
///  * DeadWriteBacksSuppressed: the accessor whose last-ref tag freed a
///    dirty line without write-back (CacheStats'
///    DeadWriteBacksAvoided, attributed to the tagged reference).
///  * EvictionsCaused: charged to the access that forced a victim out
///    (capacity/conflict evictions and dirty bypass-hit migrations);
///    final flushes charge nobody.
///  * EvictionsSuffered: charged to the reference that *installed* the
///    victim line (each line remembers its installer).
///
/// The overflow row: events whose RefId is MemRefInfo::NoRefId (or past
/// the table) land in row NumRefs, so synthetic traces and saturated
/// numbering stay accounted without branching on the hot path.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SIM_REFATTRIBUTION_H
#define URCM_SIM_REFATTRIBUTION_H

#include <algorithm>
#include <cstdint>
#include <vector>

namespace urcm {

/// Counters for one static memory reference.
struct RefCounters {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Bypasses = 0;
  uint64_t DeadWriteBacksSuppressed = 0;
  uint64_t EvictionsCaused = 0;
  uint64_t EvictionsSuffered = 0;

  RefCounters &operator+=(const RefCounters &O) {
    Hits += O.Hits;
    Misses += O.Misses;
    Bypasses += O.Bypasses;
    DeadWriteBacksSuppressed += O.DeadWriteBacksSuppressed;
    EvictionsCaused += O.EvictionsCaused;
    EvictionsSuffered += O.EvictionsSuffered;
    return *this;
  }
  bool operator==(const RefCounters &O) const {
    return Hits == O.Hits && Misses == O.Misses &&
           Bypasses == O.Bypasses &&
           DeadWriteBacksSuppressed == O.DeadWriteBacksSuppressed &&
           EvictionsCaused == O.EvictionsCaused &&
           EvictionsSuffered == O.EvictionsSuffered;
  }
  bool operator!=(const RefCounters &O) const { return !(*this == O); }

  uint64_t accesses() const { return Hits + Misses + Bypasses; }
};

/// The attribution table: NumRefs real rows plus one overflow row for
/// unnumbered events. row() is branch-free (a min against the overflow
/// index maps both NoRefId and out-of-range ids there).
class RefAttribution {
public:
  RefAttribution() = default;
  explicit RefAttribution(uint32_t NumRefs)
      : NumRefs(NumRefs), Rows(static_cast<size_t>(NumRefs) + 1) {}

  uint32_t numRefs() const { return NumRefs; }

  RefCounters &row(uint32_t RefId) {
    return Rows[std::min(RefId, NumRefs)];
  }
  const RefCounters &row(uint32_t RefId) const {
    return Rows[std::min(RefId, NumRefs)];
  }
  const RefCounters &overflow() const { return Rows[NumRefs]; }

  RefAttribution &operator+=(const RefAttribution &O) {
    if (Rows.size() < O.Rows.size()) {
      Rows.resize(O.Rows.size());
      NumRefs = O.NumRefs;
    }
    for (size_t I = 0; I != O.Rows.size(); ++I)
      Rows[I] += O.Rows[I];
    return *this;
  }
  bool operator==(const RefAttribution &O) const {
    return NumRefs == O.NumRefs && Rows == O.Rows;
  }
  bool operator!=(const RefAttribution &O) const { return !(*this == O); }

private:
  uint32_t NumRefs = 0;
  std::vector<RefCounters> Rows = {RefCounters()}; ///< Overflow row only.
};

} // namespace urcm

#endif // URCM_SIM_REFATTRIBUTION_H
