//===- urcm/sim/CachePolicy.h - Unified replacement-policy layer -*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single replacement-policy vocabulary shared by every cache model
/// in the tree: the live DataCache, the specialized two-way fast caches,
/// the policy-generic replay kernel (urcm/sim/CacheModel.h) and the
/// sweep engine's sharded/stack-distance streams. Historically the live
/// cache had its own three-policy `ReplacementPolicy` and the replayer a
/// four-policy `TracePolicy` with a lossy translation between them; both
/// are now aliases of `CachePolicy` below and the translation is gone.
///
/// The policy families (paper section 3.2 argues dead-line freeing is
/// compatible with any of them):
///
///  * LRU / FIFO / Random — the classical set-local policies.
///  * MIN — Belady's optimal replacement [Bel66]; needs future
///    knowledge, so it exists only in trace replay.
///  * TreePLRU — tree pseudo-LRU over power-of-two associativity, the
///    hardware-practical LRU approximation (one bit per tree node).
///  * SRRIP — static re-reference interval prediction with 2-bit RRPV
///    counters (insert at distant-2, promote to 0 on hit, age until a
///    way reaches 3) — the RRIP baseline a credible bypass evaluation
///    needs (Faldu, PAPERS.md).
///  * LivenessBypass — LRU plus a per-RefId dead-on-arrival predictor
///    that learns, from evictions without reuse, which references
///    should not allocate at all (a Leeway-style software analogue of
///    the paper's compiler bypass hints). Learning is a global table
///    over the trace, so it is replay-only and not set-shardable.
///
/// This header is dependency-free (cstdint only) so the low-level cache
/// headers can include it without cycles; the policy-generic replay
/// kernel lives in urcm/sim/CacheModel.h.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SIM_CACHEPOLICY_H
#define URCM_SIM_CACHEPOLICY_H

#include <cstdint>

namespace urcm {

/// Every replacement policy in the tree. The numeric values are part of
/// the persistent trace-store hash vocabulary for the *I-cache* config
/// (the data-cache hash deliberately excludes the policy — see
/// urcm/sim/TraceStore.h), so existing entries keep their values.
enum class CachePolicy : uint8_t {
  LRU = 0,
  FIFO = 1,
  Random = 2,
  MIN = 3,
  TreePLRU = 4,
  SRRIP = 5,
  LivenessBypass = 6,
};

/// Stable display name ("LRU", "TreePLRU", ...).
const char *cachePolicyName(CachePolicy Policy);

/// Parses a command-line spelling (lru|fifo|random|min|plru|srrip|
/// bypass, case-insensitive, plus the full names). Returns false and
/// leaves \p Out untouched if \p Spelling matches nothing.
bool parseCachePolicy(const char *Spelling, CachePolicy &Out);

/// True if a live (forward-executing) cache can implement \p Policy:
/// MIN needs future knowledge and LivenessBypass trains on a whole
/// recorded trace, so both are replay-only.
constexpr bool cachePolicyLiveEligible(CachePolicy Policy) {
  return Policy != CachePolicy::MIN && Policy != CachePolicy::LivenessBypass;
}

/// True if \p Policy keeps strictly per-set replacement state, which is
/// what lets set-sharded replay partition the sets and sum the counters
/// (urcm/sim/ShardedReplay.h). Random shares one RNG sequence across
/// sets, MIN indexes the global trace, and LivenessBypass trains one
/// global predictor table — none of them shard.
constexpr bool cachePolicySetShardEligible(CachePolicy Policy) {
  return Policy == CachePolicy::LRU || Policy == CachePolicy::FIFO ||
         Policy == CachePolicy::TreePLRU || Policy == CachePolicy::SRRIP;
}

/// SRRIP's re-reference prediction values (2-bit counters).
enum : uint8_t {
  SRRIPInsertRRPV = 2, ///< Long re-reference interval on install.
  SRRIPMaxRRPV = 3,    ///< Distant: the eviction candidate value.
};

namespace detail {

/// Shared victim-selection mechanisms. Each helper returns a way index
/// in [0, Assoc) and is used verbatim by both the live DataCache and
/// the replay kernel so the two can never drift. All helpers assume
/// every way of the set is valid (callers prefer an invalid way first;
/// the choice among invalid ways has no observable effect).

/// Least-recently-used: the first way with minimal LastUsed.
template <typename LineT>
inline uint32_t lruVictimWay(const LineT *Base, uint32_t Assoc) {
  uint32_t Victim = 0;
  for (uint32_t Way = 1; Way != Assoc; ++Way)
    if (Base[Way].LastUsed < Base[Victim].LastUsed)
      Victim = Way;
  return Victim;
}

/// FIFO: the first way with minimal InsertedAt.
template <typename LineT>
inline uint32_t fifoVictimWay(const LineT *Base, uint32_t Assoc) {
  uint32_t Victim = 0;
  for (uint32_t Way = 1; Way != Assoc; ++Way)
    if (Base[Way].InsertedAt < Base[Victim].InsertedAt)
      Victim = Way;
  return Victim;
}

/// SRRIP: the first way whose RRPV has reached the distant value; if
/// none, age every way by one and rescan. Ages in place. Terminates in
/// at most SRRIPMaxRRPV rounds (each round either finds a victim or
/// raises the set maximum by one), and no RRPV ever exceeds
/// SRRIPMaxRRPV: aging only runs while the set maximum is below it.
template <typename LineT>
inline uint32_t srripVictimWay(LineT *Base, uint32_t Assoc) {
  for (;;) {
    for (uint32_t Way = 0; Way != Assoc; ++Way)
      if (Base[Way].RRPV >= SRRIPMaxRRPV)
        return Way;
    for (uint32_t Way = 0; Way != Assoc; ++Way)
      ++Base[Way].RRPV;
  }
}

/// Tree pseudo-LRU state is one uint64 per set holding the node bits of
/// a complete binary tree over Assoc = 2^k ways (Assoc <= 64): node i
/// (1-based heap order, children 2i and 2i+1) owns bit i, and the bit's
/// value names the child subtree holding the next victim (0 = left,
/// 1 = right). An access rewrites the bits on its root-to-leaf path to
/// point *away* from the touched way, so the victim walk can never end
/// at the most recently touched way (the tree invariant the property
/// tests pin).

/// Follows the victim pointers from the root; \p Assoc must be a power
/// of two >= 2.
inline uint32_t treePLRUVictimWay(uint64_t Bits, uint32_t Assoc) {
  uint32_t Node = 1;
  while (Node < Assoc)
    Node = 2 * Node + ((Bits >> Node) & 1);
  return Node - Assoc;
}

/// Returns \p Bits with \p Way's path rewritten to point away from it
/// (the touched way becomes the hardest to evict).
inline uint64_t treePLRUTouch(uint64_t Bits, uint32_t Assoc, uint32_t Way) {
  for (uint32_t Node = Assoc + Way; Node > 1; Node /= 2) {
    uint32_t Parent = Node / 2;
    uint64_t Mask = uint64_t(1) << Parent;
    // Went right (Node odd) => point the victim walk left, and vice
    // versa.
    Bits = (Node & 1) ? (Bits & ~Mask) : (Bits | Mask);
  }
  return Bits;
}

/// Returns \p Bits with \p Way's path rewritten to point *at* it — the
/// dead-line demotion (paper footnote 6): a freed multi-word line
/// becomes the set's next victim.
inline uint64_t treePLRUPointAt(uint64_t Bits, uint32_t Assoc,
                                uint32_t Way) {
  for (uint32_t Node = Assoc + Way; Node > 1; Node /= 2) {
    uint32_t Parent = Node / 2;
    uint64_t Mask = uint64_t(1) << Parent;
    Bits = (Node & 1) ? (Bits | Mask) : (Bits & ~Mask);
  }
  return Bits;
}

} // namespace detail

} // namespace urcm

#endif // URCM_SIM_CACHEPOLICY_H
