//===- urcm/sim/Simulator.h - URCM-RISC simulator ---------------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functional simulator for URCM-RISC programs with a modeled data cache.
/// Data flows through the cache hierarchy for real (write-back semantics),
/// so the compiler's bypass and dead-tag hints are validated end to end: a
/// paranoid shadow memory is updated architecturally on every store, and
/// every load's delivered value is checked against it. Any divergence
/// (CoherenceViolations) means a compiler hint was unsound.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SIM_SIMULATOR_H
#define URCM_SIM_SIMULATOR_H

#include "urcm/codegen/MachineIR.h"
#include "urcm/sim/Cache.h"

#include <string>
#include <vector>

namespace urcm {

/// One recorded data reference (for trace-driven replay, e.g. Belady
/// MIN). Kept to 8 bytes — traces run to tens of millions of events and
/// the sweep engine streams them repeatedly — so only the fields replay
/// consumes are recorded: the word address (word addresses are bounded
/// by the simulated memory size, far below 2^32), the cache hint bits,
/// and the static reference id feeding the attribution profiler.
struct TraceEvent {
  /// The subset of MemRefInfo that affects cache behaviour. Packed into
  /// one byte so the RefId fits in the event without widening it.
  struct Hints {
    uint8_t Bypass : 1;
    uint8_t LastRef : 1;
    /// Always zero. Explicitly named and initialized so the unused bits
    /// of the byte are deterministic: consumers hash and compare events
    /// as raw 8-byte words (e.g. bench/trace_gen's stream hash), and
    /// compiler-chosen garbage in bitfield padding would make equal
    /// traces hash differently.
    uint8_t Unused : 6;
    Hints() : Bypass(0), LastRef(0), Unused(0) {}
    Hints(bool Bypass, bool LastRef)
        : Bypass(Bypass), LastRef(LastRef), Unused(0) {}
    Hints(const MemRefInfo &Info)
        : Bypass(Info.Bypass), LastRef(Info.LastRef), Unused(0) {}
    /// TraceEvent hints feed APIs taking full reference info (e.g. the
    /// live DataCache in tests). The RefId is not part of the hints —
    /// attribution consumers read TraceEvent::RefId directly.
    operator MemRefInfo() const {
      MemRefInfo Info;
      Info.Bypass = Bypass;
      Info.LastRef = LastRef;
      return Info;
    }
  };

  uint32_t Addr = 0;
  bool IsWrite = false;
  Hints Info;
  /// Static reference id of the Ld/St that produced this event
  /// (MemRefInfo::RefId), or MemRefInfo::NoRefId when unnumbered.
  uint16_t RefId = MemRefInfo::NoRefId;
};
static_assert(sizeof(TraceEvent) == 8, "trace events are streamed in "
                                       "bulk; keep them packed");

/// Consumer of the data-reference trace in fixed-size chunks, fed while
/// the simulation is still running. This is the streaming alternative to
/// SimConfig::RecordTrace: peak trace memory is O(chunk) instead of
/// O(trace), and a consumer on another thread (see
/// urcm/sim/TraceStream.h) can replay chunk k while the simulator
/// produces chunk k+1. Chunk boundaries are an implementation detail:
/// the concatenation of all chunks is exactly the trace RecordTrace
/// would have recorded.
class TraceSink {
public:
  virtual ~TraceSink() = default;

  /// Takes ownership of \p Chunk — the next events of the trace, in
  /// order — and returns an *empty* buffer for the producer to refill
  /// (sinks recycle the consumer's drained buffers to keep the steady
  /// state allocation-free). The final chunk may be short; empty
  /// chunks are never delivered.
  virtual std::vector<TraceEvent> chunk(std::vector<TraceEvent> Chunk) = 0;
};

/// Which execution engine Simulator::run uses. Both produce bit-identical
/// SimResults (asserted differentially by tests/simulator_test.cpp and
/// tests/fuzz_test.cpp); Switch is kept as the portable reference
/// implementation.
enum class SimEngine : uint8_t {
  /// Predecoded threaded-dispatch fast path (urcm/sim/Predecode.h).
  Predecoded,
  /// The legacy one-MInst-at-a-time switch interpreter.
  Switch,
};

/// Simulation knobs.
struct SimConfig {
  CacheConfig Cache;
  uint64_t MaxSteps = 2000000000ull;
  SimEngine Engine = SimEngine::Predecoded;
  /// Superinstruction fusion for the predecoded engine (fusePredecoded,
  /// urcm/sim/Predecode.h): fused runs produce bit-identical SimResults
  /// and TraceEvent streams, so like Engine this is an observer of the
  /// trace, not an input to it, and is deliberately excluded from
  /// traceContentHash — warm stores recorded fused serve unfused
  /// consumers and vice versa. URCM_NO_FUSE=1 in the environment
  /// disables fusion globally regardless of this flag.
  bool Fusion = true;
  /// Check every delivered load value against the shadow memory.
  bool Paranoid = true;
  /// Record the data-reference trace for later replay.
  bool RecordTrace = false;
  /// When set, the trace streams through this sink in chunks of
  /// TraceChunkEvents instead of accumulating in SimResult::Trace
  /// (RecordTrace is ignored). The sink is called on the simulating
  /// thread.
  TraceSink *Sink = nullptr;
  /// Events per streamed chunk (64K events = 512 KB at 8 bytes each:
  /// big enough to amortize hand-off costs, small enough to bound
  /// in-flight memory).
  uint32_t TraceChunkEvents = 1u << 16;
  /// Expected trace length (e.g. from a previous run of the same
  /// workload); when RecordTrace is set the trace vector is reserved to
  /// this size up front, avoiding reallocation copies of a trace that
  /// can run to hundreds of MB. Zero reserves nothing.
  uint64_t TraceSizeHint = 0;
  /// Model an instruction cache as well (paper section 2.2: cache can
  /// hold both data and instructions). Instruction addresses are code
  /// indexes; multi-word lines capture sequential fetch locality.
  bool ModelICache = false;
  CacheConfig ICache = {/*NumLines=*/64, /*Assoc=*/2, /*LineWords=*/4,
                        ReplacementPolicy::LRU, WritePolicy::WriteBack,
                        /*Seed=*/0x1ce};
  /// When set, the data cache accumulates per-static-reference
  /// attribution (urcm/sim/RefAttribution.h) into this table (not
  /// owned). Size it with RefAttribution(Prog.RefTable.size()). Null —
  /// the default — keeps the hot paths attribution-free.
  RefAttribution *Attribution = nullptr;
};

/// Dynamic per-class reference counts (the paper's runtime measurement).
struct DynamicRefStats {
  uint64_t Unambiguous = 0;
  uint64_t Ambiguous = 0;
  uint64_t Spill = 0; // Spill + SpillReload.
  uint64_t Unknown = 0;
  uint64_t Bypassed = 0;
  uint64_t LastRefTagged = 0;

  uint64_t total() const {
    return Unambiguous + Ambiguous + Spill + Unknown;
  }
  /// Dynamic fraction of references that are unambiguous names (the
  /// paper reports 45-75%). Spill traffic references unambiguous
  /// compiler-created names.
  double unambiguousFraction() const {
    uint64_t Total = total();
    return Total == 0 ? 0.0
                      : static_cast<double>(Unambiguous + Spill) / Total;
  }
};

/// Result of one program run.
struct SimResult {
  bool Halted = false;
  std::string Error; ///< Empty on success.
  uint64_t Steps = 0;
  /// Values printed by the program, in order.
  std::vector<int64_t> Output;
  CacheStats Cache;
  DynamicRefStats Refs;
  /// Instruction-cache counters (only when SimConfig::ModelICache).
  CacheStats ICache;
  uint64_t InstructionFetches = 0;
  /// Number of times consecutive executed data references differed in
  /// their bypass bit — the cost driver for the paper's section-4.4
  /// "mode switch" hint-encoding alternative.
  uint64_t BypassTransitions = 0;
  uint64_t CoherenceViolations = 0;
  std::vector<TraceEvent> Trace;

  bool ok() const { return Halted && Error.empty(); }
};

struct PredecodedProgram;

/// Executes machine programs.
class Simulator {
public:
  explicit Simulator(const SimConfig &Config) : Config(Config) {}

  /// Runs \p Prog to completion (Halt), error, or the step limit,
  /// through the engine selected by SimConfig::Engine (predecoding on
  /// the fly for SimEngine::Predecoded).
  SimResult run(const MachineProgram &Prog);

  /// Runs an already-predecoded program (always the predecoded engine).
  /// Callers that execute one program many times predecode once and use
  /// this overload.
  SimResult run(const PredecodedProgram &Prog);

private:
  SimResult runSwitch(const MachineProgram &Prog);

  SimConfig Config;
};

} // namespace urcm

#endif // URCM_SIM_SIMULATOR_H
