//===- urcm/sim/Simulator.h - URCM-RISC simulator ---------------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functional simulator for URCM-RISC programs with a modeled data cache.
/// Data flows through the cache hierarchy for real (write-back semantics),
/// so the compiler's bypass and dead-tag hints are validated end to end: a
/// paranoid shadow memory is updated architecturally on every store, and
/// every load's delivered value is checked against it. Any divergence
/// (CoherenceViolations) means a compiler hint was unsound.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SIM_SIMULATOR_H
#define URCM_SIM_SIMULATOR_H

#include "urcm/codegen/MachineIR.h"
#include "urcm/sim/Cache.h"

#include <string>
#include <vector>

namespace urcm {

/// One recorded data reference (for trace-driven replay, e.g. Belady
/// MIN).
struct TraceEvent {
  uint64_t Addr = 0;
  bool IsWrite = false;
  MemRefInfo Info;
};

/// Simulation knobs.
struct SimConfig {
  CacheConfig Cache;
  uint64_t MaxSteps = 2000000000ull;
  /// Check every delivered load value against the shadow memory.
  bool Paranoid = true;
  /// Record the data-reference trace for later replay.
  bool RecordTrace = false;
  /// Model an instruction cache as well (paper section 2.2: cache can
  /// hold both data and instructions). Instruction addresses are code
  /// indexes; multi-word lines capture sequential fetch locality.
  bool ModelICache = false;
  CacheConfig ICache = {/*NumLines=*/64, /*Assoc=*/2, /*LineWords=*/4,
                        ReplacementPolicy::LRU, WritePolicy::WriteBack,
                        /*Seed=*/0x1ce};
};

/// Dynamic per-class reference counts (the paper's runtime measurement).
struct DynamicRefStats {
  uint64_t Unambiguous = 0;
  uint64_t Ambiguous = 0;
  uint64_t Spill = 0; // Spill + SpillReload.
  uint64_t Unknown = 0;
  uint64_t Bypassed = 0;
  uint64_t LastRefTagged = 0;

  uint64_t total() const {
    return Unambiguous + Ambiguous + Spill + Unknown;
  }
  /// Dynamic fraction of references that are unambiguous names (the
  /// paper reports 45-75%). Spill traffic references unambiguous
  /// compiler-created names.
  double unambiguousFraction() const {
    uint64_t Total = total();
    return Total == 0 ? 0.0
                      : static_cast<double>(Unambiguous + Spill) / Total;
  }
};

/// Result of one program run.
struct SimResult {
  bool Halted = false;
  std::string Error; ///< Empty on success.
  uint64_t Steps = 0;
  /// Values printed by the program, in order.
  std::vector<int64_t> Output;
  CacheStats Cache;
  DynamicRefStats Refs;
  /// Instruction-cache counters (only when SimConfig::ModelICache).
  CacheStats ICache;
  uint64_t InstructionFetches = 0;
  /// Number of times consecutive executed data references differed in
  /// their bypass bit — the cost driver for the paper's section-4.4
  /// "mode switch" hint-encoding alternative.
  uint64_t BypassTransitions = 0;
  uint64_t CoherenceViolations = 0;
  std::vector<TraceEvent> Trace;

  bool ok() const { return Halted && Error.empty(); }
};

/// Executes machine programs.
class Simulator {
public:
  explicit Simulator(const SimConfig &Config) : Config(Config) {}

  /// Runs \p Prog to completion (Halt), error, or the step limit.
  SimResult run(const MachineProgram &Prog);

private:
  SimConfig Config;
};

} // namespace urcm

#endif // URCM_SIM_SIMULATOR_H
