//===- urcm/sim/TraceStore.h - Persistent compressed trace store -*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent on-disk container for recorded data-reference traces:
/// record once, replay everywhere. The sweep engine made replay cheap
/// *within* a process (compile-once/replay-many); this store makes the
/// expensive part — executing the functional Simulator to produce the
/// reference stream — a once-per-program cost *across* processes: urcmc,
/// urcm_report, the bench binaries and the tests can all serve their
/// sweeps from one recorded trace.
///
/// ## Container format (version 2, little-endian)
///
///   header   : magic "URCMTRC\x01" (8) | version u32 | flags u32 (0) |
///              content-hash u64 | nominal chunk events u32 |
///              reserved u32
///   chunks   : repeated { payload-bytes u32 | event-count u32 |
///              crc32(payload) u32 | payload }
///   sentinel : u32 0xFFFFFFFF (end of chunks)
///   summary  : bytes u32 | serialized trace-free SimResult |
///              crc32(summary) u32
///   footer   : total-events u64 | chunk-count u64 |
///              end magic "URCMEND\x01" (8)
///
/// Each chunk payload is self-contained: first a packed bit stream of 6
/// bits per event (is-write, bypass, last-ref, a 2-bit delta-base
/// selector, and a ref-predicted bit), then the varint stream. The
/// encoder keeps a 4-entry ring of the most recent addresses
/// (zero-initialized per chunk) and encodes each address as a zigzag
/// delta against whichever entry gives the shortest varint —
/// stack/global/array streams interleave freely in real traces, and a
/// single "previous address" base would pay a 3-byte varint at every
/// region switch. The ref-predicted bit (new in version 2) carries the
/// static reference id for the attribution profiler: set, the event's
/// RefId is the predicted one (previous event's id plus one — ids are
/// numbered in code order, so straight-line runs match — or NoRefId
/// while the previous event was unnumbered, so hint-free traces cost
/// nothing); clear, a zigzag varint of the difference from the
/// prediction follows the address delta. The hint/kind bits are packed
/// separately from the varint stream so both stay byte-aligned and
/// branch-predictable to decode. Encoded size on the paper benchmarks
/// runs well under 1/3 of the raw 8-byte-per-event form (asserted by
/// bench/trace_store).
///
/// ## Invalidation and robustness
///
/// The header carries a content hash of the compiled MachineIR plus
/// every simulation input that can affect the result (see
/// traceContentHash), so stale traces self-invalidate: a reader opened
/// with a different expected hash rejects the file and the caller falls
/// back to live simulation. open() validates the *whole* file up front
/// (magic, version, hash, every chunk CRC, summary CRC, footer counts,
/// exact end-of-file), so a sweep served from an accepted store cannot
/// discover corruption halfway through feeding replay consumers.
/// Validation failures are reported through DiagnosticEngine — never
/// asserted — and decode stays bounds-checked even after a successful
/// open (a file mutated mid-read produces a clean failure, not UB).
///
/// Writers encode into a temp file in the store directory and publish
/// with an atomic rename, so concurrent processes recording the same
/// program race benignly (both files are valid; last rename wins) and a
/// crashed writer never leaves a half-written store behind.
///
/// ## Replay integration
///
/// streamStoredTrace() decodes chunks on a dedicated thread and feeds
/// them, in order, to a consumer on the calling thread through the same
/// recycled-buffer SPSC pipeline live generation uses
/// (urcm/sim/TraceStream.h): decode overlaps replay, each decoded chunk
/// is recycled as soon as its replay consumers finish, and peak memory
/// stays O(chunk) exactly as on the live streaming path.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SIM_TRACESTORE_H
#define URCM_SIM_TRACESTORE_H

#include "urcm/codegen/MachineIR.h"
#include "urcm/sim/Simulator.h"
#include "urcm/support/Diagnostics.h"

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace urcm {

/// Fingerprint of everything that determines a recorded trace *and* the
/// trace-free SimResult summary stored beside it: the full machine
/// program (instructions including hint bits and classification,
/// entry point, global layout, stack top) and the simulation inputs
/// that can change the outcome (step limit, cache and i-cache
/// geometry, paranoid checking). Pure observers — the execution engine,
/// trace sinks, chunk sizes, reserve hints — are deliberately excluded:
/// they cannot change a single recorded event. FNV-1a over a canonical
/// byte serialization; stable within a format version (the store salts
/// it, so bumping the format version retires every old file at once).
uint64_t traceContentHash(const MachineProgram &Prog,
                          const SimConfig &Config);

/// The store file path for \p ContentHash under \p Dir:
/// `<Dir>/<16-hex-digits>.urctrc`.
std::string traceStorePath(const std::string &Dir, uint64_t ContentHash);

/// Records one trace into a store directory. Lifecycle: open() creates
/// the directory (if needed) and a temp file; append() encodes events
/// (any batch sizes — the writer re-chunks internally, so the file
/// layout is independent of the producer's chunking); commit() writes
/// the summary and footer and atomically publishes the file; discard()
/// (or destruction before commit) removes the temp file. append() is
/// single-producer: call it from one thread at a time (the simulating
/// thread, when teeing off a TraceSink).
class TraceStoreWriter {
public:
  TraceStoreWriter() = default;
  TraceStoreWriter(const TraceStoreWriter &) = delete;
  TraceStoreWriter &operator=(const TraceStoreWriter &) = delete;
  ~TraceStoreWriter();

  /// Events per encoded chunk (64K events = 512 KB raw): the decode
  /// granularity and the peak per-buffer memory on the warm path.
  static constexpr uint32_t ChunkEvents = 1u << 16;

  /// Creates \p Dir if missing and opens a temp file for the trace of
  /// \p ContentHash. On I/O failure reports to \p Diags and returns
  /// false (the writer stays closed; append/commit become no-ops, so
  /// recording failure can never fail the simulation it observes).
  bool open(const std::string &Dir, uint64_t ContentHash,
            DiagnosticEngine &Diags);
  bool isOpen() const { return File != nullptr; }

  /// Encodes and buffers the next \p Count events of the trace.
  void append(const TraceEvent *Events, size_t Count);

  /// Flushes the final chunk, writes the summary (\p Summary's Trace
  /// field is ignored — the chunks are the trace) and footer, and
  /// atomically renames the temp file into place. Returns false (with a
  /// diagnostic) on I/O failure; the temp file is removed either way.
  bool commit(const SimResult &Summary, DiagnosticEngine &Diags);

  /// Removes the temp file without publishing (failed or abandoned
  /// runs). Idempotent.
  void discard();

  uint64_t eventCount() const { return Events; }
  /// Encoded bytes written so far (header + flushed chunks).
  uint64_t bytesWritten() const { return BytesWritten; }

private:
  bool flushChunk(); ///< Encodes and writes Pending; false on I/O error.

  std::FILE *File = nullptr;
  std::string TempPath;
  std::string FinalPath;
  uint64_t Hash = 0;
  uint64_t Events = 0;
  uint64_t Chunks = 0;
  uint64_t BytesWritten = 0;
  bool Failed = false;
  std::vector<TraceEvent> Pending; ///< Re-chunk buffer (<= ChunkEvents).
  std::vector<uint8_t> Encoded;    ///< Reused encode scratch.
};

/// A recording-only TraceSink: every chunk is appended to the writer
/// and the (cleared) buffer handed straight back to the producer, so a
/// cold run with no replay consumers can still record its trace with
/// zero steady-state allocation. Also usable as the producer-side tap
/// of streamTrace() to tee recording off a replayed stream.
class TraceRecordSink : public TraceSink {
public:
  explicit TraceRecordSink(TraceStoreWriter &Writer) : Writer(Writer) {}

  std::vector<TraceEvent> chunk(std::vector<TraceEvent> Chunk) override {
    Writer.append(Chunk.data(), Chunk.size());
    Chunk.clear();
    return Chunk;
  }

private:
  TraceStoreWriter &Writer;
};

/// Reads one store file. open() fully validates before anything is
/// served; next() then decodes chunk by chunk into a caller-provided
/// buffer (capacity reused across calls).
class TraceStoreReader {
public:
  enum class OpenStatus {
    Ok,       ///< Validated; summary and chunks are servable.
    NotFound, ///< No file at the path (a cache miss, not an error).
    Invalid,  ///< Present but rejected (diagnostic explains why).
  };

  TraceStoreReader() = default;
  TraceStoreReader(const TraceStoreReader &) = delete;
  TraceStoreReader &operator=(const TraceStoreReader &) = delete;
  ~TraceStoreReader();

  /// Opens \p Path and validates the entire container: magic, version,
  /// content hash against \p ExpectHash, every chunk's CRC and size
  /// bound, the summary CRC, and the footer's event/chunk counts
  /// against what the chunks actually hold. Invalid files report one
  /// error to \p Diags; a missing file reports nothing (the caller
  /// treats it as a plain cache miss).
  OpenStatus open(const std::string &Path, uint64_t ExpectHash,
                  DiagnosticEngine &Diags);

  /// The recorded trace-free SimResult. Valid after OpenStatus::Ok.
  const SimResult &summary() const { return Summary; }

  /// Total recorded events (footer count). Valid after OpenStatus::Ok.
  uint64_t eventCount() const { return TotalEvents; }

  /// Decodes the next chunk into \p Chunk (contents replaced, capacity
  /// reused). Returns false at end of trace or on failure — check
  /// failed() to tell the two apart. Never throws, never reads out of
  /// bounds, even if the file changed since open().
  bool next(std::vector<TraceEvent> &Chunk);

  /// True if a next() call hit an I/O or decode failure after a
  /// successful open (e.g. the file was truncated mid-read).
  bool failed() const { return Failed; }

  /// Repositions next() at the first chunk (for a second pass).
  void rewind();

  /// Decodes the whole trace into \p Trace (replaced; reserved to the
  /// footer's event count). For multi-pass consumers (Belady MIN).
  /// Returns false on decode failure.
  bool readAll(std::vector<TraceEvent> &Trace);

private:
  std::FILE *File = nullptr;
  SimResult Summary;
  uint64_t TotalEvents = 0;
  uint64_t ChunkCount = 0;
  long ChunksBegin = 0;
  uint64_t ChunksSeen = 0;
  bool Failed = false;
  std::vector<uint8_t> Payload; ///< Reused read/decode scratch.
};

/// Feeds a validated reader's trace to \p Consume chunk by chunk, in
/// order, with decode running on a dedicated thread and delivery
/// through the recycled-buffer SPSC pipeline (peak memory O(chunk);
/// decode overlaps the consumer's replay work). Returns false if decode
/// failed mid-stream — the consumer may have seen a prefix of the
/// trace, so on false the caller must discard its replay state and fall
/// back to live simulation.
bool streamStoredTrace(
    TraceStoreReader &Reader,
    const std::function<void(const TraceEvent *, size_t)> &Consume,
    size_t QueueDepth = 4);

namespace detail {

/// Chunk payload codec, exposed for tests: encodes \p Count events into
/// \p Out (replaced), and decodes exactly \p Count events from a
/// payload. decodeChunkPayload returns false if the payload is
/// malformed (short streams, varint overruns) — bounds-checked
/// throughout.
void encodeChunkPayload(const TraceEvent *Events, size_t Count,
                        std::vector<uint8_t> &Out);
bool decodeChunkPayload(const uint8_t *Payload, size_t PayloadBytes,
                        size_t Count, std::vector<TraceEvent> &Out);

/// CRC-32 (IEEE 802.3, reflected) of \p Bytes.
uint32_t crc32(const uint8_t *Bytes, size_t Count);

} // namespace detail

} // namespace urcm

#endif // URCM_SIM_TRACESTORE_H
