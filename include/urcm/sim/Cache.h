//===- urcm/sim/Cache.h - Data cache model ----------------------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative, write-back/write-allocate data cache with real data
/// storage and the paper's two hint bits:
///
///  * bypass (section 3.2 / 4.3): a bypassed read probes the cache first
///    (UmAm_LOAD); a hit migrates the value to the register and frees the
///    line with no write-back; a miss reads main memory directly. A
///    bypassed write goes straight to memory (UmAm_STORE).
///  * last-reference (section 3.1): a hit tagged last-reference frees the
///    line; a dirty dead line is dropped without write-back. For line
///    sizes above one word the line is instead demoted to
///    least-recently-used and its write-back kept (the paper's footnote-6
///    bookkeeping caveat).
///
/// The paper's preferred configuration is a one-word line (section 1).
/// Replacement: any cachePolicyLiveEligible() policy — LRU, FIFO,
/// Random, TreePLRU or SRRIP (Belady MIN and the LivenessBypass
/// predictor live in the replay kernel, urcm/sim/CacheModel.h, which
/// replays a recorded trace). For a store miss on a one-word line the
/// allocate skips the memory fetch (the whole line is overwritten);
/// multi-word lines fetch on write-allocate.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SIM_CACHE_H
#define URCM_SIM_CACHE_H

#include "urcm/ir/IR.h" // MemRefInfo.
#include "urcm/sim/CachePolicy.h"
#include "urcm/sim/RefAttribution.h"
#include "urcm/support/RNG.h"

#include <cstdint>
#include <string>
#include <vector>

namespace urcm {

/// Historical name for the live cache's policy enum; now the unified
/// CachePolicy (urcm/sim/CachePolicy.h). The live DataCache accepts
/// every cachePolicyLiveEligible() member — LRU, FIFO, Random,
/// TreePLRU and SRRIP; MIN and LivenessBypass are replay-only
/// (urcm/sim/CacheModel.h).
using ReplacementPolicy = CachePolicy;

/// Write policies. The paper's write-back model is the default; a
/// write-through/no-allocate option is provided as an ablation — under
/// write-through the dead bit can still free lines early but has no
/// write-back traffic to save.
enum class WritePolicy { WriteBack, WriteThrough };

const char *writePolicyName(WritePolicy Policy);

/// Cache geometry and policy.
struct CacheConfig {
  /// Total number of lines.
  uint32_t NumLines = 128;
  /// Associativity (lines per set). NumLines % Assoc must be 0.
  uint32_t Assoc = 2;
  /// Words per line; the paper assumes 1.
  uint32_t LineWords = 1;
  ReplacementPolicy Policy = ReplacementPolicy::LRU;
  WritePolicy Write = WritePolicy::WriteBack;
  /// Seed for the Random policy.
  uint64_t Seed = 0x5eed;

  friend bool operator==(const CacheConfig &, const CacheConfig &) = default;
};

/// Event counters. "Words" counters measure cache<->memory traffic in
/// machine words; CPU-side counters measure references.
struct CacheStats {
  uint64_t Reads = 0;      ///< Through-cache CPU reads.
  uint64_t Writes = 0;     ///< Through-cache CPU writes.
  uint64_t ReadHits = 0;
  uint64_t WriteHits = 0;
  uint64_t Fills = 0;          ///< Line fills from memory.
  uint64_t FillWords = 0;
  uint64_t WriteBacks = 0;     ///< Dirty evictions written to memory.
  uint64_t WriteBackWords = 0;
  uint64_t Evictions = 0;
  uint64_t DeadFrees = 0;              ///< Lines freed by last-ref tags.
  uint64_t DeadWriteBacksAvoided = 0;  ///< Dirty dead lines dropped.
  uint64_t BypassReads = 0;   ///< Bypassed reads served by memory.
  uint64_t BypassWrites = 0;  ///< Bypassed writes sent to memory.
  uint64_t BypassHitMigrations = 0; ///< UmAm_LOAD hits that freed a line.
  /// Words sent to memory by write-through stores (WriteThrough only).
  uint64_t WriteThroughWords = 0;
  /// Write-backs performed when the program ends (not part of steady
  /// traffic).
  uint64_t FlushWriteBackWords = 0;

  /// Accumulates \p O field by field. Every counter is additive over a
  /// partition of the reference stream, which is what lets set-sharded
  /// replay (urcm/sim/ShardedReplay.h) sum per-shard counters into the
  /// exact sequential totals.
  CacheStats &operator+=(const CacheStats &O) {
    Reads += O.Reads;
    Writes += O.Writes;
    ReadHits += O.ReadHits;
    WriteHits += O.WriteHits;
    Fills += O.Fills;
    FillWords += O.FillWords;
    WriteBacks += O.WriteBacks;
    WriteBackWords += O.WriteBackWords;
    Evictions += O.Evictions;
    DeadFrees += O.DeadFrees;
    DeadWriteBacksAvoided += O.DeadWriteBacksAvoided;
    BypassReads += O.BypassReads;
    BypassWrites += O.BypassWrites;
    BypassHitMigrations += O.BypassHitMigrations;
    WriteThroughWords += O.WriteThroughWords;
    FlushWriteBackWords += O.FlushWriteBackWords;
    return *this;
  }

  uint64_t misses() const { return Reads + Writes - ReadHits - WriteHits; }
  double hitRate() const {
    uint64_t Total = Reads + Writes;
    return Total == 0
               ? 0.0
               : static_cast<double>(ReadHits + WriteHits) / Total;
  }
  /// Traffic the data cache must handle, in words: CPU references that go
  /// through it plus its memory-side fills and write-backs. This is the
  /// quantity Figure 5's reduction is computed over.
  uint64_t cacheTraffic() const {
    return Reads + Writes + FillWords + WriteBackWords;
  }
  /// Memory/bus traffic in words (fills, write-backs, write-throughs
  /// and bypass words).
  uint64_t busTraffic() const {
    return FillWords + WriteBackWords + WriteThroughWords + BypassReads +
           BypassWrites;
  }

  std::string str() const;

  /// Field-wise equality; the sweep-engine tests assert byte-identical
  /// counters between the live cache, the replayer and the fast paths.
  friend bool operator==(const CacheStats &, const CacheStats &) = default;
};

/// Index arithmetic shared by the live cache and the trace replayers:
/// precomputes the set count and strength-reduces the per-access modulo
/// and division to masks/shifts when the geometry is a power of two
/// (always true for the paper configurations). Pure strength reduction —
/// results are identical to the naive `%` / `/` forms.
struct CacheGeometry {
  uint32_t NumSets = 1;
  uint32_t LineWords = 1;
  uint32_t SetMask = 0;   ///< NumSets - 1 when NumSets is a power of two.
  uint32_t LineShift = 0; ///< log2(LineWords) when a power of two.
  bool SetsPow2 = false;
  bool LinePow2 = false;

  CacheGeometry() = default;
  explicit CacheGeometry(const CacheConfig &Config) {
    NumSets = Config.NumLines / Config.Assoc;
    LineWords = Config.LineWords;
    SetsPow2 = NumSets != 0 && (NumSets & (NumSets - 1)) == 0;
    if (SetsPow2)
      SetMask = NumSets - 1;
    LinePow2 = LineWords != 0 && (LineWords & (LineWords - 1)) == 0;
    if (LinePow2)
      while ((1u << LineShift) < LineWords)
        ++LineShift;
  }

  uint64_t lineAddr(uint64_t Addr) const {
    if (LineWords == 1)
      return Addr;
    return LinePow2 ? Addr >> LineShift : Addr / LineWords;
  }
  uint32_t setOf(uint64_t LineAddress) const {
    return static_cast<uint32_t>(SetsPow2 ? LineAddress & SetMask
                                          : LineAddress % NumSets);
  }
  /// Addr % LineWords without the hardware divide on the common
  /// geometries (identical result).
  uint32_t wordInLine(uint64_t Addr) const {
    if (LineWords == 1)
      return 0;
    return static_cast<uint32_t>(LinePow2 ? Addr & (LineWords - 1)
                                          : Addr % LineWords);
  }
};

/// A simple memory-access-time model used to reproduce the paper's
/// section-4.4 claim ("speedups of total memory access time by factors
/// of 2 or more"): a through-cache hit costs CacheHitCycles, every word
/// that crosses the memory bus (fill, write-back, write-through, bypass)
/// costs MemoryCycles.
struct LatencyModel {
  uint32_t CacheHitCycles = 1;
  uint32_t MemoryCycles = 10;
};

/// Total data memory-access time, in cycles, for the traffic in \p Stats.
uint64_t memoryAccessCycles(const CacheStats &Stats,
                            const LatencyModel &Model = LatencyModel());

/// Word-addressed main memory with a paranoid shadow copy: the shadow is
/// updated architecturally on every store, so any divergence between what
/// the cache hierarchy delivers and the shadow indicates an unsound
/// compiler hint.
class MainMemory {
public:
  explicit MainMemory(uint64_t SizeWords)
      : Data(SizeWords, 0), Shadow(SizeWords, 0) {}

  uint64_t size() const { return Data.size(); }

  int64_t read(uint64_t Addr) const { return Data[Addr]; }
  void write(uint64_t Addr, int64_t Value) { Data[Addr] = Value; }

  int64_t shadowRead(uint64_t Addr) const { return Shadow[Addr]; }
  void shadowWrite(uint64_t Addr, int64_t Value) { Shadow[Addr] = Value; }

private:
  std::vector<int64_t> Data;
  std::vector<int64_t> Shadow;
};

/// The data cache. The hot paths (hit on read/write) are inlined here:
/// the simulator performs one cache access per simulated memory
/// instruction (plus one per *fetch* when the I-cache is modeled), so
/// call overhead and pointer-chasing on this path dominate simulation
/// wall time. Line metadata is a 32-byte POD and line data lives in one
/// flat word array indexed by line slot — no per-line allocation, no
/// indirection, and no divide on the access path (see
/// CacheGeometry::wordInLine).
class DataCache {
public:
  DataCache(const CacheConfig &Config, MainMemory &Mem);

#if defined(__GNUC__)
// The simulator's load/store handlers live inside one large dispatch
// function; GCC's function-growth limit refuses to inline these
// otherwise-small hot wrappers there, leaving a call on every simulated
// memory access.
#define URCM_CACHE_INLINE __attribute__((always_inline)) inline
#else
#define URCM_CACHE_INLINE inline
#endif

  /// Performs a data read at word address \p Addr with hint bits \p Info.
  URCM_CACHE_INLINE int64_t read(uint64_t Addr, const MemRefInfo &Info) {
    if (!Info.Bypass) {
      uint64_t LineAddress = Geometry.lineAddr(Addr);
      ++Stats.Reads;
      if (Line *L = findLine(LineAddress)) {
        ++Stats.ReadHits;
        if (Attr)
          ++Attr->row(Info.RefId).Hits;
        touch(*L);
        int64_t Value = wordOf(*L, Addr);
        if (Info.LastRef)
          freeLine(*L, /*AvoidWriteBack=*/true, Info.RefId);
        return Value;
      }
      return readMiss(Addr, LineAddress, Info);
    }
    return readBypass(Addr, Info);
  }

  /// Performs a data write.
  URCM_CACHE_INLINE void write(uint64_t Addr, int64_t Value,
                               const MemRefInfo &Info) {
    if (!Info.Bypass && Config.Write == WritePolicy::WriteBack) {
      uint64_t LineAddress = Geometry.lineAddr(Addr);
      ++Stats.Writes;
      if (Line *L = findLine(LineAddress)) {
        ++Stats.WriteHits;
        if (Attr)
          ++Attr->row(Info.RefId).Hits;
        touch(*L);
        wordOf(*L, Addr) = Value;
        L->Dirty = true;
        if (Info.LastRef) {
          // Dead store: the value will never be read; the line is
          // reclaimable immediately and the memory copy need not be
          // produced.
          freeLine(*L, /*AvoidWriteBack=*/true, Info.RefId);
        }
        return;
      }
      return writeMiss(Addr, LineAddress, Value, Info);
    }
    writeSlow(Addr, Value, Info);
  }

  /// Writes back all dirty lines (end of program); counted separately.
  void flush();

  /// Frees every resident line whose addresses lie entirely within
  /// [\p Lo, \p Hi) — used for code-dead reclamation in the I-cache.
  /// Dirty lines are written back first (counts as DeadFrees).
  void invalidateRange(uint64_t Lo, uint64_t Hi);

  const CacheStats &stats() const { return Stats; }
  const CacheConfig &config() const { return Config; }

  /// Accumulates per-reference attribution (urcm/sim/RefAttribution.h)
  /// into \p A (not owned; null — the default — disables, at the cost
  /// of one well-predicted untaken branch per counter site).
  void setAttribution(RefAttribution *A) { Attr = A; }

  /// True if the line containing \p Addr is currently resident.
  bool probe(uint64_t Addr) const;

private:
  struct Line {
    uint64_t Tag = 0; // Line address.
    uint64_t LastUsed = 0;
    uint64_t InsertedAt = 0;
    bool Valid = false;
    bool Dirty = false;
    /// SRRIP re-reference prediction value (0..SRRIPMaxRRPV); only
    /// maintained under CachePolicy::SRRIP. Takes existing padding, so
    /// the line metadata stays a 32-byte POD.
    uint8_t RRPV = 0;
    /// RefId of the access that installed this line (attribution's
    /// EvictionsSuffered); meaningful only while attribution is on.
    uint16_t InstalledBy = MemRefInfo::NoRefId;
  };
  static_assert(sizeof(Line) == 32, "line metadata must stay one half-line");

  uint32_t numSets() const { return Geometry.NumSets; }
  uint64_t lineAddr(uint64_t Addr) const { return Geometry.lineAddr(Addr); }
  uint32_t setOf(uint64_t LineAddress) const {
    return Geometry.setOf(LineAddress);
  }

  /// The backing word of \p Addr within resident line \p L.
  int64_t &wordOf(Line &L, uint64_t Addr) {
    return Words[static_cast<size_t>(&L - Lines.data()) * Config.LineWords +
                 Geometry.wordInLine(Addr)];
  }

  Line *findLine(uint64_t LineAddress) {
    Line *Base =
        Lines.data() + static_cast<size_t>(setOf(LineAddress)) * Config.Assoc;
    for (uint32_t Way = 0; Way != Config.Assoc; ++Way)
      if (Base[Way].Valid && Base[Way].Tag == LineAddress)
        return Base + Way;
    return nullptr;
  }
  const Line *findLine(uint64_t LineAddress) const {
    return const_cast<DataCache *>(this)->findLine(LineAddress);
  }

  /// Chooses a victim slot in the set (invalid slot preferred).
  Line *chooseVictim(uint32_t Set);
  /// The first invalid way of the set, or null if all ways are valid —
  /// the slot chooseVictim would pick without consulting the policy.
  Line *invalidWayOf(uint32_t Set);
  void evict(Line &L, bool CountAsFlush = false);
  /// Loads the line for \p LineAddress into the cache (fetching words
  /// from memory unless \p FetchWords is false) and returns it.
  Line *allocate(uint64_t LineAddress, bool FetchWords);

  /// Recency update on an access. The tick is universal; TreePLRU and
  /// SRRIP additionally maintain their own per-set/per-line state
  /// (shared mechanisms in urcm/sim/CachePolicy.h, so the replay
  /// kernel's counters can never drift from the live cache's).
  void touch(Line &L) {
    L.LastUsed = ++Tick;
    if (Config.Policy == CachePolicy::SRRIP)
      L.RRPV = 0;
    else if (Config.Policy == CachePolicy::TreePLRU && Config.Assoc > 1)
      treeTouch(&L - Lines.data());
  }
  /// Points slot \p Slot's tree path away from it (most recently used).
  void treeTouch(size_t Slot) {
    TreeBits[Slot / Config.Assoc] = detail::treePLRUTouch(
        TreeBits[Slot / Config.Assoc], Config.Assoc,
        static_cast<uint32_t>(Slot % Config.Assoc));
  }

  /// Reclaims a dead-hinted line (paper's free-on-last-reference). The
  /// hot case — one-word line, write-back suppressed — is a pair of
  /// flag clears, so this lives in the header next to its callers.
  /// \p ByRef is the accessor whose tag freed the line (attribution).
  void freeLine(Line &L, bool AvoidWriteBack,
                uint16_t ByRef = MemRefInfo::NoRefId) {
    ++Stats.DeadFrees;
    if (Config.LineWords == 1) {
      if (L.Dirty && AvoidWriteBack) {
        ++Stats.DeadWriteBacksAvoided;
        if (Attr)
          ++Attr->row(ByRef).DeadWriteBacksSuppressed;
      } else if (L.Dirty) {
        CurRef = ByRef;
        evict(L);
      }
      L.Valid = false;
      L.Dirty = false;
      return;
    }
    // Multi-word lines: other words in the line may still be live, so
    // the line is only demoted to the set's next victim (paper's
    // alternative), in whatever state the policy uses for that.
    L.LastUsed = 0;
    L.InsertedAt = 0;
    if (Config.Policy == CachePolicy::SRRIP)
      L.RRPV = SRRIPMaxRRPV;
    else if (Config.Policy == CachePolicy::TreePLRU && Config.Assoc > 1) {
      size_t Slot = &L - Lines.data();
      TreeBits[Slot / Config.Assoc] = detail::treePLRUPointAt(
          TreeBits[Slot / Config.Assoc], Config.Assoc,
          static_cast<uint32_t>(Slot % Config.Assoc));
    }
  }

  /// Out-of-line remainder of read(): through-cache miss.
  int64_t readMiss(uint64_t Addr, uint64_t LineAddress,
                   const MemRefInfo &Info);
  /// Out-of-line remainder of read(): bypassed (UmAm_LOAD).
  int64_t readBypass(uint64_t Addr, const MemRefInfo &Info);
  /// Out-of-line remainder of write(): write-back miss (write-allocate).
  void writeMiss(uint64_t Addr, uint64_t LineAddress, int64_t Value,
                 const MemRefInfo &Info);
  /// Out-of-line remainder of write(): bypass and write-through.
  void writeSlow(uint64_t Addr, int64_t Value, const MemRefInfo &Info);

  CacheConfig Config;
  CacheGeometry Geometry;
  MainMemory &Mem;
  CacheStats Stats;
  RefAttribution *Attr = nullptr;
  /// RefId of the in-flight access, for eviction attribution (set on
  /// the out-of-line paths before anything that can call evict()).
  uint16_t CurRef = MemRefInfo::NoRefId;
  std::vector<Line> Lines; // Set-major: set s occupies [s*Assoc, ...).
  /// Line data, flat: line slot i owns [i*LineWords, (i+1)*LineWords).
  std::vector<int64_t> Words;
  /// Tree-PLRU node bits, one word per set (TreePLRU only, else empty).
  std::vector<uint64_t> TreeBits;
  uint64_t Tick = 0;
  SplitMix64 Rng;
};

/// Specialized data cache for the paper's canonical configuration —
/// write-back, LRU, two-way, one-word lines, power-of-two line count —
/// which nearly every exhibit simulates. Behavior and counters are
/// bit-identical to DataCache under an eligible() configuration (the
/// differential and fuzz tests pin this against the generic cache via
/// the switch engine). The win is the state encoding, shared with the
/// sweep engine's LRUTwoWayStream: each set is a two-entry
/// move-to-front list of tag words (bit 63 = dirty, all-ones =
/// invalid) with a parallel value array, so the common case — a hit on
/// the most recent way — is one load and one compare, with no tick
/// bookkeeping, no way walk, and no 32-byte line metadata.
///
/// Invariants: among valid ways of a set, slot 0 is the more recently
/// used; invalid ways can sit in either slot (an access always leaves
/// the touched line in slot 0, and dead-tag/bypass frees invalidate in
/// place). Victim choice matches DataCache::chooseVictim: an invalid
/// way first — the choice *among* invalid ways has no observable
/// effect — else the LRU way, which is slot 1.
///
/// \p Attrib compiles the per-reference attribution accounting in or
/// out: the false instantiation (TwoWayWB1Cache, what every
/// non-profiling run executes) carries zero attribution code in its
/// inlined read/write paths — not even a dead branch — so enabling the
/// profiler feature costs nothing until a run actually requests it
/// (the Simulator dispatches to TwoWayWB1CacheAttr then).
template <bool Attrib> class TwoWayWB1CacheT {
  static constexpr uint64_t DirtyBit = uint64_t(1) << 63;
  static constexpr uint64_t TagMask = ~DirtyBit;
  static constexpr uint64_t Invalid = ~uint64_t(0);

  // The fast path models exactly CachePolicy::LRU; pin the unified
  // enum's layout so eligibility (and the trace-store's serialized
  // policy bytes) cannot drift silently under the policy refactor.
  static_assert(static_cast<uint8_t>(CachePolicy::LRU) == 0 &&
                    static_cast<uint8_t>(CachePolicy::FIFO) == 1 &&
                    static_cast<uint8_t>(CachePolicy::Random) == 2 &&
                    static_cast<uint8_t>(CachePolicy::MIN) == 3,
                "CachePolicy must extend, not renumber, the legacy enums");

public:
  /// True if \p C is a configuration this cache reproduces exactly.
  static bool eligible(const CacheConfig &C) {
    return C.Write == WritePolicy::WriteBack &&
           C.Policy == ReplacementPolicy::LRU && C.LineWords == 1 &&
           C.Assoc == 2 && C.NumLines >= 2 &&
           (C.NumLines & (C.NumLines - 1)) == 0;
  }

  TwoWayWB1CacheT(const CacheConfig &Config, MainMemory &Mem)
      : Config(Config), Mem(Mem),
        SetMask(uint64_t(Config.NumLines / 2) - 1),
        Tags(Config.NumLines, Invalid), Vals(Config.NumLines, 0),
        InstalledBy(Attrib ? Config.NumLines : 0, MemRefInfo::NoRefId) {
    assert(eligible(Config) && "config not supported by the fast cache");
  }

  /// See DataCache::setAttribution. The non-Attrib instantiation has
  /// no accounting code; callers with a table must pick the Attrib one.
  void setAttribution(RefAttribution *A) {
    assert((Attrib || A == nullptr) &&
           "attribution requires the TwoWayWB1CacheAttr instantiation");
    if constexpr (Attrib)
      Attr = A;
    else
      (void)A;
  }

  URCM_CACHE_INLINE int64_t read(uint64_t Addr, const MemRefInfo &Info) {
    if (!Info.Bypass) {
      ++Stats.Reads;
      uint64_t *P = Tags.data() + ((Addr & SetMask) << 1);
      int64_t *V = Vals.data() + ((Addr & SetMask) << 1);
      uint64_t T0 = P[0];
      if ((T0 & TagMask) == Addr) {
        ++Stats.ReadHits;
        if constexpr (Attrib)
          if (Attr)
            ++Attr->row(Info.RefId).Hits;
        int64_t Value = V[0];
        if (Info.LastRef)
          freeFront(P, T0, Info.RefId);
        return Value;
      }
      if (uint64_t T1 = P[1]; (T1 & TagMask) == Addr) {
        ++Stats.ReadHits;
        if constexpr (Attrib) {
          if (Attr)
            ++Attr->row(Info.RefId).Hits;
          uint16_t *IB = ibOf(Addr);
          uint16_t Tmp = IB[0];
          IB[0] = IB[1];
          IB[1] = Tmp;
        }
        int64_t Value = V[1];
        P[1] = T0;
        P[0] = T1;
        V[1] = V[0];
        V[0] = Value;
        if (Info.LastRef)
          freeFront(P, T1, Info.RefId);
        return Value;
      }
      return readMiss(Addr, P, V, Info);
    }
    return readBypass(Addr, Info);
  }

  URCM_CACHE_INLINE void write(uint64_t Addr, int64_t Value,
                               const MemRefInfo &Info) {
    if (!Info.Bypass) {
      ++Stats.Writes;
      uint64_t *P = Tags.data() + ((Addr & SetMask) << 1);
      int64_t *V = Vals.data() + ((Addr & SetMask) << 1);
      uint64_t T0 = P[0];
      if ((T0 & TagMask) == Addr) {
        ++Stats.WriteHits;
        if constexpr (Attrib)
          if (Attr)
            ++Attr->row(Info.RefId).Hits;
        if (Info.LastRef) {
          // Dead store: dirty by construction, write-back avoided.
          ++Stats.DeadFrees;
          ++Stats.DeadWriteBacksAvoided;
          if constexpr (Attrib)
            if (Attr)
              ++Attr->row(Info.RefId).DeadWriteBacksSuppressed;
          P[0] = Invalid;
          return;
        }
        P[0] = T0 | DirtyBit;
        V[0] = Value;
        return;
      }
      if (uint64_t T1 = P[1]; (T1 & TagMask) == Addr) {
        ++Stats.WriteHits;
        if constexpr (Attrib) {
          if (Attr)
            ++Attr->row(Info.RefId).Hits;
          uint16_t *IB = ibOf(Addr);
          uint16_t Tmp = IB[0];
          IB[0] = IB[1];
          IB[1] = Tmp;
        }
        P[1] = T0;
        V[1] = V[0];
        if (Info.LastRef) {
          ++Stats.DeadFrees;
          ++Stats.DeadWriteBacksAvoided;
          if constexpr (Attrib)
            if (Attr)
              ++Attr->row(Info.RefId).DeadWriteBacksSuppressed;
          P[0] = Invalid;
          return;
        }
        P[0] = T1 | DirtyBit;
        V[0] = Value;
        return;
      }
      return writeMiss(Addr, Value, P, V, Info);
    }
    // UmAm_STORE: straight to memory. A stale cached copy should not
    // exist under the compiler contract; if one does, keep it coherent
    // (no dirty bit, no recency change — same as DataCache).
    ++Stats.BypassWrites;
    if constexpr (Attrib)
      if (Attr)
        ++Attr->row(Info.RefId).Bypasses;
    Mem.write(Addr, Value);
    uint64_t *P = Tags.data() + ((Addr & SetMask) << 1);
    int64_t *V = Vals.data() + ((Addr & SetMask) << 1);
    if ((P[0] & TagMask) == Addr)
      V[0] = Value;
    else if ((P[1] & TagMask) == Addr)
      V[1] = Value;
  }

  /// Writes back all dirty lines (end of program); counted separately.
  void flush() {
    for (size_t I = 0; I != Tags.size(); ++I) {
      uint64_t T = Tags[I];
      if (T != Invalid && (T & DirtyBit)) {
        Mem.write(T & TagMask, Vals[I]);
        Stats.FlushWriteBackWords += 1;
      }
      Tags[I] = Invalid;
    }
  }

  const CacheStats &stats() const { return Stats; }
  const CacheConfig &config() const { return Config; }

private:
  /// The two InstalledBy slots of \p Addr's set (parallel to Tags).
  uint16_t *ibOf(uint64_t Addr) {
    return InstalledBy.data() + ((Addr & SetMask) << 1);
  }

  /// freeLine() for the line in slot 0 whose (possibly dirty) tag word
  /// is \p T: reclaim it, counting a suppressed write-back if dirty.
  void freeFront(uint64_t *P, uint64_t T, uint16_t ByRef) {
    ++Stats.DeadFrees;
    if (T & DirtyBit) {
      ++Stats.DeadWriteBacksAvoided;
      if constexpr (Attrib)
        if (Attr)
          ++Attr->row(ByRef).DeadWriteBacksSuppressed;
    }
    (void)ByRef;
    P[0] = Invalid;
  }

  /// Evicts the valid line with tag word \p T and cached value \p Val,
  /// installed by \p Installer and displaced by \p ByRef.
  void evictTag(uint64_t T, int64_t Val, uint16_t ByRef,
                uint16_t Installer) {
    ++Stats.Evictions;
    if constexpr (Attrib) {
      if (Attr) {
        ++Attr->row(ByRef).EvictionsCaused;
        ++Attr->row(Installer).EvictionsSuffered;
      }
    }
    (void)ByRef;
    (void)Installer;
    if (T & DirtyBit) {
      ++Stats.WriteBacks;
      Stats.WriteBackWords += 1;
      Mem.write(T & TagMask, Val);
    }
  }

  int64_t readMiss(uint64_t Addr, uint64_t *P, int64_t *V,
                   const MemRefInfo &Info) {
    if constexpr (Attrib)
      if (Attr)
        ++Attr->row(Info.RefId).Misses;
    uint16_t *IB = Attrib ? ibOf(Addr) : nullptr;
    uint64_t T0 = P[0], T1 = P[1];
    if (T0 != Invalid) {
      if (T1 != Invalid)
        evictTag(T1, V[1], Info.RefId,
                 Attrib ? IB[1]
                        : MemRefInfo::NoRefId); // Victim write-back
                                                // precedes the fetch.
      P[1] = T0;
      V[1] = V[0];
      if constexpr (Attrib)
        IB[1] = IB[0];
    }
    int64_t Value = Mem.read(Addr);
    ++Stats.Fills;
    Stats.FillWords += 1;
    if (Info.LastRef) {
      // Dead load: the fresh line is clean, so nothing is avoided and
      // the slot is reclaimed immediately.
      ++Stats.DeadFrees;
      P[0] = Invalid;
      return Value;
    }
    P[0] = Addr;
    V[0] = Value;
    if constexpr (Attrib)
      IB[0] = Info.RefId;
    return Value;
  }

  void writeMiss(uint64_t Addr, int64_t Value, uint64_t *P, int64_t *V,
                 const MemRefInfo &Info) {
    if constexpr (Attrib)
      if (Attr)
        ++Attr->row(Info.RefId).Misses;
    uint16_t *IB = Attrib ? ibOf(Addr) : nullptr;
    uint64_t T0 = P[0], T1 = P[1];
    if (T0 != Invalid) {
      if (T1 != Invalid)
        evictTag(T1, V[1], Info.RefId,
                 Attrib ? IB[1] : MemRefInfo::NoRefId);
      P[1] = T0;
      V[1] = V[0];
      if constexpr (Attrib)
        IB[1] = IB[0];
    }
    // One-word write-allocate skips the fetch (the store overwrites
    // the whole line).
    ++Stats.Fills;
    if (Info.LastRef) {
      ++Stats.DeadFrees;
      ++Stats.DeadWriteBacksAvoided;
      if constexpr (Attrib)
        if (Attr)
          ++Attr->row(Info.RefId).DeadWriteBacksSuppressed;
      P[0] = Invalid;
      return;
    }
    P[0] = Addr | DirtyBit;
    V[0] = Value;
    if constexpr (Attrib)
      IB[0] = Info.RefId;
  }

  int64_t readBypass(uint64_t Addr, const MemRefInfo &Info) {
    // UmAm_LOAD: probe; a hit migrates the value to the register and
    // frees the line in place (dirty lines write back first — see
    // DataCache::readBypass for why). A miss reads memory directly.
    if constexpr (Attrib)
      if (Attr)
        ++Attr->row(Info.RefId).Bypasses;
    uint64_t *P = Tags.data() + ((Addr & SetMask) << 1);
    int64_t *V = Vals.data() + ((Addr & SetMask) << 1);
    int Slot = (P[0] & TagMask) == Addr   ? 0
               : (P[1] & TagMask) == Addr ? 1
                                          : -1;
    if (Slot >= 0) {
      int64_t Value = V[Slot];
      ++Stats.BypassHitMigrations;
      ++Stats.DeadFrees;
      if (P[Slot] & DirtyBit) {
        ++Stats.Evictions;
        ++Stats.WriteBacks;
        Stats.WriteBackWords += 1;
        if constexpr (Attrib) {
          if (Attr) {
            ++Attr->row(Info.RefId).EvictionsCaused;
            ++Attr->row(ibOf(Addr)[Slot]).EvictionsSuffered;
          }
        }
        Mem.write(Addr, Value);
      }
      P[Slot] = Invalid;
      return Value;
    }
    ++Stats.BypassReads;
    return Mem.read(Addr);
  }

  CacheConfig Config;
  MainMemory &Mem;
  CacheStats Stats;
  RefAttribution *Attr = nullptr;
  uint64_t SetMask; // Set index = Addr & SetMask (one-word lines).
  std::vector<uint64_t> Tags; // 2 per set; set s occupies [2s, 2s+2).
  std::vector<int64_t> Vals;  // Parallel to Tags.
  std::vector<uint16_t> InstalledBy; // Parallel to Tags.
};

/// The hot-path instantiation: no attribution code is generated at all,
/// so the predecoded interpreter's inlined read/write stay as lean as
/// before the profiler existed.
using TwoWayWB1Cache = TwoWayWB1CacheT<false>;
/// The profiling instantiation: carries the InstalledBy map and charges
/// every event to a RefId row. Selected by the simulator only when
/// SimConfig::Attribution is set.
using TwoWayWB1CacheAttr = TwoWayWB1CacheT<true>;

#undef URCM_CACHE_INLINE

} // namespace urcm

#endif // URCM_SIM_CACHE_H
