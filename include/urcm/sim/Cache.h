//===- urcm/sim/Cache.h - Data cache model ----------------------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative, write-back/write-allocate data cache with real data
/// storage and the paper's two hint bits:
///
///  * bypass (section 3.2 / 4.3): a bypassed read probes the cache first
///    (UmAm_LOAD); a hit migrates the value to the register and frees the
///    line with no write-back; a miss reads main memory directly. A
///    bypassed write goes straight to memory (UmAm_STORE).
///  * last-reference (section 3.1): a hit tagged last-reference frees the
///    line; a dirty dead line is dropped without write-back. For line
///    sizes above one word the line is instead demoted to
///    least-recently-used and its write-back kept (the paper's footnote-6
///    bookkeeping caveat).
///
/// The paper's preferred configuration is a one-word line (section 1).
/// Replacement: LRU, FIFO or Random (Belady MIN lives in TraceSim, which
/// replays a recorded trace). For a store miss on a one-word line the
/// allocate skips the memory fetch (the whole line is overwritten);
/// multi-word lines fetch on write-allocate.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SIM_CACHE_H
#define URCM_SIM_CACHE_H

#include "urcm/ir/IR.h" // MemRefInfo.
#include "urcm/support/RNG.h"

#include <cstdint>
#include <string>
#include <vector>

namespace urcm {

/// Hardware replacement policies (paper section 3.2 lists LRU, FIFO,
/// Random and MIN as all compatible with dead-line freeing).
enum class ReplacementPolicy { LRU, FIFO, Random };

const char *replacementPolicyName(ReplacementPolicy Policy);

/// Write policies. The paper's write-back model is the default; a
/// write-through/no-allocate option is provided as an ablation — under
/// write-through the dead bit can still free lines early but has no
/// write-back traffic to save.
enum class WritePolicy { WriteBack, WriteThrough };

const char *writePolicyName(WritePolicy Policy);

/// Cache geometry and policy.
struct CacheConfig {
  /// Total number of lines.
  uint32_t NumLines = 128;
  /// Associativity (lines per set). NumLines % Assoc must be 0.
  uint32_t Assoc = 2;
  /// Words per line; the paper assumes 1.
  uint32_t LineWords = 1;
  ReplacementPolicy Policy = ReplacementPolicy::LRU;
  WritePolicy Write = WritePolicy::WriteBack;
  /// Seed for the Random policy.
  uint64_t Seed = 0x5eed;

  friend bool operator==(const CacheConfig &, const CacheConfig &) = default;
};

/// Event counters. "Words" counters measure cache<->memory traffic in
/// machine words; CPU-side counters measure references.
struct CacheStats {
  uint64_t Reads = 0;      ///< Through-cache CPU reads.
  uint64_t Writes = 0;     ///< Through-cache CPU writes.
  uint64_t ReadHits = 0;
  uint64_t WriteHits = 0;
  uint64_t Fills = 0;          ///< Line fills from memory.
  uint64_t FillWords = 0;
  uint64_t WriteBacks = 0;     ///< Dirty evictions written to memory.
  uint64_t WriteBackWords = 0;
  uint64_t Evictions = 0;
  uint64_t DeadFrees = 0;              ///< Lines freed by last-ref tags.
  uint64_t DeadWriteBacksAvoided = 0;  ///< Dirty dead lines dropped.
  uint64_t BypassReads = 0;   ///< Bypassed reads served by memory.
  uint64_t BypassWrites = 0;  ///< Bypassed writes sent to memory.
  uint64_t BypassHitMigrations = 0; ///< UmAm_LOAD hits that freed a line.
  /// Words sent to memory by write-through stores (WriteThrough only).
  uint64_t WriteThroughWords = 0;
  /// Write-backs performed when the program ends (not part of steady
  /// traffic).
  uint64_t FlushWriteBackWords = 0;

  uint64_t misses() const { return Reads + Writes - ReadHits - WriteHits; }
  double hitRate() const {
    uint64_t Total = Reads + Writes;
    return Total == 0
               ? 0.0
               : static_cast<double>(ReadHits + WriteHits) / Total;
  }
  /// Traffic the data cache must handle, in words: CPU references that go
  /// through it plus its memory-side fills and write-backs. This is the
  /// quantity Figure 5's reduction is computed over.
  uint64_t cacheTraffic() const {
    return Reads + Writes + FillWords + WriteBackWords;
  }
  /// Memory/bus traffic in words (fills, write-backs, write-throughs
  /// and bypass words).
  uint64_t busTraffic() const {
    return FillWords + WriteBackWords + WriteThroughWords + BypassReads +
           BypassWrites;
  }

  std::string str() const;

  /// Field-wise equality; the sweep-engine tests assert byte-identical
  /// counters between the live cache, the replayer and the fast paths.
  friend bool operator==(const CacheStats &, const CacheStats &) = default;
};

/// Index arithmetic shared by the live cache and the trace replayers:
/// precomputes the set count and strength-reduces the per-access modulo
/// and division to masks/shifts when the geometry is a power of two
/// (always true for the paper configurations). Pure strength reduction —
/// results are identical to the naive `%` / `/` forms.
struct CacheGeometry {
  uint32_t NumSets = 1;
  uint32_t LineWords = 1;
  uint32_t SetMask = 0;   ///< NumSets - 1 when NumSets is a power of two.
  uint32_t LineShift = 0; ///< log2(LineWords) when a power of two.
  bool SetsPow2 = false;
  bool LinePow2 = false;

  CacheGeometry() = default;
  explicit CacheGeometry(const CacheConfig &Config) {
    NumSets = Config.NumLines / Config.Assoc;
    LineWords = Config.LineWords;
    SetsPow2 = NumSets != 0 && (NumSets & (NumSets - 1)) == 0;
    if (SetsPow2)
      SetMask = NumSets - 1;
    LinePow2 = LineWords != 0 && (LineWords & (LineWords - 1)) == 0;
    if (LinePow2)
      while ((1u << LineShift) < LineWords)
        ++LineShift;
  }

  uint64_t lineAddr(uint64_t Addr) const {
    if (LineWords == 1)
      return Addr;
    return LinePow2 ? Addr >> LineShift : Addr / LineWords;
  }
  uint32_t setOf(uint64_t LineAddress) const {
    return static_cast<uint32_t>(SetsPow2 ? LineAddress & SetMask
                                          : LineAddress % NumSets);
  }
};

/// A simple memory-access-time model used to reproduce the paper's
/// section-4.4 claim ("speedups of total memory access time by factors
/// of 2 or more"): a through-cache hit costs CacheHitCycles, every word
/// that crosses the memory bus (fill, write-back, write-through, bypass)
/// costs MemoryCycles.
struct LatencyModel {
  uint32_t CacheHitCycles = 1;
  uint32_t MemoryCycles = 10;
};

/// Total data memory-access time, in cycles, for the traffic in \p Stats.
uint64_t memoryAccessCycles(const CacheStats &Stats,
                            const LatencyModel &Model = LatencyModel());

/// Word-addressed main memory with a paranoid shadow copy: the shadow is
/// updated architecturally on every store, so any divergence between what
/// the cache hierarchy delivers and the shadow indicates an unsound
/// compiler hint.
class MainMemory {
public:
  explicit MainMemory(uint64_t SizeWords)
      : Data(SizeWords, 0), Shadow(SizeWords, 0) {}

  uint64_t size() const { return Data.size(); }

  int64_t read(uint64_t Addr) const { return Data[Addr]; }
  void write(uint64_t Addr, int64_t Value) { Data[Addr] = Value; }

  int64_t shadowRead(uint64_t Addr) const { return Shadow[Addr]; }
  void shadowWrite(uint64_t Addr, int64_t Value) { Shadow[Addr] = Value; }

private:
  std::vector<int64_t> Data;
  std::vector<int64_t> Shadow;
};

/// The data cache.
class DataCache {
public:
  DataCache(const CacheConfig &Config, MainMemory &Mem);

  /// Performs a data read at word address \p Addr with hint bits \p Info.
  int64_t read(uint64_t Addr, const MemRefInfo &Info);
  /// Performs a data write.
  void write(uint64_t Addr, int64_t Value, const MemRefInfo &Info);

  /// Writes back all dirty lines (end of program); counted separately.
  void flush();

  /// Frees every resident line whose addresses lie entirely within
  /// [\p Lo, \p Hi) — used for code-dead reclamation in the I-cache.
  /// Dirty lines are written back first (counts as DeadFrees).
  void invalidateRange(uint64_t Lo, uint64_t Hi);

  const CacheStats &stats() const { return Stats; }
  const CacheConfig &config() const { return Config; }

  /// True if the line containing \p Addr is currently resident.
  bool probe(uint64_t Addr) const;

private:
  struct Line {
    bool Valid = false;
    bool Dirty = false;
    uint64_t Tag = 0; // Line address.
    uint64_t LastUsed = 0;
    uint64_t InsertedAt = 0;
    std::vector<int64_t> Data;
  };

  uint32_t numSets() const { return Geometry.NumSets; }
  uint64_t lineAddr(uint64_t Addr) const { return Geometry.lineAddr(Addr); }
  uint32_t setOf(uint64_t LineAddress) const {
    return Geometry.setOf(LineAddress);
  }

  Line *findLine(uint64_t LineAddress);
  const Line *findLine(uint64_t LineAddress) const;
  /// Chooses a victim slot in the set (invalid slot preferred).
  Line *chooseVictim(uint32_t Set);
  void evict(Line &L, bool CountAsFlush = false);
  /// Loads the line for \p LineAddress into the cache (fetching words
  /// from memory unless \p FetchWords is false) and returns it.
  Line *allocate(uint64_t LineAddress, bool FetchWords);
  void touch(Line &L) { L.LastUsed = ++Tick; }
  void freeLine(Line &L, bool AvoidWriteBack);

  CacheConfig Config;
  CacheGeometry Geometry;
  MainMemory &Mem;
  CacheStats Stats;
  std::vector<Line> Lines; // Set-major: set s occupies [s*Assoc, ...).
  uint64_t Tick = 0;
  SplitMix64 Rng;
};

} // namespace urcm

#endif // URCM_SIM_CACHE_H
