//===- urcm/sim/TraceStream.h - Streaming trace pipeline --------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The streaming side of trace production. StreamedTrace is a TraceSink
/// that hands fixed-size chunks from the simulating (producer) thread to
/// a replaying (consumer) thread through a bounded SPSC queue, with the
/// consumer's drained buffers recycled back to the producer so the
/// steady state allocates nothing. streamTrace() wires both ends up:
/// generation runs on a dedicated thread while the caller replays each
/// chunk as it lands, so peak trace memory is O(queue depth x chunk)
/// instead of O(trace), and on multi-core hosts generation and replay
/// overlap.
///
/// Single-pass consumers (the lock-step multi-configuration replay and
/// the Mattson stack-distance sweep, urcm/sim/SweepEngine.h) stream;
/// multi-pass consumers (Belady MIN's next-use precomputation, the
/// occupancy analyzer) keep the materialized-trace path.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SIM_TRACESTREAM_H
#define URCM_SIM_TRACESTREAM_H

#include "urcm/sim/Simulator.h"
#include "urcm/support/SPSCQueue.h"

#include <functional>

namespace urcm {

/// A TraceSink bridging one producer (the simulator) to one consumer
/// over bounded queues. Producer side: chunk() (called by the
/// simulator) and producerDone(). Consumer side: next() / recycle().
class StreamedTrace : public TraceSink {
public:
  /// \p QueueDepth bounds in-flight chunks (the streaming memory
  /// ceiling is QueueDepth+2 chunks: in-flight plus one being filled
  /// and one being drained).
  explicit StreamedTrace(size_t QueueDepth = 4)
      : Full(QueueDepth), Free(QueueDepth) {}

  /// Producer side (TraceSink): blocks when the consumer is more than
  /// QueueDepth chunks behind.
  std::vector<TraceEvent> chunk(std::vector<TraceEvent> Chunk) override {
    Events += Chunk.size();
    ++Chunks;
    Full.push(std::move(Chunk));
    std::vector<TraceEvent> Recycled;
    Free.tryPop(Recycled); // Empty fresh buffer if none drained yet.
    return Recycled;
  }

  /// Producer side: no more chunks will arrive; unblocks next().
  void producerDone() { Full.close(); }

  /// Consumer side: pops the next chunk into \p Chunk (its previous
  /// contents are recycled to the producer). False at end of stream.
  bool next(std::vector<TraceEvent> &Chunk) {
    if (!Chunk.empty()) {
      Chunk.clear();
      Free.tryPush(std::move(Chunk));
      Chunk = std::vector<TraceEvent>();
    }
    return Full.pop(Chunk);
  }

  /// Total events streamed so far (consumer side: stable after the
  /// stream ends; used for trace-length accounting).
  uint64_t eventCount() const { return Events; }

  /// Chunks handed off so far (stable after the stream ends).
  uint64_t chunkCount() const { return Chunks; }

  /// Times the producer blocked on a full queue (consumer-bound stream).
  uint64_t producerStalls() const { return Full.pushWaits(); }

  /// Times the consumer blocked on an empty queue (producer-bound
  /// stream; includes the unavoidable wait for the first chunk).
  uint64_t consumerStalls() const { return Full.popWaits(); }

private:
  SPSCQueue<std::vector<TraceEvent>> Full;
  SPSCQueue<std::vector<TraceEvent>> Free;
  uint64_t Events = 0;
  uint64_t Chunks = 0;
};

/// Runs \p Produce — a closure that must pass \p Config (sink included)
/// to Simulator::run — on a dedicated thread, and delivers every trace
/// chunk, in order, to \p Consume on the calling thread while
/// generation continues. Returns the producer's SimResult. \p Config's
/// Sink field is overwritten; RecordTrace is cleared (the stream
/// replaces materialization).
///
/// \p ProducerTap, when set, observes every chunk *on the producer
/// thread* before it is handed downstream — a pass-through tee the
/// trace store uses to record the stream while the consumer replays it
/// (urcm/sim/TraceStore.h). It must not retain the pointer past the
/// call.
SimResult
streamTrace(SimConfig Config,
            const std::function<SimResult(const SimConfig &)> &Produce,
            const std::function<void(const TraceEvent *, size_t)> &Consume,
            size_t QueueDepth = 4, uint64_t *EventCount = nullptr,
            const std::function<void(const TraceEvent *, size_t)>
                &ProducerTap = {});

} // namespace urcm

#endif // URCM_SIM_TRACESTREAM_H
