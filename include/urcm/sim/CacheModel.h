//===- urcm/sim/CacheModel.h - Policy-generic cache replay ------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unified, policy-generic, attribution-aware set-associative cache
/// model: one write-back/write-through/bypass/dead-store core behind
/// every stats-only execution mode — sequential replay, the sweep
/// engine's multi-configuration streams, set-sharded parallel replay and
/// warm trace-store serving. The core is a member template over
/// `<CachePolicy Policy, bool Attrib>`: each (policy, attribution)
/// combination is compiled as a straight-line step with `if constexpr`
/// pruning every other policy's bookkeeping, and `feed()` dispatches
/// once per chunk, not once per event. Counter semantics are identical
/// to running the events through a live DataCache with the same
/// geometry and policy (the differential tests pin this bit for bit);
/// the specialized TwoWayWB1CacheT / LRUTwoWayStream fast paths keep
/// their own state encoding and are pinned against this model the same
/// way.
///
/// Policies beyond the live cache's (see urcm/sim/CachePolicy.h):
///
///  * MIN — Belady's optimal replacement [Bel66] over the recorded
///    trace's future knowledge (computeNextLineUses).
///  * LivenessBypass — LRU replacement plus a per-RefId dead-on-arrival
///    predictor: a 2-bit saturating counter per static reference,
///    trained up when a line it installed dies (evicted or dead-freed)
///    without a single reuse and down on the first reuse. A reference
///    predicted dead stops allocating — its misses are served straight
///    from memory with compiler-bypass accounting — except that every
///    16th predicted access still allocates, so changed behavior can
///    retrain. This is the hardware-learned analogue of the paper's
///    compiler bypass hints (Faldu's reuse-prediction baselines,
///    PAPERS.md); training reads the whole reference stream, so the
///    policy is replay-only and not set-shardable.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SIM_CACHEMODEL_H
#define URCM_SIM_CACHEMODEL_H

#include "urcm/sim/Cache.h"
#include "urcm/sim/Simulator.h"

#include <cassert>
#include <limits>
#include <memory>

namespace urcm {

/// For Belady MIN: Next[i] = index of the next through-cache access to
/// the same cache line after event i (UINT64_MAX if none). Depends only
/// on the trace and the line size, so MIN replays at different
/// geometries with the same line size can share one computation.
std::shared_ptr<const std::vector<uint64_t>>
computeNextLineUses(const std::vector<TraceEvent> &Trace,
                    uint32_t LineWords);

/// Stats-only replay of one cache configuration, advanced either one
/// trace event at a time (step) or a chunk at a time (feed; one policy
/// dispatch per chunk). Semantics (and counters) are identical to
/// running the events through a live DataCache with the same geometry.
class CacheModel {
  static constexpr uint64_t Never = std::numeric_limits<uint64_t>::max();
  /// LivenessBypass predictor constants: 2-bit saturating counters, a
  /// reference is predicted dead at PredictorDeadThreshold, and every
  /// PredictorProbePeriod-th predicted-dead access allocates anyway.
  static constexpr uint8_t PredictorDeadThreshold = 2;
  static constexpr uint8_t PredictorMax = 3;
  static constexpr uint64_t PredictorProbePeriod = 16;

  struct ModelLine {
    bool Valid = false;
    bool Dirty = false;
    /// Hit at least once since install (LivenessBypass training).
    bool Reused = false;
    /// SRRIP re-reference prediction value.
    uint8_t RRPV = 0;
    /// Installer RefId (attribution's EvictionsSuffered and the
    /// LivenessBypass predictor's training target).
    uint16_t InstalledBy = MemRefInfo::NoRefId;
    uint64_t Tag = 0;
    uint64_t LastUsed = 0;
    uint64_t InsertedAt = 0;
    uint64_t NextUse = Never; // For MIN.
  };

public:
  /// \p NextUses is required for CachePolicy::MIN (see
  /// computeNextLineUses; it must have been computed with this config's
  /// line size) and ignored otherwise.
  ///
  /// \p ShardDiv > 1 puts the model in set-shard mode: the caller feeds
  /// only the trace subsequence whose events map to cache sets of one
  /// residue class mod ShardDiv, and the model compacts those sets to
  /// globalSet / ShardDiv so it allocates 1/ShardDiv of the line state.
  /// Only cachePolicySetShardEligible() policies keep strictly per-set
  /// replacement state; for them, summing shard counters reproduces the
  /// sequential replay bit for bit.
  CacheModel(const CacheConfig &Config, CachePolicy Policy,
             std::shared_ptr<const std::vector<uint64_t>> NextUses =
                 nullptr,
             uint32_t ShardDiv = 1)
      : Config(Config), Geometry(Config), Policy(Policy),
        NextUses(std::move(NextUses)), Rng(Config.Seed),
        ShardDiv(ShardDiv),
        Lines(ShardDiv == 1
                  ? size_t(Config.NumLines)
                  : size_t((Config.NumLines / Config.Assoc + ShardDiv -
                            1) /
                           ShardDiv) *
                        Config.Assoc) {
    assert(Config.Assoc > 0 && Config.NumLines % Config.Assoc == 0 &&
           "associativity must divide the line count");
    assert((Policy != CachePolicy::MIN || this->NextUses) &&
           "MIN needs the next-use index (computeNextLineUses)");
    assert((ShardDiv == 1 || cachePolicySetShardEligible(Policy)) &&
           "only set-local policies can replay set shards");
    assert((Policy != CachePolicy::TreePLRU ||
            (Config.Assoc <= 64 &&
             (Config.Assoc & (Config.Assoc - 1)) == 0)) &&
           "TreePLRU needs a power-of-two associativity of at most 64");
    if (Policy == CachePolicy::TreePLRU)
      TreeBits.assign(Lines.size() / Config.Assoc, 0);
    if (Policy == CachePolicy::LivenessBypass)
      Dead.assign(size_t(1) << 16, 0); // Indexed directly by uint16 RefId.
  }

  /// See DataCache::setAttribution. Counter sites mirror the live
  /// cache's, so shard tables merged with operator+= reproduce a
  /// sequential (or live) run bit for bit.
  void setAttribution(RefAttribution *A) { Attr = A; }

  /// Processes trace event \p E, which sits at position \p Index of the
  /// trace (the index feeds MIN's future-knowledge lookup).
  void step(const TraceEvent &E, uint64_t Index) { feed(&E, 1, Index); }

  /// Processes \p Count consecutive trace events starting at trace
  /// position \p BaseIndex, with one (policy, attribution) dispatch for
  /// the whole chunk.
  void feed(const TraceEvent *Events, size_t Count, uint64_t BaseIndex) {
    if (Attr)
      feedImpl<true>(Events, Count, BaseIndex);
    else
      feedImpl<false>(Events, Count, BaseIndex);
  }

  /// Counts the remaining dirty lines as end-of-program flush
  /// write-backs and returns the final counters. Call exactly once.
  CacheStats finish() {
    for (ModelLine &L : Lines)
      if (L.Valid && L.Dirty)
        Stats.FlushWriteBackWords += Config.LineWords;
    return Stats;
  }

private:
  template <bool A>
  void feedImpl(const TraceEvent *Events, size_t Count,
                uint64_t BaseIndex) {
    switch (Policy) {
    case CachePolicy::LRU:
      return feedLoop<CachePolicy::LRU, A>(Events, Count, BaseIndex);
    case CachePolicy::FIFO:
      return feedLoop<CachePolicy::FIFO, A>(Events, Count, BaseIndex);
    case CachePolicy::Random:
      return feedLoop<CachePolicy::Random, A>(Events, Count, BaseIndex);
    case CachePolicy::MIN:
      return feedLoop<CachePolicy::MIN, A>(Events, Count, BaseIndex);
    case CachePolicy::TreePLRU:
      return feedLoop<CachePolicy::TreePLRU, A>(Events, Count, BaseIndex);
    case CachePolicy::SRRIP:
      return feedLoop<CachePolicy::SRRIP, A>(Events, Count, BaseIndex);
    case CachePolicy::LivenessBypass:
      return feedLoop<CachePolicy::LivenessBypass, A>(Events, Count,
                                                      BaseIndex);
    }
  }

  template <CachePolicy P, bool A>
  void feedLoop(const TraceEvent *Events, size_t Count,
                uint64_t BaseIndex) {
    for (size_t I = 0; I != Count; ++I)
      stepOne<P, A>(Events[I], BaseIndex + I);
  }

  /// The unified core. Every policy's variant of the write-back /
  /// write-through / bypass / dead-store semantics is this one
  /// function; `if constexpr` compiles each instantiation down to
  /// exactly the policy's own bookkeeping.
  template <CachePolicy P, bool A>
  void stepOne(const TraceEvent &E, uint64_t Index) {
    uint64_t LA = Geometry.lineAddr(E.Addr);
    if constexpr (A)
      CurRef = E.RefId;

    if (E.Info.Bypass) {
      if constexpr (A)
        ++Attr->row(E.RefId).Bypasses;
      if (!E.IsWrite) {
        if (ModelLine *L = find(LA)) {
          // Migration: dirty lines are written back first (see
          // DataCache::read for the soundness argument).
          ++Stats.BypassHitMigrations;
          if constexpr (P == CachePolicy::LivenessBypass)
            trainLive(*L); // The migration read is a reuse.
          if (Config.LineWords == 1) {
            ++Stats.DeadFrees;
            if (L->Dirty)
              evictLine<P, A>(*L);
            L->Valid = false;
            L->Dirty = false;
          } else {
            evictLine<P, A>(*L);
          }
        } else {
          ++Stats.BypassReads;
        }
      } else {
        ++Stats.BypassWrites;
      }
      return;
    }

    uint32_t Set = localSetOf(LA);
    ModelLine *Base = &Lines[static_cast<size_t>(Set) * Config.Assoc];
    ModelLine *L = nullptr;
    uint32_t Way = 0;
    for (uint32_t W = 0; W != Config.Assoc; ++W)
      if (Base[W].Valid && Base[W].Tag == LA) {
        L = Base + W;
        Way = W;
        break;
      }

    bool WTWrite =
        E.IsWrite && Config.Write == WritePolicy::WriteThrough;

    if constexpr (P == CachePolicy::LivenessBypass) {
      if (!L && !WTWrite && Dead[E.RefId] >= PredictorDeadThreshold &&
          ++Probe % PredictorProbePeriod != 0) {
        // Predicted dead on arrival: serve from memory without
        // allocating, with the same accounting as a compiler bypass
        // hint. The deterministic probe above lets a reference whose
        // behavior changed retrain.
        if (E.IsWrite)
          ++Stats.BypassWrites;
        else
          ++Stats.BypassReads;
        if constexpr (A)
          ++Attr->row(E.RefId).Bypasses;
        return;
      }
    }

    if (E.IsWrite)
      ++Stats.Writes;
    else
      ++Stats.Reads;

    if (WTWrite) {
      // Write-through / no-write-allocate (see DataCache::write).
      ++Stats.WriteThroughWords;
      if constexpr (A) {
        RefCounters &R = Attr->row(E.RefId);
        ++(L ? R.Hits : R.Misses);
      }
      if (L) {
        ++Stats.WriteHits;
        touchHit<P>(*L, Set, Way);
        if constexpr (P == CachePolicy::MIN)
          L->NextUse = (*NextUses)[Index];
        if (E.Info.LastRef)
          freeLine<P, A>(*L, Set, Way, E.RefId);
      }
      return;
    }

    if (L) {
      if (E.IsWrite)
        ++Stats.WriteHits;
      else
        ++Stats.ReadHits;
      if constexpr (A)
        ++Attr->row(E.RefId).Hits;
      touchHit<P>(*L, Set, Way);
    } else {
      if constexpr (A)
        ++Attr->row(E.RefId).Misses;
      Way = victimWay<P>(Base, Set);
      L = Base + Way;
      if (L->Valid)
        evictLine<P, A>(*L);
      L->Valid = true;
      L->Dirty = false;
      if constexpr (P == CachePolicy::LivenessBypass)
        L->InstalledBy = E.RefId; // The predictor trains without Attr.
      else
        L->InstalledBy = CurRef;
      L->Tag = LA;
      L->InsertedAt = ++Tick;
      L->LastUsed = Tick;
      installTouch<P>(*L, Set, Way);
      bool FetchWords = !E.IsWrite || Config.LineWords > 1;
      ++Stats.Fills;
      if (FetchWords)
        Stats.FillWords += Config.LineWords;
    }

    if constexpr (P == CachePolicy::MIN)
      L->NextUse = (*NextUses)[Index];
    if (E.IsWrite)
      L->Dirty = true;
    if (E.Info.LastRef)
      freeLine<P, A>(*L, Set, Way, E.RefId);
  }

  /// The index of LA's set within this model's line array: the global
  /// set index, compacted by the shard divisor in shard mode.
  uint32_t localSetOf(uint64_t LA) const {
    uint32_t Set = Geometry.setOf(LA);
    return ShardDiv == 1 ? Set : Set / ShardDiv;
  }

  ModelLine *find(uint64_t LA) {
    uint32_t Set = localSetOf(LA);
    ModelLine *Base = &Lines[static_cast<size_t>(Set) * Config.Assoc];
    for (uint32_t Way = 0; Way != Config.Assoc; ++Way)
      if (Base[Way].Valid && Base[Way].Tag == LA)
        return &Base[Way];
    return nullptr;
  }

  /// Recency update on a hit, shared with DataCache::touch mechanisms.
  template <CachePolicy P>
  void touchHit(ModelLine &L, uint32_t Set, uint32_t Way) {
    L.LastUsed = ++Tick;
    if constexpr (P == CachePolicy::SRRIP) {
      L.RRPV = 0;
    } else if constexpr (P == CachePolicy::TreePLRU) {
      if (Config.Assoc > 1)
        TreeBits[Set] =
            detail::treePLRUTouch(TreeBits[Set], Config.Assoc, Way);
    } else if constexpr (P == CachePolicy::LivenessBypass) {
      trainLive(L);
    }
    (void)Set;
    (void)Way;
  }

  /// Policy state for a fresh install (the tick fields are set by the
  /// caller): SRRIP inserts at the long re-reference interval, TreePLRU
  /// points the tree away from the installed way, LivenessBypass starts
  /// a new reuse generation.
  template <CachePolicy P>
  void installTouch(ModelLine &L, uint32_t Set, uint32_t Way) {
    if constexpr (P == CachePolicy::SRRIP) {
      L.RRPV = SRRIPInsertRRPV;
    } else if constexpr (P == CachePolicy::TreePLRU) {
      if (Config.Assoc > 1)
        TreeBits[Set] =
            detail::treePLRUTouch(TreeBits[Set], Config.Assoc, Way);
    } else if constexpr (P == CachePolicy::LivenessBypass) {
      L.Reused = false;
    }
    (void)L;
    (void)Set;
    (void)Way;
  }

  /// Victim way for a full set (callers take an invalid way first).
  /// Mechanisms are shared with DataCache::chooseVictim
  /// (urcm/sim/CachePolicy.h) so the two can never drift.
  template <CachePolicy P>
  uint32_t victimWay(ModelLine *Base, uint32_t Set) {
    for (uint32_t Way = 0; Way != Config.Assoc; ++Way)
      if (!Base[Way].Valid)
        return Way;
    if constexpr (P == CachePolicy::LRU ||
                  P == CachePolicy::LivenessBypass) {
      return detail::lruVictimWay(Base, Config.Assoc);
    } else if constexpr (P == CachePolicy::FIFO) {
      return detail::fifoVictimWay(Base, Config.Assoc);
    } else if constexpr (P == CachePolicy::Random) {
      return Rng.nextBelow(Config.Assoc);
    } else if constexpr (P == CachePolicy::MIN) {
      // Belady: evict the line whose next use is farthest in the
      // future.
      uint32_t Victim = 0;
      for (uint32_t Way = 1; Way != Config.Assoc; ++Way)
        if (Base[Way].NextUse > Base[Victim].NextUse)
          Victim = Way;
      return Victim;
    } else if constexpr (P == CachePolicy::TreePLRU) {
      return Config.Assoc == 1
                 ? 0
                 : detail::treePLRUVictimWay(TreeBits[Set], Config.Assoc);
    } else {
      static_assert(P == CachePolicy::SRRIP, "unhandled policy");
      return detail::srripVictimWay(Base, Config.Assoc);
    }
  }

  template <CachePolicy P, bool A> void evictLine(ModelLine &L) {
    if (L.Dirty) {
      ++Stats.WriteBacks;
      Stats.WriteBackWords += Config.LineWords;
    }
    ++Stats.Evictions;
    if constexpr (A) {
      ++Attr->row(CurRef).EvictionsCaused;
      ++Attr->row(L.InstalledBy).EvictionsSuffered;
    }
    if constexpr (P == CachePolicy::LivenessBypass)
      trainDead(L); // Died without reuse => installer learns "dead".
    L.Valid = false;
    L.Dirty = false;
  }

  template <CachePolicy P, bool A>
  void freeLine(ModelLine &L, uint32_t Set, uint32_t Way,
                uint16_t ByRef) {
    ++Stats.DeadFrees;
    if (Config.LineWords == 1) {
      if (L.Dirty) {
        ++Stats.DeadWriteBacksAvoided;
        if constexpr (A)
          ++Attr->row(ByRef).DeadWriteBacksSuppressed;
      }
      if constexpr (P == CachePolicy::LivenessBypass)
        trainDead(L); // Install + immediate free is dead-on-arrival.
      L.Valid = false;
      L.Dirty = false;
      return;
    }
    // Multi-word lines: other words in the line may still be live, so
    // the line is only demoted to the set's next victim (paper's
    // alternative), in whatever state the policy uses for that.
    L.LastUsed = 0;
    L.InsertedAt = 0;
    L.NextUse = Never;
    if constexpr (P == CachePolicy::SRRIP) {
      L.RRPV = SRRIPMaxRRPV;
    } else if constexpr (P == CachePolicy::TreePLRU) {
      if (Config.Assoc > 1)
        TreeBits[Set] =
            detail::treePLRUPointAt(TreeBits[Set], Config.Assoc, Way);
    }
    (void)Set;
    (void)Way;
  }

  /// First reuse of the line's current generation: the installer's
  /// dead counter decays toward "live".
  void trainLive(ModelLine &L) {
    if (L.Reused)
      return;
    L.Reused = true;
    uint8_t &C = Dead[L.InstalledBy];
    if (C > 0)
      --C;
  }

  /// The line died (evicted or dead-freed) without any reuse since its
  /// install: the installer's dead counter saturates toward "dead".
  void trainDead(ModelLine &L) {
    if (L.Reused)
      return;
    uint8_t &C = Dead[L.InstalledBy];
    if (C < PredictorMax)
      ++C;
  }

  CacheConfig Config;
  CacheGeometry Geometry;
  CachePolicy Policy;
  std::shared_ptr<const std::vector<uint64_t>> NextUses;
  SplitMix64 Rng;
  uint32_t ShardDiv;
  std::vector<ModelLine> Lines;
  /// Tree-PLRU node bits, one word per (local) set (TreePLRU only).
  std::vector<uint64_t> TreeBits;
  /// LivenessBypass: per-RefId 2-bit dead-on-arrival counters, indexed
  /// directly by the uint16 RefId (MemRefInfo::NoRefId shares one slot,
  /// mirroring the attribution overflow row).
  std::vector<uint8_t> Dead;
  uint64_t Probe = 0; ///< LivenessBypass predicted-dead access count.
  CacheStats Stats;
  RefAttribution *Attr = nullptr;
  uint16_t CurRef = MemRefInfo::NoRefId;
  uint64_t Tick = 0;
};

/// Replays \p Trace against a cache with geometry \p Config (the
/// Config.Policy field is ignored; \p Policy is used instead). Returns
/// the event counters.
CacheStats replayTrace(const std::vector<TraceEvent> &Trace,
                       const CacheConfig &Config, CachePolicy Policy);

} // namespace urcm

#endif // URCM_SIM_CACHEMODEL_H
