//===- urcm/sim/Occupancy.h - Dead cache-occupancy analysis -----*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies the paper's motivating claim (section 1 and the LRU
/// argument of section 3.2): cache cells are wasted holding values that
/// will never be read again — "if the average cacheable item is
/// referenced r times, then approximately 1/r of the cache cells will be
/// wasted".
///
/// The analyzer replays a recorded reference trace and, at a fixed
/// sampling interval, counts resident lines that are *dead*: no future
/// through-cache read of the line occurs before its next overwrite (or
/// the end of the trace). With the unified scheme's dead tags and
/// bypasses, dead residency should drop sharply — the "inaccessible
/// copies" have been kept out or evicted early.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SIM_OCCUPANCY_H
#define URCM_SIM_OCCUPANCY_H

#include "urcm/sim/TraceSim.h"

namespace urcm {

/// Result of a dead-occupancy scan.
struct OccupancyStats {
  uint64_t Samples = 0;
  /// Sum over samples of resident (valid) lines.
  uint64_t ResidentLineSamples = 0;
  /// Sum over samples of resident lines that are dead (never read again
  /// before overwrite or end of trace).
  uint64_t DeadLineSamples = 0;

  /// Mean fraction of the cache's lines that are occupied.
  double meanOccupancy(uint32_t NumLines) const {
    return Samples == 0 ? 0.0
                        : static_cast<double>(ResidentLineSamples) /
                              (static_cast<double>(Samples) * NumLines);
  }
  /// Mean fraction of *resident* lines that are dead — the paper's
  /// wasted-cell fraction.
  double deadFraction() const {
    return ResidentLineSamples == 0
               ? 0.0
               : static_cast<double>(DeadLineSamples) /
                     static_cast<double>(ResidentLineSamples);
  }
};

/// Replays \p Trace on an LRU cache with geometry \p Config, sampling
/// dead occupancy every \p SampleInterval events.
OccupancyStats analyzeDeadOccupancy(const std::vector<TraceEvent> &Trace,
                                    const CacheConfig &Config,
                                    uint64_t SampleInterval = 64);

} // namespace urcm

#endif // URCM_SIM_OCCUPANCY_H
