//===- urcm/sim/TraceSim.h - Trace-driven cache replay ----------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stats-only cache simulation over a recorded data-reference trace. This
/// is how Belady's MIN (the optimal replacement the paper cites [Bel66])
/// is evaluated: MIN needs future knowledge, which a recorded trace
/// provides. The same replayer also runs LRU/FIFO/Random so policies can
/// be compared on an identical reference stream (experiment E8).
///
/// Hint semantics (bypass, last-reference) match DataCache exactly; the
/// replayer just never touches data values.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SIM_TRACESIM_H
#define URCM_SIM_TRACESIM_H

#include "urcm/sim/Cache.h"
#include "urcm/sim/Simulator.h"

namespace urcm {

/// Replacement policies available to the replayer (superset of the live
/// cache's: adds Belady MIN).
enum class TracePolicy { LRU, FIFO, Random, MIN };

const char *tracePolicyName(TracePolicy Policy);

/// Replays \p Trace against a cache with geometry \p Config (the
/// Config.Policy field is ignored; \p Policy is used instead). Returns
/// the event counters.
CacheStats replayTrace(const std::vector<TraceEvent> &Trace,
                       const CacheConfig &Config, TracePolicy Policy);

} // namespace urcm

#endif // URCM_SIM_TRACESIM_H
