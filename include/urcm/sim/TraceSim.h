//===- urcm/sim/TraceSim.h - Trace-driven cache replay ----------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stats-only cache simulation over a recorded data-reference trace. This
/// is how Belady's MIN (the optimal replacement the paper cites [Bel66])
/// is evaluated: MIN needs future knowledge, which a recorded trace
/// provides. The same replayer also runs LRU/FIFO/Random so policies can
/// be compared on an identical reference stream (experiment E8).
///
/// Hint semantics (bypass, last-reference) match DataCache exactly; the
/// replayer just never touches data values. The replayer is exposed as a
/// step-driven class (TraceReplayer) so the sweep engine can advance many
/// configurations in lock-step over a single walk of the trace; step()
/// is defined inline because the sweep engine executes it hundreds of
/// millions of times (trace length x configurations).
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SIM_TRACESIM_H
#define URCM_SIM_TRACESIM_H

#include "urcm/sim/Cache.h"
#include "urcm/sim/Simulator.h"

#include <cassert>
#include <limits>
#include <memory>

namespace urcm {

/// Replacement policies available to the replayer (superset of the live
/// cache's: adds Belady MIN).
enum class TracePolicy { LRU, FIFO, Random, MIN };

const char *tracePolicyName(TracePolicy Policy);

/// The replay policy that models hardware policy \p Policy.
TracePolicy tracePolicyFor(ReplacementPolicy Policy);

/// For Belady MIN: Next[i] = index of the next through-cache access to
/// the same cache line after event i (UINT64_MAX if none). Depends only
/// on the trace and the line size, so MIN replays at different
/// geometries with the same line size can share one computation.
std::shared_ptr<const std::vector<uint64_t>>
computeNextLineUses(const std::vector<TraceEvent> &Trace,
                    uint32_t LineWords);

/// Stats-only replay of one cache configuration, advanced one trace
/// event at a time. Semantics (and counters) are identical to running
/// the events through a live DataCache with the same geometry.
class TraceReplayer {
  static constexpr uint64_t Never = std::numeric_limits<uint64_t>::max();

  struct ReplayLine {
    bool Valid = false;
    bool Dirty = false;
    /// Installer RefId (attribution's EvictionsSuffered); only
    /// maintained while attribution is on.
    uint16_t InstalledBy = MemRefInfo::NoRefId;
    uint64_t Tag = 0;
    uint64_t LastUsed = 0;
    uint64_t InsertedAt = 0;
    uint64_t NextUse = Never; // For MIN.
  };

public:
  /// \p NextUses is required for TracePolicy::MIN (see
  /// computeNextLineUses; it must have been computed with this config's
  /// line size) and ignored otherwise.
  ///
  /// \p ShardDiv > 1 puts the replayer in set-shard mode: the caller
  /// feeds only the trace subsequence whose events map to cache sets of
  /// one residue class mod ShardDiv, and the replayer compacts those
  /// sets to globalSet / ShardDiv so it allocates 1/ShardDiv of the
  /// line state. Replacement state is strictly per-set for LRU and
  /// FIFO, so summing shard counters reproduces the sequential replay
  /// bit for bit; Random (shared RNG sequence across sets) and MIN
  /// (global trace indexes) are not shardable.
  TraceReplayer(const CacheConfig &Config, TracePolicy Policy,
                std::shared_ptr<const std::vector<uint64_t>> NextUses =
                    nullptr,
                uint32_t ShardDiv = 1)
      : Config(Config), Geometry(Config), Policy(Policy),
        NextUses(std::move(NextUses)), Rng(Config.Seed),
        ShardDiv(ShardDiv),
        Lines(ShardDiv == 1
                  ? size_t(Config.NumLines)
                  : size_t((Config.NumLines / Config.Assoc + ShardDiv -
                            1) /
                           ShardDiv) *
                        Config.Assoc) {
    assert(Config.Assoc > 0 && Config.NumLines % Config.Assoc == 0 &&
           "associativity must divide the line count");
    assert((Policy != TracePolicy::MIN || this->NextUses) &&
           "MIN needs the next-use index (computeNextLineUses)");
    assert((ShardDiv == 1 || (Policy != TracePolicy::MIN &&
                              Policy != TracePolicy::Random)) &&
           "only set-local policies (LRU/FIFO) can replay set shards");
  }

  /// See DataCache::setAttribution. Counter sites mirror the live
  /// cache's, so shard tables merged with operator+= reproduce a
  /// sequential (or live) run bit for bit.
  void setAttribution(RefAttribution *A) { Attr = A; }

  /// Processes trace event \p E, which sits at position \p Index of the
  /// trace (the index feeds MIN's future-knowledge lookup).
  void step(const TraceEvent &E, uint64_t Index) {
    uint64_t LA = Geometry.lineAddr(E.Addr);
    if (Attr)
      CurRef = E.RefId;

    if (E.Info.Bypass) {
      if (Attr)
        ++Attr->row(E.RefId).Bypasses;
      if (!E.IsWrite) {
        if (ReplayLine *L = find(LA)) {
          // Migration: dirty lines are written back first (see
          // DataCache::read for the soundness argument).
          ++Stats.BypassHitMigrations;
          if (Config.LineWords == 1) {
            ++Stats.DeadFrees;
            if (L->Dirty)
              evict(*L);
            L->Valid = false;
            L->Dirty = false;
          } else {
            evict(*L);
          }
        } else {
          ++Stats.BypassReads;
        }
      } else {
        ++Stats.BypassWrites;
      }
      return;
    }

    if (E.IsWrite)
      ++Stats.Writes;
    else
      ++Stats.Reads;

    if (E.IsWrite && Config.Write == WritePolicy::WriteThrough) {
      // Write-through / no-write-allocate (see DataCache::write).
      ++Stats.WriteThroughWords;
      ReplayLine *L = find(LA);
      if (Attr) {
        RefCounters &R = Attr->row(E.RefId);
        ++(L ? R.Hits : R.Misses);
      }
      if (L) {
        ++Stats.WriteHits;
        L->LastUsed = ++Tick;
        if (Policy == TracePolicy::MIN)
          L->NextUse = (*NextUses)[Index];
        if (E.Info.LastRef)
          freeLine(*L, E.RefId);
      }
      return;
    }

    ReplayLine *L = find(LA);
    if (L) {
      if (E.IsWrite)
        ++Stats.WriteHits;
      else
        ++Stats.ReadHits;
      if (Attr)
        ++Attr->row(E.RefId).Hits;
      L->LastUsed = ++Tick;
    } else {
      if (Attr)
        ++Attr->row(E.RefId).Misses;
      uint32_t Set = localSetOf(LA);
      L = chooseVictim(Set);
      if (L->Valid)
        evict(*L);
      L->Valid = true;
      L->Dirty = false;
      L->InstalledBy = CurRef;
      L->Tag = LA;
      L->InsertedAt = ++Tick;
      L->LastUsed = Tick;
      bool FetchWords = !E.IsWrite || Config.LineWords > 1;
      ++Stats.Fills;
      if (FetchWords)
        Stats.FillWords += Config.LineWords;
    }

    if (Policy == TracePolicy::MIN)
      L->NextUse = (*NextUses)[Index];
    if (E.IsWrite)
      L->Dirty = true;
    if (E.Info.LastRef)
      freeLine(*L, E.RefId);
  }

  /// Counts the remaining dirty lines as end-of-program flush
  /// write-backs and returns the final counters. Call exactly once.
  CacheStats finish() {
    for (ReplayLine &L : Lines)
      if (L.Valid && L.Dirty)
        Stats.FlushWriteBackWords += Config.LineWords;
    return Stats;
  }

private:
  /// The index of LA's set within this replayer's line array: the
  /// global set index, compacted by the shard divisor in shard mode.
  uint32_t localSetOf(uint64_t LA) const {
    uint32_t Set = Geometry.setOf(LA);
    return ShardDiv == 1 ? Set : Set / ShardDiv;
  }

  ReplayLine *find(uint64_t LA) {
    uint32_t Set = localSetOf(LA);
    ReplayLine *Base = &Lines[static_cast<size_t>(Set) * Config.Assoc];
    for (uint32_t Way = 0; Way != Config.Assoc; ++Way)
      if (Base[Way].Valid && Base[Way].Tag == LA)
        return &Base[Way];
    return nullptr;
  }

  ReplayLine *chooseVictim(uint32_t Set) {
    ReplayLine *Base = &Lines[static_cast<size_t>(Set) * Config.Assoc];
    for (uint32_t Way = 0; Way != Config.Assoc; ++Way)
      if (!Base[Way].Valid)
        return &Base[Way];
    switch (Policy) {
    case TracePolicy::LRU: {
      ReplayLine *Victim = Base;
      for (uint32_t Way = 1; Way != Config.Assoc; ++Way)
        if (Base[Way].LastUsed < Victim->LastUsed)
          Victim = &Base[Way];
      return Victim;
    }
    case TracePolicy::FIFO: {
      ReplayLine *Victim = Base;
      for (uint32_t Way = 1; Way != Config.Assoc; ++Way)
        if (Base[Way].InsertedAt < Victim->InsertedAt)
          Victim = &Base[Way];
      return Victim;
    }
    case TracePolicy::Random:
      return &Base[Rng.nextBelow(Config.Assoc)];
    case TracePolicy::MIN: {
      // Belady: evict the line whose next use is farthest in the future.
      ReplayLine *Victim = Base;
      for (uint32_t Way = 1; Way != Config.Assoc; ++Way)
        if (Base[Way].NextUse > Victim->NextUse)
          Victim = &Base[Way];
      return Victim;
    }
    }
    return Base;
  }

  void evict(ReplayLine &L) {
    if (L.Dirty) {
      ++Stats.WriteBacks;
      Stats.WriteBackWords += Config.LineWords;
    }
    ++Stats.Evictions;
    if (Attr) {
      ++Attr->row(CurRef).EvictionsCaused;
      ++Attr->row(L.InstalledBy).EvictionsSuffered;
    }
    L.Valid = false;
    L.Dirty = false;
  }

  void freeLine(ReplayLine &L, uint16_t ByRef = MemRefInfo::NoRefId) {
    ++Stats.DeadFrees;
    if (Config.LineWords == 1) {
      if (L.Dirty) {
        ++Stats.DeadWriteBacksAvoided;
        if (Attr)
          ++Attr->row(ByRef).DeadWriteBacksSuppressed;
      }
      L.Valid = false;
      L.Dirty = false;
      return;
    }
    L.LastUsed = 0;
    L.InsertedAt = 0;
    L.NextUse = Never;
  }

  CacheConfig Config;
  CacheGeometry Geometry;
  TracePolicy Policy;
  std::shared_ptr<const std::vector<uint64_t>> NextUses;
  SplitMix64 Rng;
  uint32_t ShardDiv;
  std::vector<ReplayLine> Lines;
  CacheStats Stats;
  RefAttribution *Attr = nullptr;
  uint16_t CurRef = MemRefInfo::NoRefId;
  uint64_t Tick = 0;
};

/// Replays \p Trace against a cache with geometry \p Config (the
/// Config.Policy field is ignored; \p Policy is used instead). Returns
/// the event counters.
CacheStats replayTrace(const std::vector<TraceEvent> &Trace,
                       const CacheConfig &Config, TracePolicy Policy);

} // namespace urcm

#endif // URCM_SIM_TRACESIM_H
