//===- urcm/sim/TraceSim.h - Trace-driven cache replay ----------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Historical entry point for stats-only trace replay. The replayer
/// itself is now the unified policy-generic cache model
/// (urcm/sim/CacheModel.h); this header keeps the old names alive:
/// `TracePolicy` was the replayer's own four-policy enum (with a lossy
/// translation from the live cache's `ReplacementPolicy`) and is now an
/// alias of the single `CachePolicy`, and `TraceReplayer` is the
/// `CacheModel` itself. New code should include CacheModel.h directly.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SIM_TRACESIM_H
#define URCM_SIM_TRACESIM_H

#include "urcm/sim/CacheModel.h"

namespace urcm {

/// Historical name for the replay-side policy enum; now the unified
/// CachePolicy (urcm/sim/CachePolicy.h), so live and replay
/// configurations share one vocabulary with no translation.
using TracePolicy = CachePolicy;

/// Historical name for the policy-generic replay kernel.
using TraceReplayer = CacheModel;

} // namespace urcm

#endif // URCM_SIM_TRACESIM_H
