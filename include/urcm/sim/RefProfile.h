//===- urcm/sim/RefProfile.h - Per-reference profile export -----*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exports a RefAttribution table (urcm/sim/RefAttribution.h) joined
/// with the program's static reference table
/// (urcm/codegen/MachineIR.h RefTable) in two human-facing forms:
///
///  * a JSON profile (docs/profile_schema.json, validated by
///    scripts/validate_telemetry.py --profile) keyed by RefId, each
///    entry carrying the source location, the paper's reference form
///    (Am_LOAD / AmSp_STORE / UmAm_LOAD / UmAm_STORE), the classifier's
///    predicted hint bits and the attribution counters;
///
///  * a perf-annotate-style text report: the source listing with
///    per-line hit/miss/bypass/dead-write-back counts in the margin,
///    flagging **prediction mismatches** — a line with a
///    bypass-classified reference that still accumulates misses (the
///    bypass did not eliminate the line's cache traffic), and a line
///    whose last-ref-tagged reference had its installed lines evicted
///    by replacement before the dead tag could free them.
///
/// Both renderings are pure functions of (program, table): no
/// filesystem or telemetry coupling, so tests can golden-compare them.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_SIM_REFPROFILE_H
#define URCM_SIM_REFPROFILE_H

#include "urcm/codegen/MachineIR.h"
#include "urcm/sim/RefAttribution.h"

#include <string>
#include <vector>

namespace urcm {

/// One profile row: a static reference's identity joined with its
/// attribution counters.
struct RefProfileRow {
  uint16_t RefId = MemRefInfo::NoRefId;
  uint32_t CodeIndex = 0;
  SourceLoc Loc; ///< Invalid for compiler-synthesized references.
  std::string Function;
  bool IsStore = false;
  /// Paper reference form (section 4.3): Am_LOAD / AmSp_STORE for
  /// through-cache traffic, UmAm_LOAD / UmAm_STORE for bypassing.
  const char *Form = "";
  /// Classifier verdict: unambiguous / ambiguous / spill /
  /// spill-reload / unknown.
  const char *Class = "";
  bool Bypass = false;
  bool LastRef = false;
  RefCounters Counters;

  /// The last-ref prediction mismatch: this reference is dead-tagged,
  /// yet lines it installed were evicted by replacement (the tag never
  /// got the chance to free them).
  bool deadEvicted() const {
    return LastRef && Counters.EvictionsSuffered != 0;
  }
};

/// Joins \p Prog's reference table with \p Attr. Rows are in RefId
/// order; every numbered reference appears, executed or not.
std::vector<RefProfileRow> buildRefProfile(const MachineProgram &Prog,
                                           const RefAttribution &Attr);

/// Renders the profile as JSON following docs/profile_schema.json.
/// \p Workload names the program in the output (a file name or
/// built-in workload name; informational only).
std::string refProfileJSON(const MachineProgram &Prog,
                           const RefAttribution &Attr,
                           const std::string &Workload);

/// Renders the perf-annotate-style per-line report over \p Source (the
/// program text the line numbers refer to). Lines with no memory
/// references print blank margins; synthetic references (no source
/// location) are summarized per function below the listing, and the
/// overflow row (unnumbered events) last.
std::string refProfileAnnotate(const MachineProgram &Prog,
                               const RefAttribution &Attr,
                               const std::string &Source);

} // namespace urcm

#endif // URCM_SIM_REFPROFILE_H
