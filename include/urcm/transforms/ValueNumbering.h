//===- urcm/transforms/ValueNumbering.h - Local value numbering -*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block-local value numbering with alias-aware memory forwarding:
///
///  * pure instructions (ALU, compares, moves) computing an
///    already-available value are rewritten to register copies;
///  * a load from an address whose current value is available (from a
///    preceding load or store) is forwarded — but only when every
///    intervening store provably cannot alias the address, using the
///    same object/points-to machinery as the unified-management pass;
///  * calls invalidate all memory knowledge (the callee may write any
///    escaped or global location).
///
/// This is exactly where the paper's ambiguous-alias problem bites a
/// classical optimizer: `a[i] = ...; x = a[j];` cannot forward because
/// a[i] and a[j] are *sometimes aliases* (paper Figure 2). The tests
/// pin this behavior.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_TRANSFORMS_VALUENUMBERING_H
#define URCM_TRANSFORMS_VALUENUMBERING_H

#include "urcm/ir/IR.h"

#include <cstdint>

namespace urcm {

class AliasInfo;

/// Value-numbering statistics.
struct ValueNumberingStats {
  uint64_t RedundantComputations = 0;
  uint64_t ForwardedLoads = 0;
};

/// Runs local value numbering over \p F.
ValueNumberingStats numberValues(IRModule &M, IRFunction &F);

/// Same, against caller-provided alias facts (typically the
/// AnalysisManager's cached result).
ValueNumberingStats numberValues(IRModule &M, IRFunction &F,
                                 const AliasInfo &AA);

/// Module-wide convenience.
ValueNumberingStats numberValues(IRModule &M);

} // namespace urcm

#endif // URCM_TRANSFORMS_VALUENUMBERING_H
