//===- urcm/transforms/Transforms.h - IR cleanup passes ---------*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic scalar cleanup passes over URCM IR:
///
///  * copy propagation — the paper's Definition 1 remark in section
///    4.1.1.1 ("explicitly made copies of values can all share a single
///    aliased-object name (i.e., the compiler can perform copy
///    propagation)");
///  * dead code elimination — drops instructions whose results are never
///    used (calls, stores and prints are preserved);
///  * dead store elimination — removes stores to private scalar
///    locations whose value is provably never read (the *software*
///    counterpart of the paper's hardware dead-line dropping; keeping it
///    optional lets the benchmarks compare compiler-side vs cache-side
///    handling of dead values).
///
/// All passes preserve program output; the interpreter-based
/// differential tests enforce this.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_TRANSFORMS_TRANSFORMS_H
#define URCM_TRANSFORMS_TRANSFORMS_H

#include "urcm/ir/IR.h"

#include <cstdint>

namespace urcm {

class AnalysisManager;
class MemoryLiveness;

/// Statistics returned by the cleanup pipeline.
struct TransformStats {
  uint64_t CopiesPropagated = 0;
  uint64_t RedundantComputations = 0;
  uint64_t ForwardedLoads = 0;
  uint64_t DeadInstsRemoved = 0;
  uint64_t DeadStoresRemoved = 0;
};

/// Block-local copy propagation. Returns the number of operand rewrites.
uint64_t propagateCopies(IRFunction &F);

/// Removes side-effect-free instructions whose destinations are unused.
/// Returns the number of instructions removed.
uint64_t eliminateDeadCode(IRFunction &F);

/// Removes stores to tracked private scalar locations that are never
/// read afterwards. Returns the number of stores removed.
uint64_t eliminateDeadStores(IRModule &M, IRFunction &F);

/// Same, against caller-provided memory liveness (typically the
/// AnalysisManager's cached result).
uint64_t eliminateDeadStores(IRModule &M, IRFunction &F,
                             const MemoryLiveness &ML);

/// Pass-pipeline knobs.
struct TransformOptions {
  bool CopyPropagation = true;
  /// Local value numbering + alias-aware load forwarding (see
  /// urcm/transforms/ValueNumbering.h).
  bool ValueNumbering = true;
  bool DeadCodeElimination = true;
  /// Off by default: the paper's point is that the *cache* can drop dead
  /// values; enable to compare compiler-side elimination.
  bool DeadStoreElimination = false;
  /// Iterate until no pass makes progress (bounded).
  uint32_t MaxRounds = 4;
};

/// Runs the enabled passes to a fixed point over the whole module.
/// Alias and memory-liveness facts come from \p AM; every sub-pass that
/// changes a function invalidates its cached results (block structure —
/// CFG, dominators, loops — is preserved: these passes rewrite
/// instructions, never edges).
TransformStats runCleanupPipeline(IRModule &M,
                                  const TransformOptions &Options,
                                  AnalysisManager &AM);

/// Standalone form over a private analysis cache.
TransformStats runCleanupPipeline(IRModule &M,
                                  const TransformOptions &Options);

} // namespace urcm

#endif // URCM_TRANSFORMS_TRANSFORMS_H
