//===- urcm/transforms/LoopPromotion.h - Scalar loop promotion --*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register promotion of unaliased scalars across loops — the
/// register-side half of the paper's unified model (section 4.2 rule
/// [1]: "when a register will be used for a series of operations, the
/// loading and storing of the value into a register should bypass the
/// cache").
///
/// For every natural loop that contains no calls, each *unambiguous*
/// scalar location (a never-escaping global or frame scalar) referenced
/// inside the loop is promoted: one load in a new preheader, register
/// references inside the loop, and — when the loop stores the location —
/// one store on every exit edge (edges are split to keep the CFG and
/// definite-assignment exact). Alias analysis guarantees no pointer or
/// array reference can observe the location meanwhile, and the absence
/// of calls guarantees no other function can.
///
/// The pass iterates, so values promoted across an inner loop hoist
/// again across call-free outer loops.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_TRANSFORMS_LOOPPROMOTION_H
#define URCM_TRANSFORMS_LOOPPROMOTION_H

#include "urcm/ir/IR.h"

#include <cstdint>

namespace urcm {

class AnalysisManager;

/// Promotion statistics.
struct LoopPromotionStats {
  uint64_t PromotedLocations = 0;
  uint64_t RewrittenRefs = 0;
  uint64_t PreheadersCreated = 0;
  uint64_t ExitStoresInserted = 0;
};

/// Runs scalar loop promotion over \p F until no further promotion is
/// possible (bounded). Loops, CFG and alias facts come from \p AM; each
/// successful round invalidates \p F's cached results (the CFG changed).
LoopPromotionStats promoteLoopScalars(IRModule &M, IRFunction &F,
                                      AnalysisManager &AM);

/// Module-wide form over a shared analysis cache.
LoopPromotionStats promoteLoopScalars(IRModule &M, AnalysisManager &AM);

/// Standalone forms that run over a private analysis cache.
LoopPromotionStats promoteLoopScalars(IRModule &M, IRFunction &F);
LoopPromotionStats promoteLoopScalars(IRModule &M);

} // namespace urcm

#endif // URCM_TRANSFORMS_LOOPPROMOTION_H
