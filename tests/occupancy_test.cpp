//===- occupancy_test.cpp - Dead-occupancy analyzer tests ----------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/Occupancy.h"

#include "urcm/driver/Driver.h"
#include "urcm/workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace urcm;

namespace {

TraceEvent read(uint32_t Addr) { return TraceEvent{Addr, false, {}}; }
TraceEvent write(uint32_t Addr) { return TraceEvent{Addr, true, {}}; }

CacheConfig config(uint32_t Lines = 8, uint32_t Assoc = 2) {
  CacheConfig C;
  C.NumLines = Lines;
  C.Assoc = Assoc;
  C.LineWords = 1;
  return C;
}

} // namespace

TEST(Occupancy, SingleUseDataIsFullyDead) {
  // Each address touched exactly once: every resident line is dead.
  std::vector<TraceEvent> Trace;
  for (uint64_t A = 0; A != 64; ++A)
    Trace.push_back(read(A));
  OccupancyStats S = analyzeDeadOccupancy(Trace, config(), 1);
  EXPECT_GT(S.ResidentLineSamples, 0u);
  EXPECT_DOUBLE_EQ(S.deadFraction(), 1.0);
}

TEST(Occupancy, HotDataIsLive) {
  // One address read forever: the line is live at every sample except
  // (possibly) the last.
  std::vector<TraceEvent> Trace;
  for (int I = 0; I != 100; ++I)
    Trace.push_back(read(5));
  OccupancyStats S = analyzeDeadOccupancy(Trace, config(), 1);
  // Dead only at the final sample (no reads after the 100th).
  EXPECT_LT(S.deadFraction(), 0.05);
}

TEST(Occupancy, OverwriteKillsLine) {
  // Value written, read once, then overwritten: between the read and
  // the overwrite the line is dead.
  std::vector<TraceEvent> Trace = {write(3), read(3)};
  for (int I = 0; I != 20; ++I)
    Trace.push_back(read(100 + I)); // Filler; line 3 sits dead.
  Trace.push_back(write(3));
  Trace.push_back(read(3));
  OccupancyStats S = analyzeDeadOccupancy(Trace, config(32, 2), 1);
  EXPECT_GT(S.DeadLineSamples, 10u);
}

TEST(Occupancy, DeadTagFreesResidency) {
  // Same stream, with and without the last-ref tag on the final read.
  std::vector<TraceEvent> Plain = {write(3), read(3)};
  std::vector<TraceEvent> Tagged = Plain;
  Tagged[1].Info.LastRef = true;
  for (int I = 0; I != 20; ++I) {
    Plain.push_back(read(100 + I));
    Tagged.push_back(read(100 + I));
  }
  OccupancyStats SPlain = analyzeDeadOccupancy(Plain, config(32, 2), 1);
  OccupancyStats STagged =
      analyzeDeadOccupancy(Tagged, config(32, 2), 1);
  EXPECT_LT(STagged.DeadLineSamples, SPlain.DeadLineSamples);
}

TEST(Occupancy, BypassNeverOccupies) {
  std::vector<TraceEvent> Trace;
  for (uint64_t A = 0; A != 32; ++A) {
    TraceEvent E = read(A);
    E.Info.Bypass = true;
    Trace.push_back(E);
  }
  OccupancyStats S = analyzeDeadOccupancy(Trace, config(), 1);
  EXPECT_EQ(S.ResidentLineSamples, 0u);
}

TEST(Occupancy, UnifiedSchemeReducesDeadResidencyOnWorkload) {
  // The paper's motivating measurement on a real benchmark. Queen's
  // conventional dead residency comes mostly from unambiguous scalars,
  // which the unified scheme bypasses/tags. (Array-dominated benchmarks
  // like Sieve keep their dead residency: those lines are ambiguous and
  // carry no tags — exactly the paper's division of labor.)
  auto TraceFor = [&](bool Unified) {
    const Workload *W = findWorkload("Queen");
    CompileOptions Options;
    Options.IRGen.ScalarLocalsInMemory = true;
    Options.Scheme = Unified ? UnifiedOptions::unified()
                             : UnifiedOptions::conventional();
    SimConfig Sim;
    Sim.Cache.NumLines = 128;
    Sim.Cache.Assoc = 2;
    Sim.RecordTrace = true;
    DiagnosticEngine Diags;
    SimResult R = compileAndRun(W->Source, Options, Sim, Diags);
    EXPECT_TRUE(R.ok()) << R.Error;
    return R.Trace;
  };
  CacheConfig C;
  C.NumLines = 128;
  C.Assoc = 2;
  OccupancyStats Conv = analyzeDeadOccupancy(TraceFor(false), C);
  OccupancyStats Uni = analyzeDeadOccupancy(TraceFor(true), C);
  EXPECT_LT(Uni.deadFraction(), Conv.deadFraction());
}
