//===- codegen_test.cpp - URCM-RISC lowering tests -----------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/codegen/CodeGen.h"

#include "urcm/driver/Driver.h"
#include "urcm/workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace urcm;

namespace {

MachineProgram compileToMachine(const std::string &Source,
                                CompileOptions Options = {}) {
  DiagnosticEngine Diags;
  CompileResult R = compileProgram(Source, Options, Diags);
  EXPECT_TRUE(R.Ok) << Diags.str();
  return std::move(R.Program);
}

/// Structural sanity of a linked program.
void checkProgramInvariants(const MachineProgram &P) {
  ASSERT_FALSE(P.Code.empty());
  for (uint32_t Index = 0; Index != P.Code.size(); ++Index) {
    const MInst &I = P.Code[Index];
    switch (I.Op) {
    case MOpcode::Jmp:
    case MOpcode::Bnz:
    case MOpcode::Call:
      EXPECT_LT(I.Target, P.Code.size()) << "at " << Index;
      break;
    default:
      break;
    }
    if (I.Rd != mreg::None)
      EXPECT_LT(I.Rd, mreg::NumRegs);
    if (I.Rs1 != mreg::None)
      EXPECT_LT(I.Rs1, mreg::NumRegs);
    if (I.Rs2 != mreg::None)
      EXPECT_LT(I.Rs2, mreg::NumRegs);
  }
  // Entry stub: set SP, call main, halt.
  EXPECT_EQ(P.Code[P.EntryIndex].Op, MOpcode::Li);
  EXPECT_EQ(P.Code[P.EntryIndex].Rd, mreg::SP);
  EXPECT_EQ(P.Code[P.EntryIndex + 1].Op, MOpcode::Call);
  EXPECT_EQ(P.Code[P.EntryIndex + 2].Op, MOpcode::Halt);
}

} // namespace

TEST(CodeGen, MinimalProgram) {
  MachineProgram P = compileToMachine("void main() { print(1); }");
  checkProgramInvariants(P);
  ASSERT_EQ(P.Functions.size(), 1u);
  EXPECT_EQ(P.Functions[0].Name, "main");
  EXPECT_TRUE(P.Functions[0].IsLeaf);
}

TEST(CodeGen, GlobalLayoutSequential) {
  MachineProgram P = compileToMachine(
      "int g; int a[10]; int h; void main() { g = 1; h = 2; a[0] = 3; "
      "print(g + h + a[0]); }");
  ASSERT_EQ(P.Globals.size(), 3u);
  EXPECT_EQ(P.Globals[0].Address, 0x1000u);
  EXPECT_EQ(P.Globals[1].Address, 0x1001u);
  EXPECT_EQ(P.Globals[2].Address, 0x100Bu);
}

TEST(CodeGen, NonLeafSavesRA) {
  MachineProgram P = compileToMachine(
      "void f() { }\n"
      "void main() { f(); }");
  const MachineFunction *Main = nullptr;
  for (const auto &F : P.Functions)
    if (F.Name == "main")
      Main = &F;
  ASSERT_NE(Main, nullptr);
  EXPECT_FALSE(Main->IsLeaf);
  // main's code must contain a store of RA and a reload of it.
  bool SavesRA = false, RestoresRA = false;
  for (uint32_t I = Main->EntryIndex;
       I != Main->EntryIndex + Main->CodeSize; ++I) {
    const MInst &Inst = P.Code[I];
    if (Inst.Op == MOpcode::St && Inst.Rs2 == mreg::RA)
      SavesRA = true;
    if (Inst.Op == MOpcode::Ld && Inst.Rd == mreg::RA)
      RestoresRA = true;
  }
  EXPECT_TRUE(SavesRA);
  EXPECT_TRUE(RestoresRA);
}

TEST(CodeGen, SaveRestoreTaggedSpillClass) {
  MachineProgram P = compileToMachine(
      "int add(int a, int b) { return a + b; }\n"
      "void main() { print(add(1, 2)); }");
  unsigned SpillStores = 0, SpillReloads = 0;
  for (const MInst &I : P.Code) {
    if (I.Op == MOpcode::St && I.MemInfo.Class == RefClass::Spill)
      ++SpillStores;
    if (I.Op == MOpcode::Ld && I.MemInfo.Class == RefClass::SpillReload)
      ++SpillReloads;
  }
  EXPECT_GT(SpillStores, 0u);
  EXPECT_GT(SpillReloads, 0u);
}

TEST(CodeGen, ReloadsCarryDeadTagUnderUnifiedScheme) {
  CompileOptions Unified;
  Unified.Scheme = UnifiedOptions::unified();
  MachineProgram P = compileToMachine(
      "int id(int a) { return a; }\n"
      "void main() { print(id(7)); }",
      Unified);
  bool AnyTaggedReload = false;
  for (const MInst &I : P.Code)
    if (I.Op == MOpcode::Ld && I.MemInfo.Class == RefClass::SpillReload)
      AnyTaggedReload |= I.MemInfo.LastRef;
  EXPECT_TRUE(AnyTaggedReload);

  CompileOptions Conventional;
  Conventional.Scheme = UnifiedOptions::conventional();
  MachineProgram P2 = compileToMachine(
      "int id(int a) { return a; }\n"
      "void main() { print(id(7)); }",
      Conventional);
  for (const MInst &I : P2.Code) {
    EXPECT_FALSE(I.MemInfo.LastRef);
    EXPECT_FALSE(I.MemInfo.Bypass);
  }
}

TEST(CodeGen, BypassBitsReachMachineCode) {
  CompileOptions Unified;
  MachineProgram P = compileToMachine(
      "int g; void main() { g = 5; print(g); }", Unified);
  unsigned BypassRefs = 0;
  for (const MInst &I : P.Code)
    if (I.isMemAccess() && I.MemInfo.Bypass)
      ++BypassRefs;
  EXPECT_GE(BypassRefs, 2u) << "store+load of private global must bypass";
}

TEST(CodeGen, WorkloadInvariantsBothModes) {
  for (bool Era : {false, true}) {
    for (const Workload &W : paperWorkloads()) {
      CompileOptions Options;
      Options.IRGen.ScalarLocalsInMemory = Era;
      MachineProgram P = compileToMachine(W.Source, Options);
      checkProgramInvariants(P);
    }
  }
}

TEST(CodeGen, AssemblyPrinterMentionsEverything) {
  MachineProgram P = compileToMachine(
      "int g; void main() { g = 1; print(g); }");
  std::string Asm = P.str();
  EXPECT_NE(Asm.find("main:"), std::string::npos);
  EXPECT_NE(Asm.find("global g"), std::string::npos);
  EXPECT_NE(Asm.find("halt"), std::string::npos);
  EXPECT_NE(Asm.find("bypass"), std::string::npos);
}

TEST(CodeGen, FrameSizeCoversSlots) {
  MachineProgram P = compileToMachine(
      "void main() { int a[16]; a[0] = 1; a[15] = 2; print(a[0] + a[15]); }");
  const MachineFunction *Main = nullptr;
  for (const auto &F : P.Functions)
    if (F.Name == "main")
      Main = &F;
  ASSERT_NE(Main, nullptr);
  EXPECT_GE(Main->FrameSizeWords, 16u);
}
