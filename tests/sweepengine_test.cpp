//===- sweepengine_test.cpp - Sweep-engine equivalence tests -------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// The sweep engine's whole contract is bit-identity: every stats-only
// shortcut (lock-step multi-replay, the two-way LRU kernel, the
// hole-extended stack-distance pass, hint-stripped conventional replay)
// must reproduce the exact counters of the slow path it replaces. These
// tests pin that down against TraceReplayer, the live DataCache and
// full conventional-scheme simulations.
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/SweepEngine.h"

#include "urcm/driver/Driver.h"
#include "urcm/sim/TraceStream.h"
#include "urcm/support/RNG.h"
#include "urcm/support/ThreadPool.h"
#include "urcm/workloads/Workloads.h"

#include <algorithm>
#include <atomic>
#include <gtest/gtest.h>

using namespace urcm;

namespace {

CacheConfig config(uint32_t Lines, uint32_t Assoc, uint32_t LineWords = 1) {
  CacheConfig C;
  C.NumLines = Lines;
  C.Assoc = Assoc;
  C.LineWords = LineWords;
  return C;
}

/// A deterministic trace with locality, writes, and hint bits on a
/// fraction of events (hint placement need not be compiler-plausible:
/// the replayers must agree on any input).
std::vector<TraceEvent> hintedTrace(uint64_t Seed, size_t N,
                                    uint32_t AddressRange) {
  SplitMix64 Rng(Seed);
  std::vector<TraceEvent> Trace;
  Trace.reserve(N);
  uint32_t Hot = 0;
  for (size_t I = 0; I != N; ++I) {
    uint64_t Roll = Rng.nextBelow(100);
    TraceEvent E;
    E.Addr = static_cast<uint32_t>(
        Roll < 60 ? (Hot + Rng.nextBelow(8)) % AddressRange
                  : Rng.nextBelow(AddressRange));
    if (Roll == 99)
      Hot = static_cast<uint32_t>(Rng.nextBelow(AddressRange));
    E.IsWrite = Rng.nextBelow(4) == 0;
    E.Info.Bypass = Rng.nextBelow(10) == 0;
    E.Info.LastRef = !E.Info.Bypass && Rng.nextBelow(13) == 0;
    Trace.push_back(E);
  }
  return Trace;
}

std::vector<TraceEvent> stripped(std::vector<TraceEvent> Trace) {
  for (TraceEvent &E : Trace) {
    E.Info.Bypass = false;
    E.Info.LastRef = false;
  }
  return Trace;
}

/// Per-point ground truth for a sweep point: single-config replay of
/// the (possibly hint-stripped) trace.
CacheStats groundTruth(const std::vector<TraceEvent> &Trace,
                       const SweepPoint &P) {
  return replayTrace(P.IgnoreHints ? stripped(Trace) : Trace, P.Config,
                     P.Policy);
}

SimResult runWorkload(const std::string &Name, const CompileOptions &O,
                      const SimConfig &Sim) {
  const Workload *W = findWorkload(Name);
  EXPECT_NE(W, nullptr);
  DiagnosticEngine Diags;
  SimResult R = compileAndRun(W->Source, O, Sim, Diags);
  EXPECT_TRUE(R.ok()) << R.Error;
  return R;
}

TEST(ReplayMulti, MatchesPerPointReplayAcrossConfigurations) {
  std::vector<TraceEvent> Trace = hintedTrace(7, 20000, 600);
  std::vector<SweepPoint> Points = {
      // Two-way LRU kernel candidates, hinted and stripped.
      {config(128, 2), TracePolicy::LRU, false},
      {config(16, 2), TracePolicy::LRU, false},
      {config(16, 2), TracePolicy::LRU, true},
      {config(1024, 2), TracePolicy::LRU, true},
      // General path: other associativities, multi-word lines,
      // write-through, non-LRU policies, Belady MIN.
      {config(64, 4), TracePolicy::LRU, false},
      {config(32, 2, 2), TracePolicy::LRU, false},
      {config(32, 2, 4), TracePolicy::LRU, true},
      {config(64, 2), TracePolicy::FIFO, false},
      {config(64, 2), TracePolicy::Random, false},
      {config(64, 2), TracePolicy::MIN, false},
      {config(64, 2), TracePolicy::MIN, true},
      {config(8, 8), TracePolicy::LRU, false},
  };
  SweepPoint WriteThrough{config(64, 2), TracePolicy::LRU, false};
  WriteThrough.Config.Write = WritePolicy::WriteThrough;
  Points.push_back(WriteThrough);

  std::vector<CacheStats> Got = replayTraceMulti(Trace, Points);
  ASSERT_EQ(Got.size(), Points.size());
  for (size_t I = 0; I != Points.size(); ++I)
    EXPECT_EQ(Got[I], groundTruth(Trace, Points[I])) << "point " << I;
}

TEST(ReplayMulti, TwoWayKernelOddTrafficPatterns) {
  // Dead-tag and bypass interplay at tiny sizes (constant eviction
  // pressure) and at sizes big enough that nothing evicts.
  std::vector<TraceEvent> Trace = hintedTrace(21, 30000, 4000);
  std::vector<SweepPoint> Points;
  for (uint32_t Lines : {2u, 4u, 16u, 4096u})
    for (bool Ignore : {false, true})
      Points.push_back({config(Lines, 2), TracePolicy::LRU, Ignore});
  std::vector<CacheStats> Got = replayTraceMulti(Trace, Points);
  for (size_t I = 0; I != Points.size(); ++I)
    EXPECT_EQ(Got[I], groundTruth(Trace, Points[I])) << "point " << I;
}

TEST(StackDistance, MatchesReplayAtEveryFullyAssociativeSize) {
  std::vector<TraceEvent> Trace = hintedTrace(11, 20000, 500);
  std::vector<uint32_t> Sizes = {1, 2, 3, 8, 32, 100, 512};
  for (bool Ignore : {false, true}) {
    std::vector<CacheStats> Got =
        sweepLRUStackDistance(Trace, Sizes, Ignore);
    ASSERT_EQ(Got.size(), Sizes.size());
    for (size_t I = 0; I != Sizes.size(); ++I) {
      SweepPoint P{config(Sizes[I], Sizes[I]), TracePolicy::LRU, Ignore};
      EXPECT_EQ(Got[I], groundTruth(Trace, P))
          << "size " << Sizes[I] << " ignore=" << Ignore;
    }
  }
}

TEST(StackDistance, ReplaySweepPointsDispatchesToIt) {
  std::vector<TraceEvent> Trace = hintedTrace(13, 15000, 300);
  std::vector<SweepPoint> Points;
  for (uint32_t S : {4u, 16u, 64u})
    Points.push_back({config(S, S), TracePolicy::LRU, false});
  Points.push_back({config(32, 32), TracePolicy::LRU, true});
  ASSERT_TRUE(std::all_of(Points.begin(), Points.end(),
                          stackDistanceEligible));
  std::vector<CacheStats> Got = replaySweepPoints(Trace, Points);
  for (size_t I = 0; I != Points.size(); ++I)
    EXPECT_EQ(Got[I], groundTruth(Trace, Points[I])) << "point " << I;
}

TEST(ReplayEquivalence, WorkloadTraceMatchesLiveSimulation) {
  // The traced base run's own counters must equal a replay of its
  // trace — this is what lets the engine reuse base stats for the
  // matching sweep point.
  CompileOptions O;
  O.IRGen.ScalarLocalsInMemory = true;
  SimConfig Sim;
  Sim.Cache = config(128, 2);
  Sim.RecordTrace = true;
  SimResult R = runWorkload("Queen", O, Sim);
  EXPECT_EQ(R.Cache, replayTrace(R.Trace, Sim.Cache, TracePolicy::LRU));

  // And every sweep geometry replayed from this trace matches a
  // dedicated per-point replay.
  std::vector<SweepPoint> Points;
  for (uint32_t Lines : {16u, 64u, 256u, 1024u})
    for (bool Ignore : {false, true})
      Points.push_back({config(Lines, 2), TracePolicy::LRU, Ignore});
  std::vector<CacheStats> Got = replayTraceMulti(R.Trace, Points);
  for (size_t I = 0; I != Points.size(); ++I)
    EXPECT_EQ(Got[I], groundTruth(R.Trace, Points[I])) << "point " << I;
}

TEST(ReplayEquivalence, HintStrippedReplayMatchesConventionalRun) {
  // The derived-conventional trick: the unified pass only flips hint
  // bits on an identical instruction stream, so replaying the unified
  // trace with hints ignored must reproduce the conventional scheme's
  // live cache counters exactly — at the traced geometry and at others.
  CompileOptions Uni;
  Uni.IRGen.ScalarLocalsInMemory = true;
  Uni.Scheme = UnifiedOptions::unified();
  CompileOptions Conv = Uni;
  Conv.Scheme = UnifiedOptions::conventional();

  SimConfig Traced;
  Traced.Cache = config(128, 2);
  Traced.RecordTrace = true;
  SimResult U = runWorkload("Queen", Uni, Traced);

  for (uint32_t Lines : {16u, 128u}) {
    SimConfig Sim;
    Sim.Cache = config(Lines, 2);
    SimResult C = runWorkload("Queen", Conv, Sim);
    SweepPoint P{Sim.Cache, TracePolicy::LRU, /*IgnoreHints=*/true};
    EXPECT_EQ(C.Cache, replayTraceMulti(U.Trace, {P})[0])
        << "lines " << Lines;
    EXPECT_EQ(C.Output, U.Output);
    EXPECT_EQ(C.Steps, U.Steps);
  }
}

TEST(Engine, CompileOnceServesEveryPointAndReusesBase) {
  ThreadPool Pool(2);
  SweepEngine Engine(&Pool);
  std::atomic<int> Runs{0};

  CompileOptions O;
  O.Scheme = UnifiedOptions::unified();
  SimConfig Base;
  Base.Cache = config(128, 2);
  std::vector<SweepPoint> Points = {
      {config(16, 2), TracePolicy::LRU, false},
      {config(128, 2), TracePolicy::LRU, false}, // == base geometry
      {config(16, 2), TracePolicy::LRU, true},
  };
  auto Producer = [&](const SimConfig &Sim) {
    ++Runs;
    // The engine must capture the trace one way or the other: streamed
    // through a sink (no MIN points here) or materialized.
    EXPECT_TRUE(Sim.Sink != nullptr || Sim.RecordTrace);
    const Workload *W = findWorkload("Queen");
    DiagnosticEngine Diags;
    return compileAndRun(W->Source, O, Sim, Diags);
  };
  Engine.schedule("queen", "Queen", Base, Points, Producer);
  Engine.schedule("queen", "Queen", Base, Points, Producer); // no-op
  Engine.run();

  EXPECT_EQ(Runs.load(), 1);
  ASSERT_TRUE(Engine.done("queen"));
  const SimResult &BaseRun = Engine.base("queen");
  EXPECT_TRUE(BaseRun.ok());
  // The trace is freed once the points are served.
  EXPECT_TRUE(BaseRun.Trace.empty());
  // The point matching the base geometry is the base run's own stats.
  EXPECT_EQ(Engine.point("queen", 1), BaseRun.Cache);
  // Ground truth for the others from an independent traced run.
  SimConfig Traced = Base;
  Traced.RecordTrace = true;
  SimResult Fresh = runWorkload("Queen", O, Traced);
  for (size_t I = 0; I != Points.size(); ++I)
    EXPECT_EQ(Engine.point("queen", I), groundTruth(Fresh.Trace, Points[I]))
        << "point " << I;

  // Scheduling after run() still works and runs exactly once more.
  Engine.schedule("queen2", "Queen", Base, Points, Producer);
  Engine.run();
  EXPECT_EQ(Runs.load(), 2);
  EXPECT_EQ(Engine.point("queen2", 0), Engine.point("queen", 0));
}

TEST(Engine, ParallelExecutionIsDeterministic) {
  // The same experiment set run serially and across a pool must
  // produce identical counters (Random-policy replays are seeded per
  // point, so thread scheduling cannot leak in).
  CompileOptions O;
  O.Scheme = UnifiedOptions::unified();
  auto Schedule = [&](SweepEngine &Engine) {
    for (const char *Name : {"Queen", "Sieve"}) {
      SimConfig Base;
      Base.Cache = config(128, 2);
      std::vector<SweepPoint> Points = {
          {config(16, 2), TracePolicy::LRU, false},
          {config(64, 2), TracePolicy::Random, false},
          {config(64, 2), TracePolicy::MIN, true},
      };
      Engine.schedule(Name, Name, Base, Points,
                      [Name, O](const SimConfig &Sim) {
                        const Workload *W = findWorkload(Name);
                        DiagnosticEngine Diags;
                        return compileAndRun(W->Source, O, Sim, Diags);
                      });
    }
  };
  ThreadPool Serial(1), Wide(4);
  SweepEngine A(&Serial), B(&Wide);
  Schedule(A);
  Schedule(B);
  A.run();
  B.run();
  for (const char *Name : {"Queen", "Sieve"}) {
    EXPECT_EQ(A.base(Name).Cache, B.base(Name).Cache);
    for (size_t I = 0; I != 3; ++I)
      EXPECT_EQ(A.point(Name, I), B.point(Name, I)) << Name << " " << I;
  }
}

TEST(Engine, TraceReserveHintDoesNotChangeResults) {
  CompileOptions O;
  SimConfig Sim;
  Sim.Cache = config(128, 2);
  Sim.RecordTrace = true;
  SimResult Plain = runWorkload("Sieve", O, Sim);
  Sim.TraceSizeHint = 1 << 20;
  SimResult Hinted = runWorkload("Sieve", O, Sim);
  EXPECT_EQ(Plain.Cache, Hinted.Cache);
  EXPECT_EQ(Plain.Output, Hinted.Output);
  EXPECT_EQ(Plain.Trace.size(), Hinted.Trace.size());
  EXPECT_GE(Hinted.Trace.capacity(), size_t(1) << 20);
}

} // namespace

//===----------------------------------------------------------------------===//
// Streaming pipeline: chunk-fed replay and the producer/consumer stream
// must be bit-identical to the materialize-then-replay path.
//===----------------------------------------------------------------------===//

TEST(Streaming, ChunkedFeedMatchesBatchKernels) {
  std::vector<TraceEvent> Trace = hintedTrace(21, 30000, 700);
  std::vector<SweepPoint> Points = {
      {config(128, 2), TracePolicy::LRU, false},
      {config(16, 2), TracePolicy::LRU, true},
      {config(64, 4), TracePolicy::LRU, false},
      {config(32, 2, 2), TracePolicy::LRU, true},
      {config(64, 2), TracePolicy::FIFO, false},
      {config(8, 8), TracePolicy::LRU, false},
  };
  std::vector<CacheStats> Batch = replaySweepPoints(Trace, Points);
  // Awkward chunk sizes: prime-sized, single-event, and a short tail.
  for (size_t ChunkSize : {1u, 97u, 4096u, 29999u, 30000u, 50000u}) {
    SweepPointStream Stream(Points);
    for (size_t At = 0; At < Trace.size(); At += ChunkSize)
      Stream.feed(Trace.data() + At,
                  std::min(ChunkSize, Trace.size() - At));
    EXPECT_EQ(Stream.finish(), Batch) << "chunk size " << ChunkSize;
  }
}

TEST(Streaming, ChunkedFeedMatchesBatchStackDistance) {
  // All points stack-eligible: the streaming path uses the growable
  // Fenwick trees with no up-front reserve (geometric growth).
  std::vector<TraceEvent> Trace = hintedTrace(22, 30000, 500);
  std::vector<SweepPoint> Points;
  for (uint32_t Lines : {2u, 8u, 32u, 100u, 256u, 1024u}) {
    Points.push_back({config(Lines, Lines), TracePolicy::LRU, false});
    Points.push_back({config(Lines, Lines), TracePolicy::LRU, true});
  }
  ASSERT_TRUE(std::all_of(Points.begin(), Points.end(),
                          stackDistanceEligible));
  std::vector<CacheStats> Batch = replaySweepPoints(Trace, Points);
  for (size_t ChunkSize : {63u, 7000u}) {
    SweepPointStream Stream(Points);
    for (size_t At = 0; At < Trace.size(); At += ChunkSize)
      Stream.feed(Trace.data() + At,
                  std::min(ChunkSize, Trace.size() - At));
    EXPECT_EQ(Stream.finish(), Batch) << "chunk size " << ChunkSize;
  }
  // Per-point ground truth too (not just batch-vs-stream agreement).
  SweepPointStream Stream(Points);
  Stream.feed(Trace.data(), Trace.size());
  std::vector<CacheStats> Out = Stream.finish();
  for (size_t I = 0; I != Points.size(); ++I)
    EXPECT_EQ(Out[I], groundTruth(Trace, Points[I])) << "point " << I;
}

TEST(Streaming, StreamTraceMatchesBufferedRun) {
  // streamTrace must deliver exactly the trace RecordTrace would have
  // materialized — same events, same order, same SimResult — across
  // chunk-boundary shapes (including a short final chunk).
  CompileOptions O;
  O.Scheme = UnifiedOptions::unified();
  SimConfig Buffered;
  Buffered.Cache = config(128, 2);
  Buffered.RecordTrace = true;
  SimResult Base = runWorkload("Queen", O, Buffered);
  ASSERT_FALSE(Base.Trace.empty());

  const Workload *W = findWorkload("Queen");
  for (uint32_t ChunkEvents : {7u, 1024u, 1u << 20}) {
    SimConfig Streamed = Buffered;
    Streamed.TraceChunkEvents = ChunkEvents;
    std::vector<TraceEvent> Collected;
    uint64_t Events = 0;
    SimResult R = streamTrace(
        Streamed,
        [&](const SimConfig &Sim) {
          EXPECT_NE(Sim.Sink, nullptr);
          EXPECT_FALSE(Sim.RecordTrace);
          DiagnosticEngine Diags;
          return compileAndRun(W->Source, O, Sim, Diags);
        },
        [&](const TraceEvent *E, size_t N) {
          Collected.insert(Collected.end(), E, E + N);
        },
        /*QueueDepth=*/2, &Events);
    ASSERT_TRUE(R.ok()) << R.Error;
    EXPECT_TRUE(R.Trace.empty()); // Streamed, not materialized.
    EXPECT_EQ(R.Output, Base.Output);
    EXPECT_EQ(R.Steps, Base.Steps);
    EXPECT_EQ(R.Cache, Base.Cache);
    EXPECT_EQ(Events, Base.Trace.size());
    ASSERT_EQ(Collected.size(), Base.Trace.size())
        << "chunk " << ChunkEvents;
    for (size_t I = 0; I != Collected.size(); ++I) {
      ASSERT_EQ(Collected[I].Addr, Base.Trace[I].Addr) << "event " << I;
      ASSERT_EQ(Collected[I].IsWrite, Base.Trace[I].IsWrite)
          << "event " << I;
      ASSERT_EQ(Collected[I].Info.Bypass, Base.Trace[I].Info.Bypass)
          << "event " << I;
      ASSERT_EQ(Collected[I].Info.LastRef, Base.Trace[I].Info.LastRef)
          << "event " << I;
    }
  }
}

TEST(Streaming, ConsumerExceptionPropagatesWithoutDeadlock) {
  CompileOptions O;
  SimConfig Sim;
  Sim.Cache = config(64, 2);
  Sim.TraceChunkEvents = 64; // Many chunks with a tiny queue.
  const Workload *W = findWorkload("Queen");
  EXPECT_THROW(
      streamTrace(
          Sim,
          [&](const SimConfig &Cfg) {
            DiagnosticEngine Diags;
            return compileAndRun(W->Source, O, Cfg, Diags);
          },
          [&](const TraceEvent *, size_t) {
            throw std::runtime_error("consumer failed");
          },
          /*QueueDepth=*/1),
      std::runtime_error);
}
