//===- tracesim_test.cpp - Trace replay and Belady MIN tests -------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/TraceSim.h"

#include "urcm/support/RNG.h"

#include <gtest/gtest.h>

using namespace urcm;

namespace {

TraceEvent read(uint32_t Addr) { return TraceEvent{Addr, false, {}}; }
TraceEvent write(uint32_t Addr) { return TraceEvent{Addr, true, {}}; }

TraceEvent readLast(uint32_t Addr) {
  TraceEvent E{Addr, false, {}};
  E.Info.LastRef = true;
  return E;
}

TraceEvent readBypass(uint32_t Addr) {
  TraceEvent E{Addr, false, {}};
  E.Info.Bypass = true;
  return E;
}

CacheConfig config(uint32_t Lines, uint32_t Assoc, uint32_t LineWords = 1) {
  CacheConfig C;
  C.NumLines = Lines;
  C.Assoc = Assoc;
  C.LineWords = LineWords;
  return C;
}

/// A deterministic pseudo-random trace with some locality.
std::vector<TraceEvent> randomTrace(uint64_t Seed, size_t N,
                                    uint64_t AddressRange) {
  SplitMix64 Rng(Seed);
  std::vector<TraceEvent> Trace;
  Trace.reserve(N);
  uint64_t Hot = 0;
  for (size_t I = 0; I != N; ++I) {
    uint64_t Roll = Rng.nextBelow(100);
    uint64_t Addr = Roll < 60 ? Hot + Rng.nextBelow(8)
                              : Rng.nextBelow(AddressRange);
    if (Roll == 99)
      Hot = Rng.nextBelow(AddressRange);
    bool IsWrite = Rng.nextBelow(4) == 0;
    Trace.push_back(IsWrite ? write(Addr) : read(Addr));
  }
  return Trace;
}

} // namespace

TEST(TraceSim, BasicHitMissCounting) {
  std::vector<TraceEvent> Trace = {read(1), read(1), write(1), read(2)};
  CacheStats S = replayTrace(Trace, config(4, 2), TracePolicy::LRU);
  EXPECT_EQ(S.Reads, 3u);
  EXPECT_EQ(S.Writes, 1u);
  EXPECT_EQ(S.ReadHits, 1u);
  EXPECT_EQ(S.WriteHits, 1u);
  EXPECT_EQ(S.Fills, 2u);
}

TEST(TraceSim, LastRefDropsWriteBack) {
  std::vector<TraceEvent> Trace = {write(1), readLast(1), read(9),
                                   read(17)};
  // Single line: without the dead tag, reading 9 would write back 1.
  CacheStats S = replayTrace(Trace, config(1, 1), TracePolicy::LRU);
  EXPECT_EQ(S.DeadFrees, 1u);
  EXPECT_EQ(S.DeadWriteBacksAvoided, 1u);
  EXPECT_EQ(S.WriteBacks, 0u);
}

TEST(TraceSim, BypassDoesNotAllocate) {
  std::vector<TraceEvent> Trace = {readBypass(1), readBypass(1), read(1)};
  CacheStats S = replayTrace(Trace, config(4, 2), TracePolicy::LRU);
  EXPECT_EQ(S.BypassReads, 2u);
  EXPECT_EQ(S.Reads, 1u);
  EXPECT_EQ(S.ReadHits, 0u) << "bypass reads must not have warmed the set";
}

TEST(TraceSim, MINBeatsOrTiesEveryPolicyOnRandomTraces) {
  // Belady's MIN is provably optimal in miss count; any violation means
  // the replayer's future-knowledge bookkeeping is broken.
  for (uint64_t Seed : {1ull, 2ull, 3ull, 4ull, 5ull, 6ull, 7ull, 8ull}) {
    auto Trace = randomTrace(Seed, 4000, 512);
    for (auto Geometry : {config(16, 2), config(32, 4), config(8, 8)}) {
      CacheStats Min = replayTrace(Trace, Geometry, TracePolicy::MIN);
      for (TracePolicy P : {TracePolicy::LRU, TracePolicy::FIFO,
                            TracePolicy::Random}) {
        CacheStats Other = replayTrace(Trace, Geometry, P);
        EXPECT_LE(Min.misses(), Other.misses())
            << "seed=" << Seed << " policy=" << cachePolicyName(P)
            << " lines=" << Geometry.NumLines;
      }
    }
  }
}

TEST(TraceSim, LRUMatchesLiveCacheSemantics) {
  // The replayer and DataCache must agree on hit/miss/fill/write-back
  // accounting for the same reference stream.
  auto Trace = randomTrace(11, 2000, 256);
  CacheConfig Geometry = config(16, 4);

  MainMemory Mem(4096);
  DataCache Live(Geometry, Mem);
  for (const TraceEvent &E : Trace) {
    if (E.IsWrite)
      Live.write(E.Addr, 1, E.Info);
    else
      Live.read(E.Addr, E.Info);
  }
  CacheStats Replayed = replayTrace(Trace, Geometry, TracePolicy::LRU);

  EXPECT_EQ(Live.stats().Reads, Replayed.Reads);
  EXPECT_EQ(Live.stats().Writes, Replayed.Writes);
  EXPECT_EQ(Live.stats().ReadHits, Replayed.ReadHits);
  EXPECT_EQ(Live.stats().WriteHits, Replayed.WriteHits);
  EXPECT_EQ(Live.stats().Fills, Replayed.Fills);
  EXPECT_EQ(Live.stats().WriteBacks, Replayed.WriteBacks);
  EXPECT_EQ(Live.stats().FillWords, Replayed.FillWords);
}

TEST(TraceSim, ConservationInvariants) {
  // Misses == fills; every eviction of a dirty line is a write-back or a
  // dead drop; hits + misses == refs.
  for (uint64_t Seed : {21ull, 22ull, 23ull}) {
    auto Trace = randomTrace(Seed, 3000, 300);
    for (TracePolicy P : {TracePolicy::LRU, TracePolicy::FIFO,
                          TracePolicy::Random, TracePolicy::MIN}) {
      CacheStats S = replayTrace(Trace, config(16, 2), P);
      EXPECT_EQ(S.Reads + S.Writes,
                S.ReadHits + S.WriteHits + S.misses());
      EXPECT_EQ(S.misses(), S.Fills);
    }
  }
}

TEST(TraceSim, MultiWordLineSharing) {
  // Consecutive addresses share a 4-word line: 1 fill serves 4 reads.
  std::vector<TraceEvent> Trace = {read(0), read(1), read(2), read(3)};
  CacheStats S = replayTrace(Trace, config(4, 2, 4), TracePolicy::LRU);
  EXPECT_EQ(S.Fills, 1u);
  EXPECT_EQ(S.ReadHits, 3u);
  EXPECT_EQ(S.FillWords, 4u);
}

TEST(TraceSim, EmptyTrace) {
  CacheStats S = replayTrace({}, config(4, 2), TracePolicy::MIN);
  EXPECT_EQ(S.Reads + S.Writes, 0u);
  EXPECT_EQ(S.Fills, 0u);
}
