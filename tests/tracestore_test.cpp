//===- tracestore_test.cpp - Persistent trace store tests ----------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// The trace store's contract has three legs, each pinned here:
//
//  1. fidelity — encode→decode is bit-identical for any trace (fuzzed
//     hint bits, odd chunk sizes, adversarial address patterns), and a
//     sweep served warm from the store produces counters bit-identical
//     to the cold live run, for every shard count;
//  2. robustness — corrupt, truncated, stale or foreign files are
//     rejected with a clean diagnostic (never an assert or a crash) and
//     the engine falls back to live simulation automatically;
//  3. the warm path really is warm — on a store hit the producer (and
//     the Simulator inside it) is never invoked.
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/TraceStore.h"

#include "urcm/driver/Driver.h"
#include "urcm/sim/SweepEngine.h"
#include "urcm/support/RNG.h"
#include "urcm/support/Telemetry.h"
#include "urcm/support/ThreadPool.h"
#include "urcm/workloads/Workloads.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <memory>

using namespace urcm;

namespace {

bool operator==(const TraceEvent &A, const TraceEvent &B) {
  return A.Addr == B.Addr && A.IsWrite == B.IsWrite &&
         A.Info.Bypass == B.Info.Bypass &&
         A.Info.LastRef == B.Info.LastRef && A.RefId == B.RefId;
}

/// A deterministic trace with locality, writes, and hint bits on a
/// fraction of events; interleaves a "stack" region and a far "global"
/// region the way real traces do (the codec's multi-base delta ring
/// exists for exactly this shape). Reference ids mix the patterns the
/// v2 ref-predicted bit keys on: straight-line runs (Prev+1), back
/// jumps (loops), and unnumbered (NoRefId) stretches.
std::vector<TraceEvent> hintedTrace(uint64_t Seed, size_t N) {
  SplitMix64 Rng(Seed);
  std::vector<TraceEvent> Trace;
  Trace.reserve(N);
  uint32_t Stack = 0xFF000, Global = 0x1000;
  uint16_t Ref = 0;
  for (size_t I = 0; I != N; ++I) {
    uint64_t Roll = Rng.nextBelow(100);
    TraceEvent E;
    if (Roll < 45)
      E.Addr = Stack - static_cast<uint32_t>(Rng.nextBelow(16));
    else if (Roll < 90)
      E.Addr = Global + static_cast<uint32_t>(Rng.nextBelow(64));
    else
      E.Addr = static_cast<uint32_t>(Rng.nextBelow(0xFFFFFF));
    E.IsWrite = Rng.nextBelow(4) == 0;
    E.Info.Bypass = Rng.nextBelow(10) == 0;
    E.Info.LastRef = !E.Info.Bypass && Rng.nextBelow(13) == 0;
    if (Roll < 70)
      Ref = static_cast<uint16_t>(Ref + 1); // Straight-line: predicted.
    else if (Roll < 85)
      Ref = static_cast<uint16_t>(Rng.nextBelow(300)); // Branch target.
    E.RefId = Roll < 95 ? Ref : MemRefInfo::NoRefId;
    Trace.push_back(E);
  }
  return Trace;
}

/// Fresh scratch directory per test case, removed on destruction.
struct ScratchDir {
  std::filesystem::path Path;
  explicit ScratchDir(const char *Name) {
    Path = std::filesystem::temp_directory_path() /
           (std::string("urcm_tracestore_") + Name + "." +
            std::to_string(::getpid()));
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }
};

/// Round-trips \p Trace through a store file written in \p BatchSize
/// batches and returns the decoded trace.
std::vector<TraceEvent> roundTrip(const std::vector<TraceEvent> &Trace,
                                  const std::string &Dir, uint64_t Hash,
                                  size_t BatchSize) {
  DiagnosticEngine Diags;
  TraceStoreWriter Writer;
  EXPECT_TRUE(Writer.open(Dir, Hash, Diags));
  for (size_t I = 0; I < Trace.size(); I += BatchSize)
    Writer.append(Trace.data() + I,
                  std::min(BatchSize, Trace.size() - I));
  SimResult Summary;
  Summary.Halted = true;
  EXPECT_TRUE(Writer.commit(Summary, Diags));
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();

  TraceStoreReader Reader;
  EXPECT_EQ(Reader.open(traceStorePath(Dir, Hash), Hash, Diags),
            TraceStoreReader::OpenStatus::Ok)
      << Diags.str();
  EXPECT_EQ(Reader.eventCount(), Trace.size());
  std::vector<TraceEvent> Decoded;
  EXPECT_TRUE(Reader.readAll(Decoded));
  return Decoded;
}

TEST(TraceStoreCodec, RoundTripFuzzedPayloads) {
  // Chunk payloads at sizes that stress the 5-bit packing (every bit
  // phase) and the varint stream, including empty and single-event.
  for (size_t N : {size_t(0), size_t(1), size_t(2), size_t(3), size_t(7),
                   size_t(8), size_t(63), size_t(1000), size_t(65537)}) {
    std::vector<TraceEvent> Trace = hintedTrace(N * 31 + 5, N);
    std::vector<uint8_t> Encoded;
    detail::encodeChunkPayload(Trace.data(), Trace.size(), Encoded);
    std::vector<TraceEvent> Decoded;
    ASSERT_TRUE(detail::decodeChunkPayload(Encoded.data(), Encoded.size(),
                                           Trace.size(), Decoded))
        << "N=" << N;
    ASSERT_EQ(Decoded.size(), Trace.size());
    for (size_t I = 0; I != Trace.size(); ++I)
      ASSERT_TRUE(Decoded[I] == Trace[I]) << "N=" << N << " event " << I;
  }
}

TEST(TraceStoreCodec, ExtremeAddressDeltas) {
  // Alternating far-apart addresses (worst case for delta coding) and
  // the u32 extremes must still round-trip exactly.
  std::vector<TraceEvent> Trace;
  for (uint32_t I = 0; I != 100; ++I) {
    TraceEvent E;
    E.Addr = (I % 2) ? 0xFFFFFFFFu - I : I;
    E.IsWrite = I % 3 == 0;
    E.Info.Bypass = I % 5 == 0;
    E.Info.LastRef = I % 7 == 0;
    Trace.push_back(E);
  }
  std::vector<uint8_t> Encoded;
  detail::encodeChunkPayload(Trace.data(), Trace.size(), Encoded);
  std::vector<TraceEvent> Decoded;
  ASSERT_TRUE(detail::decodeChunkPayload(Encoded.data(), Encoded.size(),
                                         Trace.size(), Decoded));
  for (size_t I = 0; I != Trace.size(); ++I)
    EXPECT_TRUE(Decoded[I] == Trace[I]) << "event " << I;
}

TEST(TraceStoreCodec, RejectsMalformedPayloads) {
  std::vector<TraceEvent> Trace = hintedTrace(11, 500);
  std::vector<uint8_t> Encoded;
  detail::encodeChunkPayload(Trace.data(), Trace.size(), Encoded);
  std::vector<TraceEvent> Decoded;
  // Truncations at every prefix length must fail cleanly, never read
  // out of bounds (ASan-checked in the sanitizer presets).
  for (size_t Cut = 0; Cut != Encoded.size(); ++Cut)
    EXPECT_FALSE(detail::decodeChunkPayload(Encoded.data(), Cut,
                                            Trace.size(), Decoded))
        << "prefix " << Cut;
  // Trailing garbage is malformed too: the event count says when to
  // stop, so spare bytes mean the payload is not what was encoded.
  std::vector<uint8_t> Long = Encoded;
  Long.push_back(0x00);
  EXPECT_FALSE(detail::decodeChunkPayload(Long.data(), Long.size(),
                                          Trace.size(), Decoded));
}

TEST(TraceStoreFile, RoundTripAcrossBatchAndChunkBoundaries) {
  ScratchDir Dir("file_roundtrip");
  // Batch sizes that land chunk flushes everywhere: single events, odd
  // primes, exactly one chunk, just past one chunk.
  const uint32_t CE = TraceStoreWriter::ChunkEvents;
  size_t Batches[] = {1, 977, CE, CE + 1, 3 * CE + 17};
  std::vector<TraceEvent> Trace = hintedTrace(42, 2 * CE + 1234);
  for (size_t Batch : Batches) {
    std::vector<TraceEvent> Decoded =
        roundTrip(Trace, Dir.str(), /*Hash=*/Batch, Batch);
    ASSERT_EQ(Decoded.size(), Trace.size()) << "batch " << Batch;
    for (size_t I = 0; I != Trace.size(); ++I)
      ASSERT_TRUE(Decoded[I] == Trace[I])
          << "batch " << Batch << " event " << I;
  }
}

TEST(TraceStoreFile, SummaryRoundTripsEveryField) {
  ScratchDir Dir("summary");
  SimResult R;
  R.Halted = true;
  R.Error = "";
  R.Steps = 123456789;
  R.Output = {-5, 0, 42, INT64_MIN, INT64_MAX};
  R.Cache.Reads = 1;
  R.Cache.Writes = 2;
  R.Cache.ReadHits = 3;
  R.Cache.WriteHits = 4;
  R.Cache.Fills = 5;
  R.Cache.FillWords = 6;
  R.Cache.WriteBacks = 7;
  R.Cache.WriteBackWords = 8;
  R.Cache.Evictions = 9;
  R.Cache.DeadFrees = 10;
  R.Cache.DeadWriteBacksAvoided = 11;
  R.Cache.BypassReads = 12;
  R.Cache.BypassWrites = 13;
  R.Cache.BypassHitMigrations = 14;
  R.Cache.WriteThroughWords = 15;
  R.Cache.FlushWriteBackWords = 16;
  R.Refs.Unambiguous = 17;
  R.Refs.Ambiguous = 18;
  R.Refs.Spill = 19;
  R.Refs.Unknown = 20;
  R.Refs.Bypassed = 21;
  R.Refs.LastRefTagged = 22;
  R.ICache.Reads = 23;
  R.ICache.FillWords = 24;
  R.InstructionFetches = 25;
  R.BypassTransitions = 26;
  R.CoherenceViolations = 27;
  R.Trace = hintedTrace(1, 10); // Must NOT be stored.

  DiagnosticEngine Diags;
  TraceStoreWriter Writer;
  ASSERT_TRUE(Writer.open(Dir.str(), 99, Diags));
  std::vector<TraceEvent> Trace = hintedTrace(2, 100);
  Writer.append(Trace.data(), Trace.size());
  ASSERT_TRUE(Writer.commit(R, Diags)) << Diags.str();

  TraceStoreReader Reader;
  ASSERT_EQ(Reader.open(traceStorePath(Dir.str(), 99), 99, Diags),
            TraceStoreReader::OpenStatus::Ok)
      << Diags.str();
  const SimResult &S = Reader.summary();
  EXPECT_EQ(S.Halted, R.Halted);
  EXPECT_EQ(S.Error, R.Error);
  EXPECT_EQ(S.Steps, R.Steps);
  EXPECT_EQ(S.Output, R.Output);
  EXPECT_EQ(S.Cache, R.Cache);
  EXPECT_EQ(S.Refs.Unambiguous, R.Refs.Unambiguous);
  EXPECT_EQ(S.Refs.Ambiguous, R.Refs.Ambiguous);
  EXPECT_EQ(S.Refs.Spill, R.Refs.Spill);
  EXPECT_EQ(S.Refs.Unknown, R.Refs.Unknown);
  EXPECT_EQ(S.Refs.Bypassed, R.Refs.Bypassed);
  EXPECT_EQ(S.Refs.LastRefTagged, R.Refs.LastRefTagged);
  EXPECT_EQ(S.ICache, R.ICache);
  EXPECT_EQ(S.InstructionFetches, R.InstructionFetches);
  EXPECT_EQ(S.BypassTransitions, R.BypassTransitions);
  EXPECT_EQ(S.CoherenceViolations, R.CoherenceViolations);
  EXPECT_TRUE(S.Trace.empty());
}

TEST(TraceStoreFile, StreamedDecodeMatchesReadAll) {
  ScratchDir Dir("streamed");
  std::vector<TraceEvent> Trace = hintedTrace(77, 150000);
  DiagnosticEngine Diags;
  TraceStoreWriter Writer;
  ASSERT_TRUE(Writer.open(Dir.str(), 7, Diags));
  Writer.append(Trace.data(), Trace.size());
  SimResult Summary;
  Summary.Halted = true;
  ASSERT_TRUE(Writer.commit(Summary, Diags));

  TraceStoreReader Reader;
  ASSERT_EQ(Reader.open(traceStorePath(Dir.str(), 7), 7, Diags),
            TraceStoreReader::OpenStatus::Ok);
  std::vector<TraceEvent> Streamed;
  ASSERT_TRUE(streamStoredTrace(
      Reader, [&](const TraceEvent *Events, size_t Count) {
        Streamed.insert(Streamed.end(), Events, Events + Count);
      }));
  ASSERT_EQ(Streamed.size(), Trace.size());
  for (size_t I = 0; I != Trace.size(); ++I)
    ASSERT_TRUE(Streamed[I] == Trace[I]) << "event " << I;
}

TEST(TraceStoreFile, RejectsCorruptionCleanly) {
  ScratchDir Dir("corrupt");
  std::vector<TraceEvent> Trace = hintedTrace(5, 80000);
  DiagnosticEngine Diags;
  TraceStoreWriter Writer;
  ASSERT_TRUE(Writer.open(Dir.str(), 1234, Diags));
  Writer.append(Trace.data(), Trace.size());
  SimResult Summary;
  Summary.Halted = true;
  ASSERT_TRUE(Writer.commit(Summary, Diags));
  const std::string Path = traceStorePath(Dir.str(), 1234);
  std::vector<char> Bytes;
  {
    std::ifstream In(Path, std::ios::binary);
    Bytes.assign(std::istreambuf_iterator<char>(In),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(Bytes.size(), 100u);

  auto ExpectInvalid = [&](const std::vector<char> &Mutated,
                           const char *What) {
    std::ofstream(Path, std::ios::binary)
        .write(Mutated.data(), static_cast<long>(Mutated.size()));
    DiagnosticEngine D;
    TraceStoreReader R;
    EXPECT_EQ(R.open(Path, 1234, D), TraceStoreReader::OpenStatus::Invalid)
        << What;
    EXPECT_TRUE(D.hasErrors()) << What;
  };

  // Missing file: a miss, not an error.
  {
    DiagnosticEngine D;
    TraceStoreReader R;
    EXPECT_EQ(R.open(Dir.str() + "/absent.urctrc", 1234, D),
              TraceStoreReader::OpenStatus::NotFound);
    EXPECT_FALSE(D.hasErrors()) << D.str();
  }
  // Stale: hash mismatch (recorded for another program/config).
  {
    DiagnosticEngine D;
    TraceStoreReader R;
    EXPECT_EQ(R.open(Path, 4321, D), TraceStoreReader::OpenStatus::Invalid);
    EXPECT_TRUE(D.hasErrors());
    EXPECT_NE(D.str().find("hash"), std::string::npos) << D.str();
  }
  // Flipped byte mid-chunk: CRC mismatch.
  {
    std::vector<char> M = Bytes;
    M[M.size() / 2] ^= 0x40;
    ExpectInvalid(M, "flipped payload byte");
  }
  // Truncations at every region: header, chunk payload, summary,
  // footer.
  for (size_t Keep : {size_t(10), size_t(40), Bytes.size() / 2,
                      Bytes.size() - 9, Bytes.size() - 1})
    ExpectInvalid(std::vector<char>(Bytes.begin(), Bytes.begin() + Keep),
                  "truncated file");
  // Trailing garbage after the footer.
  {
    std::vector<char> M = Bytes;
    M.push_back('x');
    ExpectInvalid(M, "trailing bytes");
  }
  // Not a store file at all.
  ExpectInvalid({'h', 'e', 'l', 'l', 'o'}, "bad magic");

  // The original bytes still serve (the corruption tests wrote over the
  // file; restore and confirm the baseline is intact end to end).
  std::ofstream(Path, std::ios::binary)
      .write(Bytes.data(), static_cast<long>(Bytes.size()));
  DiagnosticEngine D;
  TraceStoreReader R;
  ASSERT_EQ(R.open(Path, 1234, D), TraceStoreReader::OpenStatus::Ok);
  std::vector<TraceEvent> Decoded;
  ASSERT_TRUE(R.readAll(Decoded));
  ASSERT_EQ(Decoded.size(), Trace.size());
}

TEST(TraceContentHash, TracksTraceAffectingInputsOnly) {
  const Workload *W = findWorkload("Queen");
  ASSERT_NE(W, nullptr);
  DiagnosticEngine Diags;
  CompileOptions Options;
  CompileResult R = compileProgram(W->Source, Options, Diags);
  ASSERT_TRUE(R.Ok) << Diags.str();
  SimConfig Sim;

  const uint64_t H = traceContentHash(R.Program, Sim);
  EXPECT_EQ(H, traceContentHash(R.Program, Sim)) << "not deterministic";

  // Pure observers must not change the key: engine choice, sinks,
  // chunking, reserve hints, trace recording.
  SimConfig Observer = Sim;
  Observer.Engine = SimEngine::Switch;
  Observer.RecordTrace = true;
  Observer.TraceChunkEvents = 17;
  Observer.TraceSizeHint = 999;
  EXPECT_EQ(H, traceContentHash(R.Program, Observer));

  // Everything that can change the trace or the stored summary must.
  SimConfig C1 = Sim;
  C1.MaxSteps = 1000;
  EXPECT_NE(H, traceContentHash(R.Program, C1));
  SimConfig C2 = Sim;
  C2.Cache.NumLines *= 2;
  EXPECT_NE(H, traceContentHash(R.Program, C2));
  SimConfig C3 = Sim;
  C3.Paranoid = !C3.Paranoid;
  EXPECT_NE(H, traceContentHash(R.Program, C3));
  SimConfig C4 = Sim;
  C4.ModelICache = true;
  EXPECT_NE(H, traceContentHash(R.Program, C4));

  MachineProgram P1 = R.Program;
  P1.Code.back().Imm ^= 1;
  EXPECT_NE(H, traceContentHash(P1, Sim));
  MachineProgram P2 = R.Program;
  for (MInst &I : P2.Code)
    if (I.isMemAccess()) {
      I.MemInfo.Bypass = !I.MemInfo.Bypass;
      break;
    }
  EXPECT_NE(H, traceContentHash(P2, Sim));
  MachineProgram P3 = R.Program;
  P3.StackTop += 64;
  EXPECT_NE(H, traceContentHash(P3, Sim));
}

//===----------------------------------------------------------------------===//
// Engine integration: warm == cold, bit for bit, with no Simulator.
//===----------------------------------------------------------------------===//

/// Compiles \p Name and returns a producer that counts its invocations.
struct CountedProducer {
  std::shared_ptr<MachineProgram> Prog;
  std::shared_ptr<std::atomic<int>> Calls =
      std::make_shared<std::atomic<int>>(0);

  explicit CountedProducer(const std::string &Name) {
    const Workload *W = findWorkload(Name);
    EXPECT_NE(W, nullptr);
    DiagnosticEngine Diags;
    CompileOptions Options;
    CompileResult R = compileProgram(W->Source, Options, Diags);
    EXPECT_TRUE(R.Ok) << Diags.str();
    Prog = std::make_shared<MachineProgram>(std::move(R.Program));
  }

  SweepEngine::Producer producer() const {
    auto P = Prog;
    auto C = Calls;
    return [P, C](const SimConfig &Config) {
      C->fetch_add(1);
      Simulator S(Config);
      return S.run(*P);
    };
  }
};

/// A point mix covering every replay family: stack-distance sizes,
/// the two-way kernel, the generic replayer, Random, Belady MIN (the
/// materialized-trace path), hinted and hint-stripped.
std::vector<SweepPoint> mixedPoints() {
  auto Cfg = [](uint32_t Lines, uint32_t Assoc) {
    CacheConfig C;
    C.NumLines = Lines;
    C.Assoc = Assoc;
    C.LineWords = 1;
    return C;
  };
  return {
      {Cfg(128, 2), TracePolicy::LRU, false},
      {Cfg(128, 2), TracePolicy::LRU, true},
      {Cfg(64, 4), TracePolicy::LRU, false},
      {Cfg(64, 64), TracePolicy::LRU, false},
      {Cfg(64, 2), TracePolicy::Random, false},
      {Cfg(64, 2), TracePolicy::MIN, false},
      {Cfg(64, 2), TracePolicy::MIN, true},
  };
}

TEST(TraceStoreEngine, WarmMatchesColdAcrossShardCounts) {
  ScratchDir Dir("engine");
  CountedProducer Queen("Queen");
  std::vector<SweepPoint> Points = mixedPoints();
  SimConfig Base;
  const uint64_t Hash = traceContentHash(*Queen.Prog, Base);

  // Cold: records. The producer runs exactly once.
  DiagnosticEngine ColdDiags;
  SweepEngine Cold;
  Cold.setTraceStore(Dir.str(), &ColdDiags);
  Cold.schedule("exp", "g", Base, Points, Queen.producer(), Hash);
  Cold.run();
  EXPECT_EQ(Queen.Calls->load(), 1);
  EXPECT_FALSE(ColdDiags.hasErrors()) << ColdDiags.str();
  ASSERT_TRUE(Cold.base("exp").ok());
  ASSERT_TRUE(std::filesystem::exists(traceStorePath(Dir.str(), Hash)));

  // Warm, across shard counts {1, 7, auto}: the producer is never
  // invoked again and every counter is bit-identical to cold.
  for (uint32_t Shards : {1u, 7u, 0u}) {
    DiagnosticEngine WarmDiags;
    SweepEngine Warm;
    Warm.setShards(Shards);
    Warm.setTraceStore(Dir.str(), &WarmDiags);
    Warm.schedule("exp", "g", Base, Points, Queen.producer(), Hash);
    Warm.run();
    EXPECT_EQ(Queen.Calls->load(), 1) << "shards " << Shards;
    EXPECT_FALSE(WarmDiags.hasErrors()) << WarmDiags.str();
    const SimResult &CB = Cold.base("exp"), &WB = Warm.base("exp");
    EXPECT_EQ(WB.Steps, CB.Steps) << "shards " << Shards;
    EXPECT_EQ(WB.Output, CB.Output) << "shards " << Shards;
    EXPECT_EQ(WB.Cache, CB.Cache) << "shards " << Shards;
    for (size_t P = 0; P != Points.size(); ++P)
      EXPECT_EQ(Warm.point("exp", P), Cold.point("exp", P))
          << "shards " << Shards << " point " << P;
  }
}

TEST(TraceStoreEngine, NoStoreMatchesStore) {
  // The store must be invisible in the numbers: an engine with no
  // store configured produces the same counters as cold and warm.
  ScratchDir Dir("plain");
  CountedProducer Sieve("Sieve");
  std::vector<SweepPoint> Points = mixedPoints();
  SimConfig Base;
  const uint64_t Hash = traceContentHash(*Sieve.Prog, Base);

  SweepEngine Plain;
  Plain.schedule("exp", "g", Base, Points, Sieve.producer(), Hash);
  Plain.run();

  SweepEngine Cold;
  Cold.setTraceStore(Dir.str());
  Cold.schedule("exp", "g", Base, Points, Sieve.producer(), Hash);
  Cold.run();

  SweepEngine Warm;
  Warm.setTraceStore(Dir.str());
  Warm.schedule("exp", "g", Base, Points, Sieve.producer(), Hash);
  Warm.run();
  EXPECT_EQ(Sieve.Calls->load(), 2); // Plain + cold; warm served.

  for (size_t P = 0; P != Points.size(); ++P) {
    EXPECT_EQ(Cold.point("exp", P), Plain.point("exp", P)) << P;
    EXPECT_EQ(Warm.point("exp", P), Plain.point("exp", P)) << P;
  }
}

TEST(TraceStoreEngine, FallsBackToLiveOnCorruptFile) {
  ScratchDir Dir("fallback");
  CountedProducer Queen("Queen");
  std::vector<SweepPoint> Points = mixedPoints();
  SimConfig Base;
  const uint64_t Hash = traceContentHash(*Queen.Prog, Base);

  SweepEngine Cold;
  Cold.setTraceStore(Dir.str());
  Cold.schedule("exp", "g", Base, Points, Queen.producer(), Hash);
  Cold.run();
  ASSERT_EQ(Queen.Calls->load(), 1);

  // Corrupt the published file: a warm engine must report one clean
  // diagnostic, simulate live (producer invoked), match cold bit for
  // bit — and re-record a good file, so the *next* run is warm again.
  const std::string Path = traceStorePath(Dir.str(), Hash);
  {
    std::fstream F(Path, std::ios::in | std::ios::out | std::ios::binary);
    F.seekp(200);
    F.put('\x7f');
  }
  DiagnosticEngine Diags;
  SweepEngine Fallback;
  Fallback.setTraceStore(Dir.str(), &Diags);
  Fallback.schedule("exp", "g", Base, Points, Queen.producer(), Hash);
  Fallback.run();
  EXPECT_EQ(Queen.Calls->load(), 2);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("CRC"), std::string::npos) << Diags.str();
  for (size_t P = 0; P != Points.size(); ++P)
    EXPECT_EQ(Fallback.point("exp", P), Cold.point("exp", P)) << P;

  DiagnosticEngine WarmDiags;
  SweepEngine Warm;
  Warm.setTraceStore(Dir.str(), &WarmDiags);
  Warm.schedule("exp", "g", Base, Points, Queen.producer(), Hash);
  Warm.run();
  EXPECT_EQ(Queen.Calls->load(), 2) << "re-record did not heal the file";
  EXPECT_FALSE(WarmDiags.hasErrors()) << WarmDiags.str();
  for (size_t P = 0; P != Points.size(); ++P)
    EXPECT_EQ(Warm.point("exp", P), Cold.point("exp", P)) << P;
}

/// Regression for the observability contract: a warm, auto-sharded run
/// must still light up the sim.store.* counters (hits, bytes read) and
/// the sim.shard.* counters (replays, units) — a refactor that serves
/// the store without metering, or shards without counting, silently
/// blinds the benches and the metrics time series.
TEST(TraceStoreEngine, WarmAutoShardedRunKeepsStoreAndShardCounters) {
  struct Guard {
    Guard() {
      telemetry::setEnabled(true);
      telemetry::reset();
    }
    ~Guard() {
      telemetry::setEnabled(false);
      telemetry::reset();
    }
  } Guard;

  ScratchDir Dir("counters");
  CountedProducer Queen("Queen");
  std::vector<SweepPoint> Points = mixedPoints();
  SimConfig Base;
  const uint64_t Hash = traceContentHash(*Queen.Prog, Base);

  SweepEngine Cold;
  Cold.setTraceStore(Dir.str());
  Cold.schedule("exp", "g", Base, Points, Queen.producer(), Hash);
  Cold.run();
  ASSERT_EQ(Queen.Calls->load(), 1);

  auto counter = [](const char *Name) -> uint64_t {
    std::string JSON = telemetry::snapshotJSON();
    std::string Key = std::string("\"") + Name + "\": ";
    size_t At = JSON.find(Key);
    if (At == std::string::npos)
      return 0;
    return std::strtoull(JSON.c_str() + At + Key.size(), nullptr, 10);
  };
  EXPECT_GT(counter("sim.store.misses"), 0u);
  EXPECT_GT(counter("sim.store.bytes-written"), 0u);

  telemetry::reset();
  // An explicit pool: --shards=auto resolves to the pool width, which
  // must exceed 1 for set sharding to engage even on a 1-core host.
  ThreadPool Pool(4);
  SweepEngine Warm(&Pool);
  Warm.setShards(0); // auto
  Warm.setTraceStore(Dir.str());
  Warm.schedule("exp", "g", Base, Points, Queen.producer(), Hash);
  Warm.run();
  EXPECT_EQ(Queen.Calls->load(), 1) << "warm run was not warm";
  ASSERT_TRUE(Warm.base("exp").ok());

  EXPECT_GT(counter("sim.store.hits"), 0u);
  EXPECT_GT(counter("sim.store.bytes-read"), 0u);
  EXPECT_EQ(counter("sim.store.misses"), 0u);
  EXPECT_GT(counter("sim.shard.replays"), 0u);
  EXPECT_GT(counter("sim.shard.units"), 0u);
  EXPECT_GT(counter("sim.shard.shards"), 0u);
}

TEST(TraceStoreEngine, ZeroHashOptsOut) {
  ScratchDir Dir("optout");
  CountedProducer Sieve("Sieve");
  SimConfig Base;
  for (int Round = 0; Round != 2; ++Round) {
    SweepEngine Engine;
    Engine.setTraceStore(Dir.str());
    Engine.schedule("exp" + std::to_string(Round), "g", Base,
                    mixedPoints(), Sieve.producer(), /*ContentHash=*/0);
    Engine.run();
  }
  // No hash, no store: both rounds simulated, nothing written.
  EXPECT_EQ(Sieve.Calls->load(), 2);
  EXPECT_TRUE(std::filesystem::is_empty(Dir.Path));
}

} // namespace
