//===- valuenumbering_test.cpp - Local value numbering tests -------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/transforms/ValueNumbering.h"

#include "urcm/driver/Driver.h"
#include "urcm/ir/Interpreter.h"
#include "urcm/ir/Verifier.h"
#include "urcm/workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace urcm;

namespace {

struct Numbered {
  CompiledModule Module;
  ValueNumberingStats Stats;

  explicit Numbered(const std::string &Source) {
    DiagnosticEngine Diags;
    Module = compileToIR(Source, Diags);
    EXPECT_TRUE(static_cast<bool>(Module)) << Diags.str();
    if (Module) {
      Stats = numberValues(*Module.IR);
      DiagnosticEngine VerifyDiags;
      EXPECT_TRUE(verifyModule(*Module.IR, VerifyDiags))
          << VerifyDiags.str() << printIR(*Module.IR);
    }
  }
};

unsigned countLoads(const IRFunction &F) {
  unsigned N = 0;
  for (const auto &B : F.blocks())
    for (const Instruction &I : B->insts())
      if (I.isLoad())
        ++N;
  return N;
}

} // namespace

TEST(ValueNumbering, ReusesRepeatedComputation) {
  // a*b computed twice in one block.
  Numbered N("void main() {\n"
             "  int a = 6;\n"
             "  int b = 7;\n"
             "  int x;\n"
             "  int y;\n"
             "  x = a * b + 1;\n"
             "  y = a * b + 2;\n"
             "  print(x + y);\n"
             "}\n");
  EXPECT_GE(N.Stats.RedundantComputations, 1u);
  InterpResult R = interpretModule(*N.Module.IR);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Output, (std::vector<int64_t>{87}));
}

TEST(ValueNumbering, CommutativityRecognized) {
  Numbered N("void main() {\n"
             "  int a = 3;\n"
             "  int b = 4;\n"
             "  print(a + b + (b + a));\n"
             "}\n");
  EXPECT_GE(N.Stats.RedundantComputations, 1u);
  InterpResult R = interpretModule(*N.Module.IR);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Output, (std::vector<int64_t>{14}));
}

TEST(ValueNumbering, ForwardsRepeatedLoad) {
  // a[2] loaded twice with no intervening store.
  Numbered N("int a[8];\n"
             "void main() {\n"
             "  a[2] = 9;\n"
             "  print(a[2] + a[2]);\n"
             "}\n");
  EXPECT_GE(N.Stats.ForwardedLoads, 1u);
  InterpResult R = interpretModule(*N.Module.IR);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Output, (std::vector<int64_t>{18}));
}

TEST(ValueNumbering, StoreToLoadForwarding) {
  Numbered N("int g;\n"
             "void main() {\n"
             "  g = 41;\n"
             "  print(g + 1);\n"
             "}\n");
  EXPECT_GE(N.Stats.ForwardedLoads, 1u);
  const IRFunction *Main = N.Module.IR->findFunction("main");
  EXPECT_EQ(countLoads(*Main), 0u) << printIR(*N.Module.IR);
  InterpResult R = interpretModule(*N.Module.IR);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Output, (std::vector<int64_t>{42}));
}

TEST(ValueNumbering, SometimesAliasBlocksForwarding) {
  // The paper's Figure-2 hazard: the store to a[i] may alias a[j], so
  // the second load of a[j] must NOT be forwarded across it.
  Numbered N("int a[8];\n"
             "int f(int i, int j) {\n"
             "  int first;\n"
             "  int second;\n"
             "  first = a[j];\n"
             "  a[i] = 100;\n"
             "  second = a[j];\n"
             "  return first + second;\n"
             "}\n"
             "void main() {\n"
             "  a[3] = 1;\n"
             "  print(f(3, 3));\n"
             "}\n");
  InterpResult R = interpretModule(*N.Module.IR);
  ASSERT_TRUE(R.ok());
  // first = 1, store rewrites a[3], second = 100.
  EXPECT_EQ(R.Output, (std::vector<int64_t>{101}));
}

TEST(ValueNumbering, DistinctObjectsDoNotBlockForwarding) {
  // A store to a different array cannot alias; the load forwards.
  Numbered N("int a[8];\n"
             "int b[8];\n"
             "void main() {\n"
             "  int x;\n"
             "  a[1] = 5;\n"
             "  x = a[1];\n"
             "  b[1] = 9;\n"
             "  print(x + a[1]);\n"
             "}\n");
  EXPECT_GE(N.Stats.ForwardedLoads, 2u) << printIR(*N.Module.IR);
  InterpResult R = interpretModule(*N.Module.IR);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Output, (std::vector<int64_t>{10}));
}

TEST(ValueNumbering, CallsInvalidateMemory) {
  Numbered N("int g;\n"
             "void bump() { g = g + 1; }\n"
             "void main() {\n"
             "  int x;\n"
             "  g = 1;\n"
             "  x = g;\n"
             "  bump();\n"
             "  print(x + g);\n"
             "}\n");
  InterpResult R = interpretModule(*N.Module.IR);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Output, (std::vector<int64_t>{3}));
}

TEST(ValueNumbering, PointerStoreInvalidatesReachableObjects) {
  Numbered N("int a[4];\n"
             "void main() {\n"
             "  int *p;\n"
             "  int x;\n"
             "  a[0] = 1;\n"
             "  x = a[0];\n"
             "  p = &a[0];\n"
             "  *p = 2;\n"
             "  print(x + a[0]);\n"
             "}\n");
  InterpResult R = interpretModule(*N.Module.IR);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Output, (std::vector<int64_t>{3}));
}

TEST(ValueNumbering, RegisterRedefinitionInvalidatesValue) {
  // The forwarded value's register is overwritten between the load and
  // the reuse point; forwarding the new value would be wrong.
  Numbered N("int a[4];\n"
             "void main() {\n"
             "  int t;\n"
             "  a[1] = 7;\n"
             "  t = a[1];\n"
             "  t = 0;\n"
             "  print(a[1] + t);\n"
             "}\n");
  InterpResult R = interpretModule(*N.Module.IR);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Output, (std::vector<int64_t>{7}));
}

TEST(ValueNumbering, WorkloadsPreserveOutput) {
  for (const Workload &W : paperWorkloads()) {
    DiagnosticEngine Diags;
    CompiledModule Reference = compileToIR(W.Source, Diags);
    ASSERT_TRUE(static_cast<bool>(Reference)) << W.Name;
    InterpResult Want = interpretModule(*Reference.IR);
    ASSERT_TRUE(Want.ok()) << W.Name;

    Numbered N(W.Source);
    InterpResult Got = interpretModule(*N.Module.IR);
    ASSERT_TRUE(Got.ok()) << W.Name << ": " << Got.Error;
    EXPECT_EQ(Got.Output, Want.Output) << W.Name;
  }
}

TEST(ValueNumbering, BubbleAddressArithmeticDeduplicated) {
  // Bubble's swap block computes &a[j] twice (once for the load, once
  // for the store): the address adds must be value-numbered away. The
  // compare-to-swap load reuse spans blocks, which block-local
  // numbering intentionally leaves alone.
  const Workload *W = findWorkload("Bubble");
  Numbered N(W->Source);
  EXPECT_GT(N.Stats.RedundantComputations, 0u);
}
