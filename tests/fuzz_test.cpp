//===- fuzz_test.cpp - Random-program differential tests -----------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Generates random-but-valid MC programs and checks, for each, that
//  * the IR interpreter (pre- and post-allocation) and the machine
//    simulator agree on program output;
//  * every hint scheme produces the same output with zero coherence
//    violations;
//  * the cleanup passes preserve behavior.
//
// Programs are built from a grammar that always terminates: loops are
// bounded counters, recursion has a strictly decreasing guard.
//
//===----------------------------------------------------------------------===//

#include "urcm/driver/Driver.h"
#include "urcm/ir/Interpreter.h"
#include "urcm/sim/Simulator.h"
#include "urcm/support/RNG.h"
#include "urcm/support/StringUtils.h"

#include <gtest/gtest.h>

using namespace urcm;

namespace {

/// Generates one random MC program.
class ProgramGenerator {
public:
  explicit ProgramGenerator(uint64_t Seed) : Rng(Seed) {}

  std::string generate() {
    Out.clear();
    // Globals: a few scalars and arrays.
    NumGlobalScalars = 2 + Rng.nextBelow(3);
    NumGlobalArrays = 1 + Rng.nextBelow(2);
    for (unsigned G = 0; G != NumGlobalScalars; ++G)
      Out += formatString("int g%u;\n", G);
    for (unsigned A = 0; A != NumGlobalArrays; ++A)
      Out += formatString("int arr%u[%u];\n", A, 8 + 8 * A);

    // A helper function with scalar and pointer parameters.
    Out += "int helper(int x, int *p) {\n"
           "  int acc = 0;\n";
    emitStmts(2 + Rng.nextBelow(3), /*Depth=*/1, /*InHelper=*/true);
    Out += "  acc = acc + x + *p;\n"
           "  return acc;\n"
           "}\n";

    // Bounded recursion.
    Out += "int rec(int n) {\n"
           "  if (n <= 0) { return 1; }\n"
           "  return n + rec(n - 1);\n"
           "}\n";

    Out += "void main() {\n"
           "  int acc = 0;\n"
           "  int t;\n";
    emitStmts(4 + Rng.nextBelow(5), /*Depth=*/1, /*InHelper=*/false);
    Out += formatString("  t = helper(%u, &g0);\n",
                        static_cast<unsigned>(Rng.nextBelow(50)));
    Out += "  acc = acc + t;\n";
    Out += formatString("  acc = acc + rec(%u);\n",
                        static_cast<unsigned>(3 + Rng.nextBelow(8)));
    for (unsigned G = 0; G != NumGlobalScalars; ++G)
      Out += formatString("  print(g%u);\n", G);
    Out += "  print(acc);\n";
    for (unsigned A = 0; A != NumGlobalArrays; ++A)
      Out += formatString("  print(arr%u[%u]);\n", A,
                          static_cast<unsigned>(Rng.nextBelow(8)));
    Out += "}\n";
    return Out;
  }

private:
  std::string scalarLValue(bool InHelper) {
    uint64_t Roll = Rng.nextBelow(3);
    if (Roll == 0)
      return formatString("g%u",
                          static_cast<unsigned>(
                              Rng.nextBelow(NumGlobalScalars)));
    if (Roll == 1)
      return InHelper ? "acc" : "acc";
    return formatString("arr%u[%u]",
                        static_cast<unsigned>(
                            Rng.nextBelow(NumGlobalArrays)),
                        static_cast<unsigned>(Rng.nextBelow(8)));
  }

  std::string expr(bool InHelper, unsigned Depth) {
    if (Depth == 0 || Rng.nextBelow(2) == 0) {
      uint64_t Roll = Rng.nextBelow(4);
      if (Roll == 0)
        return formatString("%d",
                            static_cast<int>(Rng.nextBelow(100)) - 50);
      if (Roll == 1)
        return formatString(
            "g%u",
            static_cast<unsigned>(Rng.nextBelow(NumGlobalScalars)));
      if (Roll == 2)
        return formatString(
            "arr%u[%u]",
            static_cast<unsigned>(Rng.nextBelow(NumGlobalArrays)),
            static_cast<unsigned>(Rng.nextBelow(8)));
      return InHelper ? "x" : "acc";
    }
    const char *Ops[] = {"+", "-", "*", "&", "|", "^"};
    return "(" + expr(InHelper, Depth - 1) + " " +
           Ops[Rng.nextBelow(6)] + " " + expr(InHelper, Depth - 1) + ")";
  }

  void emitStmts(unsigned Count, unsigned Depth, bool InHelper) {
    for (unsigned S = 0; S != Count; ++S) {
      uint64_t Roll = Rng.nextBelow(10);
      if (Roll < 4) {
        Out += "  " + scalarLValue(InHelper) + " = " +
               expr(InHelper, 2) + ";\n";
      } else if (Roll < 6 && Depth < 3) {
        // Bounded counting loop over a fresh variable name.
        std::string Var = formatString("i%u", NextLoopVar++);
        Out += formatString("  { int %s;\n  for (%s = 0; %s < %u; %s = "
                            "%s + 1) {\n",
                            Var.c_str(), Var.c_str(), Var.c_str(),
                            static_cast<unsigned>(2 + Rng.nextBelow(6)),
                            Var.c_str(), Var.c_str());
        emitStmts(1 + Rng.nextBelow(2), Depth + 1, InHelper);
        Out += "  } }\n";
      } else if (Roll < 8) {
        Out += "  if (" + expr(InHelper, 1) + " > " + expr(InHelper, 1) +
               ") {\n";
        emitStmts(1, Depth + 1, InHelper);
        Out += "  } else {\n";
        emitStmts(1, Depth + 1, InHelper);
        Out += "  }\n";
      } else {
        Out += "  " + scalarLValue(InHelper) +
               " = " + scalarLValue(InHelper) + " + 1;\n";
      }
    }
  }

  SplitMix64 Rng;
  std::string Out;
  unsigned NumGlobalScalars = 0;
  unsigned NumGlobalArrays = 0;
  unsigned NextLoopVar = 0;
};

class FuzzDifferential : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(FuzzDifferential, AllExecutionPathsAgree) {
  ProgramGenerator Gen(GetParam());
  std::string Source = Gen.generate();
  SCOPED_TRACE(Source);

  // Oracle: interpret the unoptimized, unallocated IR.
  DiagnosticEngine Diags;
  CompiledModule Module = compileToIR(Source, Diags);
  ASSERT_TRUE(static_cast<bool>(Module)) << Diags.str();
  InterpResult Oracle = interpretModule(*Module.IR);
  ASSERT_TRUE(Oracle.ok()) << Oracle.Error;

  for (bool Era : {false, true}) {
    for (auto Scheme :
         {UnifiedOptions::conventional(), UnifiedOptions::unified(),
          UnifiedOptions::reuseAware()}) {
      for (bool Cleanup : {false, true}) {
        CompileOptions Options;
        Options.IRGen.ScalarLocalsInMemory = Era;
        Options.Scheme = Scheme;
        Options.RunCleanup = Cleanup;
        Options.Transforms.DeadStoreElimination = Cleanup;
        Options.PromoteLoopScalars = Cleanup; // Exercise promotion too.
        SimConfig Sim;
        Sim.Cache.NumLines = 32;
        Sim.Cache.Assoc = 2;
        DiagnosticEngine RunDiags;
        SimResult R = compileAndRun(Source, Options, Sim, RunDiags);
        ASSERT_TRUE(R.ok()) << R.Error << RunDiags.str();
        EXPECT_EQ(R.Output, Oracle.Output)
            << "era=" << Era << " cleanup=" << Cleanup;
        EXPECT_EQ(R.CoherenceViolations, 0u)
            << "era=" << Era << " cleanup=" << Cleanup;
      }
    }
  }
}

namespace {

/// Asserts every observable field of \p A equals \p B (the reference).
void expectSameResult(const SimResult &A, const SimResult &B,
                      const char *Label) {
  SCOPED_TRACE(Label);
  EXPECT_EQ(A.Halted, B.Halted);
  EXPECT_EQ(A.Error, B.Error);
  EXPECT_EQ(A.Steps, B.Steps);
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.Cache, B.Cache);
  EXPECT_EQ(A.ICache, B.ICache);
  EXPECT_EQ(A.InstructionFetches, B.InstructionFetches);
  EXPECT_EQ(A.BypassTransitions, B.BypassTransitions);
  EXPECT_EQ(A.CoherenceViolations, B.CoherenceViolations);
  EXPECT_EQ(A.Refs.Unambiguous, B.Refs.Unambiguous);
  EXPECT_EQ(A.Refs.Ambiguous, B.Refs.Ambiguous);
  EXPECT_EQ(A.Refs.Spill, B.Refs.Spill);
  EXPECT_EQ(A.Refs.Unknown, B.Refs.Unknown);
  EXPECT_EQ(A.Refs.Bypassed, B.Refs.Bypassed);
  EXPECT_EQ(A.Refs.LastRefTagged, B.Refs.LastRefTagged);
  ASSERT_EQ(A.Trace.size(), B.Trace.size());
  for (size_t I = 0; I != A.Trace.size(); ++I) {
    ASSERT_EQ(A.Trace[I].Addr, B.Trace[I].Addr) << "event " << I;
    ASSERT_EQ(A.Trace[I].IsWrite, B.Trace[I].IsWrite) << "event " << I;
    ASSERT_EQ(A.Trace[I].Info.Bypass, B.Trace[I].Info.Bypass)
        << "event " << I;
    ASSERT_EQ(A.Trace[I].Info.LastRef, B.Trace[I].Info.LastRef)
        << "event " << I;
    ASSERT_EQ(A.Trace[I].RefId, B.Trace[I].RefId) << "event " << I;
  }
}

} // namespace

TEST_P(FuzzDifferential, EnginesBitIdentical) {
  // Three-way differential: the predecoded engine fused (the default)
  // and unfused (SimConfig::Fusion = false) against the reference
  // switch interpreter — identical SimResults bit for bit (output,
  // steps, cache and reference counters, the recorded trace), and all
  // matching the IR oracle. Every generated program also runs under a
  // mid-program step limit, the state fusion has to be most careful
  // about: a fused group must stop exactly at MaxSteps even when the
  // limit lands inside what fusion grouped.
  ProgramGenerator Gen(GetParam());
  std::string Source = Gen.generate();
  SCOPED_TRACE(Source);

  DiagnosticEngine Diags;
  CompiledModule Module = compileToIR(Source, Diags);
  ASSERT_TRUE(static_cast<bool>(Module)) << Diags.str();
  InterpResult Oracle = interpretModule(*Module.IR);
  ASSERT_TRUE(Oracle.ok()) << Oracle.Error;

  for (auto Scheme :
       {UnifiedOptions::conventional(), UnifiedOptions::unified(),
        UnifiedOptions::reuseAware()}) {
    CompileOptions Options;
    Options.Scheme = Scheme;
    DiagnosticEngine CompileDiags;
    CompileResult Compiled = compileProgram(Source, Options, CompileDiags);
    ASSERT_TRUE(Compiled.Ok) << CompileDiags.str();

    SimConfig Sim;
    Sim.Cache.NumLines = 16;
    Sim.Cache.Assoc = 2;
    Sim.RecordTrace = true;
    Sim.ModelICache = (GetParam() % 2) == 0; // Cover both fetch paths.
    Sim.ICache.NumLines = 8;

    Sim.Engine = SimEngine::Switch;
    SimResult S = Simulator(Sim).run(Compiled.Program);

    Sim.Engine = SimEngine::Predecoded;
    Sim.Fusion = true;
    SimResult P = Simulator(Sim).run(Compiled.Program);
    Sim.Fusion = false;
    SimResult U = Simulator(Sim).run(Compiled.Program);

    ASSERT_TRUE(P.ok()) << P.Error;
    EXPECT_EQ(P.Output, Oracle.Output);
    expectSameResult(P, S, "fused vs switch");
    expectSameResult(U, S, "unfused vs switch");

    // Truncated reruns: a seed-derived step limit below the full run,
    // landing anywhere — including mid-fused-group. All three engines
    // must stop after exactly MaxSteps retired instructions.
    if (S.Steps > 1) {
      Sim.MaxSteps = 1 + (GetParam() * 2654435761u) % (S.Steps - 1);
      Sim.Engine = SimEngine::Switch;
      SimResult TS = Simulator(Sim).run(Compiled.Program);
      Sim.Engine = SimEngine::Predecoded;
      Sim.Fusion = true;
      SimResult TP = Simulator(Sim).run(Compiled.Program);
      Sim.Fusion = false;
      SimResult TU = Simulator(Sim).run(Compiled.Program);
      EXPECT_EQ(TS.Steps, Sim.MaxSteps);
      expectSameResult(TP, TS, "fused vs switch (truncated)");
      expectSameResult(TU, TS, "unfused vs switch (truncated)");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Range<uint64_t>(1, 41));
