//===- shardedreplay_test.cpp - Sharded-replay bit-identity tests --------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// The sharded replay engine's contract is the merge invariant: set
// shards (and capacity shards, and the sequential leftover unit)
// replayed independently and merged must reproduce the sequential
// replay counters bit for bit, for every shard count — including ones
// that do not divide the set count. These tests pin that against
// replaySweepPoints for all six paper benchmarks and for adversarial
// synthetic traces, across shard counts {1, 2, 7, num_sets}.
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/ShardedReplay.h"

#include "urcm/driver/Driver.h"
#include "urcm/sim/SweepEngine.h"
#include "urcm/support/RNG.h"
#include "urcm/support/ThreadPool.h"
#include "urcm/workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace urcm;

namespace {

CacheConfig config(uint32_t Lines, uint32_t Assoc, uint32_t LineWords = 1) {
  CacheConfig C;
  C.NumLines = Lines;
  C.Assoc = Assoc;
  C.LineWords = LineWords;
  return C;
}

/// A deterministic trace with locality, writes, and hint bits on a
/// fraction of events (hint placement need not be compiler-plausible:
/// the replayers must agree on any input).
std::vector<TraceEvent> hintedTrace(uint64_t Seed, size_t N,
                                    uint32_t AddressRange) {
  SplitMix64 Rng(Seed);
  std::vector<TraceEvent> Trace;
  Trace.reserve(N);
  uint32_t Hot = 0;
  for (size_t I = 0; I != N; ++I) {
    uint64_t Roll = Rng.nextBelow(100);
    TraceEvent E;
    E.Addr = static_cast<uint32_t>(
        Roll < 60 ? (Hot + Rng.nextBelow(8)) % AddressRange
                  : Rng.nextBelow(AddressRange));
    if (Roll == 99)
      Hot = static_cast<uint32_t>(Rng.nextBelow(AddressRange));
    E.IsWrite = Rng.nextBelow(4) == 0;
    E.Info.Bypass = Rng.nextBelow(10) == 0;
    E.Info.LastRef = !E.Info.Bypass && Rng.nextBelow(13) == 0;
    Trace.push_back(E);
  }
  return Trace;
}

std::vector<TraceEvent> strippedCopy(std::vector<TraceEvent> Trace) {
  for (TraceEvent &E : Trace) {
    E.Info.Bypass = false;
    E.Info.LastRef = false;
  }
  return Trace;
}

/// The shard counts the merge invariant is pinned at: sequential,
/// even, a divisor-hostile prime, and one shard per set of the paper
/// geometry (128 lines / 2 ways = 64 sets).
const uint32_t ShardCounts[] = {1, 2, 7, 64};

/// A mixed point set exercising every unit family: the two-way fast
/// kernel, the generic replayer (other associativities, write-through,
/// FIFO), and both hint views.
std::vector<SweepPoint> mixedShardablePoints() {
  std::vector<SweepPoint> Points = {
      {config(128, 2), TracePolicy::LRU, false},
      {config(128, 2), TracePolicy::LRU, true},
      {config(16, 2), TracePolicy::LRU, false},
      {config(64, 4), TracePolicy::LRU, false},
      {config(64, 4), TracePolicy::LRU, true},
      {config(64, 2), TracePolicy::FIFO, false},
      {config(32, 2, 2), TracePolicy::LRU, false},
  };
  SweepPoint WriteThrough{config(64, 2), TracePolicy::LRU, false};
  WriteThrough.Config.Write = WritePolicy::WriteThrough;
  Points.push_back(WriteThrough);
  return Points;
}

std::vector<TraceEvent> tracedWorkloadRun(const Workload &W) {
  CompileOptions Options;
  Options.IRGen.ScalarLocalsInMemory = true;
  SimConfig Sim;
  Sim.Cache = config(128, 2);
  Sim.RecordTrace = true;
  DiagnosticEngine Diags;
  SimResult R = compileAndRun(W.Source, Options, Sim, Diags);
  EXPECT_TRUE(R.ok()) << W.Name << ": " << R.Error;
  EXPECT_FALSE(R.Trace.empty()) << W.Name;
  return std::move(R.Trace);
}

void expectShardedMatchesSequential(const std::vector<TraceEvent> &Trace,
                                    const std::vector<SweepPoint> &Points,
                                    ThreadPool &Pool,
                                    const std::string &Label) {
  const std::vector<CacheStats> Sequential =
      replaySweepPoints(Trace, Points);
  for (uint32_t Shards : ShardCounts) {
    const std::vector<CacheStats> Sharded =
        replaySweepPointsSharded(Trace, Points, Shards, &Pool);
    ASSERT_EQ(Sharded.size(), Sequential.size());
    for (size_t I = 0; I != Points.size(); ++I)
      EXPECT_EQ(Sharded[I], Sequential[I])
          << Label << ": shards=" << Shards << " point " << I;
  }
}

TEST(ShardedReplay, SixBenchmarksBitIdenticalAcrossShardCounts) {
  ThreadPool Pool(4);
  const std::vector<SweepPoint> Points = mixedShardablePoints();
  for (const Workload &W : paperWorkloads()) {
    const std::vector<TraceEvent> Trace = tracedWorkloadRun(W);
    expectShardedMatchesSequential(Trace, Points, Pool, W.Name);
  }
}

TEST(ShardedReplay, FuzzHintedAndHintStrippedTraces) {
  ThreadPool Pool(4);
  // Beyond the shardable mix: Random and MIN (sequential leftover
  // unit) and fully-associative LRU (capacity shards), both views.
  std::vector<SweepPoint> Points = mixedShardablePoints();
  Points.push_back({config(64, 2), TracePolicy::Random, false});
  Points.push_back({config(64, 2), TracePolicy::MIN, false});
  Points.push_back({config(64, 2), TracePolicy::MIN, true});
  Points.push_back({config(8, 8), TracePolicy::LRU, false});
  Points.push_back({config(32, 32), TracePolicy::LRU, false});
  Points.push_back({config(32, 32), TracePolicy::LRU, true});
  for (uint64_t Seed : {3u, 17u, 99u}) {
    const std::vector<TraceEvent> Hinted = hintedTrace(Seed, 30000, 700);
    expectShardedMatchesSequential(Hinted, Points, Pool,
                                   "hinted seed " + std::to_string(Seed));
    // A hint-stripped trace must agree too (and IgnoreHints points
    // then coincide with their hinted twins).
    expectShardedMatchesSequential(strippedCopy(Hinted), Points, Pool,
                                   "stripped seed " +
                                       std::to_string(Seed));
  }
}

TEST(ShardedReplay, StreamingChunkFeedMatchesBatch) {
  ThreadPool Pool(4);
  // No MIN (streaming-compatible set, as the engine's streaming branch
  // requires); capacity shards and set shards both present.
  std::vector<SweepPoint> Points = mixedShardablePoints();
  Points.push_back({config(8, 8), TracePolicy::LRU, false});
  Points.push_back({config(64, 2), TracePolicy::Random, false});
  const std::vector<TraceEvent> Trace = hintedTrace(21, 50000, 900);
  const std::vector<CacheStats> Sequential =
      replaySweepPoints(Trace, Points);
  for (uint32_t Shards : {2u, 7u}) {
    ShardedSweepStream Stream(Points, Shards, &Pool);
    Stream.reserve(Trace.size());
    size_t Offset = 0;
    for (size_t ChunkSize : {1ul, 97ul, 4096ul, 29999ul, 30000ul,
                             50000ul}) {
      size_t Count = std::min(ChunkSize, Trace.size() - Offset);
      Stream.feed(Trace.data() + Offset, Count);
      Offset += Count;
    }
    ASSERT_EQ(Offset, Trace.size());
    const std::vector<CacheStats> Sharded = Stream.finish();
    for (size_t I = 0; I != Points.size(); ++I)
      EXPECT_EQ(Sharded[I], Sequential[I])
          << "shards=" << Shards << " point " << I;
  }
}

TEST(ShardedReplay, CapacityShardsMatchStackSweep) {
  const std::vector<TraceEvent> Trace = hintedTrace(5, 25000, 500);
  const std::vector<uint32_t> Sizes = {2, 4, 8, 16, 64, 256, 1024};
  ThreadPool Pool(4);
  for (bool IgnoreHints : {false, true}) {
    const std::vector<CacheStats> Expect =
        sweepLRUStackDistance(Trace, Sizes, IgnoreHints);
    std::vector<SweepPoint> Points;
    for (uint32_t S : Sizes)
      Points.push_back({config(S, S), TracePolicy::LRU, IgnoreHints});
    const std::vector<CacheStats> Got =
        replaySweepPointsSharded(Trace, Points, 3, &Pool);
    for (size_t I = 0; I != Sizes.size(); ++I)
      EXPECT_EQ(Got[I], Expect[I])
          << "ignoreHints=" << IgnoreHints << " size " << Sizes[I];
  }
}

/// The engine-level integration: a sharded engine (streaming branch and
/// the materialized MIN branch both) returns the same point stats and
/// base results as the sequential oracle, for every shard policy.
TEST(ShardedReplay, EngineShardsBitIdenticalToSequentialOracle) {
  const Workload *W = findWorkload("Queen");
  ASSERT_NE(W, nullptr);
  std::vector<SweepPoint> Streamable = mixedShardablePoints();
  std::vector<SweepPoint> WithMin = mixedShardablePoints();
  WithMin.push_back({config(128, 2), TracePolicy::MIN, false});

  auto runEngine = [&](uint32_t ShardRequest,
                       const std::vector<SweepPoint> &Points) {
    ThreadPool Pool(4);
    SweepEngine Engine(&Pool);
    Engine.setShards(ShardRequest);
    SimConfig Base;
    Base.Cache = config(128, 2);
    Engine.schedule("exp", "grp", Base, Points,
                    [&](const SimConfig &Sim) {
                      DiagnosticEngine Diags;
                      return compileAndRun(W->Source,
                                           [] {
                                             CompileOptions O;
                                             O.IRGen.ScalarLocalsInMemory =
                                                 true;
                                             return O;
                                           }(),
                                           Sim, Diags);
                    });
    Engine.run();
    std::vector<CacheStats> Stats;
    for (size_t I = 0; I != Points.size(); ++I)
      Stats.push_back(Engine.point("exp", I));
    EXPECT_TRUE(Engine.base("exp").ok());
    return Stats;
  };

  for (const std::vector<SweepPoint> &Points : {Streamable, WithMin}) {
    const std::vector<CacheStats> Oracle = runEngine(1, Points);
    for (uint32_t Request : {0u, 4u, 7u}) {
      const std::vector<CacheStats> Sharded = runEngine(Request, Points);
      ASSERT_EQ(Sharded.size(), Oracle.size());
      for (size_t I = 0; I != Oracle.size(); ++I)
        EXPECT_EQ(Sharded[I], Oracle[I])
            << "shards=" << Request << " point " << I;
    }
  }
}

TEST(ShardedReplay, ResolveShardCount) {
  ThreadPool Pool(3);
  EXPECT_EQ(resolveShardCount(0, Pool), 4u); // Workers + the caller.
  EXPECT_EQ(resolveShardCount(1, Pool), 1u);
  EXPECT_EQ(resolveShardCount(9, Pool), 9u);
}

} // namespace
