//===- cache_test.cpp - Data cache model tests ---------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/Cache.h"

#include "urcm/sim/TraceSim.h"
#include "urcm/support/RNG.h"

#include <gtest/gtest.h>

using namespace urcm;

namespace {

MemRefInfo plain() { return MemRefInfo(); }

MemRefInfo bypass() {
  MemRefInfo Info;
  Info.Bypass = true;
  return Info;
}

MemRefInfo lastRef() {
  MemRefInfo Info;
  Info.LastRef = true;
  return Info;
}

CacheConfig smallCache(uint32_t Lines = 4, uint32_t Assoc = 2,
                       uint32_t LineWords = 1) {
  CacheConfig C;
  C.NumLines = Lines;
  C.Assoc = Assoc;
  C.LineWords = LineWords;
  return C;
}

} // namespace

TEST(Cache, ColdMissThenHit) {
  MainMemory Mem(1024);
  Mem.write(100, 7);
  DataCache C(smallCache(), Mem);
  EXPECT_EQ(C.read(100, plain()), 7);
  EXPECT_EQ(C.stats().ReadHits, 0u);
  EXPECT_EQ(C.stats().Fills, 1u);
  EXPECT_EQ(C.read(100, plain()), 7);
  EXPECT_EQ(C.stats().ReadHits, 1u);
  EXPECT_EQ(C.stats().Fills, 1u);
}

TEST(Cache, WriteBackOnEviction) {
  MainMemory Mem(1024);
  // Direct-mapped single line: every distinct address evicts.
  DataCache C(smallCache(1, 1), Mem);
  C.write(5, 55, plain());
  EXPECT_EQ(Mem.read(5), 0) << "write-back: memory not yet updated";
  C.read(9, plain()); // Evicts dirty line 5.
  EXPECT_EQ(Mem.read(5), 55);
  EXPECT_EQ(C.stats().WriteBacks, 1u);
}

TEST(Cache, OneWordWriteAllocateSkipsFetch) {
  MainMemory Mem(1024);
  DataCache C(smallCache(), Mem);
  C.write(7, 1, plain());
  EXPECT_EQ(C.stats().Fills, 1u);
  EXPECT_EQ(C.stats().FillWords, 0u) << "no fetch for 1-word allocate";
}

TEST(Cache, MultiWordWriteAllocateFetches) {
  MainMemory Mem(1024);
  DataCache C(smallCache(4, 2, 4), Mem);
  C.write(7, 1, plain());
  EXPECT_EQ(C.stats().FillWords, 4u);
}

TEST(Cache, LRUVictimSelection) {
  MainMemory Mem(1024);
  Mem.write(0, 10);
  Mem.write(4, 40);
  Mem.write(8, 80);
  // One set, two ways (fully associative with 2 lines; addresses map to
  // set addr % 1 == 0... use NumLines=2, Assoc=2 -> 1 set).
  DataCache C(smallCache(2, 2), Mem);
  C.read(0, plain());
  C.read(4, plain());
  C.read(0, plain()); // 0 is now most recent.
  C.read(8, plain()); // Must evict 4 (LRU), keep 0.
  EXPECT_TRUE(C.probe(0));
  EXPECT_FALSE(C.probe(4));
  EXPECT_TRUE(C.probe(8));
}

TEST(Cache, FIFOVictimSelection) {
  MainMemory Mem(1024);
  CacheConfig Cfg = smallCache(2, 2);
  Cfg.Policy = ReplacementPolicy::FIFO;
  DataCache C(Cfg, Mem);
  C.read(0, plain());
  C.read(4, plain());
  C.read(0, plain()); // Re-reference does not help under FIFO.
  C.read(8, plain()); // Evicts 0 (first in).
  EXPECT_FALSE(C.probe(0));
  EXPECT_TRUE(C.probe(4));
  EXPECT_TRUE(C.probe(8));
}

TEST(Cache, RandomPolicyIsDeterministicPerSeed) {
  auto Run = [](uint64_t Seed) {
    MainMemory Mem(4096);
    CacheConfig Cfg = smallCache(4, 4);
    Cfg.Policy = ReplacementPolicy::Random;
    Cfg.Seed = Seed;
    DataCache C(Cfg, Mem);
    for (uint64_t A = 0; A != 64; ++A)
      C.read(A * 37 % 512, plain());
    return C.stats().misses();
  };
  EXPECT_EQ(Run(1), Run(1));
  // Different seeds usually differ but must not crash; just run it.
  (void)Run(2);
}

TEST(Cache, LastRefFreesLineAndAvoidsWriteBack) {
  MainMemory Mem(1024);
  DataCache C(smallCache(), Mem);
  C.write(3, 33, plain()); // Dirty line.
  C.read(3, lastRef());    // Final use: line freed, write-back dropped.
  EXPECT_FALSE(C.probe(3));
  EXPECT_EQ(C.stats().DeadFrees, 1u);
  EXPECT_EQ(C.stats().DeadWriteBacksAvoided, 1u);
  EXPECT_EQ(C.stats().WriteBacks, 0u);
  // The dead value never reaches memory.
  EXPECT_EQ(Mem.read(3), 0);
}

TEST(Cache, DeadStoreReclaimedWithoutWriteBack) {
  MainMemory Mem(1024);
  DataCache C(smallCache(), Mem);
  C.write(3, 33, lastRef()); // Store of a never-read value.
  EXPECT_FALSE(C.probe(3));
  EXPECT_EQ(C.stats().DeadWriteBacksAvoided, 1u);
}

TEST(Cache, MultiWordLastRefOnlyDemotes) {
  MainMemory Mem(1024);
  DataCache C(smallCache(2, 2, 4), Mem);
  C.write(8, 1, plain());
  C.read(8, lastRef());
  // Line must survive (other words may be live) but becomes the next
  // victim.
  EXPECT_TRUE(C.probe(8));
  C.read(16, plain());
  C.read(24, plain());
  EXPECT_FALSE(C.probe(8));
  // Its dirty data was written back on eviction, not dropped.
  EXPECT_EQ(Mem.read(8), 1);
}

TEST(Cache, BypassReadMissGoesToMemory) {
  MainMemory Mem(1024);
  Mem.write(50, 5);
  DataCache C(smallCache(), Mem);
  EXPECT_EQ(C.read(50, bypass()), 5);
  EXPECT_FALSE(C.probe(50)) << "bypass must not allocate";
  EXPECT_EQ(C.stats().BypassReads, 1u);
  EXPECT_EQ(C.stats().Reads, 0u);
}

TEST(Cache, BypassReadHitMigratesAndFrees) {
  // UmAm_LOAD semantics: a cached copy is delivered and the line freed.
  // A dirty copy is written back on migration so a later bypass read
  // that misses cannot observe stale memory (mixed bypass/cached
  // policies need this; the paper's drop-without-write-back assumes the
  // full register contract).
  MainMemory Mem(1024);
  DataCache C(smallCache(), Mem);
  C.write(60, 66, plain()); // Dirty cached copy; memory still 0.
  EXPECT_EQ(C.read(60, bypass()), 66) << "must deliver the fresh copy";
  EXPECT_FALSE(C.probe(60));
  EXPECT_EQ(C.stats().BypassHitMigrations, 1u);
  EXPECT_EQ(C.stats().WriteBacks, 1u);
  EXPECT_EQ(Mem.read(60), 66) << "dirty migration synchronizes memory";
  // A clean migration needs no write-back.
  C.read(61, plain());
  C.read(61, bypass());
  EXPECT_EQ(C.stats().WriteBacks, 1u);
}

TEST(Cache, BypassWriteGoesToMemory) {
  MainMemory Mem(1024);
  DataCache C(smallCache(), Mem);
  C.write(70, 7, bypass());
  EXPECT_EQ(Mem.read(70), 7);
  EXPECT_FALSE(C.probe(70));
  EXPECT_EQ(C.stats().BypassWrites, 1u);
}

TEST(Cache, BypassWriteUpdatesStaleCachedCopy) {
  MainMemory Mem(1024);
  DataCache C(smallCache(), Mem);
  C.write(80, 1, plain());  // Cached dirty copy = 1.
  C.write(80, 2, bypass()); // Direct write must keep the copy coherent.
  EXPECT_EQ(C.read(80, plain()), 2);
}

TEST(Cache, FlushWritesDirtyLinesSeparately) {
  MainMemory Mem(1024);
  DataCache C(smallCache(), Mem);
  C.write(1, 11, plain());
  C.write(2, 22, plain());
  C.flush();
  EXPECT_EQ(Mem.read(1), 11);
  EXPECT_EQ(Mem.read(2), 22);
  EXPECT_EQ(C.stats().FlushWriteBackWords, 2u);
  EXPECT_EQ(C.stats().WriteBacks, 0u) << "flush is counted separately";
}

TEST(Cache, TrafficAccounting) {
  MainMemory Mem(1024);
  DataCache C(smallCache(1, 1), Mem);
  C.read(0, plain());  // Miss: 1 ref + 1 fill word.
  C.read(0, plain());  // Hit: 1 ref.
  C.write(0, 1, plain()); // Hit: 1 ref.
  C.read(64, plain()); // Miss, evicts dirty: 1 ref + fill + writeback.
  const CacheStats &S = C.stats();
  EXPECT_EQ(S.cacheTraffic(), 4u /*refs*/ + 2u /*fills*/ + 1u /*wb*/);
  EXPECT_EQ(S.busTraffic(), 2u /*fills*/ + 1u /*wb*/);
  EXPECT_DOUBLE_EQ(S.hitRate(), 0.5);
}

TEST(Cache, SetIndexingSeparatesConflicts) {
  MainMemory Mem(4096);
  // 4 sets x 1 way.
  DataCache C(smallCache(4, 1), Mem);
  C.read(0, plain());
  C.read(1, plain());
  C.read(2, plain());
  C.read(3, plain());
  EXPECT_EQ(C.stats().misses(), 4u);
  C.read(0, plain());
  C.read(1, plain());
  EXPECT_EQ(C.stats().ReadHits, 2u);
  // Address 4 conflicts with 0.
  C.read(4, plain());
  EXPECT_FALSE(C.probe(0));
}

TEST(Cache, WriteThroughKeepsMemoryFresh) {
  MainMemory Mem(1024);
  CacheConfig Cfg = smallCache();
  Cfg.Write = WritePolicy::WriteThrough;
  DataCache C(Cfg, Mem);
  C.write(9, 99, plain()); // Miss: memory only, no allocation.
  EXPECT_EQ(Mem.read(9), 99);
  EXPECT_FALSE(C.probe(9));
  EXPECT_EQ(C.stats().WriteThroughWords, 1u);
  C.read(9, plain()); // Now cached.
  C.write(9, 100, plain()); // Hit: cache + memory both updated.
  EXPECT_EQ(Mem.read(9), 100);
  EXPECT_EQ(C.read(9, plain()), 100);
  EXPECT_EQ(C.stats().WriteBacks, 0u) << "write-through never dirties";
  C.flush();
  EXPECT_EQ(C.stats().FlushWriteBackWords, 0u);
}

TEST(Cache, WriteThroughDeadTagStillFreesLines) {
  MainMemory Mem(1024);
  CacheConfig Cfg = smallCache();
  Cfg.Write = WritePolicy::WriteThrough;
  DataCache C(Cfg, Mem);
  C.read(4, plain());
  C.write(4, 44, lastRef());
  EXPECT_FALSE(C.probe(4)) << "dead tag frees even without dirty data";
  EXPECT_EQ(Mem.read(4), 44);
}

TEST(Cache, WriteThroughTraceReplayMatchesLiveCache) {
  MainMemory Mem(4096);
  CacheConfig Cfg = smallCache(8, 2);
  Cfg.Write = WritePolicy::WriteThrough;
  DataCache Live(Cfg, Mem);
  std::vector<TraceEvent> Trace;
  SplitMix64 Rng(77);
  for (int I = 0; I != 2000; ++I) {
    TraceEvent E;
    E.Addr = Rng.nextBelow(64);
    E.IsWrite = Rng.nextBelow(3) == 0;
    Trace.push_back(E);
    if (E.IsWrite)
      Live.write(E.Addr, 1, E.Info);
    else
      Live.read(E.Addr, E.Info);
  }
  CacheStats Replayed = replayTrace(Trace, Cfg, TracePolicy::LRU);
  EXPECT_EQ(Live.stats().ReadHits, Replayed.ReadHits);
  EXPECT_EQ(Live.stats().WriteHits, Replayed.WriteHits);
  EXPECT_EQ(Live.stats().Fills, Replayed.Fills);
  EXPECT_EQ(Live.stats().WriteThroughWords, Replayed.WriteThroughWords);
}
