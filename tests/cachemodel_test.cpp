//===- cachemodel_test.cpp - Unified cache-model differential tests ------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// The unified CacheModel's contract, pinned here from four directions:
//
//  1. live agreement — for every live-eligible policy (LRU, FIFO,
//     Random, TreePLRU, SRRIP) the model's counters are bit-identical
//     to driving a DataCache with the same geometry over the same
//     reference stream, hints included;
//  2. mode agreement — for every policy, sequential replay, set-sharded
//     replay at several shard counts, and warm trace-store serving all
//     produce bit-identical CacheStats and attribution tables, over all
//     six paper benchmarks and adversarial fuzz traces;
//  3. policy properties — the TreePLRU tree bits never victimize the
//     most recently touched way (and pointing a way makes it the
//     victim), and SRRIP's aging scan terminates with every RRPV within
//     its 2-bit bound;
//  4. store invariance — the replacement policy and RNG seed are
//     observers of the recorded trace: changing either never changes
//     the content hash (one stored trace serves the whole policy grid),
//     and a warm engine under a different base policy still serves the
//     correct counters without invoking the producer.
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/CacheModel.h"

#include "urcm/driver/Driver.h"
#include "urcm/sim/ShardedReplay.h"
#include "urcm/sim/SweepEngine.h"
#include "urcm/sim/TraceStore.h"
#include "urcm/support/RNG.h"
#include "urcm/support/ThreadPool.h"
#include "urcm/workloads/Workloads.h"

#include <atomic>
#include <filesystem>
#include <gtest/gtest.h>
#include <memory>

using namespace urcm;

namespace {

CacheConfig config(uint32_t Lines, uint32_t Assoc,
                   uint32_t LineWords = 1) {
  CacheConfig C;
  C.NumLines = Lines;
  C.Assoc = Assoc;
  C.LineWords = LineWords;
  return C;
}

/// Every policy the unified model implements.
const CachePolicy AllPolicies[] = {
    CachePolicy::LRU,      CachePolicy::FIFO,
    CachePolicy::Random,   CachePolicy::MIN,
    CachePolicy::TreePLRU, CachePolicy::SRRIP,
    CachePolicy::LivenessBypass,
};

/// A deterministic trace with locality, writes, hint bits, and
/// reference ids (the LivenessBypass predictor trains per RefId, so
/// id-free traces would leave it untested).
std::vector<TraceEvent> hintedTrace(uint64_t Seed, size_t N,
                                    uint32_t AddressRange) {
  SplitMix64 Rng(Seed);
  std::vector<TraceEvent> Trace;
  Trace.reserve(N);
  uint32_t Hot = 0;
  uint16_t Ref = 0;
  for (size_t I = 0; I != N; ++I) {
    uint64_t Roll = Rng.nextBelow(100);
    TraceEvent E;
    E.Addr = static_cast<uint32_t>(
        Roll < 60 ? (Hot + Rng.nextBelow(8)) % AddressRange
                  : Rng.nextBelow(AddressRange));
    if (Roll == 99)
      Hot = static_cast<uint32_t>(Rng.nextBelow(AddressRange));
    E.IsWrite = Rng.nextBelow(4) == 0;
    E.Info.Bypass = Rng.nextBelow(10) == 0;
    E.Info.LastRef = !E.Info.Bypass && Rng.nextBelow(13) == 0;
    if (Roll < 70)
      Ref = static_cast<uint16_t>((Ref + 1) % 200);
    else if (Roll < 85)
      Ref = static_cast<uint16_t>(Rng.nextBelow(200));
    E.RefId = Roll < 95 ? Ref : MemRefInfo::NoRefId;
    Trace.push_back(E);
  }
  return Trace;
}

std::vector<TraceEvent> tracedWorkloadRun(const Workload &W) {
  CompileOptions Options;
  Options.IRGen.ScalarLocalsInMemory = true;
  SimConfig Sim;
  Sim.Cache = config(128, 2);
  Sim.RecordTrace = true;
  DiagnosticEngine Diags;
  SimResult R = compileAndRun(W.Source, Options, Sim, Diags);
  EXPECT_TRUE(R.ok()) << W.Name << ": " << R.Error;
  EXPECT_FALSE(R.Trace.empty()) << W.Name;
  return std::move(R.Trace);
}

/// The full policy grid at mixed geometries, hinted and hint-stripped.
/// TreePLRU rows keep power-of-two associativities.
std::vector<SweepPoint> policyGridPoints() {
  std::vector<SweepPoint> Points;
  for (CachePolicy P : AllPolicies)
    for (bool IgnoreHints : {false, true}) {
      SweepPoint Pt{config(128, 2), P, IgnoreHints};
      Pt.Config.Policy = P;
      Points.push_back(Pt);
    }
  // Off-diagonal geometries for the new policies: higher
  // associativity, multi-word lines, write-through.
  for (CachePolicy P : {CachePolicy::TreePLRU, CachePolicy::SRRIP,
                        CachePolicy::LivenessBypass}) {
    SweepPoint Pt{config(64, 4), P, false};
    Pt.Config.Policy = P;
    Points.push_back(Pt);
    Pt.Config = config(32, 2, 2);
    Pt.Config.Policy = P;
    Points.push_back(Pt);
    Pt.Config = config(64, 2);
    Pt.Config.Policy = P;
    Pt.Config.Write = WritePolicy::WriteThrough;
    Points.push_back(Pt);
  }
  return Points;
}

/// Fresh scratch directory per test case, removed on destruction.
struct ScratchDir {
  std::filesystem::path Path;
  explicit ScratchDir(const char *Name) {
    Path = std::filesystem::temp_directory_path() /
           (std::string("urcm_cachemodel_") + Name + "." +
            std::to_string(::getpid()));
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }
};

} // namespace

//===----------------------------------------------------------------------===//
// Policy properties: TreePLRU tree bits and SRRIP aging.
//===----------------------------------------------------------------------===//

TEST(CacheModelProperties, TreePLRUVictimNeverMostRecentlyTouched) {
  SplitMix64 Rng(7);
  for (uint32_t Assoc : {2u, 4u, 8u, 16u, 32u, 64u}) {
    uint64_t Bits = 0;
    for (int Step = 0; Step != 2000; ++Step) {
      uint32_t Way = static_cast<uint32_t>(Rng.nextBelow(Assoc));
      Bits = detail::treePLRUTouch(Bits, Assoc, Way);
      uint32_t Victim = detail::treePLRUVictimWay(Bits, Assoc);
      ASSERT_LT(Victim, Assoc) << "assoc " << Assoc;
      EXPECT_NE(Victim, Way)
          << "assoc " << Assoc << ": just-touched way chosen as victim";
    }
  }
}

TEST(CacheModelProperties, TreePLRUPointAtMakesWayTheVictim) {
  SplitMix64 Rng(8);
  for (uint32_t Assoc : {2u, 4u, 8u, 16u, 64u}) {
    uint64_t Bits = Rng.next();
    for (int Step = 0; Step != 500; ++Step) {
      uint32_t Way = static_cast<uint32_t>(Rng.nextBelow(Assoc));
      Bits = detail::treePLRUPointAt(Bits, Assoc, Way);
      EXPECT_EQ(detail::treePLRUVictimWay(Bits, Assoc), Way)
          << "assoc " << Assoc;
      // Unrelated touches along a different path must not re-protect it.
      Bits = detail::treePLRUTouch(Bits, Assoc, Way);
      EXPECT_NE(detail::treePLRUVictimWay(Bits, Assoc), Way);
    }
  }
}

TEST(CacheModelProperties, TreePLRUIsExactlyLRUAtTwoWays) {
  // A one-node tree is a single LRU bit: the two policies must agree
  // bit for bit at associativity 2 (the paper's cache geometry) as long
  // as lines are one word. Multi-word dead frees demote instead of
  // invalidating, and a demotion tie (both ways at LastUsed 0) is
  // broken by scan order under LRU but by the last pointed way under
  // the tree, so the exact correspondence is deliberately not claimed
  // for multi-word lines.
  for (uint64_t Seed : {3u, 44u}) {
    auto Trace = hintedTrace(Seed, 20000, 700);
    for (auto Geometry : {config(128, 2), config(16, 2), config(64, 2)})
      EXPECT_EQ(replayTrace(Trace, Geometry, CachePolicy::TreePLRU),
                replayTrace(Trace, Geometry, CachePolicy::LRU))
          << "seed " << Seed << " lines " << Geometry.NumLines;
  }
}

namespace {
struct RRPVLine {
  uint8_t RRPV = 0;
};
} // namespace

TEST(CacheModelProperties, SRRIPAgingBoundsAndTermination) {
  SplitMix64 Rng(9);
  for (uint32_t Assoc : {2u, 4u, 8u, 16u}) {
    std::vector<RRPVLine> Ways(Assoc);
    for (int Step = 0; Step != 3000; ++Step) {
      uint32_t Victim = detail::srripVictimWay(Ways.data(), Assoc);
      ASSERT_LT(Victim, Assoc);
      EXPECT_GE(Ways[Victim].RRPV, SRRIPMaxRRPV)
          << "victim not at distant-future RRPV";
      for (uint32_t W = 0; W != Assoc; ++W)
        EXPECT_LE(Ways[W].RRPV, SRRIPMaxRRPV)
            << "aging overflowed the 2-bit RRPV bound";
      // Simulate install on the victim and a random hit, as the model
      // does, then scan again from the mutated state.
      Ways[Victim].RRPV = SRRIPInsertRRPV;
      Ways[Rng.nextBelow(Assoc)].RRPV =
          static_cast<uint8_t>(Rng.nextBelow(SRRIPMaxRRPV + 1));
    }
  }
  // From all-zero state the scan ages every way to the bound, then
  // picks the first way.
  std::vector<RRPVLine> Fresh(4);
  EXPECT_EQ(detail::srripVictimWay(Fresh.data(), 4), 0u);
  for (const RRPVLine &L : Fresh)
    EXPECT_EQ(L.RRPV, SRRIPMaxRRPV);
}

//===----------------------------------------------------------------------===//
// Live agreement: model == DataCache for every live-eligible policy.
//===----------------------------------------------------------------------===//

TEST(CacheModelLive, MatchesDataCacheForEveryLivePolicy) {
  for (CachePolicy P : AllPolicies) {
    if (!cachePolicyLiveEligible(P))
      continue;
    for (auto Geometry :
         {config(16, 4), config(128, 2), config(32, 2, 2), config(8, 8)}) {
      Geometry.Policy = P;
      for (uint64_t Seed : {11u, 31u}) {
        auto Trace = hintedTrace(Seed, 8000, 300);
        MainMemory Mem(4096);
        DataCache Live(Geometry, Mem);
        for (const TraceEvent &E : Trace) {
          if (E.IsWrite)
            Live.write(E.Addr, 1, E.Info);
          else
            Live.read(E.Addr, E.Info);
        }
        CacheStats Replayed = replayTrace(Trace, Geometry, P);
        CacheStats LiveStats = Live.stats();
        // Latency ticks are the live cache's own; every traffic counter
        // must agree.
        LiveStats.FlushWriteBackWords = Replayed.FlushWriteBackWords;
        EXPECT_EQ(LiveStats.Reads, Replayed.Reads);
        EXPECT_EQ(LiveStats.Writes, Replayed.Writes);
        EXPECT_EQ(LiveStats.ReadHits, Replayed.ReadHits)
            << cachePolicyName(P) << " seed " << Seed << " lines "
            << Geometry.NumLines << "x" << Geometry.Assoc;
        EXPECT_EQ(LiveStats.WriteHits, Replayed.WriteHits)
            << cachePolicyName(P) << " seed " << Seed;
        EXPECT_EQ(LiveStats.Fills, Replayed.Fills)
            << cachePolicyName(P) << " seed " << Seed;
        EXPECT_EQ(LiveStats.FillWords, Replayed.FillWords);
        EXPECT_EQ(LiveStats.WriteBacks, Replayed.WriteBacks)
            << cachePolicyName(P) << " seed " << Seed;
        EXPECT_EQ(LiveStats.WriteBackWords, Replayed.WriteBackWords);
        EXPECT_EQ(LiveStats.Evictions, Replayed.Evictions)
            << cachePolicyName(P) << " seed " << Seed;
        EXPECT_EQ(LiveStats.DeadFrees, Replayed.DeadFrees);
        EXPECT_EQ(LiveStats.DeadWriteBacksAvoided,
                  Replayed.DeadWriteBacksAvoided);
        EXPECT_EQ(LiveStats.BypassReads, Replayed.BypassReads);
        EXPECT_EQ(LiveStats.BypassWrites, Replayed.BypassWrites);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Mode agreement: sequential == sharded == warm store, per policy.
//===----------------------------------------------------------------------===//

TEST(CacheModelModes, SixBenchmarksPolicyGridShardBitIdentical) {
  ThreadPool Pool(4);
  const std::vector<SweepPoint> Points = policyGridPoints();
  for (const Workload &W : paperWorkloads()) {
    const std::vector<TraceEvent> Trace = tracedWorkloadRun(W);
    const std::vector<CacheStats> Sequential =
        replaySweepPoints(Trace, Points);
    for (uint32_t Shards : {1u, 7u, 64u}) {
      const std::vector<CacheStats> Sharded =
          replaySweepPointsSharded(Trace, Points, Shards, &Pool);
      ASSERT_EQ(Sharded.size(), Sequential.size());
      for (size_t I = 0; I != Points.size(); ++I)
        EXPECT_EQ(Sharded[I], Sequential[I])
            << W.Name << ": shards=" << Shards << " policy="
            << cachePolicyName(Points[I].Policy) << " point " << I;
    }
  }
}

TEST(CacheModelModes, FuzzedTracesPolicyGridShardBitIdentical) {
  ThreadPool Pool(4);
  const std::vector<SweepPoint> Points = policyGridPoints();
  for (uint64_t Seed : {5u, 23u, 77u}) {
    const std::vector<TraceEvent> Trace = hintedTrace(Seed, 30000, 700);
    const std::vector<CacheStats> Sequential =
        replaySweepPoints(Trace, Points);
    for (uint32_t Shards : {2u, 7u}) {
      const std::vector<CacheStats> Sharded =
          replaySweepPointsSharded(Trace, Points, Shards, &Pool);
      for (size_t I = 0; I != Points.size(); ++I)
        EXPECT_EQ(Sharded[I], Sequential[I])
            << "seed " << Seed << ": shards=" << Shards << " policy="
            << cachePolicyName(Points[I].Policy) << " point " << I;
    }
  }
}

TEST(CacheModelModes, AttributionTablesMatchAcrossModes) {
  ThreadPool Pool(4);
  const std::vector<TraceEvent> Trace = hintedTrace(13, 25000, 500);
  const uint32_t NumRefs = 200;
  for (CachePolicy P : AllPolicies) {
    SweepPoint Pt{config(64, 2), P, false};
    Pt.Config.Policy = P;
    Pt.AttributionRefs = NumRefs;
    const std::vector<SweepPoint> Points = {Pt};

    // Sequential oracle straight through the model.
    std::shared_ptr<const std::vector<uint64_t>> NextUses;
    if (P == CachePolicy::MIN)
      NextUses = computeNextLineUses(Trace, Pt.Config.LineWords);
    CacheModel Model(Pt.Config, P, NextUses);
    RefAttribution Oracle(NumRefs);
    Model.setAttribution(&Oracle);
    Model.feed(Trace.data(), Trace.size(), 0);
    CacheStats OracleStats = Model.finish();

    SweepPointStream Seq(Points, &Trace);
    Seq.feed(Trace.data(), Trace.size());
    EXPECT_EQ(Seq.finish()[0], OracleStats) << cachePolicyName(P);
    EXPECT_EQ(Seq.takeAttribution(0), Oracle) << cachePolicyName(P);

    for (uint32_t Shards : {2u, 7u}) {
      ShardedSweepStream Sharded(Points, Shards, &Pool, &Trace);
      Sharded.feed(Trace.data(), Trace.size());
      EXPECT_EQ(Sharded.finish()[0], OracleStats)
          << cachePolicyName(P) << " shards " << Shards;
      EXPECT_EQ(Sharded.takeAttribution(0), Oracle)
          << cachePolicyName(P) << " shards " << Shards;
    }
  }
}

//===----------------------------------------------------------------------===//
// Store invariance: policy and seed are observers of the content hash.
//===----------------------------------------------------------------------===//

namespace {

struct CountedProducer {
  std::shared_ptr<MachineProgram> Prog;
  std::shared_ptr<std::atomic<int>> Calls =
      std::make_shared<std::atomic<int>>(0);

  explicit CountedProducer(const std::string &Name) {
    const Workload *W = findWorkload(Name);
    EXPECT_NE(W, nullptr);
    DiagnosticEngine Diags;
    CompileOptions Options;
    CompileResult R = compileProgram(W->Source, Options, Diags);
    EXPECT_TRUE(R.Ok) << Diags.str();
    Prog = std::make_shared<MachineProgram>(std::move(R.Program));
  }

  SweepEngine::Producer producer() const {
    auto P = Prog;
    auto C = Calls;
    return [P, C](const SimConfig &Config) {
      C->fetch_add(1);
      Simulator S(Config);
      return S.run(*P);
    };
  }
};

} // namespace

TEST(CacheModelStore, PolicyAndSeedNeverChangeTheContentHash) {
  CountedProducer Queen("Queen");
  SimConfig Sim;
  const uint64_t H = traceContentHash(*Queen.Prog, Sim);

  // The data cache observes the reference stream: any replacement
  // policy or RNG seed must map to the same stored trace.
  for (CachePolicy P : AllPolicies) {
    SimConfig Alt = Sim;
    Alt.Cache.Policy = P;
    EXPECT_EQ(H, traceContentHash(*Queen.Prog, Alt))
        << "policy " << cachePolicyName(P) << " caused a store miss";
    Alt.Cache.Seed = 0xDEADBEEF;
    EXPECT_EQ(H, traceContentHash(*Queen.Prog, Alt))
        << "seed change caused a store miss";
  }

  // The instruction cache's counters live in the stored summary, so its
  // configuration (policy included) must stay salted.
  SimConfig WithICache = Sim;
  WithICache.ModelICache = true;
  const uint64_t HI = traceContentHash(*Queen.Prog, WithICache);
  SimConfig AltICache = WithICache;
  AltICache.ICache.Policy = CachePolicy::FIFO;
  EXPECT_NE(HI, traceContentHash(*Queen.Prog, AltICache));
}

TEST(CacheModelStore, WarmServesDifferentBasePolicyCorrectly) {
  // Record under LRU, then serve a FIFO-base experiment warm: the
  // producer must not run again, and the FIFO base counters must equal
  // a live FIFO simulation.
  ScratchDir Dir("policy");
  CountedProducer Sieve("Sieve");
  SimConfig LruBase;
  SimConfig FifoBase;
  FifoBase.Cache.Policy = CachePolicy::FIFO;
  const uint64_t Hash = traceContentHash(*Sieve.Prog, LruBase);
  ASSERT_EQ(Hash, traceContentHash(*Sieve.Prog, FifoBase));

  DiagnosticEngine ColdDiags;
  SweepEngine Cold;
  Cold.setTraceStore(Dir.str(), &ColdDiags);
  Cold.schedule("exp", "g", LruBase, {}, Sieve.producer(), Hash);
  Cold.run();
  ASSERT_TRUE(Cold.base("exp").ok());
  EXPECT_EQ(Sieve.Calls->load(), 1);
  EXPECT_FALSE(ColdDiags.hasErrors()) << ColdDiags.str();

  // The live FIFO oracle (no store involved).
  SweepEngine Live;
  Live.schedule("exp", "g", FifoBase, {}, Sieve.producer(), 0);
  Live.run();
  ASSERT_TRUE(Live.base("exp").ok());
  EXPECT_EQ(Sieve.Calls->load(), 2);

  DiagnosticEngine WarmDiags;
  SweepEngine Warm;
  Warm.setTraceStore(Dir.str(), &WarmDiags);
  Warm.schedule("exp", "g", FifoBase, {}, Sieve.producer(), Hash);
  Warm.run();
  EXPECT_EQ(Sieve.Calls->load(), 2) << "warm serve ran the producer";
  EXPECT_FALSE(WarmDiags.hasErrors()) << WarmDiags.str();
  ASSERT_TRUE(Warm.base("exp").ok());
  EXPECT_EQ(Warm.base("exp").Cache, Live.base("exp").Cache)
      << "warm FIFO base counters diverge from the live FIFO run";
  EXPECT_EQ(Warm.base("exp").Steps, Live.base("exp").Steps);
  EXPECT_EQ(Warm.base("exp").Output, Live.base("exp").Output);
}

TEST(CacheModelStore, WarmPolicyGridMatchesColdAndPlain) {
  ScratchDir Dir("grid");
  CountedProducer Queen("Queen");
  const std::vector<SweepPoint> Points = policyGridPoints();
  SimConfig Base;
  const uint64_t Hash = traceContentHash(*Queen.Prog, Base);

  SweepEngine Plain;
  Plain.schedule("exp", "g", Base, Points, Queen.producer(), Hash);
  Plain.run();

  DiagnosticEngine ColdDiags;
  SweepEngine Cold;
  Cold.setTraceStore(Dir.str(), &ColdDiags);
  Cold.schedule("exp", "g", Base, Points, Queen.producer(), Hash);
  Cold.run();
  EXPECT_FALSE(ColdDiags.hasErrors()) << ColdDiags.str();

  for (uint32_t Shards : {1u, 7u, 0u}) {
    DiagnosticEngine WarmDiags;
    SweepEngine Warm;
    Warm.setShards(Shards);
    Warm.setTraceStore(Dir.str(), &WarmDiags);
    Warm.schedule("exp", "g", Base, Points, Queen.producer(), Hash);
    Warm.run();
    EXPECT_FALSE(WarmDiags.hasErrors()) << WarmDiags.str();
    for (size_t I = 0; I != Points.size(); ++I) {
      EXPECT_EQ(Warm.point("exp", I), Plain.point("exp", I))
          << "warm shards=" << Shards << " policy="
          << cachePolicyName(Points[I].Policy) << " point " << I;
      EXPECT_EQ(Cold.point("exp", I), Plain.point("exp", I))
          << "cold policy=" << cachePolicyName(Points[I].Policy)
          << " point " << I;
    }
  }
  EXPECT_EQ(Queen.Calls->load(), 2) << "plain + cold; warm runs served";
}

//===----------------------------------------------------------------------===//
// LivenessBypass predictor semantics.
//===----------------------------------------------------------------------===//

TEST(CacheModelPredictor, LearnsDeadOnArrivalReferences) {
  // One static reference streams over fresh lines and never reuses
  // them; after two dead evictions its counter saturates and further
  // misses stop allocating (bypass accounting), modulo the 1-in-16
  // retraining probe.
  std::vector<TraceEvent> Trace;
  for (uint32_t I = 0; I != 4096; ++I) {
    TraceEvent E;
    E.Addr = I;
    E.RefId = 7;
    Trace.push_back(E);
  }
  CacheStats Bypass =
      replayTrace(Trace, config(8, 8), CachePolicy::LivenessBypass);
  CacheStats Lru = replayTrace(Trace, config(8, 8), CachePolicy::LRU);

  EXPECT_EQ(Lru.BypassReads, 0u);
  EXPECT_GT(Bypass.BypassReads, 3000u)
      << "predictor never engaged on a pure streaming reference";
  EXPECT_LT(Bypass.Fills, Lru.Fills / 4)
      << "predicted-dead misses still allocate";
  EXPECT_GT(Bypass.Fills, 0u) << "retraining probe never allocates";
  // Accounting conservation: every access is either through-cache or
  // predictor-bypassed.
  EXPECT_EQ(Bypass.Reads + Bypass.BypassReads, Lru.Reads);
}

TEST(CacheModelPredictor, ReusedReferencesAreNeverBypassed) {
  // A hot loop over a small working set reuses every line: the
  // predictor must stay untrained and the counters must degenerate to
  // plain LRU.
  std::vector<TraceEvent> Trace;
  for (uint32_t Round = 0; Round != 500; ++Round)
    for (uint32_t A = 0; A != 8; ++A) {
      TraceEvent E;
      E.Addr = A;
      E.RefId = static_cast<uint16_t>(A);
      Trace.push_back(E);
    }
  CacheStats Bypass =
      replayTrace(Trace, config(16, 2), CachePolicy::LivenessBypass);
  CacheStats Lru = replayTrace(Trace, config(16, 2), CachePolicy::LRU);
  EXPECT_EQ(Bypass, Lru)
      << "a fully-reused working set must not trigger the predictor";
}
