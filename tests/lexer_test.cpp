//===- lexer_test.cpp - MC lexer unit tests -----------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/lang/Lexer.h"

#include <gtest/gtest.h>

using namespace urcm;

namespace {

std::vector<TokenKind> kindsOf(const std::string &Source) {
  DiagnosticEngine Diags;
  std::vector<TokenKind> Kinds;
  for (const Token &T : lexAll(Source, Diags))
    Kinds.push_back(T.Kind);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Kinds;
}

} // namespace

TEST(Lexer, EmptyInput) {
  EXPECT_EQ(kindsOf(""), std::vector<TokenKind>{TokenKind::Eof});
  EXPECT_EQ(kindsOf("   \n\t "), std::vector<TokenKind>{TokenKind::Eof});
}

TEST(Lexer, Keywords) {
  auto Kinds =
      kindsOf("int void if else while for return break continue do");
  ASSERT_EQ(Kinds.size(), 11u);
  EXPECT_EQ(Kinds[0], TokenKind::KwInt);
  EXPECT_EQ(Kinds[1], TokenKind::KwVoid);
  EXPECT_EQ(Kinds[2], TokenKind::KwIf);
  EXPECT_EQ(Kinds[3], TokenKind::KwElse);
  EXPECT_EQ(Kinds[4], TokenKind::KwWhile);
  EXPECT_EQ(Kinds[5], TokenKind::KwFor);
  EXPECT_EQ(Kinds[6], TokenKind::KwReturn);
  EXPECT_EQ(Kinds[7], TokenKind::KwBreak);
  EXPECT_EQ(Kinds[8], TokenKind::KwContinue);
  EXPECT_EQ(Kinds[9], TokenKind::KwDo);
  EXPECT_EQ(Kinds[10], TokenKind::Eof);
}

TEST(Lexer, IdentifiersAndLiterals) {
  DiagnosticEngine Diags;
  auto Tokens = lexAll("foo _bar x9 42 0x1F 0", Diags);
  ASSERT_EQ(Tokens.size(), 7u);
  EXPECT_EQ(Tokens[0].Text, "foo");
  EXPECT_EQ(Tokens[1].Text, "_bar");
  EXPECT_EQ(Tokens[2].Text, "x9");
  EXPECT_EQ(Tokens[3].IntValue, 42);
  EXPECT_EQ(Tokens[4].IntValue, 31);
  EXPECT_EQ(Tokens[5].IntValue, 0);
}

TEST(Lexer, Operators) {
  auto Kinds = kindsOf("+ - * / % & | ^ ~ ! = < <= > >= == != && || << >>");
  ASSERT_EQ(Kinds.size(), 22u);
  EXPECT_EQ(Kinds[0], TokenKind::Plus);
  EXPECT_EQ(Kinds[9], TokenKind::Bang);
  EXPECT_EQ(Kinds[10], TokenKind::Assign);
  EXPECT_EQ(Kinds[11], TokenKind::Less);
  EXPECT_EQ(Kinds[12], TokenKind::LessEqual);
  EXPECT_EQ(Kinds[15], TokenKind::EqualEqual);
  EXPECT_EQ(Kinds[16], TokenKind::BangEqual);
  EXPECT_EQ(Kinds[17], TokenKind::AmpAmp);
  EXPECT_EQ(Kinds[18], TokenKind::PipePipe);
  EXPECT_EQ(Kinds[19], TokenKind::LessLess);
  EXPECT_EQ(Kinds[20], TokenKind::GreaterGreater);
}

TEST(Lexer, Comments) {
  auto Kinds = kindsOf("a // line comment\n b /* block\n comment */ c");
  ASSERT_EQ(Kinds.size(), 4u);
  EXPECT_EQ(Kinds[0], TokenKind::Identifier);
  EXPECT_EQ(Kinds[1], TokenKind::Identifier);
  EXPECT_EQ(Kinds[2], TokenKind::Identifier);
}

TEST(Lexer, UnterminatedBlockComment) {
  DiagnosticEngine Diags;
  lexAll("a /* never closed", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, UnexpectedCharacter) {
  DiagnosticEngine Diags;
  auto Tokens = lexAll("a $ b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  // The bad character is skipped; lexing continues.
  ASSERT_EQ(Tokens.size(), 3u);
}

TEST(Lexer, TracksLocations) {
  DiagnosticEngine Diags;
  auto Tokens = lexAll("a\n  b", Diags);
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[0].Loc.Col, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Col, 3u);
}

TEST(Lexer, HexWithoutDigits) {
  DiagnosticEngine Diags;
  lexAll("0x", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}
