//===- workloads_test.cpp - Paper benchmark correctness tests ------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Every workload is validated against an independent C++ reference
// implementation of the same computation, then cross-checked across
// compilation schemes.
//
//===----------------------------------------------------------------------===//

#include "urcm/workloads/Workloads.h"

#include "urcm/driver/Driver.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace urcm;

namespace {

SimResult runWorkload(const std::string &Name,
                      const CompileOptions &Options = {}) {
  const Workload *W = findWorkload(Name);
  EXPECT_NE(W, nullptr);
  DiagnosticEngine Diags;
  SimConfig Sim;
  SimResult R = compileAndRun(W->Source, Options, Sim, Diags);
  EXPECT_TRUE(R.ok()) << Name << ": " << R.Error;
  EXPECT_EQ(R.CoherenceViolations, 0u) << Name;
  return R;
}

/// C++ reference for Bubble: same LCG, same sort, same checksum.
std::vector<int64_t> bubbleReference() {
  const int N = 500;
  std::vector<int64_t> A(N);
  int64_t Seed = 12345;
  for (int I = 0; I != N; ++I) {
    Seed = (Seed * 1103515245 + 12345) % 2147483648LL;
    if (Seed < 0)
      Seed = -Seed;
    A[I] = Seed % 10000;
  }
  std::sort(A.begin(), A.end());
  int64_t Sum = 0;
  for (int I = 0; I != N; ++I)
    Sum += A[I] * (I + 1);
  return {1, A.front(), A.back(), Sum};
}

/// C++ reference for Intmm.
std::vector<int64_t> intmmReference() {
  const int N = 40;
  std::vector<int64_t> MA(N * N), MB(N * N), MC(N * N);
  for (int I = 0; I != N; ++I)
    for (int J = 0; J != N; ++J) {
      MA[I * N + J] = (I + 2 * J) % 100 - 50;
      MB[I * N + J] = (3 * I + J) % 100 - 50;
    }
  for (int I = 0; I != N; ++I)
    for (int J = 0; J != N; ++J) {
      int64_t Sum = 0;
      for (int K = 0; K != N; ++K)
        Sum += MA[I * N + K] * MB[K * N + J];
      MC[I * N + J] = Sum;
    }
  int64_t Total = 0;
  for (int64_t V : MC)
    Total += V;
  return {MC[0], MC[N * N - 1], Total};
}

/// C++ reference for Sieve.
std::vector<int64_t> sieveReference() {
  const int Limit = 8190;
  std::vector<bool> Flags(Limit + 1, true);
  Flags[0] = Flags[1] = false;
  for (int I = 2; I * I <= Limit; ++I)
    if (Flags[I])
      for (int K = I * I; K <= Limit; K += I)
        Flags[K] = false;
  int64_t Count = 0, Largest = 0;
  for (int I = 0; I <= Limit; ++I)
    if (Flags[I]) {
      ++Count;
      Largest = I;
    }
  return {Count, Largest};
}

} // namespace

TEST(Workloads, SixBenchmarksRegistered) {
  const auto &All = paperWorkloads();
  ASSERT_EQ(All.size(), 6u);
  EXPECT_EQ(All[0].Name, "Bubble");
  EXPECT_EQ(All[5].Name, "Towers");
  EXPECT_EQ(findWorkload("nope"), nullptr);
}

TEST(Workloads, BubbleMatchesReference) {
  SimResult R = runWorkload("Bubble");
  EXPECT_EQ(R.Output, bubbleReference());
}

TEST(Workloads, IntmmMatchesReference) {
  SimResult R = runWorkload("Intmm");
  EXPECT_EQ(R.Output, intmmReference());
}

TEST(Workloads, PuzzleSolvesWithClassicTrialCount) {
  SimResult R = runWorkload("Puzzle");
  ASSERT_EQ(R.Output.size(), 2u);
  EXPECT_EQ(R.Output[0], 1) << "puzzle must be solvable";
  // 2005 trial() activations is the classic Stanford result for this
  // piece set.
  EXPECT_EQ(R.Output[1], 2005);
}

TEST(Workloads, QueenFindsAll92Solutions) {
  SimResult R = runWorkload("Queen");
  EXPECT_EQ(R.Output, (std::vector<int64_t>{92}));
}

TEST(Workloads, SieveMatchesReference) {
  SimResult R = runWorkload("Sieve");
  EXPECT_EQ(R.Output, sieveReference());
}

TEST(Workloads, TowersMovesAllDisks) {
  SimResult R = runWorkload("Towers");
  EXPECT_EQ(R.Output, (std::vector<int64_t>{262143, 18, 0}));
}

TEST(Workloads, DeclaredExpectationsHold) {
  for (const Workload &W : paperWorkloads()) {
    if (W.ExpectedOutput.empty())
      continue;
    SimResult R = runWorkload(W.Name);
    ASSERT_GE(R.Output.size(), W.ExpectedOutput.size()) << W.Name;
    for (size_t I = 0; I != W.ExpectedOutput.size(); ++I)
      EXPECT_EQ(R.Output[I], W.ExpectedOutput[I]) << W.Name;
  }
}

TEST(Workloads, OutputsInvariantAcrossSchemes) {
  for (const Workload &W : paperWorkloads()) {
    std::vector<int64_t> Baseline;
    for (auto Scheme :
         {UnifiedOptions::conventional(), UnifiedOptions::bypassOnly(),
          UnifiedOptions::deadTagOnly(), UnifiedOptions::unified(),
          UnifiedOptions::reuseAware()}) {
      CompileOptions Options;
      Options.Scheme = Scheme;
      SimResult R = runWorkload(W.Name, Options);
      if (Baseline.empty())
        Baseline = R.Output;
      else
        EXPECT_EQ(R.Output, Baseline) << W.Name;
    }
  }
}

TEST(Workloads, OutputsInvariantAcrossCompilers) {
  // Era-mode code and aggressively allocated code compute the same
  // results, under both allocation policies.
  for (const Workload &W : paperWorkloads()) {
    std::vector<int64_t> Baseline;
    for (bool Era : {false, true}) {
      for (auto Policy :
           {RegAllocPolicy::ChaitinBriggs, RegAllocPolicy::UsageCount}) {
        CompileOptions Options;
        Options.IRGen.ScalarLocalsInMemory = Era;
        Options.RegAlloc.Policy = Policy;
        SimResult R = runWorkload(W.Name, Options);
        if (Baseline.empty())
          Baseline = R.Output;
        else
          EXPECT_EQ(R.Output, Baseline) << W.Name << " era=" << Era;
      }
    }
  }
}

TEST(Workloads, OutputsInvariantUnderRegisterPressure) {
  for (const Workload &W : paperWorkloads()) {
    std::vector<int64_t> Baseline;
    for (uint32_t Colors : {8u, 16u, 32u}) {
      CompileOptions Options;
      Options.RegAlloc.NumColors = Colors;
      SimResult R = runWorkload(W.Name, Options);
      if (Baseline.empty())
        Baseline = R.Output;
      else
        EXPECT_EQ(R.Output, Baseline) << W.Name << " colors=" << Colors;
    }
  }
}
