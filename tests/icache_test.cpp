//===- icache_test.cpp - Instruction cache and code-dead hint tests ------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/driver/Driver.h"
#include "urcm/workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace urcm;

namespace {

SimResult runWith(const std::string &Source, const CompileOptions &Options,
                  SimConfig Sim) {
  DiagnosticEngine Diags;
  SimResult R = compileAndRun(Source, Options, Sim, Diags);
  EXPECT_TRUE(R.ok()) << R.Error;
  return R;
}

const char *OncePhaseProgram = R"mc(
int a[64];
int total;

void init() {
  int i;
  for (i = 0; i < 64; i = i + 1) { a[i] = i * 3; }
}

int sumloop() {
  int i;
  int s = 0;
  for (i = 0; i < 64; i = i + 1) { s = s + a[i]; }
  return s;
}

void main() {
  int round;
  init();
  total = 0;
  for (round = 0; round < 50; round = round + 1) {
    total = total + sumloop();
  }
  print(total);
}
)mc";

} // namespace

TEST(ICache, DisabledByDefault) {
  SimConfig Sim;
  SimResult R = runWith(OncePhaseProgram, {}, Sim);
  EXPECT_EQ(R.InstructionFetches, 0u);
  EXPECT_EQ(R.ICache.Reads, 0u);
}

TEST(ICache, CountsEveryFetch) {
  SimConfig Sim;
  Sim.ModelICache = true;
  SimResult R = runWith(OncePhaseProgram, {}, Sim);
  EXPECT_EQ(R.InstructionFetches, R.Steps);
  EXPECT_EQ(R.ICache.Reads, R.Steps);
  EXPECT_GT(R.ICache.hitRate(), 0.5);
}

TEST(ICache, CodeDeadHintEmittedForOnceFunctions) {
  CompileOptions Options; // Unified scheme: dead tags on.
  DiagnosticEngine Diags;
  CompileResult R = compileProgram(OncePhaseProgram, Options, Diags);
  ASSERT_TRUE(R.Ok);
  unsigned Tagged = 0;
  for (const MInst &I : R.Program.Code)
    if (I.Op == MOpcode::Ret && I.CodeDeadHint)
      ++Tagged;
  // init and main execute once; sumloop runs 50 times.
  EXPECT_EQ(Tagged, 2u);

  CompileOptions Conventional;
  Conventional.Scheme = UnifiedOptions::conventional();
  DiagnosticEngine D2;
  CompileResult R2 =
      compileProgram(OncePhaseProgram, Conventional, D2);
  for (const MInst &I : R2.Program.Code)
    EXPECT_FALSE(I.CodeDeadHint);
}

TEST(ICache, CodeDeadHintFreesLines) {
  SimConfig Sim;
  Sim.ModelICache = true;
  Sim.ICache.NumLines = 8;
  Sim.ICache.Assoc = 2;
  Sim.ICache.LineWords = 4;

  CompileOptions Unified;
  SimResult WithHints = runWith(OncePhaseProgram, Unified, Sim);

  CompileOptions Conventional;
  Conventional.Scheme = UnifiedOptions::conventional();
  SimResult Without = runWith(OncePhaseProgram, Conventional, Sim);

  EXPECT_EQ(WithHints.Output, Without.Output);
  EXPECT_GT(WithHints.ICache.DeadFrees, 0u);
  EXPECT_EQ(Without.ICache.DeadFrees, 0u);
  // Identical fetch streams.
  EXPECT_EQ(WithHints.InstructionFetches, Without.InstructionFetches);
}

TEST(ICache, WorkloadsRunCleanWithICache) {
  SimConfig Sim;
  Sim.ModelICache = true;
  for (const Workload &W : paperWorkloads()) {
    if (W.Name == "Puzzle" || W.Name == "Towers")
      continue; // Keep the suite fast; covered elsewhere.
    DiagnosticEngine Diags;
    SimResult R = compileAndRun(W.Source, {}, Sim, Diags);
    ASSERT_TRUE(R.ok()) << W.Name << ": " << R.Error;
    EXPECT_EQ(R.InstructionFetches, R.Steps) << W.Name;
  }
}
