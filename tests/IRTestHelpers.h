//===- IRTestHelpers.h - Synthetic IR construction for tests ----*- C++ -*-===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny fluent builder for hand-written IR in unit tests.
///
//===----------------------------------------------------------------------===//

#ifndef URCM_TESTS_IRTESTHELPERS_H
#define URCM_TESTS_IRTESTHELPERS_H

#include "urcm/ir/IR.h"

namespace urcm {
namespace testing {

/// Convenience wrapper around an IRFunction under construction.
class FuncBuilder {
public:
  FuncBuilder(IRModule &M, const std::string &Name, bool ReturnsValue = false,
              uint32_t NumParams = 0)
      : M(M), F(M.addFunction(Name, ReturnsValue, NumParams)) {
    for (uint32_t P = 0; P != NumParams; ++P)
      F->newReg();
  }

  IRFunction *function() { return F; }

  BasicBlock *block(const std::string &Name) { return F->addBlock(Name); }

  Reg reg() { return F->newReg(); }

  FuncBuilder &at(BasicBlock *B) {
    Cur = B;
    return *this;
  }

  FuncBuilder &inst(Opcode Op, Reg Dst, std::vector<Operand> Ops) {
    Cur->insts().push_back(Instruction(Op, Dst, std::move(Ops)));
    return *this;
  }

  FuncBuilder &mov(Reg Dst, int64_t Imm) {
    return inst(Opcode::Mov, Dst, {Operand::imm(Imm)});
  }
  FuncBuilder &movr(Reg Dst, Reg Src) {
    return inst(Opcode::Mov, Dst, {Operand::reg(Src)});
  }
  FuncBuilder &add(Reg Dst, Reg A, Reg B) {
    return inst(Opcode::Add, Dst, {Operand::reg(A), Operand::reg(B)});
  }
  FuncBuilder &load(Reg Dst, Operand Addr) {
    return inst(Opcode::Load, Dst, {Addr});
  }
  FuncBuilder &store(Reg Src, Operand Addr) {
    return inst(Opcode::Store, NoReg, {Operand::reg(Src), Addr});
  }
  FuncBuilder &br(BasicBlock *Target) {
    return inst(Opcode::Br, NoReg, {Operand::block(Target->id())});
  }
  FuncBuilder &condbr(Reg Cond, BasicBlock *TrueB, BasicBlock *FalseB) {
    return inst(Opcode::CondBr, NoReg,
                {Operand::reg(Cond), Operand::block(TrueB->id()),
                 Operand::block(FalseB->id())});
  }
  FuncBuilder &ret() { return inst(Opcode::Ret, NoReg, {}); }
  FuncBuilder &ret(Reg Value) {
    return inst(Opcode::Ret, NoReg, {Operand::reg(Value)});
  }

private:
  [[maybe_unused]] IRModule &M;
  IRFunction *F;
  BasicBlock *Cur = nullptr;
};

} // namespace testing
} // namespace urcm

#endif // URCM_TESTS_IRTESTHELPERS_H
