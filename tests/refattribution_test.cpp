//===- refattribution_test.cpp - Per-reference attribution tests ---------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// The attribution profiler's contract, pinned here:
//
//  1. merge invariant — per-RefId tables from sharded replay merged
//     with operator+= reproduce the sequential tables bit for bit, for
//     every shard count, on all six paper benchmarks and on synthetic
//     traces covering every kernel family;
//  2. serving invariance — the engine produces bit-identical tables
//     with no store, a cold store, and a warm store (where the trace is
//     decoded from disk and the Simulator never runs);
//  3. live equivalence — the replayed table equals the live DataCache's
//     (SimConfig::Attribution) for the same geometry and hints;
//  4. conservation — attribution rows sum to the aggregate CacheStats
//     (hits, misses, bypasses, dead write-backs, evictions), so no
//     event is double-charged or dropped, and unnumbered events land in
//     the overflow row;
//  5. the profile renderings (JSON, annotate) are deterministic and
//     flag prediction mismatches where the counters say they happened.
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/RefProfile.h"

#include "urcm/driver/Driver.h"
#include "urcm/sim/ShardedReplay.h"
#include "urcm/sim/SweepEngine.h"
#include "urcm/sim/TraceStore.h"
#include "urcm/support/RNG.h"
#include "urcm/support/ThreadPool.h"
#include "urcm/workloads/Workloads.h"

#include <filesystem>
#include <gtest/gtest.h>
#include <memory>
#include <unistd.h>

using namespace urcm;

namespace {

CacheConfig config(uint32_t Lines, uint32_t Assoc, uint32_t LineWords = 1) {
  CacheConfig C;
  C.NumLines = Lines;
  C.Assoc = Assoc;
  C.LineWords = LineWords;
  return C;
}

/// Fresh scratch directory per test case, removed on destruction.
struct ScratchDir {
  std::filesystem::path Path;
  explicit ScratchDir(const char *Name) {
    Path = std::filesystem::temp_directory_path() /
           (std::string("urcm_refattr_") + Name + "." +
            std::to_string(::getpid()));
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }
};

/// A deterministic trace over \p NumRefs static references: sequential
/// id runs, loop-style back jumps, unnumbered stretches, hint bits.
std::vector<TraceEvent> numberedTrace(uint64_t Seed, size_t N,
                                      uint16_t NumRefs) {
  SplitMix64 Rng(Seed);
  std::vector<TraceEvent> Trace;
  Trace.reserve(N);
  uint32_t Hot = 0;
  uint16_t Ref = 0;
  for (size_t I = 0; I != N; ++I) {
    uint64_t Roll = Rng.nextBelow(100);
    TraceEvent E;
    E.Addr = static_cast<uint32_t>(Roll < 60
                                       ? (Hot + Rng.nextBelow(8)) % 700
                                       : Rng.nextBelow(700));
    if (Roll == 99)
      Hot = static_cast<uint32_t>(Rng.nextBelow(700));
    E.IsWrite = Rng.nextBelow(4) == 0;
    E.Info.Bypass = Rng.nextBelow(10) == 0;
    E.Info.LastRef = !E.Info.Bypass && Rng.nextBelow(13) == 0;
    if (Roll < 70)
      Ref = static_cast<uint16_t>((Ref + 1) % NumRefs);
    else if (Roll < 85)
      Ref = static_cast<uint16_t>(Rng.nextBelow(NumRefs));
    E.RefId = Roll < 95 ? Ref : MemRefInfo::NoRefId;
    Trace.push_back(E);
  }
  return Trace;
}

/// Every kernel family, all requesting attribution over \p NumRefs:
/// the two-way fast kernel, the generic replayer (4-way, FIFO,
/// write-through, multi-word lines), fully-associative LRU (the
/// capacity-shard family, which attribution reroutes to per-event
/// replay), Random and Belady MIN (sequential leftover units), hinted
/// and hint-stripped views.
std::vector<SweepPoint> attributingPoints(uint32_t NumRefs) {
  std::vector<SweepPoint> Points = {
      {config(128, 2), TracePolicy::LRU, false},
      {config(128, 2), TracePolicy::LRU, true},
      {config(16, 2), TracePolicy::LRU, false},
      {config(64, 4), TracePolicy::LRU, false},
      {config(64, 2), TracePolicy::FIFO, false},
      {config(32, 2, 2), TracePolicy::LRU, false},
      {config(32, 32), TracePolicy::LRU, false},
      {config(64, 2), TracePolicy::Random, false},
      {config(64, 2), TracePolicy::MIN, false},
  };
  SweepPoint WriteThrough{config(64, 2), TracePolicy::LRU, false};
  WriteThrough.Config.Write = WritePolicy::WriteThrough;
  Points.push_back(WriteThrough);
  for (SweepPoint &P : Points)
    P.AttributionRefs = NumRefs;
  return Points;
}

struct StreamRun {
  std::vector<CacheStats> Stats;
  std::vector<RefAttribution> Attrib;
};

StreamRun runSequential(const std::vector<TraceEvent> &Trace,
                        const std::vector<SweepPoint> &Points) {
  SweepPointStream Stream(Points, &Trace);
  Stream.reserve(Trace.size());
  Stream.feed(Trace.data(), Trace.size());
  StreamRun R;
  R.Stats = Stream.finish();
  for (size_t I = 0; I != Points.size(); ++I)
    R.Attrib.push_back(Stream.takeAttribution(I));
  return R;
}

StreamRun runSharded(const std::vector<TraceEvent> &Trace,
                     const std::vector<SweepPoint> &Points,
                     uint32_t Shards, ThreadPool &Pool) {
  ShardedSweepStream Stream(Points, Shards, &Pool, &Trace);
  Stream.reserve(Trace.size());
  Stream.feed(Trace.data(), Trace.size());
  StreamRun R;
  R.Stats = Stream.finish();
  for (size_t I = 0; I != Points.size(); ++I)
    R.Attrib.push_back(Stream.takeAttribution(I));
  return R;
}

uint64_t sumField(const RefAttribution &A,
                  uint64_t RefCounters::*Field) {
  uint64_t Sum = 0;
  for (uint32_t I = 0; I <= A.numRefs(); ++I)
    Sum += A.row(I).*Field;
  return Sum;
}

} // namespace

//===----------------------------------------------------------------------===//
// Merge invariant and conservation on synthetic traces
//===----------------------------------------------------------------------===//

TEST(RefAttribution, ShardedTablesBitIdenticalToSequential) {
  ThreadPool Pool(4);
  constexpr uint16_t NumRefs = 37;
  const std::vector<SweepPoint> Points = attributingPoints(NumRefs);
  for (uint64_t Seed : {3u, 17u, 99u}) {
    const std::vector<TraceEvent> Trace =
        numberedTrace(Seed, 30000, NumRefs);
    const StreamRun Sequential = runSequential(Trace, Points);
    for (uint32_t Shards : {1u, 2u, 7u, 64u}) {
      const StreamRun Sharded = runSharded(Trace, Points, Shards, Pool);
      ASSERT_EQ(Sharded.Attrib.size(), Sequential.Attrib.size());
      for (size_t I = 0; I != Points.size(); ++I) {
        EXPECT_EQ(Sharded.Stats[I], Sequential.Stats[I])
            << "seed " << Seed << " shards " << Shards << " point " << I;
        EXPECT_EQ(Sharded.Attrib[I], Sequential.Attrib[I])
            << "seed " << Seed << " shards " << Shards << " point " << I;
      }
    }
  }
}

TEST(RefAttribution, RowsSumToAggregateStats) {
  constexpr uint16_t NumRefs = 23;
  const std::vector<TraceEvent> Trace = numberedTrace(7, 40000, NumRefs);
  const std::vector<SweepPoint> Points = attributingPoints(NumRefs);
  const StreamRun R = runSequential(Trace, Points);
  for (size_t I = 0; I != Points.size(); ++I) {
    const CacheStats &S = R.Stats[I];
    const RefAttribution &A = R.Attrib[I];
    // Every through-cache access is exactly one hit or one miss; every
    // bypass-hinted access is exactly one bypass (memory-served or
    // hit-migrated); dead write-backs and evictions match the
    // aggregate counters one for one.
    EXPECT_EQ(sumField(A, &RefCounters::Hits), S.ReadHits + S.WriteHits)
        << "point " << I;
    EXPECT_EQ(sumField(A, &RefCounters::Misses),
              S.Reads + S.Writes - S.ReadHits - S.WriteHits)
        << "point " << I;
    EXPECT_EQ(sumField(A, &RefCounters::Bypasses),
              S.BypassReads + S.BypassWrites + S.BypassHitMigrations)
        << "point " << I;
    EXPECT_EQ(sumField(A, &RefCounters::DeadWriteBacksSuppressed),
              S.DeadWriteBacksAvoided)
        << "point " << I;
    // Every replacement eviction has exactly one causer and one
    // installer-victim (flush write-backs at end of trace charge
    // nobody, and they are not Evictions).
    EXPECT_EQ(sumField(A, &RefCounters::EvictionsCaused),
              sumField(A, &RefCounters::EvictionsSuffered))
        << "point " << I;
  }
}

TEST(RefAttribution, UnnumberedEventsLandInOverflowRow) {
  std::vector<TraceEvent> Trace = numberedTrace(5, 5000, 11);
  for (TraceEvent &E : Trace)
    E.RefId = MemRefInfo::NoRefId; // Strip all numbering.
  std::vector<SweepPoint> Points = {
      {config(128, 2), TracePolicy::LRU, false}};
  Points[0].AttributionRefs = 11;
  const StreamRun R = runSequential(Trace, Points);
  const RefAttribution &A = R.Attrib[0];
  for (uint32_t I = 0; I != A.numRefs(); ++I)
    EXPECT_EQ(A.row(I), RefCounters()) << "row " << I;
  EXPECT_EQ(A.overflow().Hits + A.overflow().Misses +
                A.overflow().Bypasses,
            static_cast<uint64_t>(Trace.size()));
  // Out-of-range ids clamp into the overflow row rather than indexing
  // out of bounds.
  EXPECT_EQ(&A.row(11), &A.overflow());
  EXPECT_EQ(&A.row(0xFFFF), &A.overflow());
}

//===----------------------------------------------------------------------===//
// The acceptance grid: six paper benchmarks, engine-served attribution,
// shards {1, 7, auto} x {no store, cold, warm}, bit-identical — and
// equal to the live DataCache's table for the same geometry.
//===----------------------------------------------------------------------===//

namespace {

std::shared_ptr<MachineProgram> compileEraUnified(const Workload &W) {
  CompileOptions Options;
  Options.IRGen.ScalarLocalsInMemory = true;
  Options.Scheme = UnifiedOptions::unified();
  DiagnosticEngine Diags;
  CompileResult R = compileProgram(W.Source, Options, Diags);
  EXPECT_TRUE(R.Ok) << W.Name << ": " << Diags.str();
  return std::make_shared<MachineProgram>(std::move(R.Program));
}

/// One engine run; \p StoreDir empty disables the store.
std::vector<RefAttribution>
engineAttribution(std::shared_ptr<MachineProgram> Prog,
                  const std::vector<SweepPoint> &Points, uint32_t Shards,
                  const std::string &StoreDir, ThreadPool &Pool) {
  SweepEngine Engine(&Pool);
  Engine.setShards(Shards);
  DiagnosticEngine Diags;
  if (!StoreDir.empty())
    Engine.setTraceStore(StoreDir, &Diags);
  SimConfig Base;
  Base.Cache = config(128, 2);
  uint64_t Hash = StoreDir.empty() ? 0 : traceContentHash(*Prog, Base);
  Engine.schedule("exp", "g", Base, Points,
                  [Prog](const SimConfig &Sim) {
                    Simulator S(Sim);
                    return S.run(*Prog);
                  },
                  Hash);
  Engine.run();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_TRUE(Engine.base("exp").ok());
  std::vector<RefAttribution> Out;
  for (size_t I = 0; I != Points.size(); ++I)
    Out.push_back(Engine.attribution("exp", I));
  return Out;
}

} // namespace

TEST(RefAttribution, SixBenchmarksAcrossShardsAndStoreModes) {
  ThreadPool Pool(4);
  for (const Workload &W : paperWorkloads()) {
    std::shared_ptr<MachineProgram> Prog = compileEraUnified(W);
    const uint32_t NumRefs =
        static_cast<uint32_t>(Prog->RefTable.size());
    ASSERT_GT(NumRefs, 0u) << W.Name;
    std::vector<SweepPoint> Points = {
        {config(128, 2), TracePolicy::LRU, false},
        {config(128, 2), TracePolicy::LRU, true},
        {config(16, 2), TracePolicy::LRU, false},
    };
    for (SweepPoint &P : Points)
      P.AttributionRefs = NumRefs;

    // The oracle: sequential, no store.
    const std::vector<RefAttribution> Oracle =
        engineAttribution(Prog, Points, 1, "", Pool);
    // The hinted point must see the hint machinery in action somewhere
    // across the benchmarks; spot-check it is not all-zero here.
    uint64_t Accesses = 0;
    for (uint32_t R = 0; R <= Oracle[0].numRefs(); ++R)
      Accesses += Oracle[0].row(R).accesses();
    EXPECT_GT(Accesses, 0u) << W.Name;

    ScratchDir Dir(W.Name.c_str());
    auto expectMatch = [&](const std::vector<RefAttribution> &Got,
                           const char *Label) {
      ASSERT_EQ(Got.size(), Oracle.size());
      for (size_t I = 0; I != Oracle.size(); ++I)
        EXPECT_EQ(Got[I], Oracle[I])
            << W.Name << " " << Label << " point " << I;
    };
    // No store, sharded.
    expectMatch(engineAttribution(Prog, Points, 7, "", Pool),
                "no-store/shards=7");
    // Cold store (records), sequential.
    expectMatch(engineAttribution(Prog, Points, 1, Dir.str(), Pool),
                "cold/shards=1");
    // Warm store (trace decoded from disk, no Simulator), sharded and
    // auto-sharded.
    expectMatch(engineAttribution(Prog, Points, 7, Dir.str(), Pool),
                "warm/shards=7");
    expectMatch(engineAttribution(Prog, Points, 0, Dir.str(), Pool),
                "warm/shards=auto");
  }
}

TEST(RefAttribution, LiveSimulatorMatchesEngineReplay) {
  const Workload *W = findWorkload("Towers");
  ASSERT_NE(W, nullptr);
  std::shared_ptr<MachineProgram> Prog = compileEraUnified(*W);
  const uint32_t NumRefs = static_cast<uint32_t>(Prog->RefTable.size());

  // Live: the DataCache accumulates attribution during simulation.
  RefAttribution Live(NumRefs);
  SimConfig Sim;
  Sim.Cache = config(128, 2);
  Sim.Attribution = &Live;
  Simulator S(Sim);
  SimResult R = S.run(*Prog);
  ASSERT_TRUE(R.ok()) << R.Error;

  // Replayed: the engine's hinted point at the same geometry.
  ThreadPool Pool(4);
  std::vector<SweepPoint> Points = {
      {config(128, 2), TracePolicy::LRU, false}};
  Points[0].AttributionRefs = NumRefs;
  const std::vector<RefAttribution> Replayed =
      engineAttribution(Prog, Points, 7, "", Pool);
  EXPECT_EQ(Replayed[0], Live);
}

//===----------------------------------------------------------------------===//
// Profile renderings
//===----------------------------------------------------------------------===//

TEST(RefProfile, JSONAndAnnotateRenderTowers) {
  const Workload *W = findWorkload("Towers");
  ASSERT_NE(W, nullptr);
  std::shared_ptr<MachineProgram> Prog = compileEraUnified(*W);
  RefAttribution Attr(static_cast<uint32_t>(Prog->RefTable.size()));
  SimConfig Sim;
  Sim.Cache = config(128, 2);
  Sim.Attribution = &Attr;
  Simulator S(Sim);
  SimResult R = S.run(*Prog);
  ASSERT_TRUE(R.ok()) << R.Error;

  // The JSON totals must reconcile with the run's cache counters.
  std::vector<RefProfileRow> Rows = buildRefProfile(*Prog, Attr);
  ASSERT_EQ(Rows.size(), Prog->RefTable.size());
  RefCounters Total;
  for (const RefProfileRow &Row : Rows)
    Total += Row.Counters;
  Total += Attr.overflow();
  EXPECT_EQ(Total.Hits, R.Cache.ReadHits + R.Cache.WriteHits);
  EXPECT_EQ(Total.Bypasses, R.Cache.BypassReads + R.Cache.BypassWrites +
                                R.Cache.BypassHitMigrations);
  EXPECT_EQ(Total.DeadWriteBacksSuppressed,
            R.Cache.DeadWriteBacksAvoided);

  std::string JSON = refProfileJSON(*Prog, Attr, "Towers");
  EXPECT_NE(JSON.find("\"workload\": \"Towers\""), std::string::npos);
  EXPECT_NE(JSON.find("\"form\": \"UmAm_LOAD\""), std::string::npos);
  EXPECT_NE(JSON.find("\"class\": \"unambiguous\""), std::string::npos);
  EXPECT_NE(JSON.find("\"overflow\""), std::string::npos);

  std::string Annotate = refProfileAnnotate(*Prog, Attr, W->Source);
  EXPECT_NE(Annotate.find("ref profile:"), std::string::npos);
  EXPECT_NE(Annotate.find("| source"), std::string::npos);
  // Determinism: rendering twice from the same table is byte-identical
  // (the golden comparison in scripts/check.sh --profile relies on it).
  EXPECT_EQ(Annotate, refProfileAnnotate(*Prog, Attr, W->Source));
  EXPECT_EQ(JSON, refProfileJSON(*Prog, Attr, "Towers"));
}

TEST(RefProfile, MismatchFlagsFollowTheCounters) {
  // A fabricated two-ref program rendering: one bypass-classified ref
  // that still misses (!bypass-miss) and one dead-tagged ref whose
  // lines were evicted (!dead-evicted).
  const char *Source = "a = b;\nc = d;\n";
  MachineProgram Prog;
  MachineFunction F;
  F.Name = "f";
  F.EntryIndex = 0;
  F.CodeSize = 2;
  Prog.Functions.push_back(F);
  for (uint32_t I = 0; I != 2; ++I) {
    MInst MI;
    MI.Op = I == 0 ? MOpcode::Ld : MOpcode::St;
    MI.MemInfo.Class = RefClass::Unambiguous;
    MI.MemInfo.Bypass = I == 0;
    MI.MemInfo.LastRef = I == 1;
    MI.MemInfo.RefId = static_cast<uint16_t>(I);
    Prog.Code.push_back(MI);
    MachineProgram::StaticRef Ref;
    Ref.CodeIndex = I;
    Ref.Loc = SourceLoc(I + 1, 1);
    Prog.RefTable.push_back(Ref);
  }
  RefAttribution Attr(2);
  Attr.row(0).Bypasses = 10;
  Attr.row(0).Misses = 4; // Bypass-classified, yet missing.
  Attr.row(1).Hits = 5;
  Attr.row(1).EvictionsSuffered = 2; // Dead-tagged, yet evicted.

  std::vector<RefProfileRow> Rows = buildRefProfile(Prog, Attr);
  ASSERT_EQ(Rows.size(), 2u);
  EXPECT_STREQ(Rows[0].Form, "UmAm_LOAD");
  EXPECT_STREQ(Rows[1].Form, "AmSp_STORE");
  EXPECT_FALSE(Rows[0].deadEvicted());
  EXPECT_TRUE(Rows[1].deadEvicted());

  std::string Annotate = refProfileAnnotate(Prog, Attr, Source);
  size_t Line1 = Annotate.find("| a = b;");
  size_t Line2 = Annotate.find("| c = d;");
  ASSERT_NE(Line1, std::string::npos) << Annotate;
  ASSERT_NE(Line2, std::string::npos) << Annotate;
  size_t Flag1 = Annotate.find("!bypass-miss", Line1);
  size_t Flag2 = Annotate.find("!dead-evicted", Line2);
  EXPECT_LT(Flag1, Line2) << Annotate; // Flag sits on the first line.
  EXPECT_NE(Flag2, std::string::npos) << Annotate;

  std::string JSON = refProfileJSON(Prog, Attr, "synthetic");
  EXPECT_NE(JSON.find("\"dead_evicted\": true"), std::string::npos);
}
