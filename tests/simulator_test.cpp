//===- simulator_test.cpp - URCM-RISC simulator tests --------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/Simulator.h"

#include "urcm/driver/Driver.h"

#include <gtest/gtest.h>

using namespace urcm;

namespace {

SimResult runSource(const std::string &Source,
                    const CompileOptions &Options = {},
                    SimConfig Sim = {}) {
  DiagnosticEngine Diags;
  return compileAndRun(Source, Options, Sim, Diags);
}

} // namespace

TEST(Simulator, ArithmeticOperators) {
  SimResult R = runSource(
      "void main() {\n"
      "  int a = 17; int b = 5;\n"
      "  print(a + b); print(a - b); print(a * b); print(a / b);\n"
      "  print(a % b); print(a & b); print(a | b); print(a ^ b);\n"
      "  print(a << 2); print(a >> 1); print(-a); print(~a);\n"
      "}\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  std::vector<int64_t> Expected = {22, 12, 85, 3, 2, 17 & 5, 17 | 5,
                                   17 ^ 5, 68, 8, -17, ~17};
  EXPECT_EQ(R.Output, Expected);
}

TEST(Simulator, ComparisonsAndLogic) {
  SimResult R = runSource(
      "void main() {\n"
      "  int a = 3; int b = 7;\n"
      "  print(a < b); print(a <= b); print(a > b); print(a >= b);\n"
      "  print(a == b); print(a != b); print(!a); print(!0);\n"
      "  print(a < b && b < 10); print(a > b || b > 100);\n"
      "}\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  std::vector<int64_t> Expected = {1, 1, 0, 0, 0, 1, 0, 1, 1, 0};
  EXPECT_EQ(R.Output, Expected);
}

TEST(Simulator, ShortCircuitSkipsSideEffects) {
  SimResult R = runSource(
      "int calls;\n"
      "int bump() { calls = calls + 1; return 1; }\n"
      "void main() {\n"
      "  int x;\n"
      "  calls = 0;\n"
      "  x = 0 && bump();\n"
      "  print(calls);\n"
      "  x = 1 || bump();\n"
      "  print(calls);\n"
      "  x = 1 && bump();\n"
      "  print(calls);\n"
      "}\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{0, 0, 1}));
}

TEST(Simulator, LoopsAndControlFlow) {
  SimResult R = runSource(
      "void main() {\n"
      "  int i; int s = 0;\n"
      "  for (i = 0; i < 10; i = i + 1) {\n"
      "    if (i == 3) { continue; }\n"
      "    if (i == 8) { break; }\n"
      "    s = s + i;\n"
      "  }\n"
      "  print(s);\n"
      "  i = 0;\n"
      "  do { i = i + 1; } while (i < 5);\n"
      "  print(i);\n"
      "  while (i > 0) { i = i - 2; }\n"
      "  print(i);\n"
      "}\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  // 0+1+2+4+5+6+7 = 25.
  EXPECT_EQ(R.Output, (std::vector<int64_t>{25, 5, -1}));
}

TEST(Simulator, RecursionDeep) {
  SimResult R = runSource(
      "int fib(int n) {\n"
      "  if (n < 2) { return n; }\n"
      "  return fib(n - 1) + fib(n - 2);\n"
      "}\n"
      "int depth(int n) {\n"
      "  if (n == 0) { return 0; }\n"
      "  return 1 + depth(n - 1);\n"
      "}\n"
      "void main() { print(fib(15)); print(depth(500)); }\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{610, 500}));
}

TEST(Simulator, PointersAndArrays) {
  SimResult R = runSource(
      "int a[10];\n"
      "void fill(int *p, int n, int v) {\n"
      "  int i;\n"
      "  for (i = 0; i < n; i = i + 1) { p[i] = v + i; }\n"
      "}\n"
      "void main() {\n"
      "  int x;\n"
      "  int *q;\n"
      "  fill(&a[0], 10, 100);\n"
      "  q = &a[5];\n"
      "  *q = 1;\n"
      "  q = q + 2;\n"
      "  x = *q;\n"
      "  print(a[5]); print(x); print(a[9]);\n"
      "  print(q - &a[0]);\n"
      "}\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{1, 107, 109, 7}));
}

TEST(Simulator, AmbiguousAliasStoreVisible) {
  // The paper's core hazard: a store through a pointer must be seen by a
  // subsequent direct reference (and vice versa) under every scheme.
  for (bool Era : {false, true}) {
    CompileOptions Options;
    Options.IRGen.ScalarLocalsInMemory = Era;
    SimResult R = runSource(
        "int g;\n"
        "void set(int *p, int v) { *p = v; }\n"
        "void main() {\n"
        "  g = 1;\n"
        "  set(&g, 42);\n"
        "  print(g);\n"
        "}\n",
        Options);
    ASSERT_TRUE(R.ok()) << R.Error;
    EXPECT_EQ(R.Output, (std::vector<int64_t>{42}));
    EXPECT_EQ(R.CoherenceViolations, 0u);
  }
}

TEST(Simulator, GlobalSharedAcrossCalls) {
  SimResult R = runSource(
      "int counter;\n"
      "void tick() { counter = counter + 1; }\n"
      "void main() {\n"
      "  int i;\n"
      "  counter = 0;\n"
      "  for (i = 0; i < 100; i = i + 1) { tick(); }\n"
      "  print(counter);\n"
      "}\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{100}));
  EXPECT_EQ(R.CoherenceViolations, 0u);
}

TEST(Simulator, DivisionByZeroReported) {
  SimResult R = runSource("void main() { int z = 0; print(1 / z); }");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("division by zero"), std::string::npos);
}

TEST(Simulator, RemainderByZeroReported) {
  SimResult R = runSource("void main() { int z = 0; print(1 % z); }");
  EXPECT_FALSE(R.ok());
}

TEST(Simulator, StepLimitEnforced) {
  SimConfig Sim;
  Sim.MaxSteps = 1000;
  SimResult R = runSource("void main() { while (1) { } }", {}, Sim);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("step limit"), std::string::npos);
  EXPECT_EQ(R.Steps, 1000u);
}

TEST(Simulator, OutOfRangeAddressReported) {
  SimResult R = runSource(
      "int a[2];\n"
      "void main() { int *p; p = &a[0]; p = p - 100000000; print(*p); }");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("out of range"), std::string::npos);
}

TEST(Simulator, TraceRecording) {
  SimConfig Sim;
  Sim.RecordTrace = true;
  SimResult R = runSource(
      "int g; void main() { g = 1; print(g); }", {}, Sim);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(R.Trace.empty());
  // The trace must contain the store and load of g.
  unsigned Writes = 0, Reads = 0;
  for (const TraceEvent &E : R.Trace)
    (E.IsWrite ? Writes : Reads) += 1;
  EXPECT_GE(Writes, 1u);
  EXPECT_GE(Reads, 1u);
}

TEST(Simulator, ParanoidCleanOnAllSchemes) {
  const char *Source =
      "int a[32]; int g;\n"
      "int sum(int *p, int n) {\n"
      "  int i; int s = 0;\n"
      "  for (i = 0; i < n; i = i + 1) { s = s + p[i]; }\n"
      "  return s;\n"
      "}\n"
      "void main() {\n"
      "  int i;\n"
      "  for (i = 0; i < 32; i = i + 1) { a[i] = i; }\n"
      "  g = sum(&a[0], 32);\n"
      "  print(g);\n"
      "}\n";
  for (auto Scheme :
       {UnifiedOptions::conventional(), UnifiedOptions::bypassOnly(),
        UnifiedOptions::deadTagOnly(), UnifiedOptions::unified(),
        UnifiedOptions::reuseAware()}) {
    CompileOptions Options;
    Options.Scheme = Scheme;
    SimResult R = runSource(Source, Options);
    ASSERT_TRUE(R.ok()) << R.Error;
    EXPECT_EQ(R.Output, (std::vector<int64_t>{496}));
    EXPECT_EQ(R.CoherenceViolations, 0u);
  }
}
