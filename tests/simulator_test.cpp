//===- simulator_test.cpp - URCM-RISC simulator tests --------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/Simulator.h"

#include "urcm/driver/Driver.h"

#include <gtest/gtest.h>

using namespace urcm;

namespace {

SimResult runSource(const std::string &Source,
                    const CompileOptions &Options = {},
                    SimConfig Sim = {}) {
  DiagnosticEngine Diags;
  return compileAndRun(Source, Options, Sim, Diags);
}

} // namespace

TEST(Simulator, ArithmeticOperators) {
  SimResult R = runSource(
      "void main() {\n"
      "  int a = 17; int b = 5;\n"
      "  print(a + b); print(a - b); print(a * b); print(a / b);\n"
      "  print(a % b); print(a & b); print(a | b); print(a ^ b);\n"
      "  print(a << 2); print(a >> 1); print(-a); print(~a);\n"
      "}\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  std::vector<int64_t> Expected = {22, 12, 85, 3, 2, 17 & 5, 17 | 5,
                                   17 ^ 5, 68, 8, -17, ~17};
  EXPECT_EQ(R.Output, Expected);
}

TEST(Simulator, ComparisonsAndLogic) {
  SimResult R = runSource(
      "void main() {\n"
      "  int a = 3; int b = 7;\n"
      "  print(a < b); print(a <= b); print(a > b); print(a >= b);\n"
      "  print(a == b); print(a != b); print(!a); print(!0);\n"
      "  print(a < b && b < 10); print(a > b || b > 100);\n"
      "}\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  std::vector<int64_t> Expected = {1, 1, 0, 0, 0, 1, 0, 1, 1, 0};
  EXPECT_EQ(R.Output, Expected);
}

TEST(Simulator, ShortCircuitSkipsSideEffects) {
  SimResult R = runSource(
      "int calls;\n"
      "int bump() { calls = calls + 1; return 1; }\n"
      "void main() {\n"
      "  int x;\n"
      "  calls = 0;\n"
      "  x = 0 && bump();\n"
      "  print(calls);\n"
      "  x = 1 || bump();\n"
      "  print(calls);\n"
      "  x = 1 && bump();\n"
      "  print(calls);\n"
      "}\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{0, 0, 1}));
}

TEST(Simulator, LoopsAndControlFlow) {
  SimResult R = runSource(
      "void main() {\n"
      "  int i; int s = 0;\n"
      "  for (i = 0; i < 10; i = i + 1) {\n"
      "    if (i == 3) { continue; }\n"
      "    if (i == 8) { break; }\n"
      "    s = s + i;\n"
      "  }\n"
      "  print(s);\n"
      "  i = 0;\n"
      "  do { i = i + 1; } while (i < 5);\n"
      "  print(i);\n"
      "  while (i > 0) { i = i - 2; }\n"
      "  print(i);\n"
      "}\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  // 0+1+2+4+5+6+7 = 25.
  EXPECT_EQ(R.Output, (std::vector<int64_t>{25, 5, -1}));
}

TEST(Simulator, RecursionDeep) {
  SimResult R = runSource(
      "int fib(int n) {\n"
      "  if (n < 2) { return n; }\n"
      "  return fib(n - 1) + fib(n - 2);\n"
      "}\n"
      "int depth(int n) {\n"
      "  if (n == 0) { return 0; }\n"
      "  return 1 + depth(n - 1);\n"
      "}\n"
      "void main() { print(fib(15)); print(depth(500)); }\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{610, 500}));
}

TEST(Simulator, PointersAndArrays) {
  SimResult R = runSource(
      "int a[10];\n"
      "void fill(int *p, int n, int v) {\n"
      "  int i;\n"
      "  for (i = 0; i < n; i = i + 1) { p[i] = v + i; }\n"
      "}\n"
      "void main() {\n"
      "  int x;\n"
      "  int *q;\n"
      "  fill(&a[0], 10, 100);\n"
      "  q = &a[5];\n"
      "  *q = 1;\n"
      "  q = q + 2;\n"
      "  x = *q;\n"
      "  print(a[5]); print(x); print(a[9]);\n"
      "  print(q - &a[0]);\n"
      "}\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{1, 107, 109, 7}));
}

TEST(Simulator, AmbiguousAliasStoreVisible) {
  // The paper's core hazard: a store through a pointer must be seen by a
  // subsequent direct reference (and vice versa) under every scheme.
  for (bool Era : {false, true}) {
    CompileOptions Options;
    Options.IRGen.ScalarLocalsInMemory = Era;
    SimResult R = runSource(
        "int g;\n"
        "void set(int *p, int v) { *p = v; }\n"
        "void main() {\n"
        "  g = 1;\n"
        "  set(&g, 42);\n"
        "  print(g);\n"
        "}\n",
        Options);
    ASSERT_TRUE(R.ok()) << R.Error;
    EXPECT_EQ(R.Output, (std::vector<int64_t>{42}));
    EXPECT_EQ(R.CoherenceViolations, 0u);
  }
}

TEST(Simulator, GlobalSharedAcrossCalls) {
  SimResult R = runSource(
      "int counter;\n"
      "void tick() { counter = counter + 1; }\n"
      "void main() {\n"
      "  int i;\n"
      "  counter = 0;\n"
      "  for (i = 0; i < 100; i = i + 1) { tick(); }\n"
      "  print(counter);\n"
      "}\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{100}));
  EXPECT_EQ(R.CoherenceViolations, 0u);
}

TEST(Simulator, DivisionByZeroReported) {
  SimResult R = runSource("void main() { int z = 0; print(1 / z); }");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("division by zero"), std::string::npos);
}

TEST(Simulator, RemainderByZeroReported) {
  SimResult R = runSource("void main() { int z = 0; print(1 % z); }");
  EXPECT_FALSE(R.ok());
}

TEST(Simulator, StepLimitEnforced) {
  SimConfig Sim;
  Sim.MaxSteps = 1000;
  SimResult R = runSource("void main() { while (1) { } }", {}, Sim);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("step limit"), std::string::npos);
  EXPECT_EQ(R.Steps, 1000u);
}

TEST(Simulator, OutOfRangeAddressReported) {
  SimResult R = runSource(
      "int a[2];\n"
      "void main() { int *p; p = &a[0]; p = p - 100000000; print(*p); }");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("out of range"), std::string::npos);
}

TEST(Simulator, TraceRecording) {
  SimConfig Sim;
  Sim.RecordTrace = true;
  SimResult R = runSource(
      "int g; void main() { g = 1; print(g); }", {}, Sim);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_FALSE(R.Trace.empty());
  // The trace must contain the store and load of g.
  unsigned Writes = 0, Reads = 0;
  for (const TraceEvent &E : R.Trace)
    (E.IsWrite ? Writes : Reads) += 1;
  EXPECT_GE(Writes, 1u);
  EXPECT_GE(Reads, 1u);
}

TEST(Simulator, ParanoidCleanOnAllSchemes) {
  const char *Source =
      "int a[32]; int g;\n"
      "int sum(int *p, int n) {\n"
      "  int i; int s = 0;\n"
      "  for (i = 0; i < n; i = i + 1) { s = s + p[i]; }\n"
      "  return s;\n"
      "}\n"
      "void main() {\n"
      "  int i;\n"
      "  for (i = 0; i < 32; i = i + 1) { a[i] = i; }\n"
      "  g = sum(&a[0], 32);\n"
      "  print(g);\n"
      "}\n";
  for (auto Scheme :
       {UnifiedOptions::conventional(), UnifiedOptions::bypassOnly(),
        UnifiedOptions::deadTagOnly(), UnifiedOptions::unified(),
        UnifiedOptions::reuseAware()}) {
    CompileOptions Options;
    Options.Scheme = Scheme;
    SimResult R = runSource(Source, Options);
    ASSERT_TRUE(R.ok()) << R.Error;
    EXPECT_EQ(R.Output, (std::vector<int64_t>{496}));
    EXPECT_EQ(R.CoherenceViolations, 0u);
  }
}

//===----------------------------------------------------------------------===//
// Engine differential: the predecoded threaded-dispatch engine and the
// reference switch interpreter must produce bit-identical SimResults on
// every path — success, every error, and the step limit — including the
// recorded trace and all counters.
//===----------------------------------------------------------------------===//

namespace {

void expectSameSimResult(const SimResult &P, const SimResult &S,
                         const std::string &What) {
  EXPECT_EQ(P.Halted, S.Halted) << What;
  EXPECT_EQ(P.Error, S.Error) << What;
  EXPECT_EQ(P.Steps, S.Steps) << What;
  EXPECT_EQ(P.Output, S.Output) << What;
  EXPECT_EQ(P.Cache, S.Cache) << What;
  EXPECT_EQ(P.ICache, S.ICache) << What;
  EXPECT_EQ(P.InstructionFetches, S.InstructionFetches) << What;
  EXPECT_EQ(P.BypassTransitions, S.BypassTransitions) << What;
  EXPECT_EQ(P.CoherenceViolations, S.CoherenceViolations) << What;
  EXPECT_EQ(P.Refs.Unambiguous, S.Refs.Unambiguous) << What;
  EXPECT_EQ(P.Refs.Ambiguous, S.Refs.Ambiguous) << What;
  EXPECT_EQ(P.Refs.Spill, S.Refs.Spill) << What;
  EXPECT_EQ(P.Refs.Unknown, S.Refs.Unknown) << What;
  EXPECT_EQ(P.Refs.Bypassed, S.Refs.Bypassed) << What;
  EXPECT_EQ(P.Refs.LastRefTagged, S.Refs.LastRefTagged) << What;
  ASSERT_EQ(P.Trace.size(), S.Trace.size()) << What;
  for (size_t I = 0; I != P.Trace.size(); ++I) {
    EXPECT_EQ(P.Trace[I].Addr, S.Trace[I].Addr) << What << " event " << I;
    EXPECT_EQ(P.Trace[I].IsWrite, S.Trace[I].IsWrite)
        << What << " event " << I;
    EXPECT_EQ(P.Trace[I].Info.Bypass, S.Trace[I].Info.Bypass)
        << What << " event " << I;
    EXPECT_EQ(P.Trace[I].Info.LastRef, S.Trace[I].Info.LastRef)
        << What << " event " << I;
  }
}

/// Compiles \p Source once per engine and asserts identical results.
void expectEnginesAgree(const std::string &Source, SimConfig Sim = {},
                        const CompileOptions &Options = {}) {
  Sim.RecordTrace = true;
  Sim.Engine = SimEngine::Predecoded;
  SimResult P = runSource(Source, Options, Sim);
  Sim.Engine = SimEngine::Switch;
  SimResult S = runSource(Source, Options, Sim);
  expectSameSimResult(P, S, Source.substr(0, 40));
}

/// Runs a raw machine program under both engines.
void expectEnginesAgreeRaw(const MachineProgram &Prog, SimConfig Sim,
                           const std::string &What) {
  Sim.RecordTrace = true;
  Sim.Engine = SimEngine::Predecoded;
  SimResult P = Simulator(Sim).run(Prog);
  Sim.Engine = SimEngine::Switch;
  SimResult S = Simulator(Sim).run(Prog);
  expectSameSimResult(P, S, What);
}

} // namespace

TEST(EngineDifferential, ArithmeticErrorsIdentical) {
  expectEnginesAgree("void main() { int z = 0; print(7 / z); }");
  expectEnginesAgree("void main() { int z = 0; print(7 % z); }");
  // Errors mid-loop: the erroring instruction must land on the same
  // step count (it sits mid-run for the predecoded engine).
  expectEnginesAgree("void main() {\n"
                     "  int i; int s = 0;\n"
                     "  for (i = 5; i >= 0 - 1; i = i - 1) {\n"
                     "    s = s + 100 / i;\n"
                     "  }\n"
                     "  print(s);\n"
                     "}\n");
}

TEST(EngineDifferential, OutOfRangeAccessIdentical) {
  expectEnginesAgree("int a[4];\n"
                     "void main() { int *p = &a[0]; print(p[99999999]); }");
  expectEnginesAgree("int a[4];\n"
                     "void main() { int *p = &a[0]; p[99999999] = 1; }");
  // Negative effective address.
  expectEnginesAgree("int a[4];\n"
                     "void main() { int *p = &a[0]; print(p[0-99999999]); }");
}

TEST(EngineDifferential, StepLimitIdentical) {
  const char *Spin = "void main() { int i;\n"
                     "  for (i = 0; i < 1000000; i = i + 1) {}\n"
                     "}\n";
  // Sweep limits so exhaustion lands on every position within a run
  // (run boundaries are where the predecoded engine hoists the check).
  for (uint64_t Limit : {0ull, 1ull, 2ull, 999ull, 1000ull, 1001ull,
                         1002ull, 1003ull, 5000ull}) {
    SimConfig Sim;
    Sim.MaxSteps = Limit;
    expectEnginesAgree(Spin, Sim);
  }
}

TEST(EngineDifferential, PCOffProgramIdentical) {
  // Control flow running past the last instruction (no Halt).
  MachineProgram FallOff;
  {
    MInst Li;
    Li.Op = MOpcode::Li;
    Li.Rd = 0;
    Li.Imm = 42;
    Li.UseImm = true;
    FallOff.Code = {Li};
  }
  SimConfig Sim;
  expectEnginesAgreeRaw(FallOff, Sim, "fall off end");

  // A jump landing far outside the program.
  MachineProgram WildJmp = FallOff;
  {
    MInst J;
    J.Op = MOpcode::Jmp;
    J.Target = 1000;
    WildJmp.Code.push_back(J);
  }
  expectEnginesAgreeRaw(WildJmp, Sim, "wild jump");
}

TEST(EngineDifferential, RetCodeDeadHintICacheIdentical) {
  // Once-executed functions get CodeDeadHint on their final Ret; with
  // the I-cache modeled, that return invalidates the function's code
  // lines (Ret/RetDead split in the predecoded engine).
  const char *Source = "int init(int n) { return n * 3; }\n"
                       "void main() {\n"
                       "  int i; int s = init(7);\n"
                       "  for (i = 0; i < 20; i = i + 1) { s = s + i; }\n"
                       "  print(s);\n"
                       "}\n";
  SimConfig Sim;
  Sim.ModelICache = true;
  Sim.ICache.NumLines = 8;
  Sim.ICache.Assoc = 2;
  Sim.ICache.LineWords = 4;
  expectEnginesAgree(Source, Sim);
  // The hint path must actually fire.
  Sim.RecordTrace = false;
  SimResult R = runSource(Source, {}, Sim);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_GT(R.ICache.DeadFrees, 0u);
}

TEST(EngineDifferential, WorkloadsWithHintsIdentical) {
  const char *Source = "int a[64];\n"
                       "int sum(int *p, int n) {\n"
                       "  int i; int s = 0;\n"
                       "  for (i = 0; i < n; i = i + 1) { s = s + p[i]; }\n"
                       "  return s;\n"
                       "}\n"
                       "void main() {\n"
                       "  int i;\n"
                       "  for (i = 0; i < 64; i = i + 1) { a[i] = i * i; }\n"
                       "  print(sum(&a[0], 64));\n"
                       "}\n";
  for (auto Scheme :
       {UnifiedOptions::conventional(), UnifiedOptions::unified(),
        UnifiedOptions::reuseAware()}) {
    CompileOptions Options;
    Options.Scheme = Scheme;
    expectEnginesAgree(Source, {}, Options);
  }
}
