//===- regalloc_test.cpp - Register allocation tests ---------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/regalloc/RegAlloc.h"

#include "urcm/ir/Verifier.h"
#include "urcm/irgen/IRGen.h"
#include "urcm/workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace urcm;

namespace {

/// Compiles and allocates; returns the module (kept alive by the fixture
/// caller) plus stats.
struct Allocated {
  CompiledModule Module;
  RegAllocStats Stats;

  Allocated(const std::string &Source, const RegAllocOptions &Options) {
    DiagnosticEngine Diags;
    Module = compileToIR(Source, Diags);
    EXPECT_TRUE(static_cast<bool>(Module)) << Diags.str();
    if (Module) {
      Stats = allocateRegisters(*Module.IR, Options);
      DiagnosticEngine VerifyDiags;
      EXPECT_TRUE(verifyModule(*Module.IR, VerifyDiags))
          << VerifyDiags.str();
    }
  }
};

/// Checks that every register mentioned in the module is below Limit.
void expectRegsBelow(const IRModule &M, uint32_t Limit) {
  for (const auto &F : M.functions()) {
    for (const auto &B : F->blocks()) {
      for (const Instruction &I : B->insts()) {
        if (I.Dst != NoReg)
          EXPECT_LT(I.Dst, Limit);
        for (const Operand &O : I.Ops)
          if (O.isReg())
            EXPECT_LT(O.getReg(), Limit);
      }
    }
    for (uint32_t P = 0; P != F->numParams(); ++P)
      EXPECT_LT(F->paramReg(P), Limit);
  }
}

const char *StraightLine = R"mc(
void main() {
  int a = 1;
  int b = 2;
  int c;
  c = a + b;
  print(c);
}
)mc";

/// Many simultaneously live values: forces spilling with a small bank.
const char *HighPressure = R"mc(
int out;
void main() {
  int v0 = 1; int v1 = 2; int v2 = 3; int v3 = 4; int v4 = 5;
  int v5 = 6; int v6 = 7; int v7 = 8; int v8 = 9; int v9 = 10;
  int va = 11; int vb = 12; int vc = 13; int vd = 14; int ve = 15;
  int vf = 16; int vg = 17; int vh = 18; int vi = 19; int vj = 20;
  out = v0 + v1 + v2 + v3 + v4 + v5 + v6 + v7 + v8 + v9
      + va + vb + vc + vd + ve + vf + vg + vh + vi + vj;
  out = out + v0 * v9 + v1 * v8 + v2 * v7 + v3 * v6 + v4 * v5
      + va * vj + vb * vi + vc * vh + vd * vg + ve * vf;
  print(out);
}
)mc";

} // namespace

TEST(RegAlloc, StraightLineColorsWithoutSpills) {
  RegAllocOptions Options;
  Allocated A(StraightLine, Options);
  EXPECT_EQ(A.Stats.NumSpilledWebs, 0u);
  EXPECT_GT(A.Stats.NumWebs, 0u);
  expectRegsBelow(*A.Module.IR, Options.NumColors);
}

TEST(RegAlloc, HighPressureSpillsWithSmallBank) {
  RegAllocOptions Options;
  Options.NumColors = 8;
  Allocated A(HighPressure, Options);
  EXPECT_GT(A.Stats.NumSpilledWebs, 0u);
  EXPECT_GT(A.Stats.NumSpillSlots, 0u);
  expectRegsBelow(*A.Module.IR, 8);
}

TEST(RegAlloc, HighPressureNoSpillsWithLargeBank) {
  RegAllocOptions Options;
  Options.NumColors = 48;
  Allocated A(HighPressure, Options);
  EXPECT_EQ(A.Stats.NumSpilledWebs, 0u);
}

TEST(RegAlloc, SpillCodeAnnotated) {
  RegAllocOptions Options;
  Options.NumColors = 8;
  Allocated A(HighPressure, Options);
  unsigned SpillStores = 0, SpillReloads = 0;
  for (const auto &F : A.Module.IR->functions())
    for (const auto &B : F->blocks())
      for (const Instruction &I : B->insts()) {
        if (I.isStore() && I.MemInfo.Class == RefClass::Spill)
          ++SpillStores;
        if (I.isLoad() && I.MemInfo.Class == RefClass::SpillReload)
          ++SpillReloads;
      }
  EXPECT_GT(SpillStores, 0u);
  EXPECT_GT(SpillReloads, 0u);
}

TEST(RegAlloc, UsageCountPolicyAlsoConverges) {
  RegAllocOptions Options;
  Options.NumColors = 8;
  Options.Policy = RegAllocPolicy::UsageCount;
  Allocated A(HighPressure, Options);
  expectRegsBelow(*A.Module.IR, 8);
}

TEST(RegAlloc, WorkloadsAllocateAtVariousBankSizes) {
  for (uint32_t Colors : {8u, 12u, 24u}) {
    for (const Workload &W : paperWorkloads()) {
      DiagnosticEngine Diags;
      CompiledModule Module = compileToIR(W.Source, Diags);
      ASSERT_TRUE(static_cast<bool>(Module)) << W.Name;
      RegAllocOptions Options;
      Options.NumColors = Colors;
      RegAllocStats Stats = allocateRegisters(*Module.IR, Options);
      EXPECT_GT(Stats.NumWebs, 0u) << W.Name;
      expectRegsBelow(*Module.IR, Colors);
      DiagnosticEngine VerifyDiags;
      EXPECT_TRUE(verifyModule(*Module.IR, VerifyDiags))
          << W.Name << " colors=" << Colors << ": " << VerifyDiags.str();
    }
  }
}

TEST(RegAlloc, IdentityMovesCoalesced) {
  RegAllocOptions Options;
  Allocated A(StraightLine, Options);
  for (const auto &F : A.Module.IR->functions())
    for (const auto &B : F->blocks())
      for (const Instruction &I : B->insts())
        if (I.Op == Opcode::Mov && I.Ops[0].isReg() &&
            I.Ops[0].getOffset() == 0)
          EXPECT_NE(I.Ops[0].getReg(), I.Dst);
}

TEST(RegAlloc, BothPoliciesPreserveWebCount) {
  // Web discovery happens before policy divergence: both should report
  // webs for the same program.
  DiagnosticEngine D1, D2;
  CompiledModule M1 = compileToIR(HighPressure, D1);
  CompiledModule M2 = compileToIR(HighPressure, D2);
  RegAllocOptions O1, O2;
  O1.Policy = RegAllocPolicy::ChaitinBriggs;
  O2.Policy = RegAllocPolicy::UsageCount;
  RegAllocStats S1 = allocateRegisters(*M1.IR, O1);
  RegAllocStats S2 = allocateRegisters(*M2.IR, O2);
  EXPECT_GT(S1.NumWebs, 0u);
  EXPECT_GT(S2.NumWebs, 0u);
}
