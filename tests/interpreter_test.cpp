//===- interpreter_test.cpp - IR interpreter + differential tests --------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// The interpreter is the oracle: pre-allocation IR, post-allocation IR
// and the machine simulation must all produce identical program output.
//
//===----------------------------------------------------------------------===//

#include "urcm/ir/Interpreter.h"

#include "urcm/driver/Driver.h"
#include "urcm/workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace urcm;

namespace {

InterpResult interpretSource(const std::string &Source,
                             bool EraMode = false) {
  DiagnosticEngine Diags;
  IRGenOptions Options;
  Options.ScalarLocalsInMemory = EraMode;
  CompiledModule Module = compileToIR(Source, Diags, Options);
  EXPECT_TRUE(static_cast<bool>(Module)) << Diags.str();
  if (!Module)
    return InterpResult();
  return interpretModule(*Module.IR);
}

} // namespace

TEST(Interpreter, BasicProgram) {
  InterpResult R = interpretSource(
      "void main() { int x = 6; int y = 7; print(x * y); }");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{42}));
}

TEST(Interpreter, PointerAndArraySemantics) {
  InterpResult R = interpretSource(
      "int a[4];\n"
      "void main() {\n"
      "  int *p;\n"
      "  a[0] = 10; a[1] = 11; a[2] = 12; a[3] = 13;\n"
      "  p = &a[1];\n"
      "  *p = 99;\n"
      "  print(a[1]); print(p[2]); print(*p + a[0]);\n"
      "}\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{99, 13, 109}));
}

TEST(Interpreter, RecursionWithFrames) {
  InterpResult R = interpretSource(
      "int fact(int n) {\n"
      "  int local[4];\n"
      "  local[0] = n;\n"
      "  if (n <= 1) { return 1; }\n"
      "  return local[0] * fact(n - 1);\n"
      "}\n"
      "void main() { print(fact(10)); }\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{3628800}));
}

TEST(Interpreter, DivisionByZeroCaught) {
  InterpResult R =
      interpretSource("void main() { int z = 0; print(4 / z); }");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("division by zero"), std::string::npos);
}

TEST(Interpreter, StepLimit) {
  DiagnosticEngine Diags;
  CompiledModule Module =
      compileToIR("void main() { while (1) { } }", Diags);
  ASSERT_TRUE(static_cast<bool>(Module));
  InterpConfig Config;
  Config.MaxSteps = 100;
  InterpResult R = interpretModule(*Module.IR, Config);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("step limit"), std::string::npos);
}

TEST(Interpreter, WildAddressCaught) {
  InterpResult R = interpretSource(
      "int a[2];\n"
      "void main() { int *p; p = &a[0]; p = p + 90000000; print(*p); }");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("out of range"), std::string::npos);
}

TEST(Interpreter, RunsPostAllocationIRToo) {
  const char *Source = "int g;\n"
                       "int twice(int v) { return v * 2; }\n"
                       "void main() { g = twice(21); print(g); }\n";
  DiagnosticEngine Diags;
  CompiledModule Module = compileToIR(Source, Diags);
  ASSERT_TRUE(static_cast<bool>(Module));

  InterpResult Before = interpretModule(*Module.IR);
  ASSERT_TRUE(Before.ok()) << Before.Error;

  allocateRegisters(*Module.IR, RegAllocOptions());
  InterpResult After = interpretModule(*Module.IR);
  ASSERT_TRUE(After.ok()) << After.Error;
  EXPECT_EQ(Before.Output, After.Output);
  EXPECT_EQ(Before.Output, (std::vector<int64_t>{42}));
}

TEST(Interpreter, DifferentialAgainstMachineOnWorkloads) {
  // Oracle check: interpreting the IR (before allocation, after
  // allocation) and simulating the generated machine code must agree on
  // every benchmark, in both compilation modes.
  for (bool Era : {false, true}) {
    for (const Workload &W : paperWorkloads()) {
      DiagnosticEngine Diags;
      IRGenOptions IROptions;
      IROptions.ScalarLocalsInMemory = Era;
      CompiledModule Module = compileToIR(W.Source, Diags, IROptions);
      ASSERT_TRUE(static_cast<bool>(Module)) << W.Name;

      InterpResult PreAlloc = interpretModule(*Module.IR);
      ASSERT_TRUE(PreAlloc.ok()) << W.Name << ": " << PreAlloc.Error;

      allocateRegisters(*Module.IR, RegAllocOptions());
      InterpResult PostAlloc = interpretModule(*Module.IR);
      ASSERT_TRUE(PostAlloc.ok()) << W.Name << ": " << PostAlloc.Error;
      EXPECT_EQ(PreAlloc.Output, PostAlloc.Output) << W.Name;

      CompileOptions Options;
      Options.IRGen.ScalarLocalsInMemory = Era;
      SimConfig Sim;
      DiagnosticEngine SimDiags;
      SimResult Machine =
          compileAndRun(W.Source, Options, Sim, SimDiags);
      ASSERT_TRUE(Machine.ok()) << W.Name << ": " << Machine.Error;
      EXPECT_EQ(Machine.Output, PreAlloc.Output) << W.Name;
    }
  }
}

TEST(Interpreter, DifferentialWithSpillPressure) {
  // Force heavy spilling, then check the interpreter and machine agree.
  const Workload *W = findWorkload("Queen");
  DiagnosticEngine Diags;
  CompiledModule Module = compileToIR(W->Source, Diags);
  ASSERT_TRUE(static_cast<bool>(Module));
  RegAllocOptions RA;
  RA.NumColors = 8;
  allocateRegisters(*Module.IR, RA);
  InterpResult Interp = interpretModule(*Module.IR);
  ASSERT_TRUE(Interp.ok()) << Interp.Error;
  EXPECT_EQ(Interp.Output, (std::vector<int64_t>{92}));
}
