//===- irgen_test.cpp - AST-to-IR lowering tests -------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/irgen/IRGen.h"

#include "urcm/ir/Verifier.h"
#include "urcm/workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace urcm;

namespace {

CompiledModule lower(const std::string &Source,
                     const IRGenOptions &Options = {}) {
  DiagnosticEngine Diags;
  CompiledModule Result = compileToIR(Source, Diags, Options);
  EXPECT_TRUE(static_cast<bool>(Result)) << Diags.str();
  if (Result) {
    DiagnosticEngine VerifyDiags;
    EXPECT_TRUE(verifyModule(*Result.IR, VerifyDiags))
        << VerifyDiags.str() << printIR(*Result.IR);
  }
  return Result;
}

/// Counts instructions of \p Op in the function.
unsigned countOps(const IRFunction &F, Opcode Op) {
  unsigned Count = 0;
  for (const auto &B : F.blocks())
    for (const Instruction &I : B->insts())
      if (I.Op == Op)
        ++Count;
  return Count;
}

} // namespace

TEST(IRGen, ScalarLocalsLiveInRegisters) {
  auto R = lower("void main() { int x; int y; x = 1; y = x + 2; "
                 "print(y); }");
  const IRFunction *Main = R.IR->findFunction("main");
  ASSERT_NE(Main, nullptr);
  // No memory traffic at all: x and y are register resident.
  EXPECT_EQ(countOps(*Main, Opcode::Load), 0u);
  EXPECT_EQ(countOps(*Main, Opcode::Store), 0u);
  EXPECT_TRUE(Main->frameSlots().empty());
}

TEST(IRGen, EraModePutsScalarsInMemory) {
  IRGenOptions Options;
  Options.ScalarLocalsInMemory = true;
  auto R = lower("void main() { int x; int y; x = 1; y = x + 2; "
                 "print(y); }",
                 Options);
  const IRFunction *Main = R.IR->findFunction("main");
  EXPECT_GE(Main->frameSlots().size(), 2u);
  EXPECT_GE(countOps(*Main, Opcode::Store), 2u);
  EXPECT_GE(countOps(*Main, Opcode::Load), 1u);
}

TEST(IRGen, AddressTakenScalarGetsFrameSlot) {
  auto R = lower("void main() { int x; int *p; p = &x; *p = 3; "
                 "print(x); }");
  const IRFunction *Main = R.IR->findFunction("main");
  ASSERT_EQ(Main->frameSlots().size(), 1u);
  EXPECT_EQ(Main->frameSlots()[0].Name, "x");
  EXPECT_EQ(Main->frameSlots()[0].Kind, FrameSlotKind::LocalVar);
}

TEST(IRGen, LocalArrayGetsFrameSlot) {
  auto R = lower("void main() { int a[5]; a[0] = 1; print(a[0]); }");
  const IRFunction *Main = R.IR->findFunction("main");
  ASSERT_EQ(Main->frameSlots().size(), 1u);
  EXPECT_EQ(Main->frameSlots()[0].SizeWords, 5u);
}

TEST(IRGen, GlobalsInModule) {
  auto R = lower("int g; int a[3]; void main() { g = 1; a[2] = g; "
                 "print(a[2]); }");
  ASSERT_EQ(R.IR->globals().size(), 2u);
  EXPECT_EQ(R.IR->globals()[0].Name, "g");
  EXPECT_EQ(R.IR->globals()[0].SizeWords, 1u);
  EXPECT_EQ(R.IR->globals()[1].SizeWords, 3u);
}

TEST(IRGen, ConstantIndexFoldsIntoOffset) {
  auto R = lower("int a[8]; void main() { a[3] = 7; print(a[3]); }");
  const IRFunction *Main = R.IR->findFunction("main");
  bool FoundOffsetStore = false;
  for (const auto &B : Main->blocks())
    for (const Instruction &I : B->insts())
      if (I.isStore() && I.addressOperand().isGlobal() &&
          I.addressOperand().getOffset() == 3)
        FoundOffsetStore = true;
  EXPECT_TRUE(FoundOffsetStore) << printIR(*R.IR);
}

TEST(IRGen, ConstantFolding) {
  auto R = lower("void main() { int x; x = 2 + 3 * 4; print(x); }");
  const IRFunction *Main = R.IR->findFunction("main");
  // 2+3*4 folds to 14: no Mul/Add instructions needed.
  EXPECT_EQ(countOps(*Main, Opcode::Mul), 0u);
  EXPECT_EQ(countOps(*Main, Opcode::Add), 0u);
}

TEST(IRGen, ShortCircuitBuildsControlFlow) {
  auto R = lower("void main() { int x; int y; x = 1; "
                 "y = x > 0 && x < 10; print(y); }");
  const IRFunction *Main = R.IR->findFunction("main");
  // Short-circuit needs several blocks, not a single straight line.
  EXPECT_GE(Main->numBlocks(), 4u);
}

TEST(IRGen, ConditionContextAvoidsMaterialization) {
  auto R = lower("void main() { int x; x = 3; "
                 "if (x > 1 && x < 5) { print(x); } }");
  const IRFunction *Main = R.IR->findFunction("main");
  // The && in condition context lowers to branches; no 0/1 Mov pair.
  EXPECT_EQ(countOps(*Main, Opcode::And), 0u);
}

TEST(IRGen, DeadCodeAfterReturnDropped) {
  auto R = lower("int f() { return 1; print(9); return 2; }\n"
                 "void main() { print(f()); }");
  const IRFunction *F = R.IR->findFunction("f");
  EXPECT_EQ(countOps(*F, Opcode::Print), 0u);
}

TEST(IRGen, MissingReturnValueSynthesized) {
  auto R = lower("int f(int x) { if (x) { return 1; } }\n"
                 "void main() { print(f(0)); }");
  // The fall-through path must still terminate with ret 0.
  const IRFunction *F = R.IR->findFunction("f");
  for (const auto &B : F->blocks())
    EXPECT_TRUE(B->isTerminated());
}

TEST(IRGen, ParamAddressTakenSpillsAtEntry) {
  auto R = lower("int f(int x) { int *p; p = &x; return *p; }\n"
                 "void main() { print(f(42)); }");
  const IRFunction *F = R.IR->findFunction("f");
  ASSERT_EQ(F->frameSlots().size(), 1u);
  // Entry block begins with the store of the incoming parameter.
  const Instruction &First = F->entry()->insts().front();
  EXPECT_TRUE(First.isStore());
}

TEST(IRGen, BreakContinueTargets) {
  auto R = lower("void main() {\n"
                 "  int i;\n"
                 "  for (i = 0; i < 10; i = i + 1) {\n"
                 "    if (i == 2) { continue; }\n"
                 "    if (i == 5) { break; }\n"
                 "    print(i);\n"
                 "  }\n"
                 "}\n");
  EXPECT_TRUE(static_cast<bool>(R));
}

TEST(IRGen, AllWorkloadsLowerAndVerify) {
  for (const Workload &W : paperWorkloads()) {
    DiagnosticEngine Diags;
    CompiledModule R = compileToIR(W.Source, Diags);
    ASSERT_TRUE(static_cast<bool>(R)) << W.Name << ": " << Diags.str();
    DiagnosticEngine VerifyDiags;
    EXPECT_TRUE(verifyModule(*R.IR, VerifyDiags))
        << W.Name << ": " << VerifyDiags.str();
  }
}

TEST(IRGen, AllWorkloadsLowerInEraMode) {
  IRGenOptions Options;
  Options.ScalarLocalsInMemory = true;
  for (const Workload &W : paperWorkloads()) {
    DiagnosticEngine Diags;
    CompiledModule R = compileToIR(W.Source, Diags, Options);
    ASSERT_TRUE(static_cast<bool>(R)) << W.Name << ": " << Diags.str();
    DiagnosticEngine VerifyDiags;
    EXPECT_TRUE(verifyModule(*R.IR, VerifyDiags))
        << W.Name << ": " << VerifyDiags.str();
  }
}
