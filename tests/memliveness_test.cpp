//===- memliveness_test.cpp - Memory-location liveness tests -------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/analysis/MemoryLiveness.h"

#include "urcm/irgen/IRGen.h"

#include <gtest/gtest.h>

using namespace urcm;

namespace {

struct Context {
  CompiledModule Module;
  const IRFunction *F = nullptr;

  Context(const std::string &Source, const std::string &FuncName,
          bool EraMode) {
    DiagnosticEngine Diags;
    IRGenOptions Options;
    Options.ScalarLocalsInMemory = EraMode;
    Module = compileToIR(Source, Diags, Options);
    EXPECT_TRUE(static_cast<bool>(Module)) << Diags.str();
    if (Module)
      F = Module.IR->findFunction(FuncName);
  }
};

/// Collects (instruction, flags) for every memory access in order.
std::vector<std::pair<const Instruction *, MemoryLiveness::RefFlags>>
collectFlags(const IRModule &M, const IRFunction &F) {
  ModuleEscapeInfo ME(M);
  CFGInfo CFG(F);
  AliasInfo AA(M, F, ME);
  MemoryLiveness ML(M, F, CFG, AA);
  std::vector<std::pair<const Instruction *, MemoryLiveness::RefFlags>>
      Result;
  for (const auto &B : F.blocks())
    for (uint32_t I = 0; I != B->insts().size(); ++I)
      if (B->insts()[I].isMemAccess())
        Result.push_back({&B->insts()[I], ML.flags(B->id(), I)});
  return Result;
}

} // namespace

TEST(MemoryLiveness, FinalLoadIsLastRef) {
  // Era mode: x lives in memory. The load feeding print is x's final
  // use, so it must carry the last-reference flag.
  Context C("void main() { int x; x = 4; print(x); }", "main",
            /*EraMode=*/true);
  auto Flags = collectFlags(*C.Module.IR, *C.F);
  // Store x, then load x.
  ASSERT_EQ(Flags.size(), 2u);
  EXPECT_TRUE(Flags[0].first->isStore());
  EXPECT_TRUE(Flags[0].second.Tracked);
  EXPECT_FALSE(Flags[0].second.DeadStore);
  EXPECT_TRUE(Flags[1].first->isLoad());
  EXPECT_TRUE(Flags[1].second.LastRef);
}

TEST(MemoryLiveness, IntermediateLoadNotLastRef) {
  Context C("void main() { int x; x = 4; print(x); print(x); }", "main",
            /*EraMode=*/true);
  auto Flags = collectFlags(*C.Module.IR, *C.F);
  ASSERT_EQ(Flags.size(), 3u);
  EXPECT_FALSE(Flags[1].second.LastRef); // First print load.
  EXPECT_TRUE(Flags[2].second.LastRef);  // Second print load.
}

TEST(MemoryLiveness, DeadStoreDetected) {
  // The second store to x is never read: dead.
  Context C("void main() { int x; x = 1; print(x); x = 2; }", "main",
            /*EraMode=*/true);
  auto Flags = collectFlags(*C.Module.IR, *C.F);
  ASSERT_EQ(Flags.size(), 3u);
  EXPECT_TRUE(Flags[2].first->isStore());
  EXPECT_TRUE(Flags[2].second.DeadStore);
}

TEST(MemoryLiveness, GlobalLiveAtExit) {
  // Globals outlive the function: the final store is NOT dead.
  Context C("int g; void main() { g = 1; }", "main", /*EraMode=*/false);
  auto Flags = collectFlags(*C.Module.IR, *C.F);
  ASSERT_EQ(Flags.size(), 1u);
  EXPECT_TRUE(Flags[0].second.Tracked);
  EXPECT_FALSE(Flags[0].second.DeadStore);
}

TEST(MemoryLiveness, CallKeepsGlobalLive) {
  // A load of g before a call is not g's last use: the callee reads it.
  Context C("int g;\n"
            "void f() { print(g); }\n"
            "void main() { int t; t = g; f(); print(t); }",
            "main", /*EraMode=*/false);
  auto Flags = collectFlags(*C.Module.IR, *C.F);
  ASSERT_GE(Flags.size(), 1u);
  EXPECT_TRUE(Flags[0].first->isLoad());
  EXPECT_FALSE(Flags[0].second.LastRef);
}

TEST(MemoryLiveness, EscapedLocationUntracked) {
  Context C("void main() { int x; int *p; p = &x; *p = 1; print(x); }",
            "main", /*EraMode=*/false);
  auto Flags = collectFlags(*C.Module.IR, *C.F);
  for (const auto &[Inst, RF] : Flags)
    EXPECT_FALSE(RF.Tracked);
}

TEST(MemoryLiveness, ArrayUntracked) {
  Context C("int a[4]; void main() { a[0] = 1; print(a[0]); }", "main",
            /*EraMode=*/false);
  auto Flags = collectFlags(*C.Module.IR, *C.F);
  for (const auto &[Inst, RF] : Flags)
    EXPECT_FALSE(RF.Tracked);
}

TEST(MemoryLiveness, LoopKeepsLocationLive) {
  // Loads of i inside the loop are not last refs (the loop repeats);
  // only the analysis-visible final read may be tagged.
  Context C("void main() {\n"
            "  int i;\n"
            "  int s;\n"
            "  s = 0;\n"
            "  for (i = 0; i < 4; i = i + 1) { s = s + i; }\n"
            "  print(s);\n"
            "}\n",
            "main", /*EraMode=*/true);
  auto Flags = collectFlags(*C.Module.IR, *C.F);
  // Every load inside the loop body/condition must not be LastRef except
  // possibly the loads whose location dies after the loop. Find loads of
  // s: the one feeding print must be last.
  int LastRefLoads = 0;
  for (const auto &[Inst, RF] : Flags)
    if (Inst->isLoad() && RF.LastRef)
      ++LastRefLoads;
  // Exactly two locations die: s (feeding print) and i (final cond
  // evaluation happens-before exit... i's last ref is in the loop exit
  // condition path).
  EXPECT_GE(LastRefLoads, 1);
}
