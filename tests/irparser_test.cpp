//===- irparser_test.cpp - Textual IR parser + round-trip tests ----------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/ir/IRParser.h"

#include "urcm/support/RNG.h"

#include "urcm/driver/Driver.h"
#include "urcm/ir/Interpreter.h"
#include "urcm/ir/Verifier.h"
#include "urcm/workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace urcm;

namespace {

std::unique_ptr<IRModule> parseOk(const std::string &Text) {
  DiagnosticEngine Diags;
  auto M = parseIR(Text, Diags);
  EXPECT_NE(M, nullptr) << Diags.str();
  return M;
}

} // namespace

TEST(IRParser, HandWrittenModule) {
  auto M = parseOk("global @g : 1 words\n"
                   "func main(params=0, regs=2, returns=void)\n"
                   ".entry:\n"
                   "  r0 = mov 41\n"
                   "  r1 = add r0, 1\n"
                   "  store r1, @g\n"
                   "  r1 = load @g\n"
                   "  print r1\n"
                   "  ret\n");
  DiagnosticEngine Diags;
  ASSERT_TRUE(verifyModule(*M, Diags)) << Diags.str();
  InterpResult R = interpretModule(*M);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{42}));
}

TEST(IRParser, ControlFlowAndCalls) {
  auto M = parseOk(
      "func double(params=1, regs=2, returns=int)\n"
      ".entry:\n"
      "  r1 = mul r0, 2\n"
      "  ret r1\n"
      "func main(params=0, regs=3, returns=void)\n"
      ".entry:\n"
      "  r0 = mov 5\n"
      "  r1 = cmpgt r0, 3\n"
      "  condbr r1, .big0, .small1\n"
      ".big0:\n"
      "  r2 = call double, r0\n"
      "  print r2\n"
      "  ret\n"
      ".small1:\n"
      "  print r0\n"
      "  ret\n");
  DiagnosticEngine Diags;
  ASSERT_TRUE(verifyModule(*M, Diags)) << Diags.str();
  InterpResult R = interpretModule(*M);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{10}));
}

TEST(IRParser, FrameSlotsAndHints) {
  auto M = parseOk("func main(params=0, regs=2, returns=void)\n"
                   "  frame %x : 1 words\n"
                   "  frame %spill.0 : 1 words (spill)\n"
                   ".entry:\n"
                   "  r0 = mov 7\n"
                   "  store r0, %x !um !bypass\n"
                   "  r1 = load %x !um !bypass !lastref\n"
                   "  store r1, %spill.0 !spill\n"
                   "  r1 = load %spill.0 !reload !lastref\n"
                   "  print r1\n"
                   "  ret\n");
  const IRFunction *Main = M->findFunction("main");
  ASSERT_EQ(Main->frameSlots().size(), 2u);
  EXPECT_EQ(Main->frameSlots()[1].Kind, FrameSlotKind::Spill);
  const auto &Insts = Main->entry()->insts();
  EXPECT_EQ(Insts[1].MemInfo.Class, RefClass::Unambiguous);
  EXPECT_TRUE(Insts[1].MemInfo.Bypass);
  EXPECT_FALSE(Insts[1].MemInfo.LastRef);
  EXPECT_TRUE(Insts[2].MemInfo.LastRef);
  EXPECT_EQ(Insts[3].MemInfo.Class, RefClass::Spill);
  EXPECT_EQ(Insts[4].MemInfo.Class, RefClass::SpillReload);
  InterpResult R = interpretModule(*M);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Output, (std::vector<int64_t>{7}));
}

TEST(IRParser, ErrorsReported) {
  DiagnosticEngine Diags;
  EXPECT_EQ(parseIR("func f(params=0, regs=1, returns=void)\n"
                    ".entry:\n"
                    "  r0 = frobnicate 1\n",
                    Diags),
            nullptr);
  EXPECT_TRUE(Diags.hasErrors());

  DiagnosticEngine D2;
  EXPECT_EQ(parseIR("func f(params=0, regs=1, returns=void)\n"
                    ".entry:\n"
                    "  r0 = load @missing\n",
                    D2),
            nullptr);
  EXPECT_TRUE(D2.hasErrors());

  DiagnosticEngine D3;
  EXPECT_EQ(parseIR("  r0 = mov 1\n", D3), nullptr);
  EXPECT_TRUE(D3.hasErrors());
}

TEST(IRParser, RoundTripStability) {
  // print -> parse -> print must be a fixed point, at every pipeline
  // stage, for every workload.
  for (const Workload &W : paperWorkloads()) {
    DiagnosticEngine Diags;
    CompiledModule Module = compileToIR(W.Source, Diags);
    ASSERT_TRUE(static_cast<bool>(Module)) << W.Name;

    auto CheckRoundTrip = [&](const IRModule &M, const char *Stage) {
      std::string First = printIR(M);
      DiagnosticEngine ParseDiags;
      auto Parsed = parseIR(First, ParseDiags);
      ASSERT_NE(Parsed, nullptr)
          << W.Name << "/" << Stage << ": " << ParseDiags.str();
      EXPECT_EQ(printIR(*Parsed), First) << W.Name << "/" << Stage;
      // The parsed module must also behave identically.
      InterpResult A = interpretModule(M);
      InterpResult B = interpretModule(*Parsed);
      ASSERT_TRUE(A.ok()) << W.Name << "/" << Stage;
      ASSERT_TRUE(B.ok()) << W.Name << "/" << Stage;
      EXPECT_EQ(A.Output, B.Output) << W.Name << "/" << Stage;
    };

    CheckRoundTrip(*Module.IR, "irgen");
    runCleanupPipeline(*Module.IR, TransformOptions());
    CheckRoundTrip(*Module.IR, "cleanup");
    allocateRegisters(*Module.IR, RegAllocOptions());
    applyUnifiedManagement(*Module.IR, UnifiedOptions::unified());
    CheckRoundTrip(*Module.IR, "allocated+unified");
  }
}

TEST(IRParser, RoundTripEraMode) {
  const Workload *W = findWorkload("Queen");
  DiagnosticEngine Diags;
  IRGenOptions Options;
  Options.ScalarLocalsInMemory = true;
  CompiledModule Module = compileToIR(W->Source, Diags, Options);
  ASSERT_TRUE(static_cast<bool>(Module));
  allocateRegisters(*Module.IR, RegAllocOptions());
  applyUnifiedManagement(*Module.IR, UnifiedOptions::unified());
  std::string First = printIR(*Module.IR);
  DiagnosticEngine ParseDiags;
  auto Parsed = parseIR(First, ParseDiags);
  ASSERT_NE(Parsed, nullptr) << ParseDiags.str();
  EXPECT_EQ(printIR(*Parsed), First);
}

TEST(IRParser, RobustAgainstGarbage) {
  // The parser must reject (never crash on) arbitrary junk.
  SplitMix64 Rng(424242);
  const char Alphabet[] =
      "abcdefgr0123456789 @%.,:=[]()+-!\n\tfunc global frame ret";
  for (int Trial = 0; Trial != 200; ++Trial) {
    std::string Junk;
    size_t Len = 1 + Rng.nextBelow(400);
    for (size_t I = 0; I != Len; ++I)
      Junk += Alphabet[Rng.nextBelow(sizeof(Alphabet) - 1)];
    DiagnosticEngine Diags;
    auto M = parseIR(Junk, Diags);
    // Either a clean reject or a module; a returned module must at
    // least survive printing.
    if (M)
      (void)printIR(*M);
  }
}
