//===- transforms_test.cpp - IR cleanup pass tests -----------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/transforms/Transforms.h"

#include "urcm/driver/Driver.h"
#include "urcm/ir/Interpreter.h"
#include "urcm/ir/Verifier.h"
#include "urcm/workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace urcm;

namespace {

CompiledModule lower(const std::string &Source, bool EraMode = false) {
  DiagnosticEngine Diags;
  IRGenOptions Options;
  Options.ScalarLocalsInMemory = EraMode;
  CompiledModule Module = compileToIR(Source, Diags, Options);
  EXPECT_TRUE(static_cast<bool>(Module)) << Diags.str();
  return Module;
}

unsigned countInsts(const IRModule &M) {
  unsigned N = 0;
  for (const auto &F : M.functions())
    for (const auto &B : F->blocks())
      N += static_cast<unsigned>(B->insts().size());
  return N;
}

unsigned countOps(const IRModule &M, Opcode Op) {
  unsigned N = 0;
  for (const auto &F : M.functions())
    for (const auto &B : F->blocks())
      for (const Instruction &I : B->insts())
        if (I.Op == Op)
          ++N;
  return N;
}

} // namespace

TEST(Transforms, CopyPropagationForwardsValues) {
  // y = x; z = y + 1  becomes  z = x + 1 (the Mov then dies under DCE).
  auto Module = lower("void main() {\n"
                      "  int x = 5;\n"
                      "  int y;\n"
                      "  int z;\n"
                      "  y = x;\n"
                      "  z = y + 1;\n"
                      "  print(z);\n"
                      "}\n");
  TransformOptions Options;
  TransformStats Stats = runCleanupPipeline(*Module.IR, Options);
  EXPECT_GT(Stats.CopiesPropagated, 0u);
  EXPECT_GT(Stats.DeadInstsRemoved, 0u);
  DiagnosticEngine Diags;
  EXPECT_TRUE(verifyModule(*Module.IR, Diags)) << Diags.str();

  InterpResult R = interpretModule(*Module.IR);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{6}));
}

TEST(Transforms, DCERemovesUnusedComputation) {
  auto Module = lower("void main() {\n"
                      "  int unused;\n"
                      "  int used = 3;\n"
                      "  unused = used * 100;\n"
                      "  print(used);\n"
                      "}\n");
  unsigned Before = countInsts(*Module.IR);
  TransformOptions Options;
  runCleanupPipeline(*Module.IR, Options);
  EXPECT_LT(countInsts(*Module.IR), Before);
  InterpResult R = interpretModule(*Module.IR);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Output, (std::vector<int64_t>{3}));
}

TEST(Transforms, DCEKeepsCallsAndStores) {
  auto Module = lower("int g;\n"
                      "int effect() { g = g + 1; return 9; }\n"
                      "void main() {\n"
                      "  int ignored;\n"
                      "  g = 0;\n"
                      "  ignored = effect();\n"
                      "  print(g);\n"
                      "}\n");
  TransformOptions Options;
  runCleanupPipeline(*Module.IR, Options);
  EXPECT_GE(countOps(*Module.IR, Opcode::Call), 1u);
  InterpResult R = interpretModule(*Module.IR);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Output, (std::vector<int64_t>{1}));
}

TEST(Transforms, DeadStoreEliminationEraMode) {
  // Era mode: x lives in memory; the final store to x is never read.
  auto Module = lower("void main() {\n"
                      "  int x;\n"
                      "  x = 1;\n"
                      "  print(x);\n"
                      "  x = 2;\n"
                      "}\n",
                      /*EraMode=*/true);
  unsigned StoresBefore = countOps(*Module.IR, Opcode::Store);
  TransformOptions Options;
  Options.DeadStoreElimination = true;
  TransformStats Stats = runCleanupPipeline(*Module.IR, Options);
  EXPECT_GE(Stats.DeadStoresRemoved, 1u);
  EXPECT_LT(countOps(*Module.IR, Opcode::Store), StoresBefore);
  InterpResult R = interpretModule(*Module.IR);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Output, (std::vector<int64_t>{1}));
}

TEST(Transforms, DSEKeepsGlobalFinalStores) {
  auto Module = lower("int g; void main() { g = 7; }");
  TransformOptions Options;
  Options.DeadStoreElimination = true;
  TransformStats Stats = runCleanupPipeline(*Module.IR, Options);
  EXPECT_EQ(Stats.DeadStoresRemoved, 0u);
  EXPECT_EQ(countOps(*Module.IR, Opcode::Store), 1u);
}

TEST(Transforms, PipelineReachesFixpoint) {
  auto Module = lower("void main() {\n"
                      "  int a = 1; int b; int c; int d;\n"
                      "  b = a; c = b; d = c;\n"
                      "  print(d);\n"
                      "}\n");
  TransformOptions Options;
  runCleanupPipeline(*Module.IR, Options);
  // A second run must make no further progress.
  TransformStats Again = runCleanupPipeline(*Module.IR, Options);
  EXPECT_EQ(Again.CopiesPropagated, 0u);
  EXPECT_EQ(Again.DeadInstsRemoved, 0u);
}

TEST(Transforms, WorkloadsPreserveOutputUnderCleanup) {
  for (bool Era : {false, true}) {
    for (const Workload &W : paperWorkloads()) {
      auto Reference = lower(W.Source, Era);
      InterpResult Want = interpretModule(*Reference.IR);
      ASSERT_TRUE(Want.ok()) << W.Name;

      auto Cleaned = lower(W.Source, Era);
      TransformOptions Options;
      Options.DeadStoreElimination = true;
      runCleanupPipeline(*Cleaned.IR, Options);
      DiagnosticEngine Diags;
      ASSERT_TRUE(verifyModule(*Cleaned.IR, Diags))
          << W.Name << ": " << Diags.str();
      InterpResult Got = interpretModule(*Cleaned.IR);
      ASSERT_TRUE(Got.ok()) << W.Name << ": " << Got.Error;
      EXPECT_EQ(Got.Output, Want.Output) << W.Name << " era=" << Era;
    }
  }
}

TEST(Transforms, EndToEndThroughDriver) {
  const Workload *W = findWorkload("Queen");
  CompileOptions Options;
  Options.RunCleanup = true;
  Options.Transforms.DeadStoreElimination = true;
  SimConfig Sim;
  DiagnosticEngine Diags;
  SimResult R = compileAndRun(W->Source, Options, Sim, Diags);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{92}));
  EXPECT_EQ(R.CoherenceViolations, 0u);
}

TEST(Transforms, CleanupReducesExecutedInstructions) {
  const Workload *W = findWorkload("Bubble");
  SimConfig Sim;
  DiagnosticEngine D1, D2;
  CompileOptions Plain;
  Plain.IRGen.ScalarLocalsInMemory = true;
  CompileOptions Cleaned = Plain;
  Cleaned.RunCleanup = true;
  SimResult A = compileAndRun(W->Source, Plain, Sim, D1);
  SimResult B = compileAndRun(W->Source, Cleaned, Sim, D2);
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(B.ok());
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_LE(B.Steps, A.Steps);
}
