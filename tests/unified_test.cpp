//===- unified_test.cpp - Unified management pass tests ------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/core/UnifiedManagement.h"

#include "urcm/irgen/IRGen.h"
#include "urcm/regalloc/RegAlloc.h"

#include <gtest/gtest.h>

using namespace urcm;

namespace {

struct Prepared {
  CompiledModule Module;

  Prepared(const std::string &Source, bool EraMode = false) {
    DiagnosticEngine Diags;
    IRGenOptions Options;
    Options.ScalarLocalsInMemory = EraMode;
    Module = compileToIR(Source, Diags, Options);
    EXPECT_TRUE(static_cast<bool>(Module)) << Diags.str();
    if (Module)
      allocateRegisters(*Module.IR, RegAllocOptions());
  }
};

/// Collects every memory instruction in the module.
std::vector<const Instruction *> memRefs(const IRModule &M) {
  std::vector<const Instruction *> Refs;
  for (const auto &F : M.functions())
    for (const auto &B : F->blocks())
      for (const Instruction &I : B->insts())
        if (I.isMemAccess())
          Refs.push_back(&I);
  return Refs;
}

const char *MixedProgram = R"mc(
int g;
int a[8];
void main() {
  int i;
  g = 0;
  for (i = 0; i < 8; i = i + 1) {
    a[i] = i;
    g = g + a[i];
  }
  print(g);
}
)mc";

} // namespace

TEST(Unified, ClassifiesEveryReference) {
  Prepared P(MixedProgram);
  applyUnifiedManagement(*P.Module.IR, UnifiedOptions::unified());
  for (const Instruction *I : memRefs(*P.Module.IR))
    EXPECT_NE(I->MemInfo.Class, RefClass::Unknown);
}

TEST(Unified, StaticStatsAddUp) {
  Prepared P(MixedProgram);
  ClassificationStats S =
      applyUnifiedManagement(*P.Module.IR, UnifiedOptions::unified());
  EXPECT_EQ(S.totalRefs(), memRefs(*P.Module.IR).size());
  EXPECT_GT(S.UnambiguousRefs, 0u);
  EXPECT_GT(S.AmbiguousRefs, 0u);
  EXPECT_FALSE(S.str().empty());
}

TEST(Unified, ConventionalSchemeEmitsNoHints) {
  Prepared P(MixedProgram);
  ClassificationStats S = applyUnifiedManagement(
      *P.Module.IR, UnifiedOptions::conventional());
  EXPECT_EQ(S.BypassRefs, 0u);
  EXPECT_EQ(S.LastRefTags, 0u);
  for (const Instruction *I : memRefs(*P.Module.IR)) {
    EXPECT_FALSE(I->MemInfo.Bypass);
    EXPECT_FALSE(I->MemInfo.LastRef);
  }
}

TEST(Unified, BypassOnlyUnambiguous) {
  Prepared P(MixedProgram);
  applyUnifiedManagement(*P.Module.IR, UnifiedOptions::unified());
  for (const Instruction *I : memRefs(*P.Module.IR)) {
    if (I->MemInfo.Bypass)
      EXPECT_EQ(I->MemInfo.Class, RefClass::Unambiguous);
    if (I->MemInfo.Class == RefClass::Ambiguous)
      EXPECT_FALSE(I->MemInfo.Bypass);
  }
}

TEST(Unified, SpillTrafficNeverBypasses) {
  // Spills go *to cache* (paper section 4.2 rule [2]).
  const char *HighPressure = R"mc(
int out;
void main() {
  int v0 = 1; int v1 = 2; int v2 = 3; int v3 = 4; int v4 = 5;
  int v5 = 6; int v6 = 7; int v7 = 8; int v8 = 9; int v9 = 10;
  int va = 11; int vb = 12; int vc = 13; int vd = 14;
  out = v0 + v1 + v2 + v3 + v4 + v5 + v6 + v7 + v8 + v9 + va + vb + vc
      + vd;
  out = out + v0 * v9 + v1 * v8 + va * vd + vb * vc;
  print(out);
}
)mc";
  DiagnosticEngine Diags;
  CompiledModule Module = compileToIR(HighPressure, Diags);
  ASSERT_TRUE(static_cast<bool>(Module));
  RegAllocOptions RA;
  RA.NumColors = 8;
  allocateRegisters(*Module.IR, RA);
  ClassificationStats S =
      applyUnifiedManagement(*Module.IR, UnifiedOptions::unified());
  EXPECT_GT(S.SpillRefs, 0u);
  for (const Instruction *I : memRefs(*Module.IR))
    if (I->MemInfo.Class == RefClass::Spill ||
        I->MemInfo.Class == RefClass::SpillReload)
      EXPECT_FALSE(I->MemInfo.Bypass);
}

TEST(Unified, DeadTagOnlySetsNoBypass) {
  Prepared P(MixedProgram, /*EraMode=*/true);
  ClassificationStats S = applyUnifiedManagement(
      *P.Module.IR, UnifiedOptions::deadTagOnly());
  EXPECT_EQ(S.BypassRefs, 0u);
  EXPECT_GT(S.LastRefTags + S.DeadStoreTags, 0u);
}

TEST(Unified, EraModeRaisesUnambiguousShare) {
  Prepared Allocating(MixedProgram, /*EraMode=*/false);
  Prepared Era(MixedProgram, /*EraMode=*/true);
  ClassificationStats SAlloc = applyUnifiedManagement(
      *Allocating.Module.IR, UnifiedOptions::unified());
  ClassificationStats SEra =
      applyUnifiedManagement(*Era.Module.IR, UnifiedOptions::unified());
  EXPECT_GT(SEra.unambiguousFraction(), SAlloc.unambiguousFraction());
  // The paper's static measurement: 70-80% unambiguous in era code.
  EXPECT_GT(SEra.unambiguousFraction(), 0.5);
}

TEST(Unified, ReuseAwareKeepsHotLocationsCached) {
  const char *HotGlobal = R"mc(
int counter;
void tick() { counter = counter + 1; }
void main() {
  int i;
  counter = 0;
  for (i = 0; i < 1000; i = i + 1) { tick(); }
  print(counter);
}
)mc";
  Prepared P(HotGlobal);
  applyUnifiedManagement(*P.Module.IR, UnifiedOptions::reuseAware());
  const IRFunction *Tick = P.Module.IR->findFunction("tick");
  ASSERT_NE(Tick, nullptr);
  for (const auto &B : Tick->blocks())
    for (const Instruction &I : B->insts())
      if (I.isMemAccess())
        EXPECT_FALSE(I.MemInfo.Bypass)
            << "hot counter must stay cache-managed under ReuseAware";

  // The blind policy bypasses it.
  Prepared P2(HotGlobal);
  applyUnifiedManagement(*P2.Module.IR, UnifiedOptions::unified());
  const IRFunction *Tick2 = P2.Module.IR->findFunction("tick");
  bool AnyBypass = false;
  for (const auto &B : Tick2->blocks())
    for (const Instruction &I : B->insts())
      if (I.isMemAccess())
        AnyBypass |= I.MemInfo.Bypass;
  EXPECT_TRUE(AnyBypass);
}

TEST(Unified, IdempotentReapplication) {
  // Re-running the pass with the same options must not change anything.
  Prepared P(MixedProgram);
  ClassificationStats First =
      applyUnifiedManagement(*P.Module.IR, UnifiedOptions::unified());
  ClassificationStats Second =
      applyUnifiedManagement(*P.Module.IR, UnifiedOptions::unified());
  EXPECT_EQ(First.UnambiguousRefs, Second.UnambiguousRefs);
  EXPECT_EQ(First.AmbiguousRefs, Second.AmbiguousRefs);
  EXPECT_EQ(First.BypassRefs, Second.BypassRefs);
  EXPECT_EQ(First.LastRefTags, Second.LastRefTags);
}

TEST(Unified, SchemeSwitchOverwritesHints) {
  Prepared P(MixedProgram);
  applyUnifiedManagement(*P.Module.IR, UnifiedOptions::unified());
  applyUnifiedManagement(*P.Module.IR, UnifiedOptions::conventional());
  for (const Instruction *I : memRefs(*P.Module.IR)) {
    EXPECT_FALSE(I->MemInfo.Bypass);
    EXPECT_FALSE(I->MemInfo.LastRef);
  }
}
