//===- parser_test.cpp - MC parser unit tests ---------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/lang/Parser.h"

#include <gtest/gtest.h>

using namespace urcm;

namespace {

std::unique_ptr<TranslationUnit> parseOk(const std::string &Source) {
  DiagnosticEngine Diags;
  auto TU = parseMC(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return TU;
}

bool parseFails(const std::string &Source) {
  DiagnosticEngine Diags;
  parseMC(Source, Diags);
  return Diags.hasErrors();
}

} // namespace

TEST(Parser, GlobalsAndFunctions) {
  auto TU = parseOk("int g; int a[10]; int *p;\n"
                    "int f(int x, int *q) { return x; }\n"
                    "void main() { }\n");
  ASSERT_EQ(TU->globals().size(), 3u);
  EXPECT_EQ(TU->globals()[0]->name(), "g");
  EXPECT_TRUE(TU->globals()[0]->type().isInt());
  EXPECT_TRUE(TU->globals()[1]->type().isArray());
  EXPECT_EQ(TU->globals()[1]->type().arraySize(), 10u);
  EXPECT_TRUE(TU->globals()[2]->type().isPointer());
  ASSERT_EQ(TU->functions().size(), 2u);
  EXPECT_EQ(TU->functions()[0]->name(), "f");
  EXPECT_EQ(TU->functions()[0]->params().size(), 2u);
  EXPECT_TRUE(TU->functions()[0]->params()[1]->type().isPointer());
  EXPECT_NE(TU->findFunction("main"), nullptr);
  EXPECT_EQ(TU->findFunction("nope"), nullptr);
}

TEST(Parser, PrecedenceInPrintedTree) {
  auto TU = parseOk("void main() { int x; x = 1 + 2 * 3; }");
  std::string Printed = printAST(*TU);
  EXPECT_NE(Printed.find("(1 + (2 * 3))"), std::string::npos) << Printed;
}

TEST(Parser, AssociativityAndComparison) {
  auto TU = parseOk("void main() { int x; x = 1 - 2 - 3; "
                    "x = 1 < 2 == 3 > 4; }");
  std::string Printed = printAST(*TU);
  EXPECT_NE(Printed.find("((1 - 2) - 3)"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("((1 < 2) == (3 > 4))"), std::string::npos)
      << Printed;
}

TEST(Parser, UnaryAndIndexChain) {
  auto TU = parseOk("int a[4];\n"
                    "void main() { int x; int *p; p = &a[2]; "
                    "x = -a[1] + *p; }");
  std::string Printed = printAST(*TU);
  EXPECT_NE(Printed.find("(&a[2])"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("((-a[1]) + (*p))"), std::string::npos) << Printed;
}

TEST(Parser, ControlFlowForms) {
  auto TU = parseOk("void main() {\n"
                    "  int i;\n"
                    "  for (i = 0; i < 4; i = i + 1) { }\n"
                    "  while (i > 0) { i = i - 1; }\n"
                    "  do { i = i + 1; } while (i < 2);\n"
                    "  if (i) { } else { }\n"
                    "  while (1) { break; }\n"
                    "  while (0) { continue; }\n"
                    "}\n");
  std::string Printed = printAST(*TU);
  EXPECT_NE(Printed.find("for"), std::string::npos);
  EXPECT_NE(Printed.find("while"), std::string::npos);
  EXPECT_NE(Printed.find("do"), std::string::npos);
  EXPECT_NE(Printed.find("break"), std::string::npos);
  EXPECT_NE(Printed.find("continue"), std::string::npos);
}

TEST(Parser, ShortCircuitOperators) {
  auto TU = parseOk("void main() { int x; x = 1 && 2 || 3; }");
  std::string Printed = printAST(*TU);
  EXPECT_NE(Printed.find("((1 && 2) || 3)"), std::string::npos) << Printed;
}

TEST(Parser, CallsAndRecursion) {
  auto TU = parseOk("int fib(int n) {\n"
                    "  if (n < 2) { return n; }\n"
                    "  return fib(n - 1) + fib(n - 2);\n"
                    "}\n"
                    "void main() { print(fib(10)); }\n");
  std::string Printed = printAST(*TU);
  EXPECT_NE(Printed.find("fib((n - 1))"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("print(fib(10))"), std::string::npos) << Printed;
}

TEST(Parser, ScopesShadowing) {
  // Inner declarations shadow outer ones and vanish at block end.
  auto TU = parseOk("void main() {\n"
                    "  int x;\n"
                    "  { int x; x = 1; }\n"
                    "  x = 2;\n"
                    "}\n");
  EXPECT_NE(TU, nullptr);
}

TEST(Parser, ErrorUndeclaredVariable) {
  EXPECT_TRUE(parseFails("void main() { x = 1; }"));
}

TEST(Parser, ErrorUndeclaredFunction) {
  EXPECT_TRUE(parseFails("void main() { f(); }"));
}

TEST(Parser, ErrorRedeclaration) {
  EXPECT_TRUE(parseFails("void main() { int x; int x; }"));
  EXPECT_TRUE(parseFails("int g; int g; void main() { }"));
}

TEST(Parser, ErrorRedefinedFunction) {
  EXPECT_TRUE(parseFails("void f() { } void f() { } void main() { }"));
}

TEST(Parser, ErrorBadArraySize) {
  EXPECT_TRUE(parseFails("int a[0]; void main() { }"));
  EXPECT_TRUE(parseFails("int a[x]; void main() { }"));
}

TEST(Parser, ErrorMissingSemicolon) {
  EXPECT_TRUE(parseFails("void main() { int x x = 1; }"));
}

TEST(Parser, ErrorPointerArray) {
  EXPECT_TRUE(parseFails("int *a[4]; void main() { }"));
}

TEST(Parser, UseBeforeDeclarationFails) {
  EXPECT_TRUE(parseFails("void main() { y = 1; int y; }"));
}
