//===- telemetry_test.cpp - Telemetry subsystem tests --------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Telemetry state is process-global, so every test starts by putting the
// flag where it wants it and calling reset(), and ends disabled with no
// sink installed — tests stay order-independent.
//
//===----------------------------------------------------------------------===//

#include "urcm/support/Telemetry.h"

#include "urcm/driver/Driver.h"
#include "urcm/support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace urcm;

namespace {

/// Restores the global telemetry state on scope exit.
struct TelemetryGuard {
  explicit TelemetryGuard(bool Enable) {
    telemetry::setClassifySink(nullptr);
    telemetry::setEnabled(Enable);
    telemetry::reset();
  }
  ~TelemetryGuard() {
    telemetry::setClassifySink(nullptr);
    telemetry::setEnabled(false);
    telemetry::reset();
  }
};

/// Minimal recursive-descent JSON syntax checker: accepts exactly the
/// JSON grammar (objects, arrays, strings with escapes, numbers, bools,
/// null). Returns true when the whole input is one valid value.
class JSONChecker {
public:
  static bool valid(const std::string &S) {
    JSONChecker C(S);
    C.ws();
    if (!C.value())
      return false;
    C.ws();
    return C.P == S.size();
  }

private:
  explicit JSONChecker(const std::string &S) : S(S) {}

  const std::string &S;
  size_t P = 0;

  bool eof() const { return P >= S.size(); }
  char peek() const { return S[P]; }
  bool eat(char C) {
    if (eof() || S[P] != C)
      return false;
    ++P;
    return true;
  }
  void ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(S[P])))
      ++P;
  }
  bool lit(const char *L) {
    size_t N = std::strlen(L);
    if (S.compare(P, N, L) != 0)
      return false;
    P += N;
    return true;
  }

  bool string() {
    if (!eat('"'))
      return false;
    while (!eof() && peek() != '"') {
      if (peek() == '\\') {
        ++P;
        if (eof())
          return false;
        char E = S[P++];
        if (E == 'u') {
          for (int I = 0; I != 4; ++I)
            if (eof() || !std::isxdigit(static_cast<unsigned char>(S[P++])))
              return false;
        } else if (!std::strchr("\"\\/bfnrt", E)) {
          return false;
        }
      } else if (static_cast<unsigned char>(peek()) < 0x20) {
        return false;
      } else {
        ++P;
      }
    }
    return eat('"');
  }

  bool number() {
    size_t Start = P;
    if (!eof() && peek() == '-')
      ++P;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
      ++P;
    if (P == Start || (S[Start] == '-' && P == Start + 1))
      return false;
    if (!eof() && peek() == '.') {
      ++P;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++P;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++P;
      if (!eof() && (peek() == '+' || peek() == '-'))
        ++P;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++P;
    }
    return true;
  }

  bool value() {
    if (eof())
      return false;
    switch (peek()) {
    case '{': {
      ++P;
      ws();
      if (eat('}'))
        return true;
      for (;;) {
        ws();
        if (!string())
          return false;
        ws();
        if (!eat(':'))
          return false;
        ws();
        if (!value())
          return false;
        ws();
        if (eat('}'))
          return true;
        if (!eat(','))
          return false;
      }
    }
    case '[': {
      ++P;
      ws();
      if (eat(']'))
        return true;
      for (;;) {
        ws();
        if (!value())
          return false;
        ws();
        if (eat(']'))
          return true;
        if (!eat(','))
          return false;
      }
    }
    case '"':
      return string();
    case 't':
      return lit("true");
    case 'f':
      return lit("false");
    case 'n':
      return lit("null");
    default:
      return number();
    }
  }
};

/// Sink that records every remark it receives.
struct VecSink : telemetry::RemarkSink {
  std::vector<telemetry::ClassifyRemark> Remarks;
  void remark(const telemetry::ClassifyRemark &R) override {
    Remarks.push_back(R);
  }
};

/// A small era-mode program whose memory references exercise every
/// remark class: unambiguous scalars, an ambiguous (escaped-address)
/// global, and array traffic.
const char *RemarkProgram = R"mc(
int g;
int arr[4];

int sum(int n) {
  int acc;
  int i;
  acc = 0;
  for (i = 0; i < n; i = i + 1) {
    acc = acc + arr[i];
  }
  return acc;
}

void main() {
  int i;
  for (i = 0; i < 4; i = i + 1) {
    arr[i] = i * 2;
  }
  g = sum(4);
  print(g);
}
)mc";

CompileResult compileRemarkProgram() {
  CompileOptions Options;
  Options.IRGen.ScalarLocalsInMemory = true; // Era mode: scalars in memory.
  Options.Scheme = UnifiedOptions::unified();
  DiagnosticEngine Diags;
  CompileResult Result = compileProgram(RemarkProgram, Options, Diags);
  EXPECT_TRUE(Result.Ok) << Diags.str();
  return Result;
}

} // namespace

TEST(Telemetry, CounterThreadAggregation) {
  TelemetryGuard Guard(/*Enable=*/true);
  URCM_STAT(TestCounter, "test.thread-agg", "test counter");
  uint64_t Before = TestCounter.value();

  constexpr size_t N = 64;
  ThreadPool Pool(4);
  Pool.parallelFor(N, [&](size_t I) { TestCounter.add(I + 1); });
  // Workers fold their cells into the registry when the pool joins them.
  EXPECT_EQ(TestCounter.value() - Before, N * (N + 1) / 2);
}

TEST(Telemetry, CounterDisabledDoesNotCount) {
  TelemetryGuard Guard(/*Enable=*/false);
  URCM_STAT(TestCounter, "test.disabled", "test counter");
  TestCounter.add(100);
  EXPECT_EQ(TestCounter.value(), 0u);

  telemetry::setEnabled(true);
  TestCounter.add(5);
  EXPECT_EQ(TestCounter.value(), 5u);
}

TEST(Telemetry, HistogramPercentiles) {
  TelemetryGuard Guard(/*Enable=*/true);
  URCM_HISTOGRAM(TestHist, "test.hist", "test histogram");
  for (uint64_t V = 1; V <= 1000; ++V)
    TestHist.record(V);

  EXPECT_EQ(TestHist.count(), 1000u);
  EXPECT_EQ(TestHist.max(), 1000u);
  EXPECT_EQ(TestHist.sum(), 500500u);
  // Log-linear buckets (4 per power of two) bound the relative error of
  // a percentile's bucket upper bound by 25%.
  uint64_t P50 = TestHist.percentile(50);
  uint64_t P90 = TestHist.percentile(90);
  uint64_t P99 = TestHist.percentile(99);
  EXPECT_GE(P50, 500u);
  EXPECT_LE(P50, 625u);
  EXPECT_GE(P90, 900u);
  EXPECT_LE(P90, 1000u); // Capped at the observed max.
  EXPECT_GE(P99, 990u);
  EXPECT_LE(P99, 1000u);
  EXPECT_LE(TestHist.percentile(100), 1000u);
  EXPECT_EQ(TestHist.percentile(1), 11u); // Bucket [10..11] holds rank 10.
}

TEST(Telemetry, HistogramSmallValuesExact) {
  TelemetryGuard Guard(/*Enable=*/true);
  URCM_HISTOGRAM(TestHist, "test.hist-small", "test histogram");
  TestHist.record(0);
  TestHist.record(1);
  TestHist.record(2);
  TestHist.record(3);
  // Values below 4 land in exact buckets.
  EXPECT_EQ(TestHist.percentile(25), 0u);
  EXPECT_EQ(TestHist.percentile(50), 1u);
  EXPECT_EQ(TestHist.percentile(75), 2u);
  EXPECT_EQ(TestHist.percentile(100), 3u);
}

TEST(Telemetry, PhaseTimersAggregate) {
  TelemetryGuard Guard(/*Enable=*/true);
  for (int I = 0; I != 3; ++I) {
    telemetry::ScopedPhase Phase("test.phase");
    volatile int Sink = 0;
    for (int K = 0; K != 1000; ++K)
      Sink = Sink + K;
  }
  std::vector<telemetry::PhaseTotals> Totals = telemetry::phaseTotals();
  auto It = std::find_if(
      Totals.begin(), Totals.end(),
      [](const telemetry::PhaseTotals &T) { return T.Name == "test.phase"; });
  ASSERT_NE(It, Totals.end());
  EXPECT_EQ(It->Count, 3u);
  EXPECT_GT(It->TotalNs, 0u);
  EXPECT_GE(It->TotalNs, It->MaxNs);
}

TEST(Telemetry, PhaseTimersAcrossPool) {
  TelemetryGuard Guard(/*Enable=*/true);
  ThreadPool Pool(3);
  Pool.parallelFor(8, [](size_t) {
    telemetry::ScopedPhase Phase("test.pool-phase");
  });
  std::vector<telemetry::PhaseTotals> Totals = telemetry::phaseTotals();
  auto It = std::find_if(Totals.begin(), Totals.end(),
                         [](const telemetry::PhaseTotals &T) {
                           return T.Name == "test.pool-phase";
                         });
  ASSERT_NE(It, Totals.end());
  EXPECT_EQ(It->Count, 8u);
}

TEST(Telemetry, SnapshotJSONWellFormed) {
  TelemetryGuard Guard(/*Enable=*/true);
  URCM_STAT(TestCounter, "test.json-counter", "quotes \"and\" backslash \\");
  URCM_HISTOGRAM(TestHist, "test.json-hist", "histogram");
  TestCounter.add(7);
  TestHist.record(42);
  { telemetry::ScopedPhase Phase("test.json-phase"); }
  telemetry::ClassifyRemark R;
  R.Function = "f\"n";
  R.Form = "Am_LOAD";
  R.Verdict = "ambiguous";
  R.Reason = "ambiguous-alias";
  telemetry::enableClassifyCapture(nullptr);
  telemetry::classifySink()->remark(R);

  std::string JSON = telemetry::snapshotJSON();
  EXPECT_TRUE(JSONChecker::valid(JSON)) << JSON;
  EXPECT_NE(JSON.find("\"test.json-counter\": 7"), std::string::npos);
  EXPECT_NE(JSON.find("test.json-hist"), std::string::npos);
  EXPECT_NE(JSON.find("test.json-phase"), std::string::npos);
  EXPECT_NE(JSON.find("Am_LOAD"), std::string::npos);
}

TEST(Telemetry, ChromeTraceWellFormed) {
  TelemetryGuard Guard(/*Enable=*/true);
  telemetry::setThreadName("test-main");
  { telemetry::ScopedPhase Phase("test.trace-span", "detail \"quoted\""); }
  { telemetry::ScopedPhase Phase("test.trace-span"); }

  std::string Trace = telemetry::chromeTraceJSON();
  EXPECT_TRUE(JSONChecker::valid(Trace)) << Trace;
  EXPECT_NE(Trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Trace.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(Trace.find("test-main"), std::string::npos);
  EXPECT_NE(Trace.find("test.trace-span"), std::string::npos);
}

TEST(Telemetry, DisabledSinkNeverInvoked) {
  TelemetryGuard Guard(/*Enable=*/false);
  VecSink Sink;
  telemetry::setClassifySink(&Sink);
  // classifySink() must be null while disabled: emission sites branch on
  // it, so the disabled pipeline never constructs a remark.
  EXPECT_EQ(telemetry::classifySink(), nullptr);

  CompileResult Compiled = compileRemarkProgram();
  ASSERT_TRUE(Compiled.Ok);
  EXPECT_TRUE(Sink.Remarks.empty());
}

TEST(Telemetry, RemarkTextForm) {
  telemetry::ClassifyRemark R;
  R.Function = "main";
  R.Line = 12;
  R.Col = 3;
  R.Form = "UmAm_LOAD";
  R.Verdict = "unambiguous";
  R.Reason = "unambiguous";
  R.DeadReason = "last-read";
  R.Bypass = true;
  R.LastRef = true;
  R.AliasSet = 2;
  EXPECT_EQ(R.str(),
            "12:3: urcm-classify: UmAm_LOAD func=main class=unambiguous "
            "bypass=1 lastref=1 alias-set=2 reason=unambiguous "
            "dead=last-read");

  telemetry::ClassifyRemark Unknown;
  Unknown.Function = "f";
  Unknown.Form = "Am_LOAD";
  Unknown.Verdict = "ambiguous";
  Unknown.Reason = "ambiguous-alias";
  EXPECT_EQ(Unknown.str(),
            "<unknown>: urcm-classify: Am_LOAD func=f class=ambiguous "
            "bypass=0 lastref=0 alias-set=-1 reason=ambiguous-alias");
}

TEST(Telemetry, ClassifyRemarkGolden) {
  TelemetryGuard Guard(/*Enable=*/true);
  VecSink Sink;
  telemetry::setClassifySink(&Sink);
  CompileResult Compiled = compileRemarkProgram();
  ASSERT_TRUE(Compiled.Ok);
  telemetry::setClassifySink(nullptr);

  std::vector<std::string> Actual;
  Actual.reserve(Sink.Remarks.size());
  for (const telemetry::ClassifyRemark &R : Sink.Remarks)
    Actual.push_back(R.str());

  // Golden listing: every memory reference of RemarkProgram under the
  // unified era-mode pipeline, in pass order. The <unknown> entry is the
  // callee-side store of the incoming argument (no source token).
  // Regenerate by printing `Actual` after an intentional classification
  // change.
  const std::vector<std::string> Expected = {
      "<unknown>: urcm-classify: UmAm_STORE func=sum class=unambiguous "
      "bypass=1 lastref=0 alias-set=3 reason=unambiguous",
      "8:3: urcm-classify: UmAm_STORE func=sum class=unambiguous bypass=1 "
      "lastref=0 alias-set=4 reason=unambiguous",
      "9:8: urcm-classify: UmAm_STORE func=sum class=unambiguous bypass=1 "
      "lastref=0 alias-set=5 reason=unambiguous",
      "9:15: urcm-classify: UmAm_LOAD func=sum class=unambiguous bypass=1 "
      "lastref=0 alias-set=5 reason=unambiguous",
      "9:19: urcm-classify: UmAm_LOAD func=sum class=unambiguous bypass=1 "
      "lastref=0 alias-set=3 reason=unambiguous",
      "10:11: urcm-classify: UmAm_LOAD func=sum class=unambiguous bypass=1 "
      "lastref=1 alias-set=4 reason=unambiguous dead=last-read",
      "10:21: urcm-classify: UmAm_LOAD func=sum class=unambiguous bypass=1 "
      "lastref=0 alias-set=5 reason=unambiguous",
      "10:20: urcm-classify: Am_LOAD func=sum class=ambiguous bypass=0 "
      "lastref=0 alias-set=2 reason=ambiguous-alias",
      "10:5: urcm-classify: UmAm_STORE func=sum class=unambiguous bypass=1 "
      "lastref=0 alias-set=4 reason=unambiguous",
      "9:26: urcm-classify: UmAm_LOAD func=sum class=unambiguous bypass=1 "
      "lastref=1 alias-set=5 reason=unambiguous dead=last-read",
      "9:22: urcm-classify: UmAm_STORE func=sum class=unambiguous bypass=1 "
      "lastref=0 alias-set=5 reason=unambiguous",
      "12:10: urcm-classify: UmAm_LOAD func=sum class=unambiguous bypass=1 "
      "lastref=1 alias-set=4 reason=unambiguous dead=last-read",
      "17:8: urcm-classify: UmAm_STORE func=main class=unambiguous bypass=1 "
      "lastref=0 alias-set=3 reason=unambiguous",
      "17:15: urcm-classify: UmAm_LOAD func=main class=unambiguous bypass=1 "
      "lastref=0 alias-set=3 reason=unambiguous",
      "18:9: urcm-classify: UmAm_LOAD func=main class=unambiguous bypass=1 "
      "lastref=0 alias-set=3 reason=unambiguous",
      "18:14: urcm-classify: UmAm_LOAD func=main class=unambiguous bypass=1 "
      "lastref=0 alias-set=3 reason=unambiguous",
      "18:5: urcm-classify: AmSp_STORE func=main class=ambiguous bypass=0 "
      "lastref=0 alias-set=2 reason=ambiguous-alias",
      "17:26: urcm-classify: UmAm_LOAD func=main class=unambiguous bypass=1 "
      "lastref=1 alias-set=3 reason=unambiguous dead=last-read",
      "17:22: urcm-classify: UmAm_STORE func=main class=unambiguous bypass=1 "
      "lastref=0 alias-set=3 reason=unambiguous",
      "20:3: urcm-classify: UmAm_STORE func=main class=unambiguous bypass=1 "
      "lastref=0 alias-set=1 reason=unambiguous",
      "21:9: urcm-classify: UmAm_LOAD func=main class=unambiguous bypass=1 "
      "lastref=0 alias-set=1 reason=unambiguous",
  };
  ASSERT_EQ(Actual.size(), Expected.size()) << [&] {
    std::string All;
    for (const std::string &S : Actual)
      All += S + "\n";
    return All;
  }();
  for (size_t I = 0; I != Expected.size(); ++I)
    EXPECT_EQ(Actual[I], Expected[I]) << "remark " << I;
}

TEST(Telemetry, ResetClearsState) {
  TelemetryGuard Guard(/*Enable=*/true);
  URCM_STAT(TestCounter, "test.reset", "test counter");
  URCM_HISTOGRAM(TestHist, "test.reset-hist", "test histogram");
  TestCounter.add(3);
  TestHist.record(9);
  { telemetry::ScopedPhase Phase("test.reset-phase"); }

  telemetry::reset();
  EXPECT_EQ(TestCounter.value(), 0u);
  EXPECT_EQ(TestHist.count(), 0u);
  EXPECT_EQ(TestHist.max(), 0u);
  for (const telemetry::PhaseTotals &T : telemetry::phaseTotals())
    EXPECT_NE(T.Name, "test.reset-phase");
  EXPECT_TRUE(telemetry::collectedRemarks().empty());
}

TEST(Telemetry, SummaryTextListsNonZeroCounters) {
  TelemetryGuard Guard(/*Enable=*/true);
  URCM_STAT(TestCounter, "test.summary", "summary test counter");
  TestCounter.add(11);
  std::string Text = telemetry::summaryText();
  EXPECT_NE(Text.find("test.summary"), std::string::npos);
  EXPECT_NE(Text.find("11"), std::string::npos);
}

TEST(Telemetry, PercentileErrorBoundedByLogLinearBuckets) {
  TelemetryGuard Guard(/*Enable=*/true);
  URCM_HISTOGRAM(TestHist, "test.pctl-bound", "error-bound histogram");
  // A wide, log-spread distribution: values across 5 decades, recorded
  // in a scrambled order (percentiles must not depend on it).
  std::vector<uint64_t> Values;
  for (uint64_t V = 1; V < 200000; V = V + V / 10 + 1)
    Values.push_back(V);
  for (size_t I = 0; I != Values.size(); ++I)
    TestHist.record(Values[(I * 7919) % Values.size()]);

  std::vector<uint64_t> Sorted = Values;
  std::sort(Sorted.begin(), Sorted.end());
  // The estimate is the upper bound of the bucket holding the rank, so
  // it can never undershoot the exact percentile, and the 4-sub-bucket
  // log-linear layout bounds the overshoot at 25%.
  for (double P : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    size_t Rank = static_cast<size_t>(
        std::ceil(P / 100.0 * static_cast<double>(Sorted.size())));
    uint64_t Exact = Sorted[Rank == 0 ? 0 : Rank - 1];
    uint64_t Est = TestHist.percentile(P);
    EXPECT_GE(Est, Exact) << "p" << P;
    EXPECT_LE(static_cast<double>(Est),
              1.25 * static_cast<double>(Exact))
        << "p" << P << ": est " << Est << " exact " << Exact;
  }
}

TEST(Telemetry, SummaryTextHistogramPercentilesAndBuckets) {
  TelemetryGuard Guard(/*Enable=*/true);
  URCM_HISTOGRAM(TestHist, "test.summary-hist", "summary histogram");
  for (uint64_t V = 1; V <= 100; ++V)
    TestHist.record(V);
  std::string Text = telemetry::summaryText();
  size_t Line = Text.find("test.summary-hist");
  ASSERT_NE(Line, std::string::npos) << Text;
  EXPECT_NE(Text.find("p50=", Line), std::string::npos) << Text;
  EXPECT_NE(Text.find("p90=", Line), std::string::npos) << Text;
  EXPECT_NE(Text.find("p99=", Line), std::string::npos) << Text;
  EXPECT_NE(Text.find("max=100", Line), std::string::npos) << Text;
  // The raw bucket dump follows on the next line; small values land in
  // exact buckets, so [1..1] holds exactly one sample.
  EXPECT_NE(Text.find("buckets:", Line), std::string::npos) << Text;
  EXPECT_NE(Text.find("[1..1]=1", Line), std::string::npos) << Text;
}

TEST(Telemetry, MetricsSamplerWritesValidJSONL) {
  TelemetryGuard Guard(/*Enable=*/true);
  URCM_STAT(TestCounter, "test.metrics-counter", "sampler test counter");
  TestCounter.add(21);
  std::string Path =
      testing::TempDir() + "/urcm_metrics_test.jsonl";
  {
    // A long interval: the trajectory comes from the final sample that
    // stop() writes, so the test never sleeps.
    telemetry::MetricsSampler Sampler(Path, /*IntervalMs=*/10000);
    EXPECT_TRUE(Sampler.active());
    Sampler.stop();
    Sampler.stop(); // Idempotent.
    EXPECT_FALSE(Sampler.active());
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string Line;
  size_t Lines = 0;
  while (std::getline(In, Line)) {
    ++Lines;
    EXPECT_TRUE(JSONChecker::valid(Line)) << Line;
    EXPECT_NE(Line.find("\"t_ms\""), std::string::npos);
    EXPECT_NE(Line.find("\"events\""), std::string::npos);
    EXPECT_NE(Line.find("\"events_per_s\""), std::string::npos);
    EXPECT_NE(Line.find("\"rss_hwm_kb\""), std::string::npos);
    EXPECT_NE(Line.find("\"counters\""), std::string::npos);
  }
  EXPECT_GE(Lines, 1u);
  In.close();
  std::ifstream Check(Path);
  std::getline(Check, Line);
  EXPECT_NE(Line.find("\"test.metrics-counter\": 21"), std::string::npos)
      << Line;
  std::remove(Path.c_str());
}

TEST(Telemetry, MetricsSamplerBadPathIsInert) {
  TelemetryGuard Guard(/*Enable=*/true);
  telemetry::MetricsSampler Sampler("/nonexistent-dir/metrics.jsonl");
  EXPECT_FALSE(Sampler.active());
  Sampler.stop(); // No-op, no crash.
}
