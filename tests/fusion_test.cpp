//===- fusion_test.cpp - Superinstruction fusion tests -------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// The fusion transparency contract (urcm/sim/Predecode.h): a fused
// predecoded program produces a bit-identical SimResult, TraceEvent
// stream and attribution table to the unfused one, the trace store
// serves fused-recorded traces to unfused consumers (and vice versa),
// and a step-limited run stops on exactly MaxSteps even when the limit
// lands mid-group. Exercised here over the six paper workloads — the
// programs fusion was curated for — plus the escape hatches
// (SimConfig::Fusion, URCM_NO_FUSE) and the sim.fuse.* telemetry.
//
//===----------------------------------------------------------------------===//

#include "urcm/driver/Driver.h"
#include "urcm/sim/Predecode.h"
#include "urcm/sim/TraceStore.h"
#include "urcm/support/Telemetry.h"
#include "urcm/workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <unistd.h>

using namespace urcm;

namespace {

/// Compiles one workload under the full unified pipeline (the
/// configuration the paper figures and the benches run).
MachineProgram compileWorkload(const Workload &W) {
  DiagnosticEngine Diags;
  CompileOptions Options;
  CompileResult R = compileProgram(W.Source, Options, Diags);
  EXPECT_TRUE(R.Ok) << "compile failed for " << W.Name;
  return std::move(R.Program);
}

/// Asserts every observable field of \p A equals \p B (the reference),
/// including the recorded trace event by event.
void expectSameResult(const SimResult &A, const SimResult &B,
                      const char *Label) {
  SCOPED_TRACE(Label);
  EXPECT_EQ(A.Halted, B.Halted);
  EXPECT_EQ(A.Error, B.Error);
  EXPECT_EQ(A.Steps, B.Steps);
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.Cache, B.Cache);
  EXPECT_EQ(A.ICache, B.ICache);
  EXPECT_EQ(A.InstructionFetches, B.InstructionFetches);
  EXPECT_EQ(A.BypassTransitions, B.BypassTransitions);
  EXPECT_EQ(A.CoherenceViolations, B.CoherenceViolations);
  EXPECT_EQ(A.Refs.Unambiguous, B.Refs.Unambiguous);
  EXPECT_EQ(A.Refs.Ambiguous, B.Refs.Ambiguous);
  EXPECT_EQ(A.Refs.Spill, B.Refs.Spill);
  EXPECT_EQ(A.Refs.Unknown, B.Refs.Unknown);
  EXPECT_EQ(A.Refs.Bypassed, B.Refs.Bypassed);
  EXPECT_EQ(A.Refs.LastRefTagged, B.Refs.LastRefTagged);
  ASSERT_EQ(A.Trace.size(), B.Trace.size());
  for (size_t I = 0; I != A.Trace.size(); ++I) {
    ASSERT_EQ(A.Trace[I].Addr, B.Trace[I].Addr) << "event " << I;
    ASSERT_EQ(A.Trace[I].IsWrite, B.Trace[I].IsWrite) << "event " << I;
    ASSERT_EQ(A.Trace[I].Info.Bypass, B.Trace[I].Info.Bypass)
        << "event " << I;
    ASSERT_EQ(A.Trace[I].Info.LastRef, B.Trace[I].Info.LastRef)
        << "event " << I;
    ASSERT_EQ(A.Trace[I].RefId, B.Trace[I].RefId) << "event " << I;
  }
}

/// Scratch directory for trace-store tests; removed on destruction.
struct ScratchDir {
  std::filesystem::path Path;
  explicit ScratchDir(const char *Name) {
    Path = std::filesystem::temp_directory_path() /
           (std::string("urcm_fusion_") + Name + "." +
            std::to_string(::getpid()));
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }
};

/// Restores the global telemetry state on scope exit.
struct TelemetryGuard {
  explicit TelemetryGuard(bool Enable) {
    telemetry::setClassifySink(nullptr);
    telemetry::setEnabled(Enable);
    telemetry::reset();
  }
  ~TelemetryGuard() {
    telemetry::setClassifySink(nullptr);
    telemetry::setEnabled(false);
    telemetry::reset();
  }
};

/// Restores (or clears) URCM_NO_FUSE on scope exit.
struct NoFuseEnvGuard {
  NoFuseEnvGuard() {
    if (const char *Old = std::getenv("URCM_NO_FUSE")) {
      HadOld = true;
      OldValue = Old;
    }
  }
  ~NoFuseEnvGuard() {
    if (HadOld)
      ::setenv("URCM_NO_FUSE", OldValue.c_str(), 1);
    else
      ::unsetenv("URCM_NO_FUSE");
  }
  bool HadOld = false;
  std::string OldValue;
};

/// Group size of each fused opcode, from the same X-macro that defines
/// them — the table the matcher and the handlers are generated from.
const std::map<POp, uint32_t> &fusedGroupSizes() {
  static const std::map<POp, uint32_t> Sizes = [] {
    std::map<POp, uint32_t> M;
#define URCM_SIZE2(Name, M0, M1) M[POp::Fuse##Name] = 2;
#define URCM_SIZE3(Name, M0, M1, M2) M[POp::Fuse##Name] = 3;
    URCM_FUSED_OPS(URCM_SIZE2, URCM_SIZE3)
#undef URCM_SIZE2
#undef URCM_SIZE3
    return M;
  }();
  return Sizes;
}

} // namespace

//===----------------------------------------------------------------------===//
// Transparency over the paper workloads
//===----------------------------------------------------------------------===//

// For every paper workload: the fused predecoded engine, the unfused
// predecoded engine and the legacy switch interpreter produce
// bit-identical SimResults (every field, every trace event) and
// identical per-reference attribution tables.
TEST(Fusion, PaperWorkloadsBitIdentical) {
  for (const Workload &W : paperWorkloads()) {
    SCOPED_TRACE(W.Name);
    MachineProgram Prog = compileWorkload(W);

    auto runWith = [&](SimEngine Engine, bool Fusion, RefAttribution &Attr) {
      SimConfig Sim;
      Sim.Engine = Engine;
      Sim.Fusion = Fusion;
      Sim.RecordTrace = true;
      Attr = RefAttribution(static_cast<uint32_t>(Prog.RefTable.size()));
      Sim.Attribution = &Attr;
      return Simulator(Sim).run(Prog);
    };

    RefAttribution AttrS, AttrF, AttrU;
    SimResult S = runWith(SimEngine::Switch, true, AttrS);
    SimResult F = runWith(SimEngine::Predecoded, true, AttrF);
    SimResult U = runWith(SimEngine::Predecoded, false, AttrU);
    ASSERT_TRUE(S.ok()) << S.Error;
    // ExpectedOutput is a known-correct prefix (workloads_test checks
    // it in depth); a quick sanity check that we ran the real program.
    ASSERT_GE(S.Output.size(), W.ExpectedOutput.size());
    for (size_t I = 0; I != W.ExpectedOutput.size(); ++I)
      EXPECT_EQ(S.Output[I], W.ExpectedOutput[I]);

    expectSameResult(F, S, "fused vs switch");
    expectSameResult(U, S, "unfused vs switch");
    EXPECT_EQ(AttrF, AttrS) << "fused attribution diverged";
    EXPECT_EQ(AttrU, AttrS) << "unfused attribution diverged";

    // The workloads this set was curated on must actually fuse —
    // otherwise the equalities above test nothing.
    PredecodedProgram PP = predecode(Prog);
    FusionStats Stats = fusePredecoded(PP);
    EXPECT_TRUE(PP.fused());
    EXPECT_GT(Stats.Fused, 0u) << W.Name << " fused nothing";
    EXPECT_GE(Stats.Candidates, Stats.Fused);
  }
}

// A control transfer landing *inside* a fused group must execute the
// tail unfused from its original PInst (tails keep their full encoding;
// only head Op bytes are rewritten). Compiled workloads happen not to
// branch into group interiors with the curated set, so this
// hand-authored machine program manufactures the case deterministically:
// a loop whose back-edge targets the second Ld of a fused LdLd pair.
TEST(Fusion, BranchIntoFusedGroupTail) {
  MachineProgram Prog;
  auto li = [](uint32_t Rd, int64_t Imm) {
    MInst I;
    I.Op = MOpcode::Li;
    I.Rd = Rd;
    I.Imm = Imm;
    return I;
  };
  auto ld = [](uint32_t Rd, int64_t Addr) {
    MInst I;
    I.Op = MOpcode::Ld;
    I.Rd = Rd;
    I.Imm = Addr; // absolute: base register absent
    return I;
  };
  auto st = [](int64_t Addr, uint32_t Rs) {
    MInst I;
    I.Op = MOpcode::St;
    I.Rs2 = Rs;
    I.Imm = Addr;
    return I;
  };
  Prog.Code.push_back(li(1, 3));       // 0: r1 = loop counter
  Prog.Code.push_back(li(5, 11));      // 1: r5 = 11
  Prog.Code.push_back(st(0x40, 5));    // 2: mem[0x40] = 11   \ fuses StSt
  Prog.Code.push_back(st(0x41, 1));    // 3: mem[0x41] = r1   / (and StLd at 3)
  Prog.Code.push_back(ld(3, 0x40));    // 4: r3 = mem[0x40]   \ fuses LdLd
  Prog.Code.push_back(ld(4, 0x41));    // 5: r4 = mem[0x41]   / <- branch target
  {
    MInst Sub;                         // 6: r1 = r1 - 1
    Sub.Op = MOpcode::Sub;
    Sub.Rd = 1;
    Sub.Rs1 = 1;
    Sub.UseImm = true;
    Sub.Imm = 1;
    Prog.Code.push_back(Sub);
  }
  Prog.Code.push_back(st(0x42, 1));    // 7: mem[0x42] = r1
  {
    MInst Bnz;                         // 8: if (r1) goto 5 — mid-group!
    Bnz.Op = MOpcode::Bnz;
    Bnz.Rs1 = 1;
    Bnz.Target = 5;
    Prog.Code.push_back(Bnz);
  }
  {
    MInst P;                           // 9-10: print r3, r4
    P.Op = MOpcode::Print;
    P.Rs1 = 3;
    Prog.Code.push_back(P);
    P.Rs1 = 4;
    Prog.Code.push_back(P);
  }
  {
    MInst H;                           // 11: halt
    H.Op = MOpcode::Halt;
    Prog.Code.push_back(H);
  }

  // The fusion structure this test depends on must actually form.
  PredecodedProgram PP = predecode(Prog);
  FusionStats Stats = fusePredecoded(PP);
  ASSERT_GT(Stats.Fused, 0u);
  ASSERT_EQ(PP.Insts[4].Op, POp::FuseLdLd);
  EXPECT_EQ(PP.Insts[5].Op, POp::Ld) << "tail must keep its own opcode";
  ASSERT_EQ(fusedGroupSizes().count(PP.Insts[5].Op), 0u)
      << "index 5 must be a pure tail for the back-edge to enter "
         "mid-group";

  // Full run: all three engines bit-identical despite the mid-group
  // back-edge (three loop iterations enter the LdLd group at its tail).
  auto runWith = [&](SimEngine Engine, bool Fusion, uint64_t MaxSteps) {
    SimConfig Sim;
    Sim.Engine = Engine;
    Sim.Fusion = Fusion;
    Sim.RecordTrace = true;
    if (MaxSteps)
      Sim.MaxSteps = MaxSteps;
    return Simulator(Sim).run(Prog);
  };
  SimResult S = runWith(SimEngine::Switch, true, 0);
  SimResult F = runWith(SimEngine::Predecoded, true, 0);
  SimResult U = runWith(SimEngine::Predecoded, false, 0);
  ASSERT_TRUE(S.ok()) << S.Error;
  EXPECT_EQ(S.Output, (std::vector<int64_t>{11, 3}));
  expectSameResult(F, S, "fused vs switch");
  expectSameResult(U, S, "unfused vs switch");

  // Truncated runs: every possible limit, so the step budget expires on
  // each phase of each group (including right at the mid-group entry).
  for (uint64_t L = 1; L < S.Steps; ++L) {
    SCOPED_TRACE("MaxSteps=" + std::to_string(L));
    SimResult TS = runWith(SimEngine::Switch, true, L);
    SimResult TF = runWith(SimEngine::Predecoded, true, L);
    SimResult TU = runWith(SimEngine::Predecoded, false, L);
    EXPECT_EQ(TS.Steps, L);
    EXPECT_EQ(TF.Steps, L);
    EXPECT_EQ(TU.Steps, L);
    expectSameResult(TF, TS, "fused vs switch (truncated)");
    expectSameResult(TU, TS, "unfused vs switch (truncated)");
  }
}

//===----------------------------------------------------------------------===//
// Warm-path interchangeability
//===----------------------------------------------------------------------===//

// SimConfig::Fusion is excluded from traceContentHash by design: a
// trace recorded by a fused run is served, byte for byte, to an unfused
// consumer and vice versa.
TEST(Fusion, TraceStoreCrossService) {
  const Workload *W = findWorkload("Sieve");
  ASSERT_NE(W, nullptr);
  MachineProgram Prog = compileWorkload(*W);

  SimConfig Fused;
  Fused.Fusion = true;
  SimConfig Unfused = Fused;
  Unfused.Fusion = false;
  ASSERT_EQ(traceContentHash(Prog, Fused), traceContentHash(Prog, Unfused))
      << "Fusion leaked into the content hash; warm stores would "
         "double-record every workload";
  uint64_t Hash = traceContentHash(Prog, Fused);

  ScratchDir Dir("cross_service");
  DiagnosticEngine Diags;

  // Record with the fused engine.
  TraceStoreWriter Writer;
  ASSERT_TRUE(Writer.open(Dir.str(), Hash, Diags));
  TraceRecordSink Record(Writer);
  SimConfig RecordCfg = Fused;
  RecordCfg.Sink = &Record;
  SimResult Recorded = Simulator(RecordCfg).run(Prog);
  ASSERT_TRUE(Recorded.ok()) << Recorded.Error;
  ASSERT_TRUE(Writer.commit(Recorded, Diags));

  // An unfused run's in-memory trace is the ground truth.
  SimConfig Truth = Unfused;
  Truth.RecordTrace = true;
  SimResult Reference = Simulator(Truth).run(Prog);
  ASSERT_TRUE(Reference.ok()) << Reference.Error;

  // The store opened under the unfused config's hash serves the
  // fused-recorded trace, event for event.
  TraceStoreReader Reader;
  ASSERT_EQ(Reader.open(traceStorePath(Dir.str(), Hash), Hash, Diags),
            TraceStoreReader::OpenStatus::Ok);
  EXPECT_EQ(Reader.summary().Steps, Reference.Steps);
  EXPECT_EQ(Reader.summary().Output, Reference.Output);
  std::vector<TraceEvent> Served;
  ASSERT_TRUE(Reader.readAll(Served));
  ASSERT_EQ(Served.size(), Reference.Trace.size());
  for (size_t I = 0; I != Served.size(); ++I) {
    ASSERT_EQ(Served[I].Addr, Reference.Trace[I].Addr) << "event " << I;
    ASSERT_EQ(Served[I].IsWrite, Reference.Trace[I].IsWrite)
        << "event " << I;
    ASSERT_EQ(Served[I].Info.Bypass, Reference.Trace[I].Info.Bypass)
        << "event " << I;
    ASSERT_EQ(Served[I].Info.LastRef, Reference.Trace[I].Info.LastRef)
        << "event " << I;
    ASSERT_EQ(Served[I].RefId, Reference.Trace[I].RefId) << "event " << I;
  }
}

//===----------------------------------------------------------------------===//
// Step-limit precision
//===----------------------------------------------------------------------===//

// A truncated run must stop after exactly MaxSteps retired instructions
// under every dispatch strategy — a fused group whose tail would cross
// the limit executes from the unfused shadow array instead of
// overshooting. The sweep covers every limit small enough to land on
// all phases of every fused group the program enters, plus a band in
// the middle of the main loop.
TEST(Fusion, MaxStepsStopsExactly) {
  const Workload *W = findWorkload("Bubble");
  ASSERT_NE(W, nullptr);
  MachineProgram Prog = compileWorkload(*W);

  SimConfig Full;
  SimResult Complete = Simulator(Full).run(Prog);
  ASSERT_TRUE(Complete.ok()) << Complete.Error;
  ASSERT_GT(Complete.Steps, 2000u);

  std::vector<uint64_t> Limits;
  for (uint64_t L = 1; L <= 192; ++L)
    Limits.push_back(L);
  for (uint64_t L = 1001; L <= 1064; ++L)
    Limits.push_back(L);
  Limits.push_back(Complete.Steps - 1);

  for (uint64_t L : Limits) {
    SCOPED_TRACE("MaxSteps=" + std::to_string(L));
    auto truncated = [&](SimEngine Engine, bool Fusion) {
      SimConfig Sim;
      Sim.Engine = Engine;
      Sim.Fusion = Fusion;
      Sim.MaxSteps = L;
      Sim.RecordTrace = true;
      return Simulator(Sim).run(Prog);
    };
    SimResult S = truncated(SimEngine::Switch, true);
    SimResult F = truncated(SimEngine::Predecoded, true);
    SimResult U = truncated(SimEngine::Predecoded, false);
    EXPECT_FALSE(S.Halted);
    EXPECT_EQ(S.Steps, L) << "switch interpreter overshot";
    EXPECT_EQ(F.Steps, L) << "fused engine overshot";
    EXPECT_EQ(U.Steps, L) << "unfused engine overshot";
    expectSameResult(F, S, "fused vs switch (truncated)");
    expectSameResult(U, S, "unfused vs switch (truncated)");
  }
}

//===----------------------------------------------------------------------===//
// Escape hatches and telemetry
//===----------------------------------------------------------------------===//

// URCM_NO_FUSE in the environment disables fusion on any binary
// (anything but "0"); SimConfig::Fusion is the per-run switch.
TEST(Fusion, EnvVarDisablesFusion) {
  const Workload *W = findWorkload("Queen");
  ASSERT_NE(W, nullptr);
  MachineProgram Prog = compileWorkload(*W);
  NoFuseEnvGuard Guard;

  ::setenv("URCM_NO_FUSE", "1", 1);
  {
    PredecodedProgram PP = predecode(Prog);
    FusionStats Stats = fusePredecoded(PP);
    EXPECT_EQ(Stats.Fused, 0u);
    EXPECT_EQ(Stats.Candidates, 0u);
    EXPECT_FALSE(PP.fused());
  }

  // "0" means enabled — the documented way to force fusion on in an
  // environment that exports the variable.
  ::setenv("URCM_NO_FUSE", "0", 1);
  {
    PredecodedProgram PP = predecode(Prog);
    FusionStats Stats = fusePredecoded(PP);
    EXPECT_GT(Stats.Fused, 0u);
    EXPECT_TRUE(PP.fused());
  }
}

// Fusing an already-fused program is a no-op (idempotence), so callers
// can funnel every predecoded program through fusePredecoded without
// tracking state.
TEST(Fusion, RefusingIsANoOp) {
  const Workload *W = findWorkload("Queen");
  ASSERT_NE(W, nullptr);
  MachineProgram Prog = compileWorkload(*W);
  PredecodedProgram PP = predecode(Prog);
  FusionStats First = fusePredecoded(PP);
  ASSERT_GT(First.Fused, 0u);
  std::vector<PInst> Snapshot = PP.Insts;
  FusionStats Second = fusePredecoded(PP);
  EXPECT_EQ(Second.Fused, 0u);
  EXPECT_EQ(Second.Candidates, 0u);
  ASSERT_EQ(PP.Insts.size(), Snapshot.size());
  for (size_t I = 0; I != Snapshot.size(); ++I)
    EXPECT_EQ(static_cast<int>(PP.Insts[I].Op),
              static_cast<int>(Snapshot[I].Op))
        << "inst " << I;
}

// sim.fuse.{candidates,fused,dispatches-saved} report the work fusion
// did; with SimConfig::Fusion off they stay zero.
TEST(Fusion, TelemetryCountersReportFusion) {
  const Workload *W = findWorkload("Queen");
  ASSERT_NE(W, nullptr);
  MachineProgram Prog = compileWorkload(*W);

  {
    TelemetryGuard Guard(true);
    SimConfig Sim;
    SimResult R = Simulator(Sim).run(Prog);
    ASSERT_TRUE(R.ok()) << R.Error;
    std::string JSON = telemetry::snapshotJSON();
    EXPECT_NE(JSON.find("\"sim.fuse.candidates\""), std::string::npos);
    EXPECT_EQ(JSON.find("\"sim.fuse.fused\": 0"), std::string::npos)
        << JSON;
    EXPECT_EQ(JSON.find("\"sim.fuse.dispatches-saved\": 0"),
              std::string::npos)
        << JSON;
  }
  {
    TelemetryGuard Guard(true);
    SimConfig Sim;
    Sim.Fusion = false;
    SimResult R = Simulator(Sim).run(Prog);
    ASSERT_TRUE(R.ok()) << R.Error;
    std::string JSON = telemetry::snapshotJSON();
    EXPECT_NE(JSON.find("\"sim.fuse.fused\": 0"), std::string::npos)
        << JSON;
    EXPECT_NE(JSON.find("\"sim.fuse.dispatches-saved\": 0"),
              std::string::npos)
        << JSON;
  }
}
