//===- support_test.cpp - urcm_support unit tests -----------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/support/Casting.h"
#include "urcm/support/Diagnostics.h"
#include "urcm/support/RNG.h"
#include "urcm/support/SPSCQueue.h"
#include "urcm/support/StringUtils.h"
#include "urcm/support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>

using namespace urcm;

TEST(StringUtils, FormatBasic) {
  EXPECT_EQ(formatString("x=%d", 42), "x=42");
  EXPECT_EQ(formatString("%s-%s", "a", "b"), "a-b");
  EXPECT_EQ(formatString("empty"), "empty");
}

TEST(StringUtils, FormatLongOutput) {
  std::string Long(500, 'y');
  EXPECT_EQ(formatString("%s", Long.c_str()), Long);
}

TEST(StringUtils, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtils, StartsWith) {
  EXPECT_TRUE(startsWith("hello", "he"));
  EXPECT_TRUE(startsWith("hello", ""));
  EXPECT_FALSE(startsWith("he", "hello"));
  EXPECT_FALSE(startsWith("hello", "lo"));
}

TEST(SourceLoc, Render) {
  EXPECT_EQ(SourceLoc().str(), "<unknown>");
  EXPECT_EQ(SourceLoc(3, 7).str(), "3:7");
  EXPECT_FALSE(SourceLoc().isValid());
  EXPECT_TRUE(SourceLoc(1, 1).isValid());
}

TEST(Diagnostics, CountsErrors) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning(SourceLoc(1, 2), "something odd");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error(SourceLoc(2, 3), "something bad");
  Diags.note(SourceLoc(), "context");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.diagnostics().size(), 3u);
}

TEST(Diagnostics, RenderStyle) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(4, 9), "unexpected token");
  EXPECT_EQ(Diags.diagnostics()[0].str(), "4:9: error: unexpected token");
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(RNG, Deterministic) {
  SplitMix64 A(7), B(7);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNG, DifferentSeedsDiffer) {
  SplitMix64 A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I != 10; ++I)
    AnyDifferent |= A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(RNG, BoundRespected) {
  SplitMix64 R(99);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

namespace {
// Tiny hierarchy to exercise the casting helpers.
struct Base {
  enum class Kind { A, B };
  explicit Base(Kind K) : TheKind(K) {}
  Kind kind() const { return TheKind; }

private:
  Kind TheKind;
};
struct DerivedA : Base {
  DerivedA() : Base(Kind::A) {}
  static bool classof(const Base *B) { return B->kind() == Kind::A; }
};
struct DerivedB : Base {
  DerivedB() : Base(Kind::B) {}
  static bool classof(const Base *B) { return B->kind() == Kind::B; }
};
} // namespace

TEST(Casting, IsaAndDynCast) {
  DerivedA A;
  Base *B = &A;
  EXPECT_TRUE(isa<DerivedA>(B));
  EXPECT_FALSE(isa<DerivedB>(B));
  EXPECT_EQ(dyn_cast<DerivedA>(B), &A);
  EXPECT_EQ(dyn_cast<DerivedB>(B), nullptr);
  EXPECT_EQ(cast<DerivedA>(B), &A);
  Base *Null = nullptr;
  EXPECT_EQ(dyn_cast_if_present<DerivedA>(Null), nullptr);
}

//===----------------------------------------------------------------------===//
// ThreadPool exception propagation
//===----------------------------------------------------------------------===//

TEST(ThreadPool, ParallelForPropagatesWorkerException) {
  ThreadPool Pool(3);
  std::atomic<size_t> Ran{0};
  EXPECT_THROW(Pool.parallelFor(32,
                                [&](size_t I) {
                                  if (I == 7)
                                    throw std::runtime_error("task 7 failed");
                                  Ran.fetch_add(1);
                                }),
               std::runtime_error);
  // Remaining indexes still run to completion before the rethrow.
  EXPECT_EQ(Ran.load(), 31u);
}

TEST(ThreadPool, ParallelForSerialFastPathPropagates) {
  // N == 1 executes inline on the caller; the exception must still
  // surface identically.
  ThreadPool Pool(2);
  EXPECT_THROW(
      Pool.parallelFor(1, [](size_t) { throw std::logic_error("inline"); }),
      std::logic_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool Pool(2);
  EXPECT_THROW(
      Pool.parallelFor(8, [](size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  // The pool must survive a throwing batch: workers keep running and a
  // later parallelFor completes normally.
  std::atomic<size_t> Sum{0};
  Pool.parallelFor(100, [&](size_t I) { Sum.fetch_add(I); });
  EXPECT_EQ(Sum.load(), 4950u);
}

TEST(ThreadPool, FirstExceptionWins) {
  ThreadPool Pool(4);
  try {
    Pool.parallelFor(64, [](size_t I) {
      throw std::runtime_error("task " + std::to_string(I));
    });
    FAIL() << "expected parallelFor to rethrow";
  } catch (const std::runtime_error &E) {
    EXPECT_EQ(std::string(E.what()).rfind("task ", 0), 0u);
  }
}

TEST(ThreadPool, ParallelForGrainCoversEveryIndexOnce) {
  ThreadPool Pool(3);
  for (size_t Grain : {1ul, 7ul, 64ul, 1000ul, 5000ul}) {
    std::vector<std::atomic<uint32_t>> Hits(1000);
    Pool.parallelFor(
        Hits.size(), [&](size_t I) { Hits[I].fetch_add(1); }, Grain);
    for (size_t I = 0; I != Hits.size(); ++I)
      ASSERT_EQ(Hits[I].load(), 1u) << "grain " << Grain << " index " << I;
  }
}

TEST(ThreadPool, ParallelForGrainSerialPathPropagates) {
  // N <= Grain runs inline on the caller; the exception contract
  // (remaining indexes still run, first exception rethrown) holds.
  ThreadPool Pool(2);
  std::atomic<size_t> Ran{0};
  EXPECT_THROW(Pool.parallelFor(
                   8,
                   [&](size_t I) {
                     if (I == 2)
                       throw std::runtime_error("grain serial");
                     Ran.fetch_add(1);
                   },
                   16),
               std::runtime_error);
  EXPECT_EQ(Ran.load(), 7u);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  // Sharded replay fans out inside an experiment that is itself a
  // parallelFor index: the inner call drains its own index space on the
  // caller plus any free workers, so nesting must not deadlock.
  ThreadPool Pool(2);
  std::atomic<size_t> Inner{0};
  Pool.parallelFor(4, [&](size_t) {
    Pool.parallelFor(8, [&](size_t) { Inner.fetch_add(1); });
  });
  EXPECT_EQ(Inner.load(), 32u);
}

//===----------------------------------------------------------------------===//
// SPSCQueue wait counters
//===----------------------------------------------------------------------===//

TEST(SPSCQueue, CountsProducerWaits) {
  SPSCQueue<int> Q(1);
  EXPECT_EQ(Q.pushWaits(), 0u);
  Q.push(1); // Fills the queue without waiting.
  EXPECT_EQ(Q.pushWaits(), 0u);
  EXPECT_EQ(Q.size(), 1u);

  // The second push must find the queue full and block; the counter
  // increments before the wait, so polling it sequences the test
  // deterministically.
  std::thread Producer([&] { Q.push(2); });
  while (Q.pushWaits() == 0)
    std::this_thread::yield();
  int V = 0;
  ASSERT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 1);
  ASSERT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 2);
  Producer.join();
  // The second pop may or may not beat the awakened producer, so only
  // the push side is exact here.
  EXPECT_EQ(Q.pushWaits(), 1u);
}

TEST(SPSCQueue, CountsConsumerWaits) {
  SPSCQueue<int> Q(4);
  std::thread Consumer([&] {
    int V = 0;
    ASSERT_TRUE(Q.pop(V)); // Blocks: queue starts empty.
    EXPECT_EQ(V, 9);
    EXPECT_FALSE(Q.pop(V)); // Blocks again until close().
  });
  while (Q.popWaits() == 0)
    std::this_thread::yield();
  Q.push(9);
  while (Q.popWaits() < 2)
    std::this_thread::yield();
  Q.close();
  Consumer.join();
  EXPECT_EQ(Q.popWaits(), 2u);
  EXPECT_EQ(Q.pushWaits(), 0u);
}
