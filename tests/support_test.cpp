//===- support_test.cpp - urcm_support unit tests -----------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/support/Casting.h"
#include "urcm/support/Diagnostics.h"
#include "urcm/support/RNG.h"
#include "urcm/support/StringUtils.h"

#include <gtest/gtest.h>

using namespace urcm;

TEST(StringUtils, FormatBasic) {
  EXPECT_EQ(formatString("x=%d", 42), "x=42");
  EXPECT_EQ(formatString("%s-%s", "a", "b"), "a-b");
  EXPECT_EQ(formatString("empty"), "empty");
}

TEST(StringUtils, FormatLongOutput) {
  std::string Long(500, 'y');
  EXPECT_EQ(formatString("%s", Long.c_str()), Long);
}

TEST(StringUtils, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtils, StartsWith) {
  EXPECT_TRUE(startsWith("hello", "he"));
  EXPECT_TRUE(startsWith("hello", ""));
  EXPECT_FALSE(startsWith("he", "hello"));
  EXPECT_FALSE(startsWith("hello", "lo"));
}

TEST(SourceLoc, Render) {
  EXPECT_EQ(SourceLoc().str(), "<unknown>");
  EXPECT_EQ(SourceLoc(3, 7).str(), "3:7");
  EXPECT_FALSE(SourceLoc().isValid());
  EXPECT_TRUE(SourceLoc(1, 1).isValid());
}

TEST(Diagnostics, CountsErrors) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning(SourceLoc(1, 2), "something odd");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error(SourceLoc(2, 3), "something bad");
  Diags.note(SourceLoc(), "context");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.diagnostics().size(), 3u);
}

TEST(Diagnostics, RenderStyle) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(4, 9), "unexpected token");
  EXPECT_EQ(Diags.diagnostics()[0].str(), "4:9: error: unexpected token");
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(RNG, Deterministic) {
  SplitMix64 A(7), B(7);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNG, DifferentSeedsDiffer) {
  SplitMix64 A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I != 10; ++I)
    AnyDifferent |= A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(RNG, BoundRespected) {
  SplitMix64 R(99);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

namespace {
// Tiny hierarchy to exercise the casting helpers.
struct Base {
  enum class Kind { A, B };
  explicit Base(Kind K) : TheKind(K) {}
  Kind kind() const { return TheKind; }

private:
  Kind TheKind;
};
struct DerivedA : Base {
  DerivedA() : Base(Kind::A) {}
  static bool classof(const Base *B) { return B->kind() == Kind::A; }
};
struct DerivedB : Base {
  DerivedB() : Base(Kind::B) {}
  static bool classof(const Base *B) { return B->kind() == Kind::B; }
};
} // namespace

TEST(Casting, IsaAndDynCast) {
  DerivedA A;
  Base *B = &A;
  EXPECT_TRUE(isa<DerivedA>(B));
  EXPECT_FALSE(isa<DerivedB>(B));
  EXPECT_EQ(dyn_cast<DerivedA>(B), &A);
  EXPECT_EQ(dyn_cast<DerivedB>(B), nullptr);
  EXPECT_EQ(cast<DerivedA>(B), &A);
  Base *Null = nullptr;
  EXPECT_EQ(dyn_cast_if_present<DerivedA>(Null), nullptr);
}
