//===- sema_test.cpp - MC semantic analysis tests ------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/lang/Sema.h"

#include <gtest/gtest.h>

#include <functional>

using namespace urcm;

namespace {

std::unique_ptr<TranslationUnit> analyzeOk(const std::string &Source) {
  DiagnosticEngine Diags;
  auto TU = parseAndAnalyze(Source, Diags);
  EXPECT_NE(TU, nullptr) << Diags.str();
  return TU;
}

bool analyzeFails(const std::string &Source) {
  DiagnosticEngine Diags;
  return parseAndAnalyze(Source, Diags) == nullptr;
}

} // namespace

TEST(Sema, AcceptsWellTypedProgram) {
  analyzeOk("int g;\n"
            "int a[8];\n"
            "int sum(int *v, int n) {\n"
            "  int i;\n"
            "  int s = 0;\n"
            "  for (i = 0; i < n; i = i + 1) { s = s + v[i]; }\n"
            "  return s;\n"
            "}\n"
            "void main() { g = sum(&a[0], 8); print(g); }\n");
}

TEST(Sema, RequiresMain) {
  EXPECT_TRUE(analyzeFails("int f() { return 1; }"));
}

TEST(Sema, AddressTakenMarking) {
  auto TU = analyzeOk("void main() { int x; int y; int *p; p = &x; "
                      "y = *p; print(y); }");
  // Find the declarations inside main's body.
  const VarDecl *X = nullptr, *Y = nullptr;
  std::function<void(const Stmt &)> Walk = [&](const Stmt &S) {
    if (const auto *B = dyn_cast<BlockStmt>(&S)) {
      for (const auto &Child : B->stmts())
        Walk(*Child);
      return;
    }
    if (const auto *D = dyn_cast<DeclStmt>(&S)) {
      if (D->decl()->name() == "x")
        X = D->decl();
      if (D->decl()->name() == "y")
        Y = D->decl();
    }
  };
  Walk(*TU->functions()[0]->body());
  ASSERT_NE(X, nullptr);
  ASSERT_NE(Y, nullptr);
  EXPECT_TRUE(X->isAddressTaken());
  EXPECT_FALSE(Y->isAddressTaken());
}

TEST(Sema, PointerArithmeticTypes) {
  analyzeOk("int a[4];\n"
            "void main() { int *p; int d; p = &a[0]; p = p + 1; "
            "d = p - &a[0]; print(d); }");
}

TEST(Sema, RejectsPointerTimesInt) {
  EXPECT_TRUE(analyzeFails(
      "int a[4]; void main() { int *p; p = &a[0]; p = p * 2; }"));
}

TEST(Sema, RejectsIntMinusPointer) {
  EXPECT_TRUE(analyzeFails(
      "int a[4]; void main() { int *p; p = &a[0]; p = 1 - p; }"));
}

TEST(Sema, RejectsAssignIntToPointer) {
  EXPECT_TRUE(analyzeFails("void main() { int *p; p = 3; }"));
}

TEST(Sema, RejectsAssignPointerToInt) {
  EXPECT_TRUE(analyzeFails(
      "int a[2]; void main() { int x; x = &a[0]; }"));
}

TEST(Sema, ArrayDecaysToPointer) {
  analyzeOk("int a[4];\n"
            "int first(int *p) { return p[0]; }\n"
            "void main() { print(first(a)); }");
}

TEST(Sema, RejectsAssignToArray) {
  EXPECT_TRUE(analyzeFails(
      "int a[2]; int b[2]; void main() { a = b; }"));
}

TEST(Sema, RejectsNonLValueAssignment) {
  EXPECT_TRUE(analyzeFails("void main() { 1 = 2; }"));
  EXPECT_TRUE(analyzeFails("void main() { int x; (x + 1) = 2; }"));
}

TEST(Sema, RejectsAddressOfRValue) {
  EXPECT_TRUE(analyzeFails("void main() { int *p; p = &(1 + 2); }"));
}

TEST(Sema, RejectsDerefOfInt) {
  EXPECT_TRUE(analyzeFails("void main() { int x; int y; y = *x; }"));
}

TEST(Sema, RejectsIndexOfScalar) {
  EXPECT_TRUE(analyzeFails("void main() { int x; int y; y = x[0]; }"));
}

TEST(Sema, RejectsNonIntSubscript) {
  EXPECT_TRUE(analyzeFails(
      "int a[4]; void main() { int *p; p = &a[0]; print(a[p]); }"));
}

TEST(Sema, ReturnTypeChecking) {
  EXPECT_TRUE(analyzeFails("int f() { return; } void main() { f(); }"));
  EXPECT_TRUE(analyzeFails("void f() { return 1; } void main() { f(); }"));
  EXPECT_TRUE(analyzeFails(
      "int a[2]; int *f() { return 1; } void main() { f(); }"));
  analyzeOk("int a[2]; int *f() { return &a[0]; } void main() { f(); }");
}

TEST(Sema, CallArgumentChecking) {
  EXPECT_TRUE(analyzeFails(
      "int f(int x) { return x; } void main() { f(); }"));
  EXPECT_TRUE(analyzeFails(
      "int f(int x) { return x; } void main() { f(1, 2); }"));
  EXPECT_TRUE(analyzeFails(
      "int a[2]; int f(int x) { return x; } void main() { f(&a[0]); }"));
  analyzeOk("int f(int x) { return x; } void main() { print(f(3)); }");
}

TEST(Sema, VoidValueMisuse) {
  EXPECT_TRUE(analyzeFails(
      "void f() { } void main() { int x; x = f(); }"));
  EXPECT_TRUE(analyzeFails("void f() { } void main() { print(f() + 1); }"));
}

TEST(Sema, PrintChecking) {
  EXPECT_TRUE(analyzeFails("void main() { print(); }"));
  EXPECT_TRUE(analyzeFails("void main() { print(1, 2); }"));
  EXPECT_TRUE(analyzeFails(
      "int a[2]; void main() { print(&a[0]); }"));
}

TEST(Sema, BreakOutsideLoopCaughtByParserOrSema) {
  DiagnosticEngine Diags;
  parseAndAnalyze("void main() { break; }", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Sema, InitializerTypeChecking) {
  EXPECT_TRUE(analyzeFails(
      "int a[2]; void main() { int x = &a[0]; }"));
  analyzeOk("int a[2]; void main() { int *p = &a[0]; print(*p); }");
}

TEST(Sema, ConditionMustBeScalar) {
  analyzeOk("int a[2]; void main() { int *p = &a[0]; if (p) { } }");
}

TEST(Sema, MainMustTakeNoParameters) {
  EXPECT_TRUE(analyzeFails("void main(int argc) { print(argc); }"));
}
