//===- dataflow_test.cpp - Liveness, reaching defs and web tests ---------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/analysis/Liveness.h"
#include "urcm/analysis/ReachingDefs.h"
#include "urcm/analysis/Webs.h"

#include "IRTestHelpers.h"

#include <gtest/gtest.h>

using namespace urcm;
using urcm::testing::FuncBuilder;

TEST(Liveness, StraightLine) {
  IRModule M;
  M.addGlobal(IRGlobal{"g", 1, nullptr, 0});
  FuncBuilder B(M, "f");
  auto *Entry = B.block("entry");
  Reg A = B.reg();
  Reg C = B.reg();
  B.at(Entry).mov(A, 1);
  B.inst(Opcode::Add, C, {Operand::reg(A), Operand::imm(2)});
  B.store(C, Operand::global(0));
  B.ret();

  CFGInfo CFG(*B.function());
  Liveness LV(*B.function(), CFG);
  EXPECT_FALSE(LV.isLiveIn(Entry->id(), A));
  EXPECT_FALSE(LV.isLiveOut(Entry->id(), A));

  // Per-instruction: A is live after its def (mov) and dead after the
  // add consumes it.
  std::vector<std::vector<bool>> LiveAfter(4);
  LV.scanBlockBackward(*B.function(), Entry->id(),
                       [&](uint32_t Index, const std::vector<bool> &Live) {
                         LiveAfter[Index] = Live;
                       });
  EXPECT_TRUE(LiveAfter[0][A]);  // After mov A.
  EXPECT_FALSE(LiveAfter[1][A]); // After add (last use of A).
  EXPECT_TRUE(LiveAfter[1][C]);
  EXPECT_FALSE(LiveAfter[2][C]); // After store (last use of C).
}

TEST(Liveness, LoopCarried) {
  IRModule M;
  FuncBuilder B(M, "f", true, 1);
  auto *Entry = B.block("entry");
  auto *Loop = B.block("loop");
  auto *Exit = B.block("exit");
  Reg X = B.reg();
  B.at(Entry).mov(X, 0).br(Loop);
  B.at(Loop).add(X, X, 0).condbr(0, Loop, Exit);
  B.at(Exit).ret(X);

  CFGInfo CFG(*B.function());
  Liveness LV(*B.function(), CFG);
  // X is live around the loop and out of it.
  EXPECT_TRUE(LV.isLiveIn(Loop->id(), X));
  EXPECT_TRUE(LV.isLiveOut(Loop->id(), X));
  EXPECT_TRUE(LV.isLiveIn(Exit->id(), X));
  // The parameter (r0) is used by the loop condition and add.
  EXPECT_TRUE(LV.isLiveIn(Loop->id(), 0));
}

TEST(ReachingDefs, ParamPseudoDefs) {
  IRModule M;
  FuncBuilder B(M, "f", true, 2);
  auto *Entry = B.block("entry");
  Reg S = B.reg();
  B.at(Entry).add(S, 0, 1).ret(S);

  CFGInfo CFG(*B.function());
  ReachingDefs RD(*B.function(), CFG);
  // Defs: two params + one add.
  ASSERT_EQ(RD.defs().size(), 3u);
  EXPECT_TRUE(RD.defs()[0].isParam());
  EXPECT_TRUE(RD.defs()[1].isParam());
  EXPECT_FALSE(RD.defs()[2].isParam());

  auto Reaching = RD.reachingDefsAt(*B.function(), Entry->id(), 0, 0);
  ASSERT_EQ(Reaching.size(), 1u);
  EXPECT_TRUE(RD.defs()[Reaching[0]].isParam());
}

TEST(ReachingDefs, LocalKill) {
  IRModule M;
  FuncBuilder B(M, "f", true, 0);
  auto *Entry = B.block("entry");
  Reg X = B.reg();
  B.at(Entry).mov(X, 1).mov(X, 2).ret(X);

  CFGInfo CFG(*B.function());
  ReachingDefs RD(*B.function(), CFG);
  // The use in ret sees only the second def.
  auto Reaching = RD.reachingDefsAt(*B.function(), Entry->id(), 2, X);
  ASSERT_EQ(Reaching.size(), 1u);
  EXPECT_EQ(RD.defs()[Reaching[0]].Index, 1u);
}

TEST(ReachingDefs, MergeAtJoin) {
  IRModule M;
  FuncBuilder B(M, "f", true, 1);
  auto *Entry = B.block("entry");
  auto *Then = B.block("then");
  auto *Else = B.block("else");
  auto *Join = B.block("join");
  Reg X = B.reg();
  B.at(Entry).condbr(0, Then, Else);
  B.at(Then).mov(X, 1).br(Join);
  B.at(Else).mov(X, 2).br(Join);
  B.at(Join).ret(X);

  CFGInfo CFG(*B.function());
  ReachingDefs RD(*B.function(), CFG);
  auto Reaching = RD.reachingDefsAt(*B.function(), Join->id(), 0, X);
  EXPECT_EQ(Reaching.size(), 2u);
}

TEST(Webs, DisjointLifetimesSplit) {
  // The same register holds two unrelated values; Definition 2 splits
  // them into separate webs.
  IRModule M;
  M.addGlobal(IRGlobal{"g", 1, nullptr, 0});
  FuncBuilder B(M, "f");
  auto *Entry = B.block("entry");
  Reg X = B.reg();
  B.at(Entry).mov(X, 1);
  B.store(X, Operand::global(0)); // Last use of value 1.
  B.mov(X, 2);                    // Fresh value, same register.
  B.store(X, Operand::global(0));
  B.ret();

  CFGInfo CFG(*B.function());
  ReachingDefs RD(*B.function(), CFG);
  WebAnalysis WA(*B.function(), CFG, RD);
  EXPECT_EQ(WA.webs().size(), 2u);
}

TEST(Webs, JoinMergesDefs) {
  // Defs on both branch arms reach one use: a single web.
  IRModule M;
  FuncBuilder B(M, "f", true, 1);
  auto *Entry = B.block("entry");
  auto *Then = B.block("then");
  auto *Else = B.block("else");
  auto *Join = B.block("join");
  Reg X = B.reg();
  B.at(Entry).condbr(0, Then, Else);
  B.at(Then).mov(X, 1).br(Join);
  B.at(Else).mov(X, 2).br(Join);
  B.at(Join).ret(X);

  CFGInfo CFG(*B.function());
  ReachingDefs RD(*B.function(), CFG);
  WebAnalysis WA(*B.function(), CFG, RD);
  // Webs: the param web (r0) and the merged X web.
  uint32_t XWebs = 0;
  for (const Web &W : WA.webs())
    if (W.Register == X)
      ++XWebs;
  EXPECT_EQ(XWebs, 1u);
  for (const Web &W : WA.webs())
    if (W.Register == X) {
      EXPECT_EQ(W.DefIds.size(), 2u);
      EXPECT_EQ(W.Uses.size(), 1u);
    }
}

TEST(Webs, LoopValueSingleWeb) {
  IRModule M;
  FuncBuilder B(M, "f", true, 1);
  auto *Entry = B.block("entry");
  auto *Loop = B.block("loop");
  auto *Exit = B.block("exit");
  Reg X = B.reg();
  B.at(Entry).mov(X, 0).br(Loop);
  B.at(Loop).add(X, X, 0).condbr(0, Loop, Exit);
  B.at(Exit).ret(X);

  CFGInfo CFG(*B.function());
  ReachingDefs RD(*B.function(), CFG);
  WebAnalysis WA(*B.function(), CFG, RD);
  uint32_t XWebs = 0;
  for (const Web &W : WA.webs())
    if (W.Register == X)
      ++XWebs;
  // The init def and the loop-carried def share uses: one web.
  EXPECT_EQ(XWebs, 1u);
}

TEST(Webs, ParamWebFlagged) {
  IRModule M;
  FuncBuilder B(M, "f", true, 1);
  auto *Entry = B.block("entry");
  B.at(Entry).ret(0);
  CFGInfo CFG(*B.function());
  ReachingDefs RD(*B.function(), CFG);
  WebAnalysis WA(*B.function(), CFG, RD);
  ASSERT_EQ(WA.webs().size(), 1u);
  EXPECT_TRUE(WA.webs()[0].IncludesParam);
}
