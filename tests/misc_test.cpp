//===- misc_test.cpp - Printer, latency-model and metadata tests ---------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/driver/Driver.h"
#include "urcm/sim/Cache.h"
#include "urcm/workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace urcm;

TEST(LatencyModel, CountsHitAndBusCycles) {
  CacheStats S;
  S.Reads = 100;
  S.Writes = 50;
  S.ReadHits = 90;
  S.WriteHits = 50;
  S.FillWords = 10;
  S.WriteBackWords = 5;
  S.BypassReads = 3;
  S.BypassWrites = 2;
  LatencyModel Model; // hit=1, memory=10.
  EXPECT_EQ(memoryAccessCycles(S, Model),
            150u /*refs*/ + (10 + 5 + 3 + 2) * 10u);
  Model.MemoryCycles = 1;
  Model.CacheHitCycles = 2;
  EXPECT_EQ(memoryAccessCycles(S, Model), 300u + 20u);
}

TEST(CacheStats, StrMentionsKeyCounters) {
  CacheStats S;
  S.Reads = 7;
  S.Fills = 2;
  std::string Text = S.str();
  EXPECT_NE(Text.find("refs=7"), std::string::npos);
  EXPECT_NE(Text.find("fills=2"), std::string::npos);
}

TEST(PolicyNames, AllNamed) {
  EXPECT_STREQ(cachePolicyName(ReplacementPolicy::LRU), "LRU");
  EXPECT_STREQ(cachePolicyName(ReplacementPolicy::FIFO), "FIFO");
  EXPECT_STREQ(cachePolicyName(ReplacementPolicy::Random),
               "Random");
  EXPECT_STREQ(writePolicyName(WritePolicy::WriteBack), "write-back");
  EXPECT_STREQ(writePolicyName(WritePolicy::WriteThrough),
               "write-through");
}

TEST(Operand, EqualityCoversKinds) {
  EXPECT_EQ(Operand::reg(3), Operand::reg(3));
  EXPECT_FALSE(Operand::reg(3) == Operand::reg(4));
  EXPECT_FALSE(Operand::reg(3) == Operand::reg(3, 1));
  EXPECT_EQ(Operand::imm(-5), Operand::imm(-5));
  EXPECT_FALSE(Operand::imm(1) == Operand::reg(1));
  EXPECT_EQ(Operand::global(2, 7), Operand::global(2, 7));
  EXPECT_FALSE(Operand::global(2, 7) == Operand::global(2, 8));
  EXPECT_FALSE(Operand::global(2) == Operand::frame(2));
  EXPECT_EQ(Operand::block(1), Operand::block(1));
  EXPECT_EQ(Operand(), Operand());
}

TEST(MachineMetadata, FunctionTableConsistent) {
  DiagnosticEngine Diags;
  CompileResult R = compileProgram(
      "int helper(int v) { return v + 1; }\n"
      "void main() { print(helper(1)); }\n",
      CompileOptions(), Diags);
  ASSERT_TRUE(R.Ok);
  const MachineProgram &P = R.Program;
  ASSERT_EQ(P.Functions.size(), 2u);
  for (const MachineFunction &F : P.Functions) {
    EXPECT_LE(F.EntryIndex + F.CodeSize, P.Code.size());
    EXPECT_GT(F.CodeSize, 0u);
    // Every function body ends with a machine ret.
    EXPECT_EQ(P.Code[F.EntryIndex + F.CodeSize - 1].Op, MOpcode::Ret);
  }
  // Bodies do not overlap.
  EXPECT_LE(P.Functions[0].EntryIndex + P.Functions[0].CodeSize,
            P.Functions[1].EntryIndex);
}

TEST(CompileResult, StatsPopulated) {
  // Bubble's loops are call-free, so promotion must fire (Queen's only
  // loop recurses and is correctly skipped).
  const Workload *W = findWorkload("Bubble");
  CompileOptions Options;
  Options.IRGen.ScalarLocalsInMemory = true;
  Options.PromoteLoopScalars = true;
  Options.RunCleanup = true;
  DiagnosticEngine Diags;
  CompileResult R = compileProgram(W->Source, Options, Diags);
  ASSERT_TRUE(R.Ok);
  EXPECT_GT(R.Promotion.PromotedLocations, 0u);
  EXPECT_GT(R.RegAlloc.NumWebs, 0u);
  EXPECT_GT(R.Static.totalRefs(), 0u);
  EXPECT_GT(R.Program.Code.size(), 0u);
  EXPECT_FALSE(R.Static.str().empty());
}

TEST(MachineProgram, GlobalBaseRespectsOptions) {
  CompileOptions Options;
  Options.GlobalBase = 0x2000;
  Options.StackTop = 0x40000;
  DiagnosticEngine Diags;
  CompileResult R = compileProgram(
      "int g; void main() { g = 1; print(g); }", Options, Diags);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Program.Globals[0].Address, 0x2000u);
  EXPECT_EQ(R.Program.StackTop, 0x40000u);
  // The program still runs at the custom layout.
  Simulator S{SimConfig()};
  SimResult Run = S.run(R.Program);
  ASSERT_TRUE(Run.ok()) << Run.Error;
  EXPECT_EQ(Run.Output, (std::vector<int64_t>{1}));
}

TEST(SchemeComparison, PercentHelpersDefinedOnZero) {
  SchemeComparison C;
  EXPECT_DOUBLE_EQ(C.cacheTrafficReductionPercent(), 0.0);
  EXPECT_DOUBLE_EQ(C.busTrafficReductionPercent(), 0.0);
}

TEST(DynamicRefStats, FractionHelpers) {
  DynamicRefStats S;
  EXPECT_DOUBLE_EQ(S.unambiguousFraction(), 0.0);
  S.Unambiguous = 3;
  S.Ambiguous = 1;
  S.Spill = 1;
  EXPECT_DOUBLE_EQ(S.unambiguousFraction(), 0.8);
  EXPECT_EQ(S.total(), 5u);
}

TEST(Driver, CompileErrorSurfacesDiagnostics) {
  DiagnosticEngine Diags;
  CompileResult R =
      compileProgram("void main() { undeclared = 1; }", {}, Diags);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(Diags.hasErrors());

  SimConfig Sim;
  DiagnosticEngine D2;
  SimResult Run = compileAndRun("not a program at all", {}, Sim, D2);
  EXPECT_FALSE(Run.ok());
  EXPECT_NE(Run.Error.find("compilation failed"), std::string::npos);
}

TEST(Driver, CompareSchemesRejectsBadSource) {
  CacheConfig Cache;
  SchemeComparison C = compareSchemes("int main(", {}, Cache);
  EXPECT_FALSE(C.ok());
  EXPECT_FALSE(C.Error.empty());
}
