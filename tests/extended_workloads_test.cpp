//===- extended_workloads_test.cpp - Quick/Perm workload tests -----------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/workloads/Workloads.h"

#include "urcm/driver/Driver.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace urcm;

namespace {

SimResult runWorkload(const std::string &Name,
                      const CompileOptions &Options = {}) {
  const Workload *W = findWorkload(Name);
  EXPECT_NE(W, nullptr) << Name;
  DiagnosticEngine Diags;
  SimConfig Sim;
  SimResult R = compileAndRun(W->Source, Options, Sim, Diags);
  EXPECT_TRUE(R.ok()) << Name << ": " << R.Error;
  EXPECT_EQ(R.CoherenceViolations, 0u) << Name;
  return R;
}

/// C++ reference of the Quick workload.
std::vector<int64_t> quickReference() {
  const int N = 1000;
  std::vector<int64_t> A(N);
  int64_t Seed = 74755;
  for (int I = 0; I != N; ++I) {
    Seed = (Seed * 1309 + 13849) % 65536;
    A[I] = Seed;
  }
  std::sort(A.begin(), A.end());
  int64_t Sum = 0;
  for (int I = 0; I != N; ++I)
    Sum += A[I] * (I % 7 + 1);
  return {1, A.front(), A.back(), Sum};
}

} // namespace

TEST(ExtendedWorkloads, Registered) {
  ASSERT_EQ(extendedWorkloads().size(), 2u);
  EXPECT_NE(findWorkload("Quick"), nullptr);
  EXPECT_NE(findWorkload("Perm"), nullptr);
}

TEST(ExtendedWorkloads, QuickMatchesReference) {
  SimResult R = runWorkload("Quick");
  EXPECT_EQ(R.Output, quickReference());
}

TEST(ExtendedWorkloads, PermExactCallCount) {
  SimResult R = runWorkload("Perm");
  EXPECT_EQ(R.Output, (std::vector<int64_t>{43300, 7}));
}

TEST(ExtendedWorkloads, SchemesAgree) {
  for (const Workload &W : extendedWorkloads()) {
    CompileOptions Base;
    Base.IRGen.ScalarLocalsInMemory = true;
    CacheConfig Cache;
    Cache.NumLines = 128;
    Cache.Assoc = 2;
    SchemeComparison C = compareSchemes(W.Source, Base, Cache);
    ASSERT_TRUE(C.ok()) << W.Name << ": " << C.Error;
    // The paper-shape conclusion extends beyond the original six: the
    // unified scheme reduces data-cache traffic here too.
    EXPECT_GT(C.cacheTrafficReductionPercent(), 20.0) << W.Name;
  }
}

TEST(ExtendedWorkloads, EraModeUnambiguousShareInBand) {
  for (const Workload &W : extendedWorkloads()) {
    CompileOptions Base;
    Base.IRGen.ScalarLocalsInMemory = true;
    DiagnosticEngine Diags;
    CompileResult R = compileProgram(W.Source, Base, Diags);
    ASSERT_TRUE(R.Ok) << W.Name;
    EXPECT_GT(R.Static.unambiguousFraction(), 0.6) << W.Name;
  }
}
