//===- cfg_test.cpp - CFG, dominators and loop tests ---------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/analysis/CFG.h"
#include "urcm/analysis/Dominators.h"
#include "urcm/analysis/Loops.h"

#include "IRTestHelpers.h"

#include <gtest/gtest.h>

using namespace urcm;
using urcm::testing::FuncBuilder;

namespace {

/// Builds a diamond: entry -> (then | else) -> join.
struct Diamond {
  IRModule M;
  IRFunction *F;
  uint32_t Entry, Then, Else, Join;

  Diamond() {
    FuncBuilder B(M, "f", false, 1);
    auto *E = B.block("entry");
    auto *T = B.block("then");
    auto *EL = B.block("else");
    auto *J = B.block("join");
    B.at(E).condbr(0, T, EL);
    B.at(T).br(J);
    B.at(EL).br(J);
    B.at(J).ret();
    F = B.function();
    Entry = E->id();
    Then = T->id();
    Else = EL->id();
    Join = J->id();
  }
};

} // namespace

TEST(CFG, DiamondEdges) {
  Diamond D;
  CFGInfo CFG(*D.F);
  EXPECT_EQ(CFG.succs(D.Entry).size(), 2u);
  EXPECT_EQ(CFG.preds(D.Join).size(), 2u);
  EXPECT_EQ(CFG.preds(D.Entry).size(), 0u);
  EXPECT_EQ(CFG.succs(D.Join).size(), 0u);
}

TEST(CFG, RPOStartsAtEntryEndsAtExit) {
  Diamond D;
  CFGInfo CFG(*D.F);
  ASSERT_EQ(CFG.rpo().size(), 4u);
  EXPECT_EQ(CFG.rpo().front(), D.Entry);
  EXPECT_EQ(CFG.rpo().back(), D.Join);
  // Then/Else appear between entry and join.
  EXPECT_LT(CFG.rpoIndex(D.Entry), CFG.rpoIndex(D.Then));
  EXPECT_LT(CFG.rpoIndex(D.Then), CFG.rpoIndex(D.Join));
}

TEST(CFG, UnreachableBlockExcluded) {
  IRModule M;
  FuncBuilder B(M, "f");
  auto *Entry = B.block("entry");
  auto *Dead = B.block("dead");
  B.at(Entry).ret();
  B.at(Dead).ret();
  CFGInfo CFG(*B.function());
  EXPECT_TRUE(CFG.isReachable(Entry->id()));
  EXPECT_FALSE(CFG.isReachable(Dead->id()));
  EXPECT_EQ(CFG.rpo().size(), 1u);
}

TEST(CFG, CondBrWithIdenticalArmsHasOneSuccessor) {
  IRModule M;
  FuncBuilder B(M, "f", false, 1);
  auto *Entry = B.block("entry");
  auto *Next = B.block("next");
  B.at(Entry).condbr(0, Next, Next);
  B.at(Next).ret();
  CFGInfo CFG(*B.function());
  EXPECT_EQ(CFG.succs(Entry->id()).size(), 1u);
  EXPECT_EQ(CFG.preds(Next->id()).size(), 1u);
}

TEST(Dominators, DiamondStructure) {
  Diamond D;
  CFGInfo CFG(*D.F);
  DominatorTree DT(*D.F, CFG);
  EXPECT_TRUE(DT.dominates(D.Entry, D.Then));
  EXPECT_TRUE(DT.dominates(D.Entry, D.Join));
  EXPECT_FALSE(DT.dominates(D.Then, D.Join));
  EXPECT_FALSE(DT.dominates(D.Else, D.Join));
  EXPECT_TRUE(DT.dominates(D.Join, D.Join));
  EXPECT_EQ(DT.idom(D.Join), D.Entry);
  EXPECT_EQ(DT.idom(D.Then), D.Entry);
}

TEST(Loops, SimpleLoopDepth) {
  // entry -> header <-> body; header -> exit.
  IRModule M;
  FuncBuilder B(M, "f", false, 1);
  auto *Entry = B.block("entry");
  auto *Header = B.block("header");
  auto *Body = B.block("body");
  auto *Exit = B.block("exit");
  B.at(Entry).br(Header);
  B.at(Header).condbr(0, Body, Exit);
  B.at(Body).br(Header);
  B.at(Exit).ret();

  CFGInfo CFG(*B.function());
  DominatorTree DT(*B.function(), CFG);
  LoopInfo LI(*B.function(), CFG, DT);
  EXPECT_EQ(LI.depth(Entry->id()), 0u);
  EXPECT_EQ(LI.depth(Header->id()), 1u);
  EXPECT_EQ(LI.depth(Body->id()), 1u);
  EXPECT_EQ(LI.depth(Exit->id()), 0u);
  ASSERT_EQ(LI.loops().size(), 1u);
  EXPECT_EQ(LI.loops()[0].Header, Header->id());
  EXPECT_DOUBLE_EQ(LI.refWeight(Body->id()), 10.0);
  EXPECT_DOUBLE_EQ(LI.refWeight(Exit->id()), 1.0);
}

TEST(Loops, NestedLoopDepth) {
  // entry -> h1; h1 -> h2 | exit; h2 -> b2 | l1latch; b2 -> h2;
  // l1latch -> h1.
  IRModule M;
  FuncBuilder B(M, "f", false, 1);
  auto *Entry = B.block("entry");
  auto *H1 = B.block("h1");
  auto *H2 = B.block("h2");
  auto *B2 = B.block("b2");
  auto *Latch1 = B.block("latch1");
  auto *Exit = B.block("exit");
  B.at(Entry).br(H1);
  B.at(H1).condbr(0, H2, Exit);
  B.at(H2).condbr(0, B2, Latch1);
  B.at(B2).br(H2);
  B.at(Latch1).br(H1);
  B.at(Exit).ret();

  CFGInfo CFG(*B.function());
  DominatorTree DT(*B.function(), CFG);
  LoopInfo LI(*B.function(), CFG, DT);
  EXPECT_EQ(LI.depth(H1->id()), 1u);
  EXPECT_EQ(LI.depth(H2->id()), 2u);
  EXPECT_EQ(LI.depth(B2->id()), 2u);
  EXPECT_EQ(LI.depth(Latch1->id()), 1u);
  EXPECT_EQ(LI.loops().size(), 2u);
  EXPECT_DOUBLE_EQ(LI.refWeight(B2->id()), 100.0);
}

TEST(Loops, SelfLoop) {
  IRModule M;
  FuncBuilder B(M, "f", false, 1);
  auto *Entry = B.block("entry");
  auto *Self = B.block("self");
  auto *Exit = B.block("exit");
  B.at(Entry).br(Self);
  B.at(Self).condbr(0, Self, Exit);
  B.at(Exit).ret();

  CFGInfo CFG(*B.function());
  DominatorTree DT(*B.function(), CFG);
  LoopInfo LI(*B.function(), CFG, DT);
  EXPECT_EQ(LI.depth(Self->id()), 1u);
}
