//===- callfrequency_test.cpp - Static call-frequency estimate tests -----------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/analysis/CallFrequency.h"

#include "urcm/irgen/IRGen.h"

#include "IRTestHelpers.h"

#include <gtest/gtest.h>

using namespace urcm;

namespace {

CompiledModule lower(const std::string &Source) {
  DiagnosticEngine Diags;
  CompiledModule Module = compileToIR(Source, Diags);
  EXPECT_TRUE(static_cast<bool>(Module)) << Diags.str();
  return Module;
}

double freqOf(const IRModule &M, const std::string &Name) {
  CallFrequencyEstimate CF(M);
  return CF.frequency(M.findFunction(Name)->id());
}

} // namespace

TEST(CallFrequency, MainRunsOnce) {
  auto Module = lower("void main() { print(1); }");
  EXPECT_DOUBLE_EQ(freqOf(*Module.IR, "main"), 1.0);
}

TEST(CallFrequency, UncalledFunctionIsCold) {
  auto Module = lower("void orphan() { } void main() { print(1); }");
  EXPECT_DOUBLE_EQ(freqOf(*Module.IR, "orphan"), 0.0);
}

TEST(CallFrequency, StraightLineCalleeInheritsCallerFrequency) {
  auto Module = lower("void f() { } void main() { f(); f(); }");
  EXPECT_DOUBLE_EQ(freqOf(*Module.IR, "f"), 2.0);
}

TEST(CallFrequency, LoopMultipliesByTen) {
  auto Module = lower("void f() { }\n"
                      "void main() {\n"
                      "  int i;\n"
                      "  for (i = 0; i < 3; i = i + 1) { f(); }\n"
                      "}\n");
  EXPECT_DOUBLE_EQ(freqOf(*Module.IR, "f"), 10.0);
}

TEST(CallFrequency, NestedLoopsCompound) {
  auto Module = lower("void f() { }\n"
                      "void main() {\n"
                      "  int i;\n"
                      "  int j;\n"
                      "  for (i = 0; i < 3; i = i + 1) {\n"
                      "    for (j = 0; j < 3; j = j + 1) { f(); }\n"
                      "  }\n"
                      "}\n");
  EXPECT_DOUBLE_EQ(freqOf(*Module.IR, "f"), 100.0);
}

TEST(CallFrequency, RecursionSaturatesHot) {
  auto Module = lower("int rec(int n) {\n"
                      "  if (n <= 0) { return 0; }\n"
                      "  return rec(n - 1);\n"
                      "}\n"
                      "void main() { print(rec(5)); }\n");
  // Recursive growth over the fixed-point rounds: must be clearly hot.
  EXPECT_GT(freqOf(*Module.IR, "rec"), 100.0);
}

TEST(CallFrequency, TransitiveChain) {
  auto Module = lower("void c() { }\n"
                      "void b() { c(); }\n"
                      "void a() { int i; for (i = 0; i < 2; i = i + 1) "
                      "{ b(); } }\n"
                      "void main() { a(); }\n");
  EXPECT_DOUBLE_EQ(freqOf(*Module.IR, "a"), 1.0);
  EXPECT_DOUBLE_EQ(freqOf(*Module.IR, "b"), 10.0);
  EXPECT_DOUBLE_EQ(freqOf(*Module.IR, "c"), 10.0);
}

TEST(CallFrequency, MutualRecursionBothHotSyntheticIR) {
  // MC requires definition-before-use, so mutual recursion is built
  // directly in IR: main -> a -> b -> a.
  IRModule M;
  urcm::testing::FuncBuilder A(M, "a");
  urcm::testing::FuncBuilder B(M, "b");
  urcm::testing::FuncBuilder Main(M, "main");
  auto *AE = A.block("entry");
  A.at(AE).inst(Opcode::Call, NoReg, {Operand::func(1)}).ret();
  auto *BE = B.block("entry");
  B.at(BE).inst(Opcode::Call, NoReg, {Operand::func(0)}).ret();
  auto *ME = Main.block("entry");
  Main.at(ME).inst(Opcode::Call, NoReg, {Operand::func(0)}).ret();

  CallFrequencyEstimate CF(M);
  EXPECT_GT(CF.frequency(0), 1.0) << "a is in a recursive cycle";
  EXPECT_GT(CF.frequency(1), 1.0) << "b is in a recursive cycle";
  EXPECT_DOUBLE_EQ(CF.frequency(2), 1.0);
}
