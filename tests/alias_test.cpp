//===- alias_test.cpp - Alias analysis tests (paper section 4.1.1) -------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/analysis/AliasAnalysis.h"

#include "urcm/irgen/IRGen.h"

#include <gtest/gtest.h>

using namespace urcm;

namespace {

/// Compiles MC and returns (module, function) for inspection.
struct Lowered {
  CompiledModule Module;
  const IRFunction *F = nullptr;

  explicit Lowered(const std::string &Source,
                   const std::string &FuncName = "main") {
    DiagnosticEngine Diags;
    Module = compileToIR(Source, Diags);
    EXPECT_TRUE(static_cast<bool>(Module)) << Diags.str();
    if (Module)
      F = Module.IR->findFunction(FuncName);
  }
};

/// Returns the Nth memory access (load or store) in the function.
const Instruction *memAccess(const IRFunction &F, unsigned N) {
  unsigned Seen = 0;
  for (const auto &B : F.blocks())
    for (const Instruction &I : B->insts())
      if (I.isMemAccess()) {
        if (Seen == N)
          return &I;
        ++Seen;
      }
  return nullptr;
}

} // namespace

TEST(AliasAnalysis, PrivateGlobalScalarIsUnambiguous) {
  Lowered L("int g; void main() { g = 1; print(g); }");
  ModuleEscapeInfo ME(*L.Module.IR);
  AliasInfo AA(*L.Module.IR, *L.F, ME);
  const Instruction *StoreG = memAccess(*L.F, 0);
  ASSERT_NE(StoreG, nullptr);
  EXPECT_TRUE(AA.isUnambiguous(*StoreG));
}

TEST(AliasAnalysis, EscapedGlobalScalarIsAmbiguous) {
  Lowered L("int g;\n"
            "void f(int *p) { *p = 2; }\n"
            "void main() { f(&g); g = 1; print(g); }");
  ModuleEscapeInfo ME(*L.Module.IR);
  EXPECT_TRUE(ME.globalEscapes(0));
  AliasInfo AA(*L.Module.IR, *L.F, ME);
  // Every direct reference to g is now ambiguous: a pointer may name it.
  for (const auto &B : L.F->blocks())
    for (const Instruction &I : B->insts())
      if (I.isMemAccess() && I.addressOperand().isGlobal())
        EXPECT_FALSE(AA.isUnambiguous(I));
}

TEST(AliasAnalysis, ArrayElementIsAmbiguous) {
  Lowered L("int a[4]; void main() { a[1] = 2; print(a[1]); }");
  ModuleEscapeInfo ME(*L.Module.IR);
  AliasInfo AA(*L.Module.IR, *L.F, ME);
  const Instruction *StoreElem = memAccess(*L.F, 0);
  ASSERT_NE(StoreElem, nullptr);
  EXPECT_FALSE(AA.isUnambiguous(*StoreElem));
}

TEST(AliasAnalysis, PointerDerefIsAmbiguous) {
  Lowered L("void main() { int x; int *p; p = &x; *p = 1; print(x); }");
  ModuleEscapeInfo ME(*L.Module.IR);
  AliasInfo AA(*L.Module.IR, *L.F, ME);
  for (const auto &B : L.F->blocks())
    for (const Instruction &I : B->insts())
      if (I.isMemAccess())
        EXPECT_FALSE(AA.isUnambiguous(I));
}

TEST(AliasAnalysis, PointsToTracksAddressFlow) {
  Lowered L("int a[4];\n"
            "void main() { int *p; p = &a[2]; *p = 1; print(a[0]); }");
  ModuleEscapeInfo ME(*L.Module.IR);
  AliasInfo AA(*L.Module.IR, *L.F, ME);
  // Find the store through the pointer and check its target set names a.
  for (const auto &B : L.F->blocks())
    for (const Instruction &I : B->insts()) {
      if (!I.isStore() || !I.addressOperand().isReg())
        continue;
      AliasInfo::RefDesc D = AA.describe(I);
      bool NamesA = false;
      for (uint32_t Obj : D.Objects)
        if (Obj == AA.objectForGlobal(0))
          NamesA = true;
      EXPECT_TRUE(NamesA);
    }
}

TEST(AliasAnalysis, PairwiseKinds) {
  Lowered L("int a[8]; int g; int h;\n"
            "void main() {\n"
            "  int i = 0;\n"
            "  g = 1;          // store g (unambiguous)\n"
            "  h = 2;          // store h\n"
            "  a[1] = 3;       // store a[1]\n"
            "  a[2] = 4;       // store a[2]\n"
            "  a[i] = 5;       // store a[i]\n"
            "  print(g + h);\n"
            "}\n");
  ModuleEscapeInfo ME(*L.Module.IR);
  AliasInfo AA(*L.Module.IR, *L.F, ME);
  const Instruction *StG = memAccess(*L.F, 0);
  const Instruction *StH = memAccess(*L.F, 1);
  const Instruction *StA1 = memAccess(*L.F, 2);
  const Instruction *StA2 = memAccess(*L.F, 3);
  const Instruction *StAi = memAccess(*L.F, 4);
  ASSERT_NE(StAi, nullptr);

  // g vs g: true alias. g vs h: disjoint.
  EXPECT_EQ(AA.alias(*StG, *StG), AliasKind::True);
  EXPECT_EQ(AA.alias(*StG, *StH), AliasKind::MutuallyExclusive);
  // a[1] vs a[2]: provably distinct elements.
  EXPECT_EQ(AA.alias(*StA1, *StA2), AliasKind::MutuallyExclusive);
  // a[1] vs a[1]: same element.
  EXPECT_EQ(AA.alias(*StA1, *StA1), AliasKind::True);
  // a[i] vs a[1]: the paper's Figure-2 situation — sometimes aliases.
  EXPECT_EQ(AA.alias(*StAi, *StA1), AliasKind::Sometimes);
  // a[i] vs g: different objects.
  EXPECT_EQ(AA.alias(*StAi, *StG), AliasKind::MutuallyExclusive);
}

TEST(AliasAnalysis, AliasSetClosure) {
  // Two arrays reachable through one pointer join one alias set; a third
  // private array stays separate (paper's Uniqueness/Completeness).
  Lowered L("int a[4]; int b[4]; int c[4];\n"
            "void main() {\n"
            "  int *p;\n"
            "  int i = 0;\n"
            "  if (i) { p = &a[0]; } else { p = &b[0]; }\n"
            "  *p = 1;\n"
            "  c[0] = 2;\n"
            "  print(c[0]);\n"
            "}\n");
  ModuleEscapeInfo ME(*L.Module.IR);
  AliasInfo AA(*L.Module.IR, *L.F, ME);
  uint32_t ObjA = AA.objectForGlobal(0);
  uint32_t ObjB = AA.objectForGlobal(1);
  uint32_t ObjC = AA.objectForGlobal(2);
  EXPECT_EQ(AA.aliasSetOfObject(ObjA), AA.aliasSetOfObject(ObjB));
  EXPECT_NE(AA.aliasSetOfObject(ObjC), AA.aliasSetOfObject(ObjA));
}

TEST(AliasAnalysis, FigureTwoUnsolvableCase) {
  // The paper's Figure 2: a[i+j] = a[i] + a[j] — all three references
  // are sometimes/ambiguously aliased, never provably distinct.
  Lowered L("int a[16];\n"
            "int f(int i, int j) { a[i + j] = a[i] + a[j]; return a[0]; }\n"
            "void main() { print(f(1, 2)); }",
            "f");
  ModuleEscapeInfo ME(*L.Module.IR);
  AliasInfo AA(*L.Module.IR, *L.F, ME);
  const Instruction *LoadAi = memAccess(*L.F, 0);
  const Instruction *LoadAj = memAccess(*L.F, 1);
  const Instruction *StoreAij = memAccess(*L.F, 2);
  ASSERT_NE(StoreAij, nullptr);
  EXPECT_EQ(AA.alias(*LoadAi, *LoadAj), AliasKind::Sometimes);
  EXPECT_EQ(AA.alias(*LoadAi, *StoreAij), AliasKind::Sometimes);
  EXPECT_FALSE(AA.isUnambiguous(*StoreAij));
}

TEST(AliasAnalysis, ParameterPointerReachesEscapedOnly) {
  // Within f, the parameter may point at any escaped object, but not at
  // the private global h.
  Lowered L("int g; int h;\n"
            "void f(int *p) { *p = 1; h = 2; }\n"
            "void main() { f(&g); print(g + h); }",
            "f");
  ModuleEscapeInfo ME(*L.Module.IR);
  AliasInfo AA(*L.Module.IR, *L.F, ME);
  for (const auto &B : L.F->blocks())
    for (const Instruction &I : B->insts()) {
      if (!I.isStore())
        continue;
      if (I.addressOperand().isReg()) {
        AliasInfo::RefDesc D = AA.describe(I);
        for (uint32_t Obj : D.Objects)
          EXPECT_NE(Obj, AA.objectForGlobal(1)) << "p must not reach h";
      } else {
        EXPECT_TRUE(AA.isUnambiguous(I)) << "h store stays unambiguous";
      }
    }
}

TEST(AliasAnalysis, KindNames) {
  EXPECT_STREQ(aliasKindName(AliasKind::True), "true");
  EXPECT_STREQ(aliasKindName(AliasKind::Sometimes), "sometimes");
  EXPECT_STREQ(aliasKindName(AliasKind::MutuallyExclusive),
               "mutually-exclusive");
}
