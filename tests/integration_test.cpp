//===- integration_test.cpp - Parameterized end-to-end sweeps ------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Property-style sweeps: for every workload and a grid of cache
// geometries/policies, the unified scheme must (a) compute identical
// results, (b) keep the paranoid shadow memory clean, (c) never increase
// data-cache traffic, and (d) obey the cache conservation laws.
//
//===----------------------------------------------------------------------===//

#include "urcm/driver/Driver.h"
#include "urcm/sim/TraceSim.h"
#include "urcm/workloads/Workloads.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace urcm;

namespace {

struct SweepParam {
  const char *WorkloadName;
  uint32_t NumLines;
  uint32_t Assoc;
  ReplacementPolicy Policy;
  bool EraMode;
};

std::string paramName(const ::testing::TestParamInfo<SweepParam> &Info) {
  const SweepParam &P = Info.param;
  std::string Name = P.WorkloadName;
  Name += "_L" + std::to_string(P.NumLines);
  Name += "_A" + std::to_string(P.Assoc);
  Name += cachePolicyName(P.Policy);
  Name += P.EraMode ? "_era" : "_alloc";
  return Name;
}

class SchemeSweep : public ::testing::TestWithParam<SweepParam> {};

void checkConservation(const CacheStats &S) {
  // hits + misses == through-cache refs.
  EXPECT_EQ(S.Reads + S.Writes, S.ReadHits + S.WriteHits + S.misses());
  // Every miss allocates exactly one line.
  EXPECT_EQ(S.misses(), S.Fills);
}

} // namespace

TEST_P(SchemeSweep, UnifiedNeverLosesOnCacheTraffic) {
  const SweepParam &P = GetParam();
  const Workload *W = findWorkload(P.WorkloadName);
  ASSERT_NE(W, nullptr);

  CompileOptions Options;
  Options.IRGen.ScalarLocalsInMemory = P.EraMode;
  CacheConfig Cache;
  Cache.NumLines = P.NumLines;
  Cache.Assoc = P.Assoc;
  Cache.Policy = P.Policy;

  SchemeComparison C = compareSchemes(W->Source, Options, Cache);
  ASSERT_TRUE(C.ok()) << C.Error;

  // (a)+(b) are checked inside compareSchemes (outputs equal, coherence
  // clean). (c): the cache never handles more traffic under the unified
  // scheme.
  EXPECT_LE(C.Unified.Cache.cacheTraffic(),
            C.Conventional.Cache.cacheTraffic());
  // Same instruction stream: reference counts match.
  EXPECT_EQ(C.Unified.Refs.total(), C.Conventional.Refs.total());
  // The conventional scheme must report zero hint activity.
  EXPECT_EQ(C.Conventional.Refs.Bypassed, 0u);
  EXPECT_EQ(C.Conventional.Cache.DeadFrees, 0u);

  // (d) conservation laws for both runs.
  checkConservation(C.Conventional.Cache);
  checkConservation(C.Unified.Cache);
}

INSTANTIATE_TEST_SUITE_P(
    GeometryGrid, SchemeSweep,
    ::testing::Values(
        // The Figure-5 configuration (era compiler) across geometries.
        SweepParam{"Bubble", 128, 2, ReplacementPolicy::LRU, true},
        SweepParam{"Bubble", 32, 1, ReplacementPolicy::LRU, true},
        SweepParam{"Intmm", 128, 2, ReplacementPolicy::LRU, true},
        SweepParam{"Intmm", 64, 4, ReplacementPolicy::FIFO, true},
        SweepParam{"Queen", 128, 2, ReplacementPolicy::LRU, true},
        SweepParam{"Queen", 16, 2, ReplacementPolicy::Random, true},
        SweepParam{"Sieve", 128, 2, ReplacementPolicy::LRU, true},
        SweepParam{"Sieve", 256, 8, ReplacementPolicy::FIFO, true},
        SweepParam{"Towers", 128, 2, ReplacementPolicy::LRU, true},
        SweepParam{"Towers", 64, 2, ReplacementPolicy::Random, true},
        // Modern allocation mode.
        SweepParam{"Bubble", 128, 2, ReplacementPolicy::LRU, false},
        SweepParam{"Queen", 64, 4, ReplacementPolicy::LRU, false},
        SweepParam{"Sieve", 128, 2, ReplacementPolicy::FIFO, false},
        SweepParam{"Towers", 128, 2, ReplacementPolicy::LRU, false}),
    paramName);

namespace {

class PuzzleSweep : public ::testing::TestWithParam<SweepParam> {};

} // namespace

// Puzzle is the heaviest benchmark; sweep it separately with fewer
// configurations so the suite stays fast.
TEST_P(PuzzleSweep, UnifiedNeverLosesOnCacheTraffic) {
  const SweepParam &P = GetParam();
  const Workload *W = findWorkload(P.WorkloadName);
  ASSERT_NE(W, nullptr);
  CompileOptions Options;
  Options.IRGen.ScalarLocalsInMemory = P.EraMode;
  CacheConfig Cache;
  Cache.NumLines = P.NumLines;
  Cache.Assoc = P.Assoc;
  Cache.Policy = P.Policy;
  SchemeComparison C = compareSchemes(W->Source, Options, Cache);
  ASSERT_TRUE(C.ok()) << C.Error;
  EXPECT_LE(C.Unified.Cache.cacheTraffic(),
            C.Conventional.Cache.cacheTraffic());
}

INSTANTIATE_TEST_SUITE_P(
    PuzzleGrid, PuzzleSweep,
    ::testing::Values(
        SweepParam{"Puzzle", 128, 2, ReplacementPolicy::LRU, true},
        SweepParam{"Puzzle", 128, 2, ReplacementPolicy::LRU, false}),
    paramName);

namespace {

/// Line-size sweep parameters (conventional scheme).
class LineSizeSweep : public ::testing::TestWithParam<uint32_t> {};

} // namespace

TEST_P(LineSizeSweep, ProgramsRunAtAnyLineSize) {
  uint32_t LineWords = GetParam();
  const Workload *W = findWorkload("Sieve");
  CompileOptions Options;
  Options.IRGen.ScalarLocalsInMemory = true;
  Options.Scheme = UnifiedOptions::conventional();
  SimConfig Sim;
  Sim.Cache.NumLines = 128;
  Sim.Cache.Assoc = 2;
  Sim.Cache.LineWords = LineWords;
  DiagnosticEngine Diags;
  SimResult R = compileAndRun(W->Source, Options, Sim, Diags);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.CoherenceViolations, 0u);
  checkConservation(R.Cache);
}

INSTANTIATE_TEST_SUITE_P(LineSizes, LineSizeSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

TEST(Integration, TraceReplayConsistentWithLiveRun) {
  // Record a trace from the live run and replay it under LRU: cache stats
  // must match exactly (two independent cache implementations).
  const Workload *W = findWorkload("Queen");
  CompileOptions Options;
  Options.IRGen.ScalarLocalsInMemory = true;
  SimConfig Sim;
  Sim.Cache.NumLines = 64;
  Sim.Cache.Assoc = 2;
  Sim.RecordTrace = true;
  DiagnosticEngine Diags;
  SimResult Live = compileAndRun(W->Source, Options, Sim, Diags);
  ASSERT_TRUE(Live.ok()) << Live.Error;

  CacheStats Replayed =
      replayTrace(Live.Trace, Sim.Cache, TracePolicy::LRU);
  EXPECT_EQ(Live.Cache.Reads, Replayed.Reads);
  EXPECT_EQ(Live.Cache.ReadHits, Replayed.ReadHits);
  EXPECT_EQ(Live.Cache.WriteHits, Replayed.WriteHits);
  EXPECT_EQ(Live.Cache.Fills, Replayed.Fills);
  EXPECT_EQ(Live.Cache.WriteBacks, Replayed.WriteBacks);
  EXPECT_EQ(Live.Cache.DeadFrees, Replayed.DeadFrees);
  EXPECT_EQ(Live.Cache.BypassReads, Replayed.BypassReads);
  EXPECT_EQ(Live.Cache.BypassHitMigrations,
            Replayed.BypassHitMigrations);
}

TEST(Integration, MINNeverWorseThanLRUOnWorkloadTraces) {
  for (const char *Name : {"Queen", "Sieve"}) {
    const Workload *W = findWorkload(Name);
    CompileOptions Options;
    Options.IRGen.ScalarLocalsInMemory = true;
    Options.Scheme = UnifiedOptions::conventional();
    SimConfig Sim;
    Sim.Cache.NumLines = 64;
    Sim.Cache.Assoc = 4;
    Sim.RecordTrace = true;
    DiagnosticEngine Diags;
    SimResult Live = compileAndRun(W->Source, Options, Sim, Diags);
    ASSERT_TRUE(Live.ok()) << Live.Error;
    CacheStats MIN = replayTrace(Live.Trace, Sim.Cache, TracePolicy::MIN);
    CacheStats LRU = replayTrace(Live.Trace, Sim.Cache, TracePolicy::LRU);
    EXPECT_LE(MIN.misses(), LRU.misses()) << Name;
  }
}
