//===- verifier_test.cpp - IR verifier tests -----------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/ir/Verifier.h"

#include "IRTestHelpers.h"

#include <gtest/gtest.h>

using namespace urcm;
using urcm::testing::FuncBuilder;

namespace {

bool verifyOne(IRModule &M) {
  DiagnosticEngine Diags;
  return verifyModule(M, Diags);
}

} // namespace

TEST(Verifier, AcceptsMinimalFunction) {
  IRModule M;
  FuncBuilder B(M, "f");
  auto *Entry = B.block("entry");
  B.at(Entry).ret();
  EXPECT_TRUE(verifyOne(M));
}

TEST(Verifier, RejectsMissingTerminator) {
  IRModule M;
  FuncBuilder B(M, "f");
  auto *Entry = B.block("entry");
  Reg R = B.reg();
  B.at(Entry).mov(R, 1);
  EXPECT_FALSE(verifyOne(M));
}

TEST(Verifier, RejectsMidBlockTerminator) {
  IRModule M;
  FuncBuilder B(M, "f");
  auto *Entry = B.block("entry");
  B.at(Entry).ret().ret();
  EXPECT_FALSE(verifyOne(M));
}

TEST(Verifier, RejectsOutOfRangeRegister) {
  IRModule M;
  FuncBuilder B(M, "f");
  auto *Entry = B.block("entry");
  B.at(Entry).inst(Opcode::Mov, 5, {Operand::imm(1)}).ret();
  EXPECT_FALSE(verifyOne(M));
}

TEST(Verifier, RejectsBadBlockOperand) {
  IRModule M;
  FuncBuilder B(M, "f");
  auto *Entry = B.block("entry");
  B.at(Entry).inst(Opcode::Br, NoReg, {Operand::block(7)});
  EXPECT_FALSE(verifyOne(M));
}

TEST(Verifier, RejectsStoreWithDestination) {
  IRModule M;
  M.addGlobal(IRGlobal{"g", 1, nullptr, 0});
  FuncBuilder B(M, "f");
  auto *Entry = B.block("entry");
  Reg R = B.reg();
  B.at(Entry).mov(R, 1);
  B.inst(Opcode::Store, R, {Operand::reg(R), Operand::global(0)});
  B.ret();
  EXPECT_FALSE(verifyOne(M));
}

TEST(Verifier, RejectsLoadFromImmediate) {
  IRModule M;
  FuncBuilder B(M, "f");
  auto *Entry = B.block("entry");
  Reg R = B.reg();
  B.at(Entry).inst(Opcode::Load, R, {Operand::imm(4)}).ret();
  EXPECT_FALSE(verifyOne(M));
}

TEST(Verifier, RejectsCallArityMismatch) {
  IRModule M;
  FuncBuilder Callee(M, "g", /*ReturnsValue=*/false, /*NumParams=*/2);
  auto *CE = Callee.block("entry");
  Callee.at(CE).ret();

  FuncBuilder B(M, "f");
  auto *Entry = B.block("entry");
  B.at(Entry)
      .inst(Opcode::Call, NoReg, {Operand::func(0), Operand::imm(1)})
      .ret();
  EXPECT_FALSE(verifyOne(M));
}

TEST(Verifier, RejectsValueResultFromVoidCall) {
  IRModule M;
  FuncBuilder Callee(M, "g");
  auto *CE = Callee.block("entry");
  Callee.at(CE).ret();

  FuncBuilder B(M, "f");
  auto *Entry = B.block("entry");
  Reg R = B.reg();
  B.at(Entry).inst(Opcode::Call, R, {Operand::func(0)}).ret();
  EXPECT_FALSE(verifyOne(M));
}

TEST(Verifier, RejectsUseBeforeAssignment) {
  IRModule M;
  FuncBuilder B(M, "f", /*ReturnsValue=*/true);
  auto *Entry = B.block("entry");
  Reg R = B.reg();
  B.at(Entry).ret(R); // R never assigned.
  EXPECT_FALSE(verifyOne(M));
}

TEST(Verifier, AcceptsParamUse) {
  IRModule M;
  FuncBuilder B(M, "f", /*ReturnsValue=*/true, /*NumParams=*/1);
  auto *Entry = B.block("entry");
  B.at(Entry).ret(0); // Parameter register.
  EXPECT_TRUE(verifyOne(M));
}

TEST(Verifier, RejectsMaybeUnassignedAcrossBranch) {
  // if (p) x = 1; use x  -- x unassigned on the else path.
  IRModule M;
  FuncBuilder B(M, "f", /*ReturnsValue=*/true, /*NumParams=*/1);
  auto *Entry = B.block("entry");
  auto *Then = B.block("then");
  auto *Join = B.block("join");
  Reg X = B.reg();
  B.at(Entry).condbr(0, Then, Join);
  B.at(Then).mov(X, 1).br(Join);
  B.at(Join).ret(X);
  EXPECT_FALSE(verifyOne(M));
}

TEST(Verifier, AcceptsAssignedOnBothPaths) {
  IRModule M;
  FuncBuilder B(M, "f", /*ReturnsValue=*/true, /*NumParams=*/1);
  auto *Entry = B.block("entry");
  auto *Then = B.block("then");
  auto *Else = B.block("else");
  auto *Join = B.block("join");
  Reg X = B.reg();
  B.at(Entry).condbr(0, Then, Else);
  B.at(Then).mov(X, 1).br(Join);
  B.at(Else).mov(X, 2).br(Join);
  B.at(Join).ret(X);
  EXPECT_TRUE(verifyOne(M));
}

TEST(Verifier, AcceptsLoopCarriedValue) {
  IRModule M;
  FuncBuilder B(M, "f", /*ReturnsValue=*/true, /*NumParams=*/1);
  auto *Entry = B.block("entry");
  auto *Loop = B.block("loop");
  auto *Exit = B.block("exit");
  Reg X = B.reg();
  B.at(Entry).mov(X, 0).br(Loop);
  B.at(Loop).add(X, X, 0).condbr(0, Loop, Exit);
  B.at(Exit).ret(X);
  EXPECT_TRUE(verifyOne(M));
}
