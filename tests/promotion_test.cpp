//===- promotion_test.cpp - Scalar loop promotion tests ------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/transforms/LoopPromotion.h"

#include "urcm/driver/Driver.h"
#include "urcm/ir/Interpreter.h"
#include "urcm/ir/Verifier.h"
#include "urcm/workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace urcm;

namespace {

struct Promoted {
  CompiledModule Module;
  LoopPromotionStats Stats;

  Promoted(const std::string &Source, bool Era = false) {
    DiagnosticEngine Diags;
    IRGenOptions Options;
    Options.ScalarLocalsInMemory = Era;
    Module = compileToIR(Source, Diags, Options);
    EXPECT_TRUE(static_cast<bool>(Module)) << Diags.str();
    if (Module) {
      Stats = promoteLoopScalars(*Module.IR);
      DiagnosticEngine VerifyDiags;
      EXPECT_TRUE(verifyModule(*Module.IR, VerifyDiags))
          << VerifyDiags.str() << printIR(*Module.IR);
    }
  }
};

/// Counts Load/Store instructions inside a function.
unsigned memOps(const IRFunction &F) {
  unsigned N = 0;
  for (const auto &B : F.blocks())
    for (const Instruction &I : B->insts())
      if (I.isMemAccess())
        ++N;
  return N;
}

const char *HotGlobalLoop = R"mc(
int counter;
void main() {
  int i;
  counter = 0;
  for (i = 0; i < 100; i = i + 1) {
    counter = counter + 2;
  }
  print(counter);
}
)mc";

} // namespace

TEST(LoopPromotion, HoistsHotGlobal) {
  Promoted P(HotGlobalLoop);
  EXPECT_GE(P.Stats.PromotedLocations, 1u);
  EXPECT_GE(P.Stats.PreheadersCreated, 1u);
  EXPECT_GE(P.Stats.ExitStoresInserted, 1u);

  InterpResult R = interpretModule(*P.Module.IR);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{200}));

  // Remaining references: the init store, the preheader load, the exit
  // store-back and the print load — nothing inside the loop.
  const IRFunction *Main = P.Module.IR->findFunction("main");
  EXPECT_LE(memOps(*Main), 4u) << printIR(*P.Module.IR);
}

TEST(LoopPromotion, CallsBlockPromotion) {
  Promoted P("int counter;\n"
             "void tick() { counter = counter + 1; }\n"
             "void main() {\n"
             "  int i;\n"
             "  counter = 0;\n"
             "  for (i = 0; i < 10; i = i + 1) { tick(); }\n"
             "  print(counter);\n"
             "}\n");
  // The loop contains a call: the callee reads/writes counter, so no
  // promotion may happen in main's loop.
  EXPECT_EQ(P.Stats.PromotedLocations, 0u);
  InterpResult R = interpretModule(*P.Module.IR);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Output, (std::vector<int64_t>{10}));
}

TEST(LoopPromotion, EscapedScalarNotPromoted) {
  Promoted P("int g;\n"
             "void poke(int *p) { *p = 5; }\n"
             "void main() {\n"
             "  int i;\n"
             "  poke(&g);\n"
             "  for (i = 0; i < 4; i = i + 1) { g = g + 1; }\n"
             "  print(g);\n"
             "}\n");
  EXPECT_EQ(P.Stats.PromotedLocations, 0u);
  InterpResult R = interpretModule(*P.Module.IR);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Output, (std::vector<int64_t>{9}));
}

TEST(LoopPromotion, ArraysNotPromoted) {
  Promoted P("int a[4];\n"
             "void main() {\n"
             "  int i;\n"
             "  for (i = 0; i < 4; i = i + 1) { a[0] = a[0] + 1; }\n"
             "  print(a[0]);\n"
             "}\n");
  EXPECT_EQ(P.Stats.PromotedLocations, 0u);
}

TEST(LoopPromotion, EraModeLocalsPromoted) {
  // In era mode loop counters live in memory; promotion lifts them.
  Promoted P("void main() {\n"
             "  int i;\n"
             "  int s;\n"
             "  s = 0;\n"
             "  for (i = 0; i < 50; i = i + 1) { s = s + i; }\n"
             "  print(s);\n"
             "}\n",
             /*Era=*/true);
  EXPECT_GE(P.Stats.PromotedLocations, 2u) << "i and s should hoist";
  InterpResult R = interpretModule(*P.Module.IR);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Output, (std::vector<int64_t>{1225}));
}

TEST(LoopPromotion, NestedLoopsHoistToOuterLevel) {
  Promoted P("int acc;\n"
             "void main() {\n"
             "  int i;\n"
             "  int j;\n"
             "  acc = 0;\n"
             "  for (i = 0; i < 10; i = i + 1) {\n"
             "    for (j = 0; j < 10; j = j + 1) {\n"
             "      acc = acc + 1;\n"
             "    }\n"
             "  }\n"
             "  print(acc);\n"
             "}\n");
  EXPECT_GE(P.Stats.PromotedLocations, 2u)
      << "inner promotion then outer re-promotion";
  InterpResult R = interpretModule(*P.Module.IR);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Output, (std::vector<int64_t>{100}));
}

TEST(LoopPromotion, EarlyExitLoopsStoreBack) {
  Promoted P("int found;\n"
             "int a[16];\n"
             "void main() {\n"
             "  int i;\n"
             "  for (i = 0; i < 16; i = i + 1) { a[i] = i * 3; }\n"
             "  found = -1;\n"
             "  for (i = 0; i < 16; i = i + 1) {\n"
             "    found = found + 1;\n"
             "    if (a[i] == 21) { break; }\n"
             "  }\n"
             "  print(found);\n"
             "}\n");
  InterpResult R = interpretModule(*P.Module.IR);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{7}));
}

TEST(LoopPromotion, WorkloadsPreserveOutput) {
  for (bool Era : {false, true}) {
    for (const Workload &W : paperWorkloads()) {
      DiagnosticEngine Diags;
      IRGenOptions IGO;
      IGO.ScalarLocalsInMemory = Era;
      CompiledModule Reference = compileToIR(W.Source, Diags, IGO);
      ASSERT_TRUE(static_cast<bool>(Reference)) << W.Name;
      InterpResult Want = interpretModule(*Reference.IR);
      ASSERT_TRUE(Want.ok()) << W.Name;

      Promoted P(W.Source, Era);
      InterpResult Got = interpretModule(*P.Module.IR);
      ASSERT_TRUE(Got.ok()) << W.Name << ": " << Got.Error;
      EXPECT_EQ(Got.Output, Want.Output) << W.Name << " era=" << Era;
    }
  }
}

TEST(LoopPromotion, EndToEndThroughDriverAndMachine) {
  const Workload *W = findWorkload("Bubble");
  CompileOptions Options;
  Options.PromoteLoopScalars = true;
  Options.RunCleanup = true;
  SimConfig Sim;
  DiagnosticEngine Diags;
  SimResult R = compileAndRun(W->Source, Options, Sim, Diags);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Output.front(), 1); // Sorted.
  EXPECT_EQ(R.CoherenceViolations, 0u);
}

TEST(LoopPromotion, ReducesMemoryReferences) {
  const Workload *W = findWorkload("Intmm");
  SimConfig Sim;
  DiagnosticEngine D1, D2;
  CompileOptions Plain;
  Plain.IRGen.ScalarLocalsInMemory = true;
  CompileOptions WithPromotion = Plain;
  WithPromotion.PromoteLoopScalars = true;
  SimResult A = compileAndRun(W->Source, Plain, Sim, D1);
  SimResult B = compileAndRun(W->Source, WithPromotion, Sim, D2);
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(B.ok());
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_LT(B.Refs.total(), A.Refs.total() / 2)
      << "promotion must eliminate the majority of scalar traffic";
}
