//===- passmanager_test.cpp - Pass manager and analysis cache tests ------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Covers the pass-manager layer: lazy analysis caching, dependency-aware
// invalidation, PreservedAnalyses contracts, pipeline text parsing, and
// the equivalence of the declarative driver pipeline with explicit
// --passes= text (including fuzzed verify insertions).
//
//===----------------------------------------------------------------------===//

#include "urcm/pass/Analyses.h"
#include "urcm/pass/Passes.h"
#include "urcm/pass/Pipeline.h"

#include "urcm/driver/Driver.h"
#include "urcm/support/Telemetry.h"
#include "urcm/workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace urcm;

namespace {

CompiledModule lower(const std::string &Source) {
  DiagnosticEngine Diags;
  CompiledModule Module = compileToIR(Source, Diags, IRGenOptions());
  EXPECT_TRUE(static_cast<bool>(Module)) << Diags.str();
  return Module;
}

const std::string &towersSource() {
  static const std::string Source = findWorkload("Towers")->Source;
  return Source;
}

/// Two functions so module-level sharing is observable.
CompiledModule twoFunctionModule() {
  return lower("int inc(int x) { return x + 1; }\n"
               "void main() {\n"
               "  int i;\n"
               "  int s = 0;\n"
               "  for (i = 0; i < 10; i = i + 1) { s = s + inc(i); }\n"
               "  print(s);\n"
               "}\n");
}

/// Restores the global telemetry state on scope exit.
struct TelemetryGuard {
  explicit TelemetryGuard(bool Enable) {
    telemetry::setClassifySink(nullptr);
    telemetry::setEnabled(Enable);
    telemetry::reset();
  }
  ~TelemetryGuard() {
    telemetry::setClassifySink(nullptr);
    telemetry::setEnabled(false);
    telemetry::reset();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Analysis caching
//===----------------------------------------------------------------------===//

TEST(AnalysisManager, SecondQueryHitsCache) {
  auto Module = twoFunctionModule();
  IRFunction &F = *Module.IR->functions().front();
  AnalysisManager AM(*Module.IR);

  const CFGInfo &First = AM.get<CFGAnalysis>(F);
  const CFGInfo &Second = AM.get<CFGAnalysis>(F);
  EXPECT_EQ(&First, &Second);
  EXPECT_EQ(AM.stats().Misses, 1u);
  EXPECT_EQ(AM.stats().Hits, 1u);
}

TEST(AnalysisManager, TelemetryCountersObserveCacheBehavior) {
  TelemetryGuard Guard(true);
  auto Module = twoFunctionModule();
  IRFunction &F = *Module.IR->functions().front();
  AnalysisManager AM(*Module.IR);
  AM.get<CFGAnalysis>(F);
  AM.get<CFGAnalysis>(F);
  AM.invalidate(F, PreservedAnalyses::none());

  std::string JSON = telemetry::snapshotJSON();
  EXPECT_NE(JSON.find("\"pass.analysis.hits\": 1"), std::string::npos)
      << JSON;
  EXPECT_NE(JSON.find("\"pass.analysis.misses\": 1"), std::string::npos)
      << JSON;
  EXPECT_NE(JSON.find("\"pass.analysis.invalidations\": 1"),
            std::string::npos)
      << JSON;
}

TEST(AnalysisManager, NestedQueriesAreSharedAndCounted) {
  auto Module = twoFunctionModule();
  IRFunction &F = *Module.IR->functions().front();
  AnalysisManager AM(*Module.IR);

  // LoopInfo pulls in CFG and the dominator tree: three misses.
  AM.get<LoopAnalysis>(F);
  EXPECT_EQ(AM.stats().Misses, 3u);

  // Both prerequisites are now warm.
  AM.get<DominatorTreeAnalysis>(F);
  AM.get<CFGAnalysis>(F);
  EXPECT_EQ(AM.stats().Misses, 3u);
  // The LoopInfo computation itself performed two nested queries (CFG
  // hit once inside the domtree run).
  EXPECT_GE(AM.stats().Hits, 2u);
}

TEST(AnalysisManager, InvalidationForcesRecompute) {
  auto Module = twoFunctionModule();
  IRFunction &F = *Module.IR->functions().front();
  AnalysisManager AM(*Module.IR);

  AM.get<CFGAnalysis>(F);
  AM.invalidate(F, PreservedAnalyses::none());
  EXPECT_EQ(AM.stats().Invalidations, 1u);
  AM.get<CFGAnalysis>(F);
  EXPECT_EQ(AM.stats().Misses, 2u);
}

TEST(AnalysisManager, PreservedAnalysesSurviveInvalidation) {
  auto Module = twoFunctionModule();
  IRFunction &F = *Module.IR->functions().front();
  AnalysisManager AM(*Module.IR);

  AM.get<CFGAnalysis>(F);
  AM.get<LivenessAnalysis>(F);

  PreservedAnalyses PA;
  PA.preserve<CFGAnalysis>();
  AM.invalidate(F, PA);

  uint64_t MissesBefore = AM.stats().Misses;
  AM.get<CFGAnalysis>(F); // Survived: hit.
  EXPECT_EQ(AM.stats().Misses, MissesBefore);
  AM.get<LivenessAnalysis>(F); // Dropped: recomputed.
  EXPECT_EQ(AM.stats().Misses, MissesBefore + 1);
}

TEST(AnalysisManager, DependentDiesWithItsInput) {
  auto Module = twoFunctionModule();
  IRFunction &F = *Module.IR->functions().front();
  AnalysisManager AM(*Module.IR);

  AM.get<DominatorTreeAnalysis>(F); // Holds a reference into the CFG.

  // Nominally preserve the domtree but not the CFG: the domtree must
  // die anyway, or it would dangle.
  PreservedAnalyses PA;
  PA.preserve<DominatorTreeAnalysis>();
  AM.invalidate(F, PA);

  uint64_t MissesBefore = AM.stats().Misses;
  AM.get<DominatorTreeAnalysis>(F);
  EXPECT_EQ(AM.stats().Misses, MissesBefore + 2); // CFG + domtree.
}

TEST(AnalysisManager, ModuleAnalysisSharedAcrossFunctions) {
  auto Module = twoFunctionModule();
  ASSERT_GE(Module.IR->functions().size(), 2u);
  IRFunction &F1 = *Module.IR->functions()[0];
  IRFunction &F2 = *Module.IR->functions()[1];
  AnalysisManager AM(*Module.IR);

  AM.get<AliasAnalysisInfo>(F1); // Computes module escape + alias(F1).
  uint64_t MissesAfterFirst = AM.stats().Misses;
  EXPECT_EQ(MissesAfterFirst, 2u);

  AM.get<AliasAnalysisInfo>(F2); // Escape facts are warm.
  EXPECT_EQ(AM.stats().Misses, MissesAfterFirst + 1);
  EXPECT_GE(AM.stats().Hits, 1u);
}

TEST(AnalysisManager, MutatingOneFunctionDropsCrossFunctionAliasFacts) {
  auto Module = twoFunctionModule();
  IRFunction &F1 = *Module.IR->functions()[0];
  IRFunction &F2 = *Module.IR->functions()[1];
  AnalysisManager AM(*Module.IR);

  AM.get<AliasAnalysisInfo>(F1);
  AM.get<AliasAnalysisInfo>(F2);

  // Mutating F1 stales the module-escape facts, and with them every
  // function's alias result.
  AM.invalidate(F1, PreservedAnalyses::none());
  uint64_t MissesBefore = AM.stats().Misses;
  AM.get<AliasAnalysisInfo>(F2);
  EXPECT_EQ(AM.stats().Misses, MissesBefore + 2); // escape + alias(F2).
}

TEST(AnalysisManager, ModuleWideInvalidationRespectsPreservation) {
  auto Module = twoFunctionModule();
  IRFunction &F1 = *Module.IR->functions()[0];
  AnalysisManager AM(*Module.IR);

  AM.get<LoopAnalysis>(F1);
  PreservedAnalyses PA;
  PA.preserve<CFGAnalysis>()
      .preserve<DominatorTreeAnalysis>()
      .preserve<LoopAnalysis>();
  AM.invalidate(PA);

  uint64_t MissesBefore = AM.stats().Misses;
  AM.get<LoopAnalysis>(F1);
  EXPECT_EQ(AM.stats().Misses, MissesBefore);
}

//===----------------------------------------------------------------------===//
// Pipeline text
//===----------------------------------------------------------------------===//

TEST(Pipeline, DefaultTextMatchesDriverOptions) {
  EXPECT_EQ(defaultPipelineText(false, false), "regalloc,unified,codegen");
  EXPECT_EQ(defaultPipelineText(true, true),
            "promote,cleanup,regalloc,unified,codegen");
  EXPECT_EQ(defaultPipelineText(false, true),
            "cleanup,regalloc,unified,codegen");
}

TEST(Pipeline, ParseRoundTripsThroughStr) {
  PassManager PM;
  std::string Error;
  ASSERT_TRUE(parsePassPipeline(
      PM, "verify,promote,cleanup,copyprop,lvn,dce,dse,regalloc,unified,"
          "codegen",
      Error))
      << Error;
  EXPECT_EQ(PM.str(), "verify,promote,cleanup,copyprop,lvn,dce,dse,"
                      "regalloc,unified,codegen");
  EXPECT_EQ(PM.size(), 10u);
}

TEST(Pipeline, ParseRejectsBadText) {
  std::string Error;
  {
    PassManager PM;
    EXPECT_FALSE(parsePassPipeline(PM, "regalloc,bogus", Error));
    EXPECT_NE(Error.find("bogus"), std::string::npos);
  }
  {
    PassManager PM;
    EXPECT_FALSE(parsePassPipeline(PM, "", Error));
  }
  {
    PassManager PM;
    EXPECT_FALSE(parsePassPipeline(PM, "regalloc,,codegen", Error));
  }
}

TEST(Pipeline, DriverRejectsInvalidPipeline) {
  CompileOptions Options;
  Options.Passes = "no-such-pass";
  DiagnosticEngine Diags;
  CompileResult R = compileProgram(towersSource(), Options, Diags);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(Diags.str().find("invalid pass pipeline"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Driver equivalence
//===----------------------------------------------------------------------===//

namespace {

/// Compiles and simulates, returning (IR text, asm text, output).
struct PipelineArtifacts {
  std::string IR;
  std::string Asm;
  std::vector<int64_t> Output;
};

PipelineArtifacts artifactsFor(const CompileOptions &Options) {
  PipelineArtifacts A;
  DiagnosticEngine Diags;
  CompileResult R = compileProgram(towersSource(), Options, Diags);
  EXPECT_TRUE(R.Ok) << Diags.str();
  if (!R.Ok)
    return A;
  A.IR = printIR(*R.Module.IR);
  A.Asm = R.Program.str();
  Simulator S((SimConfig()));
  SimResult Run = S.run(R.Program);
  EXPECT_TRUE(Run.ok()) << Run.Error;
  A.Output = Run.Output;
  return A;
}

} // namespace

TEST(PassPipeline, ExplicitTextMatchesDefaultOptions) {
  CompileOptions Defaults;
  Defaults.PromoteLoopScalars = true;
  Defaults.RunCleanup = true;
  PipelineArtifacts Implicit = artifactsFor(Defaults);

  CompileOptions Explicit = Defaults;
  Explicit.Passes = "promote,cleanup,regalloc,unified,codegen";
  PipelineArtifacts Textual = artifactsFor(Explicit);

  EXPECT_EQ(Implicit.IR, Textual.IR);
  EXPECT_EQ(Implicit.Asm, Textual.Asm);
  EXPECT_EQ(Implicit.Output, Textual.Output);
}

TEST(PassPipeline, FuzzedVerifyInsertionsAreTransparent) {
  CompileOptions Defaults;
  Defaults.PromoteLoopScalars = true;
  Defaults.RunCleanup = true;
  PipelineArtifacts Reference = artifactsFor(Defaults);

  const char *Stages[] = {"promote", "cleanup", "regalloc", "unified",
                          "codegen"};
  uint64_t Rng = 0x9e3779b97f4a7c15ull; // Deterministic.
  for (int Round = 0; Round != 8; ++Round) {
    std::string Text;
    for (const char *Stage : Stages) {
      Rng = Rng * 6364136223846793005ull + 1442695040888963407ull;
      if ((Rng >> 33) & 1)
        Text += "verify,";
      Text += Stage;
      Text += ',';
    }
    Text += "verify";

    CompileOptions Permuted = Defaults;
    Permuted.Passes = Text;
    PipelineArtifacts Got = artifactsFor(Permuted);
    EXPECT_EQ(Reference.IR, Got.IR) << "pipeline: " << Text;
    EXPECT_EQ(Reference.Asm, Got.Asm) << "pipeline: " << Text;
    EXPECT_EQ(Reference.Output, Got.Output) << "pipeline: " << Text;
  }
}

TEST(PassPipeline, SplitCleanupMatchesFixpointOutput) {
  // The single-shot sub-passes applied a few times behave like the
  // fixpoint cleanup pass as far as program semantics go.
  CompileOptions Split;
  Split.Passes = "copyprop,lvn,dce,copyprop,lvn,dce,regalloc,unified,"
                 "codegen";
  PipelineArtifacts A = artifactsFor(Split);
  CompileOptions Fixpoint;
  Fixpoint.RunCleanup = true;
  PipelineArtifacts B = artifactsFor(Fixpoint);
  EXPECT_EQ(A.Output, B.Output);
}

TEST(PassPipeline, VerifyEachStaysGreenOverPaperBenchmarks) {
  for (const Workload &W : paperWorkloads()) {
    CompileOptions Options;
    Options.PromoteLoopScalars = true;
    Options.RunCleanup = true;
    Options.VerifyIR = true;
    Options.Passes = "verify,promote,verify,cleanup,verify,regalloc,"
                     "verify,unified,verify,codegen,verify";
    DiagnosticEngine Diags;
    CompileResult R = compileProgram(W.Source, Options, Diags);
    EXPECT_TRUE(R.Ok) << W.Name << ": " << Diags.str();
    if (!R.Ok)
      continue;
    Simulator S((SimConfig()));
    SimResult Run = S.run(R.Program);
    EXPECT_TRUE(Run.ok()) << W.Name << ": " << Run.Error;
    // ExpectedOutput is a known-correct prefix of the print stream.
    ASSERT_GE(Run.Output.size(), W.ExpectedOutput.size()) << W.Name;
    for (size_t I = 0; I != W.ExpectedOutput.size(); ++I)
      EXPECT_EQ(Run.Output[I], W.ExpectedOutput[I]) << W.Name;
  }
}

TEST(PassPipeline, CompileSharesAnalysesAcrossPhases) {
  TelemetryGuard Guard(true);
  CompileOptions Options;
  Options.PromoteLoopScalars = true;
  Options.RunCleanup = true;
  DiagnosticEngine Diags;
  CompileResult R = compileProgram(towersSource(), Options, Diags);
  ASSERT_TRUE(R.Ok) << Diags.str();

  // The acceptance bar for the refactor: analyses are demonstrably
  // reused across phases in a realistic compile.
  std::string JSON = telemetry::snapshotJSON();
  size_t Pos = JSON.find("\"pass.analysis.hits\": ");
  ASSERT_NE(Pos, std::string::npos) << JSON;
  long Hits = std::atol(JSON.c_str() + Pos + 22);
  EXPECT_GT(Hits, 0) << JSON;
}
