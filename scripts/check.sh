#!/usr/bin/env bash
# One-stop pre-merge gate:
#   1. tier-1 build + tests in the default (RelWithDebInfo) preset
#   2. the same suite under ASan+UBSan, once per dispatch strategy
#      (the sanitizer presets differ only in URCM_FORCE_SWITCH_DISPATCH,
#      so both the computed-goto and the switch engines get scrubbed)
#   3. opt-in (--bench): rerun the paper exhibits and diff their wall
#      times against the committed BENCH_sweep.json trajectory
#   4. opt-in (--telemetry): run an instrumented Towers sweep and
#      validate the telemetry snapshot against docs/telemetry_schema.json
#      plus the Chrome trace export's structure
#   5. opt-in (--store): persistent trace-store smoke — record a sweep
#      cold, replay it warm (byte-identical output, Simulator provably
#      not invoked), and corrupt the store file to prove the fallback
#   6. opt-in (--profile): attribution-profiler smoke — golden-compare
#      the Towers per-line mismatch report (deterministic in program +
#      geometry), validate the JSON profile against
#      docs/profile_schema.json and the metrics JSONL stream
#   7. opt-in (--policy): replacement-policy differential — the unified
#      cache model's grid (PLRU/SRRIP/bypass-predictor included) must
#      be bit-identical across sequential, sharded and warm-store
#      replay, and a policy change must warm-hit the trace store
#   8. opt-in (--fuse): superinstruction-fusion transparency — the full
#      urcm_report must be byte-identical fused vs --no-fuse, a
#      fused-recorded trace store must serve an unfused warm run
#      (byte-identical again, zero store misses), and the fused run
#      must prove it fused (sim.fuse.fused > 0)
#
# Usage: scripts/check.sh [--bench] [--telemetry] [--store] [--profile]
#                         [--policy] [--fuse] [--skip-sanitizers]
#
# Wall-time caveat: single-core CI boxes show +/-15% run-to-run noise,
# so the bench diff only *flags* regressions past a generous threshold;
# treat it as a tripwire, not a verdict. Confirm any flagged exhibit
# with an interleaved A/B against the previous commit's binaries.
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_BENCH=0
RUN_TELEMETRY=0
RUN_STORE=0
RUN_PROFILE=0
RUN_POLICY=0
RUN_FUSE=0
RUN_SAN=1
for arg in "$@"; do
  case "$arg" in
    --bench) RUN_BENCH=1 ;;
    --telemetry) RUN_TELEMETRY=1 ;;
    --store) RUN_STORE=1 ;;
    --profile) RUN_PROFILE=1 ;;
    --policy) RUN_POLICY=1 ;;
    --fuse) RUN_FUSE=1 ;;
    --skip-sanitizers) RUN_SAN=0 ;;
    *) echo "usage: scripts/check.sh [--bench] [--telemetry] [--store] [--profile] [--policy] [--fuse] [--skip-sanitizers]" >&2
       exit 2 ;;
  esac
done

echo "== tier-1: default preset =="
cmake --preset default >/dev/null
cmake --build --preset default -j"$(nproc)"
ctest --preset default -j"$(nproc)"

echo "== pass pipeline: golden text + verify-each smoke =="
# The printed pipeline is an output format (DESIGN.md §12): the driver
# must resolve the boolean options to exactly these texts.
got=$(./build/tools/urcmc --print-pipeline)
[ "$got" = "regalloc,unified,codegen" ] || {
  echo "default pipeline drifted: $got" >&2; exit 1; }
got=$(./build/tools/urcmc --O1 --print-pipeline)
[ "$got" = "promote,cleanup,regalloc,unified,codegen" ] || {
  echo "--O1 pipeline drifted: $got" >&2; exit 1; }
for w in Bubble Intmm Puzzle Queen Sieve Towers; do
  ./build/tools/urcmc --workload="$w" --O1 --verify-each >/dev/null
done

if [ "$RUN_SAN" = 1 ]; then
  for preset in asan-ubsan asan-ubsan-threaded; do
    echo "== sanitizers: $preset =="
    cmake --preset "$preset" >/dev/null
    cmake --build --preset "$preset" -j"$(nproc)"
    # Leak checking stays on (default); halt-on-error comes from
    # -fno-sanitize-recover in the preset flags.
    ctest --test-dir "$([ "$preset" = asan-ubsan ] && echo build-asan \
                                                  || echo build-asan-threaded)" \
      -j"$(nproc)" --output-on-failure
  done

  echo "== sanitizers: tsan (parallel sim suites) =="
  # TSan over the suites that exercise the thread pool, the SPSC trace
  # stream, and the sharded replay engine; the full suite under TSan is
  # disproportionately slow and the remaining suites are single-threaded.
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j"$(nproc)" --target \
    support_test tracesim_test cachemodel_test sweepengine_test \
    shardedreplay_test tracestore_test fusion_test
  # Only these binaries exist in the tsan tree, so invoke them
  # directly rather than through ctest's discovery (which would trip
  # over the unbuilt suites).
  for t in support_test tracesim_test cachemodel_test sweepengine_test \
           shardedreplay_test tracestore_test fusion_test; do
    TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
      ./build-tsan/tests/"$t" || { echo "tsan: $t failed" >&2; exit 1; }
  done
fi

if [ "$RUN_TELEMETRY" = 1 ]; then
  echo "== telemetry smoke: instrumented Towers sweep =="
  TELEMETRY_DIR=$(mktemp -d /tmp/urcm_telemetry.XXXXXX)
  ./build/tools/urcmc --workload=Towers --sweep=16,64 \
    --telemetry-json="$TELEMETRY_DIR/telemetry.json" \
    --trace-out="$TELEMETRY_DIR/trace.json" >/dev/null
  python3 scripts/validate_telemetry.py snapshot "$TELEMETRY_DIR/telemetry.json"
  python3 scripts/validate_telemetry.py trace "$TELEMETRY_DIR/trace.json"
  rm -rf "$TELEMETRY_DIR"
fi

if [ "$RUN_STORE" = 1 ]; then
  echo "== trace-store smoke: record cold, replay warm, corrupt, fall back =="
  scripts/store_smoke.sh build
fi

if [ "$RUN_PROFILE" = 1 ]; then
  echo "== attribution-profiler smoke: Towers golden + schema validation =="
  PROFILE_DIR=$(mktemp -d /tmp/urcm_profile.XXXXXX)
  # The pressured 16x2 geometry makes the bypass-vs-miss mismatch flags
  # fire (tests/golden/towers_profile_annotate.txt is committed from the
  # same invocation — the report is a pure function of program + config,
  # so any diff is an attribution or rendering change, not noise).
  ./build/tools/urcmc --workload=Towers --era --cache-lines=16 --assoc=2 \
    --profile-refs="$PROFILE_DIR/towers.json" \
    --profile-annotate="$PROFILE_DIR/towers.txt" \
    --metrics-out="$PROFILE_DIR/metrics.jsonl" >/dev/null
  diff -u tests/golden/towers_profile_annotate.txt "$PROFILE_DIR/towers.txt" \
    || { echo "Towers mismatch report drifted from golden" >&2; exit 1; }
  grep -q '!bypass-miss' "$PROFILE_DIR/towers.txt" \
    || { echo "Towers report lost its mismatch flags" >&2; exit 1; }
  python3 scripts/validate_telemetry.py profile "$PROFILE_DIR/towers.json"
  python3 scripts/validate_telemetry.py metrics "$PROFILE_DIR/metrics.jsonl"
  rm -rf "$PROFILE_DIR"
fi

if [ "$RUN_POLICY" = 1 ]; then
  echo "== policy differential: sharded + warm-store bit-identity =="
  POLICY_DIR=$(mktemp -d /tmp/urcm_policy.XXXXXX)
  SWEEP="--workload=Sieve --sweep=16,64"
  # Every policy's sweep must be deterministic and bit-identical under
  # set sharding (shard-ineligible policies route through the
  # sequential leftover unit, so the invariant holds for all of them).
  for p in lru fifo random plru srrip min bypass; do
    ./build/tools/urcmc $SWEEP --policy="$p" > "$POLICY_DIR/$p.out"
    ./build/tools/urcmc $SWEEP --policy="$p" --shards=7 \
      > "$POLICY_DIR/$p.sharded.out"
    cmp "$POLICY_DIR/$p.out" "$POLICY_DIR/$p.sharded.out" || {
      echo "policy $p: sharded sweep diverges from sequential" >&2
      exit 1; }
  done
  # One stored trace serves the whole policy grid: record under LRU,
  # then every other policy must warm-hit — a policy change must never
  # cause a store miss or a re-record.
  ./build/tools/urcmc $SWEEP --policy=lru \
    --trace-store="$POLICY_DIR/cache" > /dev/null
  [ "$(ls "$POLICY_DIR"/cache | wc -l)" = 1 ] || {
    echo "policy store: expected exactly one trace file" >&2; exit 1; }
  for p in fifo srrip bypass; do
    ./build/tools/urcmc $SWEEP --policy="$p" \
      --trace-store="$POLICY_DIR/cache" \
      --telemetry-json="$POLICY_DIR/$p.warm.json" \
      > "$POLICY_DIR/$p.warm.out"
    cmp "$POLICY_DIR/$p.out" "$POLICY_DIR/$p.warm.out" || {
      echo "policy $p: warm-store sweep diverges from live" >&2
      exit 1; }
    python3 - "$POLICY_DIR/$p.warm.json" "$p" <<'PY'
import json, sys
warm = json.load(open(sys.argv[1]))
p = sys.argv[2]
if warm["counters"].get("sim.store.misses", 0) != 0:
    sys.exit(f"policy {p}: policy change caused a store miss")
if warm["counters"].get("sim.store.hits", 0) < 1:
    sys.exit(f"policy {p}: warm run did not hit the store")
if warm["counters"].get("sim.runs", 0) != 0:
    sys.exit(f"policy {p}: warm run invoked the Simulator")
PY
  done
  [ "$(ls "$POLICY_DIR"/cache | wc -l)" = 1 ] || {
    echo "policy store: a policy change re-recorded the trace" >&2
    exit 1; }
  rm -rf "$POLICY_DIR"
  echo "policy differential OK"
fi

if [ "$RUN_FUSE" = 1 ]; then
  echo "== fusion transparency: report byte-identity + telemetry proof =="
  FUSE_DIR=$(mktemp -d /tmp/urcm_fuse.XXXXXX)
  # Cold: the full report must not change by a byte when fusion is off.
  ./build/tools/urcm_report --telemetry-json="$FUSE_DIR/fused.json" \
    > "$FUSE_DIR/fused.md"
  ./build/tools/urcm_report --no-fuse > "$FUSE_DIR/nofuse.md"
  cmp "$FUSE_DIR/fused.md" "$FUSE_DIR/nofuse.md" || {
    echo "fusion changed urcm_report output (cold)" >&2; exit 1; }
  # Warm cross-service: record the store fused, serve it to an unfused
  # run — SimConfig::Fusion is excluded from traceContentHash, so this
  # must be all warm hits and, again, byte-identical output.
  ./build/tools/urcm_report --trace-store="$FUSE_DIR/cache" \
    > "$FUSE_DIR/fused.rec.md"
  ./build/tools/urcm_report --trace-store="$FUSE_DIR/cache" --no-fuse \
    --telemetry-json="$FUSE_DIR/warm.json" > "$FUSE_DIR/nofuse.warm.md"
  cmp "$FUSE_DIR/fused.md" "$FUSE_DIR/nofuse.warm.md" || {
    echo "fused-recorded store served a different report unfused" >&2
    exit 1; }
  python3 - "$FUSE_DIR/fused.json" "$FUSE_DIR/warm.json" <<'PY'
import json, sys
fused = json.load(open(sys.argv[1]))["counters"]
warm = json.load(open(sys.argv[2]))["counters"]
if fused.get("sim.fuse.fused", 0) < 1:
    sys.exit("fused run rewrote no superinstruction heads")
if fused.get("sim.fuse.dispatches-saved", 0) < 1:
    sys.exit("fused run saved no dispatches")
if fused.get("sim.fuse.candidates", 0) < fused["sim.fuse.fused"]:
    sys.exit("candidate count below fused count")
if warm.get("sim.fuse.fused", 0) != 0:
    sys.exit("--no-fuse run still fused")
if warm.get("sim.store.misses", 0) != 0:
    sys.exit("fusion flip caused a trace-store miss")
if warm.get("sim.store.hits", 0) < 1:
    sys.exit("warm run did not hit the store")
PY
  rm -rf "$FUSE_DIR"
  echo "fusion transparency OK"
fi

if [ "$RUN_BENCH" = 1 ]; then
  echo "== bench trajectory diff =="
  TMP_JSON=$(mktemp /tmp/bench_sweep.XXXXXX.json)
  trap 'rm -f "$TMP_JSON"' EXIT
  bench/run_benches.sh build "$TMP_JSON"
  python3 - BENCH_sweep.json "$TMP_JSON" <<'PY'
import json, sys

base_path, new_path = sys.argv[1], sys.argv[2]
fresh = json.load(open(new_path))
# Provenance gate: the trajectory is only meaningful from an optimized
# build (run_benches.sh refuses others, but a hand-edited or stale JSON
# must not slip through either).
build_type = fresh.get("build_type")
if build_type not in ("Release", "RelWithDebInfo"):
    print(f"bench JSON stamped with build_type={build_type!r}; "
          "rerun from a Release/RelWithDebInfo tree")
    sys.exit(1)
try:
    base = json.load(open(base_path))["wall_time_s"]
except FileNotFoundError:
    print(f"no committed {base_path}; nothing to diff against")
    sys.exit(0)
new = fresh["wall_time_s"]

THRESHOLD = 1.25  # generous: single-core wall times carry ~15% noise
regressed = []
print(f"{'exhibit':<28}{'base':>8}{'new':>8}{'ratio':>8}")
for name in sorted(set(base) | set(new)):
    b, n = base.get(name), new.get(name)
    if b is None or n is None:
        print(f"{name:<28}{b or '-':>8}{n or '-':>8}{'new' if b is None else 'gone':>8}")
        continue
    ratio = n / b if b else float("inf")
    print(f"{name:<28}{b:>8.2f}{n:>8.2f}{ratio:>7.2f}x")
    if ratio > THRESHOLD:
        regressed.append((name, ratio))

if regressed:
    print("\npossible regressions (confirm with interleaved A/B):")
    for name, ratio in regressed:
        print(f"  {name}: {ratio:.2f}x slower than committed baseline")
    sys.exit(1)
print("\nbench trajectory OK")
PY
fi

echo "== check.sh: all gates passed =="
