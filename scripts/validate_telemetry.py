#!/usr/bin/env python3
"""Validate urcm telemetry output files.

Usage:
  scripts/validate_telemetry.py snapshot FILE   # vs docs/telemetry_schema.json
  scripts/validate_telemetry.py trace FILE      # Chrome trace-event checks
  scripts/validate_telemetry.py profile FILE    # vs docs/profile_schema.json
  scripts/validate_telemetry.py metrics FILE    # metrics JSONL (--metrics-out)

Stdlib only (no jsonschema dependency): `check` implements exactly the
JSON-Schema subset the schemas under docs/ use — type, const, enum,
minimum, required, properties, additionalProperties (bool or schema),
items.
"""

import json
import os
import sys


def check(value, schema, path="$"):
    """Returns a list of error strings (empty when valid)."""
    errors = []

    expected = schema.get("type")
    if expected is not None:
        type_map = {
            "object": dict,
            "array": list,
            "string": str,
            "boolean": bool,
            "number": (int, float),
            "integer": int,
        }
        py = type_map[expected]
        # bool is a subclass of int in Python; keep them distinct.
        ok = isinstance(value, py)
        if expected in ("integer", "number") and isinstance(value, bool):
            ok = False
        if not ok:
            return ["%s: expected %s, got %s"
                    % (path, expected, type(value).__name__)]

    if "const" in schema and value != schema["const"]:
        errors.append("%s: expected %r, got %r"
                      % (path, schema["const"], value))
    if "enum" in schema and value not in schema["enum"]:
        errors.append("%s: %r not in %r" % (path, value, schema["enum"]))
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append("%s: %r below minimum %r"
                      % (path, value, schema["minimum"]))

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append("%s: missing required key %r" % (path, key))
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, sub in value.items():
            sub_path = "%s.%s" % (path, key)
            if key in props:
                errors.extend(check(sub, props[key], sub_path))
            elif extra is False:
                errors.append("%s: unexpected key %r" % (path, key))
            elif isinstance(extra, dict):
                errors.extend(check(sub, extra, sub_path))

    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            errors.extend(check(item, schema["items"],
                                "%s[%d]" % (path, index)))

    return errors


def load_schema(name):
    schema_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               os.pardir, "docs", name)
    with open(schema_path) as handle:
        return json.load(handle)


def validate_snapshot(data):
    return check(data, load_schema("telemetry_schema.json"))


def validate_profile(data):
    errors = check(data, load_schema("profile_schema.json"))
    if errors:
        return errors
    # Cross-field invariants the schema subset cannot express.
    refs = data["refs"]
    if len(refs) != data["num_refs"]:
        errors.append("$.refs: %d entries but num_refs is %d"
                      % (len(refs), data["num_refs"]))
    for index, ref in enumerate(refs):
        if ref["ref"] != index:
            errors.append("$.refs[%d]: ref ids must be dense and ordered, "
                          "got %r" % (index, ref["ref"]))
        bypass_form = ref["form"].startswith("UmAm")
        if ref["bypass"] != bypass_form:
            errors.append("$.refs[%d]: form %r inconsistent with bypass %r"
                          % (index, ref["form"], ref["bypass"]))
        if ref["dead_evicted"] and not ref["lastref"]:
            errors.append("$.refs[%d]: dead_evicted requires lastref"
                          % index)
    return errors


def validate_metrics(path):
    """Line checks for the metrics JSONL stream (--metrics-out=FILE):
    every line is a JSON object with the sampler's keys, and t_ms is
    monotonically non-decreasing."""
    errors = []
    last_t = -1.0
    count = 0
    with open(path) as handle:
        for number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            count += 1
            try:
                sample = json.loads(line)
            except ValueError as error:
                errors.append("line %d: %s" % (number, error))
                continue
            for key in ("t_ms", "events", "events_per_s",
                        "rss_kb", "rss_hwm_kb", "counters"):
                if key not in sample:
                    errors.append("line %d: missing %r" % (number, key))
            t_ms = sample.get("t_ms")
            if isinstance(t_ms, (int, float)):
                if t_ms < last_t:
                    errors.append("line %d: t_ms went backwards" % number)
                last_t = t_ms
            if not isinstance(sample.get("counters"), dict):
                errors.append("line %d: counters must be an object" % number)
    if count == 0:
        errors.append("no samples (empty file)")
    return errors


def validate_trace(data):
    """Structural checks for Chrome trace-event JSON (the format is
    external, so this mirrors what chrome://tracing requires rather
    than a schema of ours)."""
    errors = []
    if not isinstance(data, dict) or "traceEvents" not in data:
        return ["$: expected an object with a traceEvents array"]
    events = data["traceEvents"]
    if not isinstance(events, list):
        return ["$.traceEvents: expected an array"]
    span_names = set()
    for index, event in enumerate(events):
        path = "$.traceEvents[%d]" % index
        if not isinstance(event, dict):
            errors.append("%s: expected an object" % path)
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                errors.append("%s: missing %r" % (path, key))
        phase = event.get("ph")
        if phase not in ("X", "M"):
            errors.append("%s: unexpected ph %r" % (path, phase))
        elif phase == "X":
            span_names.add(event.get("name"))
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    errors.append("%s: %r must be a number" % (path, key))
                elif event[key] < 0:
                    errors.append("%s: %r is negative" % (path, key))
    if not span_names:
        errors.append("$.traceEvents: no complete (ph=X) span events")
    return errors


def main(argv):
    kinds = ("snapshot", "trace", "profile", "metrics")
    if len(argv) != 3 or argv[1] not in kinds:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    kind, path = argv[1], argv[2]
    if kind == "metrics":
        # JSONL: validated line by line, not as one document.
        try:
            errors = validate_metrics(path)
        except OSError as error:
            print("%s: %s" % (path, error), file=sys.stderr)
            return 1
    else:
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError) as error:
            print("%s: %s" % (path, error), file=sys.stderr)
            return 1
        validator = {"snapshot": validate_snapshot,
                     "trace": validate_trace,
                     "profile": validate_profile}[kind]
        errors = validator(data)
    for error in errors:
        print("%s: %s" % (path, error), file=sys.stderr)
    if errors:
        return 1
    print("%s: valid telemetry %s" % (path, kind))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
