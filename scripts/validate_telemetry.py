#!/usr/bin/env python3
"""Validate urcm telemetry output files.

Usage:
  scripts/validate_telemetry.py snapshot FILE   # vs docs/telemetry_schema.json
  scripts/validate_telemetry.py trace FILE      # Chrome trace-event checks

Stdlib only (no jsonschema dependency): `check` implements exactly the
JSON-Schema subset docs/telemetry_schema.json uses — type, const, enum,
minimum, required, properties, additionalProperties (bool or schema),
items.
"""

import json
import os
import sys


def check(value, schema, path="$"):
    """Returns a list of error strings (empty when valid)."""
    errors = []

    expected = schema.get("type")
    if expected is not None:
        type_map = {
            "object": dict,
            "array": list,
            "string": str,
            "boolean": bool,
            "number": (int, float),
            "integer": int,
        }
        py = type_map[expected]
        # bool is a subclass of int in Python; keep them distinct.
        ok = isinstance(value, py)
        if expected in ("integer", "number") and isinstance(value, bool):
            ok = False
        if not ok:
            return ["%s: expected %s, got %s"
                    % (path, expected, type(value).__name__)]

    if "const" in schema and value != schema["const"]:
        errors.append("%s: expected %r, got %r"
                      % (path, schema["const"], value))
    if "enum" in schema and value not in schema["enum"]:
        errors.append("%s: %r not in %r" % (path, value, schema["enum"]))
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append("%s: %r below minimum %r"
                      % (path, value, schema["minimum"]))

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append("%s: missing required key %r" % (path, key))
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, sub in value.items():
            sub_path = "%s.%s" % (path, key)
            if key in props:
                errors.extend(check(sub, props[key], sub_path))
            elif extra is False:
                errors.append("%s: unexpected key %r" % (path, key))
            elif isinstance(extra, dict):
                errors.extend(check(sub, extra, sub_path))

    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            errors.extend(check(item, schema["items"],
                                "%s[%d]" % (path, index)))

    return errors


def validate_snapshot(data):
    schema_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               os.pardir, "docs", "telemetry_schema.json")
    with open(schema_path) as handle:
        schema = json.load(handle)
    return check(data, schema)


def validate_trace(data):
    """Structural checks for Chrome trace-event JSON (the format is
    external, so this mirrors what chrome://tracing requires rather
    than a schema of ours)."""
    errors = []
    if not isinstance(data, dict) or "traceEvents" not in data:
        return ["$: expected an object with a traceEvents array"]
    events = data["traceEvents"]
    if not isinstance(events, list):
        return ["$.traceEvents: expected an array"]
    span_names = set()
    for index, event in enumerate(events):
        path = "$.traceEvents[%d]" % index
        if not isinstance(event, dict):
            errors.append("%s: expected an object" % path)
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                errors.append("%s: missing %r" % (path, key))
        phase = event.get("ph")
        if phase not in ("X", "M"):
            errors.append("%s: unexpected ph %r" % (path, phase))
        elif phase == "X":
            span_names.add(event.get("name"))
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    errors.append("%s: %r must be a number" % (path, key))
                elif event[key] < 0:
                    errors.append("%s: %r is negative" % (path, key))
    if not span_names:
        errors.append("$.traceEvents: no complete (ph=X) span events")
    return errors


def main(argv):
    if len(argv) != 3 or argv[1] not in ("snapshot", "trace"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    kind, path = argv[1], argv[2]
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        print("%s: %s" % (path, error), file=sys.stderr)
        return 1
    errors = (validate_snapshot if kind == "snapshot" else validate_trace)(data)
    for error in errors:
        print("%s: %s" % (path, error), file=sys.stderr)
    if errors:
        return 1
    print("%s: valid telemetry %s" % (path, kind))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
