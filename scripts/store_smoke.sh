#!/usr/bin/env bash
# Persistent trace-store smoke (scripts/check.sh --store and CI):
#   1. record a sweep cold and check exactly one .urctrc file appears;
#   2. replay it warm: byte-identical stdout, and the telemetry must
#      prove the Simulator never ran (sim.store.hits >= 1, sim.runs == 0,
#      no sim.run phase, a sweep.store-serve phase);
#   3. corrupt one payload byte: the next run must report a CRC
#      diagnostic, fall back to live simulation with identical output,
#      and re-record a good file (verified by a final clean warm run).
#
# Usage: scripts/store_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
URCMC="$BUILD_DIR/tools/urcmc"
[ -x "$URCMC" ] || { echo "store_smoke: $URCMC not built" >&2; exit 1; }

STORE_DIR=$(mktemp -d /tmp/urcm_store.XXXXXX)
trap 'rm -rf "$STORE_DIR"' EXIT
SWEEP="--workload=Sieve --sweep=16,64,256"

# Cold: records the trace. Exactly one .urctrc file must appear.
"$URCMC" $SWEEP --trace-store="$STORE_DIR/cache" \
  --telemetry-json="$STORE_DIR/cold.json" > "$STORE_DIR/cold.out"
STORE_FILE=$(ls "$STORE_DIR"/cache/*.urctrc)
[ "$(ls "$STORE_DIR"/cache | wc -l)" = 1 ] || {
  echo "store: expected exactly one trace file" >&2; exit 1; }

# Warm: byte-identical output, Simulator provably not invoked.
"$URCMC" $SWEEP --trace-store="$STORE_DIR/cache" \
  --telemetry-json="$STORE_DIR/warm.json" > "$STORE_DIR/warm.out"
cmp "$STORE_DIR/cold.out" "$STORE_DIR/warm.out" || {
  echo "store: warm sweep output differs from cold" >&2; exit 1; }
python3 - "$STORE_DIR/cold.json" "$STORE_DIR/warm.json" <<'PY'
import json, sys
cold = json.load(open(sys.argv[1]))
warm = json.load(open(sys.argv[2]))
if cold["counters"].get("sim.store.misses", 0) < 1:
    sys.exit("cold run did not record a store miss")
if cold["counters"].get("sim.store.bytes-written", 0) < 1:
    sys.exit("cold run wrote no store bytes")
if warm["counters"].get("sim.store.hits", 0) < 1:
    sys.exit("warm run did not hit the store")
if warm["counters"].get("sim.runs", 0) != 0:
    sys.exit("warm run invoked the Simulator")
if any(p.startswith("sim.run") for p in warm.get("phases", {})):
    sys.exit("warm run has a sim.run phase; it was not served from the store")
if not any(p.startswith("sweep.store-serve") for p in warm.get("phases", {})):
    sys.exit("warm run has no sweep.store-serve phase")
print("store telemetry OK: cold recorded, warm served without the Simulator")
PY

# Corrupt one payload byte: the next run must report the file, fall
# back to live simulation with identical output, and re-record.
python3 - "$STORE_FILE" <<'PY'
import sys
path = sys.argv[1]
data = bytearray(open(path, "rb").read())
data[len(data) // 2] ^= 0x40
open(path, "wb").write(data)
PY
"$URCMC" $SWEEP --trace-store="$STORE_DIR/cache" \
  > "$STORE_DIR/corrupt.out" 2> "$STORE_DIR/corrupt.err"
cmp "$STORE_DIR/cold.out" "$STORE_DIR/corrupt.out" || {
  echo "store: corrupt-fallback output differs from cold" >&2; exit 1; }
grep -q "CRC" "$STORE_DIR/corrupt.err" || {
  echo "store: corrupt file produced no CRC diagnostic" >&2
  cat "$STORE_DIR/corrupt.err" >&2; exit 1; }

# The fallback re-recorded; a final warm run must serve cleanly again.
"$URCMC" $SWEEP --trace-store="$STORE_DIR/cache" \
  > "$STORE_DIR/healed.out" 2> "$STORE_DIR/healed.err"
cmp "$STORE_DIR/cold.out" "$STORE_DIR/healed.out" || {
  echo "store: healed warm output differs from cold" >&2; exit 1; }
if [ -s "$STORE_DIR/healed.err" ]; then
  echo "store: healed warm run still reports diagnostics:" >&2
  cat "$STORE_DIR/healed.err" >&2; exit 1
fi
echo "trace-store smoke OK"
