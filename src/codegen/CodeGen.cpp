//===- CodeGen.cpp - IR to URCM-RISC lowering ---------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/codegen/CodeGen.h"

#include "urcm/analysis/CallFrequency.h"
#include "urcm/support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace urcm;

URCM_STAT(NumMInsts, "codegen.minsts", "Machine instructions emitted");
URCM_STAT(NumBypassHints, "codegen.bypass-hints",
          "Ld/St emitted with the bypass hint bit set");
URCM_STAT(NumLastRefHints, "codegen.lastref-hints",
          "Ld/St emitted with the last-reference hint bit set");
URCM_STAT(NumCodeDeadHints, "codegen.code-dead-hints",
          "Returns carrying a dead-code-range hint");

namespace {

MOpcode aluOpcodeFor(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return MOpcode::Add;
  case Opcode::Sub:
    return MOpcode::Sub;
  case Opcode::Mul:
    return MOpcode::Mul;
  case Opcode::Div:
    return MOpcode::Div;
  case Opcode::Rem:
    return MOpcode::Rem;
  case Opcode::And:
    return MOpcode::And;
  case Opcode::Or:
    return MOpcode::Or;
  case Opcode::Xor:
    return MOpcode::Xor;
  case Opcode::Shl:
    return MOpcode::Shl;
  case Opcode::Shr:
    return MOpcode::Shr;
  case Opcode::CmpLt:
    return MOpcode::Slt;
  case Opcode::CmpLe:
    return MOpcode::Sle;
  case Opcode::CmpGt:
    return MOpcode::Sgt;
  case Opcode::CmpGe:
    return MOpcode::Sge;
  case Opcode::CmpEq:
    return MOpcode::Seq;
  case Opcode::CmpNe:
    return MOpcode::Sne;
  default:
    assert(false && "not an ALU opcode");
    return MOpcode::Add;
  }
}

bool isCommutative(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
    return true;
  default:
    return false;
  }
}

/// Swapped comparison for operand exchange (a < b == b > a).
Opcode swappedCompare(Opcode Op) {
  switch (Op) {
  case Opcode::CmpLt:
    return Opcode::CmpGt;
  case Opcode::CmpLe:
    return Opcode::CmpGe;
  case Opcode::CmpGt:
    return Opcode::CmpLt;
  case Opcode::CmpGe:
    return Opcode::CmpLe;
  default:
    return Op;
  }
}

class CodeGenerator {
public:
  CodeGenerator(const IRModule &M, const CodeGenOptions &Options)
      : M(M), Options(Options) {}

  MachineProgram run() {
    layoutGlobals();

    // Startup stub: SP = StackTop; call main; halt.
    const IRFunction *Main = M.findFunction("main");
    assert(Main && "module has no main()");
    assert(Main->numParams() == 0 && "main must take no parameters");
    Prog.EntryIndex = 0;
    emit({MOpcode::Li, mreg::SP, mreg::None, mreg::None,
          static_cast<int64_t>(Options.StackTop), true, 0, MemRefInfo()});
    uint32_t CallSite = emit(callInst(Main->id()));
    emit({MOpcode::Halt, mreg::None, mreg::None, mreg::None, 0, false, 0,
          MemRefInfo()});
    CallFixups.push_back({CallSite, Main->id()});

    // Instruction liveness (paper section 3.1, Definition 2): a
    // function that executes exactly once is dead code after its
    // return; tag the return so the I-cache can reclaim the lines.
    CallFrequencyEstimate Frequencies(M);

    for (const auto &F : M.functions()) {
      uint32_t Entry = static_cast<uint32_t>(Prog.Code.size());
      generateFunction(*F);
      if (Options.Hints.EnableDeadTag &&
          Frequencies.frequency(F->id()) == 1.0) {
        MInst &FinalRet = Prog.Code.back();
        assert(FinalRet.Op == MOpcode::Ret && "epilogue must end in ret");
        FinalRet.CodeDeadHint = true;
        FinalRet.Target = Entry;
        FinalRet.Imm = static_cast<int64_t>(Prog.Code.size()) - Entry;
      }
    }

    // Link calls to function entries.
    for (const auto &[Index, FuncId] : CallFixups)
      Prog.Code[Index].Target = FuncEntry[FuncId];

    numberStaticRefs();

    Prog.StackTop = Options.StackTop;
    Prog.GlobalBase = Options.GlobalBase;
    return std::move(Prog);
  }

private:
  //===--------------------------------------------------------------------===
  // Program plumbing
  //===--------------------------------------------------------------------===

  uint32_t emit(MInst I) {
    Prog.Code.push_back(I);
    return static_cast<uint32_t>(Prog.Code.size() - 1);
  }

  static MInst callInst(uint32_t FuncId) {
    MInst I{MOpcode::Call, mreg::None, mreg::None, mreg::None, 0, false, 0,
            MemRefInfo()};
    I.Target = FuncId; // Patched to an absolute index at link time.
    return I;
  }

  MemRefInfo spillStoreInfo() const {
    MemRefInfo Info;
    Info.Class = RefClass::Spill;
    return Info;
  }
  MemRefInfo spillReloadInfo() const {
    MemRefInfo Info;
    Info.Class = RefClass::SpillReload;
    Info.LastRef = Options.Hints.EnableDeadTag;
    return Info;
  }

  /// Assigns every Ld/St of the linked stream a dense RefId in code
  /// order and builds the RefTable. Call-target fixups patch Target
  /// only (no reordering), so emission order is final order. The
  /// numbering keys on opcodes alone — hinted and hint-stripped
  /// compilations of one source number their references identically
  /// (the sameStreamModuloHints invariant the pair-replay relies on).
  /// Programs with >= 0xFFFF memory instructions leave the tail at
  /// NoRefId; attribution lumps those into one overflow row.
  void numberStaticRefs() {
    uint32_t Next = 0;
    for (uint32_t Index = 0; Index != Prog.Code.size(); ++Index) {
      MInst &I = Prog.Code[Index];
      if (!I.isMemAccess())
        continue;
      if (Next >= MemRefInfo::NoRefId)
        break; // Saturate: the rest stay NoRefId.
      I.MemInfo.RefId = static_cast<uint16_t>(Next++);
      MachineProgram::StaticRef R;
      R.CodeIndex = Index;
      auto It = MemLoc.find(Index);
      if (It != MemLoc.end())
        R.Loc = It->second;
      Prog.RefTable.push_back(R);
    }
  }

  void layoutGlobals() {
    uint32_t Addr = static_cast<uint32_t>(Options.GlobalBase);
    for (const IRGlobal &G : M.globals()) {
      Prog.Globals.push_back({G.Name, Addr, G.SizeWords});
      Addr += G.SizeWords;
    }
  }

  uint32_t globalAddress(uint32_t GlobalId) const {
    return Prog.Globals[GlobalId].Address;
  }

  //===--------------------------------------------------------------------===
  // Per-function lowering
  //===--------------------------------------------------------------------===

  struct FrameLayout {
    uint32_t OutArgsWords = 0;
    std::vector<uint32_t> SavedRegs; // Saved general registers, in order.
    bool SavesRA = false;
    uint32_t SaveAreaOffset = 0;
    uint32_t RAOffset = 0;
    std::vector<uint32_t> SlotOffset; // Per IR frame slot.
    uint32_t FrameSize = 0;
  };

  FrameLayout computeFrame(const IRFunction &F) {
    FrameLayout L;
    std::vector<bool> Written(mreg::MaxGPR, false);
    for (const auto &B : F.blocks()) {
      for (const Instruction &I : B->insts()) {
        if (I.Dst != NoReg) {
          assert(I.Dst < mreg::MaxGPR && "unallocated register in codegen");
          Written[I.Dst] = true;
        }
        if (I.isCall()) {
          L.SavesRA = true;
          L.OutArgsWords = std::max(
              L.OutArgsWords, static_cast<uint32_t>(I.Ops.size() - 1));
        }
      }
    }
    // The prologue writes every parameter's home register.
    for (uint32_t P = 0; P != F.numParams(); ++P)
      Written[F.paramReg(P)] = true;

    for (uint32_t R = 0; R != mreg::MaxGPR; ++R)
      if (Written[R])
        L.SavedRegs.push_back(R);

    uint32_t Offset = L.OutArgsWords;
    L.SaveAreaOffset = Offset;
    Offset += static_cast<uint32_t>(L.SavedRegs.size());
    if (L.SavesRA) {
      L.RAOffset = Offset;
      ++Offset;
    }
    L.SlotOffset.resize(F.frameSlots().size());
    for (uint32_t S = 0; S != F.frameSlots().size(); ++S) {
      L.SlotOffset[S] = Offset;
      Offset += F.frameSlots()[S].SizeWords;
    }
    L.FrameSize = Offset;
    return L;
  }

  void generateFunction(const IRFunction &F) {
    Frame = computeFrame(F);
    uint32_t Entry = static_cast<uint32_t>(Prog.Code.size());
    FuncEntry[F.id()] = Entry;
    BlockFixups.clear();
    BlockStart.assign(F.numBlocks() + 1, 0); // +1: epilogue pseudo-block.
    EpilogueLabel = F.numBlocks();

    // Prologue: allocate the frame, save written registers and RA, load
    // incoming parameters into their home registers.
    if (Frame.FrameSize != 0)
      emit({MOpcode::Sub, mreg::SP, mreg::SP, mreg::None,
            static_cast<int64_t>(Frame.FrameSize), true, 0, MemRefInfo()});
    for (uint32_t J = 0; J != Frame.SavedRegs.size(); ++J)
      emit({MOpcode::St, mreg::None, mreg::SP, Frame.SavedRegs[J],
            static_cast<int64_t>(Frame.SaveAreaOffset + J), false, 0,
            spillStoreInfo()});
    if (Frame.SavesRA)
      emit({MOpcode::St, mreg::None, mreg::SP, mreg::RA,
            static_cast<int64_t>(Frame.RAOffset), false, 0,
            spillStoreInfo()});
    for (uint32_t P = 0; P != F.numParams(); ++P)
      emit({MOpcode::Ld, F.paramReg(P), mreg::SP, mreg::None,
            static_cast<int64_t>(Frame.FrameSize + P), false, 0,
            spillReloadInfo()});

    for (const auto &B : F.blocks()) {
      BlockStart[B->id()] = static_cast<uint32_t>(Prog.Code.size());
      for (const Instruction &I : B->insts())
        lowerInst(F, I);
    }

    // Epilogue: restore, free the frame, return.
    BlockStart[EpilogueLabel] = static_cast<uint32_t>(Prog.Code.size());
    if (Frame.SavesRA)
      emit({MOpcode::Ld, mreg::RA, mreg::SP, mreg::None,
            static_cast<int64_t>(Frame.RAOffset), false, 0,
            spillReloadInfo()});
    for (uint32_t J = 0; J != Frame.SavedRegs.size(); ++J)
      emit({MOpcode::Ld, Frame.SavedRegs[J], mreg::SP, mreg::None,
            static_cast<int64_t>(Frame.SaveAreaOffset + J), false, 0,
            spillReloadInfo()});
    if (Frame.FrameSize != 0)
      emit({MOpcode::Add, mreg::SP, mreg::SP, mreg::None,
            static_cast<int64_t>(Frame.FrameSize), true, 0, MemRefInfo()});
    emit({MOpcode::Ret, mreg::None, mreg::None, mreg::None, 0, false, 0,
          MemRefInfo()});

    // Resolve intra-function branch targets.
    for (const auto &[Index, Label] : BlockFixups)
      Prog.Code[Index].Target = BlockStart[Label];

    MachineFunction MF;
    MF.Name = F.name();
    MF.EntryIndex = Entry;
    MF.CodeSize = static_cast<uint32_t>(Prog.Code.size()) - Entry;
    MF.FrameSizeWords = Frame.FrameSize;
    MF.NumSavedRegs = static_cast<uint32_t>(Frame.SavedRegs.size());
    MF.IsLeaf = !Frame.SavesRA;
    Prog.Functions.push_back(std::move(MF));
  }

  //===--------------------------------------------------------------------===
  // Operand materialization
  //===--------------------------------------------------------------------===

  /// Materializes \p O as a register, using \p Scratch when a register
  /// must be synthesized. Returns the register holding the value.
  uint32_t materialize(const Operand &O, uint32_t Scratch) {
    switch (O.kind()) {
    case Operand::Kind::Reg:
      assert(O.getOffset() == 0 && "address-mode operand in value context");
      return O.getReg();
    case Operand::Kind::Imm:
      emit({MOpcode::Li, Scratch, mreg::None, mreg::None, O.getImm(), true,
            0, MemRefInfo()});
      return Scratch;
    case Operand::Kind::Global:
      emit({MOpcode::Li, Scratch, mreg::None, mreg::None,
            static_cast<int64_t>(globalAddress(O.getId())) + O.getOffset(),
            true, 0, MemRefInfo()});
      return Scratch;
    case Operand::Kind::Frame:
      emit({MOpcode::Add, Scratch, mreg::SP, mreg::None,
            static_cast<int64_t>(Frame.SlotOffset[O.getId()]) +
                O.getOffset(),
            true, 0, MemRefInfo()});
      return Scratch;
    default:
      assert(false && "unexpected operand kind");
      return Scratch;
    }
  }

  /// Computes the (base register, immediate) pair addressing \p Addr.
  std::pair<uint32_t, int64_t> addressOf(const Operand &Addr) {
    switch (Addr.kind()) {
    case Operand::Kind::Global:
      return {mreg::None,
              static_cast<int64_t>(globalAddress(Addr.getId())) +
                  Addr.getOffset()};
    case Operand::Kind::Frame:
      return {mreg::SP, static_cast<int64_t>(
                            Frame.SlotOffset[Addr.getId()]) +
                            Addr.getOffset()};
    case Operand::Kind::Reg:
      return {Addr.getReg(), Addr.getOffset()};
    default:
      assert(false && "invalid address operand");
      return {mreg::None, 0};
    }
  }

  //===--------------------------------------------------------------------===
  // Instruction lowering
  //===--------------------------------------------------------------------===

  void lowerInst(const IRFunction &F, const Instruction &I) {
    switch (I.Op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
    case Opcode::CmpEq:
    case Opcode::CmpNe:
      lowerALU(I);
      return;
    case Opcode::Neg:
    case Opcode::Not: {
      uint32_t Src = materialize(I.Ops[0], mreg::TMP0);
      emit({I.Op == Opcode::Neg ? MOpcode::Neg : MOpcode::Not, I.Dst, Src,
            mreg::None, 0, false, 0, MemRefInfo()});
      return;
    }
    case Opcode::Mov:
      lowerMov(I);
      return;
    case Opcode::Load: {
      auto [Base, Off] = addressOf(I.Ops[0]);
      MemLoc[emit({MOpcode::Ld, I.Dst, Base, mreg::None, Off, false, 0,
                   I.MemInfo})] = I.Loc;
      return;
    }
    case Opcode::Store: {
      uint32_t Value = materialize(I.Ops[0], mreg::TMP0);
      auto [Base, Off] = addressOf(I.Ops[1]);
      MemLoc[emit({MOpcode::St, mreg::None, Base, Value, Off, false, 0,
                   I.MemInfo})] = I.Loc;
      return;
    }
    case Opcode::Call:
      lowerCall(I);
      return;
    case Opcode::Print: {
      uint32_t Src = materialize(I.Ops[0], mreg::TMP0);
      emit({MOpcode::Print, mreg::None, Src, mreg::None, 0, false, 0,
            MemRefInfo()});
      return;
    }
    case Opcode::Br: {
      uint32_t Index = emit({MOpcode::Jmp, mreg::None, mreg::None,
                             mreg::None, 0, false, 0, MemRefInfo()});
      BlockFixups.push_back({Index, I.Ops[0].getId()});
      return;
    }
    case Opcode::CondBr: {
      uint32_t Index =
          emit({MOpcode::Bnz, mreg::None, I.Ops[0].getReg(), mreg::None, 0,
                false, 0, MemRefInfo()});
      BlockFixups.push_back({Index, I.Ops[1].getId()});
      uint32_t JmpIndex = emit({MOpcode::Jmp, mreg::None, mreg::None,
                                mreg::None, 0, false, 0, MemRefInfo()});
      BlockFixups.push_back({JmpIndex, I.Ops[2].getId()});
      return;
    }
    case Opcode::Ret: {
      if (F.returnsValue()) {
        assert(!I.Ops.empty() && "value return without operand");
        uint32_t Src = materialize(I.Ops[0], mreg::TMP0);
        emit({MOpcode::Mov, mreg::RV, Src, mreg::None, 0, false, 0,
              MemRefInfo()});
      }
      uint32_t Index = emit({MOpcode::Jmp, mreg::None, mreg::None,
                             mreg::None, 0, false, 0, MemRefInfo()});
      BlockFixups.push_back({Index, EpilogueLabel});
      return;
    }
    }
  }

  void lowerALU(const Instruction &I) {
    Operand A = I.Ops[0], B = I.Ops[1];
    Opcode Op = I.Op;
    // Prefer an immediate in the second slot.
    bool AIsImmLike = A.isImm();
    bool BIsRegLike = B.isReg();
    if (AIsImmLike && BIsRegLike) {
      if (isCommutative(Op)) {
        std::swap(A, B);
      } else {
        Opcode Swapped = swappedCompare(Op);
        if (Swapped != Op) {
          std::swap(A, B);
          Op = Swapped;
        }
      }
    }
    uint32_t Rs1 = materialize(A, mreg::TMP0);
    if (B.isImm()) {
      emit({aluOpcodeFor(Op), I.Dst, Rs1, mreg::None, B.getImm(), true, 0,
            MemRefInfo()});
      return;
    }
    uint32_t Rs2 = materialize(B, mreg::TMP1);
    emit({aluOpcodeFor(Op), I.Dst, Rs1, Rs2, 0, false, 0, MemRefInfo()});
  }

  void lowerMov(const Instruction &I) {
    const Operand &Src = I.Ops[0];
    switch (Src.kind()) {
    case Operand::Kind::Reg:
      assert(Src.getOffset() == 0 && "mov from address-mode operand");
      if (Src.getReg() != I.Dst)
        emit({MOpcode::Mov, I.Dst, Src.getReg(), mreg::None, 0, false, 0,
              MemRefInfo()});
      return;
    case Operand::Kind::Imm:
      emit({MOpcode::Li, I.Dst, mreg::None, mreg::None, Src.getImm(), true,
            0, MemRefInfo()});
      return;
    case Operand::Kind::Global:
      emit({MOpcode::Li, I.Dst, mreg::None, mreg::None,
            static_cast<int64_t>(globalAddress(Src.getId())) +
                Src.getOffset(),
            true, 0, MemRefInfo()});
      return;
    case Operand::Kind::Frame:
      emit({MOpcode::Add, I.Dst, mreg::SP, mreg::None,
            static_cast<int64_t>(Frame.SlotOffset[Src.getId()]) +
                Src.getOffset(),
            true, 0, MemRefInfo()});
      return;
    default:
      assert(false && "invalid mov source");
    }
  }

  void lowerCall(const Instruction &I) {
    // Store arguments into the outgoing area at [SP + i].
    for (uint32_t A = 1; A != I.Ops.size(); ++A) {
      uint32_t Value = materialize(I.Ops[A], mreg::TMP0);
      emit({MOpcode::St, mreg::None, mreg::SP, Value,
            static_cast<int64_t>(A - 1), false, 0, spillStoreInfo()});
    }
    uint32_t Index = emit(callInst(I.Ops[0].getId()));
    CallFixups.push_back({Index, I.Ops[0].getId()});
    if (I.Dst != NoReg)
      emit({MOpcode::Mov, I.Dst, mreg::RV, mreg::None, 0, false, 0,
            MemRefInfo()});
  }

  const IRModule &M;
  const CodeGenOptions &Options;
  MachineProgram Prog;
  FrameLayout Frame;
  std::map<uint32_t, uint32_t> FuncEntry;
  /// Source location per emitted Ld/St code index (RefTable input).
  std::map<uint32_t, SourceLoc> MemLoc;
  std::vector<std::pair<uint32_t, uint32_t>> CallFixups;
  std::vector<std::pair<uint32_t, uint32_t>> BlockFixups;
  std::vector<uint32_t> BlockStart;
  uint32_t EpilogueLabel = 0;
};

} // namespace

MachineProgram urcm::generateMachineCode(const IRModule &M,
                                         const CodeGenOptions &Options) {
  // The pass manager provides the "pass.codegen" span.
  CodeGenerator Gen(M, Options);
  MachineProgram Prog = Gen.run();
  if (telemetry::enabled()) {
    uint64_t Bypass = 0, LastRef = 0, CodeDead = 0;
    for (const MInst &I : Prog.Code) {
      if (I.isMemAccess()) {
        Bypass += I.MemInfo.Bypass;
        LastRef += I.MemInfo.LastRef;
      }
      CodeDead += I.CodeDeadHint;
    }
    NumMInsts.add(Prog.Code.size());
    NumBypassHints.add(Bypass);
    NumLastRefHints.add(LastRef);
    NumCodeDeadHints.add(CodeDead);
  }
  return Prog;
}
