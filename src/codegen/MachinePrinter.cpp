//===- MachinePrinter.cpp - URCM-RISC assembly printer ------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/codegen/MachineIR.h"
#include "urcm/support/StringUtils.h"

using namespace urcm;

std::vector<uint32_t>
urcm::computeRunLengths(const std::vector<MInst> &Code) {
  std::vector<uint32_t> RunLen(Code.size());
  uint32_t Run = 0;
  for (size_t I = Code.size(); I-- > 0;) {
    Run = Code[I].isTerminator() ? 1 : Run + 1;
    RunLen[I] = Run;
  }
  return RunLen;
}

const char *urcm::mopcodeName(MOpcode Op) {
  switch (Op) {
  case MOpcode::Add:
    return "add";
  case MOpcode::Sub:
    return "sub";
  case MOpcode::Mul:
    return "mul";
  case MOpcode::Div:
    return "div";
  case MOpcode::Rem:
    return "rem";
  case MOpcode::And:
    return "and";
  case MOpcode::Or:
    return "or";
  case MOpcode::Xor:
    return "xor";
  case MOpcode::Shl:
    return "shl";
  case MOpcode::Shr:
    return "shr";
  case MOpcode::Slt:
    return "slt";
  case MOpcode::Sle:
    return "sle";
  case MOpcode::Sgt:
    return "sgt";
  case MOpcode::Sge:
    return "sge";
  case MOpcode::Seq:
    return "seq";
  case MOpcode::Sne:
    return "sne";
  case MOpcode::Neg:
    return "neg";
  case MOpcode::Not:
    return "not";
  case MOpcode::Mov:
    return "mov";
  case MOpcode::Li:
    return "li";
  case MOpcode::Ld:
    return "ld";
  case MOpcode::St:
    return "st";
  case MOpcode::Jmp:
    return "jmp";
  case MOpcode::Bnz:
    return "bnz";
  case MOpcode::Call:
    return "call";
  case MOpcode::Ret:
    return "ret";
  case MOpcode::Print:
    return "print";
  case MOpcode::Halt:
    return "halt";
  }
  return "?";
}

static std::string regName(uint32_t R) {
  switch (R) {
  case mreg::SP:
    return "sp";
  case mreg::RA:
    return "ra";
  case mreg::RV:
    return "rv";
  case mreg::TMP0:
    return "t0";
  case mreg::TMP1:
    return "t1";
  case mreg::None:
    return "<none>";
  default:
    return formatString("x%u", R);
  }
}

static std::string hintSuffix(const MemRefInfo &Info) {
  std::string Out;
  switch (Info.Class) {
  case RefClass::Unknown:
    break;
  case RefClass::Ambiguous:
    Out += " ;am";
    break;
  case RefClass::Unambiguous:
    Out += " ;um";
    break;
  case RefClass::Spill:
    Out += " ;spill";
    break;
  case RefClass::SpillReload:
    Out += " ;reload";
    break;
  }
  if (Info.Bypass)
    Out += ",bypass";
  if (Info.LastRef)
    Out += ",lastref";
  return Out;
}

static std::string printMInst(const MInst &I) {
  std::string Out = mopcodeName(I.Op);
  switch (I.Op) {
  case MOpcode::Add:
  case MOpcode::Sub:
  case MOpcode::Mul:
  case MOpcode::Div:
  case MOpcode::Rem:
  case MOpcode::And:
  case MOpcode::Or:
  case MOpcode::Xor:
  case MOpcode::Shl:
  case MOpcode::Shr:
  case MOpcode::Slt:
  case MOpcode::Sle:
  case MOpcode::Sgt:
  case MOpcode::Sge:
  case MOpcode::Seq:
  case MOpcode::Sne:
    Out += " " + regName(I.Rd) + ", " + regName(I.Rs1) + ", ";
    Out += I.UseImm ? formatString("%lld", static_cast<long long>(I.Imm))
                    : regName(I.Rs2);
    break;
  case MOpcode::Neg:
  case MOpcode::Not:
  case MOpcode::Mov:
    Out += " " + regName(I.Rd) + ", " + regName(I.Rs1);
    break;
  case MOpcode::Li:
    Out += " " + regName(I.Rd) +
           formatString(", %lld", static_cast<long long>(I.Imm));
    break;
  case MOpcode::Ld:
    Out += " " + regName(I.Rd) + ", [" +
           (I.Rs1 == mreg::None ? "" : regName(I.Rs1) + "+") +
           formatString("%lld]", static_cast<long long>(I.Imm));
    Out += hintSuffix(I.MemInfo);
    break;
  case MOpcode::St:
    Out += " " + regName(I.Rs2) + ", [" +
           (I.Rs1 == mreg::None ? "" : regName(I.Rs1) + "+") +
           formatString("%lld]", static_cast<long long>(I.Imm));
    Out += hintSuffix(I.MemInfo);
    break;
  case MOpcode::Jmp:
    Out += formatString(" %u", I.Target);
    break;
  case MOpcode::Bnz:
    Out += " " + regName(I.Rs1) + formatString(", %u", I.Target);
    break;
  case MOpcode::Call:
    Out += formatString(" %u", I.Target);
    break;
  case MOpcode::Ret:
  case MOpcode::Halt:
    break;
  case MOpcode::Print:
    Out += " " + regName(I.Rs1);
    break;
  }
  return Out;
}

const MachineFunction *MachineProgram::functionAt(uint32_t Index) const {
  for (const MachineFunction &F : Functions)
    if (Index >= F.EntryIndex && Index < F.EntryIndex + F.CodeSize)
      return &F;
  return nullptr;
}

std::string MachineProgram::str() const {
  std::string Out;
  for (const auto &G : Globals)
    Out += formatString("; global %s @ %u (%u words)\n", G.Name.c_str(),
                        G.Address, G.SizeWords);
  for (uint32_t Index = 0; Index != Code.size(); ++Index) {
    for (const MachineFunction &F : Functions)
      if (F.EntryIndex == Index)
        Out += formatString("%s:  ; frame=%u saved=%u\n", F.Name.c_str(),
                            F.FrameSizeWords, F.NumSavedRegs);
    Out += formatString("%5u:  ", Index);
    Out += printMInst(Code[Index]);
    Out += '\n';
  }
  return Out;
}

bool urcm::sameStreamModuloHints(const MachineProgram &A,
                                 const MachineProgram &B) {
  if (A.Code.size() != B.Code.size() || A.EntryIndex != B.EntryIndex)
    return false;
  for (size_t I = 0; I != A.Code.size(); ++I) {
    MInst X = A.Code[I];
    MInst Y = B.Code[I];
    if (X.Op == MOpcode::Ret && (X.CodeDeadHint || Y.CodeDeadHint)) {
      X.CodeDeadHint = Y.CodeDeadHint = false;
      X.Imm = Y.Imm = 0;
      X.Target = Y.Target = 0;
    }
    if (X.Op != Y.Op || X.Rd != Y.Rd || X.Rs1 != Y.Rs1 ||
        X.Rs2 != Y.Rs2 || X.Imm != Y.Imm || X.UseImm != Y.UseImm ||
        X.Target != Y.Target || X.CodeDeadHint != Y.CodeDeadHint ||
        X.MemInfo.Class != Y.MemInfo.Class ||
        X.MemInfo.AliasSetId != Y.MemInfo.AliasSetId)
      return false;
  }
  return true;
}
