//===- Simulator.cpp - URCM-RISC simulator ------------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/Simulator.h"

#include "urcm/support/StringUtils.h"

#include <array>
#include <memory>

using namespace urcm;

SimResult Simulator::run(const MachineProgram &Prog) {
  SimResult Result;
  if (Config.RecordTrace && Config.TraceSizeHint)
    Result.Trace.reserve(Config.TraceSizeHint);
  MainMemory Mem(Prog.StackTop + 64);
  DataCache Cache(Config.Cache, Mem);

  // Optional instruction cache: tag-only simulation over code indexes.
  std::unique_ptr<MainMemory> IMem;
  std::unique_ptr<DataCache> ICache;
  if (Config.ModelICache) {
    IMem = std::make_unique<MainMemory>(Prog.Code.size() + 64);
    ICache = std::make_unique<DataCache>(Config.ICache, *IMem);
  }
  const MemRefInfo PlainFetch;

  std::array<int64_t, mreg::NumRegs> R{};
  uint64_t PC = Prog.EntryIndex;
  int LastBypassBit = -1;

  auto Fail = [&](std::string Message) {
    Result.Error = std::move(Message);
  };

  auto CountRef = [&](const MemRefInfo &Info, bool IsWrite,
                      uint64_t Addr) {
    switch (Info.Class) {
    case RefClass::Unambiguous:
      ++Result.Refs.Unambiguous;
      break;
    case RefClass::Ambiguous:
      ++Result.Refs.Ambiguous;
      break;
    case RefClass::Spill:
    case RefClass::SpillReload:
      ++Result.Refs.Spill;
      break;
    case RefClass::Unknown:
      ++Result.Refs.Unknown;
      break;
    }
    if (Info.Bypass)
      ++Result.Refs.Bypassed;
    if (Info.LastRef)
      ++Result.Refs.LastRefTagged;
    int Bit = Info.Bypass ? 1 : 0;
    if (LastBypassBit >= 0 && Bit != LastBypassBit)
      ++Result.BypassTransitions;
    LastBypassBit = Bit;
    if (Config.RecordTrace)
      Result.Trace.push_back(TraceEvent{static_cast<uint32_t>(Addr),
                                        IsWrite, TraceEvent::Hints(Info)});
  };

  while (Result.Steps < Config.MaxSteps) {
    if (PC >= Prog.Code.size()) {
      Fail(formatString("PC %llu outside program",
                        static_cast<unsigned long long>(PC)));
      break;
    }
    const MInst &I = Prog.Code[PC];
    ++Result.Steps;
    if (ICache) {
      ++Result.InstructionFetches;
      ICache->read(PC, PlainFetch);
    }
    uint64_t NextPC = PC + 1;

    auto Src2 = [&]() { return I.UseImm ? I.Imm : R[I.Rs2]; };

    switch (I.Op) {
    case MOpcode::Add:
      R[I.Rd] = R[I.Rs1] + Src2();
      break;
    case MOpcode::Sub:
      R[I.Rd] = R[I.Rs1] - Src2();
      break;
    case MOpcode::Mul:
      R[I.Rd] = R[I.Rs1] * Src2();
      break;
    case MOpcode::Div: {
      int64_t D = Src2();
      if (D == 0) {
        Fail("division by zero");
        break;
      }
      R[I.Rd] = R[I.Rs1] / D;
      break;
    }
    case MOpcode::Rem: {
      int64_t D = Src2();
      if (D == 0) {
        Fail("remainder by zero");
        break;
      }
      R[I.Rd] = R[I.Rs1] % D;
      break;
    }
    case MOpcode::And:
      R[I.Rd] = R[I.Rs1] & Src2();
      break;
    case MOpcode::Or:
      R[I.Rd] = R[I.Rs1] | Src2();
      break;
    case MOpcode::Xor:
      R[I.Rd] = R[I.Rs1] ^ Src2();
      break;
    case MOpcode::Shl:
      R[I.Rd] = R[I.Rs1] << (Src2() & 63);
      break;
    case MOpcode::Shr:
      R[I.Rd] = R[I.Rs1] >> (Src2() & 63);
      break;
    case MOpcode::Slt:
      R[I.Rd] = R[I.Rs1] < Src2();
      break;
    case MOpcode::Sle:
      R[I.Rd] = R[I.Rs1] <= Src2();
      break;
    case MOpcode::Sgt:
      R[I.Rd] = R[I.Rs1] > Src2();
      break;
    case MOpcode::Sge:
      R[I.Rd] = R[I.Rs1] >= Src2();
      break;
    case MOpcode::Seq:
      R[I.Rd] = R[I.Rs1] == Src2();
      break;
    case MOpcode::Sne:
      R[I.Rd] = R[I.Rs1] != Src2();
      break;
    case MOpcode::Neg:
      R[I.Rd] = -R[I.Rs1];
      break;
    case MOpcode::Not:
      R[I.Rd] = ~R[I.Rs1];
      break;
    case MOpcode::Mov:
      R[I.Rd] = R[I.Rs1];
      break;
    case MOpcode::Li:
      R[I.Rd] = I.Imm;
      break;
    case MOpcode::Ld: {
      int64_t Base = I.Rs1 == mreg::None ? 0 : R[I.Rs1];
      int64_t EA = Base + I.Imm;
      if (EA < 0 || static_cast<uint64_t>(EA) >= Mem.size()) {
        Fail(formatString("load address %lld out of range",
                          static_cast<long long>(EA)));
        break;
      }
      uint64_t Addr = static_cast<uint64_t>(EA);
      CountRef(I.MemInfo, /*IsWrite=*/false, Addr);
      int64_t Value = Cache.read(Addr, I.MemInfo);
      if (Config.Paranoid && Value != Mem.shadowRead(Addr))
        ++Result.CoherenceViolations;
      R[I.Rd] = Value;
      break;
    }
    case MOpcode::St: {
      int64_t Base = I.Rs1 == mreg::None ? 0 : R[I.Rs1];
      int64_t EA = Base + I.Imm;
      if (EA < 0 || static_cast<uint64_t>(EA) >= Mem.size()) {
        Fail(formatString("store address %lld out of range",
                          static_cast<long long>(EA)));
        break;
      }
      uint64_t Addr = static_cast<uint64_t>(EA);
      CountRef(I.MemInfo, /*IsWrite=*/true, Addr);
      Cache.write(Addr, R[I.Rs2], I.MemInfo);
      Mem.shadowWrite(Addr, R[I.Rs2]);
      break;
    }
    case MOpcode::Jmp:
      NextPC = I.Target;
      break;
    case MOpcode::Bnz:
      if (R[I.Rs1] != 0)
        NextPC = I.Target;
      break;
    case MOpcode::Call:
      R[mreg::RA] = static_cast<int64_t>(PC + 1);
      NextPC = I.Target;
      break;
    case MOpcode::Ret:
      NextPC = static_cast<uint64_t>(R[mreg::RA]);
      // Code-dead hint: this function never runs again; reclaim its
      // I-cache lines.
      if (I.CodeDeadHint && ICache)
        ICache->invalidateRange(I.Target,
                                I.Target + static_cast<uint64_t>(I.Imm));
      break;
    case MOpcode::Print:
      Result.Output.push_back(R[I.Rs1]);
      break;
    case MOpcode::Halt:
      Result.Halted = true;
      break;
    }

    if (Result.Halted || !Result.Error.empty())
      break;
    PC = NextPC;
  }

  if (!Result.Halted && Result.Error.empty())
    Result.Error = "step limit exceeded";

  Cache.flush();
  Result.Cache = Cache.stats();
  if (ICache)
    Result.ICache = ICache->stats();
  return Result;
}
