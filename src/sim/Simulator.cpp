//===- Simulator.cpp - URCM-RISC simulator ------------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Two execution engines produce bit-identical SimResults:
//
//  * runSwitch: the original one-MInst-at-a-time switch interpreter,
//    kept as the portable reference implementation (and as the
//    differential-testing oracle);
//  * runPredecodedImpl: the fast path. It executes the PInst form built
//    by predecode() (urcm/sim/Predecode.h) with threaded computed-goto
//    dispatch on GNU-compatible compilers and a switch loop elsewhere.
//    Step-limit and PC-bounds checks are hoisted out of the
//    per-instruction loop: a straight-line run of R instructions needs
//    one limit test and one bounds test, because only its final
//    instruction can redirect control. Mid-run entry (a Ret landing
//    between terminators) is handled by per-index run lengths, and a
//    run truncated by the step limit simply executes the remaining
//    budget and lets the outer loop report exhaustion — exactly the
//    states the legacy loop reaches, in the same order.
//
// Trace recording is shared (RefRecorder): both engines either append
// to SimResult::Trace or stream fixed-size chunks through
// SimConfig::Sink; chunking does not change the recorded event
// sequence.
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/Simulator.h"

#include "urcm/sim/Predecode.h"
#include "urcm/support/IntOps.h"
#include "urcm/support/StringUtils.h"
#include "urcm/support/Telemetry.h"

#include <array>
#include <memory>

// Threaded dispatch needs GNU computed goto; define
// URCM_FORCE_SWITCH_DISPATCH (see the sanitizer preset) to exercise the
// portable switch fallback on a compiler that would otherwise thread.
#if defined(__GNUC__) && !defined(URCM_FORCE_SWITCH_DISPATCH)
#define URCM_THREADED_DISPATCH 1
#else
#define URCM_THREADED_DISPATCH 0
#endif

using namespace urcm;

namespace {

/// Per-reference bookkeeping shared by both engines: dynamic reference
/// class counters, bypass-transition tracking, and trace recording
/// (buffered in SimResult::Trace or streamed through a TraceSink).
class RefRecorder {
public:
  RefRecorder(const SimConfig &Config, SimResult &Result)
      : Result(Result), Sink(Config.Sink),
        ClassCounter{&Result.Refs.Unknown, &Result.Refs.Ambiguous,
                     &Result.Refs.Unambiguous, &Result.Refs.Spill,
                     &Result.Refs.Spill} {
    if (Sink) {
      ChunkCap = Config.TraceChunkEvents ? Config.TraceChunkEvents : 1;
      Buf.reserve(ChunkCap);
    } else if (Config.RecordTrace) {
      Recording = true;
      if (Config.TraceSizeHint)
        Result.Trace.reserve(Config.TraceSizeHint);
    }
  }

#if defined(__GNUC__)
  // One call per simulated memory event from inside the large dispatch
  // functions, whose size pushes GCC's growth heuristic past inlining
  // this otherwise-cheap body.
  __attribute__((always_inline))
#endif
  inline void
  count(const MemRefInfo &Info, bool IsWrite, uint64_t Addr) {
    // Branchless class dispatch: one per memory event, so the (well
    // predicted but five-way) switch this replaces showed up in
    // profiles. ClassCounter is indexed by the RefClass value.
    ++*ClassCounter[static_cast<unsigned>(Info.Class)];
    Result.Refs.Bypassed += Info.Bypass;
    Result.Refs.LastRefTagged += Info.LastRef;
    const int Bit = Info.Bypass ? 1 : 0;
    Result.BypassTransitions +=
        static_cast<uint64_t>(LastBypassBit >= 0) &
        static_cast<uint64_t>(Bit != LastBypassBit);
    LastBypassBit = Bit;
    if (Sink) {
      Buf.push_back(TraceEvent{static_cast<uint32_t>(Addr), IsWrite,
                               TraceEvent::Hints(Info), Info.RefId});
      if (Buf.size() == ChunkCap) {
        Buf = Sink->chunk(std::move(Buf));
        Buf.clear();
        Buf.reserve(ChunkCap);
      }
    } else if (Recording) {
      Result.Trace.push_back(TraceEvent{static_cast<uint32_t>(Addr), IsWrite,
                                        TraceEvent::Hints(Info), Info.RefId});
    }
  }

  /// Flushes the final partial chunk. Call once, after the run.
  void finish() {
    if (Sink && !Buf.empty())
      Sink->chunk(std::move(Buf));
  }

private:
  SimResult &Result;
  TraceSink *Sink;
  // Refs counter for each RefClass value (Spill and SpillReload share).
  uint64_t *const ClassCounter[5];
  bool Recording = false;
  int LastBypassBit = -1;
  size_t ChunkCap = 0;
  std::vector<TraceEvent> Buf;
};

template <bool ICacheOn, class DCacheT>
SimResult runPredecodedImpl(const PredecodedProgram &PP,
                            const SimConfig &Config) {
  SimResult Result;
  MainMemory Mem(PP.StackTop + 64);
  DCacheT Cache(Config.Cache, Mem);
  Cache.setAttribution(Config.Attribution);

  std::unique_ptr<MainMemory> IMem;
  std::unique_ptr<DataCache> ICache;
  if constexpr (ICacheOn) {
    IMem = std::make_unique<MainMemory>(PP.codeSize() + 64);
    ICache = std::make_unique<DataCache>(Config.ICache, *IMem);
  }
  const MemRefInfo PlainFetch;
  RefRecorder Refs(Config, Result);

  // Slot preg::Zero reads as constant zero (predecoded no-base loads
  // and stores); nothing ever writes it.
  std::array<int64_t, preg::NumSlots> R{};
  const PInst *const Insts = PP.Insts.data();
  const uint32_t *const RunLens = PP.RunLen.data();
  const uint64_t CodeSize = PP.codeSize();
  const uint64_t MemSize = Mem.size();
  const bool Paranoid = Config.Paranoid;
  uint64_t PC = PP.EntryIndex;
  uint64_t Steps = 0;

  // Pointers of the run in flight (set per outer iteration).
  const PInst *I = nullptr;
  const PInst *Start = nullptr;
  const PInst *End = nullptr;

#define URCM_FETCH()                                                         \
  do {                                                                       \
    if constexpr (ICacheOn) {                                                \
      ++Result.InstructionFetches;                                           \
      ICache->read(static_cast<uint64_t>(I - Insts), PlainFetch);            \
    }                                                                        \
  } while (0)

#if URCM_THREADED_DISPATCH
  static const void *const Handlers[] = {
#define URCM_POP_LABEL(Name) &&H_##Name,
      URCM_PREDECODED_OPS(URCM_POP_LABEL)
#undef URCM_POP_LABEL
  };
#define URCM_CASE(Name) H_##Name:
#define URCM_DISPATCH() goto *Handlers[static_cast<size_t>(I->Op)]
#define URCM_NEXT()                                                          \
  do {                                                                       \
    if (++I == End)                                                          \
      goto RunFellOff;                                                       \
    URCM_FETCH();                                                            \
    URCM_DISPATCH();                                                         \
  } while (0)
#else
#define URCM_CASE(Name) case POp::Name:
#define URCM_NEXT()                                                          \
  do {                                                                       \
    if (++I == End)                                                          \
      goto RunFellOff;                                                       \
    goto Dispatch;                                                           \
  } while (0)
#endif

  for (;;) {
    // Run boundary: the step-limit and PC-bounds checks of the legacy
    // per-instruction loop, evaluated once per straight-line run (same
    // order as the legacy loop, so tie-breaks between the two error
    // conditions are identical).
    if (Steps >= Config.MaxSteps)
      break; // "step limit exceeded" is stamped after the loop.
    if (PC >= CodeSize) {
      Result.Error = formatString(
          "PC %llu outside program", static_cast<unsigned long long>(PC));
      break;
    }
    uint64_t Run = RunLens[PC];
    if (const uint64_t Remaining = Config.MaxSteps - Steps; Run > Remaining)
      Run = Remaining; // Truncated run: no terminator will be reached.
    I = Insts + PC;
    Start = I;
    End = I + Run;

#if URCM_THREADED_DISPATCH
    URCM_FETCH();
    URCM_DISPATCH();
#else
  Dispatch:
    URCM_FETCH();
    switch (I->Op) {
#endif

#define URCM_BINOP(Name, Expr)                                               \
  URCM_CASE(Name##RR) {                                                      \
    const int64_t L = R[I->B], S2 = R[I->C];                                 \
    R[I->A] = (Expr);                                                        \
  }                                                                          \
  URCM_NEXT();                                                               \
  URCM_CASE(Name##RI) {                                                      \
    const int64_t L = R[I->B], S2 = I->Imm;                                  \
    R[I->A] = (Expr);                                                        \
  }                                                                          \
  URCM_NEXT();

    URCM_BINOP(Add, wrapAdd(L, S2))
    URCM_BINOP(Sub, wrapSub(L, S2))
    URCM_BINOP(Mul, wrapMul(L, S2))
    URCM_BINOP(And, L &S2)
    URCM_BINOP(Or, L | S2)
    URCM_BINOP(Xor, L ^ S2)
    URCM_BINOP(Shl, wrapShl(L, static_cast<unsigned>(S2 & 63)))
    URCM_BINOP(Shr, L >> (S2 & 63))
    URCM_BINOP(Slt, L < S2)
    URCM_BINOP(Sle, L <= S2)
    URCM_BINOP(Sgt, L > S2)
    URCM_BINOP(Sge, L >= S2)
    URCM_BINOP(Seq, L == S2)
    URCM_BINOP(Sne, L != S2)
#undef URCM_BINOP

#define URCM_DIVOP(Name, Expr, What)                                         \
  URCM_CASE(Name##RR) {                                                      \
    const int64_t L = R[I->B], S2 = R[I->C];                                 \
    if (S2 == 0) {                                                           \
      Result.Error = What;                                                   \
      goto AbortAt;                                                          \
    }                                                                        \
    R[I->A] = (Expr);                                                        \
  }                                                                          \
  URCM_NEXT();                                                               \
  URCM_CASE(Name##RI) {                                                      \
    const int64_t L = R[I->B], S2 = I->Imm;                                  \
    if (S2 == 0) {                                                           \
      Result.Error = What;                                                   \
      goto AbortAt;                                                          \
    }                                                                        \
    R[I->A] = (Expr);                                                        \
  }                                                                          \
  URCM_NEXT();

    URCM_DIVOP(Div, wrapDiv(L, S2), "division by zero")
    URCM_DIVOP(Rem, wrapRem(L, S2), "remainder by zero")
#undef URCM_DIVOP

    URCM_CASE(Neg)
    R[I->A] = -R[I->B];
    URCM_NEXT();

    URCM_CASE(Not)
    R[I->A] = ~R[I->B];
    URCM_NEXT();

    URCM_CASE(Mov)
    R[I->A] = R[I->B];
    URCM_NEXT();

    URCM_CASE(Li)
    R[I->A] = I->Imm;
    URCM_NEXT();

    URCM_CASE(Ld) {
      const int64_t EA = wrapAdd(R[I->B], I->Imm);
      if (EA < 0 || static_cast<uint64_t>(EA) >= MemSize) {
        Result.Error = formatString("load address %lld out of range",
                                    static_cast<long long>(EA));
        goto AbortAt;
      }
      const uint64_t Addr = static_cast<uint64_t>(EA);
      Refs.count(I->Mem, /*IsWrite=*/false, Addr);
      const int64_t Value = Cache.read(Addr, I->Mem);
      if (Paranoid && Value != Mem.shadowRead(Addr))
        ++Result.CoherenceViolations;
      R[I->A] = Value;
    }
    URCM_NEXT();

    URCM_CASE(St) {
      const int64_t EA = wrapAdd(R[I->B], I->Imm);
      if (EA < 0 || static_cast<uint64_t>(EA) >= MemSize) {
        Result.Error = formatString("store address %lld out of range",
                                    static_cast<long long>(EA));
        goto AbortAt;
      }
      const uint64_t Addr = static_cast<uint64_t>(EA);
      Refs.count(I->Mem, /*IsWrite=*/true, Addr);
      Cache.write(Addr, R[I->C], I->Mem);
      Mem.shadowWrite(Addr, R[I->C]);
    }
    URCM_NEXT();

    URCM_CASE(Jmp)
    PC = I->Target;
    goto Terminated;

    URCM_CASE(Bnz)
    PC = R[I->B] != 0 ? I->Target
                      : static_cast<uint64_t>(I - Insts) + 1;
    goto Terminated;

    URCM_CASE(Call)
    R[mreg::RA] = static_cast<int64_t>(I - Insts) + 1;
    PC = I->Target;
    goto Terminated;

    URCM_CASE(Ret)
    PC = static_cast<uint64_t>(R[mreg::RA]);
    goto Terminated;

    URCM_CASE(RetDead)
    // Code-dead hint: this function never runs again; reclaim its
    // I-cache lines.
    if constexpr (ICacheOn)
      ICache->invalidateRange(I->Target,
                              I->Target + static_cast<uint64_t>(I->Imm));
    PC = static_cast<uint64_t>(R[mreg::RA]);
    goto Terminated;

    URCM_CASE(Print)
    Result.Output.push_back(R[I->B]);
    URCM_NEXT();

    URCM_CASE(Halt)
    Result.Halted = true;
    Steps += static_cast<uint64_t>(I - Start) + 1;
    goto Done;

#if !URCM_THREADED_DISPATCH
    }
#endif

  RunFellOff:
    // Executed the whole (possibly limit-truncated) run without a
    // control transfer; the next boundary check settles what happens.
    Steps += static_cast<uint64_t>(End - Start);
    PC = static_cast<uint64_t>(End - Insts);
    continue;

  Terminated:
    Steps += static_cast<uint64_t>(I - Start) + 1;
    continue;

  AbortAt:
    Steps += static_cast<uint64_t>(I - Start) + 1;
    goto Done;
  }

Done:
  if (!Result.Halted && Result.Error.empty())
    Result.Error = "step limit exceeded";
  Result.Steps = Steps;

  Refs.finish();
  Cache.flush();
  Result.Cache = Cache.stats();
  if constexpr (ICacheOn)
    Result.ICache = ICache->stats();
  return Result;

#undef URCM_CASE
#undef URCM_NEXT
#undef URCM_FETCH
#if URCM_THREADED_DISPATCH
#undef URCM_DISPATCH
#endif
}

} // namespace

URCM_STAT(NumSimRuns, "sim.runs", "Simulations executed");
URCM_STAT(NumSimSteps, "sim.steps", "Machine instructions simulated");
URCM_STAT(NumSimRefs, "sim.data-refs", "Data references simulated");
URCM_STAT(NumSimCoherence, "sim.coherence-violations",
          "Hint-induced coherence violations observed");
URCM_STAT(NumSimPredecoded, "sim.dispatch.predecoded",
          "Runs through the predecoded engine");
URCM_STAT(NumSimSwitch, "sim.dispatch.switch",
          "Runs through the legacy switch engine");
URCM_HISTOGRAM(SimStepsPerRun, "sim.steps-per-run",
               "Steps executed per simulation");

namespace {

/// Folds one finished simulation into the counters; cheap relative to
/// the run itself, so it sits outside the engines' hot loops.
void recordRunTelemetry(const SimResult &Result) {
  if (!telemetry::enabled())
    return;
  NumSimRuns.add();
  NumSimSteps.add(Result.Steps);
  NumSimRefs.add(Result.Cache.Reads + Result.Cache.Writes +
                 Result.Cache.BypassReads + Result.Cache.BypassWrites);
  NumSimCoherence.add(Result.CoherenceViolations);
  SimStepsPerRun.record(Result.Steps);
}

} // namespace

SimResult Simulator::run(const PredecodedProgram &Prog) {
  telemetry::ScopedPhase Phase(
      "sim.run", URCM_THREADED_DISPATCH ? "threaded" : "switch-dispatch");
  NumSimPredecoded.add();
  // The paper's canonical data-cache shape gets the specialized model;
  // the switch engine keeps the generic one, so the differential tests
  // cross-check the two implementations. The instruction cache stays
  // generic either way (its per-fetch cost is already a hit in slot 0
  // and it is off in most experiments).
  SimResult Result;
  if (TwoWayWB1Cache::eligible(Config.Cache)) {
    // Attribution swaps in the profiling instantiation; the default one
    // compiles the per-reference bookkeeping out of the inlined hot
    // path entirely (if constexpr in TwoWayWB1CacheT), so profiling
    // costs nothing when off.
    if (Config.Attribution)
      Result = Config.ModelICache
                   ? runPredecodedImpl<true, TwoWayWB1CacheAttr>(Prog, Config)
                   : runPredecodedImpl<false, TwoWayWB1CacheAttr>(Prog, Config);
    else
      Result = Config.ModelICache
                   ? runPredecodedImpl<true, TwoWayWB1Cache>(Prog, Config)
                   : runPredecodedImpl<false, TwoWayWB1Cache>(Prog, Config);
  } else
    Result = Config.ModelICache
                 ? runPredecodedImpl<true, DataCache>(Prog, Config)
                 : runPredecodedImpl<false, DataCache>(Prog, Config);
  recordRunTelemetry(Result);
  return Result;
}

SimResult Simulator::run(const MachineProgram &Prog) {
  if (Config.Engine == SimEngine::Switch)
    return runSwitch(Prog);
  PredecodedProgram Pre = [&] {
    telemetry::ScopedPhase Phase("sim.predecode");
    return predecode(Prog);
  }();
  return run(Pre);
}

SimResult Simulator::runSwitch(const MachineProgram &Prog) {
  telemetry::ScopedPhase Phase("sim.run", "legacy-switch");
  NumSimSwitch.add();
  SimResult Result;
  MainMemory Mem(Prog.StackTop + 64);
  DataCache Cache(Config.Cache, Mem);
  Cache.setAttribution(Config.Attribution);

  // Optional instruction cache: tag-only simulation over code indexes.
  std::unique_ptr<MainMemory> IMem;
  std::unique_ptr<DataCache> ICache;
  if (Config.ModelICache) {
    IMem = std::make_unique<MainMemory>(Prog.Code.size() + 64);
    ICache = std::make_unique<DataCache>(Config.ICache, *IMem);
  }
  const MemRefInfo PlainFetch;
  RefRecorder Refs(Config, Result);

  std::array<int64_t, mreg::NumRegs> R{};
  uint64_t PC = Prog.EntryIndex;

  auto Fail = [&](std::string Message) {
    Result.Error = std::move(Message);
  };

  while (Result.Steps < Config.MaxSteps) {
    if (PC >= Prog.Code.size()) {
      Fail(formatString("PC %llu outside program",
                        static_cast<unsigned long long>(PC)));
      break;
    }
    const MInst &I = Prog.Code[PC];
    ++Result.Steps;
    if (ICache) {
      ++Result.InstructionFetches;
      ICache->read(PC, PlainFetch);
    }
    uint64_t NextPC = PC + 1;

    auto Src2 = [&]() { return I.UseImm ? I.Imm : R[I.Rs2]; };

    switch (I.Op) {
    case MOpcode::Add:
      R[I.Rd] = wrapAdd(R[I.Rs1], Src2());
      break;
    case MOpcode::Sub:
      R[I.Rd] = wrapSub(R[I.Rs1], Src2());
      break;
    case MOpcode::Mul:
      R[I.Rd] = wrapMul(R[I.Rs1], Src2());
      break;
    case MOpcode::Div: {
      int64_t D = Src2();
      if (D == 0) {
        Fail("division by zero");
        break;
      }
      R[I.Rd] = wrapDiv(R[I.Rs1], D);
      break;
    }
    case MOpcode::Rem: {
      int64_t D = Src2();
      if (D == 0) {
        Fail("remainder by zero");
        break;
      }
      R[I.Rd] = wrapRem(R[I.Rs1], D);
      break;
    }
    case MOpcode::And:
      R[I.Rd] = R[I.Rs1] & Src2();
      break;
    case MOpcode::Or:
      R[I.Rd] = R[I.Rs1] | Src2();
      break;
    case MOpcode::Xor:
      R[I.Rd] = R[I.Rs1] ^ Src2();
      break;
    case MOpcode::Shl:
      R[I.Rd] = wrapShl(R[I.Rs1], static_cast<unsigned>(Src2() & 63));
      break;
    case MOpcode::Shr:
      R[I.Rd] = R[I.Rs1] >> (Src2() & 63);
      break;
    case MOpcode::Slt:
      R[I.Rd] = R[I.Rs1] < Src2();
      break;
    case MOpcode::Sle:
      R[I.Rd] = R[I.Rs1] <= Src2();
      break;
    case MOpcode::Sgt:
      R[I.Rd] = R[I.Rs1] > Src2();
      break;
    case MOpcode::Sge:
      R[I.Rd] = R[I.Rs1] >= Src2();
      break;
    case MOpcode::Seq:
      R[I.Rd] = R[I.Rs1] == Src2();
      break;
    case MOpcode::Sne:
      R[I.Rd] = R[I.Rs1] != Src2();
      break;
    case MOpcode::Neg:
      R[I.Rd] = -R[I.Rs1];
      break;
    case MOpcode::Not:
      R[I.Rd] = ~R[I.Rs1];
      break;
    case MOpcode::Mov:
      R[I.Rd] = R[I.Rs1];
      break;
    case MOpcode::Li:
      R[I.Rd] = I.Imm;
      break;
    case MOpcode::Ld: {
      int64_t Base = I.Rs1 == mreg::None ? 0 : R[I.Rs1];
      int64_t EA = wrapAdd(Base, I.Imm);
      if (EA < 0 || static_cast<uint64_t>(EA) >= Mem.size()) {
        Fail(formatString("load address %lld out of range",
                          static_cast<long long>(EA)));
        break;
      }
      uint64_t Addr = static_cast<uint64_t>(EA);
      Refs.count(I.MemInfo, /*IsWrite=*/false, Addr);
      int64_t Value = Cache.read(Addr, I.MemInfo);
      if (Config.Paranoid && Value != Mem.shadowRead(Addr))
        ++Result.CoherenceViolations;
      R[I.Rd] = Value;
      break;
    }
    case MOpcode::St: {
      int64_t Base = I.Rs1 == mreg::None ? 0 : R[I.Rs1];
      int64_t EA = wrapAdd(Base, I.Imm);
      if (EA < 0 || static_cast<uint64_t>(EA) >= Mem.size()) {
        Fail(formatString("store address %lld out of range",
                          static_cast<long long>(EA)));
        break;
      }
      uint64_t Addr = static_cast<uint64_t>(EA);
      Refs.count(I.MemInfo, /*IsWrite=*/true, Addr);
      Cache.write(Addr, R[I.Rs2], I.MemInfo);
      Mem.shadowWrite(Addr, R[I.Rs2]);
      break;
    }
    case MOpcode::Jmp:
      NextPC = I.Target;
      break;
    case MOpcode::Bnz:
      if (R[I.Rs1] != 0)
        NextPC = I.Target;
      break;
    case MOpcode::Call:
      R[mreg::RA] = static_cast<int64_t>(PC + 1);
      NextPC = I.Target;
      break;
    case MOpcode::Ret:
      NextPC = static_cast<uint64_t>(R[mreg::RA]);
      // Code-dead hint: this function never runs again; reclaim its
      // I-cache lines.
      if (I.CodeDeadHint && ICache)
        ICache->invalidateRange(I.Target,
                                I.Target + static_cast<uint64_t>(I.Imm));
      break;
    case MOpcode::Print:
      Result.Output.push_back(R[I.Rs1]);
      break;
    case MOpcode::Halt:
      Result.Halted = true;
      break;
    }

    if (Result.Halted || !Result.Error.empty())
      break;
    PC = NextPC;
  }

  if (!Result.Halted && Result.Error.empty())
    Result.Error = "step limit exceeded";

  Refs.finish();
  Cache.flush();
  Result.Cache = Cache.stats();
  if (ICache)
    Result.ICache = ICache->stats();
  recordRunTelemetry(Result);
  return Result;
}
