//===- Simulator.cpp - URCM-RISC simulator ------------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
//
// Two execution engines produce bit-identical SimResults:
//
//  * runSwitch: the original one-MInst-at-a-time switch interpreter,
//    kept as the portable reference implementation (and as the
//    differential-testing oracle);
//  * runPredecodedImpl: the fast path. It executes the PInst form built
//    by predecode() (urcm/sim/Predecode.h) with threaded computed-goto
//    dispatch on GNU-compatible compilers and a switch loop elsewhere.
//    Step-limit and PC-bounds checks are hoisted out of the
//    per-instruction loop: a straight-line run of R instructions needs
//    one limit test and one bounds test, because only its final
//    instruction can redirect control. Mid-run entry (a Ret landing
//    between terminators) is handled by per-index run lengths, and a
//    run truncated by the step limit simply executes the remaining
//    budget and lets the outer loop report exhaustion — exactly the
//    states the legacy loop reaches, in the same order.
//
// Trace recording is shared (RefRecorder): both engines either append
// to SimResult::Trace or stream fixed-size chunks through
// SimConfig::Sink; chunking does not change the recorded event
// sequence.
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/Simulator.h"

#include "urcm/sim/Predecode.h"
#include "urcm/support/IntOps.h"
#include "urcm/support/StringUtils.h"
#include "urcm/support/Telemetry.h"

#include <array>
#include <memory>

// Threaded dispatch needs GNU computed goto; define
// URCM_FORCE_SWITCH_DISPATCH (see the sanitizer preset) to exercise the
// portable switch fallback on a compiler that would otherwise thread.
#if defined(__GNUC__) && !defined(URCM_FORCE_SWITCH_DISPATCH)
#define URCM_THREADED_DISPATCH 1
#else
#define URCM_THREADED_DISPATCH 0
#endif

using namespace urcm;

// Declared ahead of the engine so the hot loop can fold its local
// dispatch-savings tally into the counter on exit (the third
// sim.fuse.* counter; candidates/fused live with the pass in
// Predecode.cpp). Deliberately not a SimResult field: fused and
// unfused runs must produce bit-identical SimResults.
URCM_STAT(NumFuseDispatchesSaved, "sim.fuse.dispatches-saved",
          "Dispatches eliminated by executing fused superinstructions");

namespace {

/// Per-reference bookkeeping shared by both engines: dynamic reference
/// class counters, bypass-transition tracking, and trace recording
/// (buffered in SimResult::Trace or streamed through a TraceSink).
class RefRecorder {
public:
  RefRecorder(const SimConfig &Config, SimResult &Result)
      : Result(Result), Sink(Config.Sink),
        ClassCounter{&Result.Refs.Unknown, &Result.Refs.Ambiguous,
                     &Result.Refs.Unambiguous, &Result.Refs.Spill,
                     &Result.Refs.Spill} {
    if (Sink) {
      ChunkCap = Config.TraceChunkEvents ? Config.TraceChunkEvents : 1;
      // The staging block is written through a raw cursor: vector
      // push_back (capacity reload, size store, inlined grow branch)
      // measured ~6x the cost of a plain 8-byte store on the trace-gen
      // path, and the sink path pays it tens of millions of times.
      Buf.resize(ChunkCap);
      Next = Buf.data();
      EndCap = Next + ChunkCap;
    } else if (Config.RecordTrace) {
      Recording = true;
      if (Config.TraceSizeHint)
        Result.Trace.reserve(Config.TraceSizeHint);
    }
  }

#if defined(__GNUC__)
  // One call per simulated memory event from inside the large dispatch
  // functions, whose size pushes GCC's growth heuristic past inlining
  // this otherwise-cheap body.
  __attribute__((always_inline))
#endif
  inline void
  count(const MemRefInfo &Info, bool IsWrite, uint64_t Addr) {
    tally(Info);
    const int Bit = Info.Bypass ? 1 : 0;
    Result.BypassTransitions +=
        static_cast<uint64_t>(LastBypassBit >= 0) &
        static_cast<uint64_t>(Bit != LastBypassBit);
    LastBypassBit = Bit;
    if (Sink) {
      *Next++ = TraceEvent{static_cast<uint32_t>(Addr), IsWrite,
                           TraceEvent::Hints(Info), Info.RefId};
      if (__builtin_expect(Next == EndCap, 0))
        recycle();
    } else if (Recording) {
      Result.Trace.push_back(TraceEvent{static_cast<uint32_t>(Addr), IsWrite,
                                        TraceEvent::Hints(Info), Info.RefId});
    }
  }

  /// Group forms for fused superinstructions whose members are all
  /// memory references: identical observable effect to the equivalent
  /// sequence of count() calls — same counter values, same event order,
  /// same chunk boundaries (flushes happen at exactly ChunkCap-event
  /// multiples either way) — but one capacity check and one combined
  /// transition/counter update for the whole group.
#if defined(__GNUC__)
  __attribute__((always_inline))
#endif
  inline void
  count2(const MemRefInfo &IA, bool WA, uint64_t AA, //
         const MemRefInfo &IB, bool WB, uint64_t AB) {
    tally(IA);
    tally(IB);
    const int BitA = IA.Bypass ? 1 : 0, BitB = IB.Bypass ? 1 : 0;
    Result.BypassTransitions +=
        (static_cast<uint64_t>(LastBypassBit >= 0) &
         static_cast<uint64_t>(BitA != LastBypassBit)) +
        static_cast<uint64_t>(BitB != BitA);
    LastBypassBit = BitB;
    const TraceEvent EA{static_cast<uint32_t>(AA), WA,
                        TraceEvent::Hints(IA), IA.RefId};
    const TraceEvent EB{static_cast<uint32_t>(AB), WB,
                        TraceEvent::Hints(IB), IB.RefId};
    if (Sink) {
      if (__builtin_expect(EndCap - Next < 2, 0)) {
        spill(EA);
        spill(EB);
        return;
      }
      Next[0] = EA;
      Next[1] = EB;
      Next += 2;
      if (__builtin_expect(Next == EndCap, 0))
        recycle();
    } else if (Recording) {
      Result.Trace.push_back(EA);
      Result.Trace.push_back(EB);
    }
  }

#if defined(__GNUC__)
  __attribute__((always_inline))
#endif
  inline void
  count3(const MemRefInfo &IA, bool WA, uint64_t AA, //
         const MemRefInfo &IB, bool WB, uint64_t AB, //
         const MemRefInfo &IC, bool WC, uint64_t AC) {
    tally(IA);
    tally(IB);
    tally(IC);
    const int BitA = IA.Bypass ? 1 : 0, BitB = IB.Bypass ? 1 : 0,
              BitC = IC.Bypass ? 1 : 0;
    Result.BypassTransitions +=
        (static_cast<uint64_t>(LastBypassBit >= 0) &
         static_cast<uint64_t>(BitA != LastBypassBit)) +
        static_cast<uint64_t>(BitB != BitA) +
        static_cast<uint64_t>(BitC != BitB);
    LastBypassBit = BitC;
    const TraceEvent EA{static_cast<uint32_t>(AA), WA,
                        TraceEvent::Hints(IA), IA.RefId};
    const TraceEvent EB{static_cast<uint32_t>(AB), WB,
                        TraceEvent::Hints(IB), IB.RefId};
    const TraceEvent EC{static_cast<uint32_t>(AC), WC,
                        TraceEvent::Hints(IC), IC.RefId};
    if (Sink) {
      if (__builtin_expect(EndCap - Next < 3, 0)) {
        spill(EA);
        spill(EB);
        spill(EC);
        return;
      }
      Next[0] = EA;
      Next[1] = EB;
      Next[2] = EC;
      Next += 3;
      if (__builtin_expect(Next == EndCap, 0))
        recycle();
    } else if (Recording) {
      Result.Trace.push_back(EA);
      Result.Trace.push_back(EB);
      Result.Trace.push_back(EC);
    }
  }

  /// Flushes the final partial chunk. Call once, after the run.
  void finish() {
    if (Sink) {
      const size_t Fill = static_cast<size_t>(Next - Buf.data());
      if (Fill) {
        Buf.resize(Fill); // shrink: no reallocation, data stays put
        Sink->chunk(std::move(Buf));
      }
    }
  }

private:
#if defined(__GNUC__)
  __attribute__((always_inline))
#endif
  inline void
  tally(const MemRefInfo &Info) {
    // Branchless class dispatch: one per memory event, so the (well
    // predicted but five-way) switch this replaces showed up in
    // profiles. ClassCounter is indexed by the RefClass value.
    ++*ClassCounter[static_cast<unsigned>(Info.Class)];
    Result.Refs.Bypassed += Info.Bypass;
    Result.Refs.LastRefTagged += Info.LastRef;
  }

  // The chunk hand-off is deliberately out of line: it runs once per
  // 64K events, and inlining its vector-move machinery into every
  // count() site in the dispatch functions measurably bloated them.
#if defined(__GNUC__)
  __attribute__((noinline))
#endif
  void recycle() {
    Buf = Sink->chunk(std::move(Buf));
    Buf.clear();
    Buf.resize(ChunkCap);
    Next = Buf.data();
    EndCap = Next + ChunkCap;
  }

  /// Cold path of the group counts when the staging block has fewer
  /// free slots than the group: per-event writes with per-event flush
  /// checks, preserving the exact chunk boundaries of count().
#if defined(__GNUC__)
  __attribute__((noinline))
#endif
  void spill(const TraceEvent &E) {
    *Next++ = E;
    if (Next == EndCap)
      recycle();
  }

  SimResult &Result;
  TraceSink *Sink;
  // Refs counter for each RefClass value (Spill and SpillReload share).
  uint64_t *const ClassCounter[5];
  bool Recording = false;
  int LastBypassBit = -1;
  size_t ChunkCap = 0;
  TraceEvent *Next = nullptr;
  TraceEvent *EndCap = nullptr;
  std::vector<TraceEvent> Buf;
};

template <bool ICacheOn, class DCacheT>
SimResult runPredecodedImpl(const PredecodedProgram &PP,
                            const SimConfig &Config) {
  SimResult Result;
  MainMemory Mem(PP.StackTop + 64);
  DCacheT Cache(Config.Cache, Mem);
  Cache.setAttribution(Config.Attribution);

  std::unique_ptr<MainMemory> IMem;
  std::unique_ptr<DataCache> ICache;
  if constexpr (ICacheOn) {
    IMem = std::make_unique<MainMemory>(PP.codeSize() + 64);
    ICache = std::make_unique<DataCache>(Config.ICache, *IMem);
  }
  const MemRefInfo PlainFetch;
  RefRecorder Refs(Config, Result);

  // Slot preg::Zero reads as constant zero (predecoded no-base loads
  // and stores); nothing ever writes it.
  std::array<int64_t, preg::NumSlots> R{};
  const PInst *const Insts = PP.Insts.data();
  const uint32_t *const RunLens = PP.RunLen.data();
  const uint64_t CodeSize = PP.codeSize();
  const uint64_t MemSize = Mem.size();
  const bool Paranoid = Config.Paranoid;
  uint64_t PC = PP.EntryIndex;
  uint64_t Steps = 0;
  uint64_t FusedSaved = 0;

  // Pointers of the run in flight (set per outer iteration). Base is
  // the instruction array the run executes from: normally the (possibly
  // fused) Insts, but a step-limit-truncated run falls back to the
  // index-parallel unfused stream so it retires exactly Remaining
  // instructions — a fused group never splits mid-superinstruction.
  const PInst *const SlowBase = PP.fused() ? PP.Unfused.data() : Insts;
  const PInst *Base = Insts;
  const PInst *I = nullptr;
  const PInst *Start = nullptr;
  const PInst *End = nullptr;

#define URCM_FETCH_AT(Ptr)                                                   \
  do {                                                                       \
    if constexpr (ICacheOn) {                                                \
      ++Result.InstructionFetches;                                           \
      ICache->read(static_cast<uint64_t>((Ptr) - Base), PlainFetch);         \
    }                                                                        \
  } while (0)
#define URCM_FETCH() URCM_FETCH_AT(I)

#if URCM_THREADED_DISPATCH
  static const void *const Handlers[] = {
#define URCM_POP_LABEL(Name) &&H_##Name,
      URCM_PREDECODED_OPS(URCM_POP_LABEL)
#undef URCM_POP_LABEL
#define URCM_POP_FLABEL2(Name, M0, M1) &&H_Fuse##Name,
#define URCM_POP_FLABEL3(Name, M0, M1, M2) &&H_Fuse##Name,
      URCM_FUSED_OPS(URCM_POP_FLABEL2, URCM_POP_FLABEL3)
#undef URCM_POP_FLABEL2
#undef URCM_POP_FLABEL3
  };
#define URCM_CASE(Name) H_##Name:
#define URCM_DISPATCH() goto *Handlers[static_cast<size_t>(I->Op)]
#define URCM_NEXT()                                                          \
  do {                                                                       \
    if (++I == End)                                                          \
      goto RunFellOff;                                                       \
    URCM_FETCH();                                                            \
    URCM_DISPATCH();                                                         \
  } while (0)
#define URCM_NEXT_N(K)                                                       \
  do {                                                                       \
    I += (K);                                                                \
    if (I == End)                                                            \
      goto RunFellOff;                                                       \
    URCM_FETCH();                                                            \
    URCM_DISPATCH();                                                         \
  } while (0)
#else
#define URCM_CASE(Name) case POp::Name:
#define URCM_NEXT()                                                          \
  do {                                                                       \
    if (++I == End)                                                          \
      goto RunFellOff;                                                       \
    goto Dispatch;                                                           \
  } while (0)
#define URCM_NEXT_N(K)                                                       \
  do {                                                                       \
    I += (K);                                                                \
    if (I == End)                                                            \
      goto RunFellOff;                                                       \
    goto Dispatch;                                                           \
  } while (0)
#endif

  // Member bodies shared between the plain one-PInst handlers and the
  // generated fused handlers: URCM_MEXEC_<POp>(P, Adj) executes the
  // member at slot P exactly as its standalone handler would, with Adj
  // (the member's offset from the dispatched head) repositioning I for
  // the exact-step AbortAt accounting. Terminator members reposition I
  // themselves and leave through Terminated; a fused group therefore
  // books `(I - Start) + 1` retired steps on every exit path, same as
  // the unfused stream.
#define URCM_MEXEC_BINRR(P, Expr)                                            \
  {                                                                          \
    const PInst *M = (P);                                                    \
    const int64_t L = R[M->B], S2 = R[M->C];                                 \
    R[M->A] = (Expr);                                                        \
  }
#define URCM_MEXEC_BINRI(P, Expr)                                            \
  {                                                                          \
    const PInst *M = (P);                                                    \
    const int64_t L = R[M->B], S2 = M->Imm;                                  \
    R[M->A] = (Expr);                                                        \
  }
#define URCM_MEXEC_AddRR(P, Adj) URCM_MEXEC_BINRR(P, wrapAdd(L, S2))
#define URCM_MEXEC_AddRI(P, Adj) URCM_MEXEC_BINRI(P, wrapAdd(L, S2))
#define URCM_MEXEC_SubRI(P, Adj) URCM_MEXEC_BINRI(P, wrapSub(L, S2))
#define URCM_MEXEC_MulRI(P, Adj) URCM_MEXEC_BINRI(P, wrapMul(L, S2))
#define URCM_MEXEC_SltRR(P, Adj) URCM_MEXEC_BINRR(P, L < S2)
#define URCM_MEXEC_SltRI(P, Adj) URCM_MEXEC_BINRI(P, L < S2)
#define URCM_MEXEC_SleRR(P, Adj) URCM_MEXEC_BINRR(P, L <= S2)
#define URCM_MEXEC_SleRI(P, Adj) URCM_MEXEC_BINRI(P, L <= S2)
#define URCM_MEXEC_SgtRR(P, Adj) URCM_MEXEC_BINRR(P, L > S2)
#define URCM_MEXEC_SgtRI(P, Adj) URCM_MEXEC_BINRI(P, L > S2)
#define URCM_MEXEC_SgeRR(P, Adj) URCM_MEXEC_BINRR(P, L >= S2)
#define URCM_MEXEC_SgeRI(P, Adj) URCM_MEXEC_BINRI(P, L >= S2)
#define URCM_MEXEC_SeqRR(P, Adj) URCM_MEXEC_BINRR(P, L == S2)
#define URCM_MEXEC_SeqRI(P, Adj) URCM_MEXEC_BINRI(P, L == S2)
#define URCM_MEXEC_SneRR(P, Adj) URCM_MEXEC_BINRR(P, L != S2)
#define URCM_MEXEC_SneRI(P, Adj) URCM_MEXEC_BINRI(P, L != S2)
#define URCM_MEXEC_Li(P, Adj)                                                \
  {                                                                          \
    const PInst *M = (P);                                                    \
    R[M->A] = M->Imm;                                                        \
  }
#define URCM_MEXEC_Ld(P, Adj)                                                \
  {                                                                          \
    const PInst *M = (P);                                                    \
    const int64_t EA = wrapAdd(R[M->B], M->Imm);                             \
    if (EA < 0 || static_cast<uint64_t>(EA) >= MemSize) {                    \
      Result.Error = formatString("load address %lld out of range",          \
                                  static_cast<long long>(EA));               \
      I += (Adj);                                                            \
      goto AbortAt;                                                          \
    }                                                                        \
    const uint64_t Addr = static_cast<uint64_t>(EA);                         \
    Refs.count(M->Mem, /*IsWrite=*/false, Addr);                             \
    const int64_t Value = Cache.read(Addr, M->Mem);                          \
    if (Paranoid && Value != Mem.shadowRead(Addr))                           \
      ++Result.CoherenceViolations;                                          \
    R[M->A] = Value;                                                         \
  }
#define URCM_MEXEC_St(P, Adj)                                                \
  {                                                                          \
    const PInst *M = (P);                                                    \
    const int64_t EA = wrapAdd(R[M->B], M->Imm);                             \
    if (EA < 0 || static_cast<uint64_t>(EA) >= MemSize) {                    \
      Result.Error = formatString("store address %lld out of range",         \
                                  static_cast<long long>(EA));               \
      I += (Adj);                                                            \
      goto AbortAt;                                                          \
    }                                                                        \
    const uint64_t Addr = static_cast<uint64_t>(EA);                         \
    Refs.count(M->Mem, /*IsWrite=*/true, Addr);                              \
    Cache.write(Addr, R[M->C], M->Mem);                                      \
    Mem.shadowWrite(Addr, R[M->C]);                                          \
  }
#define URCM_MEXEC_Jmp(P, Adj)                                               \
  {                                                                          \
    const PInst *M = (P);                                                    \
    PC = M->Target;                                                          \
    I = M;                                                                   \
    goto Terminated;                                                         \
  }
#define URCM_MEXEC_Bnz(P, Adj)                                               \
  {                                                                          \
    const PInst *M = (P);                                                    \
    PC = R[M->B] != 0 ? M->Target : static_cast<uint64_t>(M - Base) + 1;     \
    I = M;                                                                   \
    goto Terminated;                                                         \
  }
#define URCM_MEXEC_Call(P, Adj)                                              \
  {                                                                          \
    const PInst *M = (P);                                                    \
    R[mreg::RA] = static_cast<int64_t>(M - Base) + 1;                        \
    PC = M->Target;                                                          \
    I = M;                                                                   \
    goto Terminated;                                                         \
  }
#define URCM_MEXEC_Ret(P, Adj)                                               \
  {                                                                          \
    PC = static_cast<uint64_t>(R[mreg::RA]);                                 \
    I = (P);                                                                 \
    goto Terminated;                                                         \
  }

  // Deferred-count members for the all-memory fused groups
  // (URCM_FUSED_OPS_MEM): execute the access exactly like URCM_MEXEC_Ld
  // / URCM_MEXEC_St but leave the RefRecorder update to one combined
  // count2/count3 at the end of the group. Declares M<N> / Addr<N> for
  // that combined count. Moving a member's count after its cache access
  // is observable-state-neutral (RefRecorder and the cache model share
  // nothing), but the abort path is not: a member that faults must see
  // every *earlier* member already counted — the trailing variadic
  // argument is that catch-up count, run before jumping to AbortAt.
#define URCM_GMEM_LD(P, Adj, N, ...)                                         \
  const PInst *M##N = (P);                                                   \
  uint64_t Addr##N;                                                          \
  {                                                                          \
    const int64_t EA = wrapAdd(R[M##N->B], M##N->Imm);                       \
    if (__builtin_expect(EA < 0 || static_cast<uint64_t>(EA) >= MemSize,     \
                         0)) {                                               \
      Result.Error = formatString("load address %lld out of range",          \
                                  static_cast<long long>(EA));               \
      __VA_ARGS__;                                                           \
      I += (Adj);                                                            \
      goto AbortAt;                                                          \
    }                                                                        \
    Addr##N = static_cast<uint64_t>(EA);                                     \
    const int64_t Value = Cache.read(Addr##N, M##N->Mem);                    \
    if (Paranoid && Value != Mem.shadowRead(Addr##N))                        \
      ++Result.CoherenceViolations;                                          \
    R[M##N->A] = Value;                                                      \
  }
#define URCM_GMEM_ST(P, Adj, N, ...)                                         \
  const PInst *M##N = (P);                                                   \
  uint64_t Addr##N;                                                          \
  {                                                                          \
    const int64_t EA = wrapAdd(R[M##N->B], M##N->Imm);                       \
    if (__builtin_expect(EA < 0 || static_cast<uint64_t>(EA) >= MemSize,     \
                         0)) {                                               \
      Result.Error = formatString("store address %lld out of range",         \
                                  static_cast<long long>(EA));               \
      __VA_ARGS__;                                                           \
      I += (Adj);                                                            \
      goto AbortAt;                                                          \
    }                                                                        \
    Addr##N = static_cast<uint64_t>(EA);                                     \
    Cache.write(Addr##N, R[M##N->C], M##N->Mem);                             \
    Mem.shadowWrite(Addr##N, R[M##N->C]);                                    \
  }

  // Bodies of the all-memory fused handlers, built from the deferred
  // members above. Event order, counter values and chunk boundaries are
  // identical to the member-by-member execution (see count2/count3).
#define URCM_FBODY_LdLd                                                      \
  URCM_GMEM_LD(I, 0, 0, )                                                    \
  URCM_FETCH_AT(I + 1);                                                      \
  URCM_GMEM_LD(I + 1, 1, 1, Refs.count(M0->Mem, false, Addr0))               \
  Refs.count2(M0->Mem, false, Addr0, M1->Mem, false, Addr1);
#define URCM_FBODY_LdSt                                                      \
  URCM_GMEM_LD(I, 0, 0, )                                                    \
  URCM_FETCH_AT(I + 1);                                                      \
  URCM_GMEM_ST(I + 1, 1, 1, Refs.count(M0->Mem, false, Addr0))               \
  Refs.count2(M0->Mem, false, Addr0, M1->Mem, true, Addr1);
#define URCM_FBODY_StLd                                                      \
  URCM_GMEM_ST(I, 0, 0, )                                                    \
  URCM_FETCH_AT(I + 1);                                                      \
  URCM_GMEM_LD(I + 1, 1, 1, Refs.count(M0->Mem, true, Addr0))                \
  Refs.count2(M0->Mem, true, Addr0, M1->Mem, false, Addr1);
#define URCM_FBODY_StSt                                                      \
  URCM_GMEM_ST(I, 0, 0, )                                                    \
  URCM_FETCH_AT(I + 1);                                                      \
  URCM_GMEM_ST(I + 1, 1, 1, Refs.count(M0->Mem, true, Addr0))                \
  Refs.count2(M0->Mem, true, Addr0, M1->Mem, true, Addr1);
#define URCM_FBODY_LdLdLd                                                    \
  URCM_GMEM_LD(I, 0, 0, )                                                    \
  URCM_FETCH_AT(I + 1);                                                      \
  URCM_GMEM_LD(I + 1, 1, 1, Refs.count(M0->Mem, false, Addr0))               \
  URCM_FETCH_AT(I + 2);                                                      \
  URCM_GMEM_LD(I + 2, 2, 2,                                                  \
               Refs.count2(M0->Mem, false, Addr0, M1->Mem, false, Addr1))    \
  Refs.count3(M0->Mem, false, Addr0, M1->Mem, false, Addr1, M2->Mem, false,  \
              Addr2);
#define URCM_FBODY_StStSt                                                    \
  URCM_GMEM_ST(I, 0, 0, )                                                    \
  URCM_FETCH_AT(I + 1);                                                      \
  URCM_GMEM_ST(I + 1, 1, 1, Refs.count(M0->Mem, true, Addr0))                \
  URCM_FETCH_AT(I + 2);                                                      \
  URCM_GMEM_ST(I + 2, 2, 2,                                                  \
               Refs.count2(M0->Mem, true, Addr0, M1->Mem, true, Addr1))      \
  Refs.count3(M0->Mem, true, Addr0, M1->Mem, true, Addr1, M2->Mem, true,     \
              Addr2);

  for (;;) {
    // Run boundary: the step-limit and PC-bounds checks of the legacy
    // per-instruction loop, evaluated once per straight-line run (same
    // order as the legacy loop, so tie-breaks between the two error
    // conditions are identical).
    if (Steps >= Config.MaxSteps)
      break; // "step limit exceeded" is stamped after the loop.
    if (PC >= CodeSize) {
      Result.Error = formatString(
          "PC %llu outside program", static_cast<unsigned long long>(PC));
      break;
    }
    uint64_t Run = RunLens[PC];
    Base = Insts;
    if (const uint64_t Remaining = Config.MaxSteps - Steps; Run > Remaining) {
      // Truncated run: no terminator will be reached, and End may land
      // inside what fusion grouped — execute the unfused stream so the
      // run retires exactly Remaining instructions.
      Run = Remaining;
      Base = SlowBase;
    }
    I = Base + PC;
    Start = I;
    End = I + Run;

#if URCM_THREADED_DISPATCH
    URCM_FETCH();
    URCM_DISPATCH();
#else
  Dispatch:
    URCM_FETCH();
    switch (I->Op) {
#endif

#define URCM_BINOP(Name, Expr)                                               \
  URCM_CASE(Name##RR) {                                                      \
    const int64_t L = R[I->B], S2 = R[I->C];                                 \
    R[I->A] = (Expr);                                                        \
  }                                                                          \
  URCM_NEXT();                                                               \
  URCM_CASE(Name##RI) {                                                      \
    const int64_t L = R[I->B], S2 = I->Imm;                                  \
    R[I->A] = (Expr);                                                        \
  }                                                                          \
  URCM_NEXT();

    URCM_BINOP(Add, wrapAdd(L, S2))
    URCM_BINOP(Sub, wrapSub(L, S2))
    URCM_BINOP(Mul, wrapMul(L, S2))
    URCM_BINOP(And, L &S2)
    URCM_BINOP(Or, L | S2)
    URCM_BINOP(Xor, L ^ S2)
    URCM_BINOP(Shl, wrapShl(L, static_cast<unsigned>(S2 & 63)))
    URCM_BINOP(Shr, L >> (S2 & 63))
    URCM_BINOP(Slt, L < S2)
    URCM_BINOP(Sle, L <= S2)
    URCM_BINOP(Sgt, L > S2)
    URCM_BINOP(Sge, L >= S2)
    URCM_BINOP(Seq, L == S2)
    URCM_BINOP(Sne, L != S2)
#undef URCM_BINOP

#define URCM_DIVOP(Name, Expr, What)                                         \
  URCM_CASE(Name##RR) {                                                      \
    const int64_t L = R[I->B], S2 = R[I->C];                                 \
    if (S2 == 0) {                                                           \
      Result.Error = What;                                                   \
      goto AbortAt;                                                          \
    }                                                                        \
    R[I->A] = (Expr);                                                        \
  }                                                                          \
  URCM_NEXT();                                                               \
  URCM_CASE(Name##RI) {                                                      \
    const int64_t L = R[I->B], S2 = I->Imm;                                  \
    if (S2 == 0) {                                                           \
      Result.Error = What;                                                   \
      goto AbortAt;                                                          \
    }                                                                        \
    R[I->A] = (Expr);                                                        \
  }                                                                          \
  URCM_NEXT();

    URCM_DIVOP(Div, wrapDiv(L, S2), "division by zero")
    URCM_DIVOP(Rem, wrapRem(L, S2), "remainder by zero")
#undef URCM_DIVOP

    URCM_CASE(Neg)
    R[I->A] = -R[I->B];
    URCM_NEXT();

    URCM_CASE(Not)
    R[I->A] = ~R[I->B];
    URCM_NEXT();

    URCM_CASE(Mov)
    R[I->A] = R[I->B];
    URCM_NEXT();

    URCM_CASE(Li)
    R[I->A] = I->Imm;
    URCM_NEXT();

    URCM_CASE(Ld)
    URCM_MEXEC_Ld(I, 0)
    URCM_NEXT();

    URCM_CASE(St)
    URCM_MEXEC_St(I, 0)
    URCM_NEXT();

    URCM_CASE(Jmp)
    URCM_MEXEC_Jmp(I, 0)

    URCM_CASE(Bnz)
    URCM_MEXEC_Bnz(I, 0)

    URCM_CASE(Call)
    URCM_MEXEC_Call(I, 0)

    URCM_CASE(Ret)
    URCM_MEXEC_Ret(I, 0)

    URCM_CASE(RetDead)
    // Code-dead hint: this function never runs again; reclaim its
    // I-cache lines.
    if constexpr (ICacheOn)
      ICache->invalidateRange(I->Target,
                              I->Target + static_cast<uint64_t>(I->Imm));
    PC = static_cast<uint64_t>(R[mreg::RA]);
    goto Terminated;

    URCM_CASE(Print)
    Result.Output.push_back(R[I->B]);
    URCM_NEXT();

    URCM_CASE(Halt)
    Result.Halted = true;
    Steps += static_cast<uint64_t>(I - Start) + 1;
    goto Done;

    // Fused superinstruction handlers, generated from the same
    // URCM_FUSED_OPS table that defines the enum, the dispatch table
    // and the peephole matcher. One dispatch retires the whole group;
    // members execute in original order from their original slots
    // (fusion rewrites only the head's Op byte), with per-member
    // instruction fetches so the I-cache model sees the unfused fetch
    // stream. Terminator members leave through Terminated inside their
    // URCM_MEXEC body, making the trailing URCM_NEXT_N unreachable for
    // those groups.
#define URCM_FUSED_CASE2(Name, M0, M1)                                       \
  URCM_CASE(Fuse##Name) {                                                    \
    ++FusedSaved;                                                            \
    URCM_MEXEC_##M0(I, 0)                                                    \
    URCM_FETCH_AT(I + 1);                                                    \
    URCM_MEXEC_##M1(I + 1, 1)                                                \
  }                                                                          \
  URCM_NEXT_N(2);
#define URCM_FUSED_CASE3(Name, M0, M1, M2)                                   \
  URCM_CASE(Fuse##Name) {                                                    \
    FusedSaved += 2;                                                         \
    URCM_MEXEC_##M0(I, 0)                                                    \
    URCM_FETCH_AT(I + 1);                                                    \
    URCM_MEXEC_##M1(I + 1, 1)                                                \
    URCM_FETCH_AT(I + 2);                                                    \
    URCM_MEXEC_##M2(I + 2, 2)                                                \
  }                                                                          \
  URCM_NEXT_N(3);

    URCM_FUSED_OPS_GENERIC(URCM_FUSED_CASE2, URCM_FUSED_CASE3)
#undef URCM_FUSED_CASE2
#undef URCM_FUSED_CASE3

    // The all-memory groups dispatch to their hand-written bodies: the
    // member accesses run exactly as above, but the RefRecorder update
    // is one batched group count (see URCM_FBODY_* / count2 / count3).
#define URCM_FUSED_CASE2M(Name, M0, M1)                                      \
  URCM_CASE(Fuse##Name) {                                                    \
    ++FusedSaved;                                                            \
    URCM_FBODY_##Name                                                        \
  }                                                                          \
  URCM_NEXT_N(2);
#define URCM_FUSED_CASE3M(Name, M0, M1, M2)                                  \
  URCM_CASE(Fuse##Name) {                                                    \
    FusedSaved += 2;                                                         \
    URCM_FBODY_##Name                                                        \
  }                                                                          \
  URCM_NEXT_N(3);

    URCM_FUSED_OPS_MEM(URCM_FUSED_CASE2M, URCM_FUSED_CASE3M)
#undef URCM_FUSED_CASE2M
#undef URCM_FUSED_CASE3M

#if !URCM_THREADED_DISPATCH
    }
#endif

  RunFellOff:
    // Executed the whole (possibly limit-truncated) run without a
    // control transfer; the next boundary check settles what happens.
    Steps += static_cast<uint64_t>(End - Start);
    PC = static_cast<uint64_t>(End - Base);
    continue;

  Terminated:
    Steps += static_cast<uint64_t>(I - Start) + 1;
    continue;

  AbortAt:
    Steps += static_cast<uint64_t>(I - Start) + 1;
    goto Done;
  }

Done:
  if (!Result.Halted && Result.Error.empty())
    Result.Error = "step limit exceeded";
  Result.Steps = Steps;
  NumFuseDispatchesSaved.add(FusedSaved);

  Refs.finish();
  Cache.flush();
  Result.Cache = Cache.stats();
  if constexpr (ICacheOn)
    Result.ICache = ICache->stats();
  return Result;

#undef URCM_CASE
#undef URCM_NEXT
#undef URCM_NEXT_N
#undef URCM_FETCH
#undef URCM_FETCH_AT
#undef URCM_MEXEC_BINRR
#undef URCM_MEXEC_BINRI
#undef URCM_MEXEC_AddRR
#undef URCM_MEXEC_AddRI
#undef URCM_MEXEC_SubRI
#undef URCM_MEXEC_MulRI
#undef URCM_MEXEC_SltRR
#undef URCM_MEXEC_SltRI
#undef URCM_MEXEC_SleRR
#undef URCM_MEXEC_SleRI
#undef URCM_MEXEC_SgtRR
#undef URCM_MEXEC_SgtRI
#undef URCM_MEXEC_SgeRR
#undef URCM_MEXEC_SgeRI
#undef URCM_MEXEC_SeqRR
#undef URCM_MEXEC_SeqRI
#undef URCM_MEXEC_SneRR
#undef URCM_MEXEC_SneRI
#undef URCM_MEXEC_Li
#undef URCM_MEXEC_Ld
#undef URCM_MEXEC_St
#undef URCM_MEXEC_Jmp
#undef URCM_MEXEC_Bnz
#undef URCM_MEXEC_Call
#undef URCM_MEXEC_Ret
#undef URCM_GMEM_LD
#undef URCM_GMEM_ST
#undef URCM_FBODY_LdLd
#undef URCM_FBODY_LdSt
#undef URCM_FBODY_StLd
#undef URCM_FBODY_StSt
#undef URCM_FBODY_LdLdLd
#undef URCM_FBODY_StStSt
#if URCM_THREADED_DISPATCH
#undef URCM_DISPATCH
#endif
}

} // namespace

URCM_STAT(NumSimRuns, "sim.runs", "Simulations executed");
URCM_STAT(NumSimSteps, "sim.steps", "Machine instructions simulated");
URCM_STAT(NumSimRefs, "sim.data-refs", "Data references simulated");
URCM_STAT(NumSimCoherence, "sim.coherence-violations",
          "Hint-induced coherence violations observed");
URCM_STAT(NumSimPredecoded, "sim.dispatch.predecoded",
          "Runs through the predecoded engine");
URCM_STAT(NumSimSwitch, "sim.dispatch.switch",
          "Runs through the legacy switch engine");
URCM_HISTOGRAM(SimStepsPerRun, "sim.steps-per-run",
               "Steps executed per simulation");

namespace {

/// Folds one finished simulation into the counters; cheap relative to
/// the run itself, so it sits outside the engines' hot loops.
void recordRunTelemetry(const SimResult &Result) {
  if (!telemetry::enabled())
    return;
  NumSimRuns.add();
  NumSimSteps.add(Result.Steps);
  NumSimRefs.add(Result.Cache.Reads + Result.Cache.Writes +
                 Result.Cache.BypassReads + Result.Cache.BypassWrites);
  NumSimCoherence.add(Result.CoherenceViolations);
  SimStepsPerRun.record(Result.Steps);
}

} // namespace

SimResult Simulator::run(const PredecodedProgram &Prog) {
  telemetry::ScopedPhase Phase(
      "sim.run", URCM_THREADED_DISPATCH ? "threaded" : "switch-dispatch");
  NumSimPredecoded.add();
  // The paper's canonical data-cache shape gets the specialized model;
  // the switch engine keeps the generic one, so the differential tests
  // cross-check the two implementations. The instruction cache stays
  // generic either way (its per-fetch cost is already a hit in slot 0
  // and it is off in most experiments).
  SimResult Result;
  if (TwoWayWB1Cache::eligible(Config.Cache)) {
    // Attribution swaps in the profiling instantiation; the default one
    // compiles the per-reference bookkeeping out of the inlined hot
    // path entirely (if constexpr in TwoWayWB1CacheT), so profiling
    // costs nothing when off.
    if (Config.Attribution)
      Result = Config.ModelICache
                   ? runPredecodedImpl<true, TwoWayWB1CacheAttr>(Prog, Config)
                   : runPredecodedImpl<false, TwoWayWB1CacheAttr>(Prog, Config);
    else
      Result = Config.ModelICache
                   ? runPredecodedImpl<true, TwoWayWB1Cache>(Prog, Config)
                   : runPredecodedImpl<false, TwoWayWB1Cache>(Prog, Config);
  } else
    Result = Config.ModelICache
                 ? runPredecodedImpl<true, DataCache>(Prog, Config)
                 : runPredecodedImpl<false, DataCache>(Prog, Config);
  recordRunTelemetry(Result);
  return Result;
}

SimResult Simulator::run(const MachineProgram &Prog) {
  if (Config.Engine == SimEngine::Switch)
    return runSwitch(Prog);
  PredecodedProgram Pre = [&] {
    telemetry::ScopedPhase Phase("sim.predecode");
    PredecodedProgram PP = predecode(Prog);
    if (Config.Fusion)
      fusePredecoded(PP); // still a no-op under URCM_NO_FUSE
    return PP;
  }();
  return run(Pre);
}

SimResult Simulator::runSwitch(const MachineProgram &Prog) {
  telemetry::ScopedPhase Phase("sim.run", "legacy-switch");
  NumSimSwitch.add();
  SimResult Result;
  MainMemory Mem(Prog.StackTop + 64);
  DataCache Cache(Config.Cache, Mem);
  Cache.setAttribution(Config.Attribution);

  // Optional instruction cache: tag-only simulation over code indexes.
  std::unique_ptr<MainMemory> IMem;
  std::unique_ptr<DataCache> ICache;
  if (Config.ModelICache) {
    IMem = std::make_unique<MainMemory>(Prog.Code.size() + 64);
    ICache = std::make_unique<DataCache>(Config.ICache, *IMem);
  }
  const MemRefInfo PlainFetch;
  RefRecorder Refs(Config, Result);

  std::array<int64_t, mreg::NumRegs> R{};
  uint64_t PC = Prog.EntryIndex;

  auto Fail = [&](std::string Message) {
    Result.Error = std::move(Message);
  };

  while (Result.Steps < Config.MaxSteps) {
    if (PC >= Prog.Code.size()) {
      Fail(formatString("PC %llu outside program",
                        static_cast<unsigned long long>(PC)));
      break;
    }
    const MInst &I = Prog.Code[PC];
    ++Result.Steps;
    if (ICache) {
      ++Result.InstructionFetches;
      ICache->read(PC, PlainFetch);
    }
    uint64_t NextPC = PC + 1;

    auto Src2 = [&]() { return I.UseImm ? I.Imm : R[I.Rs2]; };

    switch (I.Op) {
    case MOpcode::Add:
      R[I.Rd] = wrapAdd(R[I.Rs1], Src2());
      break;
    case MOpcode::Sub:
      R[I.Rd] = wrapSub(R[I.Rs1], Src2());
      break;
    case MOpcode::Mul:
      R[I.Rd] = wrapMul(R[I.Rs1], Src2());
      break;
    case MOpcode::Div: {
      int64_t D = Src2();
      if (D == 0) {
        Fail("division by zero");
        break;
      }
      R[I.Rd] = wrapDiv(R[I.Rs1], D);
      break;
    }
    case MOpcode::Rem: {
      int64_t D = Src2();
      if (D == 0) {
        Fail("remainder by zero");
        break;
      }
      R[I.Rd] = wrapRem(R[I.Rs1], D);
      break;
    }
    case MOpcode::And:
      R[I.Rd] = R[I.Rs1] & Src2();
      break;
    case MOpcode::Or:
      R[I.Rd] = R[I.Rs1] | Src2();
      break;
    case MOpcode::Xor:
      R[I.Rd] = R[I.Rs1] ^ Src2();
      break;
    case MOpcode::Shl:
      R[I.Rd] = wrapShl(R[I.Rs1], static_cast<unsigned>(Src2() & 63));
      break;
    case MOpcode::Shr:
      R[I.Rd] = R[I.Rs1] >> (Src2() & 63);
      break;
    case MOpcode::Slt:
      R[I.Rd] = R[I.Rs1] < Src2();
      break;
    case MOpcode::Sle:
      R[I.Rd] = R[I.Rs1] <= Src2();
      break;
    case MOpcode::Sgt:
      R[I.Rd] = R[I.Rs1] > Src2();
      break;
    case MOpcode::Sge:
      R[I.Rd] = R[I.Rs1] >= Src2();
      break;
    case MOpcode::Seq:
      R[I.Rd] = R[I.Rs1] == Src2();
      break;
    case MOpcode::Sne:
      R[I.Rd] = R[I.Rs1] != Src2();
      break;
    case MOpcode::Neg:
      R[I.Rd] = -R[I.Rs1];
      break;
    case MOpcode::Not:
      R[I.Rd] = ~R[I.Rs1];
      break;
    case MOpcode::Mov:
      R[I.Rd] = R[I.Rs1];
      break;
    case MOpcode::Li:
      R[I.Rd] = I.Imm;
      break;
    case MOpcode::Ld: {
      int64_t Base = I.Rs1 == mreg::None ? 0 : R[I.Rs1];
      int64_t EA = wrapAdd(Base, I.Imm);
      if (EA < 0 || static_cast<uint64_t>(EA) >= Mem.size()) {
        Fail(formatString("load address %lld out of range",
                          static_cast<long long>(EA)));
        break;
      }
      uint64_t Addr = static_cast<uint64_t>(EA);
      Refs.count(I.MemInfo, /*IsWrite=*/false, Addr);
      int64_t Value = Cache.read(Addr, I.MemInfo);
      if (Config.Paranoid && Value != Mem.shadowRead(Addr))
        ++Result.CoherenceViolations;
      R[I.Rd] = Value;
      break;
    }
    case MOpcode::St: {
      int64_t Base = I.Rs1 == mreg::None ? 0 : R[I.Rs1];
      int64_t EA = wrapAdd(Base, I.Imm);
      if (EA < 0 || static_cast<uint64_t>(EA) >= Mem.size()) {
        Fail(formatString("store address %lld out of range",
                          static_cast<long long>(EA)));
        break;
      }
      uint64_t Addr = static_cast<uint64_t>(EA);
      Refs.count(I.MemInfo, /*IsWrite=*/true, Addr);
      Cache.write(Addr, R[I.Rs2], I.MemInfo);
      Mem.shadowWrite(Addr, R[I.Rs2]);
      break;
    }
    case MOpcode::Jmp:
      NextPC = I.Target;
      break;
    case MOpcode::Bnz:
      if (R[I.Rs1] != 0)
        NextPC = I.Target;
      break;
    case MOpcode::Call:
      R[mreg::RA] = static_cast<int64_t>(PC + 1);
      NextPC = I.Target;
      break;
    case MOpcode::Ret:
      NextPC = static_cast<uint64_t>(R[mreg::RA]);
      // Code-dead hint: this function never runs again; reclaim its
      // I-cache lines.
      if (I.CodeDeadHint && ICache)
        ICache->invalidateRange(I.Target,
                                I.Target + static_cast<uint64_t>(I.Imm));
      break;
    case MOpcode::Print:
      Result.Output.push_back(R[I.Rs1]);
      break;
    case MOpcode::Halt:
      Result.Halted = true;
      break;
    }

    if (Result.Halted || !Result.Error.empty())
      break;
    PC = NextPC;
  }

  if (!Result.Halted && Result.Error.empty())
    Result.Error = "step limit exceeded";

  Refs.finish();
  Cache.flush();
  Result.Cache = Cache.stats();
  if (ICache)
    Result.ICache = ICache->stats();
  recordRunTelemetry(Result);
  return Result;
}
