//===- ShardedReplay.cpp - Set-sharded parallel replay -------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
//
// See urcm/sim/ShardedReplay.h for the unit taxonomy (set shards,
// capacity shards, sequential leftovers) and the merge invariant. The
// implementation notes that matter here:
//
//  * Demux partitions are keyed by (line-words, set-count), not by full
//    configuration: the set an address maps to depends on nothing else,
//    so a 2-way LRU, a 4-way FIFO and a write-through cache with the
//    same set count all replay from one partition. shard = set % N
//    works for any N <= NumSets (the test matrix includes N = 7 against
//    power-of-two set counts); the replay kernels compact a shard's
//    sets to set / N, and the two mappings compose for every residue
//    class, divisor or not.
//
//  * Correctness of per-shard recency: LRU/FIFO ticks are allocated
//    per replayer in feed order, so a shard's ticks differ numerically
//    from the sequential run's — but comparisons only ever happen
//    between ways of one set, events of one set arrive in trace order
//    within their shard, and ticks are strictly monotonic, so every
//    comparison resolves identically. Policies whose state crosses
//    sets (Random's RNG stream, MIN's global indexes) are routed to
//    the sequential leftover unit instead (setShardEligible).
//
//  * All replay happens in finish(): feed() only appends to per-shard
//    buffers, so when the streaming pipeline drives this stream, demux
//    overlaps trace generation and the expensive replay runs wide
//    afterwards. Per-unit results land in cache-line-padded slots;
//    the kernels themselves accumulate into unit-local state, so the
//    parallel phase shares no mutable line between units.
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/ShardedReplay.h"

#include "ReplayKernels.h"
#include "urcm/support/CacheAlign.h"
#include "urcm/support/Telemetry.h"

#include <cassert>
#include <functional>
#include <map>

using namespace urcm;

URCM_STAT(NumShardReplays, "sim.shard.replays",
          "Sharded replays executed (one per finish())");
URCM_STAT(NumShardsUsed, "sim.shard.shards",
          "Shard count, summed over sharded replays");
URCM_STAT(NumShardUnits, "sim.shard.units",
          "Parallel replay units (set shards + capacity shards + "
          "sequential leftovers)");
URCM_STAT(ShardDemuxNs, "sim.shard.demux-ns",
          "Nanoseconds demultiplexing trace chunks into shard buffers");
URCM_STAT(ShardReplayNs, "sim.shard.replay-ns",
          "Nanoseconds in the parallel shard-replay phase (wall clock "
          "of the fan-out, not summed across units)");
URCM_HISTOGRAM(ShardImbalance, "sim.shard.imbalance",
               "Largest shard's share of its partition, percent of the "
               "even split (100 = perfectly balanced)");

uint32_t urcm::resolveShardCount(uint32_t Requested,
                                 const ThreadPool &Pool) {
  if (Requested != 0)
    return Requested;
  return Pool.size() + 1; // parallelFor's caller participates.
}

struct ShardedSweepStream::Impl {
  std::vector<SweepPoint> Points;
  uint32_t Shards;
  ThreadPool *Pool;
  const std::vector<TraceEvent> *ExternalTrace;
  /// Set when some unit must walk the raw trace (capacity shards,
  /// sequential leftovers) and no external copy exists.
  bool NeedRaw = false;
  std::vector<TraceEvent> Raw;

  /// One demux partition per distinct (line-words, set-count) geometry
  /// among the set-shardable points, shared by every configuration with
  /// that geometry.
  struct Group {
    uint32_t GroupShards = 1;
    CacheGeometry Geo;
    std::vector<size_t> PointIdx; ///< Into Points, order preserved.
    /// PointIdx split between the specialized two-way kernel and the
    /// generic replayer; Fast/SlowPos index into PointIdx.
    std::vector<SweepPoint> FastPts, SlowPts;
    std::vector<size_t> FastPos, SlowPos;
    std::vector<std::vector<TraceEvent>> Buffers; ///< [GroupShards].
  };
  std::vector<Group> Groups;

  /// One capacity shard of the stack-distance sweep: a slice of one
  /// hint view's size list, walking the full trace.
  struct StackUnit {
    bool IgnoreHints = false;
    std::vector<uint32_t> Sizes;
    std::vector<size_t> PointIdx;
  };
  std::vector<StackUnit> StackUnits;

  std::vector<SweepPoint> SeqPts;
  std::vector<size_t> SeqIdx;

  /// Merged attribution tables, parallel to Points (default-empty for
  /// points that did not request attribution); filled by finish().
  std::vector<RefAttribution> OutAttrib;

  const std::vector<TraceEvent> &trace() const {
    return ExternalTrace ? *ExternalTrace : Raw;
  }
};

ShardedSweepStream::ShardedSweepStream(
    std::vector<SweepPoint> Points, uint32_t Shards, ThreadPool *Pool,
    const std::vector<TraceEvent> *FullTrace)
    : P(std::make_unique<Impl>()) {
  assert(Shards >= 1 && "pass resolveShardCount's result");
  P->Points = std::move(Points);
  P->Shards = Shards;
  P->Pool = Pool ? Pool : &ThreadPool::global();
  P->ExternalTrace = FullTrace;

  // Classify every point into a work-unit family. Stack-eligible points
  // become capacity shards (collected per hint view, sliced below);
  // set-shardable points join their geometry's demux partition when it
  // yields at least two shards; everything else replays sequentially.
  std::vector<uint32_t> ViewSizes[2];
  std::vector<size_t> ViewIdx[2];
  std::map<std::pair<uint32_t, uint32_t>, size_t> GroupOf;
  for (size_t I = 0; I != P->Points.size(); ++I) {
    const SweepPoint &Pt = P->Points[I];
    // Attribution excludes a point from the capacity shards: the
    // positional stack walk cannot charge events to references. Such a
    // point has one set, so the set-shard test below sends it to the
    // sequential leftovers, where the per-event kernels attribute.
    if (Shards > 1 && stackDistanceEligible(Pt) &&
        !Pt.wantsAttribution()) {
      const int View = Pt.IgnoreHints ? 1 : 0;
      ViewSizes[View].push_back(Pt.Config.NumLines);
      ViewIdx[View].push_back(I);
      continue;
    }
    const uint32_t NumSets = Pt.Config.NumLines / Pt.Config.Assoc;
    const uint32_t GS = std::min(Shards, NumSets);
    if (detail::setShardEligible(Pt) && GS >= 2) {
      auto [It, Inserted] =
          GroupOf.try_emplace({Pt.Config.LineWords, NumSets},
                              P->Groups.size());
      if (Inserted) {
        Impl::Group G;
        G.GroupShards = GS;
        CacheConfig GeoConfig;
        GeoConfig.NumLines = NumSets;
        GeoConfig.Assoc = 1;
        GeoConfig.LineWords = Pt.Config.LineWords;
        G.Geo = CacheGeometry(GeoConfig);
        G.Buffers.resize(GS);
        P->Groups.push_back(std::move(G));
      }
      Impl::Group &G = P->Groups[It->second];
      const size_t Pos = G.PointIdx.size();
      G.PointIdx.push_back(I);
      if (detail::lruTwoWayEligible(Pt)) {
        G.FastPts.push_back(Pt);
        G.FastPos.push_back(Pos);
      } else {
        G.SlowPts.push_back(Pt);
        G.SlowPos.push_back(Pos);
      }
      continue;
    }
    P->SeqPts.push_back(Pt);
    P->SeqIdx.push_back(I);
  }

  // Slice each view's size list into up to Shards capacity shards. The
  // walk cost is trace-dominated and identical per unit, so an even
  // count split balances.
  for (int View : {0, 1}) {
    const size_t N = ViewSizes[View].size();
    if (N == 0)
      continue;
    const size_t NumUnits = std::min<size_t>(Shards, N);
    for (size_t U = 0; U != NumUnits; ++U) {
      const size_t Begin = U * N / NumUnits;
      const size_t End = (U + 1) * N / NumUnits;
      Impl::StackUnit SU;
      SU.IgnoreHints = View == 1;
      SU.Sizes.assign(ViewSizes[View].begin() + Begin,
                      ViewSizes[View].begin() + End);
      SU.PointIdx.assign(ViewIdx[View].begin() + Begin,
                         ViewIdx[View].begin() + End);
      P->StackUnits.push_back(std::move(SU));
    }
  }

  P->NeedRaw = !P->ExternalTrace &&
               (!P->StackUnits.empty() || !P->SeqPts.empty());
}

ShardedSweepStream::~ShardedSweepStream() = default;

void ShardedSweepStream::reserve(uint64_t ExpectedEvents) {
  for (Impl::Group &G : P->Groups) {
    // An even split plus slack; skewed sets grow past it on demand.
    const uint64_t PerShard =
        ExpectedEvents / G.GroupShards + ExpectedEvents / (4 * G.GroupShards);
    for (std::vector<TraceEvent> &B : G.Buffers)
      B.reserve(PerShard);
  }
  if (P->NeedRaw)
    P->Raw.reserve(ExpectedEvents);
}

void ShardedSweepStream::feed(const TraceEvent *Events, size_t Count) {
  if (Count == 0)
    return;
  const bool Metered = telemetry::enabled();
  const uint64_t T0 = Metered ? telemetry::nowNanos() : 0;
  for (Impl::Group &G : P->Groups) {
    const uint32_t GS = G.GroupShards;
    std::vector<TraceEvent> *const Buffers = G.Buffers.data();
    if ((GS & (GS - 1)) == 0) {
      const uint32_t Mask = GS - 1;
      for (const TraceEvent *E = Events, *End = Events + Count; E != End;
           ++E)
        Buffers[G.Geo.setOf(G.Geo.lineAddr(E->Addr)) & Mask].push_back(*E);
    } else {
      for (const TraceEvent *E = Events, *End = Events + Count; E != End;
           ++E)
        Buffers[G.Geo.setOf(G.Geo.lineAddr(E->Addr)) % GS].push_back(*E);
    }
  }
  if (P->NeedRaw)
    P->Raw.insert(P->Raw.end(), Events, Events + Count);
  if (Metered)
    ShardDemuxNs.add(telemetry::nowNanos() - T0);
}

std::vector<CacheStats> ShardedSweepStream::finish() {
  Impl &I = *P;

  // Flatten the work units. Each returns its counters (and, for points
  // that request it, attribution tables) in unit-local order; the merge
  // below scatters/accumulates them single-threaded.
  struct UnitResult {
    std::vector<CacheStats> Stats;
    std::vector<RefAttribution> Attrib;
  };
  std::vector<std::function<UnitResult()>> Units;
  for (Impl::Group &G : I.Groups)
    for (uint32_t S = 0; S != G.GroupShards; ++S)
      Units.push_back([&G, S] {
        const std::vector<TraceEvent> &Buf = G.Buffers[S];
        UnitResult R;
        R.Stats.resize(G.PointIdx.size());
        // Sized once up front so the kernels' table pointers stay
        // valid for the whole replay.
        R.Attrib.resize(G.PointIdx.size());
        if (!G.FastPts.empty()) {
          detail::LRUTwoWayStream K(G.FastPts, G.GroupShards);
          for (size_t J = 0; J != G.FastPts.size(); ++J)
            if (G.FastPts[J].wantsAttribution()) {
              R.Attrib[G.FastPos[J]] =
                  RefAttribution(G.FastPts[J].AttributionRefs);
              K.setAttribution(J, &R.Attrib[G.FastPos[J]]);
            }
          K.feed(Buf.data(), Buf.size());
          std::vector<CacheStats> Part = K.finish();
          for (size_t J = 0; J != Part.size(); ++J)
            R.Stats[G.FastPos[J]] = Part[J];
        }
        if (!G.SlowPts.empty()) {
          detail::GenericMultiStream K(G.SlowPts, nullptr, G.GroupShards);
          for (size_t J = 0; J != G.SlowPts.size(); ++J)
            if (G.SlowPts[J].wantsAttribution()) {
              R.Attrib[G.SlowPos[J]] =
                  RefAttribution(G.SlowPts[J].AttributionRefs);
              K.setAttribution(J, &R.Attrib[G.SlowPos[J]]);
            }
          K.feed(Buf.data(), Buf.size());
          std::vector<CacheStats> Part = K.finish();
          for (size_t J = 0; J != Part.size(); ++J)
            R.Stats[G.SlowPos[J]] = Part[J];
        }
        return R;
      });
  for (Impl::StackUnit &SU : I.StackUnits)
    Units.push_back([&I, &SU] {
      const std::vector<TraceEvent> &T = I.trace();
      detail::StackDistanceStream K(SU.Sizes, SU.IgnoreHints);
      K.reserve(T.size());
      K.feed(T.data(), T.size());
      // Capacity shards never attribute (classification excludes
      // attributing points), so Attrib stays empty.
      return UnitResult{K.finish(), {}};
    });
  if (!I.SeqPts.empty())
    Units.push_back([&I] {
      const std::vector<TraceEvent> &T = I.trace();
      SweepPointStream Stream(I.SeqPts, &T);
      Stream.reserve(T.size());
      Stream.feed(T.data(), T.size());
      UnitResult R;
      R.Stats = Stream.finish();
      R.Attrib.resize(I.SeqPts.size());
      for (size_t J = 0; J != I.SeqPts.size(); ++J)
        if (I.SeqPts[J].wantsAttribution())
          R.Attrib[J] = Stream.takeAttribution(J);
      return R;
    });

  // Replay every unit on the pool. Results land in padded slots so
  // concurrent completions never write the same cache line; the merge
  // afterwards is sequential and deterministic (sums of uint64 are
  // order-independent anyway).
  struct alignas(DestructiveInterferenceSize) UnitSlot {
    UnitResult R;
  };
  std::vector<UnitSlot> Slots(Units.size());
  const bool Metered = telemetry::enabled();
  const uint64_t T0 = Metered ? telemetry::nowNanos() : 0;
  I.Pool->parallelFor(
      Units.size(), [&](size_t U) { Slots[U].R = Units[U](); });
  if (Metered) {
    ShardReplayNs.add(telemetry::nowNanos() - T0);
    NumShardReplays.add();
    NumShardsUsed.add(I.Shards);
    NumShardUnits.add(Units.size());
    for (const Impl::Group &G : I.Groups) {
      uint64_t Total = 0, Max = 0;
      for (const std::vector<TraceEvent> &B : G.Buffers) {
        Total += B.size();
        Max = std::max<uint64_t>(Max, B.size());
      }
      if (Total)
        ShardImbalance.record(Max * G.GroupShards * 100 / Total);
    }
  }

  std::vector<CacheStats> Out(I.Points.size());
  I.OutAttrib.assign(I.Points.size(), RefAttribution());
  size_t U = 0;
  for (const Impl::Group &G : I.Groups)
    for (uint32_t S = 0; S != G.GroupShards; ++S, ++U)
      for (size_t J = 0; J != G.PointIdx.size(); ++J) {
        Out[G.PointIdx[J]] += Slots[U].R.Stats[J];
        if (I.Points[G.PointIdx[J]].wantsAttribution())
          I.OutAttrib[G.PointIdx[J]] += Slots[U].R.Attrib[J];
      }
  for (const Impl::StackUnit &SU : I.StackUnits) {
    for (size_t J = 0; J != SU.PointIdx.size(); ++J)
      Out[SU.PointIdx[J]] = Slots[U].R.Stats[J];
    ++U;
  }
  if (!I.SeqPts.empty()) {
    for (size_t J = 0; J != I.SeqIdx.size(); ++J) {
      Out[I.SeqIdx[J]] = Slots[U].R.Stats[J];
      I.OutAttrib[I.SeqIdx[J]] = std::move(Slots[U].R.Attrib[J]);
    }
    ++U;
  }
  return Out;
}

RefAttribution ShardedSweepStream::takeAttribution(size_t PointIndex) {
  assert(PointIndex < P->OutAttrib.size() &&
         "sweep point index out of range (or finish() not called)");
  return std::move(P->OutAttrib[PointIndex]);
}

std::vector<CacheStats>
urcm::replaySweepPointsSharded(const std::vector<TraceEvent> &Trace,
                               const std::vector<SweepPoint> &Points,
                               uint32_t Shards, ThreadPool *Pool) {
  ShardedSweepStream Stream(Points, Shards, Pool, &Trace);
  Stream.reserve(Trace.size());
  Stream.feed(Trace.data(), Trace.size());
  return Stream.finish();
}
