//===- Cache.cpp - Data cache model -------------------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/Cache.h"

#include "urcm/support/StringUtils.h"

#include <cassert>

using namespace urcm;

const char *urcm::writePolicyName(WritePolicy Policy) {
  switch (Policy) {
  case WritePolicy::WriteBack:
    return "write-back";
  case WritePolicy::WriteThrough:
    return "write-through";
  }
  return "?";
}

const char *urcm::replacementPolicyName(ReplacementPolicy Policy) {
  switch (Policy) {
  case ReplacementPolicy::LRU:
    return "LRU";
  case ReplacementPolicy::FIFO:
    return "FIFO";
  case ReplacementPolicy::Random:
    return "Random";
  }
  return "?";
}

std::string CacheStats::str() const {
  return formatString(
      "refs=%llu hits=%llu (%.2f%%) fills=%llu wb=%llu deadfree=%llu "
      "wbAvoided=%llu bypassR=%llu bypassW=%llu cacheTraffic=%llu "
      "busTraffic=%llu",
      static_cast<unsigned long long>(Reads + Writes),
      static_cast<unsigned long long>(ReadHits + WriteHits),
      hitRate() * 100.0, static_cast<unsigned long long>(Fills),
      static_cast<unsigned long long>(WriteBacks),
      static_cast<unsigned long long>(DeadFrees),
      static_cast<unsigned long long>(DeadWriteBacksAvoided),
      static_cast<unsigned long long>(BypassReads),
      static_cast<unsigned long long>(BypassWrites),
      static_cast<unsigned long long>(cacheTraffic()),
      static_cast<unsigned long long>(busTraffic()));
}

uint64_t urcm::memoryAccessCycles(const CacheStats &Stats,
                                  const LatencyModel &Model) {
  // Every through-cache reference pays the hit latency (misses pay it
  // on top of the transfer); every bus word pays the memory latency.
  return (Stats.Reads + Stats.Writes) * Model.CacheHitCycles +
         Stats.busTraffic() * Model.MemoryCycles;
}

DataCache::DataCache(const CacheConfig &Config, MainMemory &Mem)
    : Config(Config), Geometry(Config), Mem(Mem), Rng(Config.Seed) {
  assert(Config.NumLines > 0 && "cache must have lines");
  assert(Config.Assoc > 0 && Config.NumLines % Config.Assoc == 0 &&
         "associativity must divide the line count");
  assert(Config.LineWords > 0 && "line size must be positive");
  Lines.resize(Config.NumLines);
  for (Line &L : Lines)
    L.Data.assign(Config.LineWords, 0);
}

DataCache::Line *DataCache::findLine(uint64_t LineAddress) {
  uint32_t Set = setOf(LineAddress);
  for (uint32_t Way = 0; Way != Config.Assoc; ++Way) {
    Line &L = Lines[static_cast<size_t>(Set) * Config.Assoc + Way];
    if (L.Valid && L.Tag == LineAddress)
      return &L;
  }
  return nullptr;
}

const DataCache::Line *DataCache::findLine(uint64_t LineAddress) const {
  return const_cast<DataCache *>(this)->findLine(LineAddress);
}

bool DataCache::probe(uint64_t Addr) const {
  return findLine(lineAddr(Addr)) != nullptr;
}

DataCache::Line *DataCache::chooseVictim(uint32_t Set) {
  Line *Base = &Lines[static_cast<size_t>(Set) * Config.Assoc];
  for (uint32_t Way = 0; Way != Config.Assoc; ++Way)
    if (!Base[Way].Valid)
      return &Base[Way];

  switch (Config.Policy) {
  case ReplacementPolicy::LRU: {
    Line *Victim = Base;
    for (uint32_t Way = 1; Way != Config.Assoc; ++Way)
      if (Base[Way].LastUsed < Victim->LastUsed)
        Victim = &Base[Way];
    return Victim;
  }
  case ReplacementPolicy::FIFO: {
    Line *Victim = Base;
    for (uint32_t Way = 1; Way != Config.Assoc; ++Way)
      if (Base[Way].InsertedAt < Victim->InsertedAt)
        Victim = &Base[Way];
    return Victim;
  }
  case ReplacementPolicy::Random:
    return &Base[Rng.nextBelow(Config.Assoc)];
  }
  return Base;
}

void DataCache::evict(Line &L, bool CountAsFlush) {
  if (!L.Valid)
    return;
  if (L.Dirty) {
    for (uint32_t W = 0; W != Config.LineWords; ++W)
      Mem.write(L.Tag * Config.LineWords + W, L.Data[W]);
    if (CountAsFlush) {
      Stats.FlushWriteBackWords += Config.LineWords;
    } else {
      ++Stats.WriteBacks;
      Stats.WriteBackWords += Config.LineWords;
    }
  }
  if (!CountAsFlush)
    ++Stats.Evictions;
  L.Valid = false;
  L.Dirty = false;
}

DataCache::Line *DataCache::allocate(uint64_t LineAddress, bool FetchWords) {
  Line *Victim = chooseVictim(setOf(LineAddress));
  evict(*Victim);
  Victim->Valid = true;
  Victim->Dirty = false;
  Victim->Tag = LineAddress;
  Victim->InsertedAt = ++Tick;
  if (FetchWords) {
    for (uint32_t W = 0; W != Config.LineWords; ++W)
      Victim->Data[W] = Mem.read(LineAddress * Config.LineWords + W);
    ++Stats.Fills;
    Stats.FillWords += Config.LineWords;
  } else {
    // One-word write-allocate: the store overwrites the whole line, so
    // no fetch is necessary. The data slot is filled by the caller.
    ++Stats.Fills;
  }
  touch(*Victim);
  return Victim;
}

void DataCache::freeLine(Line &L, bool AvoidWriteBack) {
  ++Stats.DeadFrees;
  if (Config.LineWords == 1) {
    if (L.Dirty && AvoidWriteBack)
      ++Stats.DeadWriteBacksAvoided;
    else if (L.Dirty)
      evict(L);
    L.Valid = false;
    L.Dirty = false;
    return;
  }
  // Multi-word lines: other words in the line may still be live, so the
  // line is only demoted to least-recently-used (paper's alternative).
  L.LastUsed = 0;
  L.InsertedAt = 0;
}

int64_t DataCache::read(uint64_t Addr, const MemRefInfo &Info) {
  uint64_t LineAddress = lineAddr(Addr);
  uint32_t WordInLine = static_cast<uint32_t>(Addr % Config.LineWords);

  if (Info.Bypass) {
    // UmAm_LOAD: probe; a hit migrates the value to the register and
    // frees the line. A dirty line is written back first: the paper's
    // drop-without-write-back is only sound when the register allocator
    // guarantees a UmAm_STORE precedes the next load of the location,
    // and mixed policies (ReuseAware: cached in one function, bypassed
    // in another) break that guarantee — the paranoid shadow check in
    // the simulator caught exactly this. A miss reads memory directly,
    // leaving the cache untouched.
    if (Line *L = findLine(LineAddress)) {
      int64_t Value = L->Data[WordInLine];
      ++Stats.BypassHitMigrations;
      if (Config.LineWords == 1) {
        ++Stats.DeadFrees;
        if (L->Dirty)
          evict(*L);
        L->Valid = false;
        L->Dirty = false;
      } else {
        // Multi-word lines cannot be dropped safely; write back and
        // invalidate instead.
        evict(*L);
      }
      return Value;
    }
    ++Stats.BypassReads;
    return Mem.read(Addr);
  }

  ++Stats.Reads;
  Line *L = findLine(LineAddress);
  if (L) {
    ++Stats.ReadHits;
    touch(*L);
  } else {
    L = allocate(LineAddress, /*FetchWords=*/true);
  }
  int64_t Value = L->Data[WordInLine];
  if (Info.LastRef)
    freeLine(*L, /*AvoidWriteBack=*/true);
  return Value;
}

void DataCache::write(uint64_t Addr, int64_t Value, const MemRefInfo &Info) {
  uint64_t LineAddress = lineAddr(Addr);
  uint32_t WordInLine = static_cast<uint32_t>(Addr % Config.LineWords);

  if (Info.Bypass) {
    // UmAm_STORE: straight to memory. A stale cached copy should not
    // exist under the compiler contract; if one does, keep it coherent.
    ++Stats.BypassWrites;
    Mem.write(Addr, Value);
    if (Line *L = findLine(LineAddress))
      L->Data[WordInLine] = Value;
    return;
  }

  ++Stats.Writes;
  Line *L = findLine(LineAddress);

  if (Config.Write == WritePolicy::WriteThrough) {
    // Write-through / no-write-allocate: memory always gets the word;
    // the cache is only updated on a hit. Lines are never dirty.
    Mem.write(Addr, Value);
    ++Stats.WriteThroughWords;
    if (L) {
      ++Stats.WriteHits;
      touch(*L);
      L->Data[WordInLine] = Value;
      if (Info.LastRef)
        freeLine(*L, /*AvoidWriteBack=*/true);
    }
    return;
  }

  if (L) {
    ++Stats.WriteHits;
    touch(*L);
  } else {
    // Write-allocate. One-word lines skip the fetch (fully overwritten).
    L = allocate(LineAddress, /*FetchWords=*/Config.LineWords > 1);
  }
  L->Data[WordInLine] = Value;
  L->Dirty = true;
  if (Info.LastRef) {
    // Dead store: the value will never be read; the line is reclaimable
    // immediately and the memory copy need not be produced.
    freeLine(*L, /*AvoidWriteBack=*/true);
  }
}

void DataCache::flush() {
  for (Line &L : Lines)
    evict(L, /*CountAsFlush=*/true);
}

void DataCache::invalidateRange(uint64_t Lo, uint64_t Hi) {
  for (Line &L : Lines) {
    if (!L.Valid)
      continue;
    uint64_t First = L.Tag * Config.LineWords;
    uint64_t Last = First + Config.LineWords;
    if (First >= Lo && Last <= Hi) {
      if (L.Dirty)
        evict(L);
      L.Valid = false;
      L.Dirty = false;
      ++Stats.DeadFrees;
    }
  }
}
