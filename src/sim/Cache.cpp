//===- Cache.cpp - Data cache model -------------------------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/Cache.h"

#include "urcm/support/StringUtils.h"

#include <cassert>

using namespace urcm;

const char *urcm::writePolicyName(WritePolicy Policy) {
  switch (Policy) {
  case WritePolicy::WriteBack:
    return "write-back";
  case WritePolicy::WriteThrough:
    return "write-through";
  }
  return "?";
}

std::string CacheStats::str() const {
  return formatString(
      "refs=%llu hits=%llu (%.2f%%) fills=%llu wb=%llu deadfree=%llu "
      "wbAvoided=%llu bypassR=%llu bypassW=%llu cacheTraffic=%llu "
      "busTraffic=%llu",
      static_cast<unsigned long long>(Reads + Writes),
      static_cast<unsigned long long>(ReadHits + WriteHits),
      hitRate() * 100.0, static_cast<unsigned long long>(Fills),
      static_cast<unsigned long long>(WriteBacks),
      static_cast<unsigned long long>(DeadFrees),
      static_cast<unsigned long long>(DeadWriteBacksAvoided),
      static_cast<unsigned long long>(BypassReads),
      static_cast<unsigned long long>(BypassWrites),
      static_cast<unsigned long long>(cacheTraffic()),
      static_cast<unsigned long long>(busTraffic()));
}

uint64_t urcm::memoryAccessCycles(const CacheStats &Stats,
                                  const LatencyModel &Model) {
  // Every through-cache reference pays the hit latency (misses pay it
  // on top of the transfer); every bus word pays the memory latency.
  return (Stats.Reads + Stats.Writes) * Model.CacheHitCycles +
         Stats.busTraffic() * Model.MemoryCycles;
}

DataCache::DataCache(const CacheConfig &Config, MainMemory &Mem)
    : Config(Config), Geometry(Config), Mem(Mem), Rng(Config.Seed) {
  assert(Config.NumLines > 0 && "cache must have lines");
  assert(Config.Assoc > 0 && Config.NumLines % Config.Assoc == 0 &&
         "associativity must divide the line count");
  assert(Config.LineWords > 0 && "line size must be positive");
  assert(cachePolicyLiveEligible(Config.Policy) &&
         "MIN/LivenessBypass are replay-only (urcm/sim/CacheModel.h)");
  assert((Config.Policy != CachePolicy::TreePLRU ||
          (Config.Assoc <= 64 &&
           (Config.Assoc & (Config.Assoc - 1)) == 0)) &&
         "TreePLRU needs a power-of-two associativity of at most 64");
  Lines.resize(Config.NumLines);
  Words.assign(static_cast<size_t>(Config.NumLines) * Config.LineWords, 0);
  if (Config.Policy == CachePolicy::TreePLRU)
    TreeBits.assign(Geometry.NumSets, 0);
}

bool DataCache::probe(uint64_t Addr) const {
  return findLine(lineAddr(Addr)) != nullptr;
}

DataCache::Line *DataCache::chooseVictim(uint32_t Set) {
  Line *Base = &Lines[static_cast<size_t>(Set) * Config.Assoc];
  for (uint32_t Way = 0; Way != Config.Assoc; ++Way)
    if (!Base[Way].Valid)
      return &Base[Way];

  // Victim mechanisms are shared with the replay kernel
  // (urcm/sim/CachePolicy.h) so live and replayed counters can never
  // drift policy by policy.
  switch (Config.Policy) {
  case CachePolicy::LRU:
    return Base + detail::lruVictimWay(Base, Config.Assoc);
  case CachePolicy::FIFO:
    return Base + detail::fifoVictimWay(Base, Config.Assoc);
  case CachePolicy::Random:
    return &Base[Rng.nextBelow(Config.Assoc)];
  case CachePolicy::TreePLRU:
    return Base + (Config.Assoc == 1
                       ? 0
                       : detail::treePLRUVictimWay(TreeBits[Set],
                                                   Config.Assoc));
  case CachePolicy::SRRIP:
    return Base + detail::srripVictimWay(Base, Config.Assoc);
  case CachePolicy::MIN:
  case CachePolicy::LivenessBypass:
    break; // Replay-only; rejected by the constructor.
  }
  assert(false && "unreachable: replay-only policy in the live cache");
  return Base;
}

void DataCache::evict(Line &L, bool CountAsFlush) {
  if (!L.Valid)
    return;
  if (L.Dirty) {
    const int64_t *LineData =
        Words.data() + static_cast<size_t>(&L - Lines.data()) * Config.LineWords;
    for (uint32_t W = 0; W != Config.LineWords; ++W)
      Mem.write(L.Tag * Config.LineWords + W, LineData[W]);
    if (CountAsFlush) {
      Stats.FlushWriteBackWords += Config.LineWords;
    } else {
      ++Stats.WriteBacks;
      Stats.WriteBackWords += Config.LineWords;
    }
  }
  if (!CountAsFlush) {
    ++Stats.Evictions;
    if (Attr) {
      ++Attr->row(CurRef).EvictionsCaused;
      ++Attr->row(L.InstalledBy).EvictionsSuffered;
    }
  }
  L.Valid = false;
  L.Dirty = false;
}

DataCache::Line *DataCache::allocate(uint64_t LineAddress, bool FetchWords) {
  Line *Victim = chooseVictim(setOf(LineAddress));
  evict(*Victim);
  Victim->Valid = true;
  Victim->Dirty = false;
  Victim->Tag = LineAddress;
  Victim->InstalledBy = CurRef;
  Victim->InsertedAt = ++Tick;
  if (FetchWords) {
    int64_t *LineData =
        Words.data() +
        static_cast<size_t>(Victim - Lines.data()) * Config.LineWords;
    for (uint32_t W = 0; W != Config.LineWords; ++W)
      LineData[W] = Mem.read(LineAddress * Config.LineWords + W);
    ++Stats.Fills;
    Stats.FillWords += Config.LineWords;
  } else {
    // One-word write-allocate: the store overwrites the whole line, so
    // no fetch is necessary. The data slot is filled by the caller.
    ++Stats.Fills;
  }
  touch(*Victim);
  // SRRIP installs at the long re-reference interval; touch() above
  // already advanced the tick and the TreePLRU tree for this way.
  if (Config.Policy == CachePolicy::SRRIP)
    Victim->RRPV = SRRIPInsertRRPV;
  return Victim;
}

DataCache::Line *DataCache::invalidWayOf(uint32_t Set) {
  Line *Base = &Lines[static_cast<size_t>(Set) * Config.Assoc];
  for (uint32_t Way = 0; Way != Config.Assoc; ++Way)
    if (!Base[Way].Valid)
      return &Base[Way];
  return nullptr;
}

int64_t DataCache::readMiss(uint64_t Addr, uint64_t LineAddress,
                            const MemRefInfo &Info) {
  // Stats.Reads was counted by the inline caller.
  CurRef = Info.RefId;
  if (Attr)
    ++Attr->row(Info.RefId).Misses;
  if (Line *Slot = Info.LastRef && Config.LineWords == 1
                       ? invalidWayOf(setOf(LineAddress))
                       : nullptr) {
    // Dead load missing the cache, with a free slot in the set: the
    // allocate + freeLine pair below degenerates to bookkeeping — the
    // line is filled into the invalid way and immediately invalidated
    // again, evicting nothing. Reproduce its exact counter and tick
    // effects (allocate advances the tick twice: InsertedAt, then
    // touch) without the line-state churn. The invalid slot's tag and
    // tick fields are dead state either way: every lookup and victim
    // choice tests Valid first — but TreePLRU's tree bits are live
    // state the skipped touch would have rewritten, so do that part.
    ++Stats.Fills;
    Stats.FillWords += 1;
    Tick += 2;
    ++Stats.DeadFrees;
    if (Config.Policy == CachePolicy::TreePLRU && Config.Assoc > 1)
      treeTouch(Slot - Lines.data());
    return Mem.read(Addr);
  }
  Line *L = allocate(LineAddress, /*FetchWords=*/true);
  int64_t Value = wordOf(*L, Addr);
  if (Info.LastRef)
    freeLine(*L, /*AvoidWriteBack=*/true, Info.RefId);
  return Value;
}

void DataCache::writeMiss(uint64_t Addr, uint64_t LineAddress, int64_t Value,
                          const MemRefInfo &Info) {
  // Stats.Writes was counted by the inline caller.
  CurRef = Info.RefId;
  if (Attr)
    ++Attr->row(Info.RefId).Misses;
  if (Line *Slot = Info.LastRef && Config.LineWords == 1
                       ? invalidWayOf(setOf(LineAddress))
                       : nullptr) {
    // Dead store missing the cache, with a free slot in the set — the
    // reuse-aware scheme's hottest sequence (a temporary's final store
    // finds its line already freed by the preceding dead load). The
    // allocate + freeLine pair degenerates to bookkeeping exactly as in
    // readMiss above, except the one-word write-allocate skips the
    // fetch (no FillWords) and the line it would free is dirty, so the
    // avoided write-back is counted.
    ++Stats.Fills;
    Tick += 2;
    ++Stats.DeadFrees;
    ++Stats.DeadWriteBacksAvoided;
    if (Attr)
      ++Attr->row(Info.RefId).DeadWriteBacksSuppressed;
    if (Config.Policy == CachePolicy::TreePLRU && Config.Assoc > 1)
      treeTouch(Slot - Lines.data());
    return;
  }
  // Write-allocate. One-word lines skip the fetch (overwritten).
  Line *L = allocate(LineAddress, /*FetchWords=*/Config.LineWords > 1);
  wordOf(*L, Addr) = Value;
  L->Dirty = true;
  if (Info.LastRef) {
    // Dead store: the value will never be read; the line is reclaimable
    // immediately and the memory copy need not be produced.
    freeLine(*L, /*AvoidWriteBack=*/true, Info.RefId);
  }
}

int64_t DataCache::readBypass(uint64_t Addr, const MemRefInfo &Info) {
  // UmAm_LOAD: probe; a hit migrates the value to the register and
  // frees the line. A dirty line is written back first: the paper's
  // drop-without-write-back is only sound when the register allocator
  // guarantees a UmAm_STORE precedes the next load of the location,
  // and mixed policies (ReuseAware: cached in one function, bypassed
  // in another) break that guarantee — the paranoid shadow check in
  // the simulator caught exactly this. A miss reads memory directly,
  // leaving the cache untouched.
  CurRef = Info.RefId;
  if (Attr)
    ++Attr->row(Info.RefId).Bypasses;
  uint64_t LineAddress = lineAddr(Addr);
  if (Line *L = findLine(LineAddress)) {
    int64_t Value = wordOf(*L, Addr);
    ++Stats.BypassHitMigrations;
    if (Config.LineWords == 1) {
      ++Stats.DeadFrees;
      if (L->Dirty)
        evict(*L);
      L->Valid = false;
      L->Dirty = false;
    } else {
      // Multi-word lines cannot be dropped safely; write back and
      // invalidate instead.
      evict(*L);
    }
    return Value;
  }
  ++Stats.BypassReads;
  return Mem.read(Addr);
}

void DataCache::writeSlow(uint64_t Addr, int64_t Value,
                          const MemRefInfo &Info) {
  uint64_t LineAddress = lineAddr(Addr);

  if (Info.Bypass) {
    // UmAm_STORE: straight to memory. A stale cached copy should not
    // exist under the compiler contract; if one does, keep it coherent.
    ++Stats.BypassWrites;
    if (Attr)
      ++Attr->row(Info.RefId).Bypasses;
    Mem.write(Addr, Value);
    if (Line *L = findLine(LineAddress))
      wordOf(*L, Addr) = Value;
    return;
  }

  // Write-through / no-write-allocate (the write-back non-bypass path
  // is fully inline in the header): memory always gets the word; the
  // cache is only updated on a hit. Lines are never dirty.
  assert(Config.Write == WritePolicy::WriteThrough);
  ++Stats.Writes;
  Line *L = findLine(LineAddress);
  Mem.write(Addr, Value);
  ++Stats.WriteThroughWords;
  if (Attr) {
    RefCounters &R = Attr->row(Info.RefId);
    ++(L ? R.Hits : R.Misses);
  }
  if (L) {
    ++Stats.WriteHits;
    touch(*L);
    wordOf(*L, Addr) = Value;
    if (Info.LastRef)
      freeLine(*L, /*AvoidWriteBack=*/true, Info.RefId);
  }
}

void DataCache::flush() {
  for (Line &L : Lines)
    evict(L, /*CountAsFlush=*/true);
}

void DataCache::invalidateRange(uint64_t Lo, uint64_t Hi) {
  for (Line &L : Lines) {
    if (!L.Valid)
      continue;
    uint64_t First = L.Tag * Config.LineWords;
    uint64_t Last = First + Config.LineWords;
    if (First >= Lo && Last <= Hi) {
      if (L.Dirty)
        evict(L);
      L.Valid = false;
      L.Dirty = false;
      ++Stats.DeadFrees;
    }
  }
}
