//===- RefProfile.cpp - Per-reference profile export ---------------------------===//
//
// Part of the URCM project (Chi & Dietz, PLDI 1989 reproduction).
//
// Join logic and the two renderings (JSON, annotate). Everything here
// is deterministic in (program, table): rows are emitted in RefId
// order, lines in source order, synthetic groups in function order of
// first appearance — so the outputs golden-compare across runs, shard
// counts and store temperature (which is how the bit-identity of the
// attribution itself is surfaced to users).
//
//===----------------------------------------------------------------------===//

#include "urcm/sim/RefProfile.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>

using namespace urcm;

namespace {

const char *refClassName(RefClass C) {
  switch (C) {
  case RefClass::Unambiguous:
    return "unambiguous";
  case RefClass::Ambiguous:
    return "ambiguous";
  case RefClass::Spill:
    return "spill";
  case RefClass::SpillReload:
    return "spill-reload";
  case RefClass::Unknown:
    return "unknown";
  }
  return "unknown";
}

/// Paper reference forms (section 4.3), matching the -Rurcm-classify
/// remark naming: bypassing traffic uses the UmAm forms, cached loads
/// are Am_LOAD, cached stores AmSp_STORE.
const char *paperForm(bool IsStore, bool Bypass) {
  if (IsStore)
    return Bypass ? "UmAm_STORE" : "AmSp_STORE";
  return Bypass ? "UmAm_LOAD" : "Am_LOAD";
}

void appendFormatted(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendFormatted(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Fmt);
  int N = std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  if (N > 0)
    Out.append(Buf, std::min<size_t>(static_cast<size_t>(N),
                                     sizeof(Buf) - 1));
}

void jsonEscapeInto(std::string &Out, const std::string &S) {
  Out.push_back('"');
  for (char Ch : S) {
    unsigned char C = static_cast<unsigned char>(Ch);
    if (C == '"' || C == '\\') {
      Out.push_back('\\');
      Out.push_back(static_cast<char>(C));
    } else if (C < 0x20) {
      appendFormatted(Out, "\\u%04x", C);
    } else {
      Out.push_back(static_cast<char>(C));
    }
  }
  Out.push_back('"');
}

} // namespace

std::vector<RefProfileRow>
urcm::buildRefProfile(const MachineProgram &Prog,
                      const RefAttribution &Attr) {
  std::vector<RefProfileRow> Rows;
  Rows.reserve(Prog.RefTable.size());
  for (size_t Id = 0; Id != Prog.RefTable.size(); ++Id) {
    const MachineProgram::StaticRef &Ref = Prog.RefTable[Id];
    RefProfileRow Row;
    Row.RefId = static_cast<uint16_t>(Id);
    Row.CodeIndex = Ref.CodeIndex;
    Row.Loc = Ref.Loc;
    if (const MachineFunction *F = Prog.functionAt(Ref.CodeIndex))
      Row.Function = F->Name;
    const MInst &I = Prog.Code[Ref.CodeIndex];
    Row.IsStore = I.Op == MOpcode::St;
    Row.Bypass = I.MemInfo.Bypass;
    Row.LastRef = I.MemInfo.LastRef;
    Row.Form = paperForm(Row.IsStore, Row.Bypass);
    Row.Class = refClassName(I.MemInfo.Class);
    Row.Counters = Attr.row(static_cast<uint32_t>(Id));
    Rows.push_back(std::move(Row));
  }
  return Rows;
}

std::string urcm::refProfileJSON(const MachineProgram &Prog,
                                 const RefAttribution &Attr,
                                 const std::string &Workload) {
  std::vector<RefProfileRow> Rows = buildRefProfile(Prog, Attr);
  std::string Out;
  Out.reserve(256 + Rows.size() * 256);
  Out += "{\n  \"version\": 1,\n  \"workload\": ";
  jsonEscapeInto(Out, Workload);
  appendFormatted(Out, ",\n  \"num_refs\": %zu,\n  \"refs\": [",
                  Rows.size());
  auto Counters = [&](const RefCounters &C) {
    appendFormatted(
        Out,
        "\"hits\": %llu, \"misses\": %llu, \"bypasses\": %llu, "
        "\"dead_wb_suppressed\": %llu, \"evictions_caused\": %llu, "
        "\"evictions_suffered\": %llu",
        static_cast<unsigned long long>(C.Hits),
        static_cast<unsigned long long>(C.Misses),
        static_cast<unsigned long long>(C.Bypasses),
        static_cast<unsigned long long>(C.DeadWriteBacksSuppressed),
        static_cast<unsigned long long>(C.EvictionsCaused),
        static_cast<unsigned long long>(C.EvictionsSuffered));
  };
  for (size_t I = 0; I != Rows.size(); ++I) {
    const RefProfileRow &R = Rows[I];
    Out += I == 0 ? "\n" : ",\n";
    appendFormatted(Out, "    {\"ref\": %u, \"code_index\": %u, ",
                    R.RefId, R.CodeIndex);
    Out += "\"function\": ";
    jsonEscapeInto(Out, R.Function);
    appendFormatted(Out, ", \"line\": %u, \"col\": %u, ", R.Loc.Line,
                    R.Loc.Col);
    appendFormatted(Out, "\"form\": \"%s\", \"class\": \"%s\", ", R.Form,
                    R.Class);
    appendFormatted(Out, "\"bypass\": %s, \"lastref\": %s, ",
                    R.Bypass ? "true" : "false",
                    R.LastRef ? "true" : "false");
    Counters(R.Counters);
    appendFormatted(Out, ", \"dead_evicted\": %s}",
                    R.deadEvicted() ? "true" : "false");
  }
  Out += "\n  ],\n  \"overflow\": {";
  Counters(Attr.overflow());
  Out += "}\n}\n";
  return Out;
}

std::string urcm::refProfileAnnotate(const MachineProgram &Prog,
                                     const RefAttribution &Attr,
                                     const std::string &Source) {
  std::vector<RefProfileRow> Rows = buildRefProfile(Prog, Attr);

  // Aggregate per source line. Synthetic references (invalid Loc:
  // prologue/epilogue save-restore, spill traffic) group per function
  // instead and print below the listing.
  struct LineAgg {
    RefCounters Sum;
    uint32_t NumRefs = 0;
    bool AnyBypass = false;
    bool DeadEvicted = false;
  };
  std::map<uint32_t, LineAgg> ByLine;
  std::vector<std::pair<std::string, RefCounters>> Synthetic;
  for (const RefProfileRow &R : Rows) {
    if (R.Loc.isValid()) {
      LineAgg &A = ByLine[R.Loc.Line];
      A.Sum += R.Counters;
      ++A.NumRefs;
      A.AnyBypass |= R.Bypass;
      A.DeadEvicted |= R.deadEvicted();
    } else {
      auto It = std::find_if(Synthetic.begin(), Synthetic.end(),
                             [&](const auto &P) {
                               return P.first == R.Function;
                             });
      if (It == Synthetic.end())
        Synthetic.emplace_back(R.Function, R.Counters);
      else
        It->second += R.Counters;
    }
  }

  RefCounters Total;
  for (const RefProfileRow &R : Rows)
    Total += R.Counters;
  Total += Attr.overflow();

  std::string Out;
  appendFormatted(Out,
                  "ref profile: %zu static refs | hits %llu  misses "
                  "%llu  bypasses %llu  dead-wb-suppressed %llu\n",
                  Rows.size(),
                  static_cast<unsigned long long>(Total.Hits),
                  static_cast<unsigned long long>(Total.Misses),
                  static_cast<unsigned long long>(Total.Bypasses),
                  static_cast<unsigned long long>(
                      Total.DeadWriteBacksSuppressed));
  Out += "mismatch flags: !bypass-miss = line has a bypass-classified "
         "ref yet still misses;\n                !dead-evicted = "
         "last-ref-tagged line evicted before its dead tag fired\n\n";
  appendFormatted(Out, "%10s %10s %8s %8s | %4s | source\n", "hits",
                  "misses", "bypass", "dead-wb", "line");

  uint32_t LineNo = 0;
  size_t Pos = 0;
  while (Pos < Source.size()) {
    size_t End = Source.find('\n', Pos);
    if (End == std::string::npos)
      End = Source.size();
    ++LineNo;
    const std::string Line = Source.substr(Pos, End - Pos);
    auto It = ByLine.find(LineNo);
    if (It == ByLine.end()) {
      appendFormatted(Out, "%10s %10s %8s %8s | %4u | ", "", "", "", "",
                      LineNo);
      Out += Line;
    } else {
      const LineAgg &A = It->second;
      appendFormatted(
          Out, "%10llu %10llu %8llu %8llu | %4u | ",
          static_cast<unsigned long long>(A.Sum.Hits),
          static_cast<unsigned long long>(A.Sum.Misses),
          static_cast<unsigned long long>(A.Sum.Bypasses),
          static_cast<unsigned long long>(A.Sum.DeadWriteBacksSuppressed),
          LineNo);
      Out += Line;
      if (A.AnyBypass && A.Sum.Misses != 0)
        Out += "   !bypass-miss";
      if (A.DeadEvicted)
        Out += "   !dead-evicted";
    }
    Out += '\n';
    Pos = End + 1;
  }

  if (!Synthetic.empty()) {
    Out += "\nsynthetic references (spill/save-restore, no source "
           "line):\n";
    for (const auto &[Fn, C] : Synthetic)
      appendFormatted(Out,
                      "%10llu %10llu %8llu %8llu |      | <%s>\n",
                      static_cast<unsigned long long>(C.Hits),
                      static_cast<unsigned long long>(C.Misses),
                      static_cast<unsigned long long>(C.Bypasses),
                      static_cast<unsigned long long>(
                          C.DeadWriteBacksSuppressed),
                      Fn.empty() ? "?" : Fn.c_str());
  }
  const RefCounters &Ovf = Attr.overflow();
  if (Ovf.accesses() != 0 || Ovf.DeadWriteBacksSuppressed != 0)
    appendFormatted(Out,
                    "%10llu %10llu %8llu %8llu |      | <unnumbered>\n",
                    static_cast<unsigned long long>(Ovf.Hits),
                    static_cast<unsigned long long>(Ovf.Misses),
                    static_cast<unsigned long long>(Ovf.Bypasses),
                    static_cast<unsigned long long>(
                        Ovf.DeadWriteBacksSuppressed));
  return Out;
}
